// Quickstart: annotate a module, generate a formal testbench, verify it.
//
// The DUT is a small valid/ready FIFO. One AUTOSVA comment block in the
// interface section is all the designer writes; the framework generates
// the property module (liveness + safety + covers), a bind file, tool
// scripts for JasperGold / SymbiYosys, and — in this reproduction — runs
// the built-in model checker to a verdict.
#include <iostream>

#include "core/autosva.hpp"

namespace {

const char* kFifoRtl = R"(
module fifo #(
  parameter W = 4,
  parameter DEPTH = 2
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  fifo_txn: in -in> out
  [W-1:0] in_data = in_data_i
  [W-1:0] out_data = out_data_o
  */
  input  wire         in_val,
  output wire         in_ack,
  input  wire [W-1:0] in_data_i,
  output wire         out_val,
  input  wire         out_ack,
  output wire [W-1:0] out_data_o
);
  reg [W-1:0] mem [0:DEPTH-1];
  reg         wr_q;
  reg         rd_q;
  reg  [1:0]  count_q;

  assign in_ack  = count_q < DEPTH;
  assign out_val = count_q != 2'd0;
  assign out_data_o = mem[rd_q];

  wire wr_hsk = in_val && in_ack;
  wire rd_hsk = out_val && out_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      wr_q <= 1'b0;
      rd_q <= 1'b0;
      count_q <= 2'd0;
      mem[0] <= '0;
      mem[1] <= '0;
    end else begin
      if (wr_hsk) begin
        mem[wr_q] <= in_data_i;
        wr_q <= !wr_q;
      end
      if (rd_hsk) begin
        rd_q <= !rd_q;
      end
      if (wr_hsk && !rd_hsk) begin
        count_q <= count_q + 2'd1;
      end else if (!wr_hsk && rd_hsk) begin
        count_q <= count_q - 2'd1;
      end
    end
  end
endmodule
)";

} // namespace

int main() {
    using namespace autosva;

    std::cout << "== AutoSVA quickstart ==\n\n";
    std::cout << "1. The designer annotates the interface (3 annotation lines):\n\n"
              << "     fifo_txn: in -in> out\n"
              << "     [W-1:0] in_data = in_data_i\n"
              << "     [W-1:0] out_data = out_data_o\n\n";

    // Generate the formal testbench.
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    opts.sourcePath = "fifo.sv"; // Provenance: properties cite this buffer.
    core::FormalTestbench ft = core::generateFT(kFifoRtl, opts, diags);

    std::cout << "2. AutoSVA generates " << ft.numProperties() << " properties ("
              << ft.numAssertions() << " assertions, " << ft.numAssumptions()
              << " assumptions, " << ft.numCovers() << " covers) in "
              << ft.generationSeconds * 1e3 << " ms.\n"
              << "   Every property remembers the annotation it came from:\n\n";
    for (const auto& p : ft.properties)
        std::cout << "     " << p.label << "  <- " << p.sourceLoc.file << ":"
                  << p.sourceLoc.line << "\n";

    std::cout << "\n3. Generated artifacts: property module ("
              << ft.propertyFile.size() << " bytes), bind file, JasperGold TCL ("
              << ft.jasperTcl.size() << " bytes), SymbiYosys .sby ("
              << ft.sbyFile.size() << " bytes).\n";

    // Verify with the built-in engine.
    std::cout << "\n4. Running the built-in formal engine...\n\n";
    core::VerifyOptions vopts;
    vopts.sourcePaths = {"fifo.sv"};
    sva::VerificationReport report = core::verify({kFifoRtl}, ft, vopts, diags);
    std::cout << report.str();

    std::cout << "\nA FIFO written correctly proves out of the box: every pushed word is\n"
                 "eventually popped with its data intact, and no pop happens that was\n"
                 "never pushed.\n";
    std::cout << "\nTo see where the engine spends its time, run the CLI with the\n"
                 "profiler attached (`autosva profile <dut.sv>` or any run with\n"
                 "--profile), or export the full event timeline with\n"
                 "--trace-out trace.json and load it in Perfetto / chrome://tracing.\n";
    std::cout << "\nOn designs too big to finish interactively, bound the run instead of\n"
                 "killing it: --time-budget S caps the whole run and --obligation-timeout S\n"
                 "caps each property; whatever the deadline cuts off is reported as\n"
                 "unknown(run-budget)/unknown(timeout) — every decided verdict stands, and\n"
                 "an un-budgeted rerun on the same --cache-dir resumes from the proofs the\n"
                 "bounded run banked. Ctrl-C degrades the same way (partial report, exit\n"
                 "130) instead of losing the session.\n";
    return report.allProven() ? 0 : 1;
}
