// Scenario 3 (paper §III-B, "Property Reuse"): the generated property file
// is bound into an RTL *simulation* testbench. Control-safety properties
// and X-propagation assertions are checked during random simulation (the
// paper used VCS-MX; here the built-in 4-state simulator).
//
// Two demonstrations on the PTW:
//  1. constrained-random simulation of the *fixed* design with assertion
//     checking: no safety violations over thousands of cycles, and the
//     cover properties are hit (the testbench is not vacuous);
//  2. an X-propagation bug: a variant that forwards an uninitialized
//     register into the response payload. Formal tools never see it (they
//     are 2-state) — the XPROP assertion catches it in simulation.
#include <iostream>
#include <random>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

using namespace autosva;

namespace {

// PTW variant with an X bug: pte_q is not reset, and the response exposes
// it before the first walk completes.
const char* kXbugRtl = R"(
module xbug_unit (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: req -in> res
  [3:0] res_data = res_data_o
  */
  input  wire       req_val,
  output wire       req_ack,
  output wire       res_val,
  output wire [3:0] res_data_o
);
  reg busy_q;
  reg [3:0] payload_q; // BUG: never reset -> X until first load.
  assign req_ack = !busy_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
    end else begin
      busy_q <= req_val && req_ack;
      if (busy_q) begin
        payload_q <= 4'd7;
      end
    end
  end
  assign res_val = busy_q;
  assign res_data_o = payload_q;
endmodule
)";

int simulate(const ir::Design& design, int cycles, unsigned seed, bool driveReset) {
    sim::Simulator simulator(design, sim::Simulator::XMode::FourState);
    simulator.enableChecking(true);
    std::mt19937_64 rng(seed);
    for (int i = 0; i < cycles; ++i) {
        simulator.randomizeInputs(rng);
        if (driveReset) simulator.setInput("rst_ni", i == 0 ? 0 : 1);
        simulator.step();
    }
    std::cout << "  " << cycles << " cycles, " << simulator.violations().size()
              << " violations, covers hit:";
    for (const auto& c : simulator.coveredObligations()) std::cout << " " << c;
    std::cout << "\n";
    for (const auto& v : simulator.violations())
        std::cout << "    violation @" << v.cycle << ": " << v.obligationName << "\n";
    return static_cast<int>(simulator.violations().size());
}

} // namespace

int main() {
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;

    std::cout << "== Reusing the generated properties in simulation ==\n";

    // --- 1: PTW random simulation, assertions + covers checked live. ---
    std::cout << "\n--- PTW (fixed design), constrained-random simulation ---\n";
    {
        const auto& info = designs::design("ariane_ptw");
        core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
        core::VerifyOptions vopts;
        // Simulation keeps the real reset pin (tieReset=false).
        auto design =
            core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags, false);
        int violations = simulate(*design, 3000, 7, true);
        std::cout << (violations == 0 ? "  all control-safety assertions held.\n"
                                      : "  unexpected violations!\n");
    }

    // --- 2: X-propagation catch. ---
    std::cout << "\n--- X-propagation: uninitialized payload reaches an interface ---\n";
    {
        core::FormalTestbench ft = core::generateFT(kXbugRtl, genOpts, diags);
        core::VerifyOptions vopts;
        auto design = core::elaborateWithFT({kXbugRtl}, ft, vopts, diags, false);
        int violations = simulate(*design, 50, 11, true);
        std::cout << (violations > 0
                          ? "  xp__ assertion fired: the response payload was X while val "
                            "was high.\n  Formal missed this by design (2-state); simulation "
                            "binding catches it.\n"
                          : "  (no violation — unexpected)\n");

        // Dump a small waveform for inspection.
        sim::Simulator simulator(*design, sim::Simulator::XMode::FourState);
        simulator.enableTrace(true);
        std::mt19937_64 rng(11);
        for (int i = 0; i < 10; ++i) {
            simulator.randomizeInputs(rng);
            simulator.setInput("rst_ni", i == 0 ? 0 : 1);
            simulator.step();
        }
        std::string vcd = sim::traceToVcd(*design, simulator.trace(), "xbug_unit");
        std::cout << "  VCD dump: " << vcd.size() << " bytes (first cycles of the X bug).\n";
        return violations > 0 ? 0 : 1;
    }
}
