// Scenario 2 (paper §IV, "Bug2. Deadlock in NoC Buffer"): Test-Driven
// Development of a new unit. Mem Engine connects to OpenPiton's NoC1 by
// reusing the encoder buffer; because the buffer's interface follows the
// naming convention, its FT takes just 3 annotation lines (paper Fig. 7).
// The very first liveness CEX reveals that the buffer assumes its producer
// never exceeds the entry count — which Mem Engine violates. Adding a
// "not-full" condition to the ack signal fixes the deadlock and the FT
// proves.
#include <iostream>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/replay.hpp"

using namespace autosva;

int main() {
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;

    std::cout << "== TDD with AutoSVA: Mem Engine and the reused NoC buffer ==\n";

    // The buffer FT: three annotation lines because everything else is
    // picked up implicitly from the port names.
    const auto& bufInfo = designs::design("noc_buffer");
    core::FormalTestbench bufFt = core::generateFT(bufInfo.rtl, genOpts, diags);
    std::cout << "\nNoC buffer FT: " << bufFt.numProperties() << " properties from "
              << bufFt.annotationLines << " annotation lines.\n";

    const auto& meInfo = designs::design("mem_engine");
    core::FormalTestbench meFt = core::generateFT(meInfo.rtl, genOpts, diags);

    // --- Step 1: Mem Engine + original buffer: deadlock. ---
    std::cout << "\n--- Step 1: burst of 4 requests into a 2-entry buffer (original) ---\n";
    {
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 1; // The buffer as found in the codebase.
        vopts.submoduleFts = {&bufFt};
        auto report = core::verify(designs::rtlSources(meInfo), meFt, vopts, diags);
        const auto* bufLive = report.find("as__mem_engine_noc_eventual_response");
        const auto* cmdLive = report.find("as__me_cmd_eventual_response");
        if (bufLive && bufLive->status == formal::Status::Failed) {
            std::cout << "First CEX to the buffer's liveness assertion (lasso, length "
                      << bufLive->depth << "):\n\n";
            auto design = core::elaborateWithFT(designs::rtlSources(meInfo), meFt, vopts, diags);
            std::cout << formal::formatTrace(
                *design, bufLive->trace,
                {"cmd_val_i", "noc1buffer_i.noc1buffer_req_val_i",
                 "noc1buffer_i.noc1buffer_req_mshrid_i", "noc1buffer_i.count_q", "enc_val_o",
                 "enc_mshrid_o", "sent_q", "drained_q"});
            std::cout << "\nAn overflowing write silently overwrites a queued entry; the\n"
                         "command can never complete (deadlock).\n";
        }
        std::cout << "Mem Engine command liveness: "
                  << (cmdLive ? formal::statusName(cmdLive->status) : "?") << "\n";
    }

    // --- Step 2: the paper's fix — not-full condition on the ack. ---
    std::cout << "\n--- Step 2: fixed buffer (ack gated by not-full) ---\n";
    {
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 0;
        vopts.submoduleFts = {&bufFt};
        auto report = core::verify(designs::rtlSources(meInfo), meFt, vopts, diags);
        std::cout << report.str();
        std::cout << "\nBoth the buffer FT (bound to the instance, '-AM' linking) and the\n"
                     "Mem Engine's own command transaction now prove.\n";
        return report.allProven() ? 0 : 1;
    }
}
