// Scenario 1 (paper §IV, "Bug1. Ghost Response on MMU"): formally verifying
// the MMU at unit level, reproducing the paper's debugging session:
//
//   1. the FT first reveals an arbitration-fairness CEX (fetch starvation),
//      removed with an environment assumption ("one instruction cannot do
//      many DTLB lookups");
//   2. the next CEX is a real bug: a misaligned LSU request is answered
//      immediately, but still activates the PTW; a page fault then raises
//      a second, "ghost" response — caught by the response-had-a-request
//      safety property in a ~5-cycle trace;
//   3. the fix (masking the walk with the misaligned flag) is validated:
//      the previously failing assertion holds.
#include <iostream>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/replay.hpp"

using namespace autosva;

int main() {
    const auto& info = designs::design("ariane_mmu");
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;

    std::cout << "== Hunting Bug1: the MMU ghost response ==\n";
    core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
    std::cout << "\nGenerated " << ft.numProperties() << " properties from "
              << ft.annotationLines << " annotation lines (3 transactions: lsu_mmu,\n"
              << "fetch_mmu, mmu_dcache).\n";

    // --- Step 1: the fairness CEX (no environment assumption yet). ---
    std::cout << "\n--- Step 1: first CEX — fetch starvation (arbitration fairness) ---\n";
    {
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 1;
        formal::EngineOptions eng;
        eng.checkCovers = false;
        vopts.engine = eng;
        auto report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        const auto* fetchLive = report.find("as__fetch_mmu_eventual_response");
        if (fetchLive && fetchLive->status == formal::Status::Failed) {
            std::cout << "CEX: " << fetchLive->name << " (lasso, loop at cycle "
                      << fetchLive->trace.loopStart << ", length " << fetchLive->depth
                      << ")\nThe LSU can issue requests every cycle, so instruction walks\n"
                         "starve. \"This fairness problem cannot happen in practice since\n"
                         "one instruction cannot do many DTLB lookups\" — add the assumption.\n";
        } else {
            std::cout << "(fetch liveness: "
                      << (fetchLive ? formal::statusName(fetchLive->status) : "?") << ")\n";
        }
    }

    // --- Step 2: with the assumption, the ghost-response bug appears. ---
    std::cout << "\n--- Step 2: with the fairness assumption — Bug1 appears ---\n";
    {
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 1;
        vopts.extraSources.push_back(info.extensionSva);
        formal::EngineOptions eng;
        eng.checkCovers = false;
        eng.useLivenessToSafety = false; // Bug hunting: safety CEXs suffice here.
        vopts.engine = eng;
        auto report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        const auto* ghost = report.find("as__lsu_mmu_had_a_request");
        if (ghost && ghost->status == formal::Status::Failed) {
            std::cout << "CEX: " << ghost->name << " fails at cycle " << ghost->depth
                      << " — a response with no outstanding request:\n\n";
            auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags);
            std::cout << formal::formatTrace(
                *design, ghost->trace,
                {"lsu_req_val_i", "lsu_req_misaligned_i", "lsu_res_val_o",
                 "lsu_res_exception_o", "d_walk_pend_q", "dres_val_i", "dres_fault_i"});
            std::cout << "\nThe misaligned request is answered at once, yet the PTW walk\n"
                         "still launches; the later page fault raises a second response.\n";
        }
    }

    // --- Step 3: the fix proves. ---
    std::cout << "\n--- Step 3: fix (mask the walk with the misaligned flag) ---\n";
    {
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 0;
        vopts.extraSources.push_back(info.extensionSva);
        formal::EngineOptions eng;
        eng.checkCovers = false;
        eng.useLivenessToSafety = false;
        vopts.engine = eng;
        auto report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        const auto* ghost = report.find("as__lsu_mmu_had_a_request");
        std::cout << "as__lsu_mmu_had_a_request after the fix: "
                  << (ghost ? formal::statusName(ghost->status) : "?")
                  << "\n\"The formal tool found a proof in few seconds for the previously\n"
                     "failing assertion\" — bug-fix confidence (paper metric 4).\n";
        return ghost && ghost->status == formal::Status::Proven ? 0 : 1;
    }
}
