// Annotated valid/ready FIFO — the quickstart DUT as a standalone file.
// Exercised by CI as the end-to-end `autosva run` smoke: annotation ->
// typed property AST -> elaborator -> engine, on every push.
module fifo #(
  parameter W = 4,
  parameter DEPTH = 2
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  fifo_txn: in -in> out
  [W-1:0] in_data = in_data_i
  [W-1:0] out_data = out_data_o
  */
  input  wire         in_val,
  output wire         in_ack,
  input  wire [W-1:0] in_data_i,
  output wire         out_val,
  input  wire         out_ack,
  output wire [W-1:0] out_data_o
);
  reg [W-1:0] mem [0:DEPTH-1];
  reg         wr_q;
  reg         rd_q;
  reg  [1:0]  count_q;

  assign in_ack  = count_q < DEPTH;
  assign out_val = count_q != 2'd0;
  assign out_data_o = mem[rd_q];

  wire wr_hsk = in_val && in_ack;
  wire rd_hsk = out_val && out_ack;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      wr_q <= 1'b0;
      rd_q <= 1'b0;
      count_q <= 2'd0;
      mem[0] <= '0;
      mem[1] <= '0;
    end else begin
      if (wr_hsk) begin
        mem[wr_q] <= in_data_i;
        wr_q <= !wr_q;
      end
      if (rd_hsk) begin
        rd_q <= !rd_q;
      end
      if (wr_hsk && !rd_hsk) begin
        count_q <= count_q + 2'd1;
      end else if (!wr_hsk && rd_hsk) begin
        count_q <= count_q - 2'd1;
      end
    end
  end
endmodule
