// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/autosva.hpp"
#include "designs/designs.hpp"

namespace autosva::bench {

struct DesignRun {
    core::FormalTestbench ft;
    sva::VerificationReport report;
};

/// Generates the FT for a registered design and verifies it with the
/// built-in engine.
inline formal::EngineOptions defaultBenchEngine() {
    formal::EngineOptions opts;
    // Every seeded bug shows within ~10 cycles and lassos close within ~15
    // frames; a shallow BMC keeps the harness fast while PDR provides the
    // unbounded proofs.
    opts.bmcDepth = 15;
    return opts;
}

inline DesignRun runDesign(const std::string& name, uint64_t bug,
                           bool withExtension = true,
                           const std::vector<const core::FormalTestbench*>& subFts = {},
                           formal::EngineOptions engineOpts = defaultBenchEngine()) {
    const auto& info = designs::design(name);
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    DesignRun run{core::generateFT(info.rtl, genOpts, diags), {}};

    core::VerifyOptions vopts;
    vopts.engine = engineOpts;
    if (bug != 0 || !withExtension) vopts.engine.pdrMaxQueries = 30000;
    if (info.hasBugParam) vopts.paramOverrides["BUG"] = bug;
    if (withExtension && !info.extensionSva.empty())
        vopts.extraSources.push_back(info.extensionSva);
    vopts.submoduleFts = subFts;
    run.report = core::verify(designs::rtlSources(info), run.ft, vopts, diags);
    return run;
}

inline void banner(const std::string& title) {
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace autosva::bench
