// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures, including the machine-readable --json emitter every
// bench_* binary supports (the BENCH trajectory's data source).
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "obs/stats_json.hpp"

namespace autosva::bench {

// ---------------------------------------------------------------------------
// --json emitter
// ---------------------------------------------------------------------------

/// One machine-readable measurement row. Every bench emits the same schema
/// so trajectory tooling can diff runs without per-bench parsers.
///
/// The engine-derived members are generated from the X-macro field list in
/// obs/stats_json.hpp — the same list `--stats-json` emits — so the bench
/// rows and the run manifest cannot drift. Member names ARE the JSON keys
/// (see the EngineStats doc comments for what each counter means).
struct JsonRow {
    std::string name;   ///< Measurement id within the bench (e.g. "warm").
    std::string design; ///< DUT the row measured ("-" when not applicable).
    double wall_s = 0.0;
    size_t props = 0; ///< Properties involved (0 when not applicable).
#define AUTOSVA_BENCH_FIELD(key, member) uint64_t key = 0;
    AUTOSVA_ENGINE_JSON_U64_FIELDS(AUTOSVA_BENCH_FIELD)
#undef AUTOSVA_BENCH_FIELD
#define AUTOSVA_BENCH_FIELD(key, member) double key = 0.0;
    AUTOSVA_ENGINE_JSON_DOUBLE_FIELDS(AUTOSVA_BENCH_FIELD)
#undef AUTOSVA_BENCH_FIELD
};

/// Strips `--json <path>` from argv (so positional-argument benches keep
/// their existing parsing) and returns the path, or "" when absent.
inline std::string extractJsonPath(int& argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") != 0) continue;
        if (i + 1 >= argc) {
            std::cerr << "error: --json expects a file path\n";
            std::exit(2);
        }
        std::string path = argv[i + 1];
        for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
        argc -= 2;
        return path;
    }
    return {};
}

inline std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

/// Writes `{"bench": ..., "rows": [...]}` to `path`; no-op when path is
/// empty, so call sites need no conditional. Exits non-zero on I/O failure
/// (a CI artifact that silently vanished would defeat the trajectory).
inline void writeJson(const std::string& path, const std::string& benchName,
                      const std::vector<JsonRow>& rows) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write --json file '" << path << "'\n";
        std::exit(2);
    }
    out << "{\"bench\": \"" << jsonEscape(benchName) << "\", \"rows\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
        const JsonRow& r = rows[i];
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", r.wall_s);
        out << (i ? ", " : "") << "{\"name\": \"" << jsonEscape(r.name)
            << "\", \"design\": \"" << jsonEscape(r.design) << "\", \"wall_s\": " << buf
            << ", \"props\": " << r.props;
#define AUTOSVA_BENCH_FIELD(key, member) out << ", \"" #key "\": " << r.key;
        AUTOSVA_ENGINE_JSON_U64_FIELDS(AUTOSVA_BENCH_FIELD)
#undef AUTOSVA_BENCH_FIELD
#define AUTOSVA_BENCH_FIELD(key, member)                                                     \
    std::snprintf(buf, sizeof buf, "%.6f", r.key);                                           \
    out << ", \"" #key "\": " << buf;
        AUTOSVA_ENGINE_JSON_DOUBLE_FIELDS(AUTOSVA_BENCH_FIELD)
#undef AUTOSVA_BENCH_FIELD
        out << "}";
    }
    out << "]}\n";
    if (!out.good()) {
        std::cerr << "error: short write to --json file '" << path << "'\n";
        std::exit(2);
    }
    std::cout << "wrote " << path << " (" << rows.size() << " rows)\n";
}

/// Fills a row's engine-derived fields (PDR counters included) from a set
/// of engine stats. Generated from the shared field list: a key here
/// without a JsonRow member (or vice versa) is a compile error.
inline void fillEngineFields(JsonRow& row, const formal::EngineStats& stats) {
#define AUTOSVA_BENCH_FIELD(key, member) row.key = stats.member;
    AUTOSVA_ENGINE_JSON_U64_FIELDS(AUTOSVA_BENCH_FIELD)
    AUTOSVA_ENGINE_JSON_DOUBLE_FIELDS(AUTOSVA_BENCH_FIELD)
#undef AUTOSVA_BENCH_FIELD
}

/// Fills a row's engine-derived fields from a verification report.
inline JsonRow reportRow(std::string name, std::string design,
                         const sva::VerificationReport& report, double wallSeconds) {
    JsonRow row;
    row.name = std::move(name);
    row.design = std::move(design);
    row.wall_s = wallSeconds;
    fillEngineFields(row, report.engineStats);
    row.props = report.results.size();
    return row;
}

struct DesignRun {
    core::FormalTestbench ft;
    sva::VerificationReport report;
};

/// Generates the FT for a registered design and verifies it with the
/// built-in engine.
inline formal::EngineOptions defaultBenchEngine() {
    formal::EngineOptions opts;
    // Every seeded bug shows within ~10 cycles and lassos close within ~15
    // frames; a shallow BMC keeps the harness fast while PDR provides the
    // unbounded proofs.
    opts.bmcDepth = 15;
    return opts;
}

inline DesignRun runDesign(const std::string& name, uint64_t bug,
                           bool withExtension = true,
                           const std::vector<const core::FormalTestbench*>& subFts = {},
                           formal::EngineOptions engineOpts = defaultBenchEngine()) {
    const auto& info = designs::design(name);
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    DesignRun run{core::generateFT(info.rtl, genOpts, diags), {}};

    core::VerifyOptions vopts;
    vopts.engine = engineOpts;
    if (bug != 0 || !withExtension) vopts.engine.pdrMaxQueries = 30000;
    if (info.hasBugParam) vopts.paramOverrides["BUG"] = bug;
    if (withExtension && !info.extensionSva.empty())
        vopts.extraSources.push_back(info.extensionSva);
    vopts.submoduleFts = subFts;
    run.report = core::verify(designs::rtlSources(info), run.ft, vopts, diags);
    return run;
}

inline void banner(const std::string& title) {
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace autosva::bench
