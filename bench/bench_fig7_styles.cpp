// Regenerates the paper's Fig. 7 / §IV "Applying the AutoSVA language to
// RTL modules" case studies — how the one transaction abstraction covers
// different interface styles:
//   * single ongoing transaction (no transid)         — dtlb_ptw
//   * multiple outstanding transactions (transid)     — mem_engine_noc
//   * no ack signal / ack derived from other signals  — dtlb_ptw's active
//   * implicit definitions from the naming convention — echo-style ports
// Also quantifies AB3 (implicit vs explicit annotations): annotation LoC
// needed for the same property set.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace autosva;

namespace {

core::FormalTestbench gen(const std::string& rtl) {
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    return core::generateFT(rtl, opts, diags);
}

// Fully convention-named interface: zero attribute annotations needed.
const char* kImplicitRtl = R"(
module conv (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: req -in> res
  */
  input  wire       req_val,
  output wire       req_ack,
  input  wire [1:0] req_transid,
  input  wire [3:0] req_data,
  output wire       res_val,
  output wire [1:0] res_transid,
  output wire [3:0] res_data
);
  assign req_ack = 1'b0;
  assign res_val = 1'b0;
  assign res_transid = '0;
  assign res_data = '0;
endmodule
)";

// The same interface with nonconforming names: every attribute explicit.
const char* kExplicitRtl = R"(
module expl (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: req -in> res
  req_val = in_valid
  req_ack = in_ready
  [1:0] req_transid = in_tag
  [3:0] req_data = in_payload
  res_val = out_valid
  [1:0] res_transid = out_tag
  [3:0] res_data = out_payload
  */
  input  wire       in_valid,
  output wire       in_ready,
  input  wire [1:0] in_tag,
  input  wire [3:0] in_payload,
  output wire       out_valid,
  output wire [1:0] out_tag,
  output wire [3:0] out_payload
);
  assign in_ready = 1'b0;
  assign out_valid = 1'b0;
  assign out_tag = '0;
  assign out_payload = '0;
endmodule
)";

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("Fig. 7: interface styles covered by the transaction abstraction");

    util::TextTable table({"style", "example", "annot LoC", "props", "tracked by"});
    std::vector<bench::JsonRow> jsonRows;

    {
        auto ft = gen(designs::design("ariane_ptw").rtl);
        table.addRow({"single ongoing txn + derived ack", "dtlb_ptw (PTW)",
                      std::to_string(ft.annotationLines), std::to_string(ft.numProperties()),
                      "no transid: counter only"});
        jsonRows.push_back({"single-txn", "ariane_ptw", ft.generationSeconds, 0, 0,
                            static_cast<size_t>(ft.numProperties())});
    }
    {
        auto ft = gen(designs::design("noc_buffer").rtl);
        table.addRow({"multiple outstanding txns", "mem_engine_noc (NoC buffer)",
                      std::to_string(ft.annotationLines), std::to_string(ft.numProperties()),
                      "symbolic transid"});
        jsonRows.push_back({"multi-txn", "noc_buffer", ft.generationSeconds, 0, 0,
                            static_cast<size_t>(ft.numProperties())});
    }
    {
        auto ft = gen(designs::design("ariane_lsu").rtl);
        table.addRow({"unique transaction ids", "lsu_load (LSU)",
                      std::to_string(ft.annotationLines), std::to_string(ft.numProperties()),
                      "symbolic transid + uniqueness"});
        jsonRows.push_back({"unique-ids", "ariane_lsu", ft.generationSeconds, 0, 0,
                            static_cast<size_t>(ft.numProperties())});
    }

    auto implicitFt = gen(kImplicitRtl);
    auto explicitFt = gen(kExplicitRtl);
    table.addRow({"implicit (naming convention)", "conv", std::to_string(implicitFt.annotationLines),
                  std::to_string(implicitFt.numProperties()), "ports auto-detected"});
    table.addRow({"explicit (renamed signals)", "expl", std::to_string(explicitFt.annotationLines),
                  std::to_string(explicitFt.numProperties()), "per-attribute mapping"});

    std::cout << table.str();

    std::cout << "\nAB3 ablation (implicit vs explicit): the naming convention reduces the\n"
              << "annotation effort from " << explicitFt.annotationLines << " to "
              << implicitFt.annotationLines << " line(s) for an identical property set ("
              << implicitFt.numProperties() << " vs " << explicitFt.numProperties()
              << " properties).\n"
              << "The paper's Mem Engine FT needed just 3 lines because its interfaces\n"
              << "matched the convention (\"val and ack attributes match interface names\").\n";
    jsonRows.push_back({"implicit", "-", implicitFt.generationSeconds, 0, 0,
                        static_cast<size_t>(implicitFt.numProperties())});
    jsonRows.push_back({"explicit", "-", explicitFt.generationSeconds, 0, 0,
                        static_cast<size_t>(explicitFt.numProperties())});
    bench::writeJson(jsonPath, "fig7_styles", jsonRows);
    return implicitFt.numProperties() == explicitFt.numProperties() ? 0 : 1;
}
