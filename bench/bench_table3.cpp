// Regenerates the paper's Table III: "RTL modules tested with AutoSVA" —
// the per-module formal-verification outcome, including the bug->fix->proof
// transitions described in §IV.
//
// Shape target (not absolute numbers): the verdict column must match the
// paper. Our backend is the built-in BMC/k-induction/PDR engine instead of
// JasperGold 2015.12, so runtimes differ; who-proves and who-fails must not.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace autosva;
using bench::runDesign;

namespace {

std::string secondsStr(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("Table III: RTL modules tested with AutoSVA (reproduction)");

    util::TextTable table({"RTL Module", "Paper result", "Reproduced result", "time"});
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    std::vector<bench::JsonRow> jsonRows;

    // --- A1: PTW ---
    {
        util::Stopwatch sw;
        auto run = runDesign("ariane_ptw", 0);
        table.addRow({"A1. Page Table Walker (PTW)", designs::design("ariane_ptw").paperResult,
                      run.report.outcomeSummary(), secondsStr(sw.seconds())});
        jsonRows.push_back(bench::reportRow("A1", "ariane_ptw", run.report, sw.seconds()));
    }
    // --- A2: TLB ---
    {
        util::Stopwatch sw;
        auto run = runDesign("ariane_tlb", 0);
        table.addRow({"A2. Trans. Look. Buffer (TLB)", designs::design("ariane_tlb").paperResult,
                      run.report.outcomeSummary(), secondsStr(sw.seconds())});
        jsonRows.push_back(bench::reportRow("A2", "ariane_tlb", run.report, sw.seconds()));
    }
    // --- A3: MMU — buggy first, then fixed ---
    {
        util::Stopwatch sw;
        auto buggy = runDesign("ariane_mmu", 1);
        jsonRows.push_back(bench::reportRow("A3-buggy", "ariane_mmu", buggy.report, sw.seconds()));
        util::Stopwatch swFixed;
        auto fixed = runDesign("ariane_mmu", 0);
        jsonRows.push_back(
            bench::reportRow("A3-fixed", "ariane_mmu", fixed.report, swFixed.seconds()));
        std::string outcome;
        if (buggy.report.anyFailed() && fixed.report.allProven())
            outcome = "Bug found and fixed -> 100% proof";
        else
            outcome = "buggy: " + buggy.report.outcomeSummary() +
                      " / fixed: " + fixed.report.outcomeSummary();
        table.addRow({"A3. Memory Mgmt. Unit (MMU)", designs::design("ariane_mmu").paperResult,
                      outcome, secondsStr(sw.seconds())});
    }
    // --- A4: LSU (bug present in the paper's snapshot) ---
    {
        util::Stopwatch sw;
        auto run = runDesign("ariane_lsu", 1);
        std::string outcome = run.report.anyFailed()
                                  ? "Hit known bug (" + run.report.firstFailure()->name + ")"
                                  : run.report.outcomeSummary();
        table.addRow({"A4. Load Store Unit (LSU)", designs::design("ariane_lsu").paperResult,
                      outcome, secondsStr(sw.seconds())});
        jsonRows.push_back(bench::reportRow("A4", "ariane_lsu", run.report, sw.seconds()));
    }
    // --- A5: L1-I$ ---
    {
        util::Stopwatch sw;
        auto run = runDesign("ariane_icache", 1);
        std::string outcome = run.report.anyFailed()
                                  ? "Hit known bug (" + run.report.firstFailure()->name + ")"
                                  : run.report.outcomeSummary();
        table.addRow({"A5. L1-I$ (write-back)", designs::design("ariane_icache").paperResult,
                      outcome, secondsStr(sw.seconds())});
        jsonRows.push_back(bench::reportRow("A5", "ariane_icache", run.report, sw.seconds()));
    }
    // --- O1: NoC buffer ---
    {
        util::Stopwatch sw;
        auto buggy = runDesign("noc_buffer", 1);
        jsonRows.push_back(bench::reportRow("O1-buggy", "noc_buffer", buggy.report, sw.seconds()));
        util::Stopwatch swFixed;
        auto fixed = runDesign("noc_buffer", 0);
        jsonRows.push_back(
            bench::reportRow("O1-fixed", "noc_buffer", fixed.report, swFixed.seconds()));
        std::string outcome;
        if (buggy.report.anyFailed() && fixed.report.allProven())
            outcome = "Bug found and fixed -> 100% proof";
        else
            outcome = "buggy: " + buggy.report.outcomeSummary() +
                      " / fixed: " + fixed.report.outcomeSummary();
        table.addRow({"O1. NoC Buffer", designs::design("noc_buffer").paperResult, outcome,
                      secondsStr(sw.seconds())});
    }
    // --- O2: L1.5 with the buffer FT linked (-AM) ---
    {
        util::Stopwatch sw;
        core::FormalTestbench bufFt =
            core::generateFT(designs::design("noc_buffer").rtl, genOpts, diags);
        auto run = runDesign("l15_noc_wrapper", 0, true, {&bufFt});
        const auto* bufLive = run.report.find("as__mem_engine_noc_eventual_response");
        const auto* coreLive = run.report.find("as__l15_core_eventual_response");
        bool bufferProof = bufLive && bufLive->status == formal::Status::Proven;
        bool otherCex = coreLive && coreLive->status == formal::Status::Failed;
        std::string outcome = bufferProof && otherCex
                                  ? "NoC Buffer proof, other CEXs"
                                  : run.report.outcomeSummary();
        table.addRow({"O2. L1.5$ (private) ", designs::design("l15_noc_wrapper").paperResult,
                      outcome, secondsStr(sw.seconds())});
    }

    std::cout << table.str();

    std::cout << "\nRows match the paper when 'Paper result' and 'Reproduced result' agree in\n"
                 "kind (proof vs bug vs mixed). See EXPERIMENTS.md for the discussion.\n";
    return 0;
}
