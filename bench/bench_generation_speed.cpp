// Benchmarks the §III-C claim: "AutoSVA generates FTs in under a second".
// google-benchmark over the full generation pipeline (parse + scan +
// transaction build + property/bind/tool-file generation) for every
// registered design, plus the individual stages for the largest one.
//
// The custom main additionally splits the pipeline wall-clock into
// parse / propgen / elaborate rows for the common --json emitter and
// GATES the typed-AST pipeline contract:
//   1. zero re-lex/re-parse of generated property text on the
//      verification path (the property-module AST goes straight to the
//      elaborator; verified against Parser::sourceParseCount), and
//   2. generation+elaboration end-to-end no slower than the legacy
//      re-parse baseline (parse DUT again + re-parse printed artifacts).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/autosva.hpp"
#include "core/interface_scan.hpp"
#include "core/language.hpp"
#include "designs/designs.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"
#include "verilog/parser.hpp"

using namespace autosva;

namespace {

void BM_GenerateFT(benchmark::State& state, const std::string& designName) {
    const auto& info = designs::design(designName);
    for (auto _ : state) {
        util::DiagEngine diags;
        core::AutoSvaOptions opts;
        auto ft = core::generateFT(info.rtl, opts, diags);
        benchmark::DoNotOptimize(ft.propertyFile.data());
    }
}

void BM_ParseRtl(benchmark::State& state) {
    const auto& info = designs::design("ariane_mmu");
    for (auto _ : state) {
        auto file = verilog::Parser::parseSource(info.rtl, "ariane_mmu.sv");
        benchmark::DoNotOptimize(file.modules.data());
    }
}

void BM_ParseAnnotations(benchmark::State& state) {
    const auto& info = designs::design("ariane_mmu");
    for (auto _ : state) {
        util::DiagEngine diags;
        auto set = core::parseAnnotations(info.rtl, "ariane_mmu.sv", diags);
        benchmark::DoNotOptimize(set.transactions.data());
    }
}

constexpr int kTimingReps = 3; ///< Best-of-N to dampen scheduler noise.

struct StageSplit {
    double parseS = 0.0;
    double propgenS = 0.0;
    double elabAstS = 0.0;     ///< New path: property AST straight to the elaborator.
    double elabReparseS = 0.0; ///< Legacy baseline: re-parse the printed artifacts.
    size_t props = 0;
    uint64_t astPathParses = 0; ///< parseSource calls on the AST path.
    size_t rtlSourceCount = 0;
};

StageSplit measureDesign(const designs::DesignInfo& info) {
    StageSplit split;
    split.parseS = 1e99;
    split.propgenS = 1e99;
    split.elabAstS = 1e99;
    split.elabReparseS = 1e99;

    std::vector<std::string> sources = designs::rtlSources(info);
    std::vector<std::string> sourceNames = designs::rtlSourceNames(info);
    split.rtlSourceCount = sources.size();

    core::AutoSvaOptions genOpts;
    genOpts.sourcePath = info.name + ".sv";

    for (int rep = 0; rep < kTimingReps; ++rep) {
        util::DiagEngine diags;

        // Stage 1: lex + parse the annotated RTL.
        util::Stopwatch sw;
        verilog::SourceFile file = verilog::Parser::parseSource(info.rtl, genOpts.sourcePath);
        split.parseS = std::min(split.parseS, sw.seconds());

        // Stages 2-4: interface scan, annotation parse, property generation
        // (the typed-AST construction incl. printed projections).
        sw.reset();
        core::DutInterface dut = core::scanInterface(file, {}, diags);
        core::AnnotationSet ann = core::parseAnnotations(info.rtl, genOpts.sourcePath, diags);
        core::buildTransactions(ann.transactions, dut, diags);
        core::PropGenResult gen = core::generateProperties(dut, ann.transactions, {});
        split.propgenS = std::min(split.propgenS, sw.seconds());
        split.props = gen.properties.size();

        core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
        core::VerifyOptions vopts;
        vopts.sourcePaths = sourceNames;

        // New path: parsed DUT sources + generated AST -> elaborator.
        uint64_t parses0 = verilog::Parser::sourceParseCount();
        sw.reset();
        auto design = core::elaborateWithFT(sources, ft, vopts, diags);
        split.elabAstS = std::min(split.elabAstS, sw.seconds());
        split.astPathParses = verilog::Parser::sourceParseCount() - parses0;
        benchmark::DoNotOptimize(design.get());

        // Legacy baseline: what every verification run paid before the
        // typed-AST pipeline — re-parse the DUT for the interface scan and
        // re-lex/re-parse the printed property + bind text.
        sw.reset();
        verilog::SourceFile rescanned =
            verilog::Parser::parseSource(sources[0], genOpts.sourcePath);
        core::DutInterface dut2 = core::scanInterface(rescanned, {}, diags);
        std::vector<std::string> legacySources = sources;
        legacySources.push_back(ft.propertyFile);
        legacySources.push_back(ft.bindFile);
        ir::ElabOptions elabOpts;
        elabOpts.tieOffs[dut2.resetName] = dut2.resetActiveLow ? 1u : 0u;
        auto legacy = ir::elaborateSources(legacySources, ft.dutName, diags, elabOpts);
        split.elabReparseS = std::min(split.elabReparseS, sw.seconds());
        benchmark::DoNotOptimize(legacy.get());
    }
    return split;
}

} // namespace

BENCHMARK_CAPTURE(BM_GenerateFT, ptw, std::string("ariane_ptw"));
BENCHMARK_CAPTURE(BM_GenerateFT, tlb, std::string("ariane_tlb"));
BENCHMARK_CAPTURE(BM_GenerateFT, mmu, std::string("ariane_mmu"));
BENCHMARK_CAPTURE(BM_GenerateFT, lsu, std::string("ariane_lsu"));
BENCHMARK_CAPTURE(BM_GenerateFT, icache, std::string("ariane_icache"));
BENCHMARK_CAPTURE(BM_GenerateFT, noc_buffer, std::string("noc_buffer"));
BENCHMARK_CAPTURE(BM_GenerateFT, l15, std::string("l15_noc_wrapper"));
BENCHMARK_CAPTURE(BM_GenerateFT, mem_engine, std::string("mem_engine"));
BENCHMARK(BM_ParseRtl);
BENCHMARK(BM_ParseAnnotations);

// Custom main instead of BENCHMARK_MAIN(): supports the common --json
// emitter (per-design stage-split rows measured directly) and enforces
// the zero-reparse + no-slower-than-baseline gates.
int main(int argc, char** argv) {
    std::string jsonPath = autosva::bench::extractJsonPath(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<autosva::bench::JsonRow> rows;
    double totalAst = 0.0, totalReparse = 0.0;
    bool reparseFree = true;
    for (const auto& info : autosva::designs::allDesigns()) {
        StageSplit s = measureDesign(info);
        rows.push_back({"parse", info.name, s.parseS, 0, 0, s.props});
        rows.push_back({"propgen", info.name, s.propgenS, 0, 0, s.props});
        rows.push_back({"elaborate_ast", info.name, s.elabAstS, 0, 0, s.props});
        rows.push_back({"elaborate_reparse", info.name, s.elabReparseS, 0, 0, s.props});
        totalAst += s.parseS + s.propgenS + s.elabAstS;
        totalReparse += s.parseS + s.propgenS + s.elabReparseS;
        if (s.astPathParses != s.rtlSourceCount) {
            reparseFree = false;
            std::printf("FAIL %s: AST path parsed %llu buffers for %zu RTL sources "
                        "(generated text was re-parsed)\n",
                        info.name.c_str(),
                        static_cast<unsigned long long>(s.astPathParses), s.rtlSourceCount);
        }
        std::printf("%-16s parse %7.3f ms  propgen %7.3f ms  elab(ast) %7.3f ms  "
                    "elab(reparse) %7.3f ms\n",
                    info.name.c_str(), s.parseS * 1e3, s.propgenS * 1e3, s.elabAstS * 1e3,
                    s.elabReparseS * 1e3);
    }
    std::printf("end-to-end generation+elaboration: ast %.3f ms vs reparse-baseline %.3f ms "
                "(%.1f%%)\n",
                totalAst * 1e3, totalReparse * 1e3, 100.0 * totalAst / totalReparse);
    autosva::bench::writeJson(jsonPath, "generation_speed", rows);

    if (!reparseFree) return 1;
    // Noise-tolerant bound: the AST path drops the generated-text lex+parse
    // entirely, so end-to-end must not regress past baseline + 10%.
    if (totalAst > totalReparse * 1.10) {
        std::printf("FAIL: AST pipeline end-to-end (%.3f ms) slower than the re-parse "
                    "baseline (%.3f ms)\n",
                    totalAst * 1e3, totalReparse * 1e3);
        return 1;
    }
    std::printf("PASS: zero generated-text re-parses; end-to-end within budget\n");
    return 0;
}
