// Benchmarks the §III-C claim: "AutoSVA generates FTs in under a second".
// google-benchmark over the full generation pipeline (parse + scan +
// transaction build + property/bind/tool-file generation) for every
// registered design, plus the individual stages for the largest one.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/autosva.hpp"
#include "core/interface_scan.hpp"
#include "core/language.hpp"
#include "designs/designs.hpp"
#include "util/stopwatch.hpp"
#include "verilog/parser.hpp"

using namespace autosva;

namespace {

void BM_GenerateFT(benchmark::State& state, const std::string& designName) {
    const auto& info = designs::design(designName);
    for (auto _ : state) {
        util::DiagEngine diags;
        core::AutoSvaOptions opts;
        auto ft = core::generateFT(info.rtl, opts, diags);
        benchmark::DoNotOptimize(ft.propertyFile.data());
    }
}

void BM_ParseRtl(benchmark::State& state) {
    const auto& info = designs::design("ariane_mmu");
    for (auto _ : state) {
        auto file = verilog::Parser::parseSource(info.rtl, "dut.sv");
        benchmark::DoNotOptimize(file.modules.data());
    }
}

void BM_ParseAnnotations(benchmark::State& state) {
    const auto& info = designs::design("ariane_mmu");
    for (auto _ : state) {
        util::DiagEngine diags;
        auto set = core::parseAnnotations(info.rtl, "dut.sv", diags);
        benchmark::DoNotOptimize(set.transactions.data());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_GenerateFT, ptw, std::string("ariane_ptw"));
BENCHMARK_CAPTURE(BM_GenerateFT, tlb, std::string("ariane_tlb"));
BENCHMARK_CAPTURE(BM_GenerateFT, mmu, std::string("ariane_mmu"));
BENCHMARK_CAPTURE(BM_GenerateFT, lsu, std::string("ariane_lsu"));
BENCHMARK_CAPTURE(BM_GenerateFT, icache, std::string("ariane_icache"));
BENCHMARK_CAPTURE(BM_GenerateFT, noc_buffer, std::string("noc_buffer"));
BENCHMARK_CAPTURE(BM_GenerateFT, l15, std::string("l15_noc_wrapper"));
BENCHMARK_CAPTURE(BM_GenerateFT, mem_engine, std::string("mem_engine"));
BENCHMARK(BM_ParseRtl);
BENCHMARK(BM_ParseAnnotations);

// Custom main instead of BENCHMARK_MAIN(): supports the common --json
// emitter (one generation-timing row per registered design, measured
// directly — google-benchmark's own JSON uses a different schema).
int main(int argc, char** argv) {
    std::string jsonPath = autosva::bench::extractJsonPath(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!jsonPath.empty()) {
        std::vector<autosva::bench::JsonRow> rows;
        for (const auto& info : autosva::designs::allDesigns()) {
            autosva::util::DiagEngine diags;
            autosva::util::Stopwatch sw;
            auto ft = autosva::core::generateFT(info.rtl, {}, diags);
            rows.push_back({"generation", info.name, sw.seconds(), 0, 0,
                            static_cast<size_t>(ft.numProperties())});
        }
        autosva::bench::writeJson(jsonPath, "generation_speed", rows);
    }
    return 0;
}
