// Proof-cache effectiveness: cold run (empty cache) vs warm rerun on the
// Ariane MMU and LSU property sets, reporting the warm hit rate and the
// wall-clock ratio, with a three-way verdict cross-check against a
// cache-disabled run (the soundness contract: the cache may only change
// how fast a verdict arrives, never which verdict).
//
// Run:  bench_cache_warm_vs_cold [rounds]
// Exit: non-zero if any verdict diverges, or if the warm rerun misses the
//       cache for any obligation (the 100%-hit contract for unchanged RTL).
#include <filesystem>
#include <iostream>
#include <unistd.h>

#include "bench_common.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/engine.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;

struct Measurement {
    double seconds = 0.0;
    std::string canonical;
    formal::EngineStats stats;
    size_t props = 0;
};

/// One Engine run over a pre-elaborated design; `rounds` > 1 keeps the
/// fastest wall clock (the canonical verdicts must not vary). The timer
/// covers Engine construction too, so the warm numbers honestly include
/// opening and loading the on-disk proof log.
Measurement measure(const ir::Design& design, formal::EngineOptions opts, int rounds) {
    Measurement m;
    m.seconds = 1e30;
    for (int round = 0; round < rounds; ++round) {
        util::Stopwatch sw;
        formal::Engine engine(design, opts);
        sva::VerificationReport report;
        report.results = engine.checkAll();
        m.seconds = std::min(m.seconds, sw.seconds());
        m.canonical = report.canonical();
        m.stats = engine.stats();
        m.props = report.results.size();
    }
    return m;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    int rounds = argc > 1 ? std::atoi(argv[1]) : 1;
    if (rounds < 1) {
        std::cerr << "usage: bench_cache_warm_vs_cold [rounds>=1] [--json PATH]\n";
        return 2;
    }
    namespace fs = std::filesystem;
    const fs::path cacheRoot =
        fs::temp_directory_path() / ("autosva_bench_cache_" + std::to_string(getpid()));

    bench::banner("Proof cache: cold vs warm verification");
    bool ok = true;
    std::vector<bench::JsonRow> rows;
    for (const std::string& name : {std::string("ariane_mmu"), std::string("ariane_lsu")}) {
        const auto& info = designs::design(name);
        util::DiagEngine diags;
        core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
        core::VerifyOptions vopts;
        vopts.engine = bench::defaultBenchEngine();
        vopts.engine.pdrMaxQueries = 30000; // Bound the tail: throughput bench.
        if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
        auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags,
                                            /*tieReset=*/true);

        const std::string dir = (cacheRoot / name).string();
        formal::EngineOptions disabled = vopts.engine;
        formal::EngineOptions cached = vopts.engine;
        cached.cacheDir = dir;

        Measurement base = measure(*design, disabled, rounds);
        Measurement cold = measure(*design, cached, 1); // Populates the cache.
        Measurement warm = measure(*design, cached, rounds);

        bool identical = base.canonical == cold.canonical && cold.canonical == warm.canonical;
        bool allHit = warm.stats.cacheLookups > 0 &&
                      warm.stats.cacheHits == warm.stats.cacheLookups;
        bool noWarmSat = warm.stats.satCalls == 0;
        ok = ok && identical && allHit && noWarmSat;

        double hitRate = warm.stats.cacheLookups == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(warm.stats.cacheHits) /
                                   static_cast<double>(warm.stats.cacheLookups);
        std::printf("%-12s  no-cache: %7.2fs   cold: %7.2fs   warm: %7.2fs   "
                    "speedup(warm vs no-cache): %6.1fx\n",
                    name.c_str(), base.seconds, cold.seconds, warm.seconds,
                    base.seconds / warm.seconds);
        std::printf("%-12s  warm hits: %llu/%llu (%.1f%%)   warm SAT calls: %llu   "
                    "verdicts: %s\n",
                    "", static_cast<unsigned long long>(warm.stats.cacheHits),
                    static_cast<unsigned long long>(warm.stats.cacheLookups), hitRate,
                    static_cast<unsigned long long>(warm.stats.satCalls),
                    identical ? (allHit && noWarmSat ? "identical, SAT-free warm rerun"
                                                     : "identical")
                              : "DIVERGED");

        const size_t props = warm.props;
        rows.push_back(
            {"no-cache", name, base.seconds, base.stats.satCalls, base.stats.conflicts, props});
        rows.push_back(
            {"cold", name, cold.seconds, cold.stats.satCalls, cold.stats.conflicts, props});
        rows.push_back(
            {"warm", name, warm.seconds, warm.stats.satCalls, warm.stats.conflicts, props});
    }
    bench::writeJson(jsonPath, "cache_warm_vs_cold", rows);

    std::error_code ec;
    fs::remove_all(cacheRoot, ec);
    if (!ok) {
        std::cout << "\nFAIL: cached verdicts diverged or warm rerun missed the cache\n";
        return 1;
    }
    return 0;
}
