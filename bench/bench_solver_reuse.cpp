// Solver-reuse A/B: per-worker incremental solver contexts vs the legacy
// throwaway-solver path on the Ariane MMU and LSU property sets.
//
// Measures wall clock and the encoder counters (Tseitin variables /
// clauses created by the strategy-layer solvers) for {reuse on, off} x
// {jobs 1, 4}, and cross-checks the determinism contract: the canonical
// report must be byte-identical across all four configurations.
//
// Run:  bench_solver_reuse [rounds] [--json PATH] [--no-aig-rewrite]
// Exit: non-zero if any configuration's canonical report diverges, or if
//       reuse saves less than 40% of the encoder variables (the
//       re-encoding cost the architecture exists to kill).
//
// --no-aig-rewrite runs the whole A/B on the legacy (unrewritten) graph —
// the opt-out path now that EngineOptions::aigRewrite defaults ON; CI's
// rewrite matrix runs both legs and uploads both JSON artifacts.
#include <iostream>

#include "bench_common.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/engine.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;

struct Measurement {
    double seconds = 0.0;
    std::string canonical;
    formal::EngineStats stats;
    size_t props = 0;
};

Measurement measure(const ir::Design& design, formal::EngineOptions opts, int rounds) {
    Measurement m;
    m.seconds = 1e30;
    for (int round = 0; round < rounds; ++round) {
        formal::Engine engine(design, opts);
        util::Stopwatch sw;
        sva::VerificationReport report;
        report.results = engine.checkAll();
        m.seconds = std::min(m.seconds, sw.seconds());
        m.canonical = report.canonical();
        m.stats = engine.stats();
        m.props = report.results.size();
    }
    return m;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bool aigRewrite = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-aig-rewrite") != 0) continue;
        aigRewrite = false;
        for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
        --argc;
        break;
    }
    int rounds = argc > 1 ? std::atoi(argv[1]) : 1;
    if (rounds < 1) {
        std::cerr << "usage: bench_solver_reuse [rounds>=1] [--json PATH] [--no-aig-rewrite]\n";
        return 2;
    }

    bench::banner(std::string("Per-worker incremental solver reuse vs throwaway solvers") +
                  (aigRewrite ? "" : " (legacy unrewritten graph)"));
    std::vector<bench::JsonRow> rows;
    bool ok = true;
    for (const std::string& name : {std::string("ariane_mmu"), std::string("ariane_lsu")}) {
        const auto& info = designs::design(name);
        util::DiagEngine diags;
        core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
        core::VerifyOptions vopts;
        vopts.engine = bench::defaultBenchEngine();
        vopts.engine.pdrMaxQueries = 30000; // Bound the PDR tail: throughput bench.
        if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
        auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags,
                                            /*tieReset=*/true);

        // Two workloads: the full pipeline (PDR's internal frame solvers
        // dominate and are untouched by pooling — their var counts are an
        // additive constant on both sides), and the frontier loop (BMC +
        // k-induction, usePdr=false) — the fast generate->verify iteration
        // path whose per-obligation re-encoding the pool exists to kill.
        for (int frontier = 0; frontier < 2; ++frontier) {
            Measurement m[2][2]; // [reuse][jobs4]
            for (int reuse = 0; reuse < 2; ++reuse) {
                for (int par = 0; par < 2; ++par) {
                    formal::EngineOptions opts = vopts.engine;
                    opts.aigRewrite = aigRewrite;
                    opts.usePdr = frontier == 0;
                    opts.solverReuse = reuse == 1;
                    opts.jobs = par == 1 ? 4 : 1;
                    m[reuse][par] = measure(*design, opts, rounds);
                }
            }
            const Measurement& legacy = m[0][0];
            const Measurement& pooled = m[1][0];
            const char* mode = frontier ? "frontier" : "full";

            bool identical = true;
            for (int reuse = 0; reuse < 2; ++reuse)
                for (int par = 0; par < 2; ++par)
                    identical = identical && m[reuse][par].canonical == legacy.canonical;

            double varSave =
                legacy.stats.encoderVars == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(pooled.stats.encoderVars) /
                                static_cast<double>(legacy.stats.encoderVars);
            double clauseSave =
                legacy.stats.encoderClauses == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(pooled.stats.encoderClauses) /
                                static_cast<double>(legacy.stats.encoderClauses);
            double speedup1 = pooled.seconds > 0 ? legacy.seconds / pooled.seconds : 0.0;
            double speedup4 =
                m[1][1].seconds > 0 ? m[0][1].seconds / m[1][1].seconds : 0.0;

            std::printf("%-12s %-8s jobs=1  legacy: %6.2fs  pooled: %6.2fs  speedup: %.2fx\n",
                        name.c_str(), mode, legacy.seconds, pooled.seconds, speedup1);
            std::printf("%-12s %-8s jobs=4  legacy: %6.2fs  pooled: %6.2fs  speedup: %.2fx\n",
                        "", mode, m[0][1].seconds, m[1][1].seconds, speedup4);
            std::printf("%-12s %-8s encoder vars: %llu -> %llu (-%.0f%%)   clauses: %llu -> "
                        "%llu (-%.0f%%)   reuses: %llu   verdicts: %s\n",
                        "", mode, static_cast<unsigned long long>(legacy.stats.encoderVars),
                        static_cast<unsigned long long>(pooled.stats.encoderVars),
                        100.0 * varSave,
                        static_cast<unsigned long long>(legacy.stats.encoderClauses),
                        static_cast<unsigned long long>(pooled.stats.encoderClauses),
                        100.0 * clauseSave,
                        static_cast<unsigned long long>(pooled.stats.solverReuses),
                        identical ? "identical" : "DIVERGED");

            // Gate the exit code on the machine-independent facts only
            // (determinism and encoder savings); wall-clock speedups are
            // reported and land in the JSON rows.
            ok = ok && identical && varSave >= 0.40;
            for (int reuse = 0; reuse < 2; ++reuse) {
                for (int par = 0; par < 2; ++par) {
                    bench::JsonRow row;
                    row.name = std::string(mode) + (reuse ? "-pooled" : "-legacy") +
                               (par ? "-jobs4" : "-jobs1");
                    row.design = name;
                    row.wall_s = m[reuse][par].seconds;
                    bench::fillEngineFields(row, m[reuse][par].stats);
                    row.props = legacy.props;
                    rows.push_back(row);
                }
            }
        }
    }

    bench::writeJson(jsonPath, "solver_reuse", rows);
    if (!ok) {
        std::cout << "\nFAIL: verdicts diverged across configurations, or solver reuse "
                     "saved <40% encoder variables\n";
        return 1;
    }
    return 0;
}
