// AB1 — ablation of a §III-B design choice: symbolic transaction-ID
// tracking ("a single assertion can be used to reason about all lines of a
// cache if a symbolic signal is used to index") versus explicitly
// enumerating one assertion per ID value.
//
// Both formulations are checked on the (fixed) NoC buffer. The symbolic
// form uses AutoSVA's generated FT (one tracker); the enumerated form
// instantiates the tracking counter once per concrete ID. The table
// reports property counts, monitor state bits, and engine effort.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "formal/engine.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace autosva;

namespace {

// Hand-written per-ID property module (what a designer would write without
// symbolic variables): the tracking logic replicated for each of 4 IDs.
const char* kEnumeratedProp = R"(
module noc_buffer_enum_prop (
  input wire clk_i,
  input wire rst_ni,
  input wire noc1buffer_req_val_i,
  input wire noc1buffer_req_rdy_o,
  input wire [1:0] noc1buffer_req_mshrid_i,
  input wire noc1buffer_enc_val_o,
  input wire noc1buffer_enc_rdy_i,
  input wire [1:0] noc1buffer_enc_mshrid_o
);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);

  wire req_hsk = noc1buffer_req_val_i && noc1buffer_req_rdy_o;
  wire enc_hsk = noc1buffer_enc_val_o && noc1buffer_enc_rdy_i;

  reg [3:0] sampled0;
  wire set0 = req_hsk && noc1buffer_req_mshrid_i == 2'd0;
  wire rsp0 = enc_hsk && noc1buffer_enc_mshrid_o == 2'd0;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) sampled0 <= '0;
    else if (set0 || rsp0) sampled0 <= sampled0 + set0 - rsp0;
  end
  as__evresp0: assert property (set0 |-> s_eventually (rsp0));
  as__hadreq0: assert property (rsp0 |-> set0 || sampled0 > 0);
  am__maxout0: assume property (sampled0 >= 4'd8 |-> !set0);

  reg [3:0] sampled1;
  wire set1 = req_hsk && noc1buffer_req_mshrid_i == 2'd1;
  wire rsp1 = enc_hsk && noc1buffer_enc_mshrid_o == 2'd1;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) sampled1 <= '0;
    else if (set1 || rsp1) sampled1 <= sampled1 + set1 - rsp1;
  end
  as__evresp1: assert property (set1 |-> s_eventually (rsp1));
  as__hadreq1: assert property (rsp1 |-> set1 || sampled1 > 0);
  am__maxout1: assume property (sampled1 >= 4'd8 |-> !set1);

  reg [3:0] sampled2;
  wire set2 = req_hsk && noc1buffer_req_mshrid_i == 2'd2;
  wire rsp2 = enc_hsk && noc1buffer_enc_mshrid_o == 2'd2;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) sampled2 <= '0;
    else if (set2 || rsp2) sampled2 <= sampled2 + set2 - rsp2;
  end
  as__evresp2: assert property (set2 |-> s_eventually (rsp2));
  as__hadreq2: assert property (rsp2 |-> set2 || sampled2 > 0);
  am__maxout2: assume property (sampled2 >= 4'd8 |-> !set2);

  reg [3:0] sampled3;
  wire set3 = req_hsk && noc1buffer_req_mshrid_i == 2'd3;
  wire rsp3 = enc_hsk && noc1buffer_enc_mshrid_o == 2'd3;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) sampled3 <= '0;
    else if (set3 || rsp3) sampled3 <= sampled3 + set3 - rsp3;
  end
  as__evresp3: assert property (set3 |-> s_eventually (rsp3));
  as__hadreq3: assert property (rsp3 |-> set3 || sampled3 > 0);
  am__maxout3: assume property (sampled3 >= 4'd8 |-> !set3);

  // Drain fairness (same as the generated FT's enc-side assumption).
  am__enc_fair: assume property (noc1buffer_enc_val_o |->
                                 s_eventually (noc1buffer_enc_rdy_i));
endmodule

bind noc_buffer noc_buffer_enum_prop enum_prop_i (.*);
)";

struct Row {
    std::string name;
    int properties = 0;
    int stateBits = 0;
    double seconds = 0;
    uint64_t satCalls = 0;
    bool allProven = false;
    uint64_t conflicts = 0;
};

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("AB1: symbolic transaction-ID tracking vs per-ID enumeration");

    const auto& info = designs::design("noc_buffer");
    util::DiagEngine diags;

    Row symbolic;
    {
        core::AutoSvaOptions genOpts;
        genOpts.includeCovers = false;
        genOpts.includeXprop = false;
        core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 0;
        auto design = core::elaborateWithFT({info.rtl}, ft, vopts, diags);
        util::Stopwatch sw;
        formal::Engine engine(*design);
        auto results = engine.checkAll();
        symbolic = {"symbolic (generated)", ft.numProperties(), design->stateBits(),
                    sw.seconds(), engine.stats().satCalls, true, engine.stats().conflicts};
        for (const auto& r : results)
            if (r.status == formal::Status::Failed || r.status == formal::Status::Unknown)
                symbolic.allProven = false;
    }

    Row enumerated;
    {
        ir::ElabOptions elabOpts;
        elabOpts.paramOverrides["BUG"] = 0;
        elabOpts.tieOffs["rst_ni"] = 1;
        auto design =
            ir::elaborateSources({info.rtl, kEnumeratedProp}, "noc_buffer", diags, elabOpts);
        util::Stopwatch sw;
        formal::Engine engine(*design);
        auto results = engine.checkAll();
        enumerated = {"enumerated (per-ID)", 13, design->stateBits(), sw.seconds(),
                      engine.stats().satCalls, true, engine.stats().conflicts};
        for (const auto& r : results)
            if (r.status == formal::Status::Failed || r.status == formal::Status::Unknown)
                enumerated.allProven = false;
    }

    util::TextTable table({"formulation", "properties", "monitor+DUT state bits", "engine time",
                           "SAT queries", "all proven"});
    for (const Row* row : {&symbolic, &enumerated}) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2fs", row->seconds);
        table.addRow({row->name, std::to_string(row->properties),
                      std::to_string(row->stateBits), buf, std::to_string(row->satCalls),
                      row->allProven ? "yes" : "NO"});
    }
    std::cout << table.str();
    std::cout << "\nThe symbolic form needs one tracker regardless of the ID-space size;\n"
                 "the enumerated form replicates monitor state and properties per ID\n"
                 "(4x here, 2^W in general), which is why AutoSVA emits symbolic indices\n"
                 "(§III-B: \"written to be most efficient for FV tools to run\").\n";
    bench::writeJson(jsonPath, "ablation_symbolic",
                     {{symbolic.name, "noc_buffer", symbolic.seconds, symbolic.satCalls,
                       symbolic.conflicts, static_cast<size_t>(symbolic.properties)},
                      {enumerated.name, "noc_buffer", enumerated.seconds, enumerated.satCalls,
                       enumerated.conflicts, static_cast<size_t>(enumerated.properties)}});
    return symbolic.allProven && enumerated.allProven ? 0 : 1;
}
