// Deadline enforcement: verifies the --time-budget contract on the Ariane
// MMU — the design whose unbudgeted run takes tens of seconds — across a
// ladder of budgets. For every budget the run must (a) terminate within
// budget + grace (expiry cancels in-flight solves, it never abandons
// them, so the drain is bounded but nonzero), (b) report every obligation
// (decided or honestly degraded to unknown), and (c) never flip a decided
// verdict relative to the unbudgeted reference.
//
// Run:  bench_deadline [--json PATH]
// Exit: non-zero if any budgeted run overshoots budget + grace, drops an
//       obligation, or decides a property differently than the reference.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "formal/scheduler.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;
using formal::Status;

/// Cancellation is cooperative: a budget only takes effect at the next
/// solver poll point, so the hard bound is budget + one solve tail. The
/// grace is deliberately generous — this bench gates "terminates promptly"
/// (seconds, not the minutes the full run takes), not scheduler latency.
constexpr double kGraceSeconds = 20.0;

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    if (argc > 1) {
        std::cerr << "usage: bench_deadline [--json PATH]\n";
        return 2;
    }

    bench::banner("Deadline enforcement: --time-budget on ariane_mmu");
    const auto& info = designs::design("ariane_mmu");
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine = bench::defaultBenchEngine();
    auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags,
                                        /*tieReset=*/true);

    bool ok = true;
    std::vector<bench::JsonRow> rows;

    // Unbudgeted reference: the verdicts a budgeted run may degrade but
    // never contradict. Bounded PDR keeps the reference itself tractable.
    formal::EngineOptions base = vopts.engine;
    base.pdrMaxQueries = 30000;
    std::map<std::string, Status> reference;
    size_t slots = 0;
    double referenceSeconds = 0.0;
    {
        util::Stopwatch sw;
        formal::ObligationScheduler scheduler(*design, base);
        sva::VerificationReport report;
        report.results = scheduler.run();
        report.engineStats = scheduler.stats();
        referenceSeconds = sw.seconds();
        slots = report.results.size();
        for (const auto& r : report.results) reference[r.name] = r.status;
        rows.push_back(bench::reportRow("reference", "ariane_mmu", report,
                                        referenceSeconds));
        std::printf("  %-14s wall=%7.3fs props=%zu\n", "reference", referenceSeconds,
                    slots);
    }

    for (double budget : {0.05, 0.5, 2.0}) {
        formal::EngineOptions opts = base;
        opts.timeBudgetSeconds = budget;
        util::Stopwatch sw;
        formal::ObligationScheduler scheduler(*design, opts);
        sva::VerificationReport report;
        report.results = scheduler.run();
        report.engineStats = scheduler.stats();
        double wall = sw.seconds();

        size_t degraded = 0;
        for (const auto& r : report.results) {
            if (r.unknownReason != formal::UnknownReason::None) ++degraded;
            auto ref = reference.find(r.name);
            if (ref == reference.end()) continue;
            if (r.status != Status::Unknown && ref->second != Status::Unknown &&
                r.status != ref->second) {
                std::cerr << "FAIL: " << r.name << " decided "
                          << formal::statusName(r.status) << " under budget " << budget
                          << "s but " << formal::statusName(ref->second)
                          << " unbudgeted\n";
                ok = false;
            }
        }
        if (report.results.size() != slots) {
            std::cerr << "FAIL: budget " << budget << "s reported "
                      << report.results.size() << "/" << slots << " obligations\n";
            ok = false;
        }
        if (wall > budget + kGraceSeconds) {
            std::cerr << "FAIL: budget " << budget << "s ran " << wall
                      << "s (> budget + " << kGraceSeconds << "s grace)\n";
            ok = false;
        }
        if (degraded != report.engineStats.deadlineDegraded) {
            std::cerr << "FAIL: stats report " << report.engineStats.deadlineDegraded
                      << " degraded obligations, results carry " << degraded << "\n";
            ok = false;
        }

        char name[32];
        std::snprintf(name, sizeof name, "budget-%.2fs", budget);
        rows.push_back(bench::reportRow(name, "ariane_mmu", report, wall));
        std::printf("  %-14s wall=%7.3fs degraded=%zu/%zu %s\n", name, wall, degraded,
                    slots, report.degraded() ? "(degraded)" : "");
    }

    bench::writeJson(jsonPath, "deadline", rows);
    if (!ok) {
        std::cout << "RESULT: FAIL\n";
        return 1;
    }
    std::cout << "RESULT: OK — every budgeted run terminated in bound, covered every "
                 "obligation, and contradicted no reference verdict\n";
    return 0;
}
