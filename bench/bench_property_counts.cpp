// Regenerates the paper's §IV effort statistics: "AutoSVA generated a
// total of 236 unique properties based on 110 LoC of annotations".
//
// Prints per-module annotation LoC and generated property counts (split by
// directive), plus the totals. Absolute numbers differ from the paper —
// the original evaluated the full Ariane/OpenPiton RTL with more
// interfaces per module — but the leverage ratio (properties per
// annotation line, here and in the paper roughly 2x) is the claim under
// test.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace autosva;

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("Paper stats: properties generated vs annotation effort (cf. 236 / 110 LoC)");

    util::TextTable table({"Module", "annot LoC", "props", "assert", "assume", "cover",
                           "xprop", "liveness"});
    int totalLoc = 0;
    int totalProps = 0;
    std::vector<bench::JsonRow> jsonRows;

    for (const auto& info : designs::allDesigns()) {
        util::DiagEngine diags;
        core::AutoSvaOptions opts;
        core::FormalTestbench ft = core::generateFT(info.rtl, opts, diags);
        table.addRow({info.id + ". " + info.name, std::to_string(ft.annotationLines),
                      std::to_string(ft.numProperties()), std::to_string(ft.numAssertions()),
                      std::to_string(ft.numAssumptions()), std::to_string(ft.numCovers()),
                      std::to_string(ft.numProperties() - ft.numAssertions() -
                                     ft.numAssumptions() - ft.numCovers()),
                      std::to_string(ft.numLiveness())});
        totalLoc += ft.annotationLines;
        totalProps += ft.numProperties();
        jsonRows.push_back({"generation", info.name, ft.generationSeconds, 0, 0,
                            static_cast<size_t>(ft.numProperties())});
    }
    table.addSeparator();
    table.addRow({"TOTAL", std::to_string(totalLoc), std::to_string(totalProps), "", "", "", "",
                  ""});
    std::cout << table.str();

    double ratio = totalLoc ? static_cast<double>(totalProps) / totalLoc : 0.0;
    std::cout << "\nLeverage: " << totalProps << " properties from " << totalLoc
              << " annotation lines (" << ratio << " properties/line; paper: 236/110 = 2.1)\n";
    bench::writeJson(jsonPath, "property_counts", jsonRows);
    return 0;
}
