// Regenerates the paper's Fig. 2: the modeling code and properties AutoSVA
// produces for the LSU load interface from the Fig. 3 annotations.
//
// Prints the generated property file for the ariane_lsu design and checks
// (programmatically) that each artifact class from Fig. 2 is present:
// the outstanding-transaction counter, the symbolic transaction id and its
// stability assumption, the request-stability assumption, the
// handshake-or-drop and eventual-response liveness assertions, the
// response-had-a-request safety assertion, and the request cover.
#include <iostream>

#include "bench_common.hpp"

using namespace autosva;

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("Fig. 2: generated formal testbench for the LSU load interface");

    const auto& info = designs::design("ariane_lsu");
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    core::FormalTestbench ft = core::generateFT(info.rtl, opts, diags);

    std::cout << ft.propertyFile << "\n";
    std::cout << "--- bind file ---\n" << ft.bindFile << "\n";

    struct Artifact {
        const char* what;
        const char* needle;
    };
    const Artifact artifacts[] = {
        {"transaction counter (Fig. 2 'counting transaction')", "lsu_load_sampled"},
        {"symbolic transaction id", "symb_lsu_load_transid"},
        {"symbolic stability assumption", "am__lsu_load_symb_transid_stable"},
        {"request stability assumption", "am__lsu_load_lsu_req_stability"},
        {"handshake-or-drop liveness", "as__lsu_load_lsu_req_hsk_or_drop"},
        {"eventual response liveness", "as__lsu_load_eventual_response"},
        {"response-had-a-request safety", "as__lsu_load_had_a_request"},
        {"request cover", "co__lsu_load_request_happens"},
    };

    int present = 0;
    std::cout << "--- Fig. 2 artifact checklist ---\n";
    for (const auto& a : artifacts) {
        bool found = ft.propertyFile.find(a.needle) != std::string::npos;
        std::cout << (found ? "  [ok]      " : "  [MISSING] ") << a.what << " (" << a.needle
                  << ")\n";
        if (found) ++present;
    }
    std::cout << "\n" << present << "/" << std::size(artifacts)
              << " Fig. 2 artifact classes regenerated; " << ft.numProperties()
              << " properties from " << ft.annotationLines << " annotation lines, in "
              << ft.generationSeconds * 1e3 << " ms (paper: under a second)\n";
    bench::writeJson(jsonPath, "fig2_lsu",
                     {{"generation", "ariane_lsu", ft.generationSeconds, 0, 0,
                       static_cast<size_t>(ft.numProperties())}});
    return present == std::size(artifacts) ? 0 : 1;
}
