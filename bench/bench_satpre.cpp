// Frozen-aware CNF preprocessing & inprocessing A/B (EngineOptions::satPre).
//
// Gates (exit non-zero on violation):
//  (1) Identity: for EVERY registered design, the canonical verification
//      report is byte-identical across {sat-pre on, off} x {jobs 1, 4}.
//      The simplification layer is verdict-invariant by construction —
//      bounded variable elimination, subsumption / self-subsuming
//      resolution, vivification and failed-literal probing all preserve
//      Sat/Unsat answers; only witness *values* may move, and those are
//      canonicalized away. This is why satPre is excluded from the cache
//      digest (cache/fingerprint.cpp) — this bench is the enforcement.
//  (2) Reduction: bounded variable elimination on a 10-frame unrolling of
//      the Ariane MMU bit-blast removes at least 30% of the CNF variables
//      (the frame frontier frozen, as the strategies do it).
//  (3) Wall clock: the MMU and LSU property sets end-to-end with sat-pre ON
//      must be no slower than the --no-sat-pre leg (tolerance 1.25x + 0.1s,
//      scaled by oversubscription; speedups land in the JSON rows).
//
// Run:  bench_satpre [rounds] [--json PATH]
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "formal/bitblast.hpp"
#include "formal/sat.hpp"
#include "formal/unroll.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;

struct RunOut {
    sva::VerificationReport report;
    double wall = 0.0; ///< verify() only — FT generation excluded.
};

RunOut runConfig(const std::string& designName, const formal::EngineOptions& eng, int rounds) {
    const auto& info = designs::design(designName);
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine = eng;
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    RunOut out;
    out.wall = 1e30;
    for (int r = 0; r < rounds; ++r) {
        util::Stopwatch sw;
        out.report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        out.wall = std::min(out.wall, sw.seconds());
    }
    return out;
}

formal::EngineOptions preOpts(bool satPre, int jobs) {
    formal::EngineOptions eng = bench::defaultBenchEngine();
    eng.pdrMaxQueries = 30000; // Bound the tail like the other throughput benches.
    eng.satPre = satPre;
    eng.jobs = jobs;
    return eng;
}

/// Gate 2: encode a `depth`-frame unrolling of the MMU transition relation
/// (every latch cone materialized at the last frame, which drags in all
/// frames below), freeze the frontier the way the strategies do, run a
/// forced elimination pass, and report the fraction of variables removed.
double mmuEliminationProbe(int depth, int& varsBefore, uint64_t& eliminated) {
    const auto& info = designs::design("ariane_mmu");
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine = bench::defaultBenchEngine();
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags,
                                        /*tieReset=*/true);
    formal::BitBlast bb = formal::bitblast(*design, /*rewrite=*/true);

    formal::SatSolver solver;
    solver.setPreprocessing(true);
    formal::Unroller un(bb.aig, solver, formal::Unroller::Init::Reset);
    for (uint32_t v = 0; v < bb.aig.numVars(); ++v)
        if (bb.aig.kind(v) == formal::Aig::VarKind::Latch)
            (void)un.lit(depth, formal::aigMkLit(v));
    un.freezeFrontier(depth);
    varsBefore = solver.numVars();
    solver.preprocess(/*force=*/true);
    eliminated = solver.varsEliminated();
    return varsBefore == 0 ? 0.0
                           : static_cast<double>(eliminated) / static_cast<double>(varsBefore);
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    int rounds = argc > 1 ? std::atoi(argv[1]) : 1;
    if (rounds < 1) {
        std::cerr << "usage: bench_satpre [rounds>=1] [--json PATH]\n";
        return 2;
    }
    unsigned hw = std::thread::hardware_concurrency();
    double oversub = std::max(1.0, 4.0 / std::max(1u, hw));

    bench::banner("Frozen-aware CNF preprocessing & inprocessing (sat-pre) A/B");
    std::vector<bench::JsonRow> rows;
    bool identical = true;

    // --- Gate 1: canonical-report identity matrix over every design ------
    struct Cfg {
        const char* tag;
        bool satPre;
        int jobs;
    };
    const Cfg matrix[] = {{"pre-off-j1", false, 1},
                          {"pre-off-j4", false, 4},
                          {"pre-on-j1", true, 1},
                          {"pre-on-j4", true, 4}};
    double offWall[2] = {0, 0}, onWall[2] = {0, 0}; // [0]=mmu, [1]=lsu.
    for (const auto& info : designs::allDesigns()) {
        std::string baseline;
        bool same = true;
        std::printf("%-16s", info.name.c_str());
        uint64_t elim = 0;
        for (const Cfg& cfg : matrix) {
            RunOut out = runConfig(info.name, preOpts(cfg.satPre, cfg.jobs), rounds);
            std::string canon = out.report.canonical();
            if (baseline.empty())
                baseline = canon;
            else
                same = same && canon == baseline;
            std::printf("  %s: %6.2fs", cfg.tag, out.wall);
            if (cfg.satPre) elim = out.report.engineStats.satPreVarsEliminated;
            int slot = info.name == "ariane_mmu" ? 0 : info.name == "ariane_lsu" ? 1 : -1;
            if (slot >= 0 && cfg.jobs == 1) (cfg.satPre ? onWall : offWall)[slot] = out.wall;
            rows.push_back(bench::reportRow(cfg.tag, info.name, out.report, out.wall));
        }
        std::printf("  elim: %llu  %s\n", static_cast<unsigned long long>(elim),
                    same ? "identical" : "DIVERGED");
        identical = identical && same;
    }

    // --- Gate 2: elimination strength on the MMU bit-blast ---------------
    bench::banner("Bounded variable elimination on the MMU 10-frame unrolling");
    int varsBefore = 0;
    uint64_t eliminated = 0;
    double reduction = mmuEliminationProbe(/*depth=*/10, varsBefore, eliminated);
    std::printf("vars: %d   eliminated: %llu   reduction: %.0f%%   (gate: >=30%%)\n",
                varsBefore, static_cast<unsigned long long>(eliminated), 100.0 * reduction);
    {
        bench::JsonRow row;
        row.name = "mmu-elim-probe";
        row.design = "ariane_mmu";
        row.pre_vars_elim = eliminated;
        row.props = static_cast<size_t>(varsBefore);
        rows.push_back(row);
    }

    // --- Gate 3: end-to-end wall clock, pre on vs off --------------------
    bench::banner("End-to-end wall clock (jobs=1, from the identity matrix)");
    bool fastEnough = true;
    const char* wallNames[2] = {"ariane_mmu", "ariane_lsu"};
    for (int i = 0; i < 2; ++i) {
        double bound = offWall[i] * 1.25 * oversub + 0.1;
        bool okWall = onWall[i] <= bound;
        fastEnough = fastEnough && okWall;
        std::printf("%-12s off: %6.2fs   on: %6.2fs   bound: %6.2fs   speedup: %.2fx%s\n",
                    wallNames[i], offWall[i], onWall[i], bound,
                    onWall[i] > 0 ? offWall[i] / onWall[i] : 0.0, okWall ? "" : "   TOO SLOW");
    }

    bench::writeJson(jsonPath, "satpre", rows);

    if (!identical) {
        std::cout << "\nFAIL: canonical reports diverged across sat-pre/jobs configs\n";
        return 1;
    }
    if (reduction < 0.30) {
        std::cout << "\nFAIL: elimination removed <30% of the MMU unrolling's variables\n";
        return 1;
    }
    if (!fastEnough) {
        std::cout << "\nFAIL: sat-pre made the MMU/LSU end-to-end runs slower than the "
                     "--no-sat-pre leg\n";
        return 1;
    }
    std::cout << "\nOK: identity, elimination-strength, and wall-clock gates all hold\n";
    return 0;
}
