// AB2 — engine ablation: unbounded liveness checking (s_eventually via the
// liveness-to-safety transformation + PDR) versus a bounded-response
// approximation (assert the response arrives within N cycles, a plain
// safety property).
//
// Bounded-response is the workaround designers use when a tool lacks
// liveness support; it is cheaper but unsound in both directions: too small
// an N yields spurious CEXs, and no N can express "eventually" under
// unbounded-latency fairness (the environment may take arbitrarily long to
// grant). This bench quantifies that on the PTW, whose walk latency is
// unbounded (it depends on D-cache fairness).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "formal/engine.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosva;

namespace {

// Bounded-response property module for the PTW's dtlb transaction:
// response within N cycles of the accepted request.
std::string boundedProp(int n) {
    std::string mod = R"(
module ptw_bounded_prop (
  input wire clk_i,
  input wire rst_ni,
  input wire dtlb_miss_i,
  input wire ptw_active_o,
  input wire ptw_update_valid_o,
  input wire ptw_error_o,
  input wire dreq_val_o,
  input wire dreq_gnt_i,
  input wire dres_val_i
);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);

  wire set = dtlb_miss_i && !ptw_active_o;
  wire response = ptw_update_valid_o || ptw_error_o;

  // Environment fairness approximated by bounded grant/response latency.
  am__gnt_bounded: assume property (dreq_val_o |-> ##BOUND_N dreq_gnt_i || !dreq_val_o);
  am__res_bounded: assume property (dreq_val_o && dreq_gnt_i |-> ##BOUND_N dres_val_i);

  reg [7:0] timer;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) timer <= 8'd0;
    else if (set) timer <= 8'd1;
    else if (response) timer <= 8'd0;
    else if (timer != 8'd0) timer <= timer + 8'd1;
  end
  as__bounded_response: assert property (timer <= 8'dBOUND_TOTAL);
endmodule

bind ariane_ptw ptw_bounded_prop bounded_i (.*);
)";
    std::string out = util::replaceAll(mod, "BOUND_N", std::to_string(n));
    return util::replaceAll(out, "BOUND_TOTAL", std::to_string(4 * n + 4));
}

struct Row {
    std::string variant;
    std::string verdict;
    double seconds = 0;
    std::string note;
    uint64_t satCalls = 0;
    uint64_t conflicts = 0;
    size_t props = 0;
};

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("AB2: unbounded liveness (l2s + PDR) vs bounded-response approximation");

    const auto& info = designs::design("ariane_ptw");
    std::vector<Row> rows;

    // --- Unbounded: the generated FT with s_eventually. ---
    {
        util::DiagEngine diags;
        core::AutoSvaOptions genOpts;
        core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
        util::Stopwatch sw;
        auto report = core::verify({info.rtl}, ft, {}, diags);
        const auto* live = report.find("as__dtlb_ptw_eventual_response");
        rows.push_back({"s_eventually (l2s + PDR)",
                        live ? formal::statusName(live->status) : "?", sw.seconds(),
                        "sound for any environment latency", report.engineStats.satCalls,
                        report.engineStats.conflicts, report.results.size()});
    }

    // --- Bounded-response with tight and loose bounds. ---
    for (int n : {1, 4}) {
        util::DiagEngine diags;
        ir::ElabOptions elabOpts;
        elabOpts.tieOffs["rst_ni"] = 1;
        auto design = ir::elaborateSources({info.rtl, boundedProp(n)}, "ariane_ptw", diags,
                                           elabOpts);
        util::Stopwatch sw;
        formal::Engine engine(*design);
        auto results = engine.checkAll();
        std::string verdict = "?";
        for (const auto& r : results)
            if (r.name.find("as__bounded_response") != std::string::npos)
                verdict = formal::statusName(r.status);
        rows.push_back({"bounded response, N=" + std::to_string(n), verdict, sw.seconds(),
                        "only valid if the environment honours the bound",
                        engine.stats().satCalls, engine.stats().conflicts, results.size()});
    }

    util::TextTable table({"formulation", "verdict", "time", "caveat"});
    for (const auto& row : rows) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2fs", row.seconds);
        table.addRow({row.variant, row.verdict, buf, row.note});
    }
    std::cout << table.str();
    std::cout << "\nAutoSVA generates true s_eventually liveness (checked here via\n"
                 "liveness-to-safety + PDR, as JasperGold does natively) because bounded\n"
                 "approximations must re-derive a latency budget per environment and\n"
                 "silently under-approximate forward progress otherwise.\n";
    std::vector<bench::JsonRow> jsonRows;
    for (const auto& row : rows)
        jsonRows.push_back(
            {row.variant, "ariane_ptw", row.seconds, row.satCalls, row.conflicts, row.props});
    bench::writeJson(jsonPath, "ablation_liveness", jsonRows);
    return 0;
}
