// Parallel-discharge speedup: wall-clock of the obligation scheduler at 1
// vs N workers on the Ariane MMU and LSU property sets, with a verdict
// cross-check (per-property statuses, depths, and ordering must be
// byte-identical — the scheduler's determinism contract).
//
// Also measures phase B (the liveness frontier + lemma-DAG PDR waves) on
// its own and hard-gates it against regression: the wave-parallel lemma
// DAG must not make jobs=N phase B slower than jobs=1 on the Ariane MMU
// liveness set (with a small tolerance for scheduler overhead on
// wave-starved designs).
//
// Run:  bench_parallel_speedup [workers] [rounds]
// Exit: non-zero if any multi-worker run diverges from the sequential one,
//       or if the MMU phase-B wall clock regresses at jobs=N.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;

std::string fingerprint(const std::vector<formal::PropertyResult>& results) {
    std::ostringstream out;
    for (const auto& r : results)
        out << r.name << '|' << formal::statusName(r.status) << '|' << r.depth << '\n';
    return out.str();
}

struct Measurement {
    double seconds = 0.0;
    double phaseBSeconds = 0.0;
    std::string verdicts;
    formal::EngineStats stats;
    size_t props = 0;
};

/// Elaborates the design+FT once per call and times only checkAll() — the
/// part the scheduler parallelizes. `rounds` > 1 takes the fastest run.
Measurement measure(const std::string& designName, int jobs, int rounds) {
    const auto& info = designs::design(designName);
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine = bench::defaultBenchEngine();
    vopts.engine.pdrMaxQueries = 30000; // Bound the tail: this is a throughput bench.
    vopts.engine.jobs = jobs;
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    auto design =
        core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags, /*tieReset=*/true);

    Measurement m;
    m.seconds = 1e30;
    for (int round = 0; round < rounds; ++round) {
        formal::Engine engine(*design, vopts.engine);
        util::Stopwatch sw;
        auto results = engine.checkAll();
        double wall = sw.seconds();
        if (wall < m.seconds) {
            m.seconds = wall;
            m.phaseBSeconds = engine.stats().phaseBSeconds;
        }
        m.verdicts = fingerprint(results);
        m.stats = engine.stats();
        m.props = results.size();
    }
    return m;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    int workers = argc > 1 ? std::atoi(argv[1]) : 4;
    int rounds = argc > 2 ? std::atoi(argv[2]) : 1;
    if (workers < 2 || rounds < 1) {
        std::cerr << "usage: bench_parallel_speedup [workers>=2] [rounds>=1] [--json PATH]\n";
        return 2;
    }
    unsigned hw = std::thread::hardware_concurrency();

    bench::banner("Parallel obligation-discharge speedup (1 vs " + std::to_string(workers) +
                  " workers)");
    std::cout << "hardware threads: " << hw << "\n";
    if (hw < static_cast<unsigned>(workers))
        std::cout << "NOTE: fewer hardware threads than workers — speedup is "
                     "bounded by the hardware, expect ~1.0x on this machine\n";
    std::cout << "\n";

    bool identical = true;
    bool phaseBOk = true;
    std::vector<bench::JsonRow> rows;
    for (const std::string& name : {std::string("ariane_mmu"), std::string("ariane_lsu")}) {
        Measurement seq = measure(name, 1, rounds);
        Measurement par = measure(name, workers, rounds);
        bool same = seq.verdicts == par.verdicts;
        identical = identical && same;
        std::printf("%-14s  1 worker: %7.2fs   %d workers: %7.2fs   speedup: %.2fx   "
                    "verdicts: %s\n",
                    name.c_str(), seq.seconds, workers, par.seconds,
                    seq.seconds / par.seconds, same ? "identical" : "DIVERGED");
        std::printf("%-14s  phase B:  %7.2fs   %d workers: %7.2fs   speedup: %.2fx "
                    "(lemma-DAG waves)\n",
                    "", seq.phaseBSeconds, workers, par.phaseBSeconds,
                    par.phaseBSeconds > 0 ? seq.phaseBSeconds / par.phaseBSeconds : 0.0);
        // Hard gate (MMU liveness set): the lemma DAG must not make the
        // parallel phase B slower than the sequential one. The allowance
        // scales with hardware_concurrency: 15% absorbs noisy CI machines
        // and wave-starved scheduling overhead when the workers have real
        // cores; when the pool oversubscribes the hardware, N timesliced
        // workers legitimately cost up to N/hw of the sequential wall
        // clock, so the bound widens proportionally instead of going red
        // on small containers.
        if (name == "ariane_mmu") {
            double oversub =
                std::max(1.0, static_cast<double>(workers) / std::max(1u, hw));
            phaseBOk =
                phaseBOk && par.phaseBSeconds <= seq.phaseBSeconds * 1.15 * oversub + 0.05;
        }
        bench::JsonRow seqRow, parRow;
        seqRow.name = "jobs1";
        parRow.name = "jobs" + std::to_string(workers);
        for (auto* rp : {&seqRow, &parRow}) rp->design = name;
        bench::fillEngineFields(seqRow, seq.stats);
        bench::fillEngineFields(parRow, par.stats);
        seqRow.wall_s = seq.seconds;
        parRow.wall_s = par.seconds;
        seqRow.props = seq.props;
        parRow.props = par.props;
        rows.push_back(seqRow);
        rows.push_back(parRow);
        rows.push_back({"phaseB-jobs1", name, seq.phaseBSeconds, 0, 0, seq.props});
        rows.push_back({"phaseB-jobs" + std::to_string(workers), name, par.phaseBSeconds, 0,
                        0, par.props});
    }
    bench::writeJson(jsonPath, "parallel_speedup", rows);
    if (!identical) {
        std::cout << "\nFAIL: multi-worker verdicts diverged from sequential\n";
        return 1;
    }
    if (!phaseBOk) {
        std::cout << "\nFAIL: lemma-DAG phase B regressed at jobs="
                  << workers << " on the Ariane MMU liveness set\n";
        return 1;
    }
    return 0;
}
