// Regenerates the paper's §IV bug-discovery narrative (metric 2: "speed of
// bug discovery, based on tool runtime and trace length"):
//   * MMU fairness CEX:   "quick (<1 s)" and "short (<4 cycles)"
//   * MMU Bug1 (ghost):   "less than a second, producing a 5-cycle trace"
//   * LSU known bug:      "hit (in 1 second)"
//   * NoC buffer Bug2:    first CEX to the liveness assertion
// Prints wall time to the first counterexample and its trace length for
// each, plus the replayed waveform of the MMU ghost response.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "formal/replay.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace autosva;
using bench::runDesign;

namespace {

struct BugRow {
    std::string name;
    std::string paper;
    std::string property;
    std::string design;
    double seconds = 0;
    int depth = -1;
    bool found = false;
    uint64_t satCalls = 0;
    uint64_t conflicts = 0;
    size_t props = 0;
};

BugRow discover(const std::string& design, uint64_t bug, bool withExtension,
                const std::string& propertySuffix, const std::string& paper,
                const std::string& label) {
    BugRow row;
    row.name = label;
    row.paper = paper;
    row.design = design;
    util::Stopwatch sw;
    auto run = runDesign(design, bug, withExtension);
    const auto* r = run.report.find(propertySuffix);
    row.seconds = sw.seconds();
    row.satCalls = run.report.engineStats.satCalls;
    row.conflicts = run.report.engineStats.conflicts;
    row.props = run.report.results.size();
    if (r && r->status == formal::Status::Failed) {
        row.found = true;
        row.depth = r->depth;
        row.property = r->name;
    }
    return row;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    bench::banner("Bug discovery speed and trace length (paper §IV narrative)");

    std::vector<BugRow> rows;
    rows.push_back(discover("ariane_mmu", 0, /*withExtension=*/false,
                            "as__fetch_mmu_eventual_response",
                            "fairness CEX: <1s, <4-cycle trace", "MMU fairness (arb starvation)"));
    rows.push_back(discover("ariane_mmu", 1, /*withExtension=*/true,
                            "as__lsu_mmu_had_a_request",
                            "Bug1 ghost response: <1s, 5-cycle trace", "MMU Bug1 (ghost response)"));
    rows.push_back(discover("ariane_lsu", 1, true, "as__lsu_load_eventual_response",
                            "hit in 1 second", "LSU known bug (#538)"));
    rows.push_back(discover("ariane_icache", 1, true, "as__fetch_eventual_response",
                            "hit reported bug", "L1-I$ known bug (#474)"));
    rows.push_back(discover("noc_buffer", 1, true, "as__mem_engine_noc_eventual_response",
                            "first CEX to the liveness assertion", "NoC buffer Bug2 (deadlock)"));

    util::TextTable table({"bug", "paper reports", "found", "trace len", "wall time"});
    for (const auto& row : rows) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2fs", row.seconds);
        table.addRow({row.name, row.paper, row.found ? "yes" : "NO",
                      row.depth >= 0 ? std::to_string(row.depth) + " cycles" : "-", buf});
    }
    std::cout << table.str();

    // Show the ghost-response waveform, the paper's marquee trace.
    {
        const auto& info = designs::design("ariane_mmu");
        util::DiagEngine diags;
        core::AutoSvaOptions genOpts;
        core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
        core::VerifyOptions vopts;
        vopts.paramOverrides["BUG"] = 1;
        vopts.extraSources.push_back(info.extensionSva);
        auto report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        const auto* r = report.find("as__lsu_mmu_had_a_request");
        if (r && r->status == formal::Status::Failed) {
            auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags);
            std::cout << "\nMMU Bug1 counterexample (ghost response on the LSU channel):\n";
            std::cout << formal::formatTrace(
                *design, r->trace,
                {"lsu_req_val_i", "lsu_req_rdy_o", "lsu_req_misaligned_i", "lsu_res_val_o",
                 "lsu_res_exception_o", "d_walk_pend_q", "dres_val_i", "dres_fault_i"});
            std::cout << "Cycle " << r->depth
                      << ": a second (ghost) response fires with no outstanding request.\n";
        }
    }

    std::vector<bench::JsonRow> jsonRows;
    for (const auto& row : rows)
        jsonRows.push_back(
            {row.name, row.design, row.seconds, row.satCalls, row.conflicts, row.props});
    bench::writeJson(jsonPath, "bug_discovery", jsonRows);

    bool allFound = true;
    for (const auto& row : rows) allFound = allFound && row.found;
    return allFound ? 0 : 1;
}
