// Portfolio racing + global budget pool: the scheduler's first-verdict-wins
// leg ladder (see src/formal/portfolio.hpp) measured and hard-gated.
//
// Gates (exit non-zero on violation):
//  (1) Identity: for EVERY registered design, the canonical verification
//      report is byte-identical across {portfolio off, portfolio on} x
//      {jobs 1, jobs 4} with the same leg ladder — racing the ladder and
//      walking it sequentially must adopt the same leg (leg-order
//      adoption), for any worker count and any finish order.
//  (2) Budget pool: the Ariane MMU property set proves 100% (no Unknown
//      verdict) from a single 200k-query global pool — cheap closers
//      return unspent grant queries, budget-edge Unknowns draw refills.
//  (3) Wall clock: racing the MMU ladder must not be slower than walking
//      it sequentially. The allowance scales with hardware_concurrency —
//      on a container where the workers timeslice one core, racing
//      legitimately costs up to the oversubscription factor.
//
// Run:  bench_portfolio [workers] [--json PATH]
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace autosva;

struct RunOut {
    sva::VerificationReport report;
    double wall = 0.0; ///< verify() only — FT generation excluded.
};

RunOut runConfig(const std::string& designName, const formal::EngineOptions& eng) {
    const auto& info = designs::design(designName);
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine = eng;
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    RunOut out;
    util::Stopwatch sw;
    out.report = core::verify(designs::rtlSources(info), ft, vopts, diags);
    out.wall = sw.seconds();
    return out;
}

formal::EngineOptions ladderOpts(bool portfolio, int jobs, uint64_t pool) {
    formal::EngineOptions eng = bench::defaultBenchEngine();
    eng.pdrMaxQueries = 30000; // Bound the tail like the other throughput benches.
    eng.portfolioLegs = 2;     // Same ladder on both sides of every comparison.
    eng.portfolio = portfolio;
    eng.jobs = jobs;
    eng.budgetPoolQueries = pool;
    return eng;
}

bool hasUnknown(const sva::VerificationReport& report) {
    for (const auto& r : report.results)
        if (r.status == formal::Status::Unknown) return true;
    return false;
}

} // namespace

int main(int argc, char** argv) {
    std::string jsonPath = bench::extractJsonPath(argc, argv);
    int workers = argc > 1 ? std::atoi(argv[1]) : 4;
    if (workers < 2) {
        std::cerr << "usage: bench_portfolio [workers>=2] [--json PATH]\n";
        return 2;
    }
    unsigned hw = std::thread::hardware_concurrency();
    double oversub = std::max(1.0, static_cast<double>(workers) / std::max(1u, hw));

    bench::banner("Portfolio racing (leg-order adoption) + global budget pool");
    std::cout << "hardware threads: " << hw << ", raced workers: " << workers << "\n\n";

    std::vector<bench::JsonRow> rows;
    bool identical = true;

    // --- Gate 1: canonical-report identity matrix over every design ------
    struct Cfg {
        const char* tag;
        bool portfolio;
        int jobs;
    };
    const Cfg matrix[] = {{"off-j1", false, 1},
                          {"off-jN", false, workers},
                          {"on-j1", true, 1},
                          {"on-jN", true, workers}};
    for (const auto& info : designs::allDesigns()) {
        std::string baseline;
        bool same = true;
        std::printf("%-16s", info.name.c_str());
        for (const Cfg& cfg : matrix) {
            RunOut out = runConfig(info.name, ladderOpts(cfg.portfolio, cfg.jobs, 0));
            std::string canon = out.report.canonical();
            if (baseline.empty())
                baseline = canon;
            else
                same = same && canon == baseline;
            std::printf("  %s: %6.2fs", cfg.tag, out.wall);
            rows.push_back(bench::reportRow(cfg.tag, info.name, out.report, out.wall));
        }
        std::printf("  %s\n", same ? "identical" : "DIVERGED");
        identical = identical && same;
    }

    // --- Gates 2+3: MMU set on a 200k global pool, raced vs sequential ---
    bench::banner("Ariane MMU on a 200k-query global pool");
    RunOut seq = runConfig("ariane_mmu", ladderOpts(false, workers, 200000));
    RunOut race = runConfig("ariane_mmu", ladderOpts(true, workers, 200000));
    bool poolIdentical = seq.report.canonical() == race.report.canonical();
    identical = identical && poolIdentical;
    bool allDecided = !hasUnknown(race.report);
    double bound = seq.wall * 1.15 * oversub + 0.1;
    bool fastEnough = race.wall <= bound;
    std::printf("sequential ladder: %6.2fs   raced: %6.2fs   bound: %6.2fs   "
                "verdicts: %s, %s\n",
                seq.wall, race.wall, bound, poolIdentical ? "identical" : "DIVERGED",
                allDecided ? "100%% decided" : "UNKNOWNS REMAIN");
    std::printf("pool: returned=%llu refills=%llu  legs: launched=%llu cancelled=%llu\n",
                static_cast<unsigned long long>(race.report.engineStats.budgetQueriesReturned),
                static_cast<unsigned long long>(race.report.engineStats.budgetRefillsGranted),
                static_cast<unsigned long long>(race.report.engineStats.portfolioLegsLaunched),
                static_cast<unsigned long long>(race.report.engineStats.portfolioLegsCancelled));
    rows.push_back(bench::reportRow("pool-seq", "ariane_mmu", seq.report, seq.wall));
    rows.push_back(bench::reportRow("pool-race", "ariane_mmu", race.report, race.wall));

    bench::writeJson(jsonPath, "portfolio", rows);

    if (!identical) {
        std::cout << "\nFAIL: canonical reports diverged across portfolio/jobs configs\n";
        return 1;
    }
    if (!allDecided) {
        std::cout << "\nFAIL: MMU property set left Unknowns on a 200k global pool\n";
        return 1;
    }
    if (!fastEnough) {
        std::cout << "\nFAIL: racing the MMU ladder was slower than the sequential walk\n";
        return 1;
    }
    std::cout << "\nOK: identity, full-proof-on-pool, and wall-clock gates all hold\n";
    return 0;
}
