#!/usr/bin/env python3
"""Compare a bench --json artifact against a checked-in baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json

Rows are matched by (name, design). Two regression gates:

  * sat_calls: strictly machine-independent, so the bound is tight —
    a row fails when current > baseline * 1.10.
  * wall_s: machine-dependent, so per-row times are first normalized by
    the total-wall ratio (scale = sum(current) / sum(baseline)) to cancel
    out host speed; a row then fails when
    current > baseline * scale * 1.25. The normalization means the gate
    catches *relative* shifts (one configuration regressing against the
    others), not a slower CI machine.

Rows present only in the current run are informational (new measurements
are fine); rows present only in the baseline are reported as missing and
fail the run (a silently dropped measurement would blind the gate).

Exit codes: 0 ok, 1 regression, 2 usage/IO error.
"""

import json
import sys

SAT_CALLS_TOLERANCE = 1.10
WALL_TOLERANCE = 1.25


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("rows", [])
    return doc.get("bench", "?"), {(r.get("name"), r.get("design")): r for r in rows}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    bench_b, baseline = load_rows(sys.argv[1])
    bench_c, current = load_rows(sys.argv[2])
    if bench_b != bench_c:
        print(f"error: comparing different benches: {bench_b!r} vs {bench_c!r}",
              file=sys.stderr)
        sys.exit(2)

    shared = [k for k in baseline if k in current]
    missing = [k for k in baseline if k not in current]

    base_total = sum(baseline[k].get("wall_s", 0.0) for k in shared)
    cur_total = sum(current[k].get("wall_s", 0.0) for k in shared)
    scale = (cur_total / base_total) if base_total > 0 else 1.0

    failures = []
    for key in shared:
        b, c = baseline[key], current[key]
        label = f"{key[0]} [{key[1]}]"

        # A row that cancelled portfolio legs did timing-dependent partial
        # work — its sat_calls legitimately move between hosts; the wall
        # gate still covers it.
        raced = b.get("legs_cancelled", 0) > 0 or c.get("legs_cancelled", 0) > 0
        b_calls, c_calls = b.get("sat_calls", 0), c.get("sat_calls", 0)
        if not raced and b_calls > 0 and c_calls > b_calls * SAT_CALLS_TOLERANCE:
            failures.append(
                f"{label}: sat_calls {b_calls} -> {c_calls} "
                f"(+{100.0 * (c_calls / b_calls - 1):.0f}%, limit +10%)")

        b_wall, c_wall = b.get("wall_s", 0.0), c.get("wall_s", 0.0)
        bound = b_wall * scale * WALL_TOLERANCE
        # Sub-100ms rows are dominated by noise; the sat_calls gate still
        # covers them.
        if b_wall >= 0.1 and c_wall > bound:
            failures.append(
                f"{label}: wall {b_wall:.2f}s -> {c_wall:.2f}s "
                f"(normalized bound {bound:.2f}s at host scale {scale:.2f})")

    for key in missing:
        failures.append(f"{key[0]} [{key[1]}]: row missing from current run")

    print(f"bench {bench_b}: {len(shared)} rows compared "
          f"(host wall scale {scale:.2f}), {len(failures)} regression(s)")
    for f in failures:
        print(f"  REGRESSION: {f}")
    new_rows = [k for k in current if k not in baseline]
    for key in new_rows:
        print(f"  note: new row {key[0]} [{key[1]}] (not in baseline)")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
