// The `autosva` command-line tool — the user experience of the original
// Python script: point it at an annotated RTL file, get a ready-to-run
// formal testbench, optionally run the built-in engine on the spot.
//
//   autosva gen  <dut.sv> [-o OUTDIR] [--tool jasper|sby|all] [--assert-inputs]
//   autosva run  <dut.sv> [extra.sv ...] [--bug N] [--depth N] [--no-liveness]
//   autosva sim  <dut.sv> [--cycles N] [--seed N] [--vcd FILE]
//   autosva list                     # registered paper designs
//   autosva run-design <name> [...]  # verify a registered design
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "cache/store.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/replay.hpp"
#include "obs/profile.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"
#include "robust/faultinject.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace autosva;
namespace fs = std::filesystem;

/// SIGINT/SIGTERM request an orderly stop: the engine's watchdog relays
/// this flag into every in-flight solver, the run drains to a partial
/// (degraded) report, and artifacts still flush. A second signal while the
/// drain is in progress exits immediately.
std::atomic<bool> gStopRequested{false};

extern "C" void handleStopSignal(int) {
    if (gStopRequested.exchange(true)) std::_Exit(130);
}

[[noreturn]] void usage() {
    std::cerr <<
        R"(autosva — generate and run formal testbenches from RTL annotations

usage:
  autosva gen  <dut.sv> [-o OUTDIR] [--tool jasper|sby|all] [--assert-inputs]
               [--no-xprop] [--max-outstanding N] [--dut NAME]
  autosva run  <dut.sv> [extra.sv ...] [--param NAME=VALUE] [--depth N]
               [--jobs N] [--pdr-queries N] [--pdr-retries N]
               [--portfolio] [--portfolio-legs N] [--budget-pool N]
               [--time-budget S] [--obligation-timeout S]
               [--no-liveness] [--no-covers]
               [--cache-dir DIR] [--no-cache] [--cache-stats] [--cache-compact]
               [--stats] [--no-solver-reuse] [--no-aig-rewrite] [--no-sat-pre]
               [--profile] [--trace-out FILE] [--events-out FILE]
               [--stats-json FILE] [--fault-inject SPEC]
  autosva sim  <dut.sv> [--cycles N] [--seed N] [--vcd FILE]
  autosva list
  autosva cache compact [--cache-dir DIR]
  autosva run-design <name> [--bug 0|1] [--depth N] [--jobs N]
               [--pdr-queries N] [--pdr-retries N]
               [--portfolio] [--portfolio-legs N] [--budget-pool N]
               [--time-budget S] [--obligation-timeout S]
               [--cache-dir DIR] [--no-cache] [--cache-stats] [--cache-compact]
               [--stats] [--no-solver-reuse] [--no-aig-rewrite] [--no-sat-pre]
               [--profile] [--trace-out FILE] [--events-out FILE]
               [--stats-json FILE] [--fault-inject SPEC]
  autosva profile <dut.sv | design-name> [run options]
               # sugar for run/run-design with --profile

options:
  --jobs N         worker threads for property discharge (default 1; 0 = one
                   per hardware thread). Per-property verdicts, depths, and
                   report ordering are identical for every value of N.
  --pdr-queries N  PDR SAT-query budget per property (default 1000000).
                   Verdicts are monotone in the budget: raising it can only
                   turn Unknowns into proofs or counterexamples.
  --pdr-retries N  budget-edge retry allowance (default 2): a query-budget
                   Unknown resumes on its learned frames with a fresh budget
                   and a rotated generalization order up to N times.
  --portfolio-legs N  extra PDR race legs per property beyond the canonical
                   attempt (default 0). Each leg searches at a different
                   (fixed) generalization rotation; legs can close
                   budget-edge properties the canonical schedule leaves
                   Unknown, so this knob affects verdicts and cache keys.
  --portfolio      race each property's PDR leg ladder across the worker
                   pool instead of walking it sequentially; losers are
                   cancelled mid-solve. Adoption is by leg order (never
                   finish order), so the report is byte-identical to the
                   sequential ladder for any --jobs. Implies
                   --portfolio-legs 2 unless set explicitly.
  --budget-pool N  global PDR query budget shared by the whole property
                   set, replacing the per-property --pdr-queries cap: each
                   property reserves an equal grant, cheap closers return
                   unspent queries, and budget-edge Unknowns draw
                   deterministic refills at phase barriers until the pool
                   drains. Affects verdicts, hence cache keys.
  --time-budget S  wall-clock budget for the whole run, in (fractional)
                   seconds. On expiry every in-flight solve is cancelled
                   and remaining obligations report unknown(run-budget);
                   the run always terminates within the budget plus a
                   small cancellation grace, with a well-formed (degraded)
                   report covering every obligation. Verdicts present are
                   sound, but a deadline run forfeits the byte-identical
                   canonical-report contract.
  --obligation-timeout S  per-obligation wall-clock deadline, cumulative
                   across that obligation's pipeline stages; an expired
                   obligation degrades to unknown(timeout) while the rest
                   of the run proceeds normally. SIGINT/SIGTERM stop the
                   run the same orderly way (partial report, artifacts
                   flushed, exit 130); a second signal exits immediately.
  --fault-inject SPEC  deterministic fault injection for robustness
                   testing: SPEC is site:N[,site:N...] — fire the fault at
                   the N-th (1-based) hit of the site. Sites: cache-read,
                   cache-write, solver-interrupt, bitblast-alloc,
                   propgen-alloc ($AUTOSVA_FAULT_INJECT is the env
                   equivalent). Injected faults degrade (cache off,
                   obligation unknown) — never crash, never flip a
                   verdict; a summary of fired sites prints at exit.
  --cache-dir DIR  persistent proof-cache directory (default:
                   $AUTOSVA_CACHE_DIR, else $XDG_CACHE_HOME/autosva, else
                   ~/.cache/autosva). Reruns of unchanged obligations are
                   answered from the cache without SAT work, with verdicts
                   identical to an uncached run; after an RTL edit, prior
                   proofs may seed PDR (re-validated — pass/fail verdicts
                   never depend on cache contents).
  --no-cache       disable the proof cache for this run.
  --cache-stats    print proof-cache hit/seed statistics after the report.
  --cache-compact  compact the proof-cache log after the run: keep the
                   newest record per key, drop corrupt records, atomically
                   swap in the fresh generation (also available standalone
                   as `autosva cache compact`).
  --stats          print engine counters after the report: SAT calls,
                   conflicts, propagations, encoder vars/clauses created,
                   cones materialized, solver reuses, and the PDR frame/
                   generalization/retry counters.
  --no-solver-reuse  discharge every obligation on a throwaway solver
                   instead of the per-worker incremental solver contexts.
                   Verdicts, depths, and traces are identical either way;
                   this exists for A/B measurement (bench_solver_reuse).
  --no-aig-rewrite disable the post-bit-blast AIG structural rewrite
                   (strashing / absorption / latch merging) and run on the
                   legacy unrewritten graph. The rewrite is deterministic,
                   semantics-preserving, and ON by default; canonical
                   verdicts are identical either way (A/B: CI's rewrite
                   matrix, bench_solver_reuse --no-aig-rewrite).
  --no-sat-pre     disable the SAT solver's CNF simplification layer
                   (frozen-aware bounded variable elimination, subsumption /
                   self-subsuming resolution, and restart-boundary
                   vivification + failed-literal probing) and solve the raw
                   bit-blasted CNF. The layer is verdict-invariant and ON by
                   default; canonical reports are byte-identical either way
                   — only witness values may differ (A/B: CI's sat-pre
                   matrix, bench_satpre).
  --profile        print the run profile after the report: top slowest
                   properties with per-stage time/query breakdowns, worker
                   utilization, the phase timeline, and cache
                   effectiveness. Tracing is verdict-inert: the report is
                   byte-identical with or without it, at any --jobs.
  --trace-out FILE write the run's event timeline as Chrome trace-event
                   JSON (open in Perfetto or chrome://tracing; one track
                   per worker lane plus the scheduler track).
  --events-out FILE  write the raw event stream as JSONL (one event object
                   per line, merged across threads in timestamp order).
  --stats-json FILE  write a machine-readable run manifest: engine and
                   frontend counters plus per-property verdicts/depths/
                   times (schema autosva-run-v1, shared with the bench
                   harness --json field list).
)";
    std::exit(2);
}

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "error: cannot open '" << path << "'\n";
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void writeFile(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
    std::cout << "  wrote " << path.string() << " (" << content.size() << " bytes)\n";
}

/// The one validated numeric parser every flag goes through (--jobs,
/// --depth, --cycles, --seed, --bug, --max-outstanding, --param values).
/// Rejects trailing garbage, signs, and out-of-range values with a
/// consistent diagnostic instead of silently wrapping.
[[nodiscard]] uint64_t parseUnsigned(const std::string& what, const std::string& text,
                                     uint64_t min, uint64_t max) {
    bool malformed = text.empty() || text[0] == '-' || text[0] == '+';
    uint64_t value = 0;
    if (!malformed) {
        try {
            size_t pos = 0;
            value = std::stoull(text, &pos);
            malformed = pos != text.size();
        } catch (const std::exception&) {
            malformed = true;
        }
    }
    if (malformed || value < min || value > max) {
        std::cerr << "error: " << what << " expects an integer in [" << min << ", " << max
                  << "], got '" << text << "'\n";
        std::exit(2);
    }
    return value;
}

/// Fractional-seconds parser for the deadline flags: positive, finite,
/// no trailing garbage.
[[nodiscard]] double parseSeconds(const std::string& what, const std::string& text) {
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || !std::isfinite(value) ||
        value <= 0.0) {
        std::cerr << "error: " << what << " expects a positive number of seconds, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return value;
}

/// Fails fast (exit 2) when an output-file flag points somewhere
/// unwritable — before any verification work, not after hours of solving.
/// The probe opens in append mode so a pre-existing file is untouched; a
/// file the probe had to create is removed again.
void requireWritablePath(const char* flag, const std::string& path) {
    std::error_code ec;
    const bool existed = fs::exists(path, ec);
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::cerr << "error: " << flag << " path '" << path << "' is not writable\n";
        std::exit(2);
    }
    probe.close();
    if (!existed) fs::remove(path, ec);
}

struct Args {
    std::vector<std::string> positional;
    std::unordered_map<std::string, std::string> options;
    std::vector<std::pair<std::string, uint64_t>> params;

    [[nodiscard]] bool has(const std::string& name) const { return options.count(name) != 0; }
    [[nodiscard]] std::string get(const std::string& name, const std::string& dflt) const {
        auto it = options.find(name);
        return it == options.end() ? dflt : it->second;
    }
    [[nodiscard]] long getInt(const std::string& name, long dflt, uint64_t min = 0,
                              uint64_t max = 1000000000) const {
        auto it = options.find(name);
        if (it == options.end()) return dflt;
        return static_cast<long>(parseUnsigned(name, it->second, min, max));
    }
    /// --jobs with the 0 = one-per-hardware-thread convention.
    [[nodiscard]] int jobs() const {
        int n = static_cast<int>(getInt("--jobs", 1, 0, 4096));
        return n == 0 ? static_cast<int>(std::thread::hardware_concurrency()) : n;
    }
};

Args parseArgs(int argc, char** argv, int start) {
    Args args;
    static const char* valueOpts[] = {"-o",       "--tool",  "--max-outstanding",
                                      "--dut",    "--depth", "--jobs",
                                      "--cycles", "--seed",  "--vcd",
                                      "--bug",    "--param", "--cache-dir",
                                      "--pdr-queries", "--pdr-retries",
                                      "--portfolio-legs", "--budget-pool",
                                      "--time-budget", "--obligation-timeout",
                                      "--fault-inject",
                                      "--trace-out", "--events-out", "--stats-json"};
    for (int i = start; i < argc; ++i) {
        std::string a = argv[i];
        bool takesValue = false;
        for (const char* opt : valueOpts) takesValue = takesValue || a == opt;
        if (takesValue) {
            if (i + 1 >= argc) usage();
            std::string value = argv[++i];
            if (a == "--param") {
                auto eq = value.find('=');
                if (eq == std::string::npos) usage();
                args.params.emplace_back(
                    value.substr(0, eq),
                    parseUnsigned("--param " + value.substr(0, eq), value.substr(eq + 1), 0,
                                  UINT64_MAX));
            } else {
                args.options[a] = value;
            }
        } else if (a.rfind("--", 0) == 0) {
            args.options[a] = "1";
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

core::FormalTestbench generate(const std::string& rtl, const std::string& rtlPath,
                               const Args& args, util::DiagEngine& diags) {
    core::AutoSvaOptions opts;
    opts.dutName = args.get("--dut", "");
    opts.sourcePath = rtlPath;
    opts.assertInputs = args.has("--assert-inputs");
    opts.includeXprop = !args.has("--no-xprop");
    opts.maxOutstanding = static_cast<int>(args.getInt("--max-outstanding", 8));
    return core::generateFT(rtl, opts, diags);
}

int cmdGen(const Args& args) {
    if (args.positional.empty()) usage();
    std::string rtl = readFile(args.positional[0]);
    util::DiagEngine diags;
    core::FormalTestbench ft = generate(rtl, args.positional[0], args, diags);
    std::cerr << diags.str();

    fs::path outDir = args.get("-o", ft.dutName + "_ft");
    fs::create_directories(outDir);
    std::cout << "Generated " << ft.numProperties() << " properties ("
              << ft.numAssertions() << " asserts, " << ft.numAssumptions() << " assumes, "
              << ft.numCovers() << " covers) from " << ft.annotationLines
              << " annotation lines in " << ft.generationSeconds * 1e3 << " ms\n";
    writeFile(outDir / (ft.propertyModuleName + ".sv"), ft.propertyFile);
    writeFile(outDir / (ft.dutName + "_bind.svh"), ft.bindFile);
    std::string tool = args.get("--tool", "all");
    if (tool == "jasper" || tool == "all") writeFile(outDir / "jasper.tcl", ft.jasperTcl);
    if (tool == "sby" || tool == "all") writeFile(outDir / (ft.dutName + ".sby"), ft.sbyFile);
    return 0;
}

int runReport(const std::vector<std::string>& sources,
              const std::vector<std::string>& sourcePaths, const core::FormalTestbench& ft,
              const Args& args) {
    util::DiagEngine diags;
    core::VerifyOptions vopts;
    vopts.sourcePaths = sourcePaths;
    vopts.engine.bmcDepth = static_cast<int>(args.getInt("--depth", 25, 1));
    vopts.engine.jobs = args.jobs();
    vopts.engine.pdrMaxQueries = static_cast<uint64_t>(
        args.getInt("--pdr-queries", static_cast<long>(vopts.engine.pdrMaxQueries), 1));
    vopts.engine.pdrRetryReorders =
        static_cast<int>(args.getInt("--pdr-retries", vopts.engine.pdrRetryReorders, 0, 100));
    vopts.engine.portfolioLegs =
        static_cast<int>(args.getInt("--portfolio-legs", vopts.engine.portfolioLegs, 0, 64));
    vopts.engine.portfolio = args.has("--portfolio");
    if (vopts.engine.portfolio && vopts.engine.portfolioLegs == 0)
        vopts.engine.portfolioLegs = 2;
    vopts.engine.budgetPoolQueries =
        static_cast<uint64_t>(args.getInt("--budget-pool", 0, 1, 1000000000000ULL));
    if (args.has("--time-budget"))
        vopts.engine.timeBudgetSeconds =
            parseSeconds("--time-budget", args.get("--time-budget", ""));
    if (args.has("--obligation-timeout"))
        vopts.engine.obligationTimeoutSeconds =
            parseSeconds("--obligation-timeout", args.get("--obligation-timeout", ""));
    // Always wired: SIGINT/SIGTERM degrade any CLI run to an orderly stop.
    vopts.engine.stopFlag = &gStopRequested;
    // Output-path preflight: reject unwritable destinations before solving.
    if (args.has("--trace-out"))
        requireWritablePath("--trace-out", args.get("--trace-out", ""));
    if (args.has("--events-out"))
        requireWritablePath("--events-out", args.get("--events-out", ""));
    if (args.has("--stats-json"))
        requireWritablePath("--stats-json", args.get("--stats-json", ""));
    vopts.engine.useLivenessToSafety = !args.has("--no-liveness");
    vopts.engine.checkCovers = !args.has("--no-covers");
    vopts.engine.solverReuse = !args.has("--no-solver-reuse");
    // --aig-rewrite is accepted for compatibility with pre-default-flip
    // scripts; --no-aig-rewrite selects the legacy graph.
    if (args.has("--no-aig-rewrite"))
        vopts.engine.aigRewrite = false;
    else if (args.has("--aig-rewrite"))
        vopts.engine.aigRewrite = true;
    // Same compatibility shape for the CNF simplification layer.
    if (args.has("--no-sat-pre"))
        vopts.engine.satPre = false;
    else if (args.has("--sat-pre"))
        vopts.engine.satPre = true;
    if (!args.has("--no-cache"))
        vopts.engine.cacheDir = args.get("--cache-dir", cache::ProofCache::defaultDir());
    for (const auto& [name, value] : args.params) vopts.paramOverrides[name] = value;
    // One recorder covers the whole run; it must outlive verify(). Tracing
    // is verdict-inert, so attaching it cannot change the report below.
    obs::Recorder recorder;
    if (args.has("--trace-out") || args.has("--events-out") || args.has("--profile"))
        vopts.engine.trace = &recorder;
    auto report = core::verify(sources, ft, vopts, diags);
    std::cout << report.str();
    if (args.has("--stats")) {
        const formal::EngineStats& es = report.engineStats;
        std::printf("engine: sat-calls=%llu conflicts=%llu propagations=%llu\n"
                    "encoder: vars=%llu clauses=%llu cones=%llu solver-reuses=%llu\n"
                    "pdr: frames-opened=%llu cubes-blocked=%llu gen-drop-attempts=%llu "
                    "retry-fallbacks=%llu seed-cubes-admitted=%llu\n"
                    "race: legs-launched=%llu legs-cancelled=%llu\n"
                    "budget: queries-returned=%llu refills-granted=%llu\n"
                    "sat-pre: vars-eliminated=%llu subsumed=%llu strengthened=%llu "
                    "vivified=%llu inprocess-passes=%llu hygiene-drops=%llu\n"
                    "mem: peak-rss-kb=%llu live-clauses=%llu learnt-clauses=%llu\n"
                    "phase: a=%.3fs b=%.3fs\n"
                    "lemma-dag: waves=%llu widest=%llu\n",
                    static_cast<unsigned long long>(es.satCalls),
                    static_cast<unsigned long long>(es.conflicts),
                    static_cast<unsigned long long>(es.propagations),
                    static_cast<unsigned long long>(es.encoderVars),
                    static_cast<unsigned long long>(es.encoderClauses),
                    static_cast<unsigned long long>(es.conesMaterialized),
                    static_cast<unsigned long long>(es.solverReuses),
                    static_cast<unsigned long long>(es.pdrFramesOpened),
                    static_cast<unsigned long long>(es.pdrCubesBlocked),
                    static_cast<unsigned long long>(es.pdrGenDropAttempts),
                    static_cast<unsigned long long>(es.pdrRetryFallbacks),
                    static_cast<unsigned long long>(es.pdrSeedCubesAdmitted),
                    static_cast<unsigned long long>(es.portfolioLegsLaunched),
                    static_cast<unsigned long long>(es.portfolioLegsCancelled),
                    static_cast<unsigned long long>(es.budgetQueriesReturned),
                    static_cast<unsigned long long>(es.budgetRefillsGranted),
                    static_cast<unsigned long long>(es.satPreVarsEliminated),
                    static_cast<unsigned long long>(es.satPreClausesSubsumed),
                    static_cast<unsigned long long>(es.satPreClausesStrengthened),
                    static_cast<unsigned long long>(es.satPreClausesVivified),
                    static_cast<unsigned long long>(es.satPreInprocessPasses),
                    static_cast<unsigned long long>(es.hygieneClausesDropped),
                    static_cast<unsigned long long>(es.peakRssKb),
                    static_cast<unsigned long long>(es.solverLiveClauses),
                    static_cast<unsigned long long>(es.solverLearntClauses),
                    es.phaseASeconds, es.phaseBSeconds,
                    static_cast<unsigned long long>(es.liveWaves),
                    static_cast<unsigned long long>(es.liveWaveWidest));
        const sva::FrontendStats& fs = report.frontend;
        std::printf("frontend: sources-parsed=%llu generated-reparses=%llu "
                    "generated-ast-reused=%llu\n",
                    static_cast<unsigned long long>(fs.sourcesParsed),
                    static_cast<unsigned long long>(fs.generatedTextReparses),
                    static_cast<unsigned long long>(fs.generatedAstReused));
        const char* stopCause = "none";
        switch (es.runStopCause) {
        case 1: stopCause = "job-timeout"; break;
        case 2: stopCause = "run-budget"; break;
        case 3: stopCause = "external-stop"; break;
        default: break;
        }
        std::printf("robust: deadline-degraded=%llu run-stop-cause=%s\n",
                    static_cast<unsigned long long>(es.deadlineDegraded), stopCause);
        if (!es.cacheDegradedReason.empty())
            std::printf("cache: disabled (%s)\n", es.cacheDegradedReason.c_str());
    }
    if (args.has("--cache-stats")) {
        if (vopts.engine.cacheDir.empty()) {
            std::cout << "cache: disabled\n";
        } else {
            double rate = report.engineStats.cacheLookups == 0
                              ? 0.0
                              : 100.0 * static_cast<double>(report.engineStats.cacheHits) /
                                    static_cast<double>(report.engineStats.cacheLookups);
            std::printf("cache: dir=%s lookups=%llu hits=%llu (%.1f%%) seeded-lemmas=%llu "
                        "cached-results=%zu\n",
                        vopts.engine.cacheDir.c_str(),
                        static_cast<unsigned long long>(report.engineStats.cacheLookups),
                        static_cast<unsigned long long>(report.engineStats.cacheHits), rate,
                        static_cast<unsigned long long>(report.engineStats.cacheSeededLemmas),
                        report.numCached());
        }
    }
    if (args.has("--cache-compact") && vopts.engine.cacheDir.empty()) {
        std::printf("cache: compaction skipped (cache disabled for this run)\n");
    } else if (args.has("--cache-compact")) {
        // The run's ProofCache (inside verify) is closed by now, so the log
        // is safe to rewrite.
        cache::CompactResult cr = cache::ProofCache::compactLog(vopts.engine.cacheDir);
        if (cr.performed)
            std::printf("cache: compacted %llu -> %llu records (%llu corrupt dropped), "
                        "%llu -> %llu bytes\n",
                        static_cast<unsigned long long>(cr.recordsBefore),
                        static_cast<unsigned long long>(cr.recordsAfter),
                        static_cast<unsigned long long>(cr.droppedCorrupt),
                        static_cast<unsigned long long>(cr.bytesBefore),
                        static_cast<unsigned long long>(cr.bytesAfter));
        else
            std::printf("cache: compaction skipped (no writable log at %s)\n",
                        vopts.engine.cacheDir.c_str());
    }
    if (args.has("--trace-out")) {
        const std::string path = args.get("--trace-out", "trace.json");
        std::ofstream out(path);
        if (!out) {
            std::cerr << "error: cannot write trace to '" << path << "'\n";
        } else {
            obs::writeChromeTrace(recorder, out);
            std::cout << "trace: " << recorder.eventCount() << " events written to " << path
                      << " (load in Perfetto / chrome://tracing)\n";
        }
    }
    if (args.has("--events-out")) {
        const std::string path = args.get("--events-out", "events.jsonl");
        std::ofstream out(path);
        if (!out)
            std::cerr << "error: cannot write events to '" << path << "'\n";
        else
            obs::writeJsonl(recorder, out);
    }
    if (args.has("--stats-json"))
        obs::writeStatsJsonFile(args.get("--stats-json", "stats.json"), report);
    if (args.has("--profile"))
        std::cout << obs::renderProfile(obs::buildProfile(recorder), report);
    // Print the first failing trace, if any.
    if (const auto* failure = report.firstFailure()) {
        auto design = core::elaborateWithFT(sources, ft, vopts, diags);
        std::vector<std::string> signals;
        for (ir::NodeId input : design->inputs()) {
            const std::string& name = design->node(input).name;
            if (name.find('.') == std::string::npos && name.rfind("__", 0) != 0)
                signals.push_back(name);
        }
        std::cout << "\nFirst counterexample (" << failure->name << "):\n"
                  << formal::formatTrace(*design, failure->trace, signals);
    }
    // The conventional interrupted exit code, after the partial report and
    // every requested artifact flushed above.
    if (gStopRequested.load()) {
        std::cerr << "autosva: interrupted — partial report is sound but degraded\n";
        return 130;
    }
    return report.anyFailed() ? 1 : 0;
}

int cmdRun(const Args& args) {
    if (args.positional.empty()) usage();
    std::vector<std::string> sources;
    for (const auto& path : args.positional) sources.push_back(readFile(path));
    util::DiagEngine diags;
    core::FormalTestbench ft = generate(sources[0], args.positional[0], args, diags);
    std::cerr << diags.str();
    return runReport(sources, args.positional, ft, args);
}

int cmdSim(const Args& args) {
    if (args.positional.empty()) usage();
    std::string rtl = readFile(args.positional[0]);
    util::DiagEngine diags;
    core::FormalTestbench ft = generate(rtl, args.positional[0], args, diags);
    core::VerifyOptions simOpts;
    simOpts.sourcePaths = {args.positional[0]};
    auto design = core::elaborateWithFT({rtl}, ft, simOpts, diags, /*tieReset=*/false);

    sim::Simulator simulator(*design, sim::Simulator::XMode::FourState);
    simulator.enableChecking(true);
    simulator.enableTrace(args.has("--vcd"));
    // Seeds are raw 64-bit material, not a bounded count.
    uint64_t seed =
        args.has("--seed") ? parseUnsigned("--seed", args.get("--seed", "1"), 0, UINT64_MAX) : 1;
    std::mt19937_64 rng(seed);
    long cycles = args.getInt("--cycles", 1000);
    for (long i = 0; i < cycles; ++i) {
        simulator.randomizeInputs(rng);
        simulator.setInput("rst_ni", i == 0 ? 0 : 1);
        simulator.step();
    }
    std::cout << "Simulated " << cycles << " cycles: " << simulator.violations().size()
              << " assertion violations, " << simulator.coveredObligations().size()
              << " covers hit\n";
    for (const auto& v : simulator.violations())
        std::cout << "  violation @" << v.cycle << ": " << v.obligationName << "\n";
    if (args.has("--vcd")) {
        std::ofstream out(args.get("--vcd", "trace.vcd"));
        out << sim::traceToVcd(*design, simulator.trace(), ft.dutName);
        std::cout << "  VCD written to " << args.get("--vcd", "trace.vcd") << "\n";
    }
    return simulator.violations().empty() ? 0 : 1;
}

int cmdCache(const Args& args) {
    if (args.positional.empty() || args.positional[0] != "compact") usage();
    std::string dir = args.get("--cache-dir", cache::ProofCache::defaultDir());
    if (dir.empty()) {
        std::cerr << "error: no cache directory (set --cache-dir or $AUTOSVA_CACHE_DIR)\n";
        return 1;
    }
    cache::CompactResult cr = cache::ProofCache::compactLog(dir);
    if (!cr.performed) {
        std::cerr << "error: cannot compact proof-cache log in '" << dir
                  << "' (missing, foreign, or unwritable)\n";
        return 1;
    }
    std::printf("compacted %s: %llu -> %llu records (%llu corrupt dropped), "
                "%llu -> %llu bytes\n",
                dir.c_str(), static_cast<unsigned long long>(cr.recordsBefore),
                static_cast<unsigned long long>(cr.recordsAfter),
                static_cast<unsigned long long>(cr.droppedCorrupt),
                static_cast<unsigned long long>(cr.bytesBefore),
                static_cast<unsigned long long>(cr.bytesAfter));
    return 0;
}

int cmdList() {
    for (const auto& d : designs::allDesigns())
        std::cout << d.id << "  " << d.name << " — " << d.description << "\n      paper: "
                  << d.paperResult << (d.hasBugParam ? "  [BUG param]" : "") << "\n";
    return 0;
}

int cmdRunDesign(const Args& args);

/// `autosva profile <target>`: run with the profiler attached — sugar for
/// `run --profile` / `run-design --profile`. A target that names a file on
/// disk is verified as RTL; anything else is looked up in the design
/// registry.
int cmdProfile(Args args) {
    if (args.positional.empty()) usage();
    args.options["--profile"] = "1";
    if (fs::exists(args.positional[0])) return cmdRun(args);
    return cmdRunDesign(args);
}

int cmdRunDesign(const Args& args) {
    if (args.positional.empty()) usage();
    const auto& info = designs::design(args.positional[0]);
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    genOpts.sourcePath = info.name + ".sv";
    core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);
    Args runArgs = args;
    if (info.hasBugParam)
        runArgs.params.emplace_back("BUG", static_cast<uint64_t>(args.getInt("--bug", 0)));
    std::vector<std::string> sources = designs::rtlSources(info);
    std::vector<std::string> sourceNames = designs::rtlSourceNames(info);
    if (!info.extensionSva.empty()) {
        sources.push_back(info.extensionSva);
        sourceNames.push_back(info.name + "_extension.sva");
    }
    return runReport(sources, sourceNames, ft, runArgs);
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    std::string cmd = argv[1];
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    try {
        Args args = parseArgs(argc, argv, 2);
        // Deterministic fault injection, armed for the whole command so
        // generation-time sites (propgen-alloc) are covered too.
        robust::FaultPlan faultPlan;
        std::optional<robust::FaultScope> faultScope;
        std::string faultSpec = args.get("--fault-inject", "");
        if (faultSpec.empty())
            if (const char* env = std::getenv("AUTOSVA_FAULT_INJECT"); env && *env)
                faultSpec = env;
        if (!faultSpec.empty()) {
            std::string err = robust::FaultPlan::parseSpec(faultSpec, faultPlan);
            if (!err.empty()) {
                std::cerr << "error: --fault-inject: " << err << "\n";
                return 2;
            }
            faultScope.emplace(faultPlan);
        }
        int rc = 2;
        if (cmd == "gen") rc = cmdGen(args);
        else if (cmd == "run") rc = cmdRun(args);
        else if (cmd == "sim") rc = cmdSim(args);
        else if (cmd == "list") rc = cmdList();
        else if (cmd == "cache") rc = cmdCache(args);
        else if (cmd == "run-design") rc = cmdRunDesign(args);
        else if (cmd == "profile") rc = cmdProfile(args);
        else usage();
        if (faultScope && !faultPlan.summary().empty())
            std::cerr << "fault-inject summary:\n" << faultPlan.summary();
        return rc;
    } catch (const util::FrontendError& err) {
        std::cerr << err.what() << "\n";
        return 1;
    } catch (const std::bad_alloc&) {
        // Graceful exhaustion (real or injected): a diagnostic and a clean
        // nonzero exit, never a crash or a partial write presented as
        // success.
        std::cerr << "autosva: out of memory — no report produced\n";
        return 1;
    }
}
