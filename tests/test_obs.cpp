// Observability-layer tests (src/obs/): the verdict-inertness contract
// (canonical reports byte-identical with tracing on or off, at any worker
// count), well-formedness of the Chrome-trace / JSONL exports, the
// profiler's query-attribution reconciliation against EngineStats, and the
// --stats-json run manifest.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "obs/profile.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;

// ---------------------------------------------------------------------------
// Minimal JSON validator (recursive descent, value grammar only) — enough
// to assert the exporters emit parseable JSON without an external parser.
// ---------------------------------------------------------------------------

class JsonScanner {
public:
    explicit JsonScanner(const std::string& text) : s_(text) {}

    [[nodiscard]] bool valid() {
        skipWs();
        if (!value()) return false;
        skipWs();
        return pos_ == s_.size();
    }

private:
    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    [[nodiscard]] bool eat(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    [[nodiscard]] bool string() {
        if (!eat('"')) return false;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') ++pos_;
            ++pos_;
        }
        return eat('"');
    }
    [[nodiscard]] bool number() {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }
    [[nodiscard]] bool literal(const char* word) {
        size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }
    [[nodiscard]] bool value() {
        skipWs();
        if (pos_ >= s_.size()) return false;
        char c = s_[pos_];
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string();
        if (c == 't') return literal("true");
        if (c == 'f') return literal("false");
        if (c == 'n') return literal("null");
        return number();
    }
    [[nodiscard]] bool object() {
        if (!eat('{')) return false;
        skipWs();
        if (eat('}')) return true;
        do {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (!eat(':')) return false;
            if (!value()) return false;
            skipWs();
        } while (eat(','));
        return eat('}');
    }
    [[nodiscard]] bool array() {
        if (!eat('[')) return false;
        skipWs();
        if (eat(']')) return true;
        do {
            if (!value()) return false;
            skipWs();
        } while (eat(','));
        return eat(']');
    }

    const std::string& s_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Recorder / Span / LaneScope unit behavior
// ---------------------------------------------------------------------------

TEST(Recorder, LaneScopeNestsAndRestores) {
    EXPECT_EQ(obs::LaneScope::current(), obs::kSchedulerLane);
    {
        obs::LaneScope outer(3);
        EXPECT_EQ(obs::LaneScope::current(), 3);
        {
            obs::LaneScope inner(7);
            EXPECT_EQ(obs::LaneScope::current(), 7);
        }
        EXPECT_EQ(obs::LaneScope::current(), 3);
    }
    EXPECT_EQ(obs::LaneScope::current(), obs::kSchedulerLane);
}

TEST(Recorder, NullRecorderSpanIsANoOp) {
    obs::Span span(nullptr, "strategy", "bmc", 0);
    span.arg("queries", 7);
    span.end();
    span.end(); // Idempotent.
}

TEST(Recorder, SpanArgsRideOnTheEndEvent) {
    obs::Recorder rec;
    {
        obs::Span span(&rec, "strategy", "pdr", 2);
        span.arg("queries", 41);
        rec.instant("cache", "miss", 2);
    }
    auto events = rec.merged();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, obs::TraceEvent::Kind::Begin);
    EXPECT_EQ(events[1].kind, obs::TraceEvent::Kind::Instant);
    EXPECT_EQ(events[2].kind, obs::TraceEvent::Kind::End);
    EXPECT_EQ(events[2].numArgs, 1);
    EXPECT_STREQ(events[2].args[0].key, "queries");
    EXPECT_EQ(events[2].args[0].val, 41u);
    EXPECT_EQ(obs::validateTrace(events), "");
}

TEST(Recorder, ObligationNameRendering) {
    obs::Recorder rec;
    rec.setObligationNames({"as__first", "as__second"});
    EXPECT_EQ(rec.obName(-1), "-");
    EXPECT_EQ(rec.obName(0), "as__first");
    EXPECT_EQ(rec.obName(5), "ob-5"); // Past the registered names.
}

TEST(Recorder, ValidatorCatchesMalformedNesting) {
    obs::Recorder rec;
    rec.record(obs::TraceEvent::Kind::End, "phase", "phase-a", -1);
    EXPECT_NE(obs::validateTrace(rec.merged()), "");

    obs::Recorder open;
    open.record(obs::TraceEvent::Kind::Begin, "phase", "phase-a", -1);
    EXPECT_NE(obs::validateTrace(open.merged()), "");
}

// ---------------------------------------------------------------------------
// Verdict inertness + export well-formedness on registry designs
// ---------------------------------------------------------------------------

sva::VerificationReport runDesign(const std::string& name, int jobs, obs::Recorder* rec) {
    const auto& info = designs::design(name);
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.engine.jobs = jobs;
    // The Table III bounded budget: keeps the matrix fast; inertness must
    // hold at any budget.
    vopts.engine.bmcDepth = 15;
    vopts.engine.pdrMaxQueries = 30000;
    vopts.engine.trace = rec;
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    return core::verify(designs::rtlSources(info), ft, vopts, diags);
}

/// The tentpole contract, gated per design: canonical() is byte-identical
/// across {trace off, trace on} x {jobs 1, jobs 4}, the trace is
/// structurally well-formed, both exports are valid JSON, and the
/// profiler's attributed queries reconcile exactly with
/// EngineStats::satCalls of the same run.
void checkTraceInertness(const std::string& design) {
    const std::string baseline = runDesign(design, 1, nullptr).canonical();
    EXPECT_FALSE(baseline.empty());
    EXPECT_EQ(runDesign(design, 4, nullptr).canonical(), baseline) << design << " jobs=4";
    for (int jobs : {1, 4}) {
        obs::Recorder rec;
        sva::VerificationReport report = runDesign(design, jobs, &rec);
        EXPECT_EQ(report.canonical(), baseline) << design << " traced, jobs=" << jobs;
        EXPECT_GT(rec.eventCount(), 0u);

        // Structural validity: per-lane monotone timestamps, matched spans.
        EXPECT_EQ(obs::validateTrace(rec.merged()), "") << design << " jobs=" << jobs;

        // Chrome trace export parses as JSON.
        std::ostringstream chrome;
        obs::writeChromeTrace(rec, chrome);
        const std::string chromeText = chrome.str();
        EXPECT_TRUE(JsonScanner(chromeText).valid()) << chromeText.substr(0, 400);
        EXPECT_NE(chromeText.find("\"traceEvents\""), std::string::npos);
        EXPECT_NE(chromeText.find("thread_name"), std::string::npos);

        // JSONL export: every line parses as one JSON object.
        std::ostringstream jsonl;
        obs::writeJsonl(rec, jsonl);
        std::istringstream lines(jsonl.str());
        std::string line;
        size_t numLines = 0;
        while (std::getline(lines, line)) {
            ++numLines;
            EXPECT_TRUE(JsonScanner(line).valid()) << line;
        }
        EXPECT_EQ(numLines, rec.eventCount());

        // Attribution invariant: every satCalls increment emits a matching
        // "queries" arg on an obligation-attributed event.
        obs::RunProfile profile = obs::buildProfile(rec);
        EXPECT_EQ(profile.attributedQueries, report.engineStats.satCalls)
            << design << " jobs=" << jobs;
        EXPECT_FALSE(profile.obligations.empty());
        EXPECT_FALSE(profile.phases.empty());
        const std::string rendered = obs::renderProfile(profile, report);
        EXPECT_NE(rendered.find("reconciled"), std::string::npos) << rendered;
    }
}

TEST(ObsInertness, MemEngine) { checkTraceInertness("mem_engine"); }
TEST(ObsInertness, NocBuffer) { checkTraceInertness("noc_buffer"); }

// The fancy-PDR paths (portfolio race, budget pool, refill pass) have
// their own event sites; the attribution reconciliation must survive them
// too, and the race instants must actually appear.
TEST(ObsInertness, PortfolioAndBudgetPoolPathsReconcile) {
    const auto& info = designs::design("mem_engine");
    auto run = [&info](int jobs, obs::Recorder* rec) {
        util::DiagEngine diags;
        core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
        core::VerifyOptions vopts;
        vopts.engine.jobs = jobs;
        vopts.engine.bmcDepth = 15;
        vopts.engine.portfolio = true;
        vopts.engine.portfolioLegs = 2;
        vopts.engine.budgetPoolQueries = 200000;
        vopts.engine.trace = rec;
        if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
        return core::verify(designs::rtlSources(info), ft, vopts, diags);
    };
    const std::string baseline = run(1, nullptr).canonical();
    for (int jobs : {1, 4}) {
        obs::Recorder rec;
        sva::VerificationReport report = run(jobs, &rec);
        EXPECT_EQ(report.canonical(), baseline) << "jobs=" << jobs;
        EXPECT_EQ(obs::validateTrace(rec.merged()), "");
        obs::RunProfile profile = obs::buildProfile(rec);
        EXPECT_EQ(profile.attributedQueries, report.engineStats.satCalls) << "jobs=" << jobs;
        // The ladder stage emitted race events for the launched legs.
        if (report.engineStats.portfolioLegsLaunched > 0) {
            size_t raceEvents = 0;
            for (const auto& ev : rec.merged())
                if (std::string(ev.cat) == "race") ++raceEvents;
            EXPECT_GT(raceEvents, 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// --stats-json manifest
// ---------------------------------------------------------------------------

TEST(StatsJson, ManifestIsValidJsonWithSharedSchemaFields) {
    sva::VerificationReport report = runDesign("mem_engine", 1, nullptr);
    std::ostringstream out;
    obs::writeStatsJson(out, report);
    const std::string text = out.str();
    EXPECT_TRUE(JsonScanner(text).valid()) << text.substr(0, 400);
    EXPECT_NE(text.find("\"schema\": \"autosva-run-v1\""), std::string::npos);
    // One spot-check per X-macro list: the shared keys really appear.
    EXPECT_NE(text.find("\"sat_calls\""), std::string::npos);
    EXPECT_NE(text.find("\"phase_a_s\""), std::string::npos);
    EXPECT_NE(text.find("\"properties\""), std::string::npos);
    // Every property row made it.
    for (const auto& r : report.results)
        EXPECT_NE(text.find("\"" + r.name + "\""), std::string::npos) << r.name;
}

} // namespace
