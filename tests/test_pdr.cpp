// PDR hardening tests: the persistent PdrContext (resumable budget-edge
// search, retry-with-reordered-cubes fallback, observability counters) and
// the perturbation-robustness contract — seeded shuffles of proof-obligation
// and cube submission order must produce byte-identical canonical reports,
// on every registered design, because the engine canonicalizes every
// ordering before it can reach a SAT query.
//
// The MMU fetch-chain gate (MmuFetchChainProvenUnderSeeds) re-verifies the
// paper's flagship module once per perturbation seed at a full proving
// budget; set AUTOSVA_MMU_FUZZ_SEEDS to a smaller count for quick local
// iteration (CI and acceptance runs use the default of 20).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/bitblast.hpp"
#include "formal/pdr.hpp"
#include "formal/scheduler.hpp"
#include "rtlir/elaborate.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::EngineOptions;
using formal::PdrCube;
using formal::PdrOptions;
using formal::PdrResult;
using formal::Status;

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, top, diags, opts);
}

// A deep invariant PDR proves (a == b needs reachability reasoning: plain
// induction fails because unreachable states with a != b step to a != b).
constexpr const char* kDeepInvariantRtl = R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [3:0] a;
  reg [3:0] b;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      a <= 4'd0;
      b <= 4'd0;
    end else if (en) begin
      a <= a + 4'd1;
      b <= b + 4'd1;
    end
  end
  as__equal: assert property (a == b);
endmodule)";

struct PdrSetup {
    std::unique_ptr<ir::Design> design;
    formal::BitBlast bb;
    formal::AigLit bad = formal::kAigFalse;
    std::vector<formal::AigLit> constraints;

    explicit PdrSetup(const char* rtl) : design(elab(rtl, "m")), bb(formal::bitblast(*design)) {
        bad = bb.lit(design->obligations()[0].net);
    }
};

// ---------------------------------------------------------------------------
// Persistent PdrContext
// ---------------------------------------------------------------------------

TEST(PdrContext, ResumesAcrossBudgetGrants) {
    PdrSetup s(kDeepInvariantRtl);
    PdrOptions opts;
    opts.maxQueries = 30; // Far too small for the proof in one slice.
    opts.retryReorders = 0;
    formal::PdrContext ctx(s.bb.aig, s.bad, s.constraints, opts);

    PdrResult r = ctx.search();
    ASSERT_EQ(r.kind, PdrResult::Kind::Unknown);
    EXPECT_TRUE(ctx.budgetExhausted());
    const uint64_t framesAfterFirst = ctx.stats().framesOpened;
    EXPECT_GT(framesAfterFirst, 0u);

    // Keep granting budget; the learned frames persist (no re-opening
    // storm), so the proof eventually closes on the same context.
    int grants = 0;
    while (r.kind == PdrResult::Kind::Unknown && ctx.budgetExhausted() && grants < 200) {
        ctx.grantBudget();
        ++grants;
        r = ctx.search();
    }
    EXPECT_EQ(r.kind, PdrResult::Kind::Proven);
    EXPECT_GT(grants, 0);
    EXPECT_FALSE(r.invariant.empty());
}

TEST(PdrCheck, ProvesAndPopulatesStats) {
    PdrSetup s(kDeepInvariantRtl);
    PdrResult r = formal::pdrCheck(s.bb.aig, s.bad, s.constraints);
    EXPECT_EQ(r.kind, PdrResult::Kind::Proven);
    EXPECT_GT(r.stats.framesOpened, 0u);
    EXPECT_GT(r.stats.cubesBlocked, 0u);
    EXPECT_GT(r.stats.genDropAttempts, 0u);
    EXPECT_EQ(r.stats.retryActivations, 0u); // No budget edge: no retries.
}

TEST(PdrCheck, RetryFallbackActivatesOnBudgetEdge) {
    PdrSetup s(kDeepInvariantRtl);
    PdrOptions opts;
    opts.maxQueries = 40; // Budget-edge: one slice is not enough.
    opts.retryReorders = 2;
    PdrResult r = formal::pdrCheck(s.bb.aig, s.bad, s.constraints, opts);
    // Whatever the verdict at this tiny budget, the fallback must have
    // fired and been counted.
    EXPECT_GE(r.stats.retryActivations, 1u);
    EXPECT_LE(r.stats.retryActivations, 2u);
    EXPECT_GT(r.queries, opts.maxQueries); // Retries got fresh budget.

    // A frame-bound Unknown must NOT trigger the fallback.
    PdrOptions framesOnly;
    framesOnly.maxFrames = 1;
    framesOnly.retryReorders = 3;
    PdrResult rf = formal::pdrCheck(s.bb.aig, s.bad, s.constraints, framesOnly);
    if (rf.kind == PdrResult::Kind::Unknown) EXPECT_EQ(rf.stats.retryActivations, 0u);
}

// ---------------------------------------------------------------------------
// Ordering-insensitivity at the pdrCheck level
// ---------------------------------------------------------------------------

TEST(PdrCheck, PerturbationSeedsAreQueryIdentical) {
    // The perturbation hook shuffles cube literals and seed-cube order
    // *before* canonicalization; because generalization and admission are
    // functions of the literal sets only, every seed must produce not just
    // the same verdict but the byte-identical query sequence — counted
    // here as an exact query-total match.
    PdrSetup s(kDeepInvariantRtl);
    PdrResult base = formal::pdrCheck(s.bb.aig, s.bad, s.constraints);
    ASSERT_EQ(base.kind, PdrResult::Kind::Proven);
    for (uint64_t seed : {1u, 2u, 3u, 42u, 0xdeadbeefu}) {
        PdrOptions opts;
        opts.perturbSeed = seed;
        PdrResult r = formal::pdrCheck(s.bb.aig, s.bad, s.constraints, opts);
        EXPECT_EQ(r.kind, base.kind) << "seed " << seed;
        EXPECT_EQ(r.depth, base.depth) << "seed " << seed;
        EXPECT_EQ(r.queries, base.queries) << "seed " << seed;
        EXPECT_EQ(r.invariant, base.invariant) << "seed " << seed;
    }
}

TEST(PdrCheck, SeedCubeSubmissionOrderIsIrrelevant) {
    // Candidate invariant cubes from the cache are re-validated through a
    // greatest-fixpoint filter; the admitted subset (and everything after)
    // must not depend on the order the cache handed them over.
    PdrSetup s(kDeepInvariantRtl);
    PdrResult proof = formal::pdrCheck(s.bb.aig, s.bad, s.constraints);
    ASSERT_EQ(proof.kind, PdrResult::Kind::Proven);
    ASSERT_FALSE(proof.invariant.empty());

    std::vector<PdrCube> forward = proof.invariant;
    std::vector<PdrCube> backward(forward.rbegin(), forward.rend());
    // Scramble the literal order inside each cube too.
    for (PdrCube& cube : backward) std::reverse(cube.begin(), cube.end());

    auto run = [&](const std::vector<PdrCube>& seeds) {
        PdrOptions opts;
        opts.seedCubes = &seeds;
        return formal::pdrCheck(s.bb.aig, s.bad, s.constraints, opts);
    };
    PdrResult a = run(forward);
    PdrResult b = run(backward);
    EXPECT_EQ(a.kind, PdrResult::Kind::Proven);
    EXPECT_EQ(a.stats.seedCubesAdmitted, b.stats.seedCubesAdmitted);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.invariant, b.invariant);
    EXPECT_GT(a.stats.seedCubesAdmitted, 0u); // A real proof's own invariant re-admits.
}

// ---------------------------------------------------------------------------
// Engine-level perturbation fuzz and rewrite identity on the registered designs
// ---------------------------------------------------------------------------

struct DesignRun {
    std::string canonical;
    sva::VerificationReport report;
};

DesignRun runDesign(const designs::DesignInfo& info, bool aigRewrite, int jobs,
                    uint64_t perturbSeed) {
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    // The bench budgets: every scheduler phase still runs, the PDR tails
    // stay bounded. The MMU runs below its liveness budget edge: verdicts
    // are monotone in the query budget, but *which* side of a budget bound
    // a proof lands on is a property of the graph representation — the two
    // deep MMU liveness proofs sit exactly on the 30k edge, where the
    // rewritten and legacy graphs legitimately disagree about what fits.
    // (At the full 200k budget the rewritten default proves 100% of the
    // MMU set — the MmuFetchChainProvenUnderSeeds gate below — while the
    // legacy graph still cannot; that asymmetry is the speedup, not a
    // soundness issue.)
    vopts.engine.bmcDepth = 15;
    vopts.engine.pdrMaxQueries = info.id == "A3" ? 15000 : 30000;
    vopts.engine.aigRewrite = aigRewrite;
    vopts.engine.jobs = jobs;
    vopts.engine.perturbSeed = perturbSeed;
    if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
    DesignRun run;
    run.report = core::verify(designs::rtlSources(info), ft, vopts, diags);
    run.canonical = run.report.canonical();
    return run;
}

// N seeded random shuffles of proof-obligation and cube submission order
// (scheduler batches, lemma-DAG wave order, PDR cube/seed literals) must
// produce the identical canonical report on every registered design.
TEST(PerturbationFuzz, AllDesignsCanonicalInvariantUnderSeededShuffles) {
    for (const auto& info : designs::allDesigns()) {
        DesignRun base = runDesign(info, /*aigRewrite=*/true, /*jobs=*/1, /*perturbSeed=*/0);
        ASSERT_FALSE(base.report.results.empty()) << info.id;
        for (uint64_t seed : {1u, 2u}) {
            DesignRun perturbed = runDesign(info, true, 1, seed);
            EXPECT_EQ(perturbed.canonical, base.canonical)
                << info.id << " diverged at perturbation seed " << seed;
        }
    }
}

// The acceptance gate of the aigRewrite default flip: canonical reports
// byte-identical across {rewrite on/off} x {jobs 1,4} on all registered
// designs. Proof depths are engine artifacts and excluded from canonical();
// statuses and trace shapes are semantic and must not move.
TEST(RewriteIdentity, CanonicalAcrossRewriteAndJobsOnAllDesigns) {
    for (const auto& info : designs::allDesigns()) {
        DesignRun base = runDesign(info, /*aigRewrite=*/true, /*jobs=*/1, 0);
        ASSERT_FALSE(base.report.results.empty()) << info.id;
        EXPECT_EQ(runDesign(info, true, 4, 0).canonical, base.canonical)
            << info.id << " diverged at rewrite=on jobs=4";
        EXPECT_EQ(runDesign(info, false, 1, 0).canonical, base.canonical)
            << info.id << " diverged at rewrite=off jobs=1";
        EXPECT_EQ(runDesign(info, false, 4, 0).canonical, base.canonical)
            << info.id << " diverged at rewrite=off jobs=4";
    }
}

// ---------------------------------------------------------------------------
// Lemma-DAG wave structure
// ---------------------------------------------------------------------------

// Two liveness channels over disjoint state must share a wave (discharged
// in parallel); a third obligation reading channel A's state must wait a
// wave for A's lemma. The overlapping designs in the registry all
// degenerate to widest == 1 (the sequential chain with full strengthening
// power); this is the design shape where the DAG actually buys wall clock.
TEST(LemmaDag, DisjointChannelsShareAWaveOverlappingOnesWait) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [2:0] qa;
  reg [2:0] qb;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      qa <= 3'd0;
      qb <= 3'd0;
    end else begin
      if (qa != 3'd7) qa <= qa + 3'd1;
      if (qb != 3'd7) qb <= qb + 3'd1;
    end
  end
  as__live_a: assert property (s_eventually (qa == 3'd7));
  as__live_b: assert property (s_eventually (qb == 3'd7));
  as__live_a_again: assert property (s_eventually (qa >= 3'd6));
endmodule)",
                  "m");
    auto run = [&](int jobs) {
        EngineOptions opts;
        opts.jobs = jobs;
        formal::ObligationScheduler scheduler(*d, opts);
        auto results = scheduler.run();
        for (const auto& r : results)
            if (r.kind == ir::Obligation::Kind::Justice)
                EXPECT_EQ(r.status, Status::Proven) << r.name;
        return scheduler.stats();
    };
    formal::EngineStats seq = run(1);
    // a and b are support-disjoint: one wave holds both. a_again reads qa's
    // cone, so it waits for as__live_a's tracker in the next wave.
    EXPECT_EQ(seq.liveWaves, 2u);
    EXPECT_EQ(seq.liveWaveWidest, 2u);
    formal::EngineStats par = run(4);
    EXPECT_EQ(par.liveWaves, seq.liveWaves);
    EXPECT_EQ(par.liveWaveWidest, seq.liveWaveWidest);
}

// ---------------------------------------------------------------------------
// The MMU fetch-chain gate
// ---------------------------------------------------------------------------

// The budget-edge proof that motivated the whole hardening: the Ariane MMU
// fetch chain liveness proof (phase-B lemma DAG, strengthened pdrBad) must
// be Proven and stay Proven under >= 20 seeded ordering perturbations.
// Runs the full MMU verification once per seed at a full proving budget
// (the configuration that closes 100% of the MMU property set).
TEST(PerturbationFuzz, MmuFetchChainProvenUnderSeeds) {
    int seeds = 20;
    if (const char* env = std::getenv("AUTOSVA_MMU_FUZZ_SEEDS"); env && *env)
        seeds = std::atoi(env);
    ASSERT_GE(seeds, 1);

    const auto& info = designs::design("ariane_mmu");
    const char* chainProp = "ariane_mmu_prop_i.as__fetch_mmu_fetch_req_hsk_or_drop";

    auto runMmu = [&](uint64_t perturbSeed) {
        util::DiagEngine diags;
        core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
        core::VerifyOptions vopts;
        vopts.engine.bmcDepth = 15;
        vopts.engine.pdrMaxQueries = 200000;
        vopts.engine.checkCovers = false; // Covers are phase-A noise here.
        // Pinned, not defaulted: this test gates perturbation robustness of
        // the graph that proves the chain at this budget — under CI's
        // rewrite=off A/B leg (AUTOSVA_NO_AIG_REWRITE) the legacy-graph
        // default would land the proof on the wrong side of the budget.
        vopts.engine.aigRewrite = true;
        vopts.engine.perturbSeed = perturbSeed;
        if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
        DesignRun run;
        run.report = core::verify(designs::rtlSources(info), ft, vopts, diags);
        run.canonical = run.report.canonical();
        return run;
    };

    DesignRun base = runMmu(0);
    {
        SCOPED_TRACE(base.report.str());
        const auto* chain = base.report.find(chainProp);
        ASSERT_NE(chain, nullptr);
        ASSERT_EQ(chain->status, Status::Proven)
            << "the fetch chain proof must close at the full budget";
    }
    for (int seed = 1; seed <= seeds; ++seed) {
        DesignRun perturbed = runMmu(static_cast<uint64_t>(seed));
        EXPECT_EQ(perturbed.canonical, base.canonical)
            << "canonical report diverged at perturbation seed " << seed;
        const auto* chain = perturbed.report.find(chainProp);
        ASSERT_NE(chain, nullptr);
        EXPECT_EQ(chain->status, Status::Proven)
            << "fetch chain proof lost at perturbation seed " << seed;
    }
}

} // namespace
