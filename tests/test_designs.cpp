// Integration tests reproducing the paper's Table III: one test per
// evaluated module, checking the formal verdict matches the paper's
// outcome (proof / bug / bug-then-fix-then-proof).
#include <gtest/gtest.h>

#include "core/autosva.hpp"
#include "designs/designs.hpp"

namespace {

using namespace autosva;

struct RunResult {
    core::FormalTestbench ft;
    sva::VerificationReport report;
};

RunResult runDesign(const std::string& name, uint64_t bug, bool withExtension = true,
                    const std::vector<const core::FormalTestbench*>& subFts = {},
                    int bmcDepth = 15) {
    const auto& info = designs::design(name);
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    core::FormalTestbench ft = core::generateFT(info.rtl, genOpts, diags);

    core::VerifyOptions vopts;
    // Every seeded bug shows a CEX within ~10 cycles and lassos close within
    // ~15 frames; a shallow BMC keeps the suite fast while PDR provides the
    // unbounded proofs. Bug-hunting runs only need the CEX, so their PDR
    // budget for (untested) side proofs is capped.
    vopts.engine.bmcDepth = bmcDepth;
    // Keep the suite bounded: a capped PDR budget concludes in minutes; the
    // two deepest MMU fetch-liveness proofs may report Unknown at this
    // budget (see EXPERIMENTS.md).
    vopts.engine.pdrMaxQueries = 200000;
    if (bug != 0 || !withExtension) vopts.engine.pdrMaxQueries = 30000;
    if (info.hasBugParam) vopts.paramOverrides["BUG"] = bug;
    if (withExtension && !info.extensionSva.empty())
        vopts.extraSources.push_back(info.extensionSva);
    vopts.submoduleFts = subFts;

    RunResult rr{std::move(ft), {}};
    rr.report = core::verify(designs::rtlSources(info), rr.ft, vopts, diags);
    return rr;
}

// --- A1: PTW — 100% liveness/safety proof -------------------------------
TEST(Table3, A1_Ptw_FullProof) {
    RunResult rr = runDesign("ariane_ptw", 0);
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
    EXPECT_EQ(rr.report.outcomeSummary(), "100% liveness/safety properties proof");
}

// --- A2: TLB — 100% liveness/safety proof -------------------------------
TEST(Table3, A2_Tlb_FullProof) {
    RunResult rr = runDesign("ariane_tlb", 0);
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
}

// --- A3: MMU — ghost-response bug found, fix proven ----------------------
TEST(Table3, A3_Mmu_GhostResponseBugFound) {
    RunResult rr = runDesign("ariane_mmu", /*bug=*/1);
    SCOPED_TRACE(rr.report.str());
    ASSERT_TRUE(rr.report.anyFailed());
    // The ghost response violates "every response had a request".
    const auto* failure = rr.report.find("as__lsu_mmu_had_a_request");
    ASSERT_NE(failure, nullptr);
    EXPECT_EQ(failure->status, formal::Status::Failed);
    // The paper reports a 5-cycle trace for Bug1.
    EXPECT_LE(failure->depth, 8);
}

TEST(Table3, A3_Mmu_FixedFullProof) {
    RunResult rr = runDesign("ariane_mmu", /*bug=*/0, true, {}, 15);
    SCOPED_TRACE(rr.report.str());
    // The fix must flip the previously failing assertion to a proof with no
    // regressions anywhere ("bug-fix confidence", paper metric 4).
    EXPECT_FALSE(rr.report.anyFailed());
    const auto* ghost = rr.report.find("as__lsu_mmu_had_a_request");
    ASSERT_NE(ghost, nullptr);
    EXPECT_EQ(ghost->status, formal::Status::Proven);
    // The engine should close (almost) everything; the deep fetch-liveness
    // interplay may stay Unknown within the test budget on small machines —
    // EXPERIMENTS.md discusses it. It must never be a counterexample.
    EXPECT_GE(rr.report.proofRate(), 0.75);
}

// The "interesting CEX" of §IV: without the added fairness assumption the
// fetch channel can starve behind LSU traffic.
TEST(Table3, A3_Mmu_FairnessCexWithoutAssumption) {
    // The starvation lasso needs a longer prefix (a full walk fills the
    // DTLB before the repeating hit-respond loop), so search deeper.
    RunResult rr = runDesign("ariane_mmu", /*bug=*/0, /*withExtension=*/false, {},
                             /*bmcDepth=*/25);
    SCOPED_TRACE(rr.report.str());
    const auto* fetchLive = rr.report.find("as__fetch_mmu_eventual_response");
    ASSERT_NE(fetchLive, nullptr);
    EXPECT_EQ(fetchLive->status, formal::Status::Failed);
}

// --- A4: LSU — hits the known bug (issue #538) ---------------------------
TEST(Table3, A4_Lsu_HitsKnownBug) {
    RunResult rr = runDesign("ariane_lsu", /*bug=*/1);
    SCOPED_TRACE(rr.report.str());
    const auto* live = rr.report.find("as__lsu_load_eventual_response");
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(live->status, formal::Status::Failed);
}

TEST(Table3, A4_Lsu_BugfixValidated) {
    RunResult rr = runDesign("ariane_lsu", /*bug=*/0);
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
}

// --- A5: I$ — hits the known bug (issue #474) ----------------------------
TEST(Table3, A5_Icache_HitsKnownBug) {
    RunResult rr = runDesign("ariane_icache", /*bug=*/1);
    SCOPED_TRACE(rr.report.str());
    const auto* live = rr.report.find("as__fetch_eventual_response");
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(live->status, formal::Status::Failed);
}

TEST(Table3, A5_Icache_BugfixValidated) {
    RunResult rr = runDesign("ariane_icache", /*bug=*/0);
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
}

// --- O1: NoC buffer — deadlock found and fixed ---------------------------
TEST(Table3, O1_NocBuffer_DeadlockFound) {
    RunResult rr = runDesign("noc_buffer", /*bug=*/1);
    SCOPED_TRACE(rr.report.str());
    const auto* live = rr.report.find("as__mem_engine_noc_eventual_response");
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(live->status, formal::Status::Failed);
}

TEST(Table3, O1_NocBuffer_FixProven) {
    RunResult rr = runDesign("noc_buffer", /*bug=*/0);
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
}

// --- O2: L1.5 slice — buffer proof, cache-level CEXs ----------------------
TEST(Table3, O2_L15_BufferProofOtherCexs) {
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    core::FormalTestbench bufFt =
        core::generateFT(designs::design("noc_buffer").rtl, genOpts, diags);
    RunResult rr = runDesign("l15_noc_wrapper", 0, true, {&bufFt});
    SCOPED_TRACE(rr.report.str());
    // The bound buffer FT's liveness proves inside the slice...
    const auto* bufLive = rr.report.find("as__mem_engine_noc_eventual_response");
    ASSERT_NE(bufLive, nullptr);
    EXPECT_EQ(bufLive->status, formal::Status::Proven);
    // ...while the under-constrained message types fail the cache liveness.
    const auto* coreLive = rr.report.find("as__l15_core_eventual_response");
    ASSERT_NE(coreLive, nullptr);
    EXPECT_EQ(coreLive->status, formal::Status::Failed);
}

// --- ME: Mem Engine — TDD flow hits Bug2 through the reused buffer --------
TEST(Table3, MemEngine_DeadlockThroughReusedBuffer) {
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    core::FormalTestbench bufFt =
        core::generateFT(designs::design("noc_buffer").rtl, genOpts, diags);
    RunResult rr = runDesign("mem_engine", /*bug=*/1, true, {&bufFt});
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.anyFailed());
    const auto* cmdLive = rr.report.find("as__me_cmd_eventual_response");
    ASSERT_NE(cmdLive, nullptr);
    EXPECT_EQ(cmdLive->status, formal::Status::Failed);
}

TEST(Table3, MemEngine_FixedProves) {
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    core::FormalTestbench bufFt =
        core::generateFT(designs::design("noc_buffer").rtl, genOpts, diags);
    RunResult rr = runDesign("mem_engine", /*bug=*/0, true, {&bufFt});
    SCOPED_TRACE(rr.report.str());
    EXPECT_TRUE(rr.report.allProven());
}

} // namespace
