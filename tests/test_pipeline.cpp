// End-to-end pipeline tests: annotated RTL -> generated FT -> elaboration
// -> model checking, on small handwritten DUTs.
#include <gtest/gtest.h>

#include "core/autosva.hpp"

namespace {

using namespace autosva;

// A one-outstanding echo unit: accepts a request when idle and answers with
// the same transaction ID exactly one cycle later.
const char* kEchoRtl = R"(
module echo #(
  parameter ID_W = 2
) (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input  wire            req_val,
  output wire            req_ack,
  input  wire [ID_W-1:0] req_transid,
  output wire            res_val,
  output wire [ID_W-1:0] res_transid
);
  reg busy;
  reg [ID_W-1:0] id_q;
  assign req_ack = !busy;
  wire hsk = req_val && req_ack;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
    end else begin
      if (hsk) begin
        busy <= 1'b1;
        id_q <= req_transid;
      end else begin
        busy <= 1'b0;
      end
    end
  end
  assign res_val = busy;
  assign res_transid = id_q;
endmodule
)";

// Broken variant: the response drops the transaction when a new request
// arrives in the response cycle (ack not gated) — response lost.
const char* kEchoBuggyRtl = R"(
module echo_bug #(
  parameter ID_W = 2
) (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input  wire            req_val,
  output wire            req_ack,
  input  wire [ID_W-1:0] req_transid,
  output wire            res_val,
  output wire [ID_W-1:0] res_transid
);
  reg busy;
  reg [ID_W-1:0] id_q;
  assign req_ack = 1'b1; // BUG: accepts while a response is still due...
  wire hsk = req_val && req_ack;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
    end else begin
      if (hsk) begin
        busy <= 1'b1;
        id_q <= req_transid;
      end else begin
        busy <= 1'b0;
      end
    end
  end
  assign res_val = busy && !hsk; // ...and suppresses it when a new one lands.
  assign res_transid = id_q;
endmodule
)";

TEST(Pipeline, GeneratesTestbenchForEcho) {
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    core::FormalTestbench ft = core::generateFT(kEchoRtl, opts, diags);

    EXPECT_EQ(ft.dutName, "echo");
    EXPECT_EQ(ft.propertyModuleName, "echo_prop");
    EXPECT_GT(ft.numProperties(), 5);
    EXPECT_GT(ft.numAssertions(), 0);
    EXPECT_GT(ft.numAssumptions(), 0);
    EXPECT_GT(ft.numLiveness(), 0);
    EXPECT_EQ(ft.annotationLines, 1); // Only the transaction declaration.
    // Key artifacts present.
    EXPECT_NE(ft.propertyFile.find("module echo_prop"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("s_eventually"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("symb_txn_transid"), std::string::npos);
    EXPECT_NE(ft.bindFile.find("bind echo echo_prop"), std::string::npos);
    EXPECT_NE(ft.jasperTcl.find("elaborate -top echo"), std::string::npos);
    EXPECT_NE(ft.sbyFile.find("mode prove"), std::string::npos);
    // Generation is fast (paper: "under a second").
    EXPECT_LT(ft.generationSeconds, 1.0);
}

TEST(Pipeline, ProvesCorrectEcho) {
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    core::FormalTestbench ft = core::generateFT(kEchoRtl, opts, diags);
    core::VerifyOptions vopts;
    sva::VerificationReport report = core::verify({kEchoRtl}, ft, vopts, diags);

    SCOPED_TRACE(report.str());
    EXPECT_TRUE(report.allProven());
    EXPECT_FALSE(report.anyFailed());
    // The request path must be coverable (non-vacuous testbench).
    const auto* cover = report.find("co__txn_request_happens");
    ASSERT_NE(cover, nullptr);
    EXPECT_EQ(cover->status, formal::Status::Covered);
}

TEST(Pipeline, FindsBugInBrokenEcho) {
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    core::FormalTestbench ft = core::generateFT(kEchoBuggyRtl, opts, diags);
    core::VerifyOptions vopts;
    sva::VerificationReport report = core::verify({kEchoBuggyRtl}, ft, vopts, diags);

    SCOPED_TRACE(report.str());
    EXPECT_TRUE(report.anyFailed());
    const auto* failure = report.firstFailure();
    ASSERT_NE(failure, nullptr);
    // Short trace, as the paper reports for real bugs.
    EXPECT_LE(failure->depth, 10);
    EXPECT_FALSE(failure->trace.inputs.empty());
}

} // namespace
