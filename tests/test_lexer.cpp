// Lexer unit tests: literals, operators, comments, error handling.
#include <gtest/gtest.h>

#include "util/diagnostics.hpp"
#include "verilog/lexer.hpp"

namespace {

using namespace autosva::verilog;

std::vector<Token> lex(std::string_view text) {
    Lexer lexer(text, "test.sv");
    return lexer.lexAll();
}

TEST(Lexer, EmptyInputYieldsEof) {
    auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_TRUE(tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, Identifiers) {
    auto tokens = lex("foo _bar baz_123 a$b");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].text, "foo");
    EXPECT_EQ(tokens[1].text, "_bar");
    EXPECT_EQ(tokens[2].text, "baz_123");
    EXPECT_EQ(tokens[3].text, "a$b");
}

TEST(Lexer, Keywords) {
    auto tokens = lex("module endmodule always_ff posedge s_eventually bind");
    EXPECT_TRUE(tokens[0].is(TokenKind::KwModule));
    EXPECT_TRUE(tokens[1].is(TokenKind::KwEndmodule));
    EXPECT_TRUE(tokens[2].is(TokenKind::KwAlwaysFF));
    EXPECT_TRUE(tokens[3].is(TokenKind::KwPosedge));
    EXPECT_TRUE(tokens[4].is(TokenKind::KwSEventually));
    EXPECT_TRUE(tokens[5].is(TokenKind::KwBind));
}

TEST(Lexer, DecimalNumbers) {
    auto tokens = lex("0 42 1_000");
    EXPECT_EQ(tokens[0].intValue, 0u);
    EXPECT_EQ(tokens[1].intValue, 42u);
    EXPECT_EQ(tokens[2].intValue, 1000u);
    EXPECT_EQ(tokens[1].numWidth, 0); // Unsized.
}

TEST(Lexer, BasedLiterals) {
    auto tokens = lex("8'hFF 4'b1010 16'd123 3'o7 'hB");
    EXPECT_EQ(tokens[0].intValue, 0xFFu);
    EXPECT_EQ(tokens[0].numWidth, 8);
    EXPECT_EQ(tokens[1].intValue, 0b1010u);
    EXPECT_EQ(tokens[1].numWidth, 4);
    EXPECT_EQ(tokens[2].intValue, 123u);
    EXPECT_EQ(tokens[3].intValue, 7u);
    EXPECT_EQ(tokens[4].intValue, 0xBu);
    EXPECT_EQ(tokens[4].numWidth, 0);
}

TEST(Lexer, BasedLiteralTruncatesToWidth) {
    auto tokens = lex("4'hFF");
    EXPECT_EQ(tokens[0].intValue, 0xFu);
}

TEST(Lexer, UnbasedUnsized) {
    auto tokens = lex("'0 '1 'x");
    EXPECT_TRUE(tokens[0].isUnbasedUnsized);
    EXPECT_EQ(tokens[0].intValue, 0u);
    EXPECT_TRUE(tokens[1].isUnbasedUnsized);
    EXPECT_EQ(tokens[1].intValue, 1u);
    EXPECT_TRUE(tokens[2].hasUnknownBits);
}

TEST(Lexer, UnknownDigitsFlagged) {
    auto tokens = lex("4'b10xz");
    EXPECT_TRUE(tokens[0].hasUnknownBits);
}

TEST(Lexer, SizeWithSpaceBeforeBase) {
    auto tokens = lex("8 'hAB");
    EXPECT_EQ(tokens[0].numWidth, 8);
    EXPECT_EQ(tokens[0].intValue, 0xABu);
}

TEST(Lexer, Operators) {
    auto tokens = lex("|-> |=> ## == != <= >= << >> && || ~^ +:");
    EXPECT_TRUE(tokens[0].is(TokenKind::OverlapImpl));
    EXPECT_TRUE(tokens[1].is(TokenKind::NonOverlapImpl));
    EXPECT_TRUE(tokens[2].is(TokenKind::HashHash));
    EXPECT_TRUE(tokens[3].is(TokenKind::EqEq));
    EXPECT_TRUE(tokens[4].is(TokenKind::BangEq));
    EXPECT_TRUE(tokens[5].is(TokenKind::LtEq));
    EXPECT_TRUE(tokens[6].is(TokenKind::GtEq));
    EXPECT_TRUE(tokens[7].is(TokenKind::LtLt));
    EXPECT_TRUE(tokens[8].is(TokenKind::GtGt));
    EXPECT_TRUE(tokens[9].is(TokenKind::AmpAmp));
    EXPECT_TRUE(tokens[10].is(TokenKind::PipePipe));
    EXPECT_TRUE(tokens[11].is(TokenKind::TildeCaret));
    EXPECT_TRUE(tokens[12].is(TokenKind::PlusColon));
}

TEST(Lexer, TripleOperatorsCollapse) {
    auto tokens = lex("<<< >>> === !==");
    EXPECT_TRUE(tokens[0].is(TokenKind::LtLt));
    EXPECT_TRUE(tokens[1].is(TokenKind::GtGt));
    EXPECT_TRUE(tokens[2].is(TokenKind::EqEq));
    EXPECT_TRUE(tokens[3].is(TokenKind::BangEq));
}

TEST(Lexer, SystemIdentifiers) {
    auto tokens = lex("$stable $past $clog2");
    EXPECT_TRUE(tokens[0].is(TokenKind::SystemIdent));
    EXPECT_EQ(tokens[0].text, "$stable");
    EXPECT_EQ(tokens[2].text, "$clog2");
}

TEST(Lexer, CommentsAreSkipped) {
    auto tokens = lex("a // line comment\nb /* block */ c");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, MultiLineBlockComment) {
    auto tokens = lex("x /* spans\nmultiple\nlines */ y");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[1].text, "y");
    EXPECT_EQ(tokens[1].loc.line, 3u);
}

TEST(Lexer, DirectiveLinesSkipped) {
    auto tokens = lex("`define FOO 1\nbar");
    EXPECT_EQ(tokens[0].text, "bar");
}

TEST(Lexer, LineAndColumnTracking) {
    auto tokens = lex("a\n  b");
    EXPECT_EQ(tokens[0].loc.line, 1u);
    EXPECT_EQ(tokens[0].loc.col, 1u);
    EXPECT_EQ(tokens[1].loc.line, 2u);
    EXPECT_EQ(tokens[1].loc.col, 3u);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
    EXPECT_THROW(lex("a /* never closed"), autosva::util::FrontendError);
}

TEST(Lexer, UnterminatedStringThrows) {
    EXPECT_THROW(lex("\"never closed"), autosva::util::FrontendError);
}

TEST(Lexer, UnexpectedCharacterThrows) {
    EXPECT_THROW(lex("a \x01 b"), autosva::util::FrontendError);
}

TEST(Lexer, StringLiterals) {
    auto tokens = lex(R"("hello\nworld")");
    EXPECT_TRUE(tokens[0].is(TokenKind::String));
    EXPECT_EQ(tokens[0].text, "hello\nworld");
}

} // namespace
