// Robustness-layer tests: deterministic fault injection (site-addressed
// FaultPlan), the wall-clock watchdog (per-obligation timeout, run budget,
// external stop, cumulative per-job clock), graceful cache degradation
// under injected and real I/O failures, deadline-degraded engine runs that
// still cover every obligation, and crash recovery — a budget-killed run
// must leave a cache a warm rerun completes from, never a poisoned one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <unistd.h>

#include "cache/proof_artifact.hpp"
#include "cache/store.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/scheduler.hpp"
#include "robust/faultinject.hpp"
#include "robust/watchdog.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::EngineOptions;
using formal::Status;
using formal::UnknownReason;
using robust::FaultPlan;
using robust::FaultScope;
using robust::FaultSite;
using robust::Watchdog;

namespace fs = std::filesystem;

/// Unique per-test temp directory, removed on destruction.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("autosva_test_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    [[nodiscard]] std::string str() const { return path.string(); }
    [[nodiscard]] fs::path logPath() const { return path / "proofs.bin"; }
};

/// Full design+FT elaboration of a registered paper design (including its
/// dependency modules, e.g. the MMU instantiating PTW and TLBs).
std::unique_ptr<ir::Design> elabDesignWithFT(const designs::DesignInfo& info) {
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    return core::elaborateWithFT(designs::rtlSources(info), ft, {}, diags,
                                 /*tieReset=*/true);
}

/// Spin-waits (with a hard deadline) until `pred` holds; returns whether
/// it ever did. Keeps the timing-sensitive watchdog tests flake-free: we
/// assert "fires eventually, with the right cause", never exact latency.
template <typename Pred>
bool eventually(Pred pred, double seconds = 5.0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
}

cache::ProofArtifact provenArtifact(uint64_t structKey) {
    cache::ProofArtifact art;
    art.structKey = structKey;
    art.status = Status::Proven;
    art.depth = 3;
    art.lemmas.push_back({{{"q[0]", true}}});
    return art;
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

TEST(FaultPlan, FiresExactlyOnceAtTheArmedHit) {
    FaultPlan plan;
    ASSERT_EQ(FaultPlan::parseSpec("solver-interrupt:3", plan), "");
    FaultScope scope(plan);
    // Hits 1 and 2 pass, hit 3 fires, hits 4+ pass again: exactly once.
    EXPECT_FALSE(robust::faultFire(FaultSite::SolverInterrupt));
    EXPECT_FALSE(robust::faultFire(FaultSite::SolverInterrupt));
    EXPECT_TRUE(robust::faultFire(FaultSite::SolverInterrupt));
    EXPECT_FALSE(robust::faultFire(FaultSite::SolverInterrupt));
    EXPECT_EQ(plan.hits(FaultSite::SolverInterrupt), 4u);
    EXPECT_TRUE(plan.fired(FaultSite::SolverInterrupt));
    EXPECT_TRUE(plan.anyFired());
    // Unarmed sites count hits but never fire.
    EXPECT_FALSE(robust::faultFire(FaultSite::CacheRead));
    EXPECT_FALSE(plan.fired(FaultSite::CacheRead));
    EXPECT_NE(plan.summary().find("solver-interrupt: armed@3"), std::string::npos);
}

TEST(FaultPlan, ParsesMultiSiteSpecsAndRejectsBadOnes) {
    FaultPlan plan;
    ASSERT_EQ(FaultPlan::parseSpec("cache-write:1,bitblast-alloc:2", plan), "");
    {
        FaultScope scope(plan);
        EXPECT_TRUE(robust::faultFire(FaultSite::CacheWrite));
        EXPECT_FALSE(robust::faultFire(FaultSite::BitblastAlloc));
        EXPECT_TRUE(robust::faultFire(FaultSite::BitblastAlloc));
    }
    FaultPlan bad;
    EXPECT_NE(FaultPlan::parseSpec("no-such-site:1", bad), "");
    EXPECT_NE(FaultPlan::parseSpec("cache-write", bad), "");
    EXPECT_NE(FaultPlan::parseSpec("cache-write:0", bad), "");
    EXPECT_NE(FaultPlan::parseSpec("cache-write:x", bad), "");
    // The unknown-site diagnostic must name the valid sites.
    EXPECT_NE(FaultPlan::parseSpec("no-such-site:1", bad).find("solver-interrupt"),
              std::string::npos);
}

TEST(FaultPlan, DisarmedProcessNeverFires) {
    // No plan active: the hot-path hook is a null-pointer test.
    ASSERT_EQ(FaultPlan::active(), nullptr);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(robust::faultFire(FaultSite::SolverInterrupt));
    // Active but empty plan: hits count, nothing fires.
    FaultPlan plan;
    FaultScope scope(plan);
    EXPECT_FALSE(robust::faultFire(FaultSite::CacheWrite));
    EXPECT_EQ(plan.hits(FaultSite::CacheWrite), 1u);
    EXPECT_FALSE(plan.anyFired());
    EXPECT_EQ(plan.summary(), "");
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Robust, WatchdogFiresObligationTimeoutWithJobCause) {
    Watchdog::Config cfg;
    cfg.obligationTimeoutSeconds = 0.05;
    Watchdog wd(cfg);
    Watchdog::JobGuard guard = wd.guardJob(0);
    ASSERT_NE(guard.token(), nullptr);
    EXPECT_FALSE(guard.token()->load());
    ASSERT_TRUE(eventually([&] { return guard.token()->load(); }));
    EXPECT_EQ(guard.cause(), Watchdog::Cause::JobTimeout);
    EXPECT_GE(wd.jobTimeouts(), 1u);
    // A per-job deadline never fires the run-level token.
    EXPECT_FALSE(wd.runExpired());
    EXPECT_EQ(wd.runCause(), Watchdog::Cause::None);
}

TEST(Robust, WatchdogRunBudgetFiresActiveAndFutureGuards) {
    Watchdog::Config cfg;
    cfg.runBudgetSeconds = 0.05;
    Watchdog wd(cfg);
    Watchdog::JobGuard active = wd.guardJob(0);
    ASSERT_TRUE(eventually([&] { return wd.runExpired(); }));
    EXPECT_EQ(wd.runCause(), Watchdog::Cause::RunBudget);
    ASSERT_TRUE(eventually([&] { return active.token()->load(); }));
    EXPECT_EQ(active.cause(), Watchdog::Cause::RunBudget);
    // Guards acquired after expiry start pre-fired: remaining work drains
    // as immediate Interrupted results instead of running to completion.
    Watchdog::JobGuard late = wd.guardJob(1);
    ASSERT_NE(late.token(), nullptr);
    EXPECT_TRUE(late.token()->load());
    EXPECT_EQ(late.cause(), Watchdog::Cause::RunBudget);
}

TEST(Robust, WatchdogRelaysExternalStop) {
    std::atomic<bool> stop{false};
    Watchdog::Config cfg;
    cfg.externalStop = &stop;
    Watchdog wd(cfg);
    Watchdog::JobGuard guard = wd.guardJob(0);
    // No deadlines configured: nothing fires until the flag is raised.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(wd.runExpired());
    EXPECT_FALSE(guard.token()->load());
    stop.store(true);
    ASSERT_TRUE(eventually([&] { return wd.runExpired(); }));
    EXPECT_EQ(wd.runCause(), Watchdog::Cause::ExternalStop);
    ASSERT_TRUE(eventually([&] { return guard.token()->load(); }));
    EXPECT_EQ(guard.cause(), Watchdog::Cause::ExternalStop);
}

TEST(Robust, WatchdogJobClockIsCumulativeAcrossGuards) {
    Watchdog::Config cfg;
    cfg.obligationTimeoutSeconds = 0.08;
    Watchdog wd(cfg);
    // Burn job 7's whole budget under a first guard, release, re-guard:
    // the second guard resumes the spent clock, so it fires even though it
    // was just acquired. A different job index still has a full budget.
    {
        Watchdog::JobGuard first = wd.guardJob(7);
        ASSERT_TRUE(eventually([&] { return first.token()->load(); }));
    }
    Watchdog::JobGuard resumed = wd.guardJob(7);
    ASSERT_TRUE(eventually([&] { return resumed.token()->load(); }, 1.0));
    EXPECT_EQ(resumed.cause(), Watchdog::Cause::JobTimeout);
    Watchdog::JobGuard fresh = wd.guardJob(8);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(fresh.token()->load());
}

TEST(Robust, InertGuardIsSafeToUseEverywhere) {
    // No watchdog configured: guards are null-token, None-cause, and the
    // scheduler threads them through unconditionally.
    Watchdog::JobGuard inert;
    EXPECT_EQ(inert.token(), nullptr);
    EXPECT_EQ(inert.cause(), Watchdog::Cause::None);
    Watchdog::JobGuard moved = std::move(inert);
    EXPECT_EQ(moved.token(), nullptr);
}

// ---------------------------------------------------------------------------
// Cache degradation
// ---------------------------------------------------------------------------

TEST(Robust, UnwritableCacheDirDegradesToMemoryOnly) {
    // /dev/null is a file, so creating a directory under it fails for any
    // uid (permission bits alone are bypassed when the suite runs as root).
    cache::ProofCache store("/dev/null/autosva_nope");
    EXPECT_FALSE(store.persistent());
    EXPECT_NE(store.degradedReason().find("cannot create cache directory"),
              std::string::npos);
    // The degraded store still takes the full API without crashing.
    store.store(cache::Fingerprint{1, 2}, provenArtifact(42));
    EXPECT_FALSE(store.lookup(cache::Fingerprint{1, 2}).has_value());
}

TEST(Robust, InjectedCacheWriteFaultDropsPersistenceNotTheRun) {
    TempDir dir("wfault");
    FaultPlan plan;
    ASSERT_EQ(FaultPlan::parseSpec("cache-write:1", plan), "");
    FaultScope scope(plan);
    cache::ProofCache store(dir.str());
    EXPECT_TRUE(store.persistent()); // Healthy until the first append.
    store.store(cache::Fingerprint{1, 2}, provenArtifact(7));
    EXPECT_TRUE(plan.fired(FaultSite::CacheWrite));
    EXPECT_FALSE(store.persistent());
    EXPECT_NE(store.degradedReason().find("injected cache-write fault"),
              std::string::npos);
    // Degradation is one-shot and sticky; later stores are memory-only
    // no-ops, not crashes, and the reason keeps the *first* failure.
    store.store(cache::Fingerprint{3, 4}, provenArtifact(8));
    EXPECT_NE(store.degradedReason().find("cache-write"), std::string::npos);
    // Nothing after the header may have reached disk.
    std::error_code ec;
    uintmax_t size = fs::file_size(dir.logPath(), ec);
    if (!ec) EXPECT_LE(size, 8u);
}

TEST(Robust, InjectedCacheReadFaultIgnoresWarmLogButPreservesIt) {
    TempDir dir("rfault");
    {
        cache::ProofCache store(dir.str());
        store.store(cache::Fingerprint{5, 6}, provenArtifact(9));
    }
    uintmax_t warmSize = fs::file_size(dir.logPath());
    {
        FaultPlan plan;
        ASSERT_EQ(FaultPlan::parseSpec("cache-read:1", plan), "");
        FaultScope scope(plan);
        cache::ProofCache store(dir.str());
        EXPECT_FALSE(store.persistent());
        EXPECT_NE(store.degradedReason().find("cache-read"), std::string::npos);
        EXPECT_FALSE(store.lookup(cache::Fingerprint{5, 6}).has_value());
        // An unreadable log must not be appended to or truncated.
        store.store(cache::Fingerprint{7, 8}, provenArtifact(10));
    }
    EXPECT_EQ(fs::file_size(dir.logPath()), warmSize);
    // With the fault gone the log is intact and serves its entry again.
    cache::ProofCache reopened(dir.str());
    EXPECT_TRUE(reopened.persistent());
    EXPECT_EQ(reopened.degradedReason(), "");
    EXPECT_TRUE(reopened.lookup(cache::Fingerprint{5, 6}).has_value());
}

// ---------------------------------------------------------------------------
// Engine-level fault soundness
// ---------------------------------------------------------------------------

/// Status-by-name map of one scheduler run.
std::map<std::string, Status> runStatuses(const ir::Design& design,
                                          const EngineOptions& opts) {
    formal::ObligationScheduler scheduler(design, opts);
    std::map<std::string, Status> out;
    for (const auto& r : scheduler.run()) out[r.name] = r.status;
    return out;
}

TEST(Robust, InjectedSolverInterruptNeverFlipsAVerdict) {
    const auto& info = designs::design("ariane_tlb");
    auto design = elabDesignWithFT(info);
    EngineOptions opts;
    opts.jobs = 2;
    auto clean = runStatuses(*design, opts);
    ASSERT_FALSE(clean.empty());
    // Interrupt the N-th solve for several N: every verdict either matches
    // the clean run or honestly degrades to Unknown — never flips.
    for (uint64_t nth : {1u, 5u, 40u}) {
        FaultPlan plan;
        plan.arm(FaultSite::SolverInterrupt, nth);
        FaultScope scope(plan);
        auto faulted = runStatuses(*design, opts);
        ASSERT_EQ(faulted.size(), clean.size()) << "nth=" << nth;
        for (const auto& [name, status] : faulted)
            EXPECT_TRUE(status == clean.at(name) || status == Status::Unknown)
                << name << " flipped under solver-interrupt:" << nth;
    }
}

TEST(Robust, InjectedAllocFailureSurfacesAsBadAlloc) {
    const auto& info = designs::design("noc_buffer");
    auto design = elabDesignWithFT(info);
    FaultPlan plan;
    plan.arm(FaultSite::BitblastAlloc, 1);
    FaultScope scope(plan);
    // The scheduler bit-blasts at construction; the injected allocation
    // failure must unwind as std::bad_alloc (the CLI maps it to a clean
    // "out of memory" exit), not crash or produce a partial engine.
    EXPECT_THROW(formal::ObligationScheduler(*design, EngineOptions{}),
                 std::bad_alloc);
}

// ---------------------------------------------------------------------------
// Deadline-degraded runs
// ---------------------------------------------------------------------------

TEST(Robust, TimeBudgetDegradesButCoversEveryObligation) {
    // ariane_mmu needs tens of seconds unbudgeted; a 50ms budget must stop
    // it almost immediately while still reporting every obligation.
    const auto& info = designs::design("ariane_mmu");
    auto design = elabDesignWithFT(info);
    EngineOptions opts;
    opts.jobs = 2;
    opts.timeBudgetSeconds = 0.05;
    opts.obligationTimeoutSeconds = 0.02;
    formal::ObligationScheduler scheduler(*design, opts);
    auto t0 = std::chrono::steady_clock::now();
    auto results = scheduler.run();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    // Budget + generous grace: expiry only cancels in-flight solves, it
    // never abandons them, so drain time is bounded but nonzero.
    EXPECT_LT(elapsed, 30.0);
    EXPECT_EQ(results.size(), design->obligations().size());
    sva::VerificationReport report;
    report.dutName = "ariane_mmu";
    report.results = results;
    report.engineStats = scheduler.stats();
    ASSERT_TRUE(report.degraded());
    size_t degraded = 0;
    for (const auto& r : results) {
        if (r.unknownReason == UnknownReason::None) continue;
        ++degraded;
        // Degraded rows are honest Unknowns with a deadline cause; decided
        // rows never carry a reason.
        EXPECT_EQ(r.status, Status::Unknown) << r.name;
        EXPECT_TRUE(r.unknownReason == UnknownReason::RunBudget ||
                    r.unknownReason == UnknownReason::Timeout)
            << r.name;
    }
    EXPECT_GT(degraded, 0u);
    EXPECT_EQ(report.engineStats.deadlineDegraded, degraded);
    EXPECT_EQ(report.engineStats.runStopCause,
              static_cast<uint64_t>(Watchdog::Cause::RunBudget));
}

TEST(Robust, PresetStopFlagDrainsRunAsInterrupted) {
    const auto& info = designs::design("ariane_mmu");
    auto design = elabDesignWithFT(info);
    std::atomic<bool> stop{true}; // SIGINT arrived before the run started.
    EngineOptions opts;
    opts.jobs = 2;
    opts.stopFlag = &stop;
    formal::ObligationScheduler scheduler(*design, opts);
    auto results = scheduler.run();
    EXPECT_EQ(results.size(), design->obligations().size());
    for (const auto& r : results)
        if (r.unknownReason != UnknownReason::None)
            EXPECT_EQ(r.unknownReason, UnknownReason::Interrupted) << r.name;
    EXPECT_EQ(scheduler.stats().runStopCause,
              static_cast<uint64_t>(Watchdog::Cause::ExternalStop));
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST(Robust, BudgetKilledRunLeavesCacheAWarmRerunCompletesFrom) {
    const auto& info = designs::design("ariane_tlb");
    auto design = elabDesignWithFT(info);
    TempDir dir("recover");
    EngineOptions budgeted;
    budgeted.jobs = 1;
    budgeted.cacheDir = dir.str();
    budgeted.timeBudgetSeconds = 0.01;
    {
        // The "crash": a run killed mid-flight by its budget. Whatever it
        // decided before expiry is on disk; degraded Unknowns must NOT be.
        formal::ObligationScheduler scheduler(*design, budgeted);
        auto partial = scheduler.run();
        EXPECT_FALSE(partial.empty());
    }
    EngineOptions warm;
    warm.jobs = 1;
    warm.cacheDir = dir.str();
    formal::ObligationScheduler scheduler(*design, warm);
    sva::VerificationReport report;
    report.dutName = "ariane_tlb";
    report.results = scheduler.run();
    report.engineStats = scheduler.stats();
    // The unbudgeted rerun decides everything: had the first run cached a
    // degraded Unknown, it would resurface here as a cached Unknown.
    EXPECT_TRUE(report.allProven()) << report.str();
    EXPECT_FALSE(report.degraded());
    for (const auto& r : report.results)
        EXPECT_NE(r.status, Status::Unknown) << r.name;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Robust, DegradedReportRendersReasonsButKeepsCanonicalFormat) {
    sva::VerificationReport report;
    report.dutName = "toy";
    formal::PropertyResult proven;
    proven.name = "p_ok";
    proven.kind = ir::Obligation::Kind::SafetyBad;
    proven.status = Status::Proven;
    proven.depth = 4;
    formal::PropertyResult timedOut;
    timedOut.name = "p_slow";
    timedOut.kind = ir::Obligation::Kind::Justice;
    timedOut.status = Status::Unknown;
    timedOut.unknownReason = UnknownReason::Timeout;
    report.results = {proven, timedOut};

    EXPECT_TRUE(report.degraded());
    std::string table = report.str();
    EXPECT_NE(table.find("unknown(timeout)"), std::string::npos);
    EXPECT_NE(table.find("Degraded run:"), std::string::npos);
    // canonical() must not grow degradation annotations: a degraded run is
    // excluded from the identity contract, not given a new format.
    std::string canon = report.canonical();
    EXPECT_EQ(canon.find("timeout"), std::string::npos);
    EXPECT_EQ(canon,
              "p_ok|safety|proven|-|0|-1\n"
              "p_slow|liveness|unknown|-|0|-1\n");

    report.results[1].unknownReason = UnknownReason::None;
    EXPECT_FALSE(report.degraded());
    EXPECT_EQ(report.str().find("Degraded run:"), std::string::npos);
}

TEST(Robust, UnknownReasonNamesAreStable) {
    EXPECT_STREQ(formal::unknownReasonName(UnknownReason::None), "none");
    EXPECT_STREQ(formal::unknownReasonName(UnknownReason::Timeout), "timeout");
    EXPECT_STREQ(formal::unknownReasonName(UnknownReason::RunBudget), "run-budget");
    EXPECT_STREQ(formal::unknownReasonName(UnknownReason::Interrupted), "interrupted");
}

} // namespace
