// Proof-cache subsystem tests: fingerprint stability under RTL edits
// outside/inside an obligation's cone of influence, artifact and store
// round-trips, corruption fallback (a damaged cache must never change a
// verdict or crash the engine), warm-vs-cold verdict identity, and
// near-miss invariant seeding soundness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unistd.h>

#include "cache/fingerprint.hpp"
#include "cache/proof_artifact.hpp"
#include "cache/store.hpp"
#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/scheduler.hpp"
#include "rtlir/elaborate.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::AigLit;
using formal::EngineOptions;
using formal::Status;

namespace fs = std::filesystem;

/// Unique per-test temp directory, removed on destruction.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("autosva_test_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    [[nodiscard]] std::string str() const { return path.string(); }
    [[nodiscard]] fs::path logPath() const { return path / "proofs.bin"; }
};

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, top, diags, opts);
}

/// Per-obligation fingerprints the way the scheduler derives them for
/// phase-A jobs (bad == pdrBad, base AIG, all constraints as roots).
std::map<std::string, cache::Fingerprint> obligationFingerprints(const ir::Design& design) {
    formal::BitBlast bb = formal::bitblast(design);
    std::vector<AigLit> constraints;
    for (const auto& ob : design.obligations())
        if (!ob.xprop && ob.kind == ir::Obligation::Kind::Constraint)
            constraints.push_back(bb.lit(ob.net));
    EngineOptions opts;
    std::map<std::string, cache::Fingerprint> fps;
    for (const auto& ob : design.obligations()) {
        if (ob.xprop) continue;
        if (ob.kind != ir::Obligation::Kind::SafetyBad && ob.kind != ir::Obligation::Kind::Cover)
            continue;
        AigLit bad = bb.lit(ob.net);
        std::vector<AigLit> roots{bad, bad, formal::kAigFalse};
        roots.insert(roots.end(), constraints.begin(), constraints.end());
        uint64_t digest = cache::optionsDigest(opts, cache::Stage::FullPipeline,
                                               ob.kind == ir::Obligation::Kind::Cover, ob.kind);
        fps[ob.name] = cache::fingerprintCone(bb.aig, roots, digest);
    }
    return fps;
}

/// Full design+FT elaboration of a registered paper design.
std::unique_ptr<ir::Design> elabDesignWithFT(const std::string& rtl) {
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(rtl, {}, diags);
    return core::elaborateWithFT({rtl}, ft, {}, diags, /*tieReset=*/true);
}

sva::VerificationReport runMixed(const std::string& rtl, const std::string& cacheDir,
                                 int jobs = 1) {
    util::DiagEngine diags;
    core::VerifyOptions vopts;
    vopts.engine.bmcDepth = 15;
    vopts.engine.jobs = jobs;
    vopts.engine.cacheDir = cacheDir;
    core::FormalTestbench ft = core::generateFT(rtl, {}, diags);
    auto report = core::verify({rtl}, ft, vopts, diags);
    return report;
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, StableAcrossRebuildsOfArianeTlb) {
    const auto& info = designs::design("ariane_tlb");
    auto a = obligationFingerprints(*elabDesignWithFT(info.rtl));
    auto b = obligationFingerprints(*elabDesignWithFT(info.rtl));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Fingerprint, EditOutsideConeDoesNotMoveNocBufferKeys) {
    const auto& info = designs::design("noc_buffer");
    // Insert an unused free-running counter right before `endmodule`: new
    // state, new nodes, shifted AIG variable numbering — but nothing feeds
    // any existing obligation, so every fingerprint must stay put.
    std::string edited = info.rtl;
    size_t pos = edited.rfind("endmodule");
    ASSERT_NE(pos, std::string::npos);
    edited.insert(pos, R"(
  reg [3:0] pad_counter_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) pad_counter_q <= 4'd0;
    else pad_counter_q <= pad_counter_q + 4'd1;
  end
)");
    auto before = obligationFingerprints(*elabDesignWithFT(info.rtl));
    auto after = obligationFingerprints(*elabDesignWithFT(edited));
    ASSERT_FALSE(before.empty());
    EXPECT_EQ(before, after);
}

TEST(Fingerprint, EditInsideConeMovesOnlyThatKey) {
    const char* kTemplate = R"(
module m (input wire clk_i, input wire rst_ni);
  reg [3:0] a;
  reg [3:0] b;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      a <= 4'd0;
      b <= 4'd0;
    end else begin
      a <= a + 4'd%c;
      b <= b + 4'd1;
    end
  end
  as__a_small: assert property (a != 4'd15);
  as__b_small: assert property (b != 4'd15);
endmodule)";
    char src1[1024], src2[1024];
    std::snprintf(src1, sizeof src1, kTemplate, '1');
    std::snprintf(src2, sizeof src2, kTemplate, '2');
    auto fp1 = obligationFingerprints(*elab(src1, "m"));
    auto fp2 = obligationFingerprints(*elab(src2, "m"));
    ASSERT_EQ(fp1.count("as__a_small"), 1u);
    EXPECT_NE(fp1.at("as__a_small"), fp2.at("as__a_small")); // Edit is in a's cone.
    EXPECT_EQ(fp1.at("as__b_small"), fp2.at("as__b_small")); // b's cone untouched.
}

TEST(Fingerprint, OptionsThatAffectVerdictsMoveTheKey) {
    const auto& info = designs::design("noc_buffer");
    auto design = elabDesignWithFT(info.rtl);
    formal::BitBlast bb = formal::bitblast(*design);
    const auto& ob = design->obligations().front();
    AigLit bad = bb.lit(ob.net);
    std::vector<AigLit> roots{bad, bad, formal::kAigFalse};
    EngineOptions deep;
    EngineOptions shallow;
    shallow.bmcDepth = 5;
    auto digest = [&](const EngineOptions& o) {
        return cache::optionsDigest(o, cache::Stage::FullPipeline, false, ob.kind);
    };
    EXPECT_NE(cache::fingerprintCone(bb.aig, roots, digest(deep)),
              cache::fingerprintCone(bb.aig, roots, digest(shallow)));
    // Worker count must NOT move the key (results are jobs-invariant).
    EngineOptions parallel;
    parallel.jobs = 8;
    EXPECT_EQ(cache::fingerprintCone(bb.aig, roots, digest(deep)),
              cache::fingerprintCone(bb.aig, roots, digest(parallel)));

    // Extra ladder legs can flip a budget-edge Unknown, and the global
    // budget pool moves where the Unknown frontier falls: both must move
    // the key.
    EngineOptions withLegs;
    withLegs.portfolioLegs = 2;
    EXPECT_NE(cache::fingerprintCone(bb.aig, roots, digest(deep)),
              cache::fingerprintCone(bb.aig, roots, digest(withLegs)));
    EngineOptions withPool;
    withPool.budgetPoolQueries = 200000;
    EXPECT_NE(cache::fingerprintCone(bb.aig, roots, digest(deep)),
              cache::fingerprintCone(bb.aig, roots, digest(withPool)));
    // Racing the ladder versus walking it sequentially adopts the same leg
    // (leg-order adoption), so `portfolio` itself must NOT move the key —
    // raced and sequential runs share cache entries, like jobs.
    EngineOptions raced = withLegs;
    raced.portfolio = true;
    raced.jobs = 8;
    EXPECT_EQ(cache::fingerprintCone(bb.aig, roots, digest(withLegs)),
              cache::fingerprintCone(bb.aig, roots, digest(raced)));
}

// ---------------------------------------------------------------------------
// Artifact serialization
// ---------------------------------------------------------------------------

cache::ProofArtifact sampleArtifact() {
    cache::ProofArtifact art;
    art.structKey = 0xfeedface12345678ULL;
    art.status = Status::Failed;
    art.depth = 7;
    art.trace.initialRegs = {{"a", 3}, {"b", 0}};
    art.trace.inputs = {{{"in", 1}}, {{"in", 0}}};
    art.trace.loopStart = 1;
    art.lemmas.push_back({{{"a[0]", true}, {"b[1]", false}}});
    art.lemmas.push_back({{{"q[2]", true}}});
    return art;
}

TEST(ProofArtifact, RoundTrips) {
    cache::ProofArtifact art = sampleArtifact();
    auto back = cache::ProofArtifact::deserialize(art.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->structKey, art.structKey);
    EXPECT_EQ(back->status, art.status);
    EXPECT_EQ(back->depth, art.depth);
    EXPECT_EQ(back->trace.initialRegs, art.trace.initialRegs);
    EXPECT_EQ(back->trace.inputs, art.trace.inputs);
    EXPECT_EQ(back->trace.loopStart, art.trace.loopStart);
    ASSERT_EQ(back->lemmas.size(), 2u);
    EXPECT_EQ(back->lemmas[0].lits, art.lemmas[0].lits);
    EXPECT_EQ(back->lemmas[1].lits, art.lemmas[1].lits);
}

TEST(ProofArtifact, RejectsTruncatedAndGarbledBytes) {
    std::string bytes = sampleArtifact().serialize();
    for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2, bytes.size() - 1})
        EXPECT_FALSE(cache::ProofArtifact::deserialize(bytes.substr(0, cut)).has_value())
            << "cut at " << cut;
    // An invalid status enum value must be rejected too.
    std::string bad = bytes;
    bad[8] = 0x7f;
    EXPECT_FALSE(cache::ProofArtifact::deserialize(bad).has_value());
    // Trailing junk means the record does not parse cleanly.
    EXPECT_FALSE(cache::ProofArtifact::deserialize(bytes + "x").has_value());
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

TEST(ProofStore, PersistsAcrossReopenAndSupersedes) {
    TempDir dir("store");
    cache::Fingerprint fp{1, 2};
    {
        cache::ProofCache store(dir.str());
        EXPECT_TRUE(store.persistent());
        EXPECT_FALSE(store.lookup(fp).has_value()); // Miss on empty store.
        store.store(fp, sampleArtifact());
        // Same-run lookups still miss: snapshot semantics.
        EXPECT_FALSE(store.lookup(fp).has_value());
        EXPECT_EQ(store.stats().stores, 1u);
    }
    {
        cache::ProofCache store(dir.str());
        auto hit = store.lookup(fp);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->depth, 7);
        EXPECT_EQ(store.stats().entriesLoaded, 1u);
        // Supersede with a new artifact under the same key... requires a
        // fresh run view, so write under a different fingerprint too.
        cache::ProofArtifact art2 = sampleArtifact();
        art2.depth = 9;
        store.store(cache::Fingerprint{3, 4}, art2);
    }
    {
        cache::ProofCache store(dir.str());
        EXPECT_EQ(store.stats().entriesLoaded, 2u);
        ASSERT_TRUE(store.lookup(cache::Fingerprint{3, 4}).has_value());
        EXPECT_EQ(store.lookup(cache::Fingerprint{3, 4})->depth, 9);
    }
}

TEST(ProofStore, NearMissLookupFindsByStructKey) {
    TempDir dir("near");
    cache::ProofArtifact art = sampleArtifact();
    {
        cache::ProofCache store(dir.str());
        store.store(cache::Fingerprint{10, 11}, art);
    }
    cache::ProofCache store(dir.str());
    EXPECT_FALSE(store.lookup(cache::Fingerprint{99, 99}).has_value());
    auto near = store.lookupNear(art.structKey);
    ASSERT_TRUE(near.has_value());
    EXPECT_EQ(near->lemmas.size(), 2u);
    EXPECT_FALSE(store.lookupNear(0xdeadULL).has_value());
}

TEST(ProofStore, GarbledRecordIsSkippedOthersSurvive) {
    TempDir dir("garble");
    {
        cache::ProofCache store(dir.str());
        store.store(cache::Fingerprint{1, 1}, sampleArtifact());
        store.store(cache::Fingerprint{2, 2}, sampleArtifact());
    }
    // Flip one byte inside the first record's payload: its checksum fails,
    // but the length fields are intact, so the second record still loads.
    {
        std::fstream f(dir.logPath(), std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8 + 32 + 4); // File magic + record header + a few payload bytes.
        f.put(static_cast<char>(0x5a));
    }
    cache::ProofCache store(dir.str());
    EXPECT_EQ(store.stats().loadErrors, 1u);
    EXPECT_EQ(store.stats().entriesLoaded, 1u);
    EXPECT_FALSE(store.lookup(cache::Fingerprint{1, 1}).has_value());
    EXPECT_TRUE(store.lookup(cache::Fingerprint{2, 2}).has_value());
}

TEST(ProofStore, TruncatedTailAndForeignFileAreIgnored) {
    TempDir dir("trunc");
    {
        cache::ProofCache store(dir.str());
        store.store(cache::Fingerprint{1, 1}, sampleArtifact());
        store.store(cache::Fingerprint{2, 2}, sampleArtifact());
    }
    auto size = fs::file_size(dir.logPath());
    fs::resize_file(dir.logPath(), size - 5);
    {
        cache::ProofCache store(dir.str());
        EXPECT_EQ(store.stats().entriesLoaded, 1u); // Prefix survives.
        EXPECT_GE(store.stats().loadErrors, 1u);
        EXPECT_TRUE(store.lookup(cache::Fingerprint{1, 1}).has_value());
        // The torn tail was trimmed, so new appends land readable again.
        EXPECT_TRUE(store.persistent());
        store.store(cache::Fingerprint{5, 5}, sampleArtifact());
    }
    {
        cache::ProofCache store(dir.str());
        EXPECT_EQ(store.stats().entriesLoaded, 2u); // Healed prefix + new record.
        EXPECT_TRUE(store.lookup(cache::Fingerprint{5, 5}).has_value());
    }
    // A file that is not a proof log at all: loads nothing, crashes never,
    // and is neither clobbered nor appended to (memory-only for this run).
    std::ofstream(dir.logPath(), std::ios::trunc) << "this is not a cache";
    cache::ProofCache store(dir.str());
    EXPECT_EQ(store.stats().entriesLoaded, 0u);
    EXPECT_FALSE(store.persistent());
    EXPECT_FALSE(store.lookup(cache::Fingerprint{1, 1}).has_value());
    store.store(cache::Fingerprint{6, 6}, sampleArtifact()); // No-op on disk.
    EXPECT_EQ(fs::file_size(dir.logPath()), 19u); // Foreign bytes untouched.
}

TEST(ProofStore, CompactKeepsNewestRecordPerKey) {
    TempDir dir("compact");
    // Two writers racing on the same (initially empty) log: both miss in
    // their open-time snapshot, so both append under the same fingerprint —
    // the only way duplicate keys legitimately arise.
    {
        cache::ProofCache a(dir.str());
        cache::ProofCache b(dir.str());
        cache::ProofArtifact stale = sampleArtifact();
        stale.depth = 7;
        cache::ProofArtifact fresh = sampleArtifact();
        fresh.depth = 9;
        a.store(cache::Fingerprint{1, 1}, stale);
        b.store(cache::Fingerprint{1, 1}, fresh); // Appended later: must win.
        a.store(cache::Fingerprint{2, 2}, sampleArtifact());
        b.store(cache::Fingerprint{3, 3}, sampleArtifact());
    }
    const auto sizeBefore = fs::file_size(dir.logPath());
    cache::CompactResult cr = cache::ProofCache::compactLog(dir.str());
    EXPECT_TRUE(cr.performed);
    EXPECT_EQ(cr.recordsBefore, 4u);
    EXPECT_EQ(cr.recordsAfter, 3u);
    EXPECT_EQ(cr.droppedCorrupt, 0u);
    EXPECT_EQ(cr.bytesBefore, sizeBefore);
    EXPECT_LT(cr.bytesAfter, cr.bytesBefore);
    EXPECT_EQ(cr.bytesAfter, fs::file_size(dir.logPath()));

    cache::ProofCache reloaded(dir.str());
    EXPECT_EQ(reloaded.stats().entriesLoaded, 3u);
    EXPECT_EQ(reloaded.stats().loadErrors, 0u);
    auto art = reloaded.lookup(cache::Fingerprint{1, 1});
    ASSERT_TRUE(art.has_value());
    EXPECT_EQ(art->depth, 9); // The newest record survived, the stale one is gone.
    EXPECT_TRUE(reloaded.lookup(cache::Fingerprint{2, 2}).has_value());
    EXPECT_TRUE(reloaded.lookup(cache::Fingerprint{3, 3}).has_value());

    // Compacting a compacted log is a fixpoint (byte size included).
    cache::CompactResult again = cache::ProofCache::compactLog(dir.str());
    EXPECT_TRUE(again.performed);
    EXPECT_EQ(again.recordsAfter, 3u);
    EXPECT_EQ(again.bytesAfter, cr.bytesAfter);
}

TEST(ProofStore, CompactDropsCorruptionAndIgnoresStaleStaging) {
    TempDir dir("compact_corrupt");
    {
        cache::ProofCache store(dir.str());
        store.store(cache::Fingerprint{1, 1}, sampleArtifact());
        store.store(cache::Fingerprint{2, 2}, sampleArtifact());
    }
    // Corrupt the first record's payload (framing intact, checksum fails)
    // and leave a stale staging file behind, as if a previous compactor
    // died mid-write. The compactor must drop the corrupt record, ignore
    // and replace the stale staging file, and produce a clean log.
    {
        std::fstream f(dir.logPath(), std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8 + 32 + 4);
        f.put(static_cast<char>(0x5a));
    }
    const fs::path staging = dir.path / "proofs.bin.compacting";
    std::ofstream(staging, std::ios::binary) << "half-written garbage from a dead compactor";
    ASSERT_TRUE(fs::exists(staging));

    cache::CompactResult cr = cache::ProofCache::compactLog(dir.str());
    EXPECT_TRUE(cr.performed);
    EXPECT_EQ(cr.recordsBefore, 1u);
    EXPECT_EQ(cr.droppedCorrupt, 1u);
    EXPECT_EQ(cr.recordsAfter, 1u);
    EXPECT_FALSE(fs::exists(staging)); // Promoted over the log, not left behind.

    cache::ProofCache reloaded(dir.str());
    EXPECT_EQ(reloaded.stats().entriesLoaded, 1u);
    EXPECT_EQ(reloaded.stats().loadErrors, 0u); // Corruption gone for good.
    EXPECT_FALSE(reloaded.lookup(cache::Fingerprint{1, 1}).has_value());
    EXPECT_TRUE(reloaded.lookup(cache::Fingerprint{2, 2}).has_value());
}

TEST(ProofStore, CompactRefusesForeignFile) {
    TempDir dir("compact_foreign");
    fs::create_directories(dir.path);
    std::ofstream(dir.logPath(), std::ios::binary) << "this is not a cache";
    cache::CompactResult cr = cache::ProofCache::compactLog(dir.str());
    EXPECT_FALSE(cr.performed);
    // The foreign bytes are untouched.
    std::ifstream in(dir.logPath());
    std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "this is not a cache");

    // Even a foreign file shorter than our 8-byte magic is not ours to
    // destroy.
    std::ofstream(dir.logPath(), std::ios::binary | std::ios::trunc) << "abc";
    cr = cache::ProofCache::compactLog(dir.str());
    EXPECT_FALSE(cr.performed);
    EXPECT_EQ(fs::file_size(dir.logPath()), 3u);
}

TEST(ProofStore, CompactRefusesMissingLog) {
    // A typo'd --cache-dir must surface as "nothing to compact" — not
    // fabricate a directory tree and an empty log.
    TempDir dir("compact_missing");
    cache::CompactResult cr = cache::ProofCache::compactLog(dir.str());
    EXPECT_FALSE(cr.performed);
    EXPECT_FALSE(fs::exists(dir.logPath()));
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

// Safety (passing + failing), generated transaction liveness, and covers
// in one module, so every cache stage (FullPipeline, Frontier, ChainPdr)
// sees traffic.
constexpr const char* kMixedRtl = R"(
module m (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input  wire       req_val,
  output wire       req_ack,
  input  wire [1:0] req_transid,
  output wire       res_val,
  output wire [1:0] res_transid
);
  reg busy;
  reg [1:0] id_q;
  reg [3:0] q;
  assign req_ack = !busy;
  wire hsk = req_val && req_ack;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
      q <= 4'd0;
    end else begin
      if (hsk) begin
        busy <= 1'b1;
        id_q <= req_transid;
      end else begin
        busy <= 1'b0;
      end
      if (q != 4'd15) q <= q + 4'd1;
    end
  end
  assign res_val = busy;
  assign res_transid = id_q;
  as__never9: assert property (q != 4'd9);
  as__bounded: assert property (q <= 4'd15);
  co__six: cover property (q == 4'd6);
endmodule)";

TEST(CacheIntegration, WarmRunMatchesColdAndSkipsAllSatWork) {
    TempDir dir("warm");
    sva::VerificationReport disabled = runMixed(kMixedRtl, "");
    sva::VerificationReport cold = runMixed(kMixedRtl, dir.str());
    sva::VerificationReport warm = runMixed(kMixedRtl, dir.str());

    EXPECT_EQ(disabled.canonical(), cold.canonical());
    EXPECT_EQ(cold.canonical(), warm.canonical());
    EXPECT_EQ(cold.engineStats.cacheHits, 0u);
    EXPECT_GT(warm.engineStats.cacheLookups, 0u);
    EXPECT_EQ(warm.engineStats.cacheHits, warm.engineStats.cacheLookups); // 100% hit rate.
    EXPECT_GT(warm.numCached(), 0u);
    EXPECT_EQ(warm.numCached(), warm.totalChecked());
    for (const auto& r : cold.results) EXPECT_FALSE(r.cached) << r.name;

    // Warm verdicts are identical for any worker count, and still all-hit.
    sva::VerificationReport warm4 = runMixed(kMixedRtl, dir.str(), /*jobs=*/4);
    EXPECT_EQ(warm.canonical(), warm4.canonical());
    EXPECT_EQ(warm4.engineStats.cacheHits, warm4.engineStats.cacheLookups);
}

TEST(CacheIntegration, CachedFailureKeepsItsTrace) {
    TempDir dir("trace");
    sva::VerificationReport cold = runMixed(kMixedRtl, dir.str());
    sva::VerificationReport warm = runMixed(kMixedRtl, dir.str());
    const auto* coldFail = cold.find("as__never9");
    const auto* warmFail = warm.find("as__never9");
    ASSERT_NE(coldFail, nullptr);
    ASSERT_NE(warmFail, nullptr);
    EXPECT_EQ(coldFail->status, Status::Failed);
    EXPECT_EQ(warmFail->status, Status::Failed);
    EXPECT_TRUE(warmFail->cached);
    EXPECT_EQ(warmFail->trace.inputs.size(), coldFail->trace.inputs.size());
    EXPECT_EQ(warmFail->trace.initialRegs, coldFail->trace.initialRegs);
}

TEST(CacheIntegration, CorruptedCacheFallsBackToFullProof) {
    TempDir dir("corrupt");
    sva::VerificationReport reference = runMixed(kMixedRtl, "");
    (void)runMixed(kMixedRtl, dir.str()); // Populate.

    // Garble the middle of the log: damaged entries must silently degrade
    // to misses — same verdicts, no crash.
    {
        auto size = fs::file_size(dir.logPath());
        std::fstream f(dir.logPath(), std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(size / 2));
        for (int i = 0; i < 64; ++i) f.put(static_cast<char>(0xa5));
    }
    sva::VerificationReport garbled = runMixed(kMixedRtl, dir.str());
    EXPECT_EQ(garbled.canonical(), reference.canonical());

    // Truncate to an arbitrary prefix: ditto.
    fs::resize_file(dir.logPath(), fs::file_size(dir.logPath()) / 3);
    sva::VerificationReport truncated = runMixed(kMixedRtl, dir.str());
    EXPECT_EQ(truncated.canonical(), reference.canonical());

    // Replace with garbage entirely: ditto.
    std::ofstream(dir.logPath(), std::ios::trunc) << "zzzzzzzzzzzzzzzzzzzzzz";
    sva::VerificationReport garbage = runMixed(kMixedRtl, dir.str());
    EXPECT_EQ(garbage.canonical(), reference.canonical());
}

// A PDR-shaped proof whose update function we can edit to exercise the
// near-miss path: the counter wraps at `wrap`, so q == 12 is unreachable
// for small wraps but NOT k-inductive (unreachable states 8..11 march
// straight into 12), forcing PDR to learn — and store — lemmas.
std::string pdrRtl(const std::string& wrap) {
    return R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [3:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else if (en) begin
      if (q == 4'd)" +
           wrap + R"() q <= 4'd0;
      else q <= q + 4'd1;
    end
  end
  as__never12: assert property (q != 4'd12);
endmodule)";
}

std::vector<formal::PropertyResult> runScheduler(const std::string& src,
                                                 const std::string& cacheDir,
                                                 formal::EngineStats* stats = nullptr) {
    auto design = elab(src, "m");
    EngineOptions opts;
    opts.cacheDir = cacheDir;
    formal::ObligationScheduler scheduler(*design, opts);
    auto results = scheduler.run();
    if (stats) *stats = scheduler.stats();
    return results;
}

TEST(CacheIntegration, NearMissSeedsLemmasButNeverVerdicts) {
    TempDir dir("seed");
    // Cold proof of the original design: PDR stores its invariant.
    auto cold = runScheduler(pdrRtl("6"), dir.str());
    ASSERT_EQ(cold.size(), 1u);
    EXPECT_EQ(cold[0].status, Status::Proven);

    // Same property, edited cone, still true: the exact key misses, the
    // prior invariant seeds PDR (re-validated), and the proof closes.
    formal::EngineStats stats;
    auto edited = runScheduler(pdrRtl("5"), dir.str(), &stats);
    EXPECT_EQ(edited[0].status, Status::Proven);
    EXPECT_FALSE(edited[0].cached);
    EXPECT_GT(stats.cacheSeededLemmas, 0u);

    // Same property, edited cone, now FALSE (the counter runs through 12):
    // stale lemmas must not save it — the cache can never flip a failing
    // property to proven.
    auto broken = runScheduler(pdrRtl("14"), dir.str());
    EXPECT_EQ(broken[0].status, Status::Failed);
    EXPECT_FALSE(broken[0].cached);
}

} // namespace
