// AIG and bit-blaster tests: word-level operations are checked for
// equivalence against the simulator via SAT (exhaustive on small widths,
// random sampling otherwise).
#include <gtest/gtest.h>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "formal/sat.hpp"
#include "formal/unroll.hpp"
#include "rtlir/elaborate.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace autosva;
using namespace autosva::formal;

TEST(Aig, ConstantFolding) {
    Aig aig;
    AigLit a = aig.mkInput("a");
    EXPECT_EQ(aig.mkAnd(a, kAigFalse), kAigFalse);
    EXPECT_EQ(aig.mkAnd(a, kAigTrue), a);
    EXPECT_EQ(aig.mkAnd(a, a), a);
    EXPECT_EQ(aig.mkAnd(a, aigNot(a)), kAigFalse);
    EXPECT_EQ(aig.mkOr(a, kAigTrue), kAigTrue);
    EXPECT_EQ(aig.mkXor(a, kAigFalse), a);
}

TEST(Aig, StructuralHashing) {
    Aig aig;
    AigLit a = aig.mkInput("a");
    AigLit b = aig.mkInput("b");
    AigLit x = aig.mkAnd(a, b);
    AigLit y = aig.mkAnd(b, a); // Commuted: same node.
    EXPECT_EQ(x, y);
    size_t nodes = aig.numAnds();
    (void)aig.mkAnd(a, b);
    EXPECT_EQ(aig.numAnds(), nodes);
}

TEST(Aig, LatchInitAndNext) {
    Aig aig;
    AigLit l = aig.mkLatch(1, "q");
    AigLit in = aig.mkInput("d");
    aig.setLatchNext(l, in);
    EXPECT_EQ(aig.latchInit(aigVar(l)), 1);
    EXPECT_EQ(aig.latchNext(aigVar(l)), in);
    EXPECT_EQ(aig.kind(aigVar(l)), Aig::VarKind::Latch);
}

// --- Equivalence harness: for a combinational module, assert via SAT that
// the bit-blasted AIG agrees with the 2-state simulator on sampled inputs.
class OpEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(OpEquivalence, SimulatorAgreesWithAig) {
    std::string expr = GetParam();
    std::string rtl = "module m (input wire [3:0] a, input wire [3:0] b, input wire [3:0] c,\n"
                      "          output wire [7:0] y);\n  assign y = " +
                      expr + ";\nendmodule";
    util::DiagEngine diags;
    auto design = ir::elaborateSources({rtl}, "m", diags, {});
    BitBlast bb = bitblast(*design);

    sim::Simulator simulator(*design, sim::Simulator::XMode::TwoState);
    ir::NodeId aId = design->findSignal("a");
    ir::NodeId bId = design->findSignal("b");
    ir::NodeId cId = design->findSignal("c");
    ir::NodeId yId = design->findSignal("y");

    std::mt19937_64 rng(99);
    for (int iter = 0; iter < 24; ++iter) {
        uint64_t av = rng() & 0xF, bv = rng() & 0xF, cv = rng() & 0xF;
        simulator.setInput(aId, av);
        simulator.setInput(bId, bv);
        simulator.setInput(cId, cv);
        simulator.evalComb();
        uint64_t expected = simulator.value(yId).val;

        // SAT check: with inputs fixed, y must equal the simulator's value.
        SatSolver solver;
        Unroller un(bb.aig, solver, Unroller::Init::Reset);
        auto fixInput = [&](ir::NodeId node, uint64_t value) {
            const auto& vars = bb.inputVars.at(node);
            for (size_t i = 0; i < vars.size(); ++i) {
                SatLit l = un.lit(0, aigMkLit(vars[i]));
                solver.addUnit(((value >> i) & 1) ? l : satNeg(l));
            }
        };
        fixInput(aId, av);
        fixInput(bId, bv);
        fixInput(cId, cv);
        // Ask for y != expected: must be UNSAT.
        std::vector<SatLit> diff;
        const auto& yBits = bb.bits.at(yId);
        for (size_t i = 0; i < yBits.size(); ++i) {
            SatLit yb = un.lit(0, yBits[i]);
            bool expBit = (expected >> i) & 1;
            diff.push_back(expBit ? satNeg(yb) : yb);
        }
        solver.addClause(diff);
        EXPECT_EQ(solver.solve(), SatResult::Unsat)
            << expr << " a=" << av << " b=" << bv << " c=" << cv << " expected=" << expected;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpEquivalence,
    ::testing::Values("a + b", "a - b", "a * b", "a & b", "a | b", "a ^ b", "~a", "a == b",
                      "a != b", "a < b", "a <= b", "a > b", "a >= b", "a << b[1:0]",
                      "a >> b[1:0]", "c[0] ? a : b", "{a, b}", "a[3:1]", "&a", "|a", "^a",
                      "a % 4'd4", "a / 4'd2", "$countones(a)", "$onehot(a)", "$onehot0(a)",
                      "{2{a[1:0]}}", "a << b", "-a"));

TEST(BitBlast, RegisterInitialization) {
    const char* rtl = R"(
module m (input wire clk, input wire rst_n, output reg [3:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd9;
    else q <= q;
  end
endmodule)";
    util::DiagEngine diags;
    auto design = ir::elaborateSources({rtl}, "m", diags, {});
    BitBlast bb = bitblast(*design);
    const auto& vars = bb.latchVars.at(design->regs()[0]);
    // 9 = 1001.
    EXPECT_EQ(bb.aig.latchInit(vars[0]), 1);
    EXPECT_EQ(bb.aig.latchInit(vars[1]), 0);
    EXPECT_EQ(bb.aig.latchInit(vars[2]), 0);
    EXPECT_EQ(bb.aig.latchInit(vars[3]), 1);
}

TEST(BitBlast, SequentialUnrollingMatchesSimulation) {
    const char* rtl = R"(
module m (input wire clk, input wire rst_n, input wire en, output reg [2:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 3'd0;
    else if (en) q <= q + 3'd1;
  end
endmodule)";
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_n"] = 1; // Formal convention: reset released at t=0.
    auto design = ir::elaborateSources({rtl}, "m", diags, opts);
    BitBlast bb = bitblast(*design);

    // After 3 frames with en=1, q must be 3; check via SAT.
    SatSolver solver;
    Unroller un(bb.aig, solver, Unroller::Init::Reset);
    ir::NodeId en = design->findSignal("en");
    for (int f = 0; f < 3; ++f)
        solver.addUnit(un.lit(f, aigMkLit(bb.inputVars.at(en)[0])));
    // q at frame 3 != 3 must be UNSAT.
    const auto& qBits = bb.bits.at(design->regs()[0]);
    std::vector<SatLit> diff;
    uint64_t expected = 3;
    for (size_t i = 0; i < qBits.size(); ++i) {
        SatLit qb = un.lit(3, qBits[i]);
        diff.push_back(((expected >> i) & 1) ? satNeg(qb) : qb);
    }
    solver.addClause(diff);
    EXPECT_EQ(solver.solve(), SatResult::Unsat);
}

} // namespace
