// Elaborator unit tests: IR construction, procedural lowering, hierarchy,
// memories, binds, and assertion lowering.
#include <gtest/gtest.h>

#include "rtlir/elaborate.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace autosva;
using ir::Design;

std::unique_ptr<Design> elab(const std::string& src, const std::string& top,
                             ir::ElabOptions opts = {}) {
    util::DiagEngine diags;
    return ir::elaborateSources({src}, top, diags, opts);
}

TEST(Elaborate, PortsBecomeInputsAndNamedSignals) {
    auto d = elab("module m (input wire [3:0] a, output wire [3:0] y); assign y = a; endmodule",
                  "m");
    ir::NodeId a = d->findSignal("a");
    ASSERT_NE(a, ir::kInvalidNode);
    EXPECT_EQ(d->node(a).op, ir::Op::Input);
    EXPECT_EQ(d->node(a).width, 4);
    ir::NodeId y = d->findSignal("y");
    ASSERT_NE(y, ir::kInvalidNode);
    EXPECT_EQ(d->node(y).op, ir::Op::Buf);
}

TEST(Elaborate, ParameterArithmetic) {
    auto d = elab(R"(
module m #(parameter W = 4, parameter D = W * 2) (
  input wire [W-1:0] a,
  output wire [D-1:0] y
);
  assign y = {a, a};
endmodule)",
                  "m");
    EXPECT_EQ(d->node(d->findSignal("y")).width, 8);
}

TEST(Elaborate, ParameterOverride) {
    ir::ElabOptions opts;
    opts.paramOverrides["W"] = 6;
    auto d = elab("module m #(parameter W = 4) (input wire [W-1:0] a); endmodule", "m", opts);
    EXPECT_EQ(d->node(d->findSignal("a")).width, 6);
}

TEST(Elaborate, RegistersWithAsyncResetGetInitValues) {
    auto d = elab(R"(
module m (input wire clk, input wire rst_n, input wire d, output reg q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b1;
    else q <= d;
  end
endmodule)",
                  "m");
    ASSERT_EQ(d->regs().size(), 1u);
    const auto& reg = d->node(d->regs()[0]);
    EXPECT_TRUE(reg.hasInit);
    EXPECT_EQ(reg.initValue, 1u);
}

TEST(Elaborate, RegistersWithoutResetAreSymbolic) {
    auto d = elab(R"(
module m (input wire clk, input wire d, output reg q);
  always_ff @(posedge clk) q <= d;
endmodule)",
                  "m");
    ASSERT_EQ(d->regs().size(), 1u);
    EXPECT_FALSE(d->node(d->regs()[0]).hasInit);
}

TEST(Elaborate, CombIfLowersToMux) {
    auto d = elab(R"(
module m (input wire s, input wire [1:0] a, input wire [1:0] b, output reg [1:0] y);
  always_comb begin
    y = a;
    if (s) y = b;
  end
endmodule)",
                  "m");
    // Simulate to validate behaviour.
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("s", 1);
    simulator.setInput("a", 1);
    simulator.setInput("b", 2);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 2u);
    simulator.setInput("s", 0);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 1u);
}

TEST(Elaborate, CaseWithPriority) {
    auto d = elab(R"(
module m (input wire [1:0] s, output reg [3:0] y);
  always_comb begin
    case (s)
      2'd0: y = 4'h1;
      2'd1: y = 4'h2;
      default: y = 4'hF;
    endcase
  end
endmodule)",
                  "m");
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    for (uint64_t s = 0; s < 4; ++s) {
        simulator.setInput("s", s);
        simulator.evalComb();
        uint64_t expect = s == 0 ? 1 : (s == 1 ? 2 : 0xF);
        EXPECT_EQ(simulator.value("y").val, expect) << "s=" << s;
    }
}

TEST(Elaborate, HierarchyFlattensWithPrefixes) {
    auto d = elab(R"(
module leaf (input wire a, output wire y);
  assign y = !a;
endmodule
module top (input wire x, output wire z);
  wire mid;
  leaf l1 (.a(x), .y(mid));
  leaf l2 (.a(mid), .y(z));
endmodule)",
                  "top");
    EXPECT_NE(d->findSignal("l1.y"), ir::kInvalidNode);
    EXPECT_NE(d->findSignal("l2.a"), ir::kInvalidNode);
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("x", 1);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("z").val, 1u); // Double inversion.
}

TEST(Elaborate, InstanceParameterOverride) {
    auto d = elab(R"(
module leaf #(parameter W = 2) (input wire [W-1:0] a, output wire [W-1:0] y);
  assign y = ~a;
endmodule
module top (input wire [4:0] x, output wire [4:0] z);
  leaf #(.W(5)) l (.a(x), .y(z));
endmodule)",
                  "top");
    EXPECT_EQ(d->node(d->findSignal("l.a")).width, 5);
}

TEST(Elaborate, MemoryBecomesRegisterBank) {
    auto d = elab(R"(
module m (input wire clk, input wire we, input wire [1:0] waddr,
          input wire [7:0] wdata, input wire [1:0] raddr, output wire [7:0] rdata);
  reg [7:0] mem [0:3];
  always_ff @(posedge clk) begin
    if (we) mem[waddr] <= wdata;
  end
  assign rdata = mem[raddr];
endmodule)",
                  "m");
    EXPECT_EQ(d->regs().size(), 4u);
    // Behavioural check: write then read back.
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("we", 1);
    simulator.setInput("waddr", 2);
    simulator.setInput("wdata", 0xAB);
    simulator.step();
    simulator.setInput("we", 0);
    simulator.setInput("raddr", 2);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("rdata").val, 0xABu);
}

TEST(Elaborate, UndrivenSignalBecomesFreeInput) {
    auto d = elab(R"(
module m (input wire clk, output wire y);
  wire free_symb;
  assign y = free_symb;
endmodule)",
                  "m");
    ir::NodeId symb = d->findSignal("free_symb");
    EXPECT_EQ(d->node(symb).op, ir::Op::Input);
}

TEST(Elaborate, TieOffPinsInput) {
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    auto d = elab("module m (input wire rst_ni, output wire y); assign y = rst_ni; endmodule",
                  "m", opts);
    EXPECT_EQ(d->node(d->findSignal("rst_ni")).op, ir::Op::Const);
    EXPECT_EQ(d->node(d->findSignal("rst_ni")).cval, 1u);
}

TEST(Elaborate, PartSelectAssignMergesDrivers) {
    auto d = elab(R"(
module m (input wire [3:0] a, input wire [3:0] b, output wire [7:0] y);
  assign y[7:4] = a;
  assign y[3:0] = b;
endmodule)",
                  "m");
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("a", 0x5);
    simulator.setInput("b", 0xA);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 0x5Au);
}

TEST(Elaborate, MultipleDriversRejected) {
    EXPECT_THROW(elab(R"(
module m (input wire a, output wire y);
  assign y = a;
  assign y = !a;
endmodule)",
                      "m"),
                 util::FrontendError);
}

TEST(Elaborate, CombinationalCycleRejected) {
    auto d = elab(R"(
module m (output wire y);
  wire a;
  assign a = !y;
  assign y = !a;
endmodule)",
                  "m");
    EXPECT_THROW(d->topoOrder(), util::FrontendError);
}

TEST(Elaborate, AssertionLoweringProducesObligations) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a, input wire b);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);
  as__safety: assert property (a |-> b);
  as__live: assert property (a |-> s_eventually (b));
  am__env: assume property (b |=> !b);
  co__reach: cover property (a && b);
endmodule)",
                  "m");
    ASSERT_EQ(d->obligations().size(), 4u);
    EXPECT_EQ(d->obligations()[0].kind, ir::Obligation::Kind::SafetyBad);
    EXPECT_EQ(d->obligations()[1].kind, ir::Obligation::Kind::Justice);
    EXPECT_EQ(d->obligations()[2].kind, ir::Obligation::Kind::Constraint);
    EXPECT_EQ(d->obligations()[3].kind, ir::Obligation::Kind::Cover);
}

TEST(Elaborate, XpropLabelMarksObligation) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a, input wire [3:0] v);
  xp__check: assert property (a |-> !$isunknown(v));
endmodule)",
                  "m");
    ASSERT_EQ(d->obligations().size(), 1u);
    EXPECT_TRUE(d->obligations()[0].xprop);
}

TEST(Elaborate, BindInjectsPropertyModule) {
    util::DiagEngine diags;
    auto d = ir::elaborateSources(
        {R"(module dut (input wire clk_i, input wire rst_ni, input wire v); endmodule)",
         R"(module dut_prop (input wire clk_i, input wire rst_ni, input wire v);
              co__seen: cover property (v);
            endmodule)",
         R"(bind dut dut_prop prop_i (.*);)"},
        "dut", diags);
    ASSERT_EQ(d->obligations().size(), 1u);
    EXPECT_EQ(d->obligations()[0].name, "prop_i.co__seen");
}

TEST(Elaborate, WidthMismatchResizesInAssign) {
    auto d = elab("module m (input wire [7:0] a, output wire [3:0] y); assign y = a; endmodule",
                  "m");
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("a", 0xF5);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 0x5u);
}

TEST(Elaborate, UnbasedOnesStretch) {
    auto d = elab("module m (output wire [5:0] y); assign y = '1; endmodule", "m");
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 0x3Fu);
}

TEST(Elaborate, DynamicBitSelectReadAndWrite) {
    auto d = elab(R"(
module m (input wire clk, input wire [2:0] idx, input wire bitv, input wire [7:0] base,
          output reg [7:0] y, output wire sel);
  always_comb begin
    y = base;
    y[idx] = bitv;
  end
  assign sel = base[idx];
endmodule)",
                  "m");
    sim::Simulator simulator(*d, sim::Simulator::XMode::TwoState);
    simulator.setInput("base", 0x0F);
    simulator.setInput("idx", 5);
    simulator.setInput("bitv", 1);
    simulator.evalComb();
    EXPECT_EQ(simulator.value("y").val, 0x2Fu);
    EXPECT_EQ(simulator.value("sel").val, 0u);
}

} // namespace
