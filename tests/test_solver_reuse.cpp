// Solver-reuse and AIG-rewrite tests: the determinism contract of the
// per-worker incremental solver architecture (batched BMC + pooled
// induction contexts must produce the same verdicts, depths, and canonical
// reports as throwaway solvers, for any worker count), Unroller::peek
// across frames, assumption-released clause groups, and the structural
// rewrite pass (soundness, determinism, fingerprint stability).
#include <gtest/gtest.h>

#include <sstream>

#include "cache/fingerprint.hpp"
#include "core/autosva.hpp"
#include "formal/aig_rewrite.hpp"
#include "formal/scheduler.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "rtlir/elaborate.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::Aig;
using formal::AigLit;
using formal::EngineOptions;
using formal::ObligationJob;
using formal::ObligationScheduler;
using formal::ProofContext;
using formal::SatLit;
using formal::SatResult;
using formal::SatSolver;
using formal::SolverPool;
using formal::Status;
using formal::aigNot;
using formal::aigMkLit;
using formal::Unroller;

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, top, diags, opts);
}

std::string fingerprint(const std::vector<formal::PropertyResult>& results) {
    std::ostringstream out;
    for (const auto& r : results) {
        out << r.name << '|' << static_cast<int>(r.kind) << '|' << formal::statusName(r.status)
            << '|' << r.depth << '|' << r.trace.length() << '|' << r.trace.loopStart << '\n';
    }
    return out.str();
}

// ---------------------------------------------------------------------------
// Unroller::peek
// ---------------------------------------------------------------------------

TEST(Unroll, PeekAcrossFrames) {
    Aig aig;
    AigLit in = aig.mkInput("in");
    AigLit latch = aig.mkLatch(0, "q");
    aig.setLatchNext(latch, in);
    AigLit net = aig.mkAnd(in, aigNot(latch));

    SatSolver solver;
    Unroller un(aig, solver, Unroller::Init::Reset);

    // Nothing materialized yet: peek must not materialize.
    EXPECT_EQ(un.peek(0, net), Unroller::kUnset);
    EXPECT_EQ(un.peek(3, in), Unroller::kUnset);
    EXPECT_EQ(un.peek(-1, in), Unroller::kUnset);

    SatLit l2 = un.lit(2, net); // Materializes the cone through frames 0..2.
    EXPECT_EQ(un.peek(2, net), l2);
    // Signed peek is the negation of the unsigned mapping.
    EXPECT_EQ(un.peek(2, aigNot(net)), formal::satNeg(l2));
    // The latch at frame 2 aliases its next-state function at frame 1, so
    // the cone reaches back to frame 1's input but never frame 0's latch.
    EXPECT_NE(un.peek(1, in), Unroller::kUnset);
    EXPECT_EQ(un.peek(2, latch), un.peek(1, in));
    EXPECT_EQ(un.peek(0, latch), Unroller::kUnset);
    // The AND node itself was only needed at frame 2.
    EXPECT_EQ(un.peek(0, net), Unroller::kUnset);
    EXPECT_EQ(un.peek(1, net), Unroller::kUnset);
    // Frames beyond the materialized range stay unset.
    EXPECT_EQ(un.peek(3, net), Unroller::kUnset);
    EXPECT_EQ(un.numFrames(), 3);
    EXPECT_GT(un.conesMaterialized(), 0u);
}

// ---------------------------------------------------------------------------
// Assumption-released clause groups
// ---------------------------------------------------------------------------

TEST(SatClauseGroups, ReleasedClausesStopBinding) {
    SatSolver solver;
    SatLit a = formal::mkSatLit(solver.newVar());
    SatLit b = formal::mkSatLit(solver.newVar());

    SatLit group = solver.openClauseGroup();
    solver.addClauseIn(group, {a});            // a, while the group is active.
    solver.addClauseIn(group, {formal::satNeg(b)}); // !b, while active.

    // Active: a must be true, b false.
    EXPECT_EQ(solver.solve({group, formal::satNeg(a)}), SatResult::Unsat);
    EXPECT_EQ(solver.solve({group, b}), SatResult::Unsat);
    EXPECT_EQ(solver.solve({group}), SatResult::Sat);

    solver.closeClauseGroup(group);
    // Released: the per-group facts no longer constrain anything.
    EXPECT_EQ(solver.solve({formal::satNeg(a)}), SatResult::Sat);
    EXPECT_EQ(solver.solve({b}), SatResult::Sat);
    solver.simplify(); // Dead group clauses purge without breaking the DB.
    EXPECT_EQ(solver.solve({b, formal::satNeg(a)}), SatResult::Sat);
}

// ---------------------------------------------------------------------------
// Batched BMC == per-job BMC (the reuse isolation contract)
// ---------------------------------------------------------------------------

// Saturating counter: q counts up to 15 under `en` and sticks. Three
// obligations with overlapping cones over q:
//  - as__never9  never fails within depth 8 -> each frame's Unsat adds a
//    strengthening unit about q's cone (the "first job Unsat-strengthened"
//    adversarial setup);
//  - as__never5  fails at depth 5 even though its bad literal overlaps the
//    strengthened cone — a leaked (rather than implied) strengthening fact
//    would mask it;
//  - co__three   cover hit at depth 3 on the same cone.
constexpr const char* kCounterRtl = R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [3:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else if (en && q != 4'd15) q <= q + 4'd1;
  end
  as__never9: assert property (q != 4'd9);
  as__never5: assert property (q != 4'd5);
  co__three: cover property (q == 4'd3);
endmodule)";

TEST(SolverReuse, BatchedBmcMatchesFreshSolvers) {
    auto d = elab(kCounterRtl, "m");
    formal::BitBlast bb = formal::bitblast(*d, /*rewrite=*/true);
    EngineOptions opts;
    opts.bmcDepth = 8; // never9 stays Unknown within the bound.
    std::vector<formal::AigLit> noConstraints;
    ProofContext ctx{*d, bb, bb.aig, noConstraints, opts, formal::kAigFalse, nullptr};

    auto makeJobs = [&] {
        std::vector<ObligationJob> jobs(d->obligations().size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            const auto& ob = d->obligations()[i];
            jobs[i].ob = &ob;
            jobs[i].bad = bb.lit(ob.net);
            jobs[i].pdrBad = jobs[i].bad;
            jobs[i].coverMode = ob.kind == ir::Obligation::Kind::Cover;
        }
        return jobs;
    };

    // Reference: the legacy per-job strategy on throwaway solvers.
    auto bmc = formal::makeBmcStrategy();
    std::vector<ObligationJob> fresh = makeJobs();
    for (auto& job : fresh) bmc->run(ctx, job);

    // One batch on one shared solver, in the same order.
    std::vector<ObligationJob> batched = makeJobs();
    std::vector<ObligationJob*> batch;
    for (auto& job : batched) batch.push_back(&job);
    formal::runBmcBatch(ctx, batch);

    ASSERT_EQ(fresh.size(), batched.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].result.status, batched[i].result.status) << i;
        EXPECT_EQ(fresh[i].result.depth, batched[i].result.depth) << i;
        EXPECT_EQ(fresh[i].result.trace.length(), batched[i].result.trace.length()) << i;
    }
    // Shape sanity (so the adversarial scenario actually ran as designed).
    EXPECT_EQ(fresh[0].result.status, Status::Unknown); // never9, bound 8.
    EXPECT_EQ(fresh[1].result.status, Status::Failed);  // never5 at 5.
    EXPECT_EQ(fresh[1].result.depth, 5);
    EXPECT_EQ(fresh[2].result.status, Status::Covered); // three at 3.
    EXPECT_EQ(fresh[2].result.depth, 3);
    // The batched witness is a genuine model too: right trace shape.
    EXPECT_EQ(batched[1].result.trace.length(), 6);
}

TEST(SolverReuse, PooledInductionMatchesFreshSolvers) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [2:0] oh;
  reg [2:0] oh2;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      oh <= 3'b001;
      oh2 <= 3'b010;
    end else begin
      oh <= {oh[1:0], oh[2]};
      oh2 <= {oh2[1:0], oh2[2]};
    end
  end
  as__onehot: assert property ($onehot(oh));
  as__onehot2: assert property ($onehot(oh2));
endmodule)",
                  "m");
    formal::BitBlast bb = formal::bitblast(*d, /*rewrite=*/true);
    EngineOptions opts;
    std::vector<formal::AigLit> noConstraints;
    auto makeJob = [&](size_t i) {
        ObligationJob job;
        job.ob = &d->obligations()[i];
        job.bad = bb.lit(job.ob->net);
        job.pdrBad = job.bad;
        return job;
    };
    auto induction = formal::makeInductionStrategy();

    ProofContext freshCtx{*d, bb, bb.aig, noConstraints, opts, formal::kAigFalse, nullptr};
    SolverPool pool;
    ProofContext pooledCtx = freshCtx;
    pooledCtx.pool = &pool;

    for (size_t i = 0; i < d->obligations().size(); ++i) {
        ObligationJob fresh = makeJob(i);
        induction->run(freshCtx, fresh);
        ObligationJob pooled = makeJob(i);
        induction->run(pooledCtx, pooled);
        EXPECT_EQ(fresh.result.status, pooled.result.status) << i;
        EXPECT_EQ(fresh.result.depth, pooled.result.depth) << i;
        EXPECT_EQ(fresh.result.status, Status::Proven) << i;
    }
}

// ---------------------------------------------------------------------------
// Whole-scheduler determinism across reuse modes and worker counts
// ---------------------------------------------------------------------------

// Mix of passing/failing safety, liveness, and covers so every phase runs.
constexpr const char* kMixedRtl = R"(
module m (input wire clk_i, input wire rst_ni, input wire req, input wire resp,
          input wire [3:0] in);
  reg [3:0] q;
  reg [2:0] oh;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      q <= 4'd0;
      oh <= 3'b001;
    end else begin
      if (q != 4'd15) q <= q + 4'd1;
      oh <= {oh[1:0], oh[2]};
    end
  end
  am__bounded: assume property (in < 4'd12);
  am__fair: assume property (req |-> s_eventually (resp));
  as__onehot: assert property ($onehot(oh));
  as__never9: assert property (q != 4'd9);
  as__live: assert property (req |-> s_eventually (resp));
  co__six: cover property (q == 4'd6);
  co__in_big: cover property (in == 4'd13);
endmodule)";

TEST(SolverReuse, CanonicalIdenticalAcrossReuseAndJobs) {
    auto run = [](bool reuse, int jobs) {
        auto d = elab(kMixedRtl, "m");
        EngineOptions opts;
        opts.solverReuse = reuse;
        opts.jobs = jobs;
        ObligationScheduler scheduler(*d, opts);
        return fingerprint(scheduler.run());
    };
    std::string reference = run(false, 1);
    EXPECT_NE(reference.find("as__never9"), std::string::npos);
    for (bool reuse : {false, true}) {
        for (int jobs : {1, 4}) {
            EXPECT_EQ(run(reuse, jobs), reference) << "reuse=" << reuse << " jobs=" << jobs;
        }
    }
}

TEST(SolverReuse, ReuseReportsEncoderSavings) {
    auto stats = [](bool reuse) {
        auto d = elab(kMixedRtl, "m");
        EngineOptions opts;
        opts.solverReuse = reuse;
        ObligationScheduler scheduler(*d, opts);
        (void)scheduler.run();
        return scheduler.stats();
    };
    formal::EngineStats legacy = stats(false);
    formal::EngineStats pooled = stats(true);
    EXPECT_EQ(legacy.solverReuses, 0u);
    EXPECT_GT(pooled.solverReuses, 0u);
    EXPECT_LT(pooled.encoderVars, legacy.encoderVars);
    EXPECT_LT(pooled.encoderClauses, legacy.encoderClauses);
    EXPECT_GT(legacy.encoderVars, 0u);
}

// ---------------------------------------------------------------------------
// AIG structural rewrite
// ---------------------------------------------------------------------------

TEST(AigRewrite, MergesEquivalentLatchesAndRewritesAnds) {
    Aig aig;
    AigLit a = aig.mkInput("a");
    AigLit b = aig.mkInput("b");
    AigLit l1 = aig.mkLatch(0, "l1");
    AigLit l2 = aig.mkLatch(0, "l2"); // Same init, same next: equal forever.
    AigLit l3 = aig.mkLatch(-1, "l3"); // Symbolic init: must NOT merge.
    aig.setLatchNext(l1, a);
    aig.setLatchNext(l2, a);
    aig.setLatchNext(l3, a);
    AigLit both = aig.mkAnd(l1, l2);     // == l1 after merging.
    AigLit ab = aig.mkAnd(a, b);
    AigLit absorbed = aig.mkAnd(a, ab);  // a & (a&b) == a&b.
    AigLit contained = aig.mkAnd(a, aigNot(ab)); // a & !(a&b) == a & !b.

    formal::AigRewriteResult rw = formal::rewriteAig(aig);
    EXPECT_EQ(rw.mergedLatches, 1u);
    EXPECT_EQ(rw.aig.latches().size(), 2u);
    EXPECT_EQ(rw(l1), rw(l2));
    EXPECT_NE(rw(l1), rw(l3));
    EXPECT_EQ(rw(both), rw(l1));
    EXPECT_EQ(rw(absorbed), rw(ab));
    // a & !(a&b) rewrote to a & !b: its fanins are the mapped a and !b.
    uint32_t cv = formal::aigVar(rw(contained));
    EXPECT_EQ(rw.aig.kind(cv), Aig::VarKind::And);
    AigLit f0 = rw.aig.fanin0(cv);
    AigLit f1 = rw.aig.fanin1(cv);
    EXPECT_TRUE((f0 == rw(a) && f1 == formal::aigNot(rw(b))) ||
                (f1 == rw(a) && f0 == formal::aigNot(rw(b))));
}

std::string dumpAig(const Aig& aig) {
    std::ostringstream out;
    for (uint32_t v = 0; v < aig.numVars(); ++v) {
        out << v << ':' << static_cast<int>(aig.kind(v));
        switch (aig.kind(v)) {
        case Aig::VarKind::And:
            out << '(' << aig.fanin0(v) << ',' << aig.fanin1(v) << ')';
            break;
        case Aig::VarKind::Latch:
            out << '[' << aig.latchInit(v) << "->" << aig.latchNext(v) << ']';
            break;
        default:
            break;
        }
        out << aig.varName(v) << ';';
    }
    return out.str();
}

TEST(AigRewrite, DeterministicNodeNumbering) {
    auto d = elab(kMixedRtl, "m");
    formal::BitBlast bb1 = formal::bitblast(*d, /*rewrite=*/true);
    formal::BitBlast bb2 = formal::bitblast(*d, /*rewrite=*/true);
    EXPECT_EQ(dumpAig(bb1.aig), dumpAig(bb2.aig));
    // And the remaps agree too.
    for (const auto& [node, lits] : bb1.bits) {
        auto it = bb2.bits.find(node);
        ASSERT_NE(it, bb2.bits.end());
        EXPECT_EQ(lits, it->second);
    }
}

TEST(AigRewrite, FingerprintsStableAcrossReruns) {
    auto d = elab(kMixedRtl, "m");
    formal::BitBlast bb1 = formal::bitblast(*d, /*rewrite=*/true);
    formal::BitBlast bb2 = formal::bitblast(*d, /*rewrite=*/true);
    for (const auto& ob : d->obligations()) {
        if (ob.kind != ir::Obligation::Kind::SafetyBad || ob.xprop) continue;
        cache::Fingerprint f1 = cache::fingerprintCone(bb1.aig, {bb1.lit(ob.net)}, 7);
        cache::Fingerprint f2 = cache::fingerprintCone(bb2.aig, {bb2.lit(ob.net)}, 7);
        EXPECT_EQ(f1, f2) << ob.name;
    }
}

// The rewrite preserves every verdict; proof *depths* are engine
// artifacts that legitimately move (PDR converges at a different frame on
// the smaller graph) and are excluded from canonical() for exactly that
// reason. test_pdr.cpp gates full canonical identity on all registered
// designs; this pins the name/kind/status core on the mixed design.
TEST(AigRewrite, VerdictsUnchangedByRewrite) {
    auto run = [](bool rewrite) {
        auto d = elab(kMixedRtl, "m");
        EngineOptions opts;
        opts.aigRewrite = rewrite;
        ObligationScheduler scheduler(*d, opts);
        std::ostringstream out;
        for (const auto& r : scheduler.run())
            out << r.name << '|' << static_cast<int>(r.kind) << '|'
                << formal::statusName(r.status) << '\n';
        return out.str();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(AigRewrite, ShrinksTheMixedDesign) {
    auto d = elab(kMixedRtl, "m");
    formal::BitBlast raw = formal::bitblast(*d);
    formal::BitBlast rewritten = formal::bitblast(*d, /*rewrite=*/true);
    EXPECT_LE(rewritten.aig.numVars(), raw.aig.numVars());
    EXPECT_LE(rewritten.aig.numAnds(), raw.aig.numAnds());
}

} // namespace
