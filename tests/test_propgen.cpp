// Property-generation tests: the Table II attribute -> property mapping,
// assert/assume orientation rules, ASSERT_INPUTS flipping, and the
// generated artifacts (property file, bind file, tool scripts).
#include <gtest/gtest.h>

#include "core/autosva.hpp"
#include "sva/catalog.hpp"
#include "verilog/parser.hpp"

namespace {

using namespace autosva;
using core::FormalTestbench;

const char* kFullRtl = R"(
module dut #(
  parameter ID_W = 2
) (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  load: req -in> res
  [ID_W-1:0] req_transid_unique = req_id_i
  [ID_W-1:0] req_data = req_addr_i
  [ID_W-1:0] res_data = res_addr_o
  req_active = busy_o
  [ID_W-1:0] req_stable = req_id_i
  out_txn: oreq -out> ores
  */
  input  wire            req_val,
  output wire            req_ack,
  input  wire [ID_W-1:0] req_id_i,
  input  wire [ID_W-1:0] req_addr_i,
  output wire            res_val,
  output wire [ID_W-1:0] res_transid,
  output wire [ID_W-1:0] res_addr_o,
  output wire            busy_o,
  output wire            oreq_val,
  input  wire            oreq_ack,
  input  wire            ores_val
);
  assign req_ack = 1'b1;
  assign res_val = 1'b0;
  assign res_transid = '0;
  assign res_addr_o = '0;
  assign busy_o = 1'b0;
  assign oreq_val = 1'b0;
endmodule
)";

FormalTestbench gen(const core::AutoSvaOptions& opts = {}) {
    util::DiagEngine diags;
    return core::generateFT(kFullRtl, opts, diags);
}

bool hasProp(const FormalTestbench& ft, const std::string& label) {
    for (const auto& p : ft.properties)
        if (p.label == label) return true;
    return false;
}

const core::GeneratedProperty& prop(const FormalTestbench& ft, const std::string& label) {
    for (const auto& p : ft.properties)
        if (p.label == label) return p;
    throw std::runtime_error("missing " + label);
}

TEST(PropGen, TableIIMappingIncoming) {
    FormalTestbench ft = gen();
    // val* -> liveness + no-orphan-response, asserted (incoming).
    EXPECT_TRUE(hasProp(ft, "as__load_eventual_response"));
    EXPECT_TRUE(prop(ft, "as__load_eventual_response").isLiveness);
    EXPECT_TRUE(hasProp(ft, "as__load_had_a_request"));
    // ack* -> handshake liveness, asserted for the DUT-controlled req side.
    EXPECT_TRUE(hasProp(ft, "as__load_req_hsk_or_drop"));
    // stable -> assumed on the environment-driven request payload.
    EXPECT_TRUE(hasProp(ft, "am__load_req_stability"));
    // active -> always asserted.
    EXPECT_TRUE(hasProp(ft, "as__load_req_active"));
    // transid (via transid_unique alias) -> symbolic tracking assumption.
    EXPECT_TRUE(hasProp(ft, "am__load_symb_transid_stable"));
    // transid_unique -> assumed for incoming transactions.
    EXPECT_TRUE(hasProp(ft, "am__load_transid_unique"));
    // data -> integrity asserted (incoming).
    EXPECT_TRUE(hasProp(ft, "as__load_data_integrity"));
    // covers.
    EXPECT_TRUE(hasProp(ft, "co__load_request_happens"));
    EXPECT_TRUE(hasProp(ft, "co__load_response_happens"));
    // X-prop assertions.
    EXPECT_TRUE(prop(ft, "xp__load_req_xprop").isXprop);
}

TEST(PropGen, OrientationFlipsForOutgoing) {
    FormalTestbench ft = gen();
    // Outgoing transaction: liveness of the response is an assumption
    // (fairness of the environment).
    EXPECT_TRUE(hasProp(ft, "am__out_txn_eventual_response"));
    EXPECT_TRUE(hasProp(ft, "am__out_txn_had_a_request"));
    // The environment acks the DUT's outgoing request: assumed.
    EXPECT_TRUE(hasProp(ft, "am__out_txn_oreq_hsk_or_drop"));
    // max-outstanding bound: requester is the DUT now, so asserted.
    EXPECT_TRUE(hasProp(ft, "as__out_txn_max_outstanding"));
}

TEST(PropGen, AssertInputsFlipsAssumptions) {
    core::AutoSvaOptions opts;
    opts.assertInputs = true;
    FormalTestbench ft = gen(opts);
    for (const auto& p : ft.properties) {
        if (p.isCover) continue;
        EXPECT_TRUE(p.isAssert) << p.label;
    }
    EXPECT_TRUE(hasProp(ft, "as__load_transid_unique"));
    EXPECT_TRUE(hasProp(ft, "as__load_req_stability"));
}

TEST(PropGen, XpropAndCoversCanBeDisabled) {
    core::AutoSvaOptions opts;
    opts.includeXprop = false;
    opts.includeCovers = false;
    FormalTestbench ft = gen(opts);
    EXPECT_EQ(ft.numCovers(), 0);
    for (const auto& p : ft.properties) EXPECT_FALSE(p.isXprop) << p.label;
}

TEST(PropGen, PropertyFileParses) {
    // The generated property module must parse with our own frontend.
    FormalTestbench ft = gen();
    EXPECT_NO_THROW({
        auto file = verilog::Parser::parseSource(ft.propertyFile, "prop.sv");
        ASSERT_EQ(file.modules.size(), 1u);
        EXPECT_EQ(file.modules[0]->name, "dut_prop");
    });
    EXPECT_NO_THROW(verilog::Parser::parseSource(ft.bindFile, "bind.svh"));
}

TEST(PropGen, PropertyFileStructure) {
    FormalTestbench ft = gen();
    // Fig. 2 artifacts: sampled counter, symbolic variable, stability
    // assumption, eventual response, cover.
    EXPECT_NE(ft.propertyFile.find("load_sampled"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("symb_load_transid"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("$stable(symb_load_transid)"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("s_eventually (load_response)"), std::string::npos);
    EXPECT_NE(ft.propertyFile.find("default disable iff (!rst_ni)"), std::string::npos);
    // The DUT parameter is mirrored so width expressions still elaborate.
    EXPECT_NE(ft.propertyFile.find("parameter ID_W"), std::string::npos);
}

TEST(PropGen, BindFileTargetsDut) {
    FormalTestbench ft = gen();
    EXPECT_EQ(ft.bindFile.find("bind dut dut_prop dut_prop_i (.*);"), ft.bindFile.find("bind"));
}

TEST(PropGen, ToolScriptsReferenceArtifacts) {
    FormalTestbench ft = gen();
    EXPECT_NE(ft.jasperTcl.find("analyze -sv12"), std::string::npos);
    EXPECT_NE(ft.jasperTcl.find("elaborate -top dut"), std::string::npos);
    EXPECT_NE(ft.jasperTcl.find("reset !rst_ni"), std::string::npos);
    EXPECT_NE(ft.sbyFile.find("[engines]"), std::string::npos);
    EXPECT_NE(ft.sbyFile.find("prep -top dut"), std::string::npos);
}

TEST(PropGen, CountsAreConsistent) {
    FormalTestbench ft = gen();
    EXPECT_EQ(ft.numProperties(), static_cast<int>(ft.properties.size()));
    EXPECT_EQ(ft.numProperties(),
              ft.numAssertions() + ft.numAssumptions() + ft.numCovers() + [&] {
                  int x = 0;
                  for (const auto& p : ft.properties)
                      if (p.isXprop) ++x;
                  return x;
              }());
    EXPECT_GT(ft.numLiveness(), 0);
}

TEST(PropGen, NoAckMeansNoHskProperty) {
    const char* rtl = R"(
module nk (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  t: a -in> b
  */
  input wire a_val, output wire b_val
);
  assign b_val = 1'b0;
endmodule)";
    util::DiagEngine diags;
    FormalTestbench ft = core::generateFT(rtl, {}, diags);
    for (const auto& p : ft.properties)
        EXPECT_EQ(p.label.find("hsk_or_drop"), std::string::npos) << p.label;
}

TEST(PropGen, StableWithoutAckChecksAgainstValOnly) {
    const char* rtl = R"(
module sw (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  t: a -in> b
  [3:0] a_stable = a_payload
  */
  input wire a_val, input wire [3:0] a_payload, output wire b_val
);
  assign b_val = 1'b0;
endmodule)";
    util::DiagEngine diags;
    FormalTestbench ft = core::generateFT(rtl, {}, diags);
    EXPECT_NE(ft.propertyFile.find("a_val_m |=> $stable(a_stable_m)"), std::string::npos);
    EXPECT_GE(diags.count(util::Severity::Warning), 1u);
}

// Parameterized sweep: every Table II rule resolves to the right directive
// for both transaction directions.
class OrientationSweep : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(OrientationSweep, MatchesCatalogRule) {
    const auto& rules = sva::propertyRules();
    int ruleIdx = std::get<0>(GetParam());
    bool incoming = std::get<1>(GetParam());
    const auto& rule = rules[static_cast<size_t>(ruleIdx)];
    bool asserted = sva::isAsserted(rule.orientation, incoming);
    switch (rule.orientation) {
    case sva::Orientation::Starred:
        EXPECT_EQ(asserted, incoming);
        break;
    case sva::Orientation::Opposite:
        EXPECT_EQ(asserted, !incoming);
        break;
    case sva::Orientation::AlwaysAssert:
        EXPECT_TRUE(asserted);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRulesBothDirections, OrientationSweep,
    ::testing::Combine(::testing::Range(0, static_cast<int>(sva::propertyRules().size())),
                       ::testing::Bool()));

} // namespace
