// util library tests: strings, diagnostics, tables.
#include <gtest/gtest.h>

#include "util/diagnostics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace autosva::util;

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t\n x \r\n"), "x");
    EXPECT_EQ(trimLeft("  x "), "x ");
    EXPECT_EQ(trimRight(" x  "), " x");
}

TEST(Strings, Split) {
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitLines) {
    auto lines = splitLines("a\nb\r\nc");
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[1], "b");
    EXPECT_EQ(lines[2], "c");
    EXPECT_TRUE(splitLines("").empty() || splitLines("")[0].empty());
}

TEST(Strings, JoinAndReplace) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(replaceAll("aXbXc", "X", "--"), "a--b--c");
    EXPECT_EQ(replaceAll("aaa", "a", "aa"), "aaaaaa");
}

TEST(Strings, IsIdentifier) {
    EXPECT_TRUE(isIdentifier("foo_bar1"));
    EXPECT_TRUE(isIdentifier("_x"));
    EXPECT_FALSE(isIdentifier("1abc"));
    EXPECT_FALSE(isIdentifier("a-b"));
    EXPECT_FALSE(isIdentifier(""));
}

TEST(Strings, CaseConversion) {
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(toUpper("AbC"), "ABC");
}

TEST(Strings, Indent) {
    EXPECT_EQ(indent("a\nb", 2), "  a\n  b\n");
    EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b\n");
}

TEST(Diagnostics, CollectAndQuery) {
    DiagEngine diags;
    EXPECT_FALSE(diags.hasErrors());
    diags.warning({"f.sv", 3, 1}, "w1");
    diags.error({"f.sv", 5, 2}, "e1");
    diags.note({}, "n1");
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_EQ(diags.count(Severity::Warning), 1u);
    EXPECT_EQ(diags.count(Severity::Error), 1u);
    EXPECT_EQ(diags.count(Severity::Note), 1u);
    EXPECT_NE(diags.str().find("f.sv:5:2: error: e1"), std::string::npos);
    diags.clear();
    EXPECT_FALSE(diags.hasErrors());
}

TEST(Diagnostics, FrontendErrorCarriesLocation) {
    FrontendError err({"x.sv", 10, 4}, "boom");
    EXPECT_EQ(err.loc().line, 10u);
    EXPECT_NE(std::string(err.what()).find("x.sv:10:4"), std::string::npos);
}

TEST(SourceLoc, Formatting) {
    EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
    EXPECT_EQ((SourceLoc{"a.sv", 1, 2}).str(), "a.sv:1:2");
    EXPECT_FALSE(SourceLoc{}.valid());
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"name", "v"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
    EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, SeparatorAndRaggedRows) {
    TextTable t({"a", "b"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2", "3"});
    std::string s = t.str();
    // 4 separator lines: top, after header, requested, bottom.
    size_t count = 0;
    for (const auto& line : splitLines(s))
        if (!line.empty() && line[0] == '+') ++count;
    EXPECT_EQ(count, 4u);
}

} // namespace
