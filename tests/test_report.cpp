// VerificationReport aggregation tests.
#include <gtest/gtest.h>

#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::PropertyResult;
using formal::Status;
using Kind = ir::Obligation::Kind;

PropertyResult make(const std::string& name, Kind kind, Status status, int depth = 1) {
    PropertyResult r;
    r.name = name;
    r.kind = kind;
    r.status = status;
    r.depth = depth;
    return r;
}

TEST(Report, AllProvenSummary) {
    sva::VerificationReport report;
    report.dutName = "dut";
    report.results.push_back(make("as__a", Kind::SafetyBad, Status::Proven));
    report.results.push_back(make("as__b", Kind::Justice, Status::Proven));
    report.results.push_back(make("co__c", Kind::Cover, Status::Covered));
    report.results.push_back(make("am__d", Kind::Constraint, Status::Skipped));
    EXPECT_TRUE(report.allProven());
    EXPECT_FALSE(report.anyFailed());
    EXPECT_DOUBLE_EQ(report.proofRate(), 1.0);
    EXPECT_EQ(report.outcomeSummary(), "100% liveness/safety properties proof");
}

TEST(Report, FailureSummaryNamesFirstFailure) {
    sva::VerificationReport report;
    report.results.push_back(make("as__ok", Kind::SafetyBad, Status::Proven));
    report.results.push_back(make("as__bad", Kind::Justice, Status::Failed, 5));
    EXPECT_TRUE(report.anyFailed());
    ASSERT_NE(report.firstFailure(), nullptr);
    EXPECT_EQ(report.firstFailure()->name, "as__bad");
    EXPECT_NE(report.outcomeSummary().find("as__bad"), std::string::npos);
    EXPECT_NE(report.outcomeSummary().find("5 cycles"), std::string::npos);
}

TEST(Report, ProofRateCountsOnlyCheckedAsserts) {
    sva::VerificationReport report;
    report.results.push_back(make("as__p", Kind::SafetyBad, Status::Proven));
    report.results.push_back(make("as__u", Kind::Justice, Status::Unknown));
    report.results.push_back(make("co__c", Kind::Cover, Status::Covered));   // Not counted.
    report.results.push_back(make("xp__x", Kind::SafetyBad, Status::Skipped)); // Not counted.
    EXPECT_DOUBLE_EQ(report.proofRate(), 0.5);
    EXPECT_FALSE(report.allProven());
    EXPECT_EQ(report.totalChecked(), 3u);
}

TEST(Report, FindMatchesSuffixAfterHierarchy) {
    sva::VerificationReport report;
    report.results.push_back(make("dut_prop_i.as__x", Kind::SafetyBad, Status::Proven));
    EXPECT_NE(report.find("as__x"), nullptr);
    EXPECT_NE(report.find("dut_prop_i.as__x"), nullptr);
    EXPECT_EQ(report.find("s__x"), nullptr); // No partial-token match.
    EXPECT_EQ(report.find("as__y"), nullptr);
}

TEST(Report, FailureProvenanceCitesOriginAnnotation) {
    sva::VerificationReport report;
    report.dutName = "fifo";
    PropertyResult ok = make("as__ok", Kind::SafetyBad, Status::Proven);
    ok.loc = {"fifo.sv", 3, 1};
    PropertyResult bad = make("as__bad", Kind::Justice, Status::Failed, 5);
    bad.loc = {"fifo.sv", 12, 1};
    report.results.push_back(std::move(ok));
    report.results.push_back(std::move(bad));
    std::string s = report.str();
    // The failing property points back at the designer's annotation line.
    EXPECT_NE(s.find("Failed as__bad <- annotation at fifo.sv:12"), std::string::npos) << s;
    // Passing properties stay quiet.
    EXPECT_EQ(s.find("fifo.sv:3"), std::string::npos) << s;
    // Provenance never enters the canonical verdict serialization (cache
    // artifacts and cross-run identity checks predate the field).
    EXPECT_EQ(report.canonical().find("fifo.sv"), std::string::npos);
}

TEST(Report, FailureWithoutProvenanceRendersNoCitation) {
    sva::VerificationReport report;
    report.results.push_back(make("as__bad", Kind::SafetyBad, Status::Failed));
    EXPECT_EQ(report.str().find("annotation at"), std::string::npos);
}

TEST(Report, TableRenderingContainsEveryProperty) {
    sva::VerificationReport report;
    report.dutName = "m";
    report.results.push_back(make("as__one", Kind::SafetyBad, Status::Proven));
    report.results.push_back(make("co__two", Kind::Cover, Status::Unreachable));
    std::string s = report.str();
    EXPECT_NE(s.find("as__one"), std::string::npos);
    EXPECT_NE(s.find("co__two"), std::string::npos);
    EXPECT_NE(s.find("unreachable"), std::string::npos);
    EXPECT_NE(s.find("DUT: m"), std::string::npos);
}

} // namespace
