// Design-registry tests: every registered module parses, scans, and
// generates an FT; dependency closures are consistent; bug parameters
// exist where advertised.
#include <gtest/gtest.h>

#include "core/autosva.hpp"
#include "core/interface_scan.hpp"
#include "core/language.hpp"
#include "designs/designs.hpp"
#include "verilog/parser.hpp"

namespace {

using namespace autosva;

TEST(Registry, HasAllPaperRows) {
    std::vector<std::string> ids;
    for (const auto& d : designs::allDesigns()) ids.push_back(d.id);
    for (const char* want : {"A1", "A2", "A3", "A4", "A5", "O1", "O2", "ME"})
        EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end()) << want;
}

TEST(Registry, LookupThrowsOnUnknown) {
    EXPECT_THROW(designs::design("nope"), std::out_of_range);
    EXPECT_NO_THROW(designs::design("ariane_ptw"));
}

TEST(Registry, DependencyClosureContainsDutFirst) {
    const auto& mmu = designs::design("ariane_mmu");
    auto sources = designs::rtlSources(mmu);
    ASSERT_GE(sources.size(), 2u);
    EXPECT_EQ(sources[0], mmu.rtl);
    // The PTW source must be included exactly once.
    int ptwCount = 0;
    for (const auto& s : sources)
        if (s.find("module ariane_ptw") != std::string::npos) ++ptwCount;
    EXPECT_EQ(ptwCount, 1);
}

class EveryDesign : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryDesign, ParsesAndScans) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(info.rtl, info.name + ".sv");
    EXPECT_FALSE(file.modules.empty());
    core::ScanOptions scanOpts;
    scanOpts.moduleName = info.name;
    auto dut = core::scanInterface(file, scanOpts, diags);
    EXPECT_EQ(dut.moduleName, info.name);
    EXPECT_EQ(dut.clockName, "clk_i");
    EXPECT_EQ(dut.resetName, "rst_ni");
}

TEST_P(EveryDesign, AnnotationsYieldTransactions) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    auto set = core::parseAnnotations(info.rtl, info.name + ".sv", diags);
    EXPECT_FALSE(set.transactions.empty());
    EXPECT_GT(set.annotationLines, 0);
}

TEST_P(EveryDesign, GeneratesFormalTestbench) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    EXPECT_GT(ft.numProperties(), 4);
    EXPECT_GT(ft.numAssertions(), 0);
    EXPECT_GT(ft.numLiveness(), 0);
    EXPECT_LT(ft.generationSeconds, 1.0); // The §III-C claim, per module.
    // Property module parses with our own frontend.
    EXPECT_NO_THROW(verilog::Parser::parseSource(ft.propertyFile, "prop.sv"));
}

TEST_P(EveryDesign, BugParameterPresentWhenAdvertised) {
    const auto& info = designs::design(GetParam());
    bool hasParam = info.rtl.find("parameter BUG") != std::string::npos;
    EXPECT_EQ(hasParam, info.hasBugParam) << info.name;
}

TEST_P(EveryDesign, ElaboratesWithFtBound) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags);
    EXPECT_FALSE(design->obligations().empty());
    EXPECT_GT(design->stateBits(), 0);
    EXPECT_NO_THROW(design->topoOrder()); // No combinational cycles.
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, EveryDesign,
                         ::testing::Values("ariane_ptw", "ariane_tlb", "ariane_mmu",
                                           "ariane_lsu", "ariane_icache", "noc_buffer",
                                           "l15_noc_wrapper", "mem_engine"));

} // namespace
