// Golden tests for the typed-AST property pipeline: the printer-projected
// property module and bind file must stay byte-identical to the recorded
// output of the pre-refactor string emitter for every registered design
// (tests/golden/, captured before propgen was rewritten to construct
// verilog:: AST). This is the refactor's safety net: any drift in the AST
// construction or the printer shows up as a byte diff here.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "verilog/printer.hpp"

#ifndef AUTOSVA_REPO_DIR
#error "AUTOSVA_REPO_DIR must point at the repository root (set by CMake)"
#endif

namespace {

using namespace autosva;

std::string readGolden(const std::string& fileName) {
    std::string path = std::string(AUTOSVA_REPO_DIR) + "/tests/golden/" + fileName;
    std::ifstream in(path);
    if (!in) ADD_FAILURE() << "missing golden file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class GoldenArtifacts : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenArtifacts, PropertyModuleMatchesPreRefactorEmitter) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    EXPECT_EQ(ft.propertyFile, readGolden(info.name + "_prop.sv.golden")) << info.name;
}

TEST_P(GoldenArtifacts, BindFileMatchesPreRefactorEmitter) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    EXPECT_EQ(ft.bindFile, readGolden(info.name + "_bind.svh.golden")) << info.name;
}

TEST_P(GoldenArtifacts, PrintedTextIsAProjectionOfTheAst) {
    // The string artifacts are not produced by a second code path: printing
    // the carried AST again must reproduce them exactly.
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    ASSERT_NE(ft.propertyAst, nullptr);
    ASSERT_EQ(ft.propertyAst->modules.size(), 1u);
    ASSERT_EQ(ft.propertyAst->binds.size(), 1u);
    EXPECT_EQ(verilog::printModule(*ft.propertyAst->modules.front()), ft.propertyFile);
    EXPECT_EQ(verilog::printBind(ft.propertyAst->binds.front()), ft.bindFile);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, GoldenArtifacts,
                         ::testing::Values("ariane_ptw", "ariane_tlb", "ariane_mmu",
                                           "ariane_lsu", "ariane_icache", "noc_buffer",
                                           "l15_noc_wrapper", "mem_engine"));

TEST(GoldenArtifacts, EveryGeneratedPropertyCarriesProvenance) {
    const auto& info = designs::design("ariane_mmu");
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    opts.sourcePath = "ariane_mmu.sv";
    core::FormalTestbench ft = core::generateFT(info.rtl, opts, diags);
    for (const auto& p : ft.properties) {
        EXPECT_TRUE(p.sourceLoc.valid()) << p.label;
        EXPECT_EQ(p.sourceLoc.file, "ariane_mmu.sv") << p.label;
    }
}

} // namespace
