// Parser unit tests: module structure, expressions, statements, SVA layer.
#include <gtest/gtest.h>

#include "util/diagnostics.hpp"
#include "verilog/parser.hpp"

namespace {

using namespace autosva::verilog;
using autosva::util::FrontendError;

SourceFile parse(std::string_view text) { return Parser::parseSource(text, "test.sv"); }

TEST(Parser, EmptyModule) {
    auto file = parse("module m; endmodule");
    ASSERT_EQ(file.modules.size(), 1u);
    EXPECT_EQ(file.modules[0]->name, "m");
    EXPECT_TRUE(file.modules[0]->ports.empty());
}

TEST(Parser, HeaderParameters) {
    auto file = parse("module m #(parameter W = 8, parameter D = W * 2) (); endmodule");
    const auto& mod = *file.modules[0];
    ASSERT_EQ(mod.params.size(), 2u);
    EXPECT_EQ(mod.params[0].name, "W");
    EXPECT_EQ(mod.params[1].name, "D");
    EXPECT_EQ(exprToString(*mod.params[1].value), "(W * 2)");
}

TEST(Parser, AnsiPorts) {
    auto file = parse(R"(
module m (
  input  wire clk,
  input  wire [7:0] a, b,
  output reg  [3:0] q,
  output wire valid
);
endmodule)");
    const auto& mod = *file.modules[0];
    ASSERT_EQ(mod.ports.size(), 5u);
    EXPECT_EQ(mod.ports[0].name, "clk");
    EXPECT_EQ(mod.ports[0].dir, PortDir::Input);
    EXPECT_FALSE(mod.ports[0].packed.has_value());
    // Carried-over direction and range for `b`.
    EXPECT_EQ(mod.ports[2].name, "b");
    EXPECT_EQ(mod.ports[2].dir, PortDir::Input);
    ASSERT_TRUE(mod.ports[2].packed.has_value());
    EXPECT_EQ(mod.ports[3].dir, PortDir::Output);
    EXPECT_EQ(mod.ports[3].netKind, NetKind::Reg);
    // New direction resets the range.
    EXPECT_FALSE(mod.ports[4].packed.has_value());
}

TEST(Parser, ExpressionPrecedence) {
    auto e = Parser::parseExpression("a + b * c == d || e && f", "t");
    // || is lowest: (a+b*c == d) || (e && f)
    ASSERT_EQ(e->kind, Expr::Kind::Binary);
    EXPECT_EQ(e->binaryOp, BinaryOp::LogicOr);
    EXPECT_EQ(exprToString(*e), "(((a + (b * c)) == d) || (e && f))");
}

TEST(Parser, TernaryRightAssociative) {
    auto e = Parser::parseExpression("a ? b : c ? d : e", "t");
    EXPECT_EQ(exprToString(*e), "(a ? b : (c ? d : e))");
}

TEST(Parser, ConcatAndReplicate) {
    auto e = Parser::parseExpression("{a, 2'b01, {4{b}}}", "t");
    ASSERT_EQ(e->kind, Expr::Kind::Concat);
    ASSERT_EQ(e->operands.size(), 3u);
    EXPECT_EQ(e->operands[2]->kind, Expr::Kind::Replicate);
}

TEST(Parser, BitAndPartSelect) {
    auto e1 = Parser::parseExpression("mem[idx]", "t");
    EXPECT_EQ(e1->kind, Expr::Kind::Index);
    auto e2 = Parser::parseExpression("bus[7:4]", "t");
    EXPECT_EQ(e2->kind, Expr::Kind::Range);
    auto e3 = Parser::parseExpression("bus[i +: 4]", "t");
    EXPECT_EQ(e3->kind, Expr::Kind::Call);
    EXPECT_EQ(e3->name, "$partselect_up");
}

TEST(Parser, ReductionOperators) {
    auto e = Parser::parseExpression("&a | ^b", "t");
    EXPECT_EQ(exprToString(*e), "(&(a) | ^(b))");
}

TEST(Parser, SystemCalls) {
    auto e = Parser::parseExpression("$past(x, 2) == $stable(y)", "t");
    EXPECT_EQ(exprToString(*e), "($past(x, 2) == $stable(y))");
}

TEST(Parser, ContinuousAssign) {
    auto file = parse("module m (output wire o, input wire a); assign o = !a; endmodule");
    const auto& items = file.modules[0]->items;
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].kind, ModuleItem::Kind::ContAssign);
}

TEST(Parser, AlwaysFfWithAsyncReset) {
    auto file = parse(R"(
module m (input wire clk, input wire rst_n, input wire d, output reg q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
  end
endmodule)");
    const auto& items = file.modules[0]->items;
    ASSERT_EQ(items.size(), 1u);
    const auto& blk = *items[0].always;
    EXPECT_EQ(blk.kind, AlwaysBlock::Kind::FF);
    EXPECT_EQ(blk.clockSignal, "clk");
    ASSERT_TRUE(blk.asyncResetSignal.has_value());
    EXPECT_EQ(*blk.asyncResetSignal, "rst_n");
    EXPECT_TRUE(blk.asyncResetNegedge);
}

TEST(Parser, AlwaysCombStarForms) {
    auto file = parse(R"(
module m (input wire a, output reg y1, output reg y2);
  always @(*) y1 = a;
  always_comb y2 = !a;
endmodule)");
    EXPECT_EQ(file.modules[0]->items[0].always->kind, AlwaysBlock::Kind::Comb);
    EXPECT_EQ(file.modules[0]->items[1].always->kind, AlwaysBlock::Kind::Comb);
}

TEST(Parser, CaseStatement) {
    auto file = parse(R"(
module m (input wire [1:0] s, output reg [3:0] y);
  always_comb begin
    case (s)
      2'd0: y = 4'h1;
      2'd1, 2'd2: y = 4'h2;
      default: y = 4'h0;
    endcase
  end
endmodule)");
    const auto& body = *file.modules[0]->items[0].always->body;
    ASSERT_EQ(body.stmts.size(), 1u);
    const auto& cs = *body.stmts[0];
    EXPECT_EQ(cs.kind, Stmt::Kind::Case);
    ASSERT_EQ(cs.caseItems.size(), 3u);
    EXPECT_EQ(cs.caseItems[1].labels.size(), 2u);
    EXPECT_TRUE(cs.caseItems[2].labels.empty());
}

TEST(Parser, NonBlockingVsBlocking) {
    auto file = parse(R"(
module m (input wire clk, input wire d, output reg q1, output reg q2);
  always_ff @(posedge clk) begin
    q1 <= d;
  end
  always_comb begin
    q2 = d;
  end
endmodule)");
    const auto& ff = *file.modules[0]->items[0].always->body;
    EXPECT_TRUE(ff.stmts[0]->nonBlocking);
    const auto& comb = *file.modules[0]->items[1].always->body;
    EXPECT_FALSE(comb.stmts[0]->nonBlocking);
}

TEST(Parser, Instance) {
    auto file = parse(R"(
module m (input wire clk);
  sub #(.W(8), .D(2)) sub_i (.clk(clk), .q(), .*);
endmodule)");
    const auto& inst = *file.modules[0]->items[0].instance;
    EXPECT_EQ(inst.moduleName, "sub");
    EXPECT_EQ(inst.instName, "sub_i");
    ASSERT_EQ(inst.paramAssigns.size(), 2u);
    EXPECT_EQ(inst.paramAssigns[0].name, "W");
    EXPECT_TRUE(inst.wildcardPorts);
    ASSERT_EQ(inst.portAssigns.size(), 2u);
    EXPECT_EQ(inst.portAssigns[1].expr, nullptr); // .q() unconnected.
}

TEST(Parser, AssertionWithLabel) {
    auto file = parse(R"(
module m (input wire clk, input wire a, input wire b);
  as__check: assert property (a |-> s_eventually (b));
endmodule)");
    const auto& a = *file.modules[0]->items[0].assertion;
    EXPECT_EQ(a.kind, AssertionKind::Assert);
    EXPECT_EQ(a.label, "as__check");
    ASSERT_EQ(a.prop->kind, PropExpr::Kind::Implication);
    EXPECT_TRUE(a.prop->overlapping);
    EXPECT_EQ(a.prop->rhsProp->kind, PropExpr::Kind::Eventually);
}

TEST(Parser, AssumeAndCover) {
    auto file = parse(R"(
module m (input wire clk, input wire a);
  am__x: assume property (a |=> !a);
  co__y: cover property (a);
endmodule)");
    EXPECT_EQ(file.modules[0]->items[0].assertion->kind, AssertionKind::Assume);
    EXPECT_FALSE(file.modules[0]->items[0].assertion->prop->overlapping);
    EXPECT_EQ(file.modules[0]->items[1].assertion->kind, AssertionKind::Cover);
}

TEST(Parser, DefaultClockingAndDisable) {
    auto file = parse(R"(
module m (input wire clk_i, input wire rst_ni, input wire a);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);
  p1: assert property (a);
endmodule)");
    const auto& mod = *file.modules[0];
    ASSERT_TRUE(mod.defaultClock.has_value());
    EXPECT_EQ(*mod.defaultClock, "clk_i");
    ASSERT_NE(mod.defaultDisable, nullptr);
}

TEST(Parser, ParenthesizedImplicationProperty) {
    auto file = parse(R"(
module m (input wire clk, input wire a, input wire b);
  p: assert property ((a && b) |-> ##1 b);
endmodule)");
    const auto& prop = *file.modules[0]->items[0].assertion->prop;
    ASSERT_EQ(prop.kind, PropExpr::Kind::Implication);
    EXPECT_EQ(prop.rhsProp->kind, PropExpr::Kind::Next);
    EXPECT_EQ(prop.rhsProp->delay, 1);
}

TEST(Parser, BindDirective) {
    auto file = parse(R"(
module m (input wire clk); endmodule
bind m m_prop prop_i (.*);
)");
    ASSERT_EQ(file.binds.size(), 1u);
    EXPECT_EQ(file.binds[0].targetModule, "m");
    EXPECT_EQ(file.binds[0].boundModule, "m_prop");
    EXPECT_TRUE(file.binds[0].wildcardPorts);
}

TEST(Parser, MemoryDeclaration) {
    auto file = parse(R"(
module m (input wire clk);
  reg [7:0] mem [0:3];
endmodule)");
    const auto& net = *file.modules[0]->items[0].net;
    EXPECT_EQ(net.name, "mem");
    ASSERT_TRUE(net.unpacked.has_value());
}

TEST(Parser, ErrorOnGarbage) {
    EXPECT_THROW(parse("module m; garbage grammar here"), FrontendError);
    EXPECT_THROW(parse("module m (input wire a; endmodule"), FrontendError);
    EXPECT_THROW(Parser::parseExpression("a +", "t"), FrontendError);
    EXPECT_THROW(Parser::parseExpression("a b", "t"), FrontendError);
}

TEST(Parser, WireWithInitializer) {
    auto file = parse("module m (input wire a, input wire b); wire x = a && b; endmodule");
    const auto& net = *file.modules[0]->items[0].net;
    EXPECT_EQ(net.name, "x");
    ASSERT_NE(net.init, nullptr);
}

} // namespace
