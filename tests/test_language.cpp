// Annotation-language tests (paper Table I): region extraction, transaction
// declarations, attribute parsing, implicit definitions, error conditions.
#include <gtest/gtest.h>

#include "core/interface_scan.hpp"
#include "core/language.hpp"
#include "verilog/parser.hpp"

namespace {

using namespace autosva;
using core::AnnotationSet;
using util::FrontendError;

AnnotationSet parseAnn(const std::string& text) {
    util::DiagEngine diags;
    return core::parseAnnotations(text, "t.sv", diags);
}

TEST(Language, BlockRegionParsed) {
    auto set = parseAnn(R"(
module m();
/*AUTOSVA
txn: req -in> res
*/
endmodule)");
    ASSERT_EQ(set.transactions.size(), 1u);
    EXPECT_EQ(set.transactions[0].name, "txn");
    EXPECT_EQ(set.transactions[0].req.name, "req");
    EXPECT_EQ(set.transactions[0].resp.name, "res");
    EXPECT_TRUE(set.transactions[0].incoming);
    EXPECT_EQ(set.annotationLines, 1);
}

TEST(Language, LineCommentForm) {
    auto set = parseAnn("//AUTOSVA txn: a -out> b\n");
    ASSERT_EQ(set.transactions.size(), 1u);
    EXPECT_FALSE(set.transactions[0].incoming);
}

TEST(Language, OutgoingRelation) {
    auto set = parseAnn("/*AUTOSVA\nptw_dcache: ptw_req -out> dcache_res\n*/");
    EXPECT_FALSE(set.transactions[0].incoming);
    EXPECT_EQ(set.transactions[0].req.name, "ptw_req");
    EXPECT_EQ(set.transactions[0].resp.name, "dcache_res");
}

TEST(Language, ExplicitAttributesWithWidths) {
    auto set = parseAnn(R"(/*AUTOSVA
lsu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i && issue
lsu_req_rdy = lsu_ready_o
[TRANS_ID_BITS-1:0] lsu_req_transid = trans_id_i
[TRANS_ID_BITS-1:0] lsu_res_transid = trans_id_o
*/)");
    const auto& t = set.transactions[0];
    ASSERT_TRUE(t.req.has(core::Attr::Val));
    EXPECT_EQ(t.req.get(core::Attr::Val)->rhs, "lsu_valid_i && issue");
    // `rdy` is accepted as a synonym for ack (paper Fig. 3).
    ASSERT_TRUE(t.req.has(core::Attr::Ack));
    ASSERT_TRUE(t.req.has(core::Attr::Transid));
    EXPECT_EQ(t.req.get(core::Attr::Transid)->widthMsb, "TRANS_ID_BITS-1");
    ASSERT_TRUE(t.resp.has(core::Attr::Transid));
    EXPECT_EQ(set.annotationLines, 5);
}

TEST(Language, TransidUniqueLongestMatch) {
    auto set = parseAnn(R"(/*AUTOSVA
t: p -in> q
[3:0] p_transid_unique = id_i
*/)");
    EXPECT_TRUE(set.transactions[0].req.has(core::Attr::TransidUnique));
    EXPECT_FALSE(set.transactions[0].req.has(core::Attr::Transid));
}

TEST(Language, MultipleTransactions) {
    auto set = parseAnn(R"(/*AUTOSVA
a_txn: a_req -in> a_res
b_txn: b_req -out> b_res
a_req_val = x
b_req_val = y
*/)");
    ASSERT_EQ(set.transactions.size(), 2u);
    EXPECT_TRUE(set.transactions[0].req.has(core::Attr::Val));
    EXPECT_TRUE(set.transactions[1].req.has(core::Attr::Val));
}

TEST(Language, PaperFig7Annotations) {
    // Verbatim shape of the paper's Fig. 7 dtlb_ptw example.
    auto set = parseAnn(R"(/*AUTOSVA
dtlb_ptw: dtlb -in> ptw_update
dtlb_active = ptw_active_o
dtlb_val = enable_translation & dtlb_access_i & dtlb_hit_i
dtlb_ack = !ptw_active_o
[VLEN-1:0] dtlb_stable = dtlb_vaddr_i
[VLEN-1:0] dtlb_data = dtlb_vaddr_i
ptw_update_val = ptw_update_valid | ptw_error_o
[VLEN-1:0] ptw_update_data = update_vaddr_o
*/)");
    const auto& t = set.transactions[0];
    EXPECT_EQ(t.name, "dtlb_ptw");
    EXPECT_TRUE(t.req.has(core::Attr::Active));
    EXPECT_TRUE(t.req.has(core::Attr::Stable));
    EXPECT_TRUE(t.req.has(core::Attr::Data));
    EXPECT_TRUE(t.resp.has(core::Attr::Data));
    EXPECT_EQ(set.annotationLines, 8);
}

TEST(Language, ErrorOnBadRelation) {
    EXPECT_THROW(parseAnn("/*AUTOSVA\ntxn: a -sideways> b\n*/"), FrontendError);
}

TEST(Language, ErrorOnUnknownField) {
    EXPECT_THROW(parseAnn(R"(/*AUTOSVA
txn: a -in> b
c_val = x
*/)"),
                 FrontendError);
}

TEST(Language, ErrorOnBadSuffix) {
    EXPECT_THROW(parseAnn(R"(/*AUTOSVA
txn: a -in> b
a_bogus = x
*/)"),
                 FrontendError);
}

TEST(Language, ErrorOnMalformedExpression) {
    EXPECT_THROW(parseAnn(R"(/*AUTOSVA
txn: a -in> b
a_val = x &&
*/)"),
                 FrontendError);
}

TEST(Language, ErrorOnBadWidthForm) {
    EXPECT_THROW(parseAnn(R"(/*AUTOSVA
txn: a -in> b
[7:4] a_data = x
*/)"),
                 FrontendError);
}

TEST(Language, DuplicateAttributeWarnsNotThrows) {
    util::DiagEngine diags;
    auto set = core::parseAnnotations(R"(/*AUTOSVA
txn: a -in> b
a_val = x
a_val = y
*/)",
                                      "t.sv", diags);
    EXPECT_EQ(set.transactions[0].req.get(core::Attr::Val)->rhs, "x");
    EXPECT_EQ(diags.count(util::Severity::Warning), 1u);
}

TEST(Language, InputOutputHintLines) {
    auto set = parseAnn(R"(/*AUTOSVA
txn: a -in> b
input a_val
output [3:0] b_transid
*/)");
    EXPECT_TRUE(set.transactions[0].req.has(core::Attr::Val));
    EXPECT_TRUE(set.transactions[0].resp.has(core::Attr::Transid));
    EXPECT_EQ(set.transactions[0].resp.get(core::Attr::Transid)->rhs, "b_transid");
}

// --- Implicit definitions + validation against the DUT interface ---------

TEST(Language, ImplicitAttrsFromPorts) {
    const char* rtl = R"(
module m (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input  wire       req_val,
  output wire       req_ack,
  input  wire [3:0] req_transid,
  output wire       res_val,
  output wire [3:0] res_transid
);
endmodule)";
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(rtl, "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    auto set = core::parseAnnotations(rtl, "t.sv", diags);
    core::buildTransactions(set.transactions, dut, diags);
    const auto& t = set.transactions[0];
    EXPECT_TRUE(t.req.has(core::Attr::Val));
    EXPECT_TRUE(t.req.get(core::Attr::Val)->implicit);
    EXPECT_TRUE(t.req.has(core::Attr::Ack));
    EXPECT_TRUE(t.tracksTransid());
    EXPECT_EQ(t.req.get(core::Attr::Transid)->widthMsb, "3");
}

TEST(Language, TransidOnOneSideRejected) {
    const char* rtl = R"(
module m (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  [3:0] req_transid = id
  */
  input wire req_val, output wire res_val, input wire [3:0] id
);
endmodule)";
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(rtl, "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    auto set = core::parseAnnotations(rtl, "t.sv", diags);
    EXPECT_THROW(core::buildTransactions(set.transactions, dut, diags), FrontendError);
}

TEST(Language, MismatchedWidthsRejected) {
    const char* rtl = R"(
module m (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  [3:0] req_transid = a
  [2:0] res_transid = b
  */
  input wire req_val, output wire res_val,
  input wire [3:0] a, output wire [2:0] b
);
endmodule)";
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(rtl, "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    auto set = core::parseAnnotations(rtl, "t.sv", diags);
    EXPECT_THROW(core::buildTransactions(set.transactions, dut, diags), FrontendError);
}

TEST(Language, MissingValRejected) {
    const char* rtl = R"(
module m (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input wire req_valid_typo, output wire res_val
);
endmodule)";
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(rtl, "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    auto set = core::parseAnnotations(rtl, "t.sv", diags);
    EXPECT_THROW(core::buildTransactions(set.transactions, dut, diags), FrontendError);
}

TEST(Language, DirectionLintWarnsOnSwappedRelation) {
    const char* rtl = R"(
module m (
  input wire clk_i, input wire rst_ni,
  /*AUTOSVA
  txn: req -out> res
  */
  input wire req_val, output wire res_val
);
endmodule)";
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(rtl, "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    auto set = core::parseAnnotations(rtl, "t.sv", diags);
    core::buildTransactions(set.transactions, dut, diags);
    EXPECT_GE(diags.count(util::Severity::Warning), 1u);
}

// --- Interface scanning ----------------------------------------------------

TEST(InterfaceScan, ClockResetDetection) {
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(
        "module m (input wire clk_i, input wire rst_ni, input wire x); endmodule", "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    EXPECT_EQ(dut.clockName, "clk_i");
    EXPECT_EQ(dut.resetName, "rst_ni");
    EXPECT_TRUE(dut.resetActiveLow);
}

TEST(InterfaceScan, ActiveHighReset) {
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(
        "module m (input wire clock, input wire reset, input wire x); endmodule", "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    EXPECT_EQ(dut.resetName, "reset");
    EXPECT_FALSE(dut.resetActiveLow);
}

TEST(InterfaceScan, MissingClockThrows) {
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource("module m (input wire x); endmodule", "t.sv");
    EXPECT_THROW(core::scanInterface(file, {}, diags), FrontendError);
}

TEST(InterfaceScan, ParametricWidthEvaluation) {
    util::DiagEngine diags;
    auto file = verilog::Parser::parseSource(
        R"(module m #(parameter W = 4, parameter D = $clog2(W) + 1)
              (input wire clk, input wire rst_n, input wire [W-1:0] a,
               input wire [D-1:0] b); endmodule)",
        "t.sv");
    auto dut = core::scanInterface(file, {}, diags);
    EXPECT_EQ(dut.findPort("a")->widthBits, 4);
    EXPECT_EQ(dut.findPort("b")->widthBits, 3);
    EXPECT_EQ(core::evalWidth("W*2-1", dut), 8);
    EXPECT_EQ(core::evalWidth("UNKNOWN-1", dut), -1);
}

} // namespace
