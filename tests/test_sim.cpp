// Simulator unit tests: 4-state semantics, X propagation, register
// behaviour, obligation checking in simulation, VCD output.
#include <gtest/gtest.h>

#include "rtlir/elaborate.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace autosva;
using sim::Simulator;

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    return ir::elaborateSources({src}, top, diags, {});
}

TEST(Sim, CounterCounts) {
    auto d = elab(R"(
module counter (input wire clk, input wire rst_n, input wire en, output reg [3:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule)",
                  "counter");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.setInput("rst_n", 1);
    s.setInput("en", 1);
    for (int i = 0; i < 5; ++i) s.step();
    s.evalComb();
    EXPECT_EQ(s.value("q").val, 5u);
    s.setInput("en", 0);
    s.step();
    s.evalComb();
    EXPECT_EQ(s.value("q").val, 5u);
}

TEST(Sim, CounterWraps) {
    auto d = elab(R"(
module counter (input wire clk, input wire rst_n, output reg [1:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 2'd0;
    else q <= q + 2'd1;
  end
endmodule)",
                  "counter");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.setInput("rst_n", 1);
    for (int i = 0; i < 6; ++i) s.step();
    s.evalComb();
    EXPECT_EQ(s.value("q").val, 2u); // 6 mod 4.
}

TEST(Sim, UninitializedRegIsXInFourState) {
    auto d = elab(R"(
module m (input wire clk, input wire d, output reg q);
  always_ff @(posedge clk) q <= d;
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::FourState);
    s.evalComb();
    EXPECT_NE(s.value("q").x, 0u); // Unknown before first clock.
    s.setInput("d", 1);
    s.step();
    s.evalComb();
    EXPECT_EQ(s.value("q").x, 0u);
    EXPECT_EQ(s.value("q").val, 1u);
}

TEST(Sim, XPropagationThroughGates) {
    auto d = elab(R"(
module m (input wire a, input wire b, output wire y_and, output wire y_or);
  assign y_and = a && b;
  assign y_or = a || b;
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::FourState);
    // a = X (never driven), b = 0: AND is known 0, OR is X.
    s.setInput("b", 0);
    s.evalComb();
    EXPECT_EQ(s.value("y_and").val, 0u);
    EXPECT_EQ(s.value("y_and").x, 0u);
    EXPECT_NE(s.value("y_or").x, 0u);
    // b = 1: OR is known 1, AND is X.
    s.setInput("b", 1);
    s.evalComb();
    EXPECT_EQ(s.value("y_or").val, 1u);
    EXPECT_EQ(s.value("y_or").x, 0u);
    EXPECT_NE(s.value("y_and").x, 0u);
}

TEST(Sim, IsUnknownSeesXPlane) {
    auto d = elab(R"(
module m (input wire clk, input wire v, output wire unk);
  wire undriven;
  assign unk = $isunknown(undriven);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::FourState);
    s.evalComb();
    EXPECT_EQ(s.value("unk").val, 1u); // Free signal starts X.
    ir::NodeId und = d->findSignal("undriven");
    s.setInput(und, 0);
    s.evalComb();
    EXPECT_EQ(s.value("unk").val, 0u);
}

TEST(Sim, SafetyViolationDetected) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a, input wire b);
  as__follows: assert property (a |-> b);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.enableChecking(true);
    s.setInput("rst_ni", 1);
    s.setInput("a", 1);
    s.setInput("b", 1);
    s.step();
    EXPECT_TRUE(s.violations().empty());
    s.setInput("b", 0);
    s.step();
    ASSERT_EQ(s.violations().size(), 1u);
    EXPECT_EQ(s.violations()[0].obligationName, "as__follows");
    EXPECT_EQ(s.violations()[0].cycle, 1u);
}

TEST(Sim, DisabledDuringResetNoViolation) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a, input wire b);
  default disable iff (!rst_ni);
  as__follows: assert property (a |-> b);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.enableChecking(true);
    s.setInput("rst_ni", 0); // In reset: property disabled.
    s.setInput("a", 1);
    s.setInput("b", 0);
    s.step();
    EXPECT_TRUE(s.violations().empty());
}

TEST(Sim, CoverRecordedOnce) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a);
  co__seen: cover property (a);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.enableChecking(true);
    s.setInput("rst_ni", 1);
    s.setInput("a", 1);
    s.step();
    s.step();
    ASSERT_EQ(s.coveredObligations().size(), 1u);
    EXPECT_EQ(s.coveredObligations()[0], "co__seen");
}

TEST(Sim, XpropAssertionFiresOnUnknownAttribute) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire v, input wire [3:0] payload);
  xp__payload: assert property (v |-> !$isunknown(payload));
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::FourState);
    s.enableChecking(true);
    s.setInput("rst_ni", 1);
    s.setInput("v", 1); // payload left undriven -> X.
    s.step();
    ASSERT_EQ(s.violations().size(), 1u);
    EXPECT_EQ(s.violations()[0].obligationName, "xp__payload");
    // Driving the payload clears the violation source.
    s.setInput("payload", 7);
    s.step();
    EXPECT_EQ(s.violations().size(), 1u);
}

TEST(Sim, StablePastRegisterSemantics) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire [3:0] v, output wire st);
  assign st = $stable(v);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.setInput("rst_ni", 1);
    s.setInput("v", 5);
    s.evalComb();
    EXPECT_EQ(s.value("st").val, 1u); // past_valid gating: true at cycle 0.
    s.step();
    s.evalComb();
    EXPECT_EQ(s.value("st").val, 1u); // Value unchanged across the edge.
    s.setInput("v", 6);
    s.evalComb();
    EXPECT_EQ(s.value("st").val, 0u); // 6 now vs 5 sampled at the last edge.
    s.step();
    s.evalComb();
    EXPECT_EQ(s.value("st").val, 1u); // 6 was sampled; stable again.
}

TEST(Sim, RandomSimulationRunsWithoutViolationsOnGoodDesign) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire [3:0] a, output reg [3:0] q);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else q <= a;
  end
  as__tautology: assert property (q == q);
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.enableChecking(true);
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 100; ++i) {
        s.randomizeInputs(rng);
        s.setInput("rst_ni", 1);
        s.step();
    }
    EXPECT_TRUE(s.violations().empty());
}

TEST(Sim, VcdOutputWellFormed) {
    auto d = elab(R"(
module m (input wire clk, input wire rst_n, output reg [3:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule)",
                  "m");
    Simulator s(*d, Simulator::XMode::TwoState);
    s.enableTrace(true);
    s.setInput("rst_n", 1);
    for (int i = 0; i < 4; ++i) s.step();
    std::string vcd = sim::traceToVcd(*d, s.trace(), "m");
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 4"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    EXPECT_NE(vcd.find("#30"), std::string::npos);
}

} // namespace
