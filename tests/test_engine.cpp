// Model-checking engine tests on hand-written designs: BMC depth accuracy,
// k-induction and PDR proofs, liveness-to-safety with fairness, covers,
// constraint handling, and trace replay.
#include <gtest/gtest.h>

#include "formal/engine.hpp"
#include "formal/pdr.hpp"
#include "formal/replay.hpp"
#include "rtlir/elaborate.hpp"

namespace {

using namespace autosva;
using formal::Engine;
using formal::EngineOptions;
using formal::Status;

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, top, diags, opts);
}

const formal::PropertyResult& findResult(const std::vector<formal::PropertyResult>& results,
                                         const std::string& name) {
    for (const auto& r : results)
        if (r.name == name) return r;
    throw std::runtime_error("no result " + name);
}

TEST(Engine, BmcFindsBugAtExactDepth) {
    // Counter reaches 5 after exactly 5 steps.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [3:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else q <= q + 4'd1;
  end
  as__never5: assert property (q != 4'd5);
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    const auto& r = findResult(results, "as__never5");
    EXPECT_EQ(r.status, Status::Failed);
    EXPECT_EQ(r.depth, 5);
    EXPECT_EQ(r.trace.length(), 6); // Frames 0..5.
}

TEST(Engine, InvariantProven) {
    // A 3-bit one-hot rotator stays one-hot.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [2:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 3'b001;
    else q <= {q[1:0], q[2]};
  end
  as__onehot: assert property ($onehot(q));
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__onehot").status, Status::Proven);
}

TEST(Engine, DeepInvariantNeedsPdr) {
    // Two coupled counters: equal unless one observes wrap asymmetry —
    // simple k-induction at small k fails, PDR proves.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [3:0] a;
  reg [3:0] b;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      a <= 4'd0;
      b <= 4'd0;
    end else if (en) begin
      a <= a + 4'd1;
      b <= b + 4'd1;
    end
  end
  as__equal: assert property (a == b);
endmodule)",
                  "m");
    EngineOptions opts;
    opts.maxInductionK = 0; // Force the PDR path.
    Engine engine(*d, opts);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__equal").status, Status::Proven);
}

TEST(Engine, LivenessCexWithoutFairness) {
    // req set pending; env response never forced -> lasso CEX.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire req, input wire resp);
  as__live: assert property (req |-> s_eventually (resp));
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    const auto& r = findResult(results, "as__live");
    EXPECT_EQ(r.status, Status::Failed);
    EXPECT_GE(r.trace.loopStart, 0); // Lasso trace.
}

TEST(Engine, LivenessProvenWithFairnessAssumption) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire req, input wire resp);
  am__fair: assume property (req |-> s_eventually (resp));
  as__live: assert property (req |-> s_eventually (resp));
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__live").status, Status::Proven);
}

TEST(Engine, LivenessOfHandshakeFsm) {
    // A request-grant FSM that always answers in 2 cycles: proven without
    // any fairness.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire req);
  reg [1:0] st;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) st <= 2'd0;
    else if (st == 2'd0 && req) st <= 2'd1;
    else if (st == 2'd1) st <= 2'd2;
    else if (st == 2'd2) st <= 2'd0;
  end
  wire busy = st != 2'd0;
  wire done = st == 2'd2;
  as__live: assert property (req && !busy |-> s_eventually (done));
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__live").status, Status::Proven);
}

TEST(Engine, ConstraintsPruneCex) {
    // Without the assumption the bad state is reachable; with it, proven.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire [3:0] in);
  reg [3:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else q <= in;
  end
  am__bounded: assume property (in < 4'd8);
  as__small: assert property (q < 4'd8);
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__small").status, Status::Proven);
}

TEST(Engine, CoverReachableAndUnreachable) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [2:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 3'd0;
    else if (en && q < 3'd6) q <= q + 3'd1;
  end
  co__six: cover property (q == 3'd6);
  co__seven: cover property (q == 3'd7);
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    const auto& six = findResult(results, "co__six");
    EXPECT_EQ(six.status, Status::Covered);
    EXPECT_EQ(six.depth, 6);
    EXPECT_EQ(findResult(results, "co__seven").status, Status::Unreachable);
}

TEST(Engine, NonOverlappingImplication) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire a);
  reg a_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) a_q <= 1'b0;
    else a_q <= a;
  end
  as__next_ok: assert property (a |=> a_q);
  as__next_bad: assert property (a |=> !a_q);
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "as__next_ok").status, Status::Proven);
    EXPECT_EQ(findResult(results, "as__next_bad").status, Status::Failed);
}

TEST(Engine, TraceReplayMatchesViolation) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire [1:0] in);
  reg [1:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 2'd0;
    else q <= in;
  end
  as__neverthree: assert property (q != 2'd3);
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    const auto& r = findResult(results, "as__neverthree");
    ASSERT_EQ(r.status, Status::Failed);
    auto cycles = formal::replayTrace(*d, r.trace);
    ASSERT_EQ(cycles.size(), r.trace.inputs.size());
    // At the failing cycle, q must equal 3.
    EXPECT_EQ(cycles.back().signals.at("q").val, 3u);
}

TEST(Engine, XpropObligationsSkipped) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire v, input wire [3:0] payload);
  xp__p: assert property (v |-> !$isunknown(payload));
endmodule)",
                  "m");
    Engine engine(*d);
    auto results = engine.checkAll();
    EXPECT_EQ(findResult(results, "xp__p").status, Status::Skipped);
}

TEST(Engine, PdrDirectInterface) {
    // Exercise pdrCheck() directly on a bit-blasted design.
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [2:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 3'd0;
    else if (en && q != 3'd4) q <= q + 3'd1;
  end
  as__x: assert property (q <= 3'd4);
endmodule)",
                  "m");
    formal::BitBlast bb = formal::bitblast(*d);
    formal::AigLit bad = bb.lit(d->obligations()[0].net);
    formal::PdrResult pr = formal::pdrCheck(bb.aig, bad, {});
    EXPECT_EQ(pr.kind, formal::PdrResult::Kind::Proven);
    // And reachability of the boundary value is confirmed as a Cex of the
    // negated claim.
    formal::PdrResult reach =
        formal::pdrCheck(bb.aig, bb.lit(d->obligations()[0].net) ^ 1u, {});
    EXPECT_EQ(reach.kind, formal::PdrResult::Kind::Cex);
}

} // namespace
