// Obligation-scheduler tests: determinism of the parallel pipeline across
// worker counts (the contract: byte-identical statuses, depths, and report
// ordering for any EngineOptions::jobs), thread-safety of the result sink,
// and independent testability of the proof strategies.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/scheduler.hpp"
#include "formal/strategy.hpp"
#include "rtlir/elaborate.hpp"
#include "sva/report.hpp"

namespace {

using namespace autosva;
using formal::EngineOptions;
using formal::ObligationJob;
using formal::ObligationScheduler;
using formal::ProofContext;
using formal::Status;

std::unique_ptr<ir::Design> elab(const std::string& src, const std::string& top) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, top, diags, opts);
}

/// Canonical report fingerprint: everything that must be identical across
/// worker counts (name, kind, status, depth, ordering) — wall-clock times
/// excluded, trace input values excluded (any satisfying model is valid).
std::string fingerprint(const std::vector<formal::PropertyResult>& results) {
    std::ostringstream out;
    for (const auto& r : results) {
        out << r.name << '|' << static_cast<int>(r.kind) << '|' << formal::statusName(r.status)
            << '|' << r.depth << '|' << r.trace.length() << '|' << r.trace.loopStart << '\n';
    }
    return out.str();
}

std::string fingerprint(const sva::VerificationReport& report) {
    return fingerprint(report.results);
}

// ---------------------------------------------------------------------------
// ResultSink
// ---------------------------------------------------------------------------

TEST(ResultSink, DeterministicOrderUnderConcurrentPublish) {
    constexpr size_t kSlots = 64;
    sva::ResultSink sink(kSlots);
    // Publish from 8 threads, each handling a strided subset, in an order
    // that differs from declaration order.
    std::vector<std::thread> threads;
    for (int w = 0; w < 8; ++w) {
        threads.emplace_back([&sink, w] {
            for (size_t i = kSlots; i-- > 0;) {
                if (i % 8 != static_cast<size_t>(w)) continue;
                formal::PropertyResult r;
                r.name = "p" + std::to_string(i);
                r.depth = static_cast<int>(i);
                sink.publish(i, std::move(r));
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(sink.published(), kSlots);
    auto results = sink.drain();
    ASSERT_EQ(results.size(), kSlots);
    for (size_t i = 0; i < kSlots; ++i) {
        EXPECT_EQ(results[i].name, "p" + std::to_string(i));
        EXPECT_EQ(results[i].depth, static_cast<int>(i));
    }
}

TEST(ResultSink, RejectsDoublePublishAndEarlyDrain) {
    sva::ResultSink sink(2);
    sink.publish(0, {});
    EXPECT_THROW(sink.publish(0, {}), std::logic_error);
    EXPECT_THROW((void)sink.drain(), std::logic_error);
    sink.publish(1, {});
    EXPECT_NO_THROW((void)sink.drain());
}

// ---------------------------------------------------------------------------
// Strategies are independently runnable
// ---------------------------------------------------------------------------

TEST(Strategy, BmcAloneFindsShortestCex) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [3:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else q <= q + 4'd1;
  end
  as__never5: assert property (q != 4'd5);
endmodule)",
                  "m");
    formal::BitBlast bb = formal::bitblast(*d);
    EngineOptions opts;
    std::vector<formal::AigLit> noConstraints;
    ProofContext ctx{*d, bb, bb.aig, noConstraints, opts, formal::kAigFalse, nullptr};
    ObligationJob job;
    job.ob = &d->obligations()[0];
    job.bad = bb.lit(job.ob->net);
    job.pdrBad = job.bad;
    auto bmc = formal::makeBmcStrategy();
    EXPECT_STREQ(bmc->name(), "bmc");
    bmc->run(ctx, job);
    EXPECT_EQ(job.result.status, Status::Failed);
    EXPECT_EQ(job.result.depth, 5);
    EXPECT_EQ(job.result.trace.length(), 6);
}

TEST(Strategy, InductionAloneProvesInvariant) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni);
  reg [2:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 3'b001;
    else q <= {q[1:0], q[2]};
  end
  as__onehot: assert property ($onehot(q));
endmodule)",
                  "m");
    formal::BitBlast bb = formal::bitblast(*d);
    EngineOptions opts;
    std::vector<formal::AigLit> noConstraints;
    ProofContext ctx{*d, bb, bb.aig, noConstraints, opts, formal::kAigFalse, nullptr};
    ObligationJob job;
    job.ob = &d->obligations()[0];
    job.bad = bb.lit(job.ob->net);
    job.pdrBad = job.bad;
    formal::makeInductionStrategy()->run(ctx, job);
    EXPECT_EQ(job.result.status, Status::Proven);
}

TEST(Strategy, PdrAloneProvesDeepInvariant) {
    auto d = elab(R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [3:0] a;
  reg [3:0] b;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      a <= 4'd0;
      b <= 4'd0;
    end else if (en) begin
      a <= a + 4'd1;
      b <= b + 4'd1;
    end
  end
  as__equal: assert property (a == b);
endmodule)",
                  "m");
    formal::BitBlast bb = formal::bitblast(*d);
    EngineOptions opts;
    std::vector<formal::AigLit> noConstraints;
    ProofContext ctx{*d, bb, bb.aig, noConstraints, opts, formal::kAigFalse, nullptr};
    ObligationJob job;
    job.ob = &d->obligations()[0];
    job.bad = bb.lit(job.ob->net);
    job.pdrBad = job.bad;
    formal::makePdrStrategy()->run(ctx, job);
    EXPECT_EQ(job.result.status, Status::Proven);
}

// ---------------------------------------------------------------------------
// Scheduler determinism across worker counts
// ---------------------------------------------------------------------------

// A module with a mix of passing / failing safety, liveness, and covers, so
// every scheduler phase (parallel phase A, liveness constraint feeding,
// sequential PDR lemma chain) is exercised. The counter saturates so the
// liveness-to-safety lasso stays short (wrapping counters would push the
// loop period to lcm of all register periods).
constexpr const char* kMixedRtl = R"(
module m (input wire clk_i, input wire rst_ni, input wire req, input wire resp,
          input wire [3:0] in);
  reg [3:0] q;
  reg [2:0] oh;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      q <= 4'd0;
      oh <= 3'b001;
    end else begin
      if (q != 4'd15) q <= q + 4'd1;
      oh <= {oh[1:0], oh[2]};
    end
  end
  am__bounded: assume property (in < 4'd12);
  am__fair: assume property (req |-> s_eventually (resp));
  as__onehot: assert property ($onehot(oh));
  as__never9: assert property (q != 4'd9);
  as__live: assert property (req |-> s_eventually (resp));
  co__six: cover property (q == 4'd6);
  co__in_big: cover property (in == 4'd13);
endmodule)";

TEST(Scheduler, SmallDesignIdenticalAcrossWorkerCounts) {
    auto run = [](int jobs) {
        auto d = elab(kMixedRtl, "m");
        EngineOptions opts;
        opts.jobs = jobs;
        ObligationScheduler scheduler(*d, opts);
        return fingerprint(scheduler.run());
    };
    auto kindTag = [](ir::Obligation::Kind k) {
        return "|" + std::to_string(static_cast<int>(k)) + "|";
    };
    std::string safety = kindTag(ir::Obligation::Kind::SafetyBad);
    std::string justice = kindTag(ir::Obligation::Kind::Justice);
    std::string cover = kindTag(ir::Obligation::Kind::Cover);
    std::string sequential = run(1);
    EXPECT_NE(sequential.find("as__never9" + safety + "cex|9"), std::string::npos) << sequential;
    EXPECT_NE(sequential.find("as__onehot" + safety + "proven"), std::string::npos) << sequential;
    EXPECT_NE(sequential.find("as__live" + justice + "proven"), std::string::npos) << sequential;
    EXPECT_NE(sequential.find("co__six" + cover + "covered|6"), std::string::npos) << sequential;
    EXPECT_NE(sequential.find("co__in_big" + cover + "unreachable"), std::string::npos)
        << sequential;
    for (int jobs : {2, 4, 8}) {
        EXPECT_EQ(run(jobs), sequential) << "jobs=" << jobs;
    }
}

// The tentpole acceptance check: core::verify() on the Ariane MMU — the
// paper's flagship module, with submodule instances, fairness assumptions,
// liveness chains, and covers — must produce byte-identical per-property
// statuses, depths, and ordering with 1 and 4 workers.
TEST(Scheduler, ArianeMmuIdenticalJobs1VsJobs4) {
    const auto& info = designs::design("ariane_mmu");
    auto run = [&info](int jobs) {
        util::DiagEngine diags;
        core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
        core::VerifyOptions vopts;
        vopts.engine.jobs = jobs;
        // Same bounded budget the Table III suite uses for bug hunts: keeps
        // the test fast; determinism must hold at any budget.
        vopts.engine.bmcDepth = 15;
        vopts.engine.pdrMaxQueries = 30000;
        if (!info.extensionSva.empty()) vopts.extraSources.push_back(info.extensionSva);
        return core::verify(designs::rtlSources(info), ft, vopts, diags);
    };
    sva::VerificationReport r1 = run(1);
    sva::VerificationReport r4 = run(4);
    EXPECT_FALSE(r1.results.empty());
    EXPECT_EQ(fingerprint(r1), fingerprint(r4));
    EXPECT_EQ(r1.outcomeSummary(), r4.outcomeSummary());
}

// Portfolio racing: the leg ladder raced with first-verdict-wins
// cancellation must adopt exactly the leg the sequential walk adopts —
// byte-identical reports — while actually cancelling hunter legs. jobs=1
// makes the cancellation count deterministic: the leg-major task order
// runs every leg-0 before any hunter, so each decisive job skips both of
// its hunters.
TEST(Scheduler, PortfolioRaceIdenticalToSequentialLadderAndCancels) {
    auto run = [](bool portfolio, int legs, uint64_t* cancelled) {
        auto d = elab(kMixedRtl, "m");
        EngineOptions opts;
        opts.jobs = 1;
        opts.portfolio = portfolio;
        opts.portfolioLegs = legs;
        ObligationScheduler scheduler(*d, opts);
        std::string fp = fingerprint(scheduler.run());
        if (cancelled) *cancelled = scheduler.stats().portfolioLegsCancelled;
        return fp;
    };
    std::string baseline = run(false, 0, nullptr); // Plain pipeline, no ladder.
    std::string sequential = run(false, 2, nullptr);
    uint64_t cancelled = 0;
    std::string raced = run(true, 2, &cancelled);
    EXPECT_EQ(raced, sequential);
    // Every obligation of this design is decided by the canonical leg 0,
    // so the hunter legs cannot move any verdict — the ladder reproduces
    // the plain pipeline byte for byte.
    EXPECT_EQ(raced, baseline);
    EXPECT_GT(cancelled, 0u);
}

} // namespace
