// SAT solver unit tests: satisfiable/unsatisfiable instances, assumptions,
// incremental use, pigeonhole stress, and cross-thread cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "formal/sat.hpp"

namespace {

using namespace autosva::formal;

TEST(Sat, TrivialSat) {
    SatSolver s;
    int a = s.newVar();
    s.addUnit(mkSatLit(a));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, TrivialUnsat) {
    SatSolver s;
    int a = s.newVar();
    s.addUnit(mkSatLit(a));
    s.addUnit(satNeg(mkSatLit(a)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, EmptyClauseUnsat) {
    SatSolver s;
    s.addClause({});
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, SimpleImplicationChain) {
    SatSolver s;
    const int n = 20;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.newVar());
    for (int i = 0; i + 1 < n; ++i)
        s.addBinary(satNeg(mkSatLit(vars[i])), mkSatLit(vars[i + 1]));
    s.addUnit(mkSatLit(vars[0]));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    for (int i = 0; i < n; ++i) EXPECT_TRUE(s.modelValue(vars[i]));
}

TEST(Sat, XorChainParity) {
    // x0 ^ x1 ^ x2 = 1 via Tseitin-style clauses; forcing all false is UNSAT.
    SatSolver s;
    int x0 = s.newVar(), x1 = s.newVar(), x2 = s.newVar();
    // Encode "odd number of x0,x1,x2 true":
    s.addTernary(mkSatLit(x0), mkSatLit(x1), mkSatLit(x2));
    s.addTernary(mkSatLit(x0), satNeg(mkSatLit(x1)), satNeg(mkSatLit(x2)));
    s.addTernary(satNeg(mkSatLit(x0)), mkSatLit(x1), satNeg(mkSatLit(x2)));
    s.addTernary(satNeg(mkSatLit(x0)), satNeg(mkSatLit(x1)), mkSatLit(x2));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    int ones = s.modelValue(x0) + s.modelValue(x1) + s.modelValue(x2);
    EXPECT_EQ(ones % 2, 1);
}

TEST(Sat, AssumptionsSatAndUnsat) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(satNeg(mkSatLit(a)), mkSatLit(b)); // a -> b
    EXPECT_EQ(s.solve({mkSatLit(a)}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    // Assume a and !b: contradiction.
    EXPECT_EQ(s.solve({mkSatLit(a), satNeg(mkSatLit(b))}), SatResult::Unsat);
    // Solver unchanged: still satisfiable without assumptions.
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, IncrementalClauseAddition) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(mkSatLit(a), mkSatLit(b));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.addUnit(satNeg(mkSatLit(a)));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    s.addUnit(satNeg(mkSatLit(b)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ContradictoryAssumptionPair) {
    SatSolver s;
    int a = s.newVar();
    EXPECT_EQ(s.solve({mkSatLit(a), satNeg(mkSatLit(a))}), SatResult::Unsat);
}

TEST(Sat, PigeonholeUnsat) {
    // PHP(4,3): 4 pigeons in 3 holes — classic small UNSAT instance that
    // requires real conflict learning.
    SatSolver s;
    const int pigeons = 4, holes = 3;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> atLeastOne;
        for (int h = 0; h < holes; ++h) atLeastOne.push_back(mkSatLit(v[p][h]));
        s.addClause(atLeastOne);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.conflicts(), 0u);
}

TEST(Sat, RandomThreeSatSatisfiableInstancesModelCheck) {
    // Random planted 3-SAT: generate a random assignment, emit clauses
    // satisfied by it; solver must find *some* model; verify it.
    std::mt19937_64 rng(42);
    for (int iter = 0; iter < 10; ++iter) {
        SatSolver s;
        const int n = 30, m = 100;
        std::vector<int> vars;
        std::vector<bool> planted;
        for (int i = 0; i < n; ++i) {
            vars.push_back(s.newVar());
            planted.push_back(rng() & 1);
        }
        std::vector<std::vector<SatLit>> clauses;
        for (int c = 0; c < m; ++c) {
            std::vector<SatLit> clause;
            bool satisfied = false;
            for (int k = 0; k < 3; ++k) {
                int var = static_cast<int>(rng() % n);
                bool neg = rng() & 1;
                if (planted[var] != neg) satisfied = true;
                clause.push_back(mkSatLit(vars[var], neg));
            }
            if (!satisfied) clause[0] = mkSatLit(satVar(clause[0]), !planted[satVar(clause[0])]);
            clauses.push_back(clause);
            s.addClause(clause);
        }
        ASSERT_EQ(s.solve(), SatResult::Sat);
        for (const auto& clause : clauses) {
            bool sat = false;
            for (SatLit l : clauses.back().empty() ? clause : clause)
                if (s.modelValue(satVar(l)) != satSign(l)) sat = true;
            EXPECT_TRUE(sat);
        }
    }
}

TEST(Sat, SimplifyPurgesClosedClauseGroups) {
    // The PDR frame-solver pattern: per-query facts live in clause groups,
    // closing a group satisfies its clauses at level 0, and simplify()
    // must actually shed them from the clause database — liveClauses()
    // shrinks back to the persistent encoding.
    SatSolver s;
    int a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addTernary(mkSatLit(a), mkSatLit(b), mkSatLit(c)); // Persistent clause.
    const size_t persistent = s.liveClauses();
    EXPECT_EQ(persistent, 1u);

    std::vector<SatLit> groups;
    for (int g = 0; g < 8; ++g) {
        SatLit act = s.openClauseGroup();
        s.addClauseIn(act, {mkSatLit(a), satNeg(mkSatLit(b))});
        s.addClauseIn(act, {satNeg(mkSatLit(a)), mkSatLit(c)});
        groups.push_back(act);
        EXPECT_EQ(s.solve({act}), SatResult::Sat);
    }
    const size_t beforeClose = s.liveClauses();
    EXPECT_GE(beforeClose, persistent + 16);

    for (SatLit act : groups) s.closeClauseGroup(act);
    // Closing alone retires the groups logically but keeps the clauses
    // attached; simplify() is what frees them.
    EXPECT_EQ(s.liveClauses(), beforeClose);
    s.simplify();
    EXPECT_LT(s.liveClauses(), beforeClose);
    EXPECT_EQ(s.liveClauses(), persistent);

    // The solver is still correct afterwards.
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.addUnit(satNeg(mkSatLit(a)));
    s.addUnit(satNeg(mkSatLit(b)));
    s.addUnit(satNeg(mkSatLit(c)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
    // A hard instance with a tiny budget must bail out with Unknown.
    SatSolver s;
    s.setConflictBudget(1);
    const int pigeons = 7, holes = 6;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(mkSatLit(v[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));
    EXPECT_EQ(s.solve(), SatResult::Unknown);
}

TEST(Sat, CrossThreadRequestStopInterruptsAndSolverStaysUsable) {
    // The portfolio cancellation contract: requestStop() from another
    // thread makes an in-flight solve() return Interrupted at the next
    // conflict/restart boundary, the trail unwinds to level 0, and the
    // solver stays usable for further queries after clearStop().
    SatSolver s;
    const int pigeons = 10, holes = 9; // Hard enough to outlive the stopper.
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(mkSatLit(v[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));

    std::thread stopper([&s] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        s.requestStop();
    });
    EXPECT_EQ(s.solve(), SatResult::Interrupted);
    stopper.join();

    // Still stopped: a fresh solve must bail immediately.
    EXPECT_EQ(s.solve(), SatResult::Interrupted);

    // After clearing, the solver answers queries it can decide by
    // propagation alone (the PHP core stays too hard on purpose).
    s.clearStop();
    EXPECT_EQ(s.solve({mkSatLit(v[0][0]), satNeg(mkSatLit(v[0][0]))}), SatResult::Unsat);
    s.setConflictBudget(1);
    EXPECT_EQ(s.solve(), SatResult::Unknown);
}

TEST(Sat, HygieneCountersAtAddClause) {
    // Satellite of the preprocessing PR: addClause() entry hygiene
    // (sort/dedupe, tautology and level-0 filtering) is observable through
    // counters so --stats can report encoder waste.
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addClause({mkSatLit(a), mkSatLit(a), mkSatLit(b)}); // Duplicate literal.
    EXPECT_GE(s.hygieneLitsDropped(), 1u);
    s.addClause({mkSatLit(a), satNeg(mkSatLit(a))}); // Tautology: dropped whole.
    EXPECT_GE(s.hygieneDrops(), 1u);
    s.addUnit(mkSatLit(a));
    const uint64_t dropsBefore = s.hygieneDrops();
    s.addClause({mkSatLit(a), mkSatLit(b)}); // Satisfied at level 0: dropped.
    EXPECT_EQ(s.hygieneDrops(), dropsBefore + 1);
    const uint64_t litsBefore = s.hygieneLitsDropped();
    s.addClause({satNeg(mkSatLit(a)), mkSatLit(b)}); // !a false at level 0: stripped.
    EXPECT_EQ(s.hygieneLitsDropped(), litsBefore + 1);
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, ExternalStopTokenInterrupts) {
    // bindStop() shares one atomic across many solvers — the JobRace slot
    // token. A raised token interrupts at solve() entry; unbinding (or
    // lowering the token) restores normal operation.
    std::atomic<bool> token{false};
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(mkSatLit(a), mkSatLit(b));
    s.bindStop(&token);
    token.store(true);
    EXPECT_EQ(s.solve(), SatResult::Interrupted);
    token.store(false);
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.bindStop(nullptr);
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

} // namespace

// White-box access to search internals, declared a friend by SatSolver.
// Only the tests below use it; everything else stays black-box on purpose.
namespace autosva::formal {
struct SatSolverTestPeer {
    using CRef = SatSolver::CRef;

    static uint64_t luby(uint64_t i) { return SatSolver::luby(i); }

    /// Plants an attached learnt clause (>= 2 literals) with the given LBD.
    static CRef addLearnt(SatSolver& s, std::vector<SatLit> lits, int lbd) {
        CRef cr = static_cast<CRef>(s.clauses_.size());
        SatSolver::Clause c;
        c.lits = std::move(lits);
        c.lbd = lbd;
        c.learnt = true;
        s.clauses_.push_back(std::move(c));
        s.attachClause(cr);
        s.learnts_.push_back(cr);
        return cr;
    }

    /// Assigns `l` at a fresh decision level with `reason` as its antecedent
    /// — the state reduceDB's reason-lock check protects.
    static void lockAsReason(SatSolver& s, SatLit l, CRef reason) {
        s.trailLims_.push_back(static_cast<int>(s.trail_.size()));
        s.enqueue(l, reason);
    }

    static void reduceDB(SatSolver& s) { s.reduceDB(); }
    static void inprocess(SatSolver& s) { s.inprocessStep(); }
    static bool isDeleted(const SatSolver& s, CRef cr) {
        return s.clauses_[static_cast<size_t>(cr)].deleted;
    }
    static size_t clauseSize(const SatSolver& s, CRef cr) {
        return s.clauses_[static_cast<size_t>(cr)].lits.size();
    }
    static void backtrackToRoot(SatSolver& s) { s.cancelUntil(0); }
};
} // namespace autosva::formal

namespace {

TEST(SatInternals, LubySequencePinned) {
    // Pins the restart schedule: index 0 yields 1, then the tail runs at
    // twice the textbook Luby values (1,2,2,4,2,2,4,8,...). The solver
    // multiplies by 64, so restart limits grow 64,128,128,256,... — a valid
    // universal schedule; this test exists so a refactor cannot silently
    // change restart cadence (which would move witness values everywhere).
    using Peer = SatSolverTestPeer;
    const uint64_t expected[] = {1, 2, 2, 4, 2, 2, 4, 8, 2, 2, 4, 2, 2, 4, 8, 16};
    for (uint64_t i = 0; i < 16; ++i) EXPECT_EQ(Peer::luby(i), expected[i]) << "i=" << i;
}

TEST(SatInternals, ReduceDbKeepsReasonLockedAndGlueClauses) {
    using Peer = SatSolverTestPeer;
    SatSolver s;
    std::vector<int> v;
    for (int i = 0; i < 16; ++i) v.push_back(s.newVar());

    // Eight learnts: two high-LBD (sorted worst-first by reduceDB), six glue
    // (LBD 2). Half the list is eviction-eligible; the high-LBD pair sits at
    // the front of that half.
    Peer::CRef lockedHighLbd =
        Peer::addLearnt(s, {mkSatLit(v[0]), mkSatLit(v[1])}, /*lbd=*/8);
    Peer::CRef evictableHighLbd =
        Peer::addLearnt(s, {mkSatLit(v[2]), mkSatLit(v[3])}, /*lbd=*/8);
    std::vector<SatSolverTestPeer::CRef> glue;
    for (int i = 0; i < 6; ++i)
        glue.push_back(
            Peer::addLearnt(s, {mkSatLit(v[4 + 2 * i]), mkSatLit(v[5 + 2 * i])}, /*lbd=*/2));

    // Make the first high-LBD clause the reason for a current assignment.
    Peer::lockAsReason(s, mkSatLit(v[0]), lockedHighLbd);

    Peer::reduceDB(s);

    EXPECT_FALSE(Peer::isDeleted(s, lockedHighLbd)) << "reason-locked clause evicted";
    for (Peer::CRef cr : glue) EXPECT_FALSE(Peer::isDeleted(s, cr)) << "glue clause evicted";
    EXPECT_TRUE(Peer::isDeleted(s, evictableHighLbd))
        << "eviction-eligible clause survived — the test lost its teeth";

    Peer::backtrackToRoot(s);
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(SatInternals, ResetSearchStatePreservesModelAndRootUnits) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addUnit(mkSatLit(a));                          // Root-level unit.
    s.addBinary(satNeg(mkSatLit(a)), mkSatLit(b));   // a -> b.
    s.addBinary(mkSatLit(b), mkSatLit(c));
    ASSERT_EQ(s.solve(), SatResult::Sat);
    const bool ma = s.modelValue(a), mb = s.modelValue(b), mc = s.modelValue(c);

    s.resetSearchState();

    // The last model stays readable — pooled strategies extract witnesses
    // after the pool has already reset the solver for the next job.
    EXPECT_EQ(s.modelValue(a), ma);
    EXPECT_EQ(s.modelValue(b), mb);
    EXPECT_EQ(s.modelValue(c), mc);

    // Root-level units survive the reset: contradicting one is still UNSAT.
    EXPECT_EQ(s.solve({satNeg(mkSatLit(a))}), SatResult::Unsat);
    EXPECT_EQ(s.solve({satNeg(mkSatLit(b))}), SatResult::Unsat);
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

// -- Preprocessing / inprocessing -------------------------------------------

TEST(SatPre, EliminationReconstructsModelOnEliminatedVars) {
    // Tseitin AND gate t <-> x & y feeding an output clause. t is internal
    // (unfrozen) and gets eliminated; modelBit() must still answer on it via
    // the reconstruction stack, consistently with the original definition.
    SatSolver s;
    int x = s.newVar(), y = s.newVar(), t = s.newVar(), z = s.newVar();
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(x));
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(y));
    s.addTernary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)), mkSatLit(t));
    s.addBinary(mkSatLit(t), mkSatLit(z));
    s.setPreprocessing(true);
    s.freeze(x);
    s.freeze(y);
    s.freeze(z);
    s.preprocess(/*force=*/true);
    EXPECT_EQ(s.varsEliminated(), 1u);

    ASSERT_EQ(s.solve({mkSatLit(x), mkSatLit(y), satNeg(mkSatLit(z))}), SatResult::Sat);
    // x & y & !z forces t through the AND definition and the output clause;
    // the reconstructed model must agree.
    EXPECT_TRUE(modelBit(s, mkSatLit(t)));

    ASSERT_EQ(s.solve({satNeg(mkSatLit(x)), mkSatLit(z)}), SatResult::Sat);
    EXPECT_FALSE(modelBit(s, mkSatLit(t))); // !x forces !t through the definition.
}

TEST(SatPre, EliminationKeepsSemanticAnswers) {
    SatSolver s;
    int x = s.newVar(), y = s.newVar(), t = s.newVar(), z = s.newVar();
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(x));
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(y));
    s.addTernary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)), mkSatLit(t));
    s.addBinary(mkSatLit(t), mkSatLit(z));
    s.setPreprocessing(true);
    s.freeze(x);
    s.freeze(y);
    s.freeze(z);
    s.preprocess(/*force=*/true);
    ASSERT_EQ(s.varsEliminated(), 1u);
    // !x forces !t (AND definition), and (t | z) then demands z: so
    // {!x, !z} must be UNSAT even with t eliminated.
    EXPECT_EQ(s.solve({satNeg(mkSatLit(x)), satNeg(mkSatLit(z))}), SatResult::Unsat);
    EXPECT_EQ(s.solve({mkSatLit(x), mkSatLit(y)}), SatResult::Sat);
}

TEST(SatPre, FrozenVariablesAreNeverEliminated) {
    SatSolver s;
    int x = s.newVar(), y = s.newVar(), t = s.newVar();
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(x));
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(y));
    s.addTernary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)), mkSatLit(t));
    s.setPreprocessing(true);
    for (int v : {x, y, t}) s.freeze(v);
    s.preprocess(/*force=*/true);
    EXPECT_EQ(s.varsEliminated(), 0u);
    EXPECT_TRUE(s.isFrozen(t));
    s.melt(t);
    EXPECT_FALSE(s.isFrozen(t));
    s.preprocess(/*force=*/true);
    EXPECT_EQ(s.varsEliminated(), 1u);
}

TEST(SatPre, AddClauseReactivatesEliminatedVariable) {
    SatSolver s;
    int x = s.newVar(), y = s.newVar(), t = s.newVar();
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(x));
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(y));
    s.addTernary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)), mkSatLit(t));
    s.setPreprocessing(true);
    s.freeze(x);
    s.freeze(y);
    s.preprocess(/*force=*/true);
    ASSERT_EQ(s.varsEliminated(), 1u);

    // A lazy encoder referencing t later is a perf hiccup, not an error:
    // the original defining clauses come back before the new one lands.
    s.addUnit(mkSatLit(t));
    EXPECT_EQ(s.varsReactivated(), 1u);
    EXPECT_EQ(s.varsEliminated(), 0u); // Net count.
    ASSERT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(x)); // t forces x and y through the definition.
    EXPECT_TRUE(s.modelValue(y));
}

TEST(SatPre, AssumptionReactivatesEliminatedVariable) {
    SatSolver s;
    int x = s.newVar(), y = s.newVar(), t = s.newVar();
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(x));
    s.addBinary(satNeg(mkSatLit(t)), mkSatLit(y));
    s.addTernary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)), mkSatLit(t));
    s.setPreprocessing(true);
    s.freeze(x);
    s.freeze(y);
    s.preprocess(/*force=*/true);
    ASSERT_EQ(s.varsEliminated(), 1u);

    ASSERT_EQ(s.solve({mkSatLit(t)}), SatResult::Sat);
    EXPECT_EQ(s.varsReactivated(), 1u);
    EXPECT_TRUE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
    EXPECT_EQ(s.solve({mkSatLit(t), satNeg(mkSatLit(x))}), SatResult::Unsat);
}

TEST(SatPre, SubsumptionAndSelfSubsumingResolution) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar(), c = s.newVar(), d = s.newVar();
    for (int v : {a, b, c, d}) s.freeze(v); // Isolate: no elimination.
    s.addBinary(mkSatLit(a), mkSatLit(b));                               // C1.
    s.addTernary(mkSatLit(a), mkSatLit(b), mkSatLit(c));                 // Subsumed by C1.
    s.addTernary(satNeg(mkSatLit(a)), mkSatLit(b), mkSatLit(d));         // SSR vs C1: drop !a.
    const size_t before = s.liveClauses();
    s.setPreprocessing(true);
    s.preprocess(/*force=*/true);
    EXPECT_GE(s.clausesSubsumed(), 1u);
    EXPECT_GE(s.clausesStrengthened(), 1u);
    EXPECT_LT(s.liveClauses(), before);

    // Strengthened DB is equivalent: !b forces a (C1) and d ({b,d}).
    ASSERT_EQ(s.solve({satNeg(mkSatLit(b))}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(d));
}

TEST(SatPre, GroupGuardedFactsNeverLeakIntoPermanentClauses) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.setPreprocessing(true);
    s.addTernary(mkSatLit(a), mkSatLit(b), mkSatLit(c)); // Persistent.
    SatLit g = s.openClauseGroup();
    s.addClauseIn(g, {mkSatLit(a), mkSatLit(b)});
    s.addClauseIn(g, {satNeg(mkSatLit(a)), mkSatLit(c)});
    s.preprocess(/*force=*/true);

    // While assumed, the guarded facts bite...
    EXPECT_EQ(s.solve({g, satNeg(mkSatLit(a)), satNeg(mkSatLit(b))}), SatResult::Unsat);
    // ...but never escape the guard: without the assumption they are inert.
    ASSERT_EQ(s.solve({satNeg(mkSatLit(a)), satNeg(mkSatLit(b))}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(c));

    s.closeClauseGroup(g);
    s.simplify();
    ASSERT_EQ(s.solve({satNeg(mkSatLit(a)), satNeg(mkSatLit(b))}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(c));
}

TEST(SatPre, VivificationShortensClauses) {
    using Peer = SatSolverTestPeer;
    SatSolver s;
    int x1 = s.newVar(), x2 = s.newVar(), x3 = s.newVar();
    s.addTernary(mkSatLit(x1), mkSatLit(x2), mkSatLit(x3));
    s.addBinary(mkSatLit(x2), satNeg(mkSatLit(x3)));
    s.setPreprocessing(true);
    // Under trial assignment !x1, !x2 the side clause forces !x3, so the
    // ternary's x3 literal is redundant; vivification drops it.
    Peer::inprocess(s);
    EXPECT_GE(s.clausesVivified(), 1u);
    EXPECT_GE(s.inprocessPasses(), 1u);
    EXPECT_EQ(s.solve({satNeg(mkSatLit(x1)), satNeg(mkSatLit(x2))}), SatResult::Unsat);
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(SatPre, FailedLiteralProbingAssertsRootUnits) {
    using Peer = SatSolverTestPeer;
    SatSolver s;
    int x = s.newVar(), y = s.newVar();
    s.addBinary(satNeg(mkSatLit(x)), mkSatLit(y));
    s.addBinary(satNeg(mkSatLit(x)), satNeg(mkSatLit(y)));
    s.setPreprocessing(true);
    Peer::inprocess(s);
    EXPECT_GE(s.failedLiterals(), 1u);
    ASSERT_EQ(s.solve(), SatResult::Sat);
    EXPECT_FALSE(s.modelValue(x)); // Probing x failed; !x is now a root unit.
    EXPECT_EQ(s.solve({mkSatLit(x)}), SatResult::Unsat);
}

} // namespace
