// SAT solver unit tests: satisfiable/unsatisfiable instances, assumptions,
// incremental use, pigeonhole stress, and cross-thread cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "formal/sat.hpp"

namespace {

using namespace autosva::formal;

TEST(Sat, TrivialSat) {
    SatSolver s;
    int a = s.newVar();
    s.addUnit(mkSatLit(a));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, TrivialUnsat) {
    SatSolver s;
    int a = s.newVar();
    s.addUnit(mkSatLit(a));
    s.addUnit(satNeg(mkSatLit(a)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, EmptyClauseUnsat) {
    SatSolver s;
    s.addClause({});
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, SimpleImplicationChain) {
    SatSolver s;
    const int n = 20;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.newVar());
    for (int i = 0; i + 1 < n; ++i)
        s.addBinary(satNeg(mkSatLit(vars[i])), mkSatLit(vars[i + 1]));
    s.addUnit(mkSatLit(vars[0]));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    for (int i = 0; i < n; ++i) EXPECT_TRUE(s.modelValue(vars[i]));
}

TEST(Sat, XorChainParity) {
    // x0 ^ x1 ^ x2 = 1 via Tseitin-style clauses; forcing all false is UNSAT.
    SatSolver s;
    int x0 = s.newVar(), x1 = s.newVar(), x2 = s.newVar();
    // Encode "odd number of x0,x1,x2 true":
    s.addTernary(mkSatLit(x0), mkSatLit(x1), mkSatLit(x2));
    s.addTernary(mkSatLit(x0), satNeg(mkSatLit(x1)), satNeg(mkSatLit(x2)));
    s.addTernary(satNeg(mkSatLit(x0)), mkSatLit(x1), satNeg(mkSatLit(x2)));
    s.addTernary(satNeg(mkSatLit(x0)), satNeg(mkSatLit(x1)), mkSatLit(x2));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    int ones = s.modelValue(x0) + s.modelValue(x1) + s.modelValue(x2);
    EXPECT_EQ(ones % 2, 1);
}

TEST(Sat, AssumptionsSatAndUnsat) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(satNeg(mkSatLit(a)), mkSatLit(b)); // a -> b
    EXPECT_EQ(s.solve({mkSatLit(a)}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    // Assume a and !b: contradiction.
    EXPECT_EQ(s.solve({mkSatLit(a), satNeg(mkSatLit(b))}), SatResult::Unsat);
    // Solver unchanged: still satisfiable without assumptions.
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, IncrementalClauseAddition) {
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(mkSatLit(a), mkSatLit(b));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.addUnit(satNeg(mkSatLit(a)));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    s.addUnit(satNeg(mkSatLit(b)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ContradictoryAssumptionPair) {
    SatSolver s;
    int a = s.newVar();
    EXPECT_EQ(s.solve({mkSatLit(a), satNeg(mkSatLit(a))}), SatResult::Unsat);
}

TEST(Sat, PigeonholeUnsat) {
    // PHP(4,3): 4 pigeons in 3 holes — classic small UNSAT instance that
    // requires real conflict learning.
    SatSolver s;
    const int pigeons = 4, holes = 3;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> atLeastOne;
        for (int h = 0; h < holes; ++h) atLeastOne.push_back(mkSatLit(v[p][h]));
        s.addClause(atLeastOne);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.conflicts(), 0u);
}

TEST(Sat, RandomThreeSatSatisfiableInstancesModelCheck) {
    // Random planted 3-SAT: generate a random assignment, emit clauses
    // satisfied by it; solver must find *some* model; verify it.
    std::mt19937_64 rng(42);
    for (int iter = 0; iter < 10; ++iter) {
        SatSolver s;
        const int n = 30, m = 100;
        std::vector<int> vars;
        std::vector<bool> planted;
        for (int i = 0; i < n; ++i) {
            vars.push_back(s.newVar());
            planted.push_back(rng() & 1);
        }
        std::vector<std::vector<SatLit>> clauses;
        for (int c = 0; c < m; ++c) {
            std::vector<SatLit> clause;
            bool satisfied = false;
            for (int k = 0; k < 3; ++k) {
                int var = static_cast<int>(rng() % n);
                bool neg = rng() & 1;
                if (planted[var] != neg) satisfied = true;
                clause.push_back(mkSatLit(vars[var], neg));
            }
            if (!satisfied) clause[0] = mkSatLit(satVar(clause[0]), !planted[satVar(clause[0])]);
            clauses.push_back(clause);
            s.addClause(clause);
        }
        ASSERT_EQ(s.solve(), SatResult::Sat);
        for (const auto& clause : clauses) {
            bool sat = false;
            for (SatLit l : clauses.back().empty() ? clause : clause)
                if (s.modelValue(satVar(l)) != satSign(l)) sat = true;
            EXPECT_TRUE(sat);
        }
    }
}

TEST(Sat, SimplifyPurgesClosedClauseGroups) {
    // The PDR frame-solver pattern: per-query facts live in clause groups,
    // closing a group satisfies its clauses at level 0, and simplify()
    // must actually shed them from the clause database — liveClauses()
    // shrinks back to the persistent encoding.
    SatSolver s;
    int a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addTernary(mkSatLit(a), mkSatLit(b), mkSatLit(c)); // Persistent clause.
    const size_t persistent = s.liveClauses();
    EXPECT_EQ(persistent, 1u);

    std::vector<SatLit> groups;
    for (int g = 0; g < 8; ++g) {
        SatLit act = s.openClauseGroup();
        s.addClauseIn(act, {mkSatLit(a), satNeg(mkSatLit(b))});
        s.addClauseIn(act, {satNeg(mkSatLit(a)), mkSatLit(c)});
        groups.push_back(act);
        EXPECT_EQ(s.solve({act}), SatResult::Sat);
    }
    const size_t beforeClose = s.liveClauses();
    EXPECT_GE(beforeClose, persistent + 16);

    for (SatLit act : groups) s.closeClauseGroup(act);
    // Closing alone retires the groups logically but keeps the clauses
    // attached; simplify() is what frees them.
    EXPECT_EQ(s.liveClauses(), beforeClose);
    s.simplify();
    EXPECT_LT(s.liveClauses(), beforeClose);
    EXPECT_EQ(s.liveClauses(), persistent);

    // The solver is still correct afterwards.
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.addUnit(satNeg(mkSatLit(a)));
    s.addUnit(satNeg(mkSatLit(b)));
    s.addUnit(satNeg(mkSatLit(c)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
    // A hard instance with a tiny budget must bail out with Unknown.
    SatSolver s;
    s.setConflictBudget(1);
    const int pigeons = 7, holes = 6;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(mkSatLit(v[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));
    EXPECT_EQ(s.solve(), SatResult::Unknown);
}

TEST(Sat, CrossThreadRequestStopInterruptsAndSolverStaysUsable) {
    // The portfolio cancellation contract: requestStop() from another
    // thread makes an in-flight solve() return Interrupted at the next
    // conflict/restart boundary, the trail unwinds to level 0, and the
    // solver stays usable for further queries after clearStop().
    SatSolver s;
    const int pigeons = 10, holes = 9; // Hard enough to outlive the stopper.
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& cell : row) cell = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<SatLit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(mkSatLit(v[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addBinary(satNeg(mkSatLit(v[p1][h])), satNeg(mkSatLit(v[p2][h])));

    std::thread stopper([&s] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        s.requestStop();
    });
    EXPECT_EQ(s.solve(), SatResult::Interrupted);
    stopper.join();

    // Still stopped: a fresh solve must bail immediately.
    EXPECT_EQ(s.solve(), SatResult::Interrupted);

    // After clearing, the solver answers queries it can decide by
    // propagation alone (the PHP core stays too hard on purpose).
    s.clearStop();
    EXPECT_EQ(s.solve({mkSatLit(v[0][0]), satNeg(mkSatLit(v[0][0]))}), SatResult::Unsat);
    s.setConflictBudget(1);
    EXPECT_EQ(s.solve(), SatResult::Unknown);
}

TEST(Sat, ExternalStopTokenInterrupts) {
    // bindStop() shares one atomic across many solvers — the JobRace slot
    // token. A raised token interrupts at solve() entry; unbinding (or
    // lowering the token) restores normal operation.
    std::atomic<bool> token{false};
    SatSolver s;
    int a = s.newVar(), b = s.newVar();
    s.addBinary(mkSatLit(a), mkSatLit(b));
    s.bindStop(&token);
    token.store(true);
    EXPECT_EQ(s.solve(), SatResult::Interrupted);
    token.store(false);
    EXPECT_EQ(s.solve(), SatResult::Sat);
    s.bindStop(nullptr);
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

} // namespace
