// Cross-module integration tests beyond the Table III rows:
//  - parameterized full-pipeline sweeps (TEST_P) across ID widths
//  - CEX replay consistency between the formal engine and the simulator
//  - random simulation of the registered designs with assertion checking
//  - determinism of generation
#include <gtest/gtest.h>

#include <random>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "formal/replay.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace autosva;

// ---------------------------------------------------------------------------
// Parameterized pipeline sweep: a skid-buffer-like unit at several widths.
// ---------------------------------------------------------------------------

std::string echoRtl(int idw) {
    std::string w = std::to_string(idw);
    return R"(
module echo #(
  parameter ID_W = )" + w + R"(
) (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  txn: req -in> res
  */
  input  wire            req_val,
  output wire            req_ack,
  input  wire [ID_W-1:0] req_transid,
  output wire            res_val,
  output wire [ID_W-1:0] res_transid
);
  reg busy;
  reg [ID_W-1:0] id_q;
  assign req_ack = !busy;
  wire hsk = req_val && req_ack;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy <= 1'b0;
      id_q <= '0;
    end else begin
      if (hsk) begin
        busy <= 1'b1;
        id_q <= req_transid;
      end else begin
        busy <= 1'b0;
      end
    end
  end
  assign res_val = busy;
  assign res_transid = id_q;
endmodule
)";
}

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, EchoProvesAtEveryWidth) {
    util::DiagEngine diags;
    std::string rtl = echoRtl(GetParam());
    core::FormalTestbench ft = core::generateFT(rtl, {}, diags);
    auto report = core::verify({rtl}, ft, {}, diags);
    SCOPED_TRACE(report.str());
    EXPECT_TRUE(report.allProven()) << "ID_W=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(IdWidths, WidthSweep, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// CEX replay: the violation reported by the engine must be observable when
// the trace is replayed cycle-by-cycle on the simulator.
// ---------------------------------------------------------------------------

TEST(Integration, NocBufferDeadlockTraceReplays) {
    const auto& info = designs::design("noc_buffer");
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    vopts.paramOverrides["BUG"] = 1;
    auto report = core::verify(designs::rtlSources(info), ft, vopts, diags);
    const auto* live = report.find("as__mem_engine_noc_eventual_response");
    ASSERT_NE(live, nullptr);
    ASSERT_EQ(live->status, formal::Status::Failed);
    ASSERT_GE(live->trace.loopStart, 0);

    auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags);
    auto cycles = formal::replayTrace(*design, live->trace);
    ASSERT_EQ(static_cast<int>(cycles.size()), live->trace.length());
    // A VCD can be produced from the replay.
    std::string vcd = sim::traceToVcd(*design, cycles, "noc_buffer");
    EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CEX provenance: a failing property of a buggy design must cite the
// designer annotation (file:line) it was generated from, end to end —
// annotation -> GeneratedProperty -> AssertionItem -> Obligation ->
// PropertyResult -> report text.
// ---------------------------------------------------------------------------

TEST(Integration, FailingPropertyCitesOriginAnnotation) {
    // Line numbers matter: the transaction annotation sits on line 5.
    const char* rtl =
        "module buggy (\n"              // 1
        "  input  wire clk_i,\n"        // 2
        "  input  wire rst_ni,\n"       // 3
        "  /*AUTOSVA\n"                 // 4
        "  t: req -in> res\n"           // 5
        "  */\n"                        // 6
        "  input  wire req_val,\n"      // 7
        "  output wire res_val\n"       // 8
        ");\n"
        "  assign res_val = 1'b0;\n"    // The bug: requests are never answered.
        "endmodule\n";
    util::DiagEngine diags;
    core::AutoSvaOptions genOpts;
    genOpts.sourcePath = "buggy.sv";
    core::FormalTestbench ft = core::generateFT(rtl, genOpts, diags);

    // The generated liveness property carries the annotation location.
    bool sawProperty = false;
    for (const auto& p : ft.properties) {
        if (p.label != "as__t_eventual_response") continue;
        sawProperty = true;
        EXPECT_EQ(p.sourceLoc.file, "buggy.sv");
        EXPECT_EQ(p.sourceLoc.line, 5u);
    }
    ASSERT_TRUE(sawProperty);

    core::VerifyOptions vopts;
    vopts.sourcePaths = {"buggy.sv"};
    auto report = core::verify({rtl}, ft, vopts, diags);
    const auto* live = report.find("as__t_eventual_response");
    ASSERT_NE(live, nullptr);
    ASSERT_EQ(live->status, formal::Status::Failed);
    // The elaborated obligation kept the annotation loc...
    EXPECT_EQ(live->loc.file, "buggy.sv");
    EXPECT_EQ(live->loc.line, 5u);
    // ...and the rendered report surfaces it next to the failure.
    EXPECT_NE(report.str().find("buggy.sv:5"), std::string::npos) << report.str();
    // The verification path consumed the generated AST directly: zero
    // re-lex/re-parse of generated property text.
    EXPECT_EQ(report.frontend.generatedTextReparses, 0u);
    EXPECT_EQ(report.frontend.generatedAstReused, 1u);
    EXPECT_EQ(report.frontend.sourcesParsed, 1u);
}

// ---------------------------------------------------------------------------
// Random simulation of the fixed designs with the generated properties
// bound: no safety violations may occur (liveness is not simulated).
// ---------------------------------------------------------------------------

class DesignSim : public ::testing::TestWithParam<const char*> {};

TEST_P(DesignSim, FixedDesignCleanUnderRandomStimulus) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    core::VerifyOptions vopts;
    if (info.hasBugParam) vopts.paramOverrides["BUG"] = 0;
    auto design = core::elaborateWithFT(designs::rtlSources(info), ft, vopts, diags,
                                        /*tieReset=*/false);
    sim::Simulator simulator(*design, sim::Simulator::XMode::TwoState);
    simulator.enableChecking(true);
    std::mt19937_64 rng(2021);
    // Symbolic tracking variables are rigid only under their stability
    // assumption; a well-formed testbench (like the paper's VCS binding)
    // holds them constant, so the driver must too.
    std::vector<ir::NodeId> symbolics;
    for (ir::NodeId input : design->inputs())
        if (design->node(input).name.find("symb_") != std::string::npos)
            symbolics.push_back(input);
    for (int i = 0; i < 1500; ++i) {
        simulator.randomizeInputs(rng);
        for (ir::NodeId symb : symbolics) simulator.setInput(symb, 1);
        simulator.setInput("rst_ni", i == 0 ? 0 : 1);
        simulator.step();
    }
    std::string violations;
    for (const auto& v : simulator.violations()) {
        // Constraint violations are environment misbehaviour — the random
        // driver does not respect assumptions, so only assertion failures
        // (SafetyBad) count against the design.
        if (v.kind == ir::Obligation::Kind::SafetyBad)
            violations += v.obligationName + "@" + std::to_string(v.cycle) + " ";
    }
    EXPECT_TRUE(violations.empty()) << violations;
}

// Only designs whose environment assumptions an unconstrained random driver
// cannot break qualify: modules with *outgoing* transactions (PTW, I$, L1.5)
// count environment responses, and random spurious responses violate the
// had-a-request assumption their outstanding-counter assertions rely on.
// Those are exercised with proper constrained stimulus in
// examples/simulation_reuse instead.
INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignSim,
                         ::testing::Values("ariane_tlb", "mem_engine"));

// ---------------------------------------------------------------------------
// Determinism: generating twice yields byte-identical artifacts.
// ---------------------------------------------------------------------------

TEST(Integration, GenerationIsDeterministic) {
    const auto& info = designs::design("ariane_lsu");
    util::DiagEngine diags;
    auto ft1 = core::generateFT(info.rtl, {}, diags);
    auto ft2 = core::generateFT(info.rtl, {}, diags);
    EXPECT_EQ(ft1.propertyFile, ft2.propertyFile);
    EXPECT_EQ(ft1.bindFile, ft2.bindFile);
    EXPECT_EQ(ft1.jasperTcl, ft2.jasperTcl);
    EXPECT_EQ(ft1.sbyFile, ft2.sbyFile);
}

// ---------------------------------------------------------------------------
// ASSERT_INPUTS (-AS) round trip through the full pipeline: with every
// assumption flipped to an assertion, the echo DUT must *fail* the
// transid-unique assertion (its environment may reuse IDs).
// ---------------------------------------------------------------------------

TEST(Integration, AssertInputsFlipsVerdicts) {
    const char* rtl = R"(
module dut (
  input  wire clk_i,
  input  wire rst_ni,
  /*AUTOSVA
  t: req -in> res
  [1:0] req_transid_unique = req_id
  [1:0] res_transid = res_id
  */
  input  wire       req_val,
  output wire       req_ack,
  input  wire [1:0] req_id,
  output wire       res_val,
  output wire [1:0] res_id
);
  assign req_ack = 1'b1;
  reg v_q;
  reg [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      v_q <= 1'b0;
      id_q <= '0;
    end else begin
      v_q <= req_val;
      id_q <= req_id;
    end
  end
  assign res_val = v_q;
  assign res_id = id_q;
endmodule
)";
    util::DiagEngine diags;
    core::AutoSvaOptions opts;
    opts.assertInputs = true;
    core::FormalTestbench ft = core::generateFT(rtl, opts, diags);
    auto report = core::verify({rtl}, ft, {}, diags);
    const auto* unique = report.find("as__t_transid_unique");
    ASSERT_NE(unique, nullptr);
    // With ack always high and a free environment, two requests with the
    // same ID can be outstanding: the (now asserted) uniqueness fails.
    EXPECT_EQ(unique->status, formal::Status::Failed);
}

} // namespace
