// Round-trip tests: parse -> print -> parse must converge (the printed
// normalized form reparses to an identical print). Run over handwritten
// snippets, every registered design, and every generated property file.
#include <gtest/gtest.h>

#include "core/autosva.hpp"
#include "designs/designs.hpp"
#include "verilog/parser.hpp"
#include "verilog/printer.hpp"

namespace {

using namespace autosva;
using verilog::Parser;

void roundTrip(const std::string& source, const std::string& label) {
    verilog::SourceFile first = Parser::parseSource(source, label);
    std::string printed1 = verilog::printSourceFile(first);
    verilog::SourceFile second = Parser::parseSource(printed1, label + ".rt");
    std::string printed2 = verilog::printSourceFile(second);
    EXPECT_EQ(printed1, printed2) << label;
}

TEST(Printer, SimpleModuleRoundTrip) {
    roundTrip(R"(
module m #(parameter W = 4) (
  input  wire clk,
  input  wire rst_n,
  input  wire [W-1:0] d,
  output reg  [W-1:0] q
);
  localparam HALF = W / 2;
  wire [W-1:0] inv = ~d;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= '0;
    else if (d[0]) q <= inv;
    else q <= d;
  end
endmodule)",
              "simple");
}

TEST(Printer, CaseAndInstanceRoundTrip) {
    roundTrip(R"(
module sub (input wire a, output wire y);
  assign y = !a;
endmodule
module top (input wire [1:0] s, input wire a, output reg y, output wire z);
  sub #(.X(2)) s0 (.a(a), .y(z));
  always_comb begin
    case (s)
      2'd0: y = a;
      2'd1, 2'd2: y = !a;
      default: y = 1'b0;
    endcase
  end
endmodule)",
              "caseinst");
}

TEST(Printer, AssertionsRoundTrip) {
    roundTrip(R"(
module p (input wire clk_i, input wire rst_ni, input wire a, input wire b);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);
  as__x: assert property (a |-> s_eventually (b));
  am__y: assume property (a |=> !a);
  co__z: cover property (a && b);
endmodule
bind p p_checker chk (.*);
)",
              "assertions");
}

class DesignRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DesignRoundTrip, DesignSourcesRoundTrip) {
    const auto& info = designs::design(GetParam());
    roundTrip(info.rtl, info.name);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignRoundTrip,
                         ::testing::Values("ariane_ptw", "ariane_tlb", "ariane_mmu",
                                           "ariane_lsu", "ariane_icache", "noc_buffer",
                                           "l15_noc_wrapper", "mem_engine"));

class GeneratedRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratedRoundTrip, PropertyFilesRoundTrip) {
    const auto& info = designs::design(GetParam());
    util::DiagEngine diags;
    core::FormalTestbench ft = core::generateFT(info.rtl, {}, diags);
    roundTrip(ft.propertyFile, info.name + "_prop");
    roundTrip(ft.bindFile, info.name + "_bind");
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, GeneratedRoundTrip,
                         ::testing::Values("ariane_ptw", "ariane_tlb", "ariane_mmu",
                                           "ariane_lsu", "ariane_icache", "noc_buffer",
                                           "l15_noc_wrapper", "mem_engine"));

} // namespace
