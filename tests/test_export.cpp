// AIGER / DIMACS export tests: well-formedness and semantic spot checks.
#include <gtest/gtest.h>

#include <sstream>

#include "formal/bitblast.hpp"
#include "formal/export.hpp"
#include "rtlir/elaborate.hpp"

namespace {

using namespace autosva;
using namespace autosva::formal;

std::unique_ptr<ir::Design> elab(const std::string& src) {
    util::DiagEngine diags;
    ir::ElabOptions opts;
    opts.tieOffs["rst_ni"] = 1;
    return ir::elaborateSources({src}, "m", diags, opts);
}

const char* kCounterRtl = R"(
module m (input wire clk_i, input wire rst_ni, input wire en);
  reg [2:0] q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 3'd0;
    else if (en) q <= q + 3'd1;
  end
  as__bound: assert property (q != 3'd7);
  am__slow: assume property (en |=> !en);
  as__live: assert property (en |-> s_eventually (q != 3'd0));
  co__mid: cover property (q == 3'd3);
endmodule
)";

TEST(Export, AigerHeaderShapeAndCounts) {
    auto design = elab(kCounterRtl);
    std::string aiger = designToAiger(*design);
    std::istringstream in(aiger);
    std::string magic;
    int maxVar, inputs, latches, outputs, ands, bads, constrs, justice, fair;
    in >> magic >> maxVar >> inputs >> latches >> outputs >> ands >> bads >> constrs >>
        justice >> fair;
    EXPECT_EQ(magic, "aag");
    EXPECT_EQ(outputs, 0);
    EXPECT_GE(inputs, 2);       // en + tied inputs may fold; at least en & something.
    EXPECT_GE(latches, 3 + 2);  // Counter bits + monitor registers.
    EXPECT_EQ(bads, 2);         // as__bound + the cover (exported as bad).
    EXPECT_EQ(constrs, 1);      // am__slow.
    EXPECT_EQ(justice, 1);      // as__live.
    EXPECT_EQ(fair, 0);
    EXPECT_GT(ands, 0);
    EXPECT_GE(maxVar, inputs + latches + ands);
    // Symbol table mentions the counter bits.
    EXPECT_NE(aiger.find("q$q[0]"), std::string::npos);
    // Comment section names the properties.
    EXPECT_NE(aiger.find("as__bound"), std::string::npos);
}

TEST(Export, AigerLatchLinesWellFormed) {
    auto design = elab(kCounterRtl);
    formal::BitBlast bb = bitblast(*design);
    AigerObligations ob;
    std::string aiger = toAiger(bb.aig, ob);
    std::istringstream in(aiger);
    std::string header;
    std::getline(in, header);
    int maxVar, inputs, latches;
    sscanf(header.c_str(), "aag %d %d %d", &maxVar, &inputs, &latches);
    // Skip input lines; then each latch line must have 2 or 3 fields with
    // even current-state literal.
    std::string line;
    for (int i = 0; i < inputs; ++i) std::getline(in, line);
    for (int i = 0; i < latches; ++i) {
        std::getline(in, line);
        std::istringstream ls(line);
        long cur = -1, next = -1;
        ls >> cur >> next;
        EXPECT_GE(cur, 2);
        EXPECT_EQ(cur % 2, 0) << line; // Latch definitions are positive literals.
        EXPECT_GE(next, 0) << line;
    }
}

TEST(Export, DimacsSatisfiabilityMatchesBmc) {
    // The counter reaches 7 only if en is allowed to stay high; with the
    // am__slow constraint (en every other cycle), 7 needs >= 14 steps.
    auto design = elab(kCounterRtl);
    formal::BitBlast bb = bitblast(*design);
    AigLit bad = kAigFalse;
    std::vector<AigLit> constraints;
    for (const auto& o : design->obligations()) {
        if (o.name == "as__bound") bad = bb.lit(o.net);
        if (o.kind == ir::Obligation::Kind::Constraint) constraints.push_back(bb.lit(o.net));
    }
    ASSERT_NE(bad, kAigFalse);

    std::string shallow = bmcToDimacs(bb.aig, bad, constraints, 6);
    std::string deep = bmcToDimacs(bb.aig, bad, constraints, 20);

    // Header sanity.
    EXPECT_EQ(shallow.find("c autosva-cpp"), 0u);
    EXPECT_NE(shallow.find("p cnf "), std::string::npos);
    // Deep instance has strictly more clauses.
    auto clauseCount = [](const std::string& dimacs) {
        size_t p = dimacs.find("p cnf ");
        int vars = 0, clauses = 0;
        sscanf(dimacs.c_str() + p, "p cnf %d %d", &vars, &clauses);
        return clauses;
    };
    EXPECT_GT(clauseCount(deep), clauseCount(shallow));
    // Every clause line ends with 0.
    std::istringstream in(shallow);
    std::string line;
    bool afterHeader = false;
    while (std::getline(in, line)) {
        if (line.rfind("p cnf", 0) == 0) {
            afterHeader = true;
            continue;
        }
        if (!afterHeader || line.empty() || line[0] == 'c') continue;
        EXPECT_EQ(line.substr(line.size() - 1), "0") << line;
    }
}

TEST(Export, CoverExportedAsBad) {
    auto design = elab(kCounterRtl);
    std::string aiger = designToAiger(*design);
    EXPECT_NE(aiger.find("cover:co__mid"), std::string::npos);
}

} // namespace
