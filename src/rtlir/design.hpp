// Word-level RTL intermediate representation: a flat sea-of-nodes netlist
// with registers, produced by the elaborator and consumed by the simulator
// and the formal bit-blaster. All signals are unsigned and at most 64 bits.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/source_loc.hpp"

namespace autosva::ir {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

enum class Op : uint8_t {
    Const,  ///< Literal; value in `cval`.
    Input,  ///< Free primary input (or formal cut point / symbolic variable).
    Reg,    ///< State element; `next()` and optional init value.
    Buf,    ///< Named forwarding node (signal placeholder during elaboration).

    Not, And, Or, Xor,          // Bitwise, equal widths.
    Add, Sub, Mul,              // Unsigned arithmetic, result width = max input.
    Div, Mod,                   // Constant divisor only (checked at build).
    Eq, Ne, Ult, Ule,           // 1-bit results.
    Shl, Shr,                   // Left operand width; dynamic amount allowed.
    Mux,                        // operands: sel(1-bit), thenVal, elseVal.
    Concat,                     // operands MSB-first.
    Slice,                      // operands[0][lo +: width].
    ZExt,                       // zero extension to `width`.
    RedAnd, RedOr, RedXor,      // 1-bit reductions.
    IsUnknown,                  // 1-bit; 0 in formal, X-plane in simulation.
};

struct Node {
    Op op = Op::Const;
    int width = 1;
    uint64_t cval = 0;   ///< Const value.
    int lo = 0;          ///< Slice low bit.
    std::vector<NodeId> ops;
    std::string name;    ///< Input/Reg/Buf name (flattened hierarchical).

    // Reg-only fields.
    NodeId next = kInvalidNode;
    uint64_t initValue = 0;
    bool hasInit = false; ///< False = symbolic initial state.
};

/// A verification obligation attached to the design by assertion lowering.
struct Obligation {
    enum class Kind {
        SafetyBad,   ///< 1-bit net; assertion fails when it becomes 1.
        Constraint,  ///< 1-bit net; assumed to hold (be 1) in every cycle.
        Justice,     ///< 1-bit net; asserted to hold infinitely often.
        Fairness,    ///< 1-bit net; assumed to hold infinitely often.
        Cover,       ///< 1-bit net; reachability target.
    };
    Kind kind = Kind::SafetyBad;
    std::string name;
    NodeId net = kInvalidNode;
    bool xprop = false; ///< X-propagation check (skipped by formal engines).
    util::SourceLoc loc;
};

/// Flat elaborated design. Construction goes through the mk* helpers which
/// perform local constant folding and width checking.
class Design {
public:
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
    [[nodiscard]] Node& node(NodeId id) { return nodes_[id]; }
    [[nodiscard]] size_t numNodes() const { return nodes_.size(); }

    [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
    [[nodiscard]] const std::vector<NodeId>& regs() const { return regs_; }
    [[nodiscard]] const std::vector<Obligation>& obligations() const { return obligations_; }
    [[nodiscard]] std::vector<Obligation>& obligations() { return obligations_; }

    /// Named signal table (flattened names -> node). Used for trace display,
    /// wildcard binds, and tests.
    [[nodiscard]] const std::unordered_map<std::string, NodeId>& signals() const {
        return signals_;
    }
    void nameSignal(const std::string& name, NodeId id) { signals_[name] = id; }
    [[nodiscard]] NodeId findSignal(const std::string& name) const {
        auto it = signals_.find(name);
        return it == signals_.end() ? kInvalidNode : it->second;
    }

    // -- Node constructors (with local folding) ----------------------------
    NodeId mkConst(int width, uint64_t value);
    NodeId mkInput(const std::string& name, int width);
    NodeId mkReg(const std::string& name, int width);
    void setRegNext(NodeId reg, NodeId next);
    void setRegInit(NodeId reg, uint64_t value);
    NodeId mkBuf(const std::string& name, int width);
    void setBufInput(NodeId buf, NodeId value);
    /// Finalization helpers: an undriven Buf becomes a free input (formal
    /// cut point / symbolic variable) or a tied-off constant.
    void convertBufToInput(NodeId buf);
    void convertBufToConst(NodeId buf, uint64_t value);

    NodeId mkNot(NodeId a);
    NodeId mkAnd(NodeId a, NodeId b);
    NodeId mkOr(NodeId a, NodeId b);
    NodeId mkXor(NodeId a, NodeId b);
    NodeId mkAdd(NodeId a, NodeId b);
    NodeId mkSub(NodeId a, NodeId b);
    NodeId mkMul(NodeId a, NodeId b);
    NodeId mkDiv(NodeId a, NodeId b);
    NodeId mkMod(NodeId a, NodeId b);
    NodeId mkEq(NodeId a, NodeId b);
    NodeId mkNe(NodeId a, NodeId b);
    NodeId mkUlt(NodeId a, NodeId b);
    NodeId mkUle(NodeId a, NodeId b);
    NodeId mkShl(NodeId a, NodeId amount);
    NodeId mkShr(NodeId a, NodeId amount);
    NodeId mkMux(NodeId sel, NodeId thenVal, NodeId elseVal);
    NodeId mkConcat(const std::vector<NodeId>& partsMsbFirst);
    NodeId mkSlice(NodeId a, int lo, int width);
    NodeId mkZExt(NodeId a, int width);
    NodeId mkRedAnd(NodeId a);
    NodeId mkRedOr(NodeId a);
    NodeId mkRedXor(NodeId a);
    NodeId mkIsUnknown(NodeId a);

    /// Reduce to 1 bit (identity for 1-bit nets, RedOr otherwise).
    NodeId mkBool(NodeId a);
    /// Zero-extend or truncate to exactly `width`.
    NodeId mkResize(NodeId a, int width);

    void addObligation(Obligation ob) { obligations_.push_back(std::move(ob)); }

    [[nodiscard]] int width(NodeId id) const { return nodes_[id].width; }
    [[nodiscard]] bool isConst(NodeId id) const { return nodes_[id].op == Op::Const; }
    [[nodiscard]] uint64_t constValue(NodeId id) const { return nodes_[id].cval; }

    /// Topological order over combinational edges (Reg next-edges excluded).
    /// Throws util::FrontendError on a combinational cycle.
    [[nodiscard]] std::vector<NodeId> topoOrder() const;

    /// Total state bits (sum of register widths).
    [[nodiscard]] int stateBits() const;

private:
    NodeId add(Node n);
    NodeId binary(Op op, NodeId a, NodeId b, int width);

    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> regs_;
    std::vector<Obligation> obligations_;
    std::unordered_map<std::string, NodeId> signals_;
};

[[nodiscard]] inline uint64_t maskForWidth(int width) {
    return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

} // namespace autosva::ir
