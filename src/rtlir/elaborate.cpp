#include "rtlir/elaborate.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "verilog/parser.hpp"

namespace autosva::ir {

using util::FrontendError;
using util::SourceLoc;
namespace vl = autosva::verilog;

namespace {

[[nodiscard]] int bitsFor(uint64_t value) {
    int bits = 1;
    while (value >> bits) ++bits;
    return bits;
}

[[nodiscard]] int clog2(uint64_t value) {
    if (value <= 1) return 0;
    int bits = 0;
    uint64_t v = value - 1;
    while (v) {
        ++bits;
        v >>= 1;
    }
    return bits;
}

struct Entry {
    enum class Kind { Signal, Param, Memory };
    Kind kind = Kind::Signal;
    NodeId buf = kInvalidNode;      // Signal.
    uint64_t paramValue = 0;        // Param.
    std::vector<NodeId> elements;   // Memory element bufs.
    int width = 1;                  // Signal / element width.
};

struct Scope {
    std::string prefix;
    const vl::Module* mod = nullptr;
    std::unordered_map<std::string, Entry> entries;

    [[nodiscard]] const Entry* find(const std::string& name) const {
        auto it = entries.find(name);
        return it == entries.end() ? nullptr : &it->second;
    }
};

struct DriverPart {
    int lo = 0;
    int width = 0;
    NodeId value = kInvalidNode;
    SourceLoc loc;
};

/// Values pending procedural assignment, keyed by signal name or memory
/// element key ("name@idx").
using AssignMap = std::map<std::string, NodeId>;

/// Constant substitutions used to re-evaluate always_ff bodies with the
/// reset active, extracting register initial values.
using Overlay = std::unordered_map<std::string, uint64_t>;

[[nodiscard]] std::string memKey(const std::string& name, int index) {
    return name + "@" + std::to_string(index);
}

/// Decomposed property shape supported by the monitor compiler.
struct PropShape {
    const vl::Expr* ante = nullptr; // Null = no antecedent (always-checked).
    int delay = 0;                  // Cycles between antecedent and consequent.
    bool eventually = false;
    const vl::Expr* cons = nullptr;
};

} // namespace

struct Elaborator::Impl {
    Impl(std::vector<const vl::SourceFile*> files, util::DiagEngine& diags)
        : files_(std::move(files)), diags_(diags) {
        for (const auto* f : files_) {
            for (const auto& m : f->modules) {
                if (!moduleMap_.emplace(m->name, m.get()).second)
                    throw FrontendError(m->loc, "duplicate module '" + m->name + "'");
            }
            for (const auto& b : f->binds) binds_.push_back(&b);
        }
    }

    std::unique_ptr<Design> run(const std::string& topName, const ElabOptions& opts) {
        opts_ = &opts;
        design_ = std::make_unique<Design>();
        const vl::Module* top = findModule(topName, {});
        std::unordered_map<std::string, uint64_t> overrides = opts.paramOverrides;
        elabModule(*top, "", overrides);
        finalize();
        return std::move(design_);
    }

    // -- Module lookup ------------------------------------------------------

    const vl::Module* findModule(const std::string& name, SourceLoc loc) {
        auto it = moduleMap_.find(name);
        if (it == moduleMap_.end())
            throw FrontendError(loc, "unknown module '" + name + "'");
        return it->second;
    }

    // -- Scope construction --------------------------------------------------

    std::unique_ptr<Scope> elabModule(const vl::Module& mod, const std::string& prefix,
                                      const std::unordered_map<std::string, uint64_t>& overrides) {
        auto scope = std::make_unique<Scope>();
        scope->prefix = prefix;
        scope->mod = &mod;

        // Header parameters (with overrides).
        for (const auto& p : mod.params) {
            Entry e;
            e.kind = Entry::Kind::Param;
            auto it = overrides.find(p.name);
            e.paramValue = it != overrides.end() ? it->second : evalConst(*scope, *p.value);
            scope->entries.emplace(p.name, std::move(e));
        }

        // Ports.
        for (const auto& port : mod.ports) declareSignalOrMemory(*scope, port.name, port.packed,
                                                                 std::nullopt, port.loc);

        // First pass: body params and net declarations (in order).
        for (const auto& item : mod.items) {
            if (item.kind == vl::ModuleItem::Kind::Param) {
                const auto& p = *item.param;
                if (scope->find(p.name))
                    throw FrontendError(p.loc, "duplicate declaration of '" + p.name + "'");
                Entry e;
                e.kind = Entry::Kind::Param;
                auto it = overrides.find(p.name);
                e.paramValue = (!p.isLocal && it != overrides.end())
                                   ? it->second
                                   : evalConst(*scope, *p.value);
                scope->entries.emplace(p.name, std::move(e));
            } else if (item.kind == vl::ModuleItem::Kind::Net) {
                const auto& n = *item.net;
                declareSignalOrMemory(*scope, n.name, n.packed, n.unpacked ? std::optional(
                    std::pair{n.unpacked->msb.get(), n.unpacked->lsb.get()}) : std::nullopt, n.loc);
                if (n.init) {
                    const Entry* e = scope->find(n.name);
                    addDriverPart(e->buf, 0, e->width,
                                  resize(evalExpr(*scope, *n.init, nullptr, nullptr), e->width),
                                  n.loc);
                }
            }
        }

        // Second pass: behavioral items.
        for (const auto& item : mod.items) {
            switch (item.kind) {
            case vl::ModuleItem::Kind::Param:
            case vl::ModuleItem::Kind::Net:
                break;
            case vl::ModuleItem::Kind::ContAssign: {
                const auto& a = *item.contAssign;
                NodeId rhs = evalExpr(*scope, *a.rhs, nullptr, nullptr);
                assignLValue(*scope, *a.lhs, rhs, a.loc);
                break;
            }
            case vl::ModuleItem::Kind::Always:
                elabAlways(*scope, *item.always);
                break;
            case vl::ModuleItem::Kind::Instance:
                elabInstance(*scope, *item.instance);
                break;
            case vl::ModuleItem::Kind::Assertion:
                lowerAssertion(*scope, *item.assertion);
                break;
            case vl::ModuleItem::Kind::GenFor:
                throw FrontendError({}, "generate blocks are not supported");
            case vl::ModuleItem::Kind::Comment:
                break; // Projection-only; no semantics.
            }
        }

        // Bind directives targeting this module.
        for (const auto* bind : binds_) {
            if (bind->targetModule != mod.name) continue;
            vl::Instance pseudo;
            pseudo.moduleName = bind->boundModule;
            pseudo.instName = bind->instName;
            pseudo.wildcardPorts = bind->wildcardPorts;
            pseudo.loc = bind->loc;
            for (const auto& conn : bind->portAssigns) {
                vl::NamedConnection c;
                c.name = conn.name;
                c.expr = conn.expr ? vl::cloneExpr(*conn.expr) : nullptr;
                c.loc = conn.loc;
                pseudo.portAssigns.push_back(std::move(c));
            }
            elabInstance(*scope, pseudo);
        }
        return scope;
    }

    void declareSignalOrMemory(Scope& scope, const std::string& name,
                               const std::optional<vl::Range>& packed,
                               std::optional<std::pair<const vl::Expr*, const vl::Expr*>> unpacked,
                               SourceLoc loc) {
        if (scope.find(name))
            throw FrontendError(loc, "duplicate declaration of '" + name + "'");
        int width = 1;
        if (packed) {
            uint64_t msb = evalConst(scope, *packed->msb);
            uint64_t lsb = evalConst(scope, *packed->lsb);
            if (lsb != 0) throw FrontendError(loc, "packed ranges must be [N:0]");
            if (msb >= 64) throw FrontendError(loc, "signals wider than 64 bits are not supported");
            width = static_cast<int>(msb) + 1;
        }
        Entry e;
        e.width = width;
        if (unpacked) {
            uint64_t lo = evalConst(scope, *unpacked->first);
            uint64_t hi = evalConst(scope, *unpacked->second);
            if (lo > hi) std::swap(lo, hi);
            if (lo != 0) throw FrontendError(loc, "unpacked ranges must start at 0");
            uint64_t depth = hi + 1;
            if (depth > static_cast<uint64_t>(opts_->maxMemoryDepth))
                throw FrontendError(loc, "memory deeper than supported bound");
            e.kind = Entry::Kind::Memory;
            for (uint64_t i = 0; i < depth; ++i) {
                std::string elemName = scope.prefix + name + "[" + std::to_string(i) + "]";
                NodeId buf = design_->mkBuf(elemName, width);
                design_->nameSignal(elemName, buf);
                e.elements.push_back(buf);
            }
        } else {
            e.kind = Entry::Kind::Signal;
            e.buf = design_->mkBuf(scope.prefix + name, width);
            design_->nameSignal(scope.prefix + name, e.buf);
        }
        scope.entries.emplace(name, std::move(e));
    }

    // -- Constant evaluation --------------------------------------------------

    uint64_t evalConst(Scope& scope, const vl::Expr& e) {
        NodeId n = evalExpr(scope, e, nullptr, nullptr);
        if (!design_->isConst(n))
            throw FrontendError(e.loc, "expression must be constant");
        return design_->constValue(n);
    }

    // -- Expression evaluation -------------------------------------------------

    NodeId resize(NodeId n, int width) { return widen(n, width); }

    /// Reads the current value of a plain signal for read-modify-write and
    /// branch-merge purposes; prefers a pending procedural value.
    NodeId currentValue(const Entry& e, const std::string& key, const AssignMap* map) {
        if (map) {
            auto it = map->find(key);
            if (it != map->end()) return it->second;
        }
        return e.buf;
    }
    NodeId currentElement(const Entry& e, const std::string& name, int idx, const AssignMap* map) {
        if (map) {
            auto it = map->find(memKey(name, idx));
            if (it != map->end()) return it->second;
        }
        return e.elements[static_cast<size_t>(idx)];
    }

    NodeId evalExpr(Scope& scope, const vl::Expr& e, const AssignMap* updates,
                    const Overlay* overlay) {
        auto& d = *design_;
        switch (e.kind) {
        case vl::Expr::Kind::Number: {
            if (e.isUnbasedUnsized) {
                // Width adapts at resize(); remember all-ones via maximal value.
                NodeId c = d.mkConst(1, e.intValue);
                unbasedOnes_.insert(c);
                return e.intValue ? c : d.mkConst(1, 0);
            }
            // Unsized literals are 32-bit integers per the LRM (wider if the
            // value needs it); sized literals keep their declared width.
            int width = e.numWidth > 0 ? e.numWidth : std::max(32, bitsFor(e.intValue));
            return d.mkConst(width, e.intValue);
        }
        case vl::Expr::Kind::Ident: {
            const Entry* entry = scope.find(e.name);
            if (!entry) throw FrontendError(e.loc, "unknown identifier '" + e.name + "'");
            if (overlay) {
                auto it = overlay->find(e.name);
                if (it != overlay->end()) return d.mkConst(entry->width, it->second);
            }
            switch (entry->kind) {
            case Entry::Kind::Param:
                return d.mkConst(std::max(32, bitsFor(entry->paramValue)), entry->paramValue);
            case Entry::Kind::Signal:
                return currentValue(*entry, e.name, updates);
            case Entry::Kind::Memory:
                throw FrontendError(e.loc, "memory '" + e.name + "' requires an index");
            }
            break;
        }
        case vl::Expr::Kind::Unary: {
            NodeId a = evalExpr(scope, *e.operands[0], updates, overlay);
            switch (e.unaryOp) {
            case vl::UnaryOp::Plus: return a;
            case vl::UnaryOp::Minus: return d.mkSub(d.mkConst(d.width(a), 0), a);
            case vl::UnaryOp::LogicNot: return d.mkNot(d.mkBool(a));
            case vl::UnaryOp::BitNot: return d.mkNot(a);
            case vl::UnaryOp::RedAnd: return d.mkRedAnd(a);
            case vl::UnaryOp::RedOr: return d.mkRedOr(a);
            case vl::UnaryOp::RedXor: return d.mkRedXor(a);
            case vl::UnaryOp::RedNand: return d.mkNot(d.mkRedAnd(a));
            case vl::UnaryOp::RedNor: return d.mkNot(d.mkRedOr(a));
            case vl::UnaryOp::RedXnor: return d.mkNot(d.mkRedXor(a));
            }
            break;
        }
        case vl::Expr::Kind::Binary: {
            NodeId a = evalExpr(scope, *e.operands[0], updates, overlay);
            NodeId b = evalExpr(scope, *e.operands[1], updates, overlay);
            using BO = vl::BinaryOp;
            if (e.binaryOp == BO::LogicAnd) return d.mkAnd(d.mkBool(a), d.mkBool(b));
            if (e.binaryOp == BO::LogicOr) return d.mkOr(d.mkBool(a), d.mkBool(b));
            if (e.binaryOp == BO::Shl || e.binaryOp == BO::Shr) {
                return e.binaryOp == BO::Shl ? d.mkShl(a, b) : d.mkShr(a, b);
            }
            int w = std::max(d.width(a), d.width(b));
            a = widen(a, w);
            b = widen(b, w);
            switch (e.binaryOp) {
            case BO::Add: return d.mkAdd(a, b);
            case BO::Sub: return d.mkSub(a, b);
            case BO::Mul: return d.mkMul(a, b);
            case BO::Div: return d.mkDiv(a, b);
            case BO::Mod: return d.mkMod(a, b);
            case BO::And: return d.mkAnd(a, b);
            case BO::Or: return d.mkOr(a, b);
            case BO::Xor: return d.mkXor(a, b);
            case BO::Xnor: return d.mkNot(d.mkXor(a, b));
            case BO::Eq: return d.mkEq(a, b);
            case BO::Ne: return d.mkNe(a, b);
            case BO::Lt: return d.mkUlt(a, b);
            case BO::Le: return d.mkUle(a, b);
            case BO::Gt: return d.mkUlt(b, a);
            case BO::Ge: return d.mkUle(b, a);
            default: break;
            }
            break;
        }
        case vl::Expr::Kind::Ternary: {
            NodeId c = d.mkBool(evalExpr(scope, *e.operands[0], updates, overlay));
            NodeId t = evalExpr(scope, *e.operands[1], updates, overlay);
            NodeId f = evalExpr(scope, *e.operands[2], updates, overlay);
            int w = std::max(d.width(t), d.width(f));
            return d.mkMux(c, widen(t, w), widen(f, w));
        }
        case vl::Expr::Kind::Index: {
            const vl::Expr& base = *e.operands[0];
            if (base.kind == vl::Expr::Kind::Ident) {
                const Entry* entry = scope.find(base.name);
                if (entry && entry->kind == Entry::Kind::Memory) {
                    NodeId idx = evalExpr(scope, *e.operands[1], updates, overlay);
                    if (d.isConst(idx)) {
                        uint64_t i = d.constValue(idx);
                        if (i >= entry->elements.size())
                            throw FrontendError(e.loc, "memory index out of range");
                        return currentElement(*entry, base.name, static_cast<int>(i), updates);
                    }
                    NodeId result = currentElement(*entry, base.name, 0, updates);
                    for (size_t i = 1; i < entry->elements.size(); ++i) {
                        NodeId hit = d.mkEq(widen(idx, std::max(d.width(idx), bitsFor(i))),
                                            d.mkConst(std::max(d.width(idx), bitsFor(i)), i));
                        result = d.mkMux(hit, currentElement(*entry, base.name,
                                                             static_cast<int>(i), updates),
                                         result);
                    }
                    return result;
                }
            }
            NodeId baseVal = evalExpr(scope, base, updates, overlay);
            NodeId idx = evalExpr(scope, *e.operands[1], updates, overlay);
            if (d.isConst(idx)) {
                uint64_t i = d.constValue(idx);
                if (i >= static_cast<uint64_t>(d.width(baseVal)))
                    throw FrontendError(e.loc, "bit index out of range");
                return d.mkSlice(baseVal, static_cast<int>(i), 1);
            }
            return d.mkSlice(d.mkShr(baseVal, idx), 0, 1);
        }
        case vl::Expr::Kind::Range: {
            NodeId baseVal = evalExpr(scope, *e.operands[0], updates, overlay);
            uint64_t msb = evalConst(scope, *e.operands[1]);
            uint64_t lsb = evalConst(scope, *e.operands[2]);
            if (msb < lsb || msb >= static_cast<uint64_t>(d.width(baseVal)))
                throw FrontendError(e.loc, "part select out of range");
            return d.mkSlice(baseVal, static_cast<int>(lsb), static_cast<int>(msb - lsb + 1));
        }
        case vl::Expr::Kind::Concat: {
            std::vector<NodeId> parts;
            parts.reserve(e.operands.size());
            for (const auto& op : e.operands)
                parts.push_back(evalExpr(scope, *op, updates, overlay));
            return d.mkConcat(parts);
        }
        case vl::Expr::Kind::Replicate: {
            uint64_t count = evalConst(scope, *e.operands[0]);
            if (count == 0 || count > 64) throw FrontendError(e.loc, "bad replication count");
            NodeId body = evalExpr(scope, *e.operands[1], updates, overlay);
            std::vector<NodeId> parts(count, body);
            return d.mkConcat(parts);
        }
        case vl::Expr::Kind::Call:
            return evalCall(scope, e, updates, overlay);
        }
        throw FrontendError(e.loc, "unsupported expression");
    }

    /// Zero-extends, honouring '1 literals (which stretch to all-ones).
    NodeId widen(NodeId n, int width) {
        if (unbasedOnes_.count(n) && design_->width(n) < width)
            return design_->mkConst(width, maskForWidth(width));
        return design_->mkResize(n, width);
    }

    NodeId pastValid() {
        if (pastValid_ == kInvalidNode) {
            pastValid_ = design_->mkReg("__past_valid", 1);
            design_->setRegInit(pastValid_, 0);
            design_->setRegNext(pastValid_, design_->mkConst(1, 1));
        }
        return pastValid_;
    }

    NodeId pastOf(NodeId n, int cycles) {
        NodeId cur = n;
        for (int i = 0; i < cycles; ++i) {
            NodeId reg = design_->mkReg("__past" + std::to_string(pastCounter_++), design_->width(cur));
            design_->setRegInit(reg, 0);
            design_->setRegNext(reg, cur);
            cur = reg;
        }
        return cur;
    }

    NodeId evalCall(Scope& scope, const vl::Expr& e, const AssignMap* updates,
                    const Overlay* overlay) {
        auto& d = *design_;
        auto arg = [&](size_t i) { return evalExpr(scope, *e.operands[i], updates, overlay); };
        if (e.name == "$past") {
            int n = e.operands.size() > 1 ? static_cast<int>(evalConst(scope, *e.operands[1])) : 1;
            return pastOf(arg(0), n);
        }
        if (e.name == "$stable") {
            NodeId x = arg(0);
            NodeId same = d.mkEq(x, pastOf(x, 1));
            return d.mkOr(d.mkNot(pastValid()), same);
        }
        if (e.name == "$changed") {
            NodeId x = arg(0);
            NodeId diff = d.mkNe(x, pastOf(x, 1));
            return d.mkAnd(pastValid(), diff);
        }
        if (e.name == "$rose" || e.name == "$fell") {
            NodeId x = d.mkSlice(arg(0), 0, 1);
            NodeId prev = pastOf(x, 1);
            NodeId edge = e.name == "$rose" ? d.mkAnd(d.mkNot(prev), x)
                                            : d.mkAnd(prev, d.mkNot(x));
            return d.mkAnd(pastValid(), edge);
        }
        if (e.name == "$countones") {
            NodeId x = arg(0);
            int w = d.width(x);
            int rw = clog2(static_cast<uint64_t>(w)) + 1;
            NodeId sum = d.mkConst(rw, 0);
            for (int i = 0; i < w; ++i)
                sum = d.mkAdd(sum, d.mkZExt(d.mkSlice(x, i, 1), rw));
            return sum;
        }
        if (e.name == "$onehot" || e.name == "$onehot0") {
            NodeId x = arg(0);
            int w = d.width(x);
            int rw = clog2(static_cast<uint64_t>(w)) + 1;
            NodeId sum = d.mkConst(rw, 0);
            for (int i = 0; i < w; ++i)
                sum = d.mkAdd(sum, d.mkZExt(d.mkSlice(x, i, 1), rw));
            NodeId limit = d.mkConst(rw, 1);
            return e.name == "$onehot" ? d.mkEq(sum, limit) : d.mkUle(sum, limit);
        }
        if (e.name == "$isunknown") return d.mkIsUnknown(arg(0));
        if (e.name == "$clog2") {
            uint64_t v = evalConst(scope, *e.operands[0]);
            return d.mkConst(7, static_cast<uint64_t>(clog2(v)));
        }
        if (e.name == "$bits") {
            NodeId x = arg(0);
            return d.mkConst(7, static_cast<uint64_t>(d.width(x)));
        }
        if (e.name == "$signed" || e.name == "$unsigned") return arg(0);
        if (e.name == "$partselect_up") {
            NodeId base = arg(0);
            NodeId idx = arg(1);
            uint64_t w = evalConst(scope, *e.operands[2]);
            if (d.isConst(idx))
                return d.mkSlice(base, static_cast<int>(d.constValue(idx)), static_cast<int>(w));
            return d.mkSlice(d.mkShr(base, idx), 0, static_cast<int>(w));
        }
        throw FrontendError(e.loc, "unsupported system function '" + e.name + "'");
    }

    // -- Drivers ----------------------------------------------------------------

    void addDriverPart(NodeId buf, int lo, int width, NodeId value, SourceLoc loc) {
        drivers_[buf].push_back({lo, width, value, std::move(loc)});
    }

    /// Continuous-assignment / port-connection lvalues.
    void assignLValue(Scope& scope, const vl::Expr& lhs, NodeId value, SourceLoc loc) {
        auto& d = *design_;
        switch (lhs.kind) {
        case vl::Expr::Kind::Ident: {
            const Entry* entry = scope.find(lhs.name);
            if (!entry) throw FrontendError(lhs.loc, "unknown identifier '" + lhs.name + "'");
            if (entry->kind != Entry::Kind::Signal)
                throw FrontendError(lhs.loc, "cannot continuously assign '" + lhs.name + "'");
            addDriverPart(entry->buf, 0, entry->width, resize(value, entry->width), loc);
            return;
        }
        case vl::Expr::Kind::Index: {
            const vl::Expr& base = *lhs.operands[0];
            if (base.kind != vl::Expr::Kind::Ident)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            const Entry* entry = scope.find(base.name);
            if (!entry) throw FrontendError(lhs.loc, "unknown identifier '" + base.name + "'");
            uint64_t idx = evalConst(scope, *lhs.operands[1]);
            if (entry->kind == Entry::Kind::Memory)
                throw FrontendError(lhs.loc, "memories can only be written in always blocks");
            if (idx >= static_cast<uint64_t>(entry->width))
                throw FrontendError(lhs.loc, "bit index out of range");
            addDriverPart(entry->buf, static_cast<int>(idx), 1, resize(value, 1), loc);
            return;
        }
        case vl::Expr::Kind::Range: {
            const vl::Expr& base = *lhs.operands[0];
            if (base.kind != vl::Expr::Kind::Ident)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            const Entry* entry = scope.find(base.name);
            if (!entry || entry->kind != Entry::Kind::Signal)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            uint64_t msb = evalConst(scope, *lhs.operands[1]);
            uint64_t lsb = evalConst(scope, *lhs.operands[2]);
            if (msb < lsb || msb >= static_cast<uint64_t>(entry->width))
                throw FrontendError(lhs.loc, "part select out of range");
            int w = static_cast<int>(msb - lsb + 1);
            addDriverPart(entry->buf, static_cast<int>(lsb), w, resize(value, w), loc);
            return;
        }
        case vl::Expr::Kind::Concat: {
            // {a, b, c} = value — split MSB-first.
            int total = 0;
            std::vector<int> widths;
            for (const auto& part : lhs.operands) {
                int w = lvalueWidth(scope, *part);
                widths.push_back(w);
                total += w;
            }
            NodeId wide = resize(value, total);
            int hi = total;
            for (size_t i = 0; i < lhs.operands.size(); ++i) {
                int w = widths[i];
                hi -= w;
                assignLValue(scope, *lhs.operands[i], d.mkSlice(wide, hi, w), loc);
            }
            return;
        }
        default:
            throw FrontendError(lhs.loc, "unsupported lvalue expression");
        }
    }

    int lvalueWidth(Scope& scope, const vl::Expr& lhs) {
        switch (lhs.kind) {
        case vl::Expr::Kind::Ident: {
            const Entry* entry = scope.find(lhs.name);
            if (!entry) throw FrontendError(lhs.loc, "unknown identifier '" + lhs.name + "'");
            return entry->width;
        }
        case vl::Expr::Kind::Index:
            return 1;
        case vl::Expr::Kind::Range: {
            uint64_t msb = evalConst(scope, *lhs.operands[1]);
            uint64_t lsb = evalConst(scope, *lhs.operands[2]);
            return static_cast<int>(msb - lsb + 1);
        }
        case vl::Expr::Kind::Concat: {
            int total = 0;
            for (const auto& part : lhs.operands) total += lvalueWidth(scope, *part);
            return total;
        }
        default:
            throw FrontendError(lhs.loc, "unsupported lvalue expression");
        }
    }

    // -- Procedural lowering -------------------------------------------------

    void execStmt(Scope& scope, const vl::Stmt& stmt, AssignMap& map, bool readsSeeUpdates,
                  const Overlay* overlay) {
        switch (stmt.kind) {
        case vl::Stmt::Kind::Null:
            return;
        case vl::Stmt::Kind::Block:
            for (const auto& s : stmt.stmts) execStmt(scope, *s, map, readsSeeUpdates, overlay);
            return;
        case vl::Stmt::Kind::Assign: {
            NodeId value =
                evalExpr(scope, *stmt.rhs, readsSeeUpdates ? &map : nullptr, overlay);
            assignProcedural(scope, *stmt.lhs, value, map, overlay, readsSeeUpdates);
            return;
        }
        case vl::Stmt::Kind::If: {
            NodeId cond = design_->mkBool(
                evalExpr(scope, *stmt.cond, readsSeeUpdates ? &map : nullptr, overlay));
            AssignMap thenMap = map;
            if (stmt.thenStmt) execStmt(scope, *stmt.thenStmt, thenMap, readsSeeUpdates, overlay);
            AssignMap elseMap = map;
            if (stmt.elseStmt) execStmt(scope, *stmt.elseStmt, elseMap, readsSeeUpdates, overlay);
            mergeMaps(scope, map, cond, thenMap, elseMap);
            return;
        }
        case vl::Stmt::Kind::Case: {
            execCase(scope, stmt, 0, map, readsSeeUpdates, overlay);
            return;
        }
        }
    }

    void execCase(Scope& scope, const vl::Stmt& stmt, size_t itemIdx, AssignMap& map,
                  bool readsSeeUpdates, const Overlay* overlay) {
        if (itemIdx >= stmt.caseItems.size()) return;
        const auto& item = stmt.caseItems[itemIdx];
        if (item.labels.empty()) { // default
            if (item.body) execStmt(scope, *item.body, map, readsSeeUpdates, overlay);
            return;
        }
        NodeId subject =
            evalExpr(scope, *stmt.subject, readsSeeUpdates ? &map : nullptr, overlay);
        NodeId cond = design_->mkConst(1, 0);
        for (const auto& label : item.labels) {
            if (label->hasUnknownBits)
                throw FrontendError(label->loc, "casez wildcard labels are not supported");
            NodeId lab = evalExpr(scope, *label, readsSeeUpdates ? &map : nullptr, overlay);
            int w = std::max(design_->width(subject), design_->width(lab));
            cond = design_->mkOr(cond, design_->mkEq(widen(subject, w), widen(lab, w)));
        }
        AssignMap thenMap = map;
        if (item.body) execStmt(scope, *item.body, thenMap, readsSeeUpdates, overlay);
        AssignMap elseMap = map;
        execCase(scope, stmt, itemIdx + 1, elseMap, readsSeeUpdates, overlay);
        mergeMaps(scope, map, cond, thenMap, elseMap);
    }

    void mergeMaps(Scope& scope, AssignMap& out, NodeId cond, const AssignMap& thenMap,
                   const AssignMap& elseMap) {
        auto baseValue = [&](const std::string& key) -> NodeId {
            auto it = out.find(key);
            if (it != out.end()) return it->second;
            return lookupKeyBase(scope, key);
        };
        AssignMap merged = out;
        for (const auto& [key, tv] : thenMap) {
            auto eIt = elseMap.find(key);
            NodeId ev = eIt != elseMap.end() ? eIt->second : baseValue(key);
            merged[key] = design_->mkMux(cond, tv, ev);
        }
        for (const auto& [key, ev] : elseMap) {
            if (thenMap.count(key)) continue;
            NodeId tv = baseValue(key);
            merged[key] = design_->mkMux(cond, tv, ev);
        }
        out = std::move(merged);
    }

    NodeId lookupKeyBase(Scope& scope, const std::string& key) {
        auto at = key.find('@');
        if (at == std::string::npos) {
            const Entry* e = scope.find(key);
            assert(e && e->kind == Entry::Kind::Signal);
            return e->buf;
        }
        std::string name = key.substr(0, at);
        int idx = std::stoi(key.substr(at + 1));
        const Entry* e = scope.find(name);
        assert(e && e->kind == Entry::Kind::Memory);
        return e->elements[static_cast<size_t>(idx)];
    }

    void assignProcedural(Scope& scope, const vl::Expr& lhs, NodeId value, AssignMap& map,
                          const Overlay* overlay, bool readsSeeUpdates) {
        auto& d = *design_;
        switch (lhs.kind) {
        case vl::Expr::Kind::Ident: {
            const Entry* entry = scope.find(lhs.name);
            if (!entry) throw FrontendError(lhs.loc, "unknown identifier '" + lhs.name + "'");
            if (entry->kind != Entry::Kind::Signal)
                throw FrontendError(lhs.loc, "invalid assignment target '" + lhs.name + "'");
            map[lhs.name] = resize(value, entry->width);
            return;
        }
        case vl::Expr::Kind::Index: {
            const vl::Expr& base = *lhs.operands[0];
            if (base.kind != vl::Expr::Kind::Ident)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            const Entry* entry = scope.find(base.name);
            if (!entry) throw FrontendError(lhs.loc, "unknown identifier '" + base.name + "'");
            NodeId idx = evalExpr(scope, *lhs.operands[1], readsSeeUpdates ? &map : nullptr,
                                  overlay);
            if (entry->kind == Entry::Kind::Memory) {
                if (d.isConst(idx)) {
                    uint64_t i = d.constValue(idx);
                    if (i >= entry->elements.size())
                        throw FrontendError(lhs.loc, "memory index out of range");
                    map[memKey(base.name, static_cast<int>(i))] = resize(value, entry->width);
                    return;
                }
                for (size_t i = 0; i < entry->elements.size(); ++i) {
                    int cw = std::max(d.width(idx), bitsFor(i));
                    NodeId hit = d.mkEq(widen(idx, cw), d.mkConst(cw, i));
                    std::string key = memKey(base.name, static_cast<int>(i));
                    NodeId cur = map.count(key) ? map[key]
                                                : entry->elements[i];
                    map[key] = d.mkMux(hit, resize(value, entry->width), cur);
                }
                return;
            }
            // Bit insert into a vector signal (read-modify-write).
            NodeId cur = map.count(base.name) ? map[base.name] : entry->buf;
            int w = entry->width;
            if (d.isConst(idx)) {
                uint64_t i = d.constValue(idx);
                if (i >= static_cast<uint64_t>(w))
                    throw FrontendError(lhs.loc, "bit index out of range");
                std::vector<NodeId> parts;
                if (i + 1 < static_cast<uint64_t>(w))
                    parts.push_back(d.mkSlice(cur, static_cast<int>(i) + 1,
                                              w - static_cast<int>(i) - 1));
                parts.push_back(resize(value, 1));
                if (i > 0) parts.push_back(d.mkSlice(cur, 0, static_cast<int>(i)));
                map[base.name] = d.mkConcat(parts);
            } else {
                NodeId one = d.mkShl(d.mkConst(w, 1), idx);
                NodeId cleared = d.mkAnd(cur, d.mkNot(one));
                NodeId bit = d.mkMux(d.mkBool(resize(value, 1)), one, d.mkConst(w, 0));
                map[base.name] = d.mkOr(cleared, bit);
            }
            return;
        }
        case vl::Expr::Kind::Range: {
            const vl::Expr& base = *lhs.operands[0];
            if (base.kind != vl::Expr::Kind::Ident)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            const Entry* entry = scope.find(base.name);
            if (!entry || entry->kind != Entry::Kind::Signal)
                throw FrontendError(lhs.loc, "unsupported lvalue");
            uint64_t msb = evalConst(scope, *lhs.operands[1]);
            uint64_t lsb = evalConst(scope, *lhs.operands[2]);
            if (msb < lsb || msb >= static_cast<uint64_t>(entry->width))
                throw FrontendError(lhs.loc, "part select out of range");
            NodeId cur = map.count(base.name) ? map[base.name] : entry->buf;
            int w = entry->width;
            int pw = static_cast<int>(msb - lsb + 1);
            std::vector<NodeId> parts;
            if (msb + 1 < static_cast<uint64_t>(w))
                parts.push_back(d.mkSlice(cur, static_cast<int>(msb) + 1,
                                          w - static_cast<int>(msb) - 1));
            parts.push_back(resize(value, pw));
            if (lsb > 0) parts.push_back(d.mkSlice(cur, 0, static_cast<int>(lsb)));
            map[base.name] = d.mkConcat(parts);
            return;
        }
        case vl::Expr::Kind::Concat: {
            int total = 0;
            std::vector<int> widths;
            for (const auto& part : lhs.operands) {
                int w = lvalueWidth(scope, *part);
                widths.push_back(w);
                total += w;
            }
            NodeId wide = resize(value, total);
            int hi = total;
            for (size_t i = 0; i < lhs.operands.size(); ++i) {
                int w = widths[i];
                hi -= w;
                assignProcedural(scope, *lhs.operands[i], d.mkSlice(wide, hi, w), map, overlay,
                                 readsSeeUpdates);
            }
            return;
        }
        default:
            throw FrontendError(lhs.loc, "unsupported lvalue expression");
        }
    }

    void elabAlways(Scope& scope, const vl::AlwaysBlock& blk) {
        if (blk.kind == vl::AlwaysBlock::Kind::Comb) {
            AssignMap map;
            execStmt(scope, *blk.body, map, /*readsSeeUpdates=*/true, nullptr);
            for (const auto& [key, value] : map) {
                NodeId target = lookupKeyBase(scope, key);
                addDriverPart(target, 0, design_->width(target), value, blk.loc);
            }
            return;
        }
        if (blk.kind == vl::AlwaysBlock::Kind::Latch)
            throw FrontendError(blk.loc, "latches are not supported");

        // always_ff: compute next-state expressions (reads see old values).
        AssignMap nextMap;
        execStmt(scope, *blk.body, nextMap, /*readsSeeUpdates=*/false, nullptr);

        // Reset-value extraction: re-execute with the reset signal pinned
        // active; constant results become register initial values.
        AssignMap resetMap;
        bool haveReset = blk.asyncResetSignal.has_value();
        if (haveReset) {
            Overlay ov;
            ov[*blk.asyncResetSignal] = blk.asyncResetNegedge ? 0u : 1u;
            execStmt(scope, *blk.body, resetMap, /*readsSeeUpdates=*/false, &ov);
        }

        for (const auto& [key, next] : nextMap) {
            NodeId target = lookupKeyBase(scope, key);
            const Node& tn = design_->node(target);
            std::string regName = tn.name; // Already prefixed (buf names are flat).
            NodeId reg = design_->mkReg(regName + "$q", tn.width);
            design_->setRegNext(reg, design_->mkResize(next, tn.width));
            if (haveReset) {
                auto it = resetMap.find(key);
                if (it != resetMap.end() && design_->isConst(it->second))
                    design_->setRegInit(reg, design_->constValue(it->second));
            }
            addDriverPart(target, 0, tn.width, reg, blk.loc);
        }
    }

    // -- Instances ---------------------------------------------------------------

    void elabInstance(Scope& scope, const vl::Instance& inst) {
        const vl::Module* child = findModule(inst.moduleName, inst.loc);

        // Parameter overrides, evaluated in the parent scope.
        std::unordered_map<std::string, uint64_t> overrides;
        size_t positional = 0;
        for (const auto& pa : inst.paramAssigns) {
            if (!pa.expr) continue;
            uint64_t value = evalConst(scope, *pa.expr);
            if (!pa.name.empty()) {
                overrides[pa.name] = value;
            } else {
                if (positional >= child->params.size())
                    throw FrontendError(pa.loc, "too many positional parameters");
                overrides[child->params[positional++].name] = value;
            }
        }

        std::string childPrefix = scope.prefix + inst.instName + ".";
        std::unique_ptr<Scope> childScope = elabModule(*child, childPrefix, overrides);

        // Port connections.
        auto connect = [&](const vl::Port& port, const vl::Expr* outerExpr, SourceLoc loc) {
            const Entry* entry = childScope->find(port.name);
            assert(entry);
            if (port.dir == vl::PortDir::Input) {
                if (!outerExpr) return; // Unconnected input stays a free cut point.
                NodeId outer = evalExpr(scope, *outerExpr, nullptr, nullptr);
                if (design_->width(outer) < entry->width) outer = widen(outer, entry->width);
                addDriverPart(entry->buf, 0, entry->width,
                              design_->mkResize(outer, entry->width), loc);
            } else if (port.dir == vl::PortDir::Output) {
                if (!outerExpr) return; // Unconnected output: dangling.
                assignLValue(scope, *outerExpr, entry->buf, loc);
            } else {
                throw FrontendError(loc, "inout ports are not supported");
            }
        };

        std::unordered_map<std::string, const vl::Port*> portMap;
        for (const auto& p : child->ports) portMap[p.name] = &p;

        std::vector<bool> connected(child->ports.size(), false);
        size_t posIdx = 0;
        for (const auto& conn : inst.portAssigns) {
            const vl::Port* port = nullptr;
            size_t portIdx = 0;
            if (!conn.name.empty()) {
                auto it = portMap.find(conn.name);
                if (it == portMap.end())
                    throw FrontendError(conn.loc, "module '" + child->name + "' has no port '" +
                                                      conn.name + "'");
                port = it->second;
                portIdx = static_cast<size_t>(port - child->ports.data());
            } else {
                if (posIdx >= child->ports.size())
                    throw FrontendError(conn.loc, "too many positional connections");
                port = &child->ports[posIdx];
                portIdx = posIdx;
                ++posIdx;
            }
            connected[portIdx] = true;
            connect(*port, conn.expr.get(), conn.loc);
        }
        if (inst.wildcardPorts) {
            for (size_t i = 0; i < child->ports.size(); ++i) {
                if (connected[i]) continue;
                const vl::Port& port = child->ports[i];
                const Entry* outer = scope.find(port.name);
                if (!outer) {
                    if (port.dir == vl::PortDir::Input)
                        continue; // Free cut point (e.g. nothing to bind).
                    continue;
                }
                auto ident = vl::makeIdent(port.name, inst.loc);
                connect(port, ident.get(), inst.loc);
                connected[i] = true;
            }
        }
    }

    // -- Assertions ----------------------------------------------------------------

    PropShape decompose(const vl::PropExpr& p) {
        PropShape shape;
        const vl::PropExpr* cur = &p;
        if (cur->kind == vl::PropExpr::Kind::Implication) {
            shape.ante = cur->boolean.get();
            shape.delay = cur->overlapping ? 0 : 1;
            cur = cur->rhsProp.get();
        }
        while (cur->kind == vl::PropExpr::Kind::Next) {
            shape.delay += cur->delay;
            cur = cur->rhsProp.get();
        }
        if (cur->kind == vl::PropExpr::Kind::Eventually) {
            shape.eventually = true;
            cur = cur->rhsProp.get();
        }
        while (cur->kind == vl::PropExpr::Kind::Next) {
            shape.delay += cur->delay;
            cur = cur->rhsProp.get();
        }
        if (cur->kind != vl::PropExpr::Kind::Boolean)
            throw FrontendError(cur->loc, "unsupported property shape");
        shape.cons = cur->boolean.get();
        return shape;
    }

    void lowerAssertion(Scope& scope, const vl::AssertionItem& item) {
        auto& d = *design_;
        PropShape shape = decompose(*item.prop);

        NodeId dis = d.mkConst(1, 0);
        if (item.disableExpr)
            dis = d.mkBool(evalExpr(scope, *item.disableExpr, nullptr, nullptr));
        else if (scope.mod->defaultDisable)
            dis = d.mkBool(evalExpr(scope, *scope.mod->defaultDisable, nullptr, nullptr));

        NodeId ante = shape.ante ? d.mkBool(evalExpr(scope, *shape.ante, nullptr, nullptr))
                                 : d.mkConst(1, 1);
        NodeId cons = d.mkBool(evalExpr(scope, *shape.cons, nullptr, nullptr));

        // Delay pipeline for non-overlapping / ##N implications.
        for (int i = 0; i < shape.delay; ++i) {
            NodeId reg = d.mkReg("__dly" + std::to_string(pastCounter_++), 1);
            d.setRegInit(reg, 0);
            d.setRegNext(reg, d.mkAnd(ante, d.mkNot(dis)));
            ante = reg;
        }

        std::string name = scope.prefix +
                           (item.label.empty() ? "prop" + std::to_string(propCounter_++)
                                               : item.label);
        bool xprop = item.label.rfind("xp__", 0) == 0;

        Obligation ob;
        ob.name = name;
        ob.loc = item.loc;
        ob.xprop = xprop;

        bool isAssume =
            item.kind == vl::AssertionKind::Assume || item.kind == vl::AssertionKind::Restrict;

        if (item.kind == vl::AssertionKind::Cover) {
            ob.kind = Obligation::Kind::Cover;
            ob.net = d.mkAnd(d.mkAnd(ante, cons), d.mkNot(dis));
            d.addObligation(std::move(ob));
            return;
        }

        if (!shape.eventually) {
            if (isAssume) {
                ob.kind = Obligation::Kind::Constraint;
                ob.net = d.mkOr(d.mkOr(d.mkNot(ante), cons), dis);
            } else {
                ob.kind = Obligation::Kind::SafetyBad;
                ob.net = d.mkAnd(d.mkAnd(ante, d.mkNot(cons)), d.mkNot(dis));
            }
            d.addObligation(std::move(ob));
            return;
        }

        // Liveness: pending-obligation monitor.
        // pendingNext = ((pending || ante) && !cons) && !dis
        NodeId pending = d.mkReg(name + "$pending", 1);
        d.setRegInit(pending, 0);
        NodeId pendingNext =
            d.mkAnd(d.mkAnd(d.mkOr(pending, ante), d.mkNot(cons)), d.mkNot(dis));
        d.setRegNext(pending, pendingNext);
        ob.kind = isAssume ? Obligation::Kind::Fairness : Obligation::Kind::Justice;
        ob.net = d.mkNot(pendingNext);
        d.addObligation(std::move(ob));
    }

    // -- Finalization -----------------------------------------------------------

    void finalize() {
        auto& d = *design_;
        // Resolve collected driver parts into Buf inputs.
        for (auto& [buf, parts] : drivers_) {
            std::sort(parts.begin(), parts.end(),
                      [](const DriverPart& a, const DriverPart& b) { return a.lo < b.lo; });
            int width = d.width(buf);
            // Overlap / multiple-driver check.
            for (size_t i = 1; i < parts.size(); ++i) {
                if (parts[i].lo < parts[i - 1].lo + parts[i - 1].width)
                    throw FrontendError(parts[i].loc,
                                        "multiple drivers for signal '" + d.node(buf).name + "'");
            }
            if (parts.size() == 1 && parts[0].lo == 0 && parts[0].width == width) {
                d.setBufInput(buf, parts[0].value);
                continue;
            }
            // Compose with zero-fill for undriven gaps (warned).
            std::vector<NodeId> pieces; // MSB-first.
            int cursor = width;
            for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
                int hi = it->lo + it->width;
                if (hi < cursor) {
                    pieces.push_back(d.mkConst(cursor - hi, 0));
                    diags_.warning(it->loc, "bits [" + std::to_string(cursor - 1) + ":" +
                                                std::to_string(hi) + "] of '" + d.node(buf).name +
                                                "' are undriven; tied to 0");
                }
                pieces.push_back(it->value);
                cursor = it->lo;
            }
            if (cursor > 0) {
                pieces.push_back(d.mkConst(cursor, 0));
                diags_.warning({}, "low bits of '" + d.node(buf).name + "' undriven; tied to 0");
            }
            d.setBufInput(buf, d.mkConcat(pieces));
        }

        // Remaining undriven bufs: tie-offs or free inputs.
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node& n = d.node(id);
            if (n.op != Op::Buf || !n.ops.empty()) continue;
            auto it = opts_->tieOffs.find(n.name);
            if (it != opts_->tieOffs.end()) {
                d.convertBufToConst(id, it->second);
            } else {
                d.convertBufToInput(id);
            }
        }
    }

    std::vector<const vl::SourceFile*> files_;
    util::DiagEngine& diags_;
    std::unordered_map<std::string, const vl::Module*> moduleMap_;
    std::vector<const vl::BindDirective*> binds_;
    const ElabOptions* opts_ = nullptr;
    std::unique_ptr<Design> design_;
    std::unordered_map<NodeId, std::vector<DriverPart>> drivers_;
    std::set<NodeId> unbasedOnes_;
    NodeId pastValid_ = kInvalidNode;
    int pastCounter_ = 0;
    int propCounter_ = 0;
};

Elaborator::Elaborator(std::vector<const vl::SourceFile*> files, util::DiagEngine& diags)
    : files_(std::move(files)), diags_(diags) {}

std::unique_ptr<Design> Elaborator::elaborate(const std::string& topName,
                                              const ElabOptions& opts) {
    Impl impl(files_, diags_);
    return impl.run(topName, opts);
}

std::unique_ptr<Design> elaborateFiles(const std::vector<const verilog::SourceFile*>& files,
                                       const std::string& topName, util::DiagEngine& diags,
                                       const ElabOptions& opts) {
    Elaborator elab(files, diags);
    return elab.elaborate(topName, opts);
}

std::unique_ptr<Design> elaborateSources(const std::vector<std::string>& sourceTexts,
                                         const std::vector<std::string>& sourceNames,
                                         const std::string& topName, util::DiagEngine& diags,
                                         const ElabOptions& opts) {
    std::vector<vl::SourceFile> files;
    files.reserve(sourceTexts.size());
    for (size_t i = 0; i < sourceTexts.size(); ++i) {
        std::string name = i < sourceNames.size() && !sourceNames[i].empty()
                               ? sourceNames[i]
                               : "source" + std::to_string(i);
        files.push_back(vl::Parser::parseSource(sourceTexts[i], std::move(name)));
    }
    std::vector<const vl::SourceFile*> filePtrs;
    for (const auto& f : files) filePtrs.push_back(&f);
    return elaborateFiles(filePtrs, topName, diags, opts);
}

std::unique_ptr<Design> elaborateSources(const std::vector<std::string>& sourceTexts,
                                         const std::string& topName, util::DiagEngine& diags,
                                         const ElabOptions& opts) {
    return elaborateSources(sourceTexts, {}, topName, diags, opts);
}

} // namespace autosva::ir
