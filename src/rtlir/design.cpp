#include "rtlir/design.hpp"

#include <algorithm>
#include <cassert>

#include "util/diagnostics.hpp"

namespace autosva::ir {

using util::FrontendError;

NodeId Design::add(Node n) {
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Design::mkConst(int width, uint64_t value) {
    assert(width >= 1 && width <= 64);
    Node n;
    n.op = Op::Const;
    n.width = width;
    n.cval = value & maskForWidth(width);
    return add(n);
}

NodeId Design::mkInput(const std::string& name, int width) {
    Node n;
    n.op = Op::Input;
    n.width = width;
    n.name = name;
    NodeId id = add(n);
    inputs_.push_back(id);
    return id;
}

NodeId Design::mkReg(const std::string& name, int width) {
    Node n;
    n.op = Op::Reg;
    n.width = width;
    n.name = name;
    NodeId id = add(n);
    regs_.push_back(id);
    return id;
}

void Design::setRegNext(NodeId reg, NodeId next) {
    assert(nodes_[reg].op == Op::Reg);
    assert(nodes_[next].width == nodes_[reg].width);
    nodes_[reg].next = next;
}

void Design::setRegInit(NodeId reg, uint64_t value) {
    assert(nodes_[reg].op == Op::Reg);
    nodes_[reg].initValue = value & maskForWidth(nodes_[reg].width);
    nodes_[reg].hasInit = true;
}

NodeId Design::mkBuf(const std::string& name, int width) {
    Node n;
    n.op = Op::Buf;
    n.width = width;
    n.name = name;
    return add(n);
}

void Design::setBufInput(NodeId buf, NodeId value) {
    assert(nodes_[buf].op == Op::Buf);
    assert(nodes_[value].width == nodes_[buf].width);
    nodes_[buf].ops.assign(1, value);
}

void Design::convertBufToInput(NodeId buf) {
    assert(nodes_[buf].op == Op::Buf && nodes_[buf].ops.empty());
    nodes_[buf].op = Op::Input;
    inputs_.push_back(buf);
}

void Design::convertBufToConst(NodeId buf, uint64_t value) {
    assert(nodes_[buf].op == Op::Buf && nodes_[buf].ops.empty());
    nodes_[buf].op = Op::Const;
    nodes_[buf].cval = value & maskForWidth(nodes_[buf].width);
}

NodeId Design::binary(Op op, NodeId a, NodeId b, int width) {
    Node n;
    n.op = op;
    n.width = width;
    n.ops = {a, b};
    return add(n);
}

NodeId Design::mkNot(NodeId a) {
    if (isConst(a)) return mkConst(width(a), ~constValue(a));
    Node n;
    n.op = Op::Not;
    n.width = width(a);
    n.ops = {a};
    return add(n);
}

NodeId Design::mkAnd(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) & constValue(b));
    if (isConst(a) && constValue(a) == 0) return mkConst(width(a), 0);
    if (isConst(b) && constValue(b) == 0) return mkConst(width(a), 0);
    if (isConst(a) && constValue(a) == maskForWidth(width(a))) return b;
    if (isConst(b) && constValue(b) == maskForWidth(width(b))) return a;
    return binary(Op::And, a, b, width(a));
}

NodeId Design::mkOr(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) | constValue(b));
    if (isConst(a) && constValue(a) == 0) return b;
    if (isConst(b) && constValue(b) == 0) return a;
    if (isConst(a) && constValue(a) == maskForWidth(width(a))) return a;
    if (isConst(b) && constValue(b) == maskForWidth(width(b))) return b;
    return binary(Op::Or, a, b, width(a));
}

NodeId Design::mkXor(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) ^ constValue(b));
    if (isConst(a) && constValue(a) == 0) return b;
    if (isConst(b) && constValue(b) == 0) return a;
    return binary(Op::Xor, a, b, width(a));
}

NodeId Design::mkAdd(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) + constValue(b));
    if (isConst(a) && constValue(a) == 0) return b;
    if (isConst(b) && constValue(b) == 0) return a;
    return binary(Op::Add, a, b, width(a));
}

NodeId Design::mkSub(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) - constValue(b));
    if (isConst(b) && constValue(b) == 0) return a;
    return binary(Op::Sub, a, b, width(a));
}

NodeId Design::mkMul(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(width(a), constValue(a) * constValue(b));
    if (isConst(a) && constValue(a) == 1) return b;
    if (isConst(b) && constValue(b) == 1) return a;
    if ((isConst(a) && constValue(a) == 0) || (isConst(b) && constValue(b) == 0))
        return mkConst(width(a), 0);
    return binary(Op::Mul, a, b, width(a));
}

NodeId Design::mkDiv(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (!isConst(b))
        throw FrontendError({}, "division by a non-constant is not supported");
    uint64_t d = constValue(b);
    if (d == 0) throw FrontendError({}, "division by zero");
    if (isConst(a)) return mkConst(width(a), constValue(a) / d);
    if (d == 1) return a;
    if ((d & (d - 1)) == 0) { // Power of two -> shift.
        int sh = 0;
        while ((uint64_t{1} << sh) != d) ++sh;
        return mkShr(a, mkConst(7, static_cast<uint64_t>(sh)));
    }
    return binary(Op::Div, a, b, width(a));
}

NodeId Design::mkMod(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (!isConst(b))
        throw FrontendError({}, "modulo by a non-constant is not supported");
    uint64_t d = constValue(b);
    if (d == 0) throw FrontendError({}, "modulo by zero");
    if (isConst(a)) return mkConst(width(a), constValue(a) % d);
    if ((d & (d - 1)) == 0) { // Power of two -> mask.
        return mkAnd(a, mkConst(width(a), d - 1));
    }
    return binary(Op::Mod, a, b, width(a));
}

NodeId Design::mkEq(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(1, constValue(a) == constValue(b) ? 1 : 0);
    if (a == b) return mkConst(1, 1);
    return binary(Op::Eq, a, b, 1);
}

NodeId Design::mkNe(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(1, constValue(a) != constValue(b) ? 1 : 0);
    if (a == b) return mkConst(1, 0);
    return binary(Op::Ne, a, b, 1);
}

NodeId Design::mkUlt(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(1, constValue(a) < constValue(b) ? 1 : 0);
    return binary(Op::Ult, a, b, 1);
}

NodeId Design::mkUle(NodeId a, NodeId b) {
    assert(width(a) == width(b));
    if (isConst(a) && isConst(b)) return mkConst(1, constValue(a) <= constValue(b) ? 1 : 0);
    return binary(Op::Ule, a, b, 1);
}

NodeId Design::mkShl(NodeId a, NodeId amount) {
    if (isConst(a) && isConst(amount)) {
        uint64_t sh = constValue(amount);
        return mkConst(width(a), sh >= 64 ? 0 : constValue(a) << sh);
    }
    return binary(Op::Shl, a, amount, width(a));
}

NodeId Design::mkShr(NodeId a, NodeId amount) {
    if (isConst(a) && isConst(amount)) {
        uint64_t sh = constValue(amount);
        return mkConst(width(a), sh >= 64 ? 0 : constValue(a) >> sh);
    }
    return binary(Op::Shr, a, amount, width(a));
}

NodeId Design::mkMux(NodeId sel, NodeId thenVal, NodeId elseVal) {
    assert(width(sel) == 1);
    assert(width(thenVal) == width(elseVal));
    if (isConst(sel)) return constValue(sel) ? thenVal : elseVal;
    if (thenVal == elseVal) return thenVal;
    Node n;
    n.op = Op::Mux;
    n.width = width(thenVal);
    n.ops = {sel, thenVal, elseVal};
    return add(n);
}

NodeId Design::mkConcat(const std::vector<NodeId>& partsMsbFirst) {
    assert(!partsMsbFirst.empty());
    if (partsMsbFirst.size() == 1) return partsMsbFirst[0];
    int total = 0;
    bool allConst = true;
    for (NodeId p : partsMsbFirst) {
        total += width(p);
        allConst = allConst && isConst(p);
    }
    if (total > 64) throw FrontendError({}, "concatenation wider than 64 bits");
    if (allConst) {
        uint64_t v = 0;
        for (NodeId p : partsMsbFirst) {
            v = (v << width(p)) | constValue(p);
        }
        return mkConst(total, v);
    }
    Node n;
    n.op = Op::Concat;
    n.width = total;
    n.ops = partsMsbFirst;
    return add(n);
}

NodeId Design::mkSlice(NodeId a, int lo, int w) {
    assert(lo >= 0 && w >= 1 && lo + w <= width(a));
    if (lo == 0 && w == width(a)) return a;
    if (isConst(a)) return mkConst(w, constValue(a) >> lo);
    Node n;
    n.op = Op::Slice;
    n.width = w;
    n.lo = lo;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkZExt(NodeId a, int w) {
    assert(w >= width(a));
    if (w == width(a)) return a;
    if (isConst(a)) return mkConst(w, constValue(a));
    Node n;
    n.op = Op::ZExt;
    n.width = w;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkRedAnd(NodeId a) {
    if (width(a) == 1) return a;
    if (isConst(a)) return mkConst(1, constValue(a) == maskForWidth(width(a)) ? 1 : 0);
    Node n;
    n.op = Op::RedAnd;
    n.width = 1;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkRedOr(NodeId a) {
    if (width(a) == 1) return a;
    if (isConst(a)) return mkConst(1, constValue(a) != 0 ? 1 : 0);
    Node n;
    n.op = Op::RedOr;
    n.width = 1;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkRedXor(NodeId a) {
    if (isConst(a)) return mkConst(1, static_cast<uint64_t>(__builtin_parityll(constValue(a))));
    if (width(a) == 1) return a;
    Node n;
    n.op = Op::RedXor;
    n.width = 1;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkIsUnknown(NodeId a) {
    Node n;
    n.op = Op::IsUnknown;
    n.width = 1;
    n.ops = {a};
    return add(n);
}

NodeId Design::mkBool(NodeId a) { return width(a) == 1 ? a : mkRedOr(a); }

NodeId Design::mkResize(NodeId a, int w) {
    if (width(a) == w) return a;
    if (width(a) < w) return mkZExt(a, w);
    return mkSlice(a, 0, w);
}

std::vector<NodeId> Design::topoOrder() const {
    enum class Mark : uint8_t { White, Grey, Black };
    std::vector<Mark> marks(nodes_.size(), Mark::White);
    std::vector<NodeId> order;
    order.reserve(nodes_.size());

    // Iterative DFS; registers are sources (their `next` edge is sequential).
    std::vector<std::pair<NodeId, size_t>> stack;
    auto visit = [&](NodeId root) {
        if (marks[root] != Mark::White) return;
        stack.emplace_back(root, 0);
        marks[root] = Mark::Grey;
        while (!stack.empty()) {
            auto& [id, childIdx] = stack.back();
            const Node& n = nodes_[id];
            bool sequential = n.op == Op::Reg;
            if (sequential || childIdx >= n.ops.size()) {
                marks[id] = Mark::Black;
                order.push_back(id);
                stack.pop_back();
                continue;
            }
            NodeId child = n.ops[childIdx++];
            if (marks[child] == Mark::Grey) {
                throw FrontendError({}, "combinational cycle through signal '" +
                                            (nodes_[child].name.empty() ? std::to_string(child)
                                                                        : nodes_[child].name) +
                                            "'");
            }
            if (marks[child] == Mark::White) {
                marks[child] = Mark::Grey;
                stack.emplace_back(child, 0);
            }
        }
    };

    for (NodeId id = 0; id < nodes_.size(); ++id) visit(id);
    return order;
}

int Design::stateBits() const {
    int bits = 0;
    for (NodeId r : regs_) bits += nodes_[r].width;
    return bits;
}

} // namespace autosva::ir
