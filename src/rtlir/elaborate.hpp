// Elaboration: SystemVerilog AST -> flat word-level Design.
//
// Entry points:
//  - elaborateFiles()   consumes already-parsed (or generator-built)
//    verilog::SourceFile ASTs directly. This is the verification path:
//    core::elaborateWithFT hands the generated property-module AST here,
//    so generated text is never re-lexed/re-parsed.
//  - elaborateSources() lexes+parses text buffers first; the overload with
//    `sourceNames` threads real file paths into every diagnostic.
//
// Responsibilities:
//  - parameter evaluation and overriding
//  - hierarchical flattening (instances get `inst.` name prefixes)
//  - procedural lowering (always_comb / always_ff) via symbolic execution
//  - unpacked arrays -> register banks with mux trees
//  - `bind` directives (property modules instantiated in the target scope)
//  - SVA assertion lowering to monitor logic + verification obligations
//
// Formal conventions (documented in DESIGN.md):
//  - single clock; async resets are modeled synchronously
//  - registers whose reset branch yields a constant get that value as the
//    initial state; others start symbolically
//  - undriven signals become free inputs (formal cut points); this is how
//    AutoSVA symbolic variables work
//  - tieOffs lets callers pin an input (e.g. rst_ni = 1 while checking).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hpp"
#include "util/diagnostics.hpp"
#include "verilog/ast.hpp"

namespace autosva::ir {

struct ElabOptions {
    std::unordered_map<std::string, uint64_t> paramOverrides; ///< Top-level params.
    std::unordered_map<std::string, uint64_t> tieOffs;        ///< Input name -> constant.
    /// Maximum elements in an unpacked array (register-bank expansion bound).
    int maxMemoryDepth = 64;
};

class Elaborator {
public:
    Elaborator(std::vector<const verilog::SourceFile*> files, util::DiagEngine& diags);

    /// Elaborates `topName` into a flat Design. Throws util::FrontendError.
    [[nodiscard]] std::unique_ptr<Design> elaborate(const std::string& topName,
                                                    const ElabOptions& opts = {});

private:
    struct Impl;
    std::vector<const verilog::SourceFile*> files_;
    util::DiagEngine& diags_;
};

/// Elaborates already-parsed (or generator-built) ASTs directly — the
/// zero-reparse entry the generation pipeline uses to hand its property
/// module AST straight to elaboration.
[[nodiscard]] std::unique_ptr<Design> elaborateFiles(
    const std::vector<const verilog::SourceFile*>& files, const std::string& topName,
    util::DiagEngine& diags, const ElabOptions& opts = {});

/// Convenience wrapper: parse sources and elaborate in one call.
/// `sourceNames` supplies diagnostic buffer names parallel to
/// `sourceTexts`; missing or empty entries fall back to "source<i>".
[[nodiscard]] std::unique_ptr<Design> elaborateSources(
    const std::vector<std::string>& sourceTexts, const std::vector<std::string>& sourceNames,
    const std::string& topName, util::DiagEngine& diags, const ElabOptions& opts = {});
[[nodiscard]] std::unique_ptr<Design> elaborateSources(
    const std::vector<std::string>& sourceTexts, const std::string& topName,
    util::DiagEngine& diags, const ElabOptions& opts = {});

} // namespace autosva::ir
