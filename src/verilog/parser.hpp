// Recursive-descent parser for the SystemVerilog subset (module structure,
// procedural statements, expressions, SVA assertions, bind directives).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "verilog/ast.hpp"
#include "verilog/token.hpp"

namespace autosva::verilog {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens);

    /// Parses a whole compilation unit. Throws util::FrontendError.
    [[nodiscard]] SourceFile parseFile();

    /// Convenience: lex + parse a source buffer.
    [[nodiscard]] static SourceFile parseSource(std::string_view text, std::string bufferName);

    /// Parses a standalone expression (used by the AutoSVA annotation parser
    /// for the right-hand sides of attribute definitions). The root node
    /// records `text` as its verbatim source spelling (Expr::origText), so
    /// printExpr() reproduces the designer's fragment byte-for-byte.
    [[nodiscard]] static ExprPtr parseExpression(std::string_view text, std::string bufferName);

    /// Process-wide count of parseSource() invocations. The generation
    /// pipeline uses the delta across a verification run to prove that
    /// generated property text is never re-lexed/re-parsed (the AST is
    /// handed to the elaborator directly).
    [[nodiscard]] static uint64_t sourceParseCount();

private:
    // Token stream helpers.
    [[nodiscard]] const Token& peek(size_t off = 0) const;
    [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
    const Token& consume();
    const Token& expect(TokenKind kind, const char* what);
    bool accept(TokenKind kind);
    [[noreturn]] void error(const std::string& message) const;

    // Grammar productions.
    std::unique_ptr<Module> parseModule();
    void parseHeaderParams(Module& mod);
    void parsePortList(Module& mod);
    void parseModuleItems(Module& mod);
    void parseParamDecl(Module& mod, bool isLocal);
    void parseNetDecl(std::vector<ModuleItem>& items, NetKind kind);
    ModuleItem parseContAssign();
    ModuleItem parseAlways(TokenKind introducer);
    ModuleItem parseInstance();
    ModuleItem parseAssertion(std::string label);
    void parseDefaultClocking(Module& mod);
    void parseDefaultDisable(Module& mod);
    BindDirective parseBind();

    std::optional<Range> tryParseRange();
    StmtPtr parseStmt();
    StmtPtr parseCase(bool isCasez);

    PropExprPtr parsePropExpr();

    ExprPtr parseExpr();
    ExprPtr parseTernary();
    ExprPtr parseBinary(int minPrec);
    ExprPtr parseUnary();
    ExprPtr parsePrimary();
    ExprPtr parsePostfix(ExprPtr base);

    std::vector<Token> tokens_;
    size_t cursor_ = 0;
};

} // namespace autosva::verilog
