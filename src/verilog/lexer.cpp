#include "verilog/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "util/diagnostics.hpp"

namespace autosva::verilog {

using util::FrontendError;

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywordMap() {
    static const std::unordered_map<std::string_view, TokenKind> map = {
        {"module", TokenKind::KwModule},
        {"endmodule", TokenKind::KwEndmodule},
        {"input", TokenKind::KwInput},
        {"output", TokenKind::KwOutput},
        {"inout", TokenKind::KwInout},
        {"wire", TokenKind::KwWire},
        {"reg", TokenKind::KwReg},
        {"logic", TokenKind::KwLogic},
        {"integer", TokenKind::KwInteger},
        {"genvar", TokenKind::KwGenvar},
        {"parameter", TokenKind::KwParameter},
        {"localparam", TokenKind::KwLocalparam},
        {"assign", TokenKind::KwAssign},
        {"always", TokenKind::KwAlways},
        {"always_ff", TokenKind::KwAlwaysFF},
        {"always_comb", TokenKind::KwAlwaysComb},
        {"always_latch", TokenKind::KwAlwaysLatch},
        {"posedge", TokenKind::KwPosedge},
        {"negedge", TokenKind::KwNegedge},
        {"or", TokenKind::KwOr},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"case", TokenKind::KwCase},
        {"casez", TokenKind::KwCasez},
        {"casex", TokenKind::KwCasex},
        {"endcase", TokenKind::KwEndcase},
        {"default", TokenKind::KwDefault},
        {"begin", TokenKind::KwBegin},
        {"end", TokenKind::KwEnd},
        {"signed", TokenKind::KwSigned},
        {"unsigned", TokenKind::KwUnsigned},
        {"assert", TokenKind::KwAssert},
        {"assume", TokenKind::KwAssume},
        {"cover", TokenKind::KwCover},
        {"restrict", TokenKind::KwRestrict},
        {"property", TokenKind::KwProperty},
        {"clocking", TokenKind::KwClocking},
        {"endclocking", TokenKind::KwEndclocking},
        {"disable", TokenKind::KwDisable},
        {"iff", TokenKind::KwIff},
        {"s_eventually", TokenKind::KwSEventually},
        {"s_until", TokenKind::KwSUntil},
        {"not", TokenKind::KwNot},
        {"bind", TokenKind::KwBind},
        {"initial", TokenKind::KwInitial},
        {"generate", TokenKind::KwGenerate},
        {"endgenerate", TokenKind::KwEndgenerate},
        {"for", TokenKind::KwFor},
        {"function", TokenKind::KwFunction},
        {"endfunction", TokenKind::KwEndfunction},
    };
    return map;
}

[[nodiscard]] int baseRadix(char c) {
    switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b': return 2;
    case 'o': return 8;
    case 'd': return 10;
    case 'h': return 16;
    default: return 0;
    }
}

[[nodiscard]] int digitValue(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

} // namespace

Lexer::Lexer(std::string_view text, std::string bufferName)
    : text_(text), bufferName_(std::move(bufferName)) {}

char Lexer::advance() {
    char c = text_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void Lexer::skipWhitespaceAndComments() {
    while (!atEnd()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n') advance();
        } else if (c == '/' && peek(1) == '*') {
            auto start = here();
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
            if (atEnd()) throw FrontendError(start, "unterminated block comment");
            advance();
            advance();
        } else if (c == '`') {
            // Compiler directives (`define-free subset): skip to end of line.
            while (!atEnd() && peek() != '\n') advance();
        } else {
            break;
        }
    }
}

std::vector<Token> Lexer::lexAll() {
    std::vector<Token> tokens;
    for (;;) {
        Token tok = next();
        bool done = tok.is(TokenKind::EndOfFile);
        tokens.push_back(std::move(tok));
        if (done) return tokens;
    }
}

Token Lexer::lexIdentifier() {
    Token tok;
    tok.loc = here();
    std::string text;
    if (peek() == '\\') { // Escaped identifier: up to whitespace.
        advance();
        while (!atEnd() && !std::isspace(static_cast<unsigned char>(peek()))) text += advance();
        tok.kind = TokenKind::Identifier;
        tok.text = std::move(text);
        return tok;
    }
    while (!atEnd()) {
        char c = peek();
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$')
            text += advance();
        else
            break;
    }
    auto it = keywordMap().find(text);
    tok.kind = it != keywordMap().end() ? it->second : TokenKind::Identifier;
    tok.text = std::move(text);
    return tok;
}

Token Lexer::lexBasedTail(Token tok, uint64_t width) {
    // Caller consumed the apostrophe; we are at the (optional) sign char / base.
    if (peek() == 's' || peek() == 'S') advance();
    char baseChar = peek();
    int radix = baseRadix(baseChar);
    if (radix == 0) {
        // Unbased unsized literal: '0 / '1 / 'x / 'z.
        char c = peek();
        if (c == '0' || c == '1') {
            advance();
            tok.kind = TokenKind::Number;
            tok.intValue = static_cast<uint64_t>(c - '0');
            tok.isUnbasedUnsized = true;
            return tok;
        }
        if (c == 'x' || c == 'X' || c == 'z' || c == 'Z') {
            advance();
            tok.kind = TokenKind::Number;
            tok.intValue = 0;
            tok.isUnbasedUnsized = true;
            tok.hasUnknownBits = true;
            return tok;
        }
        throw FrontendError(tok.loc, "malformed based literal");
    }
    advance(); // Consume base char.
    uint64_t value = 0;
    bool sawDigit = false;
    while (!atEnd()) {
        char c = peek();
        if (c == '_') {
            advance();
            continue;
        }
        if (c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?') {
            advance();
            sawDigit = true;
            tok.hasUnknownBits = true;
            value = value * static_cast<uint64_t>(radix); // x/z digits read as 0.
            continue;
        }
        int d = digitValue(c);
        if (d < 0 || d >= radix) break;
        advance();
        sawDigit = true;
        value = value * static_cast<uint64_t>(radix) + static_cast<uint64_t>(d);
    }
    if (!sawDigit) throw FrontendError(tok.loc, "based literal has no digits");
    tok.kind = TokenKind::Number;
    tok.intValue = value;
    tok.numWidth = static_cast<int>(width);
    if (width > 0 && width < 64) tok.intValue &= (uint64_t{1} << width) - 1;
    return tok;
}

Token Lexer::lexNumber() {
    Token tok;
    tok.loc = here();
    uint64_t value = 0;
    while (!atEnd()) {
        char c = peek();
        if (c == '_') {
            advance();
            continue;
        }
        if (!std::isdigit(static_cast<unsigned char>(c))) break;
        advance();
        value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    // Allow whitespace between size and base per the LRM: "8 'hFF".
    size_t save = pos_;
    uint32_t saveLine = line_, saveCol = col_;
    while (!atEnd() && (peek() == ' ' || peek() == '\t')) advance();
    if (peek() == '\'' && peek(1) != '{') {
        advance();
        return lexBasedTail(tok, value);
    }
    pos_ = save;
    line_ = saveLine;
    col_ = saveCol;
    tok.kind = TokenKind::Number;
    tok.intValue = value;
    tok.numWidth = 0;
    return tok;
}

Token Lexer::lexString() {
    Token tok;
    tok.loc = here();
    advance(); // Opening quote.
    std::string text;
    while (!atEnd() && peek() != '"') {
        char c = advance();
        if (c == '\\' && !atEnd()) {
            char e = advance();
            switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += e; break;
            }
        } else {
            text += c;
        }
    }
    if (atEnd()) throw FrontendError(tok.loc, "unterminated string literal");
    advance(); // Closing quote.
    tok.kind = TokenKind::String;
    tok.text = std::move(text);
    return tok;
}

Token Lexer::next() {
    skipWhitespaceAndComments();
    Token tok;
    tok.loc = here();
    if (atEnd()) {
        tok.kind = TokenKind::EndOfFile;
        return tok;
    }
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') return lexIdentifier();
    if (c == '$') {
        advance();
        Token id = lexIdentifier();
        id.kind = TokenKind::SystemIdent;
        id.text = "$" + id.text;
        id.loc = tok.loc;
        return id;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return lexNumber();
    if (c == '\'') {
        advance();
        return lexBasedTail(tok, 0);
    }
    if (c == '"') return lexString();

    advance();
    auto two = [&](char second, TokenKind twoKind, TokenKind oneKind) {
        if (peek() == second) {
            advance();
            tok.kind = twoKind;
        } else {
            tok.kind = oneKind;
        }
        return tok;
    };

    switch (c) {
    case '(': tok.kind = TokenKind::LParen; return tok;
    case ')': tok.kind = TokenKind::RParen; return tok;
    case '[': tok.kind = TokenKind::LBracket; return tok;
    case ']': tok.kind = TokenKind::RBracket; return tok;
    case '{': tok.kind = TokenKind::LBrace; return tok;
    case '}': tok.kind = TokenKind::RBrace; return tok;
    case ';': tok.kind = TokenKind::Semi; return tok;
    case ':': tok.kind = TokenKind::Colon; return tok;
    case ',': tok.kind = TokenKind::Comma; return tok;
    case '.': tok.kind = TokenKind::Dot; return tok;
    case '@': tok.kind = TokenKind::At; return tok;
    case '?': tok.kind = TokenKind::Question; return tok;
    case '#': return two('#', TokenKind::HashHash, TokenKind::Hash);
    case '+':
        if (peek() == ':') {
            advance();
            tok.kind = TokenKind::PlusColon;
            return tok;
        }
        tok.kind = TokenKind::Plus;
        return tok;
    case '-': tok.kind = TokenKind::Minus; return tok;
    case '*': tok.kind = TokenKind::Star; return tok;
    case '/': tok.kind = TokenKind::Slash; return tok;
    case '%': tok.kind = TokenKind::Percent; return tok;
    case '~':
        if (peek() == '^') {
            advance();
            tok.kind = TokenKind::TildeCaret;
            return tok;
        }
        tok.kind = TokenKind::Tilde;
        return tok;
    case '^':
        if (peek() == '~') {
            advance();
            tok.kind = TokenKind::TildeCaret;
            return tok;
        }
        tok.kind = TokenKind::Caret;
        return tok;
    case '&': return two('&', TokenKind::AmpAmp, TokenKind::Amp);
    case '|':
        if (peek() == '|') {
            advance();
            tok.kind = TokenKind::PipePipe;
            return tok;
        }
        if (peek() == '-' && peek(1) == '>') {
            advance();
            advance();
            tok.kind = TokenKind::OverlapImpl;
            return tok;
        }
        if (peek() == '=' && peek(1) == '>') {
            advance();
            advance();
            tok.kind = TokenKind::NonOverlapImpl;
            return tok;
        }
        tok.kind = TokenKind::Pipe;
        return tok;
    case '=':
        if (peek() == '=') {
            advance();
            if (peek() == '=') advance(); // === treated as ==.
            tok.kind = TokenKind::EqEq;
            return tok;
        }
        tok.kind = TokenKind::Eq;
        return tok;
    case '!':
        if (peek() == '=') {
            advance();
            if (peek() == '=') advance(); // !== treated as !=.
            tok.kind = TokenKind::BangEq;
            return tok;
        }
        tok.kind = TokenKind::Bang;
        return tok;
    case '<':
        if (peek() == '=') {
            advance();
            tok.kind = TokenKind::LtEq;
        } else if (peek() == '<') {
            advance();
            if (peek() == '<') advance(); // <<< treated as << (unsigned subset).
            tok.kind = TokenKind::LtLt;
        } else {
            tok.kind = TokenKind::Lt;
        }
        return tok;
    case '>':
        if (peek() == '=') {
            advance();
            tok.kind = TokenKind::GtEq;
        } else if (peek() == '>') {
            advance();
            if (peek() == '>') advance(); // >>> treated as >> (unsigned subset).
            tok.kind = TokenKind::GtGt;
        } else {
            tok.kind = TokenKind::Gt;
        }
        return tok;
    default:
        throw FrontendError(tok.loc, std::string("unexpected character '") + c + "'");
    }
}

const char* tokenKindName(TokenKind kind) {
    switch (kind) {
    case TokenKind::EndOfFile: return "end of file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::SystemIdent: return "system identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::KwModule: return "'module'";
    case TokenKind::KwEndmodule: return "'endmodule'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::Semi: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Comma: return "','";
    case TokenKind::Eq: return "'='";
    case TokenKind::OverlapImpl: return "'|->'";
    case TokenKind::NonOverlapImpl: return "'|=>'";
    default: return "token";
    }
}

} // namespace autosva::verilog
