// Lexer for the SystemVerilog subset. Comments are skipped here; AutoSVA
// annotations (which live inside comments) are extracted separately by
// core/annotations from the raw source text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "verilog/token.hpp"

namespace autosva::verilog {

class Lexer {
public:
    /// @param bufferName used in source locations of the produced tokens.
    Lexer(std::string_view text, std::string bufferName);

    /// Lexes the entire buffer. The last token is always EndOfFile.
    /// Throws util::FrontendError on malformed input.
    [[nodiscard]] std::vector<Token> lexAll();

private:
    [[nodiscard]] Token next();
    [[nodiscard]] Token lexNumber();
    [[nodiscard]] Token lexBasedTail(Token tok, uint64_t width);
    [[nodiscard]] Token lexIdentifier();
    [[nodiscard]] Token lexString();
    void skipWhitespaceAndComments();

    [[nodiscard]] char peek(size_t off = 0) const {
        size_t i = pos_ + off;
        return i < text_.size() ? text_[i] : '\0';
    }
    char advance();
    [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
    [[nodiscard]] util::SourceLoc here() const { return {bufferName_, line_, col_}; }

    std::string_view text_;
    std::string bufferName_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
};

} // namespace autosva::verilog
