// AST -> normalized SystemVerilog text. Used for golden tests (round-trip
// parse -> print -> parse) and for dumping elaborately-generated modules.
#pragma once

#include <string>

#include "verilog/ast.hpp"

namespace autosva::verilog {

[[nodiscard]] std::string printModule(const Module& mod);
[[nodiscard]] std::string printSourceFile(const SourceFile& file);
[[nodiscard]] std::string printStmt(const Stmt& stmt, int indent);
[[nodiscard]] std::string printPropExpr(const PropExpr& prop);

} // namespace autosva::verilog
