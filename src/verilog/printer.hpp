// AST -> SystemVerilog text: the single renderer for every generated
// artifact. The property generator builds `verilog::` AST and the `.sv`
// property file / bind file are projections printed here (source-faithful
// via Expr::origText / Expr::parenthesized — see printExpr); the same
// functions serve the round-trip tests (parse -> print -> parse converges).
#pragma once

#include <string>

#include "verilog/ast.hpp"

namespace autosva::verilog {

[[nodiscard]] std::string printModule(const Module& mod);
[[nodiscard]] std::string printBind(const BindDirective& bind);
[[nodiscard]] std::string printSourceFile(const SourceFile& file);
[[nodiscard]] std::string printStmt(const Stmt& stmt, int indent);
[[nodiscard]] std::string printPropExpr(const PropExpr& prop);

} // namespace autosva::verilog
