// Abstract syntax tree for the SystemVerilog subset, including the SVA
// property layer consumed by the sva monitor compiler.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/source_loc.hpp"

namespace autosva::verilog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class UnaryOp { Plus, Minus, LogicNot, BitNot, RedAnd, RedOr, RedXor, RedNand, RedNor, RedXnor };

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Xnor,
    LogicAnd, LogicOr,
    Eq, Ne, Lt, Le, Gt, Ge,
    Shl, Shr,
};

struct Expr {
    enum class Kind {
        Number, Ident, Unary, Binary, Ternary,
        Index,      // base[index] — bit select or array element
        Range,      // base[msb:lsb] — constant part select
        Concat,     // {a, b, ...}
        Replicate,  // {N{expr}}
        Call,       // $stable(x), $past(x), $countones(x), ...
    };

    Kind kind;
    util::SourceLoc loc;

    // Number.
    uint64_t intValue = 0;
    int numWidth = 0;              // 0 = unsized
    bool isUnbasedUnsized = false; // '0 / '1
    bool hasUnknownBits = false;

    // Ident / Call.
    std::string name;

    // Operators.
    UnaryOp unaryOp{};
    BinaryOp binaryOp{};

    // Children: operands / concat elements / call arguments.
    std::vector<std::unique_ptr<Expr>> operands;

    // Source fidelity (projection only; semantics always come from the
    // structure above — the elaborator never reads these).
    /// The expression was explicitly parenthesized in the source, or a
    /// generator wants parentheses in the printed projection.
    bool parenthesized = false;
    /// Verbatim source spelling. When set, printExpr() emits it instead of
    /// the structural rendering, so user-written fragments (annotation
    /// expressions, width texts) survive the AST round-trip byte-for-byte.
    std::string origText;

    explicit Expr(Kind k) : kind(k) {}

    [[nodiscard]] bool isKind(Kind k) const { return kind == k; }
};

using ExprPtr = std::unique_ptr<Expr>;

[[nodiscard]] ExprPtr makeNumber(uint64_t value, int width, util::SourceLoc loc = {});
[[nodiscard]] ExprPtr makeIdent(std::string name, util::SourceLoc loc = {});
[[nodiscard]] ExprPtr makeUnary(UnaryOp op, ExprPtr operand);
[[nodiscard]] ExprPtr makeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr makeCall(std::string name, std::vector<ExprPtr> args);
[[nodiscard]] ExprPtr makeConcat(std::vector<ExprPtr> elems);
[[nodiscard]] ExprPtr makeTernary(ExprPtr cond, ExprPtr thenE, ExprPtr elseE);
[[nodiscard]] ExprPtr cloneExpr(const Expr& e);

/// Renders an expression back to fully-parenthesized normalized Verilog
/// text — used by the interface scanner and tests. Ignores source-fidelity
/// fields.
[[nodiscard]] std::string exprToString(const Expr& e);

/// Source-faithful rendering: emits `origText` verbatim when present and
/// otherwise a minimally-parenthesized structural rendering (parentheses
/// appear where precedence demands or where `parenthesized` is set). This
/// is the projection the printer uses for generated artifacts.
[[nodiscard]] std::string printExpr(const Expr& e);

// ---------------------------------------------------------------------------
// Statements (procedural)
// ---------------------------------------------------------------------------

struct Stmt {
    enum class Kind { Block, If, Case, Assign, Null };

    Kind kind;
    util::SourceLoc loc;

    // Block.
    std::vector<std::unique_ptr<Stmt>> stmts;

    // If.
    ExprPtr cond;
    std::unique_ptr<Stmt> thenStmt;
    std::unique_ptr<Stmt> elseStmt;

    // Case.
    ExprPtr subject;
    struct CaseItem {
        std::vector<ExprPtr> labels; // Empty = default.
        std::unique_ptr<Stmt> body;
    };
    std::vector<CaseItem> caseItems;
    bool isCasez = false;

    // Assign.
    ExprPtr lhs;
    ExprPtr rhs;
    bool nonBlocking = false;

    explicit Stmt(Kind k) : kind(k) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// SVA property layer
// ---------------------------------------------------------------------------

struct PropExpr {
    enum class Kind {
        Boolean,       // plain boolean expression over signals
        Implication,   // antecedent |-> / |=> consequent
        Eventually,    // s_eventually p (p must be boolean in this subset)
        Next,          // ##N p
        Not,           // not p
    };

    Kind kind;
    util::SourceLoc loc;

    ExprPtr boolean;                   // Boolean / Implication antecedent.
    std::unique_ptr<PropExpr> lhsProp; // (unused for Boolean)
    std::unique_ptr<PropExpr> rhsProp;
    bool overlapping = true;           // |-> vs |=>
    int delay = 0;                     // Next

    explicit PropExpr(Kind k) : kind(k) {}
};

using PropExprPtr = std::unique_ptr<PropExpr>;

enum class AssertionKind { Assert, Assume, Cover, Restrict };

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class PortDir { Input, Output, Inout };
enum class NetKind { Wire, Reg, Logic };

struct Range {
    ExprPtr msb;
    ExprPtr lsb;
};

struct Port {
    PortDir dir = PortDir::Input;
    NetKind netKind = NetKind::Wire;
    std::optional<Range> packed;
    std::string name;
    util::SourceLoc loc;
};

struct ParamDecl {
    std::string name;
    ExprPtr value;
    bool isLocal = false;
    std::optional<Range> packed; // Optional declared width (ignored for eval).
    util::SourceLoc loc;
};

struct NetDecl {
    NetKind kind = NetKind::Wire;
    std::optional<Range> packed;
    std::string name;
    std::optional<Range> unpacked; // Memory: name [0:DEPTH-1]
    ExprPtr init;                  // Optional `wire x = expr` shorthand.
    util::SourceLoc loc;
};

struct ContAssign {
    ExprPtr lhs;
    ExprPtr rhs;
    util::SourceLoc loc;
};

struct AlwaysBlock {
    enum class Kind { Comb, FF, Latch };
    Kind kind = Kind::Comb;
    std::string clockSignal;          // FF only.
    bool clockPosedge = true;
    std::optional<std::string> asyncResetSignal; // FF with async reset.
    bool asyncResetNegedge = true;
    StmtPtr body;
    util::SourceLoc loc;
};

struct NamedConnection {
    std::string name; // Port/parameter name; empty for positional.
    ExprPtr expr;     // May be null for `.name()` (unconnected).
    util::SourceLoc loc;
};

struct Instance {
    std::string moduleName;
    std::string instName;
    std::vector<NamedConnection> paramAssigns;
    std::vector<NamedConnection> portAssigns;
    bool wildcardPorts = false; // `.*`
    util::SourceLoc loc;
};

struct AssertionItem {
    AssertionKind kind = AssertionKind::Assert;
    std::string label;
    PropExprPtr prop;
    // Optional per-property clock/disable (falls back to module defaults).
    std::optional<std::string> clockSignal;
    ExprPtr disableExpr;
    util::SourceLoc loc;
};

/// A standalone comment line inside a module body (empty text = blank
/// line). Carried through the AST so generated modules print with their
/// section headers intact; the lexer drops comments, so parsed files never
/// contain these.
struct CommentItem {
    std::string text; ///< Without the leading `// `; empty = blank line.
    util::SourceLoc loc;
};

struct Module;

struct GenerateFor {
    std::string genvar;
    uint64_t start = 0;
    uint64_t limit = 0; // Exclusive upper bound after normalization.
    uint64_t step = 1;
    std::vector<struct ModuleItem> items; // Body instantiated per iteration.
};

struct ModuleItem {
    enum class Kind { Param, Net, ContAssign, Always, Instance, Assertion, GenFor, Comment };
    Kind kind;

    std::unique_ptr<ParamDecl> param;
    std::unique_ptr<NetDecl> net;
    std::unique_ptr<ContAssign> contAssign;
    std::unique_ptr<AlwaysBlock> always;
    std::unique_ptr<Instance> instance;
    std::unique_ptr<AssertionItem> assertion;
    std::unique_ptr<GenerateFor> genFor;
    std::unique_ptr<CommentItem> comment;

    explicit ModuleItem(Kind k) : kind(k) {}
};

struct Module {
    std::string name;
    std::vector<ParamDecl> params; // Header parameters.
    std::vector<Port> ports;
    std::vector<ModuleItem> items;
    // Module-level SVA defaults.
    std::optional<std::string> defaultClock;
    ExprPtr defaultDisable;
    /// Item index the `default clocking` / `default disable` declarations
    /// print before (they are fields, not items, because the elaborator
    /// consults them globally). -1 = directly after the module header.
    int svaDefaultsPos = -1;
    /// File-level `// ...` comment lines printed before `module`.
    std::vector<std::string> headerComments;
    util::SourceLoc loc;
};

struct BindDirective {
    std::string targetModule;
    std::string boundModule;
    std::string instName;
    std::vector<NamedConnection> portAssigns;
    bool wildcardPorts = false;
    /// `// ...` comment lines printed before the directive.
    std::vector<std::string> headerComments;
    util::SourceLoc loc;
};

struct SourceFile {
    std::vector<std::unique_ptr<Module>> modules;
    std::vector<BindDirective> binds;

    [[nodiscard]] const Module* findModule(std::string_view name) const {
        for (const auto& m : modules)
            if (m->name == name) return m.get();
        return nullptr;
    }
};

} // namespace autosva::verilog
