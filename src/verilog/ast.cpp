#include "verilog/ast.hpp"

namespace autosva::verilog {

ExprPtr makeNumber(uint64_t value, int width, util::SourceLoc loc) {
    auto e = std::make_unique<Expr>(Expr::Kind::Number);
    e->intValue = value;
    e->numWidth = width;
    e->loc = std::move(loc);
    return e;
}

ExprPtr makeIdent(std::string name, util::SourceLoc loc) {
    auto e = std::make_unique<Expr>(Expr::Kind::Ident);
    e->name = std::move(name);
    e->loc = std::move(loc);
    return e;
}

ExprPtr makeUnary(UnaryOp op, ExprPtr operand) {
    auto e = std::make_unique<Expr>(Expr::Kind::Unary);
    e->loc = operand->loc;
    e->unaryOp = op;
    e->operands.push_back(std::move(operand));
    return e;
}

ExprPtr makeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>(Expr::Kind::Binary);
    e->loc = lhs->loc;
    e->binaryOp = op;
    e->operands.push_back(std::move(lhs));
    e->operands.push_back(std::move(rhs));
    return e;
}

ExprPtr makeCall(std::string name, std::vector<ExprPtr> args) {
    auto e = std::make_unique<Expr>(Expr::Kind::Call);
    e->name = std::move(name);
    e->operands = std::move(args);
    return e;
}

ExprPtr makeConcat(std::vector<ExprPtr> elems) {
    auto e = std::make_unique<Expr>(Expr::Kind::Concat);
    e->operands = std::move(elems);
    return e;
}

ExprPtr makeTernary(ExprPtr cond, ExprPtr thenE, ExprPtr elseE) {
    auto e = std::make_unique<Expr>(Expr::Kind::Ternary);
    e->loc = cond->loc;
    e->operands.push_back(std::move(cond));
    e->operands.push_back(std::move(thenE));
    e->operands.push_back(std::move(elseE));
    return e;
}

ExprPtr cloneExpr(const Expr& e) {
    auto out = std::make_unique<Expr>(e.kind);
    out->loc = e.loc;
    out->intValue = e.intValue;
    out->numWidth = e.numWidth;
    out->isUnbasedUnsized = e.isUnbasedUnsized;
    out->hasUnknownBits = e.hasUnknownBits;
    out->name = e.name;
    out->unaryOp = e.unaryOp;
    out->binaryOp = e.binaryOp;
    out->parenthesized = e.parenthesized;
    out->origText = e.origText;
    out->operands.reserve(e.operands.size());
    for (const auto& op : e.operands) out->operands.push_back(cloneExpr(*op));
    return out;
}

namespace {

const char* unaryOpText(UnaryOp op) {
    switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::LogicNot: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::RedAnd: return "&";
    case UnaryOp::RedOr: return "|";
    case UnaryOp::RedXor: return "^";
    case UnaryOp::RedNand: return "~&";
    case UnaryOp::RedNor: return "~|";
    case UnaryOp::RedXnor: return "~^";
    }
    return "?";
}

const char* binaryOpText(BinaryOp op) {
    switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::Xnor: return "~^";
    case BinaryOp::LogicAnd: return "&&";
    case BinaryOp::LogicOr: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    }
    return "?";
}

} // namespace

std::string exprToString(const Expr& e) {
    switch (e.kind) {
    case Expr::Kind::Number:
        if (e.isUnbasedUnsized) return e.intValue ? "'1" : "'0";
        if (e.numWidth > 0)
            return std::to_string(e.numWidth) + "'d" + std::to_string(e.intValue);
        return std::to_string(e.intValue);
    case Expr::Kind::Ident:
        return e.name;
    case Expr::Kind::Unary:
        return std::string(unaryOpText(e.unaryOp)) + "(" + exprToString(*e.operands[0]) + ")";
    case Expr::Kind::Binary:
        return "(" + exprToString(*e.operands[0]) + " " + binaryOpText(e.binaryOp) + " " +
               exprToString(*e.operands[1]) + ")";
    case Expr::Kind::Ternary:
        return "(" + exprToString(*e.operands[0]) + " ? " + exprToString(*e.operands[1]) + " : " +
               exprToString(*e.operands[2]) + ")";
    case Expr::Kind::Index:
        return exprToString(*e.operands[0]) + "[" + exprToString(*e.operands[1]) + "]";
    case Expr::Kind::Range:
        return exprToString(*e.operands[0]) + "[" + exprToString(*e.operands[1]) + ":" +
               exprToString(*e.operands[2]) + "]";
    case Expr::Kind::Concat: {
        std::string out = "{";
        for (size_t i = 0; i < e.operands.size(); ++i) {
            if (i) out += ", ";
            out += exprToString(*e.operands[i]);
        }
        return out + "}";
    }
    case Expr::Kind::Replicate:
        return "{" + exprToString(*e.operands[0]) + "{" + exprToString(*e.operands[1]) + "}}";
    case Expr::Kind::Call: {
        std::string out = e.name + "(";
        for (size_t i = 0; i < e.operands.size(); ++i) {
            if (i) out += ", ";
            out += exprToString(*e.operands[i]);
        }
        return out + ")";
    }
    }
    return "?";
}

namespace {

constexpr int kPrecTernary = 0;
constexpr int kPrecUnary = 11;
constexpr int kPrecPrimary = 12;

int binaryOpPrec(BinaryOp op) {
    switch (op) {
    case BinaryOp::LogicOr: return 1;
    case BinaryOp::LogicAnd: return 2;
    case BinaryOp::Or: return 3;
    case BinaryOp::Xor:
    case BinaryOp::Xnor: return 4;
    case BinaryOp::And: return 5;
    case BinaryOp::Eq:
    case BinaryOp::Ne: return 6;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: return 7;
    case BinaryOp::Shl:
    case BinaryOp::Shr: return 8;
    case BinaryOp::Add:
    case BinaryOp::Sub: return 9;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: return 10;
    }
    return kPrecPrimary;
}

int exprPrec(const Expr& e) {
    switch (e.kind) {
    case Expr::Kind::Ternary: return kPrecTernary;
    case Expr::Kind::Binary: return binaryOpPrec(e.binaryOp);
    case Expr::Kind::Unary: return kPrecUnary;
    default: return kPrecPrimary;
    }
}

/// Renders `e` for a context that requires precedence >= minPrec,
/// parenthesizing when the context demands it or the node asks for it.
std::string printExprPrec(const Expr& e, int minPrec) {
    std::string inner;
    if (!e.origText.empty()) {
        inner = e.origText;
    } else {
        switch (e.kind) {
        case Expr::Kind::Number:
        case Expr::Kind::Ident:
            inner = exprToString(e);
            break;
        case Expr::Kind::Unary:
            inner = std::string(unaryOpText(e.unaryOp)) + printExprPrec(*e.operands[0], kPrecUnary);
            break;
        case Expr::Kind::Binary: {
            int prec = binaryOpPrec(e.binaryOp);
            // Left-associative: the left child may sit at the same level,
            // the right child must bind tighter.
            inner = printExprPrec(*e.operands[0], prec) + " " + binaryOpText(e.binaryOp) + " " +
                    printExprPrec(*e.operands[1], prec + 1);
            break;
        }
        case Expr::Kind::Ternary:
            inner = printExprPrec(*e.operands[0], kPrecTernary + 1) + " ? " +
                    printExprPrec(*e.operands[1], kPrecTernary) + " : " +
                    printExprPrec(*e.operands[2], kPrecTernary);
            break;
        case Expr::Kind::Index:
            inner = printExprPrec(*e.operands[0], kPrecPrimary) + "[" +
                    printExprPrec(*e.operands[1], kPrecTernary) + "]";
            break;
        case Expr::Kind::Range:
            inner = printExprPrec(*e.operands[0], kPrecPrimary) + "[" +
                    printExprPrec(*e.operands[1], kPrecTernary) + ":" +
                    printExprPrec(*e.operands[2], kPrecTernary) + "]";
            break;
        case Expr::Kind::Concat: {
            inner = "{";
            for (size_t i = 0; i < e.operands.size(); ++i) {
                if (i) inner += ", ";
                inner += printExprPrec(*e.operands[i], kPrecTernary);
            }
            inner += "}";
            break;
        }
        case Expr::Kind::Replicate:
            inner = "{" + printExprPrec(*e.operands[0], kPrecPrimary) + "{" +
                    printExprPrec(*e.operands[1], kPrecTernary) + "}}";
            break;
        case Expr::Kind::Call: {
            inner = e.name + "(";
            for (size_t i = 0; i < e.operands.size(); ++i) {
                if (i) inner += ", ";
                inner += printExprPrec(*e.operands[i], kPrecTernary);
            }
            inner += ")";
            break;
        }
        }
    }
    if (e.parenthesized || exprPrec(e) < minPrec) return "(" + inner + ")";
    return inner;
}

} // namespace

std::string printExpr(const Expr& e) { return printExprPrec(e, kPrecTernary); }

} // namespace autosva::verilog
