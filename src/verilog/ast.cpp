#include "verilog/ast.hpp"

namespace autosva::verilog {

ExprPtr makeNumber(uint64_t value, int width, util::SourceLoc loc) {
    auto e = std::make_unique<Expr>(Expr::Kind::Number);
    e->intValue = value;
    e->numWidth = width;
    e->loc = std::move(loc);
    return e;
}

ExprPtr makeIdent(std::string name, util::SourceLoc loc) {
    auto e = std::make_unique<Expr>(Expr::Kind::Ident);
    e->name = std::move(name);
    e->loc = std::move(loc);
    return e;
}

ExprPtr cloneExpr(const Expr& e) {
    auto out = std::make_unique<Expr>(e.kind);
    out->loc = e.loc;
    out->intValue = e.intValue;
    out->numWidth = e.numWidth;
    out->isUnbasedUnsized = e.isUnbasedUnsized;
    out->hasUnknownBits = e.hasUnknownBits;
    out->name = e.name;
    out->unaryOp = e.unaryOp;
    out->binaryOp = e.binaryOp;
    out->operands.reserve(e.operands.size());
    for (const auto& op : e.operands) out->operands.push_back(cloneExpr(*op));
    return out;
}

namespace {

const char* unaryOpText(UnaryOp op) {
    switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::LogicNot: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::RedAnd: return "&";
    case UnaryOp::RedOr: return "|";
    case UnaryOp::RedXor: return "^";
    case UnaryOp::RedNand: return "~&";
    case UnaryOp::RedNor: return "~|";
    case UnaryOp::RedXnor: return "~^";
    }
    return "?";
}

const char* binaryOpText(BinaryOp op) {
    switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::Xnor: return "~^";
    case BinaryOp::LogicAnd: return "&&";
    case BinaryOp::LogicOr: return "||";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    }
    return "?";
}

} // namespace

std::string exprToString(const Expr& e) {
    switch (e.kind) {
    case Expr::Kind::Number:
        if (e.isUnbasedUnsized) return e.intValue ? "'1" : "'0";
        if (e.numWidth > 0)
            return std::to_string(e.numWidth) + "'d" + std::to_string(e.intValue);
        return std::to_string(e.intValue);
    case Expr::Kind::Ident:
        return e.name;
    case Expr::Kind::Unary:
        return std::string(unaryOpText(e.unaryOp)) + "(" + exprToString(*e.operands[0]) + ")";
    case Expr::Kind::Binary:
        return "(" + exprToString(*e.operands[0]) + " " + binaryOpText(e.binaryOp) + " " +
               exprToString(*e.operands[1]) + ")";
    case Expr::Kind::Ternary:
        return "(" + exprToString(*e.operands[0]) + " ? " + exprToString(*e.operands[1]) + " : " +
               exprToString(*e.operands[2]) + ")";
    case Expr::Kind::Index:
        return exprToString(*e.operands[0]) + "[" + exprToString(*e.operands[1]) + "]";
    case Expr::Kind::Range:
        return exprToString(*e.operands[0]) + "[" + exprToString(*e.operands[1]) + ":" +
               exprToString(*e.operands[2]) + "]";
    case Expr::Kind::Concat: {
        std::string out = "{";
        for (size_t i = 0; i < e.operands.size(); ++i) {
            if (i) out += ", ";
            out += exprToString(*e.operands[i]);
        }
        return out + "}";
    }
    case Expr::Kind::Replicate:
        return "{" + exprToString(*e.operands[0]) + "{" + exprToString(*e.operands[1]) + "}}";
    case Expr::Kind::Call: {
        std::string out = e.name + "(";
        for (size_t i = 0; i < e.operands.size(); ++i) {
            if (i) out += ", ";
            out += exprToString(*e.operands[i]);
        }
        return out + ")";
    }
    }
    return "?";
}

} // namespace autosva::verilog
