#include "verilog/parser.hpp"

#include <atomic>

#include "util/diagnostics.hpp"
#include "verilog/lexer.hpp"

namespace autosva::verilog {

using util::FrontendError;

namespace {
std::atomic<uint64_t> g_sourceParses{0};
} // namespace

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

uint64_t Parser::sourceParseCount() { return g_sourceParses.load(std::memory_order_relaxed); }

SourceFile Parser::parseSource(std::string_view text, std::string bufferName) {
    g_sourceParses.fetch_add(1, std::memory_order_relaxed);
    Lexer lexer(text, std::move(bufferName));
    Parser parser(lexer.lexAll());
    return parser.parseFile();
}

ExprPtr Parser::parseExpression(std::string_view text, std::string bufferName) {
    Lexer lexer(text, std::move(bufferName));
    Parser parser(lexer.lexAll());
    ExprPtr e = parser.parseExpr();
    if (!parser.at(TokenKind::EndOfFile)) parser.error("trailing tokens after expression");
    e->origText = std::string(text);
    // The verbatim spelling already contains any outer parentheses; the
    // parenthesized flag would double-wrap it in printExpr.
    e->parenthesized = false;
    return e;
}

const Token& Parser::peek(size_t off) const {
    size_t i = cursor_ + off;
    if (i >= tokens_.size()) i = tokens_.size() - 1; // EOF token.
    return tokens_[i];
}

const Token& Parser::consume() {
    const Token& tok = tokens_[cursor_];
    if (cursor_ + 1 < tokens_.size()) ++cursor_;
    return tok;
}

bool Parser::accept(TokenKind kind) {
    if (at(kind)) {
        consume();
        return true;
    }
    return false;
}

const Token& Parser::expect(TokenKind kind, const char* what) {
    if (!at(kind))
        throw FrontendError(peek().loc, std::string("expected ") + what + " but found " +
                                            tokenKindName(peek().kind) +
                                            (peek().text.empty() ? "" : " '" + peek().text + "'"));
    return consume();
}

void Parser::error(const std::string& message) const { throw FrontendError(peek().loc, message); }

// ---------------------------------------------------------------------------
// File / module structure
// ---------------------------------------------------------------------------

SourceFile Parser::parseFile() {
    SourceFile file;
    while (!at(TokenKind::EndOfFile)) {
        if (at(TokenKind::KwModule)) {
            file.modules.push_back(parseModule());
        } else if (at(TokenKind::KwBind)) {
            file.binds.push_back(parseBind());
        } else {
            error("expected 'module' or 'bind' at top level");
        }
    }
    return file;
}

std::unique_ptr<Module> Parser::parseModule() {
    auto mod = std::make_unique<Module>();
    mod->loc = peek().loc;
    expect(TokenKind::KwModule, "'module'");
    mod->name = expect(TokenKind::Identifier, "module name").text;

    if (accept(TokenKind::Hash)) {
        expect(TokenKind::LParen, "'(' after '#'");
        parseHeaderParams(*mod);
        expect(TokenKind::RParen, "')' closing parameter list");
    }
    if (accept(TokenKind::LParen)) {
        if (!at(TokenKind::RParen)) parsePortList(*mod);
        expect(TokenKind::RParen, "')' closing port list");
    }
    expect(TokenKind::Semi, "';' after module header");
    parseModuleItems(*mod);
    expect(TokenKind::KwEndmodule, "'endmodule'");
    accept(TokenKind::Colon) && (expect(TokenKind::Identifier, "module name"), true);
    return mod;
}

void Parser::parseHeaderParams(Module& mod) {
    for (;;) {
        accept(TokenKind::KwParameter) || accept(TokenKind::KwLocalparam);
        accept(TokenKind::KwInteger); // `parameter integer N = ...`
        std::optional<Range> packed = tryParseRange();
        ParamDecl p;
        p.packed = std::move(packed);
        p.loc = peek().loc;
        p.name = expect(TokenKind::Identifier, "parameter name").text;
        expect(TokenKind::Eq, "'=' in parameter");
        p.value = parseExpr();
        mod.params.push_back(std::move(p));
        if (!accept(TokenKind::Comma)) break;
    }
}

void Parser::parsePortList(Module& mod) {
    PortDir dir = PortDir::Input;
    NetKind kind = NetKind::Wire;
    std::optional<Range> packed;
    for (;;) {
        bool sawDir = false;
        if (accept(TokenKind::KwInput)) {
            dir = PortDir::Input;
            sawDir = true;
        } else if (accept(TokenKind::KwOutput)) {
            dir = PortDir::Output;
            sawDir = true;
        } else if (accept(TokenKind::KwInout)) {
            dir = PortDir::Inout;
            sawDir = true;
        }
        bool sawKind = false;
        if (accept(TokenKind::KwWire)) {
            kind = NetKind::Wire;
            sawKind = true;
        } else if (accept(TokenKind::KwReg)) {
            kind = NetKind::Reg;
            sawKind = true;
        } else if (accept(TokenKind::KwLogic)) {
            kind = NetKind::Logic;
            sawKind = true;
        }
        accept(TokenKind::KwSigned) || accept(TokenKind::KwUnsigned);
        if (sawDir || sawKind || at(TokenKind::LBracket)) {
            if (sawDir && !sawKind) kind = NetKind::Wire;
            packed = tryParseRange();
        }
        Port port;
        port.dir = dir;
        port.netKind = kind;
        port.loc = peek().loc;
        if (packed) port.packed = Range{cloneExpr(*packed->msb), cloneExpr(*packed->lsb)};
        port.name = expect(TokenKind::Identifier, "port name").text;
        mod.ports.push_back(std::move(port));
        if (!accept(TokenKind::Comma)) break;
    }
}

std::optional<Range> Parser::tryParseRange() {
    if (!at(TokenKind::LBracket)) return std::nullopt;
    consume();
    Range r;
    r.msb = parseExpr();
    expect(TokenKind::Colon, "':' in range");
    r.lsb = parseExpr();
    expect(TokenKind::RBracket, "']' closing range");
    return r;
}

void Parser::parseModuleItems(Module& mod) {
    while (!at(TokenKind::KwEndmodule) && !at(TokenKind::EndOfFile)) {
        switch (peek().kind) {
        case TokenKind::KwParameter:
            consume();
            parseParamDecl(mod, /*isLocal=*/false);
            break;
        case TokenKind::KwLocalparam:
            consume();
            parseParamDecl(mod, /*isLocal=*/true);
            break;
        case TokenKind::KwWire:
            consume();
            parseNetDecl(mod.items, NetKind::Wire);
            break;
        case TokenKind::KwReg:
            consume();
            parseNetDecl(mod.items, NetKind::Reg);
            break;
        case TokenKind::KwLogic:
            consume();
            parseNetDecl(mod.items, NetKind::Logic);
            break;
        case TokenKind::KwAssign:
            mod.items.push_back(parseContAssign());
            break;
        case TokenKind::KwAlways:
        case TokenKind::KwAlwaysFF:
        case TokenKind::KwAlwaysComb:
            mod.items.push_back(parseAlways(consume().kind));
            break;
        case TokenKind::KwAssert:
        case TokenKind::KwAssume:
        case TokenKind::KwCover:
        case TokenKind::KwRestrict:
            mod.items.push_back(parseAssertion(""));
            break;
        case TokenKind::KwDefault:
            // `default clocking ...` or `default disable iff (...)`.
            consume();
            if (mod.svaDefaultsPos < 0) mod.svaDefaultsPos = static_cast<int>(mod.items.size());
            if (at(TokenKind::KwClocking)) {
                parseDefaultClocking(mod);
            } else if (at(TokenKind::KwDisable)) {
                parseDefaultDisable(mod);
            } else {
                error("expected 'clocking' or 'disable' after 'default'");
            }
            break;
        case TokenKind::KwGenvar:
            consume();
            expect(TokenKind::Identifier, "genvar name");
            while (accept(TokenKind::Comma)) expect(TokenKind::Identifier, "genvar name");
            expect(TokenKind::Semi, "';'");
            break;
        case TokenKind::Identifier: {
            // Either `label: assert ...` or a module instance.
            if (peek(1).is(TokenKind::Colon)) {
                std::string label = consume().text;
                consume(); // ':'
                mod.items.push_back(parseAssertion(std::move(label)));
            } else {
                mod.items.push_back(parseInstance());
            }
            break;
        }
        default:
            error("unsupported module item");
        }
    }
}

void Parser::parseParamDecl(Module& mod, bool isLocal) {
    accept(TokenKind::KwInteger);
    std::optional<Range> packed = tryParseRange();
    for (;;) {
        ModuleItem item(ModuleItem::Kind::Param);
        auto p = std::make_unique<ParamDecl>();
        p->isLocal = isLocal;
        p->loc = peek().loc;
        if (packed) p->packed = Range{cloneExpr(*packed->msb), cloneExpr(*packed->lsb)};
        p->name = expect(TokenKind::Identifier, "parameter name").text;
        expect(TokenKind::Eq, "'=' in parameter");
        p->value = parseExpr();
        item.param = std::move(p);
        mod.items.push_back(std::move(item));
        if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::Semi, "';' after parameter declaration");
}

void Parser::parseNetDecl(std::vector<ModuleItem>& items, NetKind kind) {
    accept(TokenKind::KwSigned) || accept(TokenKind::KwUnsigned);
    std::optional<Range> packed = tryParseRange();
    for (;;) {
        ModuleItem item(ModuleItem::Kind::Net);
        auto n = std::make_unique<NetDecl>();
        n->kind = kind;
        n->loc = peek().loc;
        if (packed) n->packed = Range{cloneExpr(*packed->msb), cloneExpr(*packed->lsb)};
        n->name = expect(TokenKind::Identifier, "net name").text;
        n->unpacked = tryParseRange();
        if (accept(TokenKind::Eq)) n->init = parseExpr();
        item.net = std::move(n);
        items.push_back(std::move(item));
        if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::Semi, "';' after net declaration");
}

ModuleItem Parser::parseContAssign() {
    expect(TokenKind::KwAssign, "'assign'");
    ModuleItem item(ModuleItem::Kind::ContAssign);
    auto a = std::make_unique<ContAssign>();
    a->loc = peek().loc;
    a->lhs = parseExpr();
    expect(TokenKind::Eq, "'=' in continuous assignment");
    a->rhs = parseExpr();
    expect(TokenKind::Semi, "';' after assignment");
    item.contAssign = std::move(a);
    return item;
}

ModuleItem Parser::parseAlways(TokenKind introducer) {
    ModuleItem item(ModuleItem::Kind::Always);
    auto blk = std::make_unique<AlwaysBlock>();
    blk->loc = peek().loc;

    bool needsSensitivity = introducer == TokenKind::KwAlways || introducer == TokenKind::KwAlwaysFF;
    blk->kind = AlwaysBlock::Kind::Comb;
    if (needsSensitivity) {
        expect(TokenKind::At, "'@' after always");
        if (accept(TokenKind::Star)) {
            blk->kind = AlwaysBlock::Kind::Comb;
        } else {
            expect(TokenKind::LParen, "'(' in sensitivity list");
            if (accept(TokenKind::Star)) {
                blk->kind = AlwaysBlock::Kind::Comb;
            } else {
                blk->kind = AlwaysBlock::Kind::FF;
                bool posedge = true;
                if (accept(TokenKind::KwPosedge))
                    posedge = true;
                else if (accept(TokenKind::KwNegedge))
                    posedge = false;
                else
                    error("expected edge in sensitivity list");
                blk->clockPosedge = posedge;
                blk->clockSignal = expect(TokenKind::Identifier, "clock signal").text;
                if (accept(TokenKind::KwOr) || accept(TokenKind::Comma)) {
                    bool rstNegedge = true;
                    if (accept(TokenKind::KwNegedge))
                        rstNegedge = true;
                    else if (accept(TokenKind::KwPosedge))
                        rstNegedge = false;
                    else
                        error("expected edge for reset in sensitivity list");
                    blk->asyncResetNegedge = rstNegedge;
                    blk->asyncResetSignal = expect(TokenKind::Identifier, "reset signal").text;
                }
            }
            expect(TokenKind::RParen, "')' closing sensitivity list");
        }
    }
    blk->body = parseStmt();
    item.always = std::move(blk);
    return item;
}

ModuleItem Parser::parseInstance() {
    ModuleItem item(ModuleItem::Kind::Instance);
    auto inst = std::make_unique<Instance>();
    inst->loc = peek().loc;
    inst->moduleName = expect(TokenKind::Identifier, "module name").text;
    if (accept(TokenKind::Hash)) {
        expect(TokenKind::LParen, "'(' after '#'");
        for (;;) {
            NamedConnection conn;
            conn.loc = peek().loc;
            if (accept(TokenKind::Dot)) {
                conn.name = expect(TokenKind::Identifier, "parameter name").text;
                expect(TokenKind::LParen, "'('");
                if (!at(TokenKind::RParen)) conn.expr = parseExpr();
                expect(TokenKind::RParen, "')'");
            } else {
                conn.expr = parseExpr(); // Positional.
            }
            inst->paramAssigns.push_back(std::move(conn));
            if (!accept(TokenKind::Comma)) break;
        }
        expect(TokenKind::RParen, "')' closing parameter assignment");
    }
    inst->instName = expect(TokenKind::Identifier, "instance name").text;
    expect(TokenKind::LParen, "'(' opening port connections");
    if (!at(TokenKind::RParen)) {
        for (;;) {
            if (accept(TokenKind::Dot)) {
                if (accept(TokenKind::Star)) {
                    inst->wildcardPorts = true;
                } else {
                    NamedConnection conn;
                    conn.loc = peek().loc;
                    conn.name = expect(TokenKind::Identifier, "port name").text;
                    expect(TokenKind::LParen, "'('");
                    if (!at(TokenKind::RParen)) conn.expr = parseExpr();
                    expect(TokenKind::RParen, "')'");
                    inst->portAssigns.push_back(std::move(conn));
                }
            } else {
                NamedConnection conn;
                conn.loc = peek().loc;
                conn.expr = parseExpr(); // Positional.
                inst->portAssigns.push_back(std::move(conn));
            }
            if (!accept(TokenKind::Comma)) break;
        }
    }
    expect(TokenKind::RParen, "')' closing port connections");
    expect(TokenKind::Semi, "';' after instance");
    item.instance = std::move(inst);
    return item;
}

ModuleItem Parser::parseAssertion(std::string label) {
    ModuleItem item(ModuleItem::Kind::Assertion);
    auto a = std::make_unique<AssertionItem>();
    a->label = std::move(label);
    a->loc = peek().loc;
    switch (consume().kind) {
    case TokenKind::KwAssert: a->kind = AssertionKind::Assert; break;
    case TokenKind::KwAssume: a->kind = AssertionKind::Assume; break;
    case TokenKind::KwCover: a->kind = AssertionKind::Cover; break;
    case TokenKind::KwRestrict: a->kind = AssertionKind::Restrict; break;
    default: error("expected assertion kind");
    }
    expect(TokenKind::KwProperty, "'property'");
    expect(TokenKind::LParen, "'(' opening property");
    if (accept(TokenKind::At)) {
        expect(TokenKind::LParen, "'(' after '@'");
        accept(TokenKind::KwPosedge) || accept(TokenKind::KwNegedge);
        a->clockSignal = expect(TokenKind::Identifier, "clock signal").text;
        expect(TokenKind::RParen, "')'");
    }
    if (accept(TokenKind::KwDisable)) {
        expect(TokenKind::KwIff, "'iff'");
        expect(TokenKind::LParen, "'(' after 'disable iff'");
        a->disableExpr = parseExpr();
        expect(TokenKind::RParen, "')'");
    }
    a->prop = parsePropExpr();
    expect(TokenKind::RParen, "')' closing property");
    expect(TokenKind::Semi, "';' after assertion");
    item.assertion = std::move(a);
    return item;
}

void Parser::parseDefaultClocking(Module& mod) {
    expect(TokenKind::KwClocking, "'clocking'");
    // `default clocking cb @(posedge clk); endclocking` or
    // `default clocking @(posedge clk);`
    if (at(TokenKind::Identifier)) consume(); // Clocking block name.
    expect(TokenKind::At, "'@'");
    expect(TokenKind::LParen, "'('");
    accept(TokenKind::KwPosedge) || accept(TokenKind::KwNegedge);
    mod.defaultClock = expect(TokenKind::Identifier, "clock signal").text;
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Semi, "';'");
    if (accept(TokenKind::KwEndclocking)) {
        // Optional `endclocking` with no body.
    }
}

void Parser::parseDefaultDisable(Module& mod) {
    expect(TokenKind::KwDisable, "'disable'");
    expect(TokenKind::KwIff, "'iff'");
    expect(TokenKind::LParen, "'('");
    mod.defaultDisable = parseExpr();
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Semi, "';'");
}

BindDirective Parser::parseBind() {
    BindDirective bind;
    bind.loc = peek().loc;
    expect(TokenKind::KwBind, "'bind'");
    bind.targetModule = expect(TokenKind::Identifier, "target module name").text;
    bind.boundModule = expect(TokenKind::Identifier, "bound module name").text;
    bind.instName = expect(TokenKind::Identifier, "instance name").text;
    expect(TokenKind::LParen, "'(' opening bind connections");
    if (!at(TokenKind::RParen)) {
        for (;;) {
            expect(TokenKind::Dot, "'.' in bind connection");
            if (accept(TokenKind::Star)) {
                bind.wildcardPorts = true;
            } else {
                NamedConnection conn;
                conn.loc = peek().loc;
                conn.name = expect(TokenKind::Identifier, "port name").text;
                expect(TokenKind::LParen, "'('");
                if (!at(TokenKind::RParen)) conn.expr = parseExpr();
                expect(TokenKind::RParen, "')'");
                bind.portAssigns.push_back(std::move(conn));
            }
            if (!accept(TokenKind::Comma)) break;
        }
    }
    expect(TokenKind::RParen, "')' closing bind connections");
    expect(TokenKind::Semi, "';' after bind");
    return bind;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parseStmt() {
    if (accept(TokenKind::KwBegin)) {
        accept(TokenKind::Colon) && (expect(TokenKind::Identifier, "block label"), true);
        auto blk = std::make_unique<Stmt>(Stmt::Kind::Block);
        blk->loc = peek().loc;
        while (!at(TokenKind::KwEnd) && !at(TokenKind::EndOfFile)) blk->stmts.push_back(parseStmt());
        expect(TokenKind::KwEnd, "'end'");
        accept(TokenKind::Colon) && (expect(TokenKind::Identifier, "block label"), true);
        return blk;
    }
    if (accept(TokenKind::KwIf)) {
        auto s = std::make_unique<Stmt>(Stmt::Kind::If);
        s->loc = peek().loc;
        expect(TokenKind::LParen, "'(' after 'if'");
        s->cond = parseExpr();
        expect(TokenKind::RParen, "')' closing condition");
        s->thenStmt = parseStmt();
        if (accept(TokenKind::KwElse)) s->elseStmt = parseStmt();
        return s;
    }
    if (at(TokenKind::KwCase) || at(TokenKind::KwCasez) || at(TokenKind::KwCasex)) {
        bool isCasez = !at(TokenKind::KwCase);
        consume();
        return parseCase(isCasez);
    }
    if (accept(TokenKind::Semi)) {
        return std::make_unique<Stmt>(Stmt::Kind::Null);
    }
    // Assignment: lhs (= | <=) rhs ;
    // The LHS must be parsed as an lvalue (primary/select/concat), not a
    // full expression: otherwise `q <= 1'b0` lexes `<=` as less-or-equal.
    auto s = std::make_unique<Stmt>(Stmt::Kind::Assign);
    s->loc = peek().loc;
    s->lhs = parsePostfix(parsePrimary());
    if (accept(TokenKind::LtEq)) {
        s->nonBlocking = true;
    } else {
        expect(TokenKind::Eq, "'=' or '<=' in assignment");
        s->nonBlocking = false;
    }
    s->rhs = parseExpr();
    expect(TokenKind::Semi, "';' after assignment");
    return s;
}

StmtPtr Parser::parseCase(bool isCasez) {
    auto s = std::make_unique<Stmt>(Stmt::Kind::Case);
    s->loc = peek().loc;
    s->isCasez = isCasez;
    expect(TokenKind::LParen, "'(' after 'case'");
    s->subject = parseExpr();
    expect(TokenKind::RParen, "')' closing case subject");
    while (!at(TokenKind::KwEndcase) && !at(TokenKind::EndOfFile)) {
        Stmt::CaseItem item;
        if (accept(TokenKind::KwDefault)) {
            accept(TokenKind::Colon);
        } else {
            for (;;) {
                item.labels.push_back(parseExpr());
                if (!accept(TokenKind::Comma)) break;
            }
            expect(TokenKind::Colon, "':' after case labels");
        }
        item.body = parseStmt();
        s->caseItems.push_back(std::move(item));
    }
    expect(TokenKind::KwEndcase, "'endcase'");
    return s;
}

// ---------------------------------------------------------------------------
// SVA properties
// ---------------------------------------------------------------------------

PropExprPtr Parser::parsePropExpr() {
    if (accept(TokenKind::KwSEventually)) {
        auto p = std::make_unique<PropExpr>(PropExpr::Kind::Eventually);
        p->loc = peek().loc;
        bool paren = accept(TokenKind::LParen);
        p->rhsProp = parsePropExpr();
        if (paren) expect(TokenKind::RParen, "')' closing s_eventually");
        return p;
    }
    if (accept(TokenKind::KwNot)) {
        auto p = std::make_unique<PropExpr>(PropExpr::Kind::Not);
        p->loc = peek().loc;
        p->rhsProp = parsePropExpr();
        return p;
    }
    if (at(TokenKind::HashHash)) {
        consume();
        auto p = std::make_unique<PropExpr>(PropExpr::Kind::Next);
        p->loc = peek().loc;
        p->delay = static_cast<int>(expect(TokenKind::Number, "delay count").intValue);
        p->rhsProp = parsePropExpr();
        return p;
    }

    // Boolean expression, possibly the antecedent of an implication. Handle
    // the paren ambiguity `(a |-> b)` vs `(a && b) |-> c` by backtracking.
    size_t snapshot = cursor_;
    ExprPtr boolean;
    try {
        boolean = parseExpr();
    } catch (const FrontendError&) {
        cursor_ = snapshot;
        expect(TokenKind::LParen, "'(' opening property");
        auto inner = parsePropExpr();
        expect(TokenKind::RParen, "')' closing property");
        return inner;
    }

    if (at(TokenKind::OverlapImpl) || at(TokenKind::NonOverlapImpl)) {
        bool overlapping = consume().kind == TokenKind::OverlapImpl;
        auto p = std::make_unique<PropExpr>(PropExpr::Kind::Implication);
        p->loc = boolean->loc;
        p->boolean = std::move(boolean);
        p->overlapping = overlapping;
        p->rhsProp = parsePropExpr();
        return p;
    }
    auto p = std::make_unique<PropExpr>(PropExpr::Kind::Boolean);
    p->loc = boolean->loc;
    p->boolean = std::move(boolean);
    return p;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

namespace {

/// Binary operator precedence (higher binds tighter), and mapping from
/// tokens; returns -1 for non-operators.
int binaryPrec(TokenKind kind) {
    switch (kind) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::Pipe: return 3;
    case TokenKind::Caret:
    case TokenKind::TildeCaret: return 4;
    case TokenKind::Amp: return 5;
    case TokenKind::EqEq:
    case TokenKind::BangEq: return 6;
    case TokenKind::Lt:
    case TokenKind::LtEq:
    case TokenKind::Gt:
    case TokenKind::GtEq: return 7;
    case TokenKind::LtLt:
    case TokenKind::GtGt: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    default: return -1;
    }
}

BinaryOp binaryOpFor(TokenKind kind) {
    switch (kind) {
    case TokenKind::PipePipe: return BinaryOp::LogicOr;
    case TokenKind::AmpAmp: return BinaryOp::LogicAnd;
    case TokenKind::Pipe: return BinaryOp::Or;
    case TokenKind::Caret: return BinaryOp::Xor;
    case TokenKind::TildeCaret: return BinaryOp::Xnor;
    case TokenKind::Amp: return BinaryOp::And;
    case TokenKind::EqEq: return BinaryOp::Eq;
    case TokenKind::BangEq: return BinaryOp::Ne;
    case TokenKind::Lt: return BinaryOp::Lt;
    case TokenKind::LtEq: return BinaryOp::Le;
    case TokenKind::Gt: return BinaryOp::Gt;
    case TokenKind::GtEq: return BinaryOp::Ge;
    case TokenKind::LtLt: return BinaryOp::Shl;
    case TokenKind::GtGt: return BinaryOp::Shr;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Mod;
    default: return BinaryOp::Add;
    }
}

} // namespace

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
    ExprPtr cond = parseBinary(1);
    if (!accept(TokenKind::Question)) return cond;
    auto e = std::make_unique<Expr>(Expr::Kind::Ternary);
    e->loc = cond->loc;
    ExprPtr thenExpr = parseTernary();
    expect(TokenKind::Colon, "':' in ternary");
    ExprPtr elseExpr = parseTernary();
    e->operands.push_back(std::move(cond));
    e->operands.push_back(std::move(thenExpr));
    e->operands.push_back(std::move(elseExpr));
    return e;
}

ExprPtr Parser::parseBinary(int minPrec) {
    ExprPtr lhs = parseUnary();
    for (;;) {
        int prec = binaryPrec(peek().kind);
        if (prec < minPrec) return lhs;
        TokenKind opKind = consume().kind;
        ExprPtr rhs = parseBinary(prec + 1);
        auto e = std::make_unique<Expr>(Expr::Kind::Binary);
        e->loc = lhs->loc;
        e->binaryOp = binaryOpFor(opKind);
        e->operands.push_back(std::move(lhs));
        e->operands.push_back(std::move(rhs));
        lhs = std::move(e);
    }
}

ExprPtr Parser::parseUnary() {
    auto makeUnary = [&](UnaryOp op) {
        auto e = std::make_unique<Expr>(Expr::Kind::Unary);
        e->loc = peek().loc;
        e->unaryOp = op;
        e->operands.push_back(parseUnary());
        return e;
    };
    switch (peek().kind) {
    case TokenKind::Plus: consume(); return makeUnary(UnaryOp::Plus);
    case TokenKind::Minus: consume(); return makeUnary(UnaryOp::Minus);
    case TokenKind::Bang: consume(); return makeUnary(UnaryOp::LogicNot);
    case TokenKind::Tilde:
        consume();
        if (accept(TokenKind::Amp)) return makeUnary(UnaryOp::RedNand);
        if (accept(TokenKind::Pipe)) return makeUnary(UnaryOp::RedNor);
        return makeUnary(UnaryOp::BitNot);
    case TokenKind::TildeCaret: consume(); return makeUnary(UnaryOp::RedXnor);
    case TokenKind::Amp: consume(); return makeUnary(UnaryOp::RedAnd);
    case TokenKind::Pipe: consume(); return makeUnary(UnaryOp::RedOr);
    case TokenKind::Caret: consume(); return makeUnary(UnaryOp::RedXor);
    default: return parsePostfix(parsePrimary());
    }
}

ExprPtr Parser::parsePrimary() {
    const Token& tok = peek();
    switch (tok.kind) {
    case TokenKind::Number: {
        consume();
        auto e = std::make_unique<Expr>(Expr::Kind::Number);
        e->loc = tok.loc;
        e->intValue = tok.intValue;
        e->numWidth = tok.numWidth;
        e->isUnbasedUnsized = tok.isUnbasedUnsized;
        e->hasUnknownBits = tok.hasUnknownBits;
        return e;
    }
    case TokenKind::Identifier: {
        consume();
        auto e = makeIdent(tok.text, tok.loc);
        return e;
    }
    case TokenKind::SystemIdent: {
        consume();
        auto e = std::make_unique<Expr>(Expr::Kind::Call);
        e->loc = tok.loc;
        e->name = tok.text;
        if (accept(TokenKind::LParen)) {
            if (!at(TokenKind::RParen)) {
                for (;;) {
                    e->operands.push_back(parseExpr());
                    if (!accept(TokenKind::Comma)) break;
                }
            }
            expect(TokenKind::RParen, "')' closing call");
        }
        return e;
    }
    case TokenKind::LParen: {
        consume();
        ExprPtr inner = parseExpr();
        expect(TokenKind::RParen, "')' closing parenthesized expression");
        inner->parenthesized = true; // Preserved by the source-faithful printer.
        return inner;
    }
    case TokenKind::LBrace: {
        consume();
        ExprPtr first = parseExpr();
        if (at(TokenKind::LBrace)) {
            // Replication {N{expr}}.
            consume();
            auto e = std::make_unique<Expr>(Expr::Kind::Replicate);
            e->loc = tok.loc;
            ExprPtr body = parseExpr();
            expect(TokenKind::RBrace, "'}' closing replication body");
            expect(TokenKind::RBrace, "'}' closing replication");
            e->operands.push_back(std::move(first));
            e->operands.push_back(std::move(body));
            return e;
        }
        auto e = std::make_unique<Expr>(Expr::Kind::Concat);
        e->loc = tok.loc;
        e->operands.push_back(std::move(first));
        while (accept(TokenKind::Comma)) e->operands.push_back(parseExpr());
        expect(TokenKind::RBrace, "'}' closing concatenation");
        return e;
    }
    default:
        throw FrontendError(tok.loc, std::string("expected expression but found ") +
                                         tokenKindName(tok.kind));
    }
}

ExprPtr Parser::parsePostfix(ExprPtr base) {
    for (;;) {
        if (at(TokenKind::LBracket)) {
            consume();
            ExprPtr first = parseExpr();
            if (accept(TokenKind::Colon)) {
                auto e = std::make_unique<Expr>(Expr::Kind::Range);
                e->loc = base->loc;
                ExprPtr lsb = parseExpr();
                expect(TokenKind::RBracket, "']' closing part select");
                e->operands.push_back(std::move(base));
                e->operands.push_back(std::move(first));
                e->operands.push_back(std::move(lsb));
                base = std::move(e);
            } else if (accept(TokenKind::PlusColon)) {
                // a[i +: W] — normalized later by the elaborator.
                auto e = std::make_unique<Expr>(Expr::Kind::Call);
                e->loc = base->loc;
                e->name = "$partselect_up";
                ExprPtr width = parseExpr();
                expect(TokenKind::RBracket, "']' closing indexed part select");
                e->operands.push_back(std::move(base));
                e->operands.push_back(std::move(first));
                e->operands.push_back(std::move(width));
                base = std::move(e);
            } else {
                auto e = std::make_unique<Expr>(Expr::Kind::Index);
                e->loc = base->loc;
                expect(TokenKind::RBracket, "']' closing bit select");
                e->operands.push_back(std::move(base));
                e->operands.push_back(std::move(first));
                base = std::move(e);
            }
        } else {
            return base;
        }
    }
}

} // namespace autosva::verilog
