#include "verilog/printer.hpp"

namespace autosva::verilog {

namespace {

std::string pad(int indent) { return std::string(static_cast<size_t>(indent), ' '); }

std::string printRange(const std::optional<Range>& range) {
    if (!range) return "";
    return "[" + exprToString(*range->msb) + ":" + exprToString(*range->lsb) + "] ";
}

const char* netKindName(NetKind kind) {
    switch (kind) {
    case NetKind::Wire: return "wire";
    case NetKind::Reg: return "reg";
    case NetKind::Logic: return "logic";
    }
    return "wire";
}

const char* dirName(PortDir dir) {
    switch (dir) {
    case PortDir::Input: return "input";
    case PortDir::Output: return "output";
    case PortDir::Inout: return "inout";
    }
    return "input";
}

} // namespace

std::string printPropExpr(const PropExpr& prop) {
    switch (prop.kind) {
    case PropExpr::Kind::Boolean:
        return exprToString(*prop.boolean);
    case PropExpr::Kind::Implication:
        return exprToString(*prop.boolean) + (prop.overlapping ? " |-> " : " |=> ") +
               printPropExpr(*prop.rhsProp);
    case PropExpr::Kind::Eventually:
        return "s_eventually (" + printPropExpr(*prop.rhsProp) + ")";
    case PropExpr::Kind::Next:
        return "##" + std::to_string(prop.delay) + " " + printPropExpr(*prop.rhsProp);
    case PropExpr::Kind::Not:
        return "not (" + printPropExpr(*prop.rhsProp) + ")";
    }
    return "?";
}

std::string printStmt(const Stmt& stmt, int indent) {
    switch (stmt.kind) {
    case Stmt::Kind::Null:
        return pad(indent) + ";\n";
    case Stmt::Kind::Block: {
        std::string out = pad(indent) + "begin\n";
        for (const auto& s : stmt.stmts) out += printStmt(*s, indent + 2);
        out += pad(indent) + "end\n";
        return out;
    }
    case Stmt::Kind::Assign:
        return pad(indent) + exprToString(*stmt.lhs) + (stmt.nonBlocking ? " <= " : " = ") +
               exprToString(*stmt.rhs) + ";\n";
    case Stmt::Kind::If: {
        std::string out = pad(indent) + "if (" + exprToString(*stmt.cond) + ")\n";
        out += stmt.thenStmt ? printStmt(*stmt.thenStmt, indent + 2) : pad(indent + 2) + ";\n";
        if (stmt.elseStmt) {
            out += pad(indent) + "else\n";
            out += printStmt(*stmt.elseStmt, indent + 2);
        }
        return out;
    }
    case Stmt::Kind::Case: {
        std::string out = pad(indent) + (stmt.isCasez ? "casez (" : "case (") +
                          exprToString(*stmt.subject) + ")\n";
        for (const auto& item : stmt.caseItems) {
            if (item.labels.empty()) {
                out += pad(indent + 2) + "default:\n";
            } else {
                std::string labels;
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i) labels += ", ";
                    labels += exprToString(*item.labels[i]);
                }
                out += pad(indent + 2) + labels + ":\n";
            }
            out += item.body ? printStmt(*item.body, indent + 4) : pad(indent + 4) + ";\n";
        }
        out += pad(indent) + "endcase\n";
        return out;
    }
    }
    return "";
}

std::string printModule(const Module& mod) {
    std::string out = "module " + mod.name;
    if (!mod.params.empty()) {
        out += " #(\n";
        for (size_t i = 0; i < mod.params.size(); ++i) {
            out += "  parameter " + printRange(mod.params[i].packed) + mod.params[i].name +
                   " = " + exprToString(*mod.params[i].value);
            out += i + 1 < mod.params.size() ? ",\n" : "\n";
        }
        out += ")";
    }
    if (!mod.ports.empty()) {
        out += " (\n";
        for (size_t i = 0; i < mod.ports.size(); ++i) {
            const Port& p = mod.ports[i];
            out += std::string("  ") + dirName(p.dir) + " " + netKindName(p.netKind) + " " +
                   printRange(p.packed) + p.name;
            out += i + 1 < mod.ports.size() ? ",\n" : "\n";
        }
        out += ")";
    }
    out += ";\n";

    if (mod.defaultClock)
        out += "  default clocking cb @(posedge " + *mod.defaultClock + "); endclocking\n";
    if (mod.defaultDisable)
        out += "  default disable iff (" + exprToString(*mod.defaultDisable) + ");\n";

    for (const auto& item : mod.items) {
        switch (item.kind) {
        case ModuleItem::Kind::Param:
            out += std::string("  ") + (item.param->isLocal ? "localparam " : "parameter ") +
                   item.param->name + " = " + exprToString(*item.param->value) + ";\n";
            break;
        case ModuleItem::Kind::Net: {
            const NetDecl& n = *item.net;
            out += std::string("  ") + netKindName(n.kind) + " " + printRange(n.packed) + n.name;
            if (n.unpacked)
                out += " [" + exprToString(*n.unpacked->msb) + ":" +
                       exprToString(*n.unpacked->lsb) + "]";
            if (n.init) out += " = " + exprToString(*n.init);
            out += ";\n";
            break;
        }
        case ModuleItem::Kind::ContAssign:
            out += "  assign " + exprToString(*item.contAssign->lhs) + " = " +
                   exprToString(*item.contAssign->rhs) + ";\n";
            break;
        case ModuleItem::Kind::Always: {
            const AlwaysBlock& blk = *item.always;
            if (blk.kind == AlwaysBlock::Kind::Comb) {
                out += "  always_comb\n";
            } else {
                out += "  always_ff @(" + std::string(blk.clockPosedge ? "posedge " : "negedge ") +
                       blk.clockSignal;
                if (blk.asyncResetSignal)
                    out += std::string(" or ") + (blk.asyncResetNegedge ? "negedge " : "posedge ") +
                           *blk.asyncResetSignal;
                out += ")\n";
            }
            out += printStmt(*blk.body, 2);
            break;
        }
        case ModuleItem::Kind::Instance: {
            const Instance& inst = *item.instance;
            out += "  " + inst.moduleName;
            if (!inst.paramAssigns.empty()) {
                out += " #(";
                for (size_t i = 0; i < inst.paramAssigns.size(); ++i) {
                    if (i) out += ", ";
                    const auto& pa = inst.paramAssigns[i];
                    if (!pa.name.empty())
                        out += "." + pa.name + "(" + (pa.expr ? exprToString(*pa.expr) : "") + ")";
                    else if (pa.expr)
                        out += exprToString(*pa.expr);
                }
                out += ")";
            }
            out += " " + inst.instName + " (";
            for (size_t i = 0; i < inst.portAssigns.size(); ++i) {
                if (i) out += ", ";
                const auto& pa = inst.portAssigns[i];
                if (!pa.name.empty())
                    out += "." + pa.name + "(" + (pa.expr ? exprToString(*pa.expr) : "") + ")";
                else if (pa.expr)
                    out += exprToString(*pa.expr);
            }
            if (inst.wildcardPorts) out += inst.portAssigns.empty() ? ".*" : ", .*";
            out += ");\n";
            break;
        }
        case ModuleItem::Kind::Assertion: {
            const AssertionItem& a = *item.assertion;
            out += "  ";
            if (!a.label.empty()) out += a.label + ": ";
            switch (a.kind) {
            case AssertionKind::Assert: out += "assert"; break;
            case AssertionKind::Assume: out += "assume"; break;
            case AssertionKind::Cover: out += "cover"; break;
            case AssertionKind::Restrict: out += "restrict"; break;
            }
            out += " property (";
            if (a.clockSignal) out += "@(posedge " + *a.clockSignal + ") ";
            if (a.disableExpr) out += "disable iff (" + exprToString(*a.disableExpr) + ") ";
            out += printPropExpr(*a.prop) + ");\n";
            break;
        }
        case ModuleItem::Kind::GenFor:
            break; // Not supported by the frontend subset.
        }
    }
    out += "endmodule\n";
    return out;
}

std::string printSourceFile(const SourceFile& file) {
    std::string out;
    for (const auto& mod : file.modules) {
        out += printModule(*mod);
        out += "\n";
    }
    for (const auto& bind : file.binds) {
        out += "bind " + bind.targetModule + " " + bind.boundModule + " " + bind.instName + " (";
        for (size_t i = 0; i < bind.portAssigns.size(); ++i) {
            if (i) out += ", ";
            out += "." + bind.portAssigns[i].name + "(" +
                   (bind.portAssigns[i].expr ? exprToString(*bind.portAssigns[i].expr) : "") +
                   ")";
        }
        if (bind.wildcardPorts) out += bind.portAssigns.empty() ? ".*" : ", .*";
        out += ");\n";
    }
    return out;
}

} // namespace autosva::verilog
