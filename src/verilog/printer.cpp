#include "verilog/printer.hpp"

namespace autosva::verilog {

namespace {

std::string pad(int indent) { return std::string(static_cast<size_t>(indent), ' '); }

std::string printRange(const std::optional<Range>& range) {
    if (!range) return "";
    return "[" + printExpr(*range->msb) + ":" + printExpr(*range->lsb) + "] ";
}

const char* netKindName(NetKind kind) {
    switch (kind) {
    case NetKind::Wire: return "wire";
    case NetKind::Reg: return "reg";
    case NetKind::Logic: return "logic";
    }
    return "wire";
}

const char* dirName(PortDir dir) {
    switch (dir) {
    case PortDir::Input: return "input";
    case PortDir::Output: return "output";
    case PortDir::Inout: return "inout";
    }
    return "input";
}

std::string printBlockBody(const Stmt& block, int indent) {
    std::string out;
    for (const auto& s : block.stmts) out += printStmt(*s, indent + 2);
    return out;
}

/// `if`/`else if` chains in K&R style: `begin` stays on the condition line
/// and `end else if (...)` collapses onto one line, matching hand-written
/// RTL and the generated tracking counters.
std::string printIfChain(const Stmt& stmt, int indent) {
    std::string out = pad(indent) + "if (" + printExpr(*stmt.cond) + ")";
    const Stmt* cur = &stmt;
    for (;;) {
        bool blockThen = cur->thenStmt && cur->thenStmt->kind == Stmt::Kind::Block;
        if (blockThen) {
            out += " begin\n" + printBlockBody(*cur->thenStmt, indent) + pad(indent) + "end";
        } else {
            out += "\n";
            out += cur->thenStmt ? printStmt(*cur->thenStmt, indent + 2) : pad(indent + 2) + ";\n";
        }
        if (!cur->elseStmt) {
            if (blockThen) out += "\n";
            return out;
        }
        out += blockThen ? " else" : pad(indent) + "else";
        if (cur->elseStmt->kind == Stmt::Kind::If) {
            out += " if (" + printExpr(*cur->elseStmt->cond) + ")";
            cur = cur->elseStmt.get();
            continue;
        }
        if (cur->elseStmt->kind == Stmt::Kind::Block) {
            out += " begin\n" + printBlockBody(*cur->elseStmt, indent) + pad(indent) + "end\n";
        } else {
            out += "\n" + printStmt(*cur->elseStmt, indent + 2);
        }
        return out;
    }
}

} // namespace

std::string printPropExpr(const PropExpr& prop) {
    switch (prop.kind) {
    case PropExpr::Kind::Boolean:
        return printExpr(*prop.boolean);
    case PropExpr::Kind::Implication:
        return printExpr(*prop.boolean) + (prop.overlapping ? " |-> " : " |=> ") +
               printPropExpr(*prop.rhsProp);
    case PropExpr::Kind::Eventually:
        return "s_eventually (" + printPropExpr(*prop.rhsProp) + ")";
    case PropExpr::Kind::Next:
        return "##" + std::to_string(prop.delay) + " " + printPropExpr(*prop.rhsProp);
    case PropExpr::Kind::Not:
        return "not (" + printPropExpr(*prop.rhsProp) + ")";
    }
    return "?";
}

std::string printStmt(const Stmt& stmt, int indent) {
    switch (stmt.kind) {
    case Stmt::Kind::Null:
        return pad(indent) + ";\n";
    case Stmt::Kind::Block:
        return pad(indent) + "begin\n" + printBlockBody(stmt, indent) + pad(indent) + "end\n";
    case Stmt::Kind::Assign:
        return pad(indent) + printExpr(*stmt.lhs) + (stmt.nonBlocking ? " <= " : " = ") +
               printExpr(*stmt.rhs) + ";\n";
    case Stmt::Kind::If:
        return printIfChain(stmt, indent);
    case Stmt::Kind::Case: {
        std::string out = pad(indent) + (stmt.isCasez ? "casez (" : "case (") +
                          printExpr(*stmt.subject) + ")\n";
        for (const auto& item : stmt.caseItems) {
            if (item.labels.empty()) {
                out += pad(indent + 2) + "default:\n";
            } else {
                std::string labels;
                for (size_t i = 0; i < item.labels.size(); ++i) {
                    if (i) labels += ", ";
                    labels += printExpr(*item.labels[i]);
                }
                out += pad(indent + 2) + labels + ":\n";
            }
            out += item.body ? printStmt(*item.body, indent + 4) : pad(indent + 4) + ";\n";
        }
        out += pad(indent) + "endcase\n";
        return out;
    }
    }
    return "";
}

std::string printModule(const Module& mod) {
    std::string out;
    for (const auto& c : mod.headerComments) out += "// " + c + "\n";
    out += "module " + mod.name;
    if (!mod.params.empty()) {
        out += "\n#(\n";
        for (size_t i = 0; i < mod.params.size(); ++i) {
            out += "  parameter " + printRange(mod.params[i].packed) + mod.params[i].name +
                   " = " + printExpr(*mod.params[i].value);
            out += i + 1 < mod.params.size() ? ",\n" : "\n";
        }
        out += ")";
    }
    if (!mod.ports.empty()) {
        out += " (\n";
        for (size_t i = 0; i < mod.ports.size(); ++i) {
            const Port& p = mod.ports[i];
            out += std::string("  ") + dirName(p.dir) + " " + netKindName(p.netKind) + " " +
                   printRange(p.packed) + p.name;
            out += i + 1 < mod.ports.size() ? ",\n" : "\n";
        }
        out += ")";
    }
    out += ";\n";

    bool hasDefaults = mod.defaultClock.has_value() || mod.defaultDisable != nullptr;
    auto printDefaults = [&mod] {
        std::string d;
        if (mod.defaultClock)
            d += "  default clocking cb @(posedge " + *mod.defaultClock + "); endclocking\n";
        if (mod.defaultDisable)
            d += "  default disable iff (" + printExpr(*mod.defaultDisable) + ");\n";
        return d;
    };
    if (hasDefaults && mod.svaDefaultsPos < 0) out += printDefaults();

    for (size_t idx = 0; idx < mod.items.size(); ++idx) {
        if (hasDefaults && mod.svaDefaultsPos == static_cast<int>(idx)) out += printDefaults();
        const ModuleItem& item = mod.items[idx];
        switch (item.kind) {
        case ModuleItem::Kind::Comment:
            out += item.comment->text.empty() ? "\n" : "  // " + item.comment->text + "\n";
            break;
        case ModuleItem::Kind::Param:
            out += std::string("  ") + (item.param->isLocal ? "localparam " : "parameter ") +
                   item.param->name + " = " + printExpr(*item.param->value) + ";\n";
            break;
        case ModuleItem::Kind::Net: {
            const NetDecl& n = *item.net;
            out += std::string("  ") + netKindName(n.kind) + " " + printRange(n.packed) + n.name;
            if (n.unpacked)
                out += " [" + printExpr(*n.unpacked->msb) + ":" + printExpr(*n.unpacked->lsb) +
                       "]";
            if (n.init) out += " = " + printExpr(*n.init);
            out += ";\n";
            break;
        }
        case ModuleItem::Kind::ContAssign:
            out += "  assign " + printExpr(*item.contAssign->lhs) + " = " +
                   printExpr(*item.contAssign->rhs) + ";\n";
            break;
        case ModuleItem::Kind::Always: {
            const AlwaysBlock& blk = *item.always;
            std::string header = "  ";
            if (blk.kind == AlwaysBlock::Kind::Comb) {
                header += "always_comb";
            } else {
                header += "always_ff @(" + std::string(blk.clockPosedge ? "posedge " : "negedge ") +
                          blk.clockSignal;
                if (blk.asyncResetSignal)
                    header += std::string(" or ") +
                              (blk.asyncResetNegedge ? "negedge " : "posedge ") +
                              *blk.asyncResetSignal;
                header += ")";
            }
            if (blk.body && blk.body->kind == Stmt::Kind::Block) {
                out += header + " begin\n" + printBlockBody(*blk.body, 2) + "  end\n";
            } else {
                out += header + "\n" + printStmt(*blk.body, 4);
            }
            break;
        }
        case ModuleItem::Kind::Instance: {
            const Instance& inst = *item.instance;
            out += "  " + inst.moduleName;
            if (!inst.paramAssigns.empty()) {
                out += " #(";
                for (size_t i = 0; i < inst.paramAssigns.size(); ++i) {
                    if (i) out += ", ";
                    const auto& pa = inst.paramAssigns[i];
                    if (!pa.name.empty())
                        out += "." + pa.name + "(" + (pa.expr ? printExpr(*pa.expr) : "") + ")";
                    else if (pa.expr)
                        out += printExpr(*pa.expr);
                }
                out += ")";
            }
            out += " " + inst.instName + " (";
            for (size_t i = 0; i < inst.portAssigns.size(); ++i) {
                if (i) out += ", ";
                const auto& pa = inst.portAssigns[i];
                if (!pa.name.empty())
                    out += "." + pa.name + "(" + (pa.expr ? printExpr(*pa.expr) : "") + ")";
                else if (pa.expr)
                    out += printExpr(*pa.expr);
            }
            if (inst.wildcardPorts) out += inst.portAssigns.empty() ? ".*" : ", .*";
            out += ");\n";
            break;
        }
        case ModuleItem::Kind::Assertion: {
            const AssertionItem& a = *item.assertion;
            out += "  ";
            if (!a.label.empty()) out += a.label + ": ";
            switch (a.kind) {
            case AssertionKind::Assert: out += "assert"; break;
            case AssertionKind::Assume: out += "assume"; break;
            case AssertionKind::Cover: out += "cover"; break;
            case AssertionKind::Restrict: out += "restrict"; break;
            }
            out += " property (";
            if (a.clockSignal) out += "@(posedge " + *a.clockSignal + ") ";
            if (a.disableExpr) out += "disable iff (" + printExpr(*a.disableExpr) + ") ";
            out += printPropExpr(*a.prop) + ");\n";
            break;
        }
        case ModuleItem::Kind::GenFor:
            break; // Not supported by the frontend subset.
        }
    }
    if (hasDefaults && mod.svaDefaultsPos >= static_cast<int>(mod.items.size())) {
        out += printDefaults();
    }
    out += "endmodule\n";
    return out;
}

std::string printBind(const BindDirective& bind) {
    std::string out;
    for (const auto& c : bind.headerComments) out += "// " + c + "\n";
    out += "bind " + bind.targetModule + " " + bind.boundModule + " " + bind.instName + " (";
    for (size_t i = 0; i < bind.portAssigns.size(); ++i) {
        if (i) out += ", ";
        out += "." + bind.portAssigns[i].name + "(" +
               (bind.portAssigns[i].expr ? printExpr(*bind.portAssigns[i].expr) : "") + ")";
    }
    if (bind.wildcardPorts) out += bind.portAssigns.empty() ? ".*" : ", .*";
    out += ");\n";
    return out;
}

std::string printSourceFile(const SourceFile& file) {
    std::string out;
    for (const auto& mod : file.modules) {
        out += printModule(*mod);
        out += "\n";
    }
    for (const auto& bind : file.binds) out += printBind(bind);
    return out;
}

} // namespace autosva::verilog
