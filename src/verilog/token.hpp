// Token definitions for the SystemVerilog-subset lexer.
#pragma once

#include <cstdint>
#include <string>

#include "util/source_loc.hpp"

namespace autosva::verilog {

enum class TokenKind {
    EndOfFile,
    Identifier,
    SystemIdent, // $stable, $past, ...
    Number,
    String,

    // Keywords.
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout,
    KwWire, KwReg, KwLogic, KwInteger, KwGenvar,
    KwParameter, KwLocalparam, KwAssign,
    KwAlways, KwAlwaysFF, KwAlwaysComb, KwAlwaysLatch,
    KwPosedge, KwNegedge, KwOr, KwIf, KwElse,
    KwCase, KwCasez, KwCasex, KwEndcase, KwDefault,
    KwBegin, KwEnd, KwSigned, KwUnsigned,
    KwAssert, KwAssume, KwCover, KwRestrict, KwProperty,
    KwClocking, KwEndclocking, KwDisable, KwIff,
    KwSEventually, KwSUntil, KwNot, KwBind, KwInitial,
    KwGenerate, KwEndgenerate, KwFor, KwFunction, KwEndfunction,

    // Punctuation / operators.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Colon, Comma, Dot, Hash, HashHash, At, Question,
    Plus, Minus, Star, Slash, Percent,
    Bang, Tilde, Amp, Pipe, Caret, TildeCaret,
    AmpAmp, PipePipe,
    EqEq, BangEq, Lt, LtEq, Gt, GtEq, LtLt, GtGt,
    Eq, PlusColon,
    OverlapImpl,    // |->
    NonOverlapImpl, // |=>
};

[[nodiscard]] const char* tokenKindName(TokenKind kind);

struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;           ///< Identifier/system-ident/string spelling.
    uint64_t intValue = 0;      ///< For Number tokens.
    int numWidth = 0;           ///< Declared width of a based literal; 0 = unsized.
    bool isUnbasedUnsized = false; ///< '0 / '1 literal (stretches to context width).
    bool hasUnknownBits = false;   ///< Literal contained x/z digits.
    util::SourceLoc loc;

    [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

} // namespace autosva::verilog
