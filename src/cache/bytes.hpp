// Little-endian byte encoding shared by the artifact serializer and the
// store's record framing — one definition so the wire format cannot drift
// between the two layers.
#pragma once

#include <cstdint>
#include <string>

namespace autosva::cache {

inline void putU32(std::string& out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void putU64(std::string& out, uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Callers must have bounds-checked that 4 / 8 bytes are readable.
[[nodiscard]] inline uint32_t readU32(const char* p) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
    return v;
}

[[nodiscard]] inline uint64_t readU64(const char* p) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{static_cast<unsigned char>(p[i])} << (8 * i);
    return v;
}

} // namespace autosva::cache
