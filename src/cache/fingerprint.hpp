// Content-addressed keys for the persistent proof cache.
//
// A proof obligation's verdict is fully determined by (a) the bit-level
// cone of influence of its bad literal(s) over the AIG — including the
// transitive fanin through latch next-state functions — (b) the frame
// constraints the engine applies, and (c) the engine bounds that affect
// which verdict a bounded procedure can reach (BMC depth, induction k,
// PDR budgets). fingerprintObligation() hashes exactly that closure into a
// stable 128-bit key: node identity is canonicalized by deterministic
// traversal order, so AIG variable renumbering caused by edits *outside*
// the cone does not move the key, while any structural change *inside* the
// cone does.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "formal/aig.hpp"
#include "formal/result.hpp"
#include "rtlir/design.hpp"

namespace autosva::cache {

/// 128-bit content hash. Not cryptographic — collision resistance is sized
/// for cache keying (2^64 birthday bound), not for adversarial inputs.
struct Fingerprint {
    uint64_t hi = 0;
    uint64_t lo = 0;

    [[nodiscard]] bool operator==(const Fingerprint& o) const { return hi == o.hi && lo == o.lo; }
    [[nodiscard]] bool operator!=(const Fingerprint& o) const { return !(*this == o); }
    [[nodiscard]] bool isZero() const { return hi == 0 && lo == 0; }
};

struct FingerprintHash {
    [[nodiscard]] size_t operator()(const Fingerprint& fp) const {
        return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
    }
};

/// Which slice of the strategy pipeline a cached artifact covers. Liveness
/// obligations are discharged in two steps (parallel BMC + k-induction,
/// then the sequential PDR lemma chain), so the two steps key separately.
enum class Stage : uint8_t {
    FullPipeline = 0, ///< BMC -> k-induction -> PDR (phase-A jobs).
    Frontier = 1,     ///< BMC -> k-induction only (liveness pre-pass).
    ChainPdr = 2,     ///< The sequential liveness PDR step.
};

/// 64-bit FNV-1a — used for record checksums and struct keys.
[[nodiscard]] uint64_t hash64(const void* data, size_t size);

/// Digest of every engine option that can change a verdict (bounds and
/// budgets; worker count deliberately excluded — results are
/// jobs-invariant). Includes a format version so key semantics can evolve.
[[nodiscard]] uint64_t optionsDigest(const formal::EngineOptions& opts, Stage stage,
                                     bool coverMode, ir::Obligation::Kind kind);

/// Identity-of-the-obligation key, independent of the netlist content:
/// used to find "the same property in a previous run" after an RTL edit
/// moved its exact fingerprint (near-miss lemma seeding). `designSalt`
/// distinguishes same-named properties of different designs sharing one
/// cache directory (see designSalt()).
[[nodiscard]] uint64_t structKey(const std::string& obligationName, ir::Obligation::Kind kind,
                                 Stage stage, uint64_t designSalt);

/// Design-identity salt for struct keys: a hash of the design's primary
/// input names (sorted). The interface is stable across the internal edits
/// near-miss seeding targets, but distinct between different DUTs, so
/// formulaic property names ("as__bounded") don't collide across designs.
[[nodiscard]] uint64_t designSalt(const ir::Design& design);

/// Fingerprint of one obligation: canonical hash of the union cone of
/// `roots` (bad, pdrBad, save oracle, every frame constraint) over `aig`,
/// mixed with `optsDigest`.
[[nodiscard]] Fingerprint fingerprintCone(const formal::Aig& aig,
                                          const std::vector<formal::AigLit>& roots,
                                          uint64_t optsDigest);

/// Latch-name -> AIG latch var map for translating stored lemma cubes onto
/// the current AIG. Unnamed latches are absent (their cubes don't port).
[[nodiscard]] std::unordered_map<std::string, uint32_t> latchNameMap(const formal::Aig& aig);

} // namespace autosva::cache
