#include "cache/fingerprint.hpp"

#include <algorithm>

namespace autosva::cache {

namespace {

/// splitmix64 finalizer — strong enough mixing for cache keys.
[[nodiscard]] uint64_t mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Two independently-seeded 64-bit lanes fed the same word stream.
struct Mix128 {
    uint64_t a = 0x6a09e667f3bcc908ULL;
    uint64_t b = 0xbb67ae8584caa73bULL;

    void mix(uint64_t v) {
        a = mix64(a ^ v);
        b = mix64(b + (v * 0xff51afd7ed558ccdULL | 1));
    }

    [[nodiscard]] Fingerprint digest() const { return {mix64(a ^ b), mix64(b + a)}; }
};

} // namespace

uint64_t hash64(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t optionsDigest(const formal::EngineOptions& opts, Stage stage, bool coverMode,
                      ir::Obligation::Kind kind) {
    // Bump the version whenever key derivation or artifact semantics change:
    // old cache entries then become unreachable instead of wrong. v3: the
    // ordering-insensitive PDR rewrite changed recorded invariants and
    // proof depths, and the lemma DAG changed the ChainPdr strengthening
    // context. v4: the portfolio leg ladder and the global budget pool
    // joined the verdict function (new digest fields below).
    constexpr uint64_t kFormatVersion = 4;
    Mix128 h;
    h.mix(kFormatVersion);
    h.mix(static_cast<uint64_t>(stage));
    h.mix(static_cast<uint64_t>(kind));
    h.mix(coverMode ? 1 : 0);
    h.mix(static_cast<uint64_t>(opts.bmcDepth));
    h.mix(static_cast<uint64_t>(opts.maxInductionK));
    h.mix(static_cast<uint64_t>(opts.pdrMaxFrames));
    h.mix(opts.pdrMaxQueries);
    // The retry fallback can turn a budget-bound Unknown into a Proven, so
    // runs with different retry allowances must not share entries.
    // perturbSeed is deliberately absent: like `jobs`, it cannot move a
    // verdict (the fuzz suite gates that), so seeded and unseeded runs
    // share the cache.
    h.mix(static_cast<uint64_t>(opts.pdrRetryReorders));
    // Verdict-affecting portfolio knobs: extra ladder legs can flip a
    // budget-edge Unknown to Proven/Cex, and the global pool moves where
    // the Unknown frontier falls. `opts.portfolio` itself is deliberately
    // absent — racing the ladder versus walking it sequentially adopts the
    // identical leg (leg-order adoption), so raced and sequential runs
    // share the cache, like `jobs` and `perturbSeed`.
    h.mix(static_cast<uint64_t>(opts.portfolioLegs));
    h.mix(opts.budgetPoolQueries);
    h.mix(opts.conflictBudget);
    h.mix(opts.usePdr ? 1 : 0);
    // opts.satPre is deliberately absent: CNF preprocessing is
    // verdict-invariant (Sat/Unsat answers stay semantic; only witness
    // values may move, which canonical() never hashes), so preprocessed and
    // raw-CNF runs share the cache — bench_satpre hard-gates the identity.
    // Seeding can legitimately move PDR depths / budget-bound Unknowns, so
    // artifacts recorded by seeded runs must not serve as exact hits to
    // seeding-disabled ("strict identity") runs, and vice versa.
    h.mix(opts.cacheLemmaSeeding ? 1 : 0);
    return h.digest().hi;
}

uint64_t structKey(const std::string& obligationName, ir::Obligation::Kind kind, Stage stage,
                   uint64_t designSalt) {
    uint64_t h = hash64(obligationName.data(), obligationName.size());
    h = mix64(h ^ designSalt);
    h = mix64(h ^ (static_cast<uint64_t>(kind) << 8 | static_cast<uint64_t>(stage)));
    return h;
}

uint64_t designSalt(const ir::Design& design) {
    std::vector<std::string> names;
    names.reserve(design.inputs().size());
    for (ir::NodeId input : design.inputs()) names.push_back(design.node(input).name);
    std::sort(names.begin(), names.end());
    uint64_t h = 0x0de51615a17ULL;
    for (const std::string& name : names) h = mix64(h ^ hash64(name.data(), name.size()));
    return h;
}

Fingerprint fingerprintCone(const formal::Aig& aig, const std::vector<formal::AigLit>& roots,
                            uint64_t optsDigest) {
    using formal::Aig;
    using formal::AigLit;

    constexpr uint32_t kUnvisited = UINT32_MAX;
    std::vector<uint32_t> canon(aig.numVars(), kUnvisited);
    std::vector<uint32_t> order; // Vars in canonical (first-visit) order.
    std::vector<uint32_t> stack;

    // Deterministic DFS from the roots in their given order. Latch
    // next-state edges are followed, so the whole sequential cone is
    // covered; cycles through latches are fine because nodes are hashed by
    // canonical id, not recursively.
    auto visit = [&](AigLit root) {
        uint32_t rv = formal::aigVar(root);
        if (canon[rv] != kUnvisited) return;
        stack.push_back(rv);
        canon[rv] = static_cast<uint32_t>(order.size());
        order.push_back(rv);
        while (!stack.empty()) {
            uint32_t v = stack.back();
            stack.pop_back();
            auto push = [&](AigLit child) {
                uint32_t cv = formal::aigVar(child);
                if (canon[cv] != kUnvisited) return;
                canon[cv] = static_cast<uint32_t>(order.size());
                order.push_back(cv);
                stack.push_back(cv);
            };
            switch (aig.kind(v)) {
            case Aig::VarKind::And:
                push(aig.fanin0(v));
                push(aig.fanin1(v));
                break;
            case Aig::VarKind::Latch:
                push(aig.latchNext(v));
                break;
            case Aig::VarKind::Const:
            case Aig::VarKind::Input:
                break;
            }
        }
    };
    for (AigLit root : roots) visit(root);

    auto canonLit = [&](AigLit l) {
        return uint64_t{canon[formal::aigVar(l)]} * 2 + (formal::aigSign(l) ? 1 : 0);
    };

    Mix128 h;
    h.mix(optsDigest);
    h.mix(order.size());
    for (uint32_t v : order) {
        switch (aig.kind(v)) {
        case Aig::VarKind::Const:
            h.mix(0x10);
            break;
        case Aig::VarKind::Input:
            h.mix(0x20);
            break;
        case Aig::VarKind::Latch:
            h.mix(0x30 + static_cast<uint64_t>(aig.latchInit(v) + 1));
            h.mix(canonLit(aig.latchNext(v)));
            break;
        case Aig::VarKind::And:
            h.mix(0x40);
            h.mix(canonLit(aig.fanin0(v)));
            h.mix(canonLit(aig.fanin1(v)));
            break;
        }
    }
    // Root identities (which cone node plays which role, with polarity).
    h.mix(roots.size());
    for (AigLit root : roots) h.mix(canonLit(root));
    return h.digest();
}

std::unordered_map<std::string, uint32_t> latchNameMap(const formal::Aig& aig) {
    std::unordered_map<std::string, uint32_t> map;
    map.reserve(aig.latches().size());
    for (uint32_t lv : aig.latches()) {
        const std::string& name = aig.varName(lv);
        if (!name.empty()) map.emplace(name, lv);
    }
    return map;
}

} // namespace autosva::cache
