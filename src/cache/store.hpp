// Persistent proof store: the two-tier home of cached artifacts.
//
// On open, the on-disk log (`<dir>/proofs.bin`) is scanned into an
// in-memory map — that snapshot serves every lookup of the run, so results
// cannot depend on which worker recorded what first. Stores append a
// checksummed record to the log (last record for a fingerprint wins on the
// next load) and never block correctness: any I/O failure just downgrades
// the cache to memory-only, and any malformed or truncated record is
// dropped at load time. The store is internally synchronized; workers call
// it concurrently.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/fingerprint.hpp"
#include "cache/proof_artifact.hpp"

namespace autosva::obs {
class Recorder;
}

namespace autosva::cache {

/// Outcome of one log compaction (ProofCache::compactLog).
struct CompactResult {
    bool performed = false;     ///< False: no log, foreign file, or I/O failure.
    uint64_t recordsBefore = 0; ///< Valid records in the old log (dupes included).
    uint64_t recordsAfter = 0;  ///< Records in the compacted log (newest per key).
    uint64_t droppedCorrupt = 0; ///< Corrupt/truncated records discarded.
    uint64_t bytesBefore = 0;
    uint64_t bytesAfter = 0;
};

struct CacheStats {
    uint64_t lookups = 0;     ///< Exact-fingerprint probes.
    uint64_t hits = 0;        ///< Probes answered from the store.
    uint64_t stores = 0;      ///< Artifacts recorded this run.
    uint64_t nearHits = 0;    ///< Near-miss probes that yielded lemma seeds.
    uint64_t seededLemmas = 0; ///< Candidate lemma cubes handed to PDR.
    uint64_t entriesLoaded = 0; ///< Valid records read at open.
    uint64_t loadErrors = 0;  ///< Corrupt/truncated records skipped at open.

    [[nodiscard]] uint64_t misses() const { return lookups - hits; }
};

class ProofCache {
public:
    /// Opens (creating the directory if needed) and loads the log. A
    /// directory that cannot be created or written leaves the cache
    /// memory-only for this run; it never throws.
    explicit ProofCache(std::string dir);

    /// Default on-disk location: $AUTOSVA_CACHE_DIR, else
    /// $XDG_CACHE_HOME/autosva, else $HOME/.cache/autosva, else "" (no
    /// resolvable home: caller should treat as disabled).
    [[nodiscard]] static std::string defaultDir();

    [[nodiscard]] const std::string& dir() const { return dir_; }
    /// False when the log could not be opened for appending (memory-only).
    [[nodiscard]] bool persistent() const { return persistent_; }

    /// Why persistence was lost (unwritable directory, foreign log file,
    /// failed append, injected fault) — empty while the cache is healthy.
    /// Every degradation prints one stderr warning, process-wide behaviour
    /// staying: serve what was loaded, stop persisting, never throw.
    [[nodiscard]] std::string degradedReason() const;

    /// Exact lookup against the open-time snapshot. Entries stored during
    /// this run are deliberately not visible, so intra-run scheduling order
    /// cannot leak into results.
    [[nodiscard]] std::optional<ProofArtifact> lookup(const Fingerprint& fp);

    /// Near-miss lookup by obligation identity: returns the artifact of
    /// the same property from a prior run whose exact fingerprint no
    /// longer matches (i.e. the RTL changed inside its cone). Source of
    /// candidate lemmas only — callers must re-validate anything they use.
    [[nodiscard]] std::optional<ProofArtifact> lookupNear(uint64_t structKey);

    void store(const Fingerprint& fp, const ProofArtifact& artifact);

    /// Compacts the append-only log at `<dir>/proofs.bin`: keeps the newest
    /// record per fingerprint, drops corrupt/truncated records, and writes
    /// the survivors (sorted by fingerprint, so the output is
    /// deterministic) as a fresh log generation that atomically replaces
    /// the old file. Crash-safe: the new generation is staged at
    /// `proofs.bin.compacting` and promoted with a rename, so a crash at
    /// any point leaves either the intact old log or the complete new one
    /// — a stale staging file from a dead compactor is simply overwritten.
    /// Callers must not hold the same directory open for appending (their
    /// stream would keep feeding the unlinked old generation).
    [[nodiscard]] static CompactResult compactLog(const std::string& dir);

    void noteSeeded(uint64_t cubes);

    /// Attaches a tracing recorder for the rest of this cache's lifetime
    /// (src/obs/). Emits one "cache/open" snapshot instant immediately and
    /// a "cache/store" instant per artifact recorded; lookup instants are
    /// the scheduler's job (it knows the obligation index). Observability
    /// only — never affects what is stored or served.
    void attachRecorder(obs::Recorder* rec);

    [[nodiscard]] CacheStats stats() const;

private:
    void load();
    /// Records the first degradation reason and emits its one-shot stderr
    /// warning. Idempotent; later reasons are dropped (the first failure
    /// is the diagnosis — everything after is fallout).
    void degrade(const std::string& reason);

    mutable std::mutex mutex_;
    std::string dir_;
    std::string logPath_;
    bool persistent_ = false;
    std::string degradedReason_; ///< First degradation; empty = healthy.
    bool headerTrusted_ = false; ///< Log file carries our magic.
    size_t scanEnd_ = 0;         ///< Last well-framed byte offset at load.
    std::ofstream out_;
    std::unordered_map<Fingerprint, ProofArtifact, FingerprintHash> snapshot_;
    std::unordered_map<uint64_t, Fingerprint> byStruct_;
    std::unordered_map<Fingerprint, char, FingerprintHash> storedThisRun_;
    CacheStats stats_;
    obs::Recorder* rec_ = nullptr;
};

} // namespace autosva::cache
