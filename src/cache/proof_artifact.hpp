// The value side of the proof cache: everything worth keeping from a
// discharged obligation. Besides the verdict itself, artifacts carry the
// evidence that makes a later run cheap or re-checkable:
//   - falsification traces (word-level, replayable on the simulator),
//   - the PDR inductive invariant as clauses over *named* latches, so the
//     lemmas can be re-targeted onto a re-bit-blasted AIG after an RTL
//     edit (they are only ever reused as candidates and re-validated by
//     induction, so soundness never rests on the cache).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "formal/result.hpp"

namespace autosva::cache {

/// One blocked cube of a PDR invariant, over latch names: "not all of
/// these latches simultaneously hold these values".
struct NamedCube {
    std::vector<std::pair<std::string, bool>> lits;
};

struct ProofArtifact {
    uint64_t structKey = 0; ///< Obligation-identity key (near-miss index).
    formal::Status status = formal::Status::Unknown;
    int depth = -1;
    formal::CexTrace trace;       ///< Populated for Failed / Covered.
    std::vector<NamedCube> lemmas; ///< Populated for PDR-proven obligations.

    /// Compact little-endian binary encoding (deterministic: map contents
    /// are sorted by name).
    [[nodiscard]] std::string serialize() const;

    /// Bounds-checked decode; nullopt on any malformed input — a garbled
    /// cache entry must degrade to a cache miss, never to a wrong verdict.
    [[nodiscard]] static std::optional<ProofArtifact> deserialize(std::string_view data);
};

} // namespace autosva::cache
