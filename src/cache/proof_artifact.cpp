#include "cache/proof_artifact.hpp"

#include <algorithm>
#include <map>

#include "cache/bytes.hpp"

namespace autosva::cache {

namespace {

// Hard ceilings for the decoder: a corrupt length field must not turn into
// a multi-gigabyte allocation before the bounds check catches it.
constexpr size_t kMaxStrings = 1u << 20;
constexpr size_t kMaxStringLen = 1u << 16;

void putStr(std::string& out, const std::string& s) {
    putU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
}

void putValueMap(std::string& out, const std::unordered_map<std::string, uint64_t>& values) {
    std::map<std::string, uint64_t> sorted(values.begin(), values.end());
    putU32(out, static_cast<uint32_t>(sorted.size()));
    for (const auto& [name, value] : sorted) {
        putStr(out, name);
        putU64(out, value);
    }
}

/// Cursor with failure latching: every get* returns a safe default once
/// any read ran past the end; callers check ok() at the end.
struct Reader {
    std::string_view data;
    size_t pos = 0;
    bool failed = false;

    [[nodiscard]] bool ok() const { return !failed && pos == data.size(); }

    uint64_t getU64() {
        if (failed || data.size() - pos < 8) {
            failed = true;
            return 0;
        }
        uint64_t v = readU64(data.data() + pos);
        pos += 8;
        return v;
    }

    uint32_t getU32() {
        if (failed || data.size() - pos < 4) {
            failed = true;
            return 0;
        }
        uint32_t v = readU32(data.data() + pos);
        pos += 4;
        return v;
    }

    std::string getStr() {
        uint32_t len = getU32();
        if (failed || len > kMaxStringLen || data.size() - pos < len) {
            failed = true;
            return {};
        }
        std::string s(data.substr(pos, len));
        pos += len;
        return s;
    }

    std::unordered_map<std::string, uint64_t> getValueMap() {
        std::unordered_map<std::string, uint64_t> values;
        uint32_t count = getU32();
        if (failed || count > kMaxStrings) {
            failed = true;
            return values;
        }
        for (uint32_t i = 0; i < count && !failed; ++i) {
            std::string name = getStr();
            uint64_t value = getU64();
            values.emplace(std::move(name), value);
        }
        return values;
    }
};

[[nodiscard]] bool validStatus(uint32_t s) {
    switch (static_cast<formal::Status>(s)) {
    case formal::Status::Proven:
    case formal::Status::Failed:
    case formal::Status::Covered:
    case formal::Status::Unreachable:
    case formal::Status::Unknown:
    case formal::Status::Skipped:
        return true;
    }
    return false;
}

} // namespace

std::string ProofArtifact::serialize() const {
    std::string out;
    putU64(out, structKey);
    putU32(out, static_cast<uint32_t>(status));
    putU32(out, static_cast<uint32_t>(depth));
    // Trace.
    putU32(out, static_cast<uint32_t>(trace.loopStart));
    putValueMap(out, trace.initialRegs);
    putU32(out, static_cast<uint32_t>(trace.inputs.size()));
    for (const auto& frame : trace.inputs) putValueMap(out, frame);
    // Lemmas.
    putU32(out, static_cast<uint32_t>(lemmas.size()));
    for (const auto& cube : lemmas) {
        putU32(out, static_cast<uint32_t>(cube.lits.size()));
        for (const auto& [name, value] : cube.lits) {
            putStr(out, name);
            out.push_back(value ? 1 : 0);
        }
    }
    return out;
}

std::optional<ProofArtifact> ProofArtifact::deserialize(std::string_view data) {
    Reader in{data};
    ProofArtifact art;
    art.structKey = in.getU64();
    uint32_t status = in.getU32();
    art.depth = static_cast<int>(in.getU32());
    art.trace.loopStart = static_cast<int>(in.getU32());
    art.trace.initialRegs = in.getValueMap();
    uint32_t frames = in.getU32();
    if (in.failed || frames > kMaxStrings) return std::nullopt;
    art.trace.inputs.reserve(frames);
    for (uint32_t f = 0; f < frames && !in.failed; ++f)
        art.trace.inputs.push_back(in.getValueMap());
    uint32_t numLemmas = in.getU32();
    if (in.failed || numLemmas > kMaxStrings) return std::nullopt;
    art.lemmas.reserve(numLemmas);
    for (uint32_t c = 0; c < numLemmas && !in.failed; ++c) {
        uint32_t numLits = in.getU32();
        if (in.failed || numLits > kMaxStrings) return std::nullopt;
        NamedCube cube;
        cube.lits.reserve(numLits);
        for (uint32_t l = 0; l < numLits && !in.failed; ++l) {
            std::string name = in.getStr();
            if (in.failed || in.pos >= in.data.size()) {
                in.failed = true;
                break;
            }
            bool value = in.data[in.pos++] != 0;
            cube.lits.emplace_back(std::move(name), value);
        }
        art.lemmas.push_back(std::move(cube));
    }
    if (!in.ok() || !validStatus(status)) return std::nullopt;
    art.status = static_cast<formal::Status>(status);
    return art;
}

} // namespace autosva::cache
