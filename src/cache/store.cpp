#include "cache/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "cache/bytes.hpp"
#include "obs/trace.hpp"
#include "robust/faultinject.hpp"

namespace autosva::cache {

namespace {

constexpr char kFileMagic[8] = {'A', 'S', 'V', 'A', 'P', 'C', '0', '1'};
constexpr uint32_t kRecordMagic = 0xA57AC4E1;
constexpr uint32_t kMaxPayload = 64u << 20; ///< Sanity bound per record.

} // namespace

ProofCache::ProofCache(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        degrade("cannot create cache directory '" + dir_ + "': " + ec.message());
        return;
    }
    logPath_ = (std::filesystem::path(dir_) / "proofs.bin").string();
    load();
    // An injected read fault models an unreadable log: serve nothing and
    // do not append to a file we claim we could not read.
    if (!degradedReason_.empty()) return;
    uintmax_t size = std::filesystem::file_size(logPath_, ec);
    if (ec) size = 0;
    if (size == 0) {
        out_.open(logPath_, std::ios::binary | std::ios::app);
        if (out_) {
            out_.write(kFileMagic, sizeof kFileMagic);
            out_.flush();
            persistent_ = out_.good();
        }
    } else if (headerTrusted_) {
        // Self-heal a torn tail (crash mid-append, racing writers): drop
        // the bytes past the last well-framed record so future appends are
        // readable again instead of piling up behind dead data.
        if (scanEnd_ < size) std::filesystem::resize_file(logPath_, scanEnd_, ec);
        if (!ec) {
            out_.open(logPath_, std::ios::binary | std::ios::app);
            persistent_ = static_cast<bool>(out_);
        }
    }
    // Untrusted header: some foreign file sits at our log path. Appending
    // records nothing could ever load (and truncating is not ours to do) —
    // run memory-only.
    if (!persistent_) {
        if (size > 0 && !headerTrusted_)
            degrade("foreign file at '" + logPath_ + "'; refusing to append");
        else
            degrade("cache log '" + logPath_ + "' is not writable");
    }
}

std::string ProofCache::defaultDir() {
    if (const char* env = std::getenv("AUTOSVA_CACHE_DIR"); env && *env) return env;
    if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return (std::filesystem::path(xdg) / "autosva").string();
    if (const char* home = std::getenv("HOME"); home && *home)
        return (std::filesystem::path(home) / ".cache" / "autosva").string();
    return {};
}

void ProofCache::load() {
    if (robust::faultFire(robust::FaultSite::CacheRead)) {
        degrade("injected cache-read fault: log treated as unreadable");
        return;
    }
    std::ifstream in(logPath_, std::ios::binary | std::ios::ate);
    if (!in) return;
    std::streamoff size = in.tellg();
    if (size < 0) return;
    // Single sized read — the log is reloaded at every Engine construction,
    // so avoid the stringstream double-buffer.
    std::string bytes(static_cast<size_t>(size), '\0');
    in.seekg(0);
    if (size > 0 && !in.read(bytes.data(), size)) return;
    if (bytes.size() < sizeof kFileMagic ||
        std::char_traits<char>::compare(bytes.data(), kFileMagic, sizeof kFileMagic) != 0) {
        // Unrecognized or truncated header: some foreign file sits at our
        // path. Load nothing and leave headerTrusted_ false — the ctor
        // then runs memory-only rather than clobber or append to it.
        if (!bytes.empty()) ++stats_.loadErrors;
        return;
    }
    headerTrusted_ = true;
    // Record: magic u32 | fpHi u64 | fpLo u64 | payloadLen u32 | payloadHash
    // u64 | payload. A framing anomaly ends the scan: without trustworthy
    // length fields there is no safe way to resync. scanEnd_ marks the last
    // well-framed boundary so the ctor can trim the dead tail.
    constexpr size_t kHeader = 4 + 8 + 8 + 4 + 8;
    size_t pos = sizeof kFileMagic;
    scanEnd_ = pos;
    while (pos + kHeader <= bytes.size()) {
        const char* p = bytes.data() + pos;
        if (readU32(p) != kRecordMagic) {
            ++stats_.loadErrors;
            return;
        }
        Fingerprint fp{readU64(p + 4), readU64(p + 12)};
        uint32_t len = readU32(p + 20);
        uint64_t payloadHash = readU64(p + 24);
        if (len > kMaxPayload || pos + kHeader + len > bytes.size()) {
            ++stats_.loadErrors;
            return;
        }
        std::string_view payload(bytes.data() + pos + kHeader, len);
        pos += kHeader + len;
        scanEnd_ = pos;
        if (hash64(payload.data(), payload.size()) != payloadHash) {
            ++stats_.loadErrors;
            continue; // Lengths were consistent: resume at the next record.
        }
        std::optional<ProofArtifact> art = ProofArtifact::deserialize(payload);
        if (!art) {
            ++stats_.loadErrors;
            continue;
        }
        ++stats_.entriesLoaded;
        byStruct_[art->structKey] = fp; // Later records win, like snapshot_.
        snapshot_[fp] = std::move(*art);
    }
    if (pos != bytes.size()) ++stats_.loadErrors; // Truncated trailing record.
}

// snapshot_ and byStruct_ are immutable after construction, so lookups only
// need the lock for the stats counters — the (potentially large) artifact
// copy happens outside it, off other workers' probe path.

std::optional<ProofArtifact> ProofCache::lookup(const Fingerprint& fp) {
    auto it = snapshot_.find(fp);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.lookups;
        if (it != snapshot_.end()) ++stats_.hits;
    }
    if (it == snapshot_.end()) return std::nullopt;
    return it->second;
}

std::optional<ProofArtifact> ProofCache::lookupNear(uint64_t structKey) {
    auto it = byStruct_.find(structKey);
    auto entry = it == byStruct_.end() ? snapshot_.end() : snapshot_.find(it->second);
    if (entry == snapshot_.end()) return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.nearHits;
    }
    return entry->second;
}

void ProofCache::store(const Fingerprint& fp, const ProofArtifact& artifact) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Skip rewriting what the log already has (same key => same content
        // by construction) and what this run already appended.
        if (snapshot_.count(fp) != 0 || !storedThisRun_.emplace(fp, 0).second) return;
        ++stats_.stores;
        if (rec_)
            rec_->instant("cache", "store", -1, {{"lemmas", artifact.lemmas.size()}});
        if (!persistent_) return;
    }
    // Serialize outside the lock: workers must not queue their lookups
    // behind another worker's (potentially large) trace encoding.
    std::string payload = artifact.serialize();
    // Never append what load() would treat as a framing anomaly — an
    // oversized record would get the log truncated at its offset on the
    // next open, taking every later record with it.
    if (payload.size() > kMaxPayload) return;
    std::string record;
    record.reserve(32 + payload.size());
    putU32(record, kRecordMagic);
    putU64(record, fp.hi);
    putU64(record, fp.lo);
    putU32(record, static_cast<uint32_t>(payload.size()));
    putU64(record, hash64(payload.data(), payload.size()));
    record += payload;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!persistent_) return;
    if (robust::faultFire(robust::FaultSite::CacheWrite)) {
        persistent_ = false;
        degrade("injected cache-write fault: append failed (disk full)");
        return;
    }
    // One buffered write per record keeps concurrent-process interleaving
    // unlikely (not impossible — the checksum scan degrades gracefully).
    out_.write(record.data(), static_cast<std::streamsize>(record.size()));
    out_.flush();
    if (!out_) {
        persistent_ = false;
        degrade("cache append to '" + logPath_ + "' failed; persistence disabled");
    }
}

CompactResult ProofCache::compactLog(const std::string& dir) {
    CompactResult res;
    if (dir.empty()) return res;
    std::error_code ec;
    // Only compact a log that already exists: constructing a ProofCache
    // would fabricate the directory and an empty log as a side effect, and
    // a typo'd --cache-dir must surface as "nothing to compact", not
    // silently succeed.
    const std::string logPath = (std::filesystem::path(dir) / "proofs.bin").string();
    if (!std::filesystem::exists(logPath, ec) || ec) return res;
    // Reuse the loader: the constructor scans the log into the newest-per-
    // key snapshot, drops corrupt records, and trims any torn tail. A
    // foreign file at the log path — any pre-existing bytes that do not
    // start with our magic — leaves headerTrusted_ false and must not be
    // rewritten (it is not ours to compact).
    ProofCache cache(dir);
    cache.out_.close(); // The old generation is about to be replaced.
    res.bytesBefore = std::filesystem::file_size(cache.logPath_, ec);
    if (ec) res.bytesBefore = 0;
    if (!cache.headerTrusted_) return res;
    res.recordsBefore = cache.stats_.entriesLoaded;
    res.droppedCorrupt = cache.stats_.loadErrors;

    // Deterministic output order: sort the survivors by fingerprint.
    std::vector<const std::pair<const Fingerprint, ProofArtifact>*> entries;
    entries.reserve(cache.snapshot_.size());
    for (const auto& e : cache.snapshot_) entries.push_back(&e);
    std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
        return std::pair(a->first.hi, a->first.lo) < std::pair(b->first.hi, b->first.lo);
    });

    // Stage the new generation, then atomically promote it. Any failure
    // leaves the old log untouched.
    const std::string staging = cache.logPath_ + ".compacting";
    {
        std::ofstream out(staging, std::ios::binary | std::ios::trunc);
        if (!out) return res;
        out.write(kFileMagic, sizeof kFileMagic);
        for (const auto* e : entries) {
            std::string payload = e->second.serialize();
            if (payload.size() > kMaxPayload) continue; // Never write unloadable framing.
            std::string record;
            record.reserve(32 + payload.size());
            putU32(record, kRecordMagic);
            putU64(record, e->first.hi);
            putU64(record, e->first.lo);
            putU32(record, static_cast<uint32_t>(payload.size()));
            putU64(record, hash64(payload.data(), payload.size()));
            record += payload;
            out.write(record.data(), static_cast<std::streamsize>(record.size()));
            ++res.recordsAfter;
        }
        out.flush();
        if (!out.good()) {
            std::filesystem::remove(staging, ec);
            res.recordsAfter = 0;
            return res;
        }
    }
    std::filesystem::rename(staging, cache.logPath_, ec);
    if (ec) {
        std::filesystem::remove(staging, ec);
        res.recordsAfter = 0;
        return res;
    }
    res.bytesAfter = std::filesystem::file_size(cache.logPath_, ec);
    if (ec) res.bytesAfter = 0;
    res.performed = true;
    return res;
}

// Called from the constructor (single-threaded) or with mutex_ held
// (store), so it must not take the lock itself.
void ProofCache::degrade(const std::string& reason) {
    if (!degradedReason_.empty()) return;
    degradedReason_ = reason;
    if (rec_) rec_->instant("robust", "cache-degraded", -1, {{"entries", snapshot_.size()}});
    std::fprintf(stderr, "autosva: warning: proof cache degraded: %s (run continues %s)\n",
                 reason.c_str(),
                 snapshot_.empty() ? "without the cache" : "on the loaded snapshot only");
}

std::string ProofCache::degradedReason() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return degradedReason_;
}

void ProofCache::noteSeeded(uint64_t cubes) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.seededLemmas += cubes;
}

void ProofCache::attachRecorder(obs::Recorder* rec) {
    rec_ = rec;
    if (!rec_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    rec_->instant("cache", "open", -1,
                  {{"entries_loaded", stats_.entriesLoaded},
                   {"load_errors", stats_.loadErrors},
                   {"persistent", persistent_ ? uint64_t{1} : uint64_t{0}}});
}

CacheStats ProofCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace autosva::cache
