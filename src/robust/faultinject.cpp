#include "robust/faultinject.hpp"

#include <sstream>

namespace autosva::robust {

namespace {

std::atomic<FaultPlan*> gActivePlan{nullptr};

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "cache-read", "cache-write", "solver-interrupt", "bitblast-alloc", "propgen-alloc",
};

} // namespace

const char* faultSiteName(FaultSite site) {
    return kSiteNames[static_cast<size_t>(site)];
}

void FaultPlan::arm(FaultSite site, uint64_t fireAtHit) {
    Site& s = sites_[static_cast<size_t>(site)];
    s.fireAt.store(fireAtHit, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
}

bool FaultPlan::shouldFire(FaultSite site) {
    Site& s = sites_[static_cast<size_t>(site)];
    const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t fireAt = s.fireAt.load(std::memory_order_relaxed);
    return fireAt != 0 && hit == fireAt;
}

uint64_t FaultPlan::hits(FaultSite site) const {
    return sites_[static_cast<size_t>(site)].hits.load(std::memory_order_relaxed);
}

bool FaultPlan::fired(FaultSite site) const {
    const Site& s = sites_[static_cast<size_t>(site)];
    const uint64_t fireAt = s.fireAt.load(std::memory_order_relaxed);
    return fireAt != 0 && s.hits.load(std::memory_order_relaxed) >= fireAt;
}

bool FaultPlan::anyFired() const {
    for (size_t i = 0; i < kFaultSiteCount; ++i)
        if (fired(static_cast<FaultSite>(i))) return true;
    return false;
}

std::string FaultPlan::summary() const {
    std::ostringstream out;
    for (size_t i = 0; i < kFaultSiteCount; ++i) {
        const Site& s = sites_[i];
        const uint64_t fireAt = s.fireAt.load(std::memory_order_relaxed);
        if (fireAt == 0) continue;
        out << kSiteNames[i] << ": armed@" << fireAt << " hits="
            << s.hits.load(std::memory_order_relaxed)
            << (fired(static_cast<FaultSite>(i)) ? " fired" : " not-fired") << '\n';
    }
    return out.str();
}

std::string FaultPlan::parseSpec(const std::string& spec, FaultPlan& out) {
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos) end = spec.size();
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;
        const size_t colon = entry.find(':');
        if (colon == std::string::npos)
            return "fault spec entry '" + entry + "' is missing ':N'";
        const std::string name = entry.substr(0, colon);
        const std::string count = entry.substr(colon + 1);
        int siteIndex = -1;
        for (size_t i = 0; i < kFaultSiteCount; ++i)
            if (name == kSiteNames[i]) siteIndex = static_cast<int>(i);
        if (siteIndex < 0) {
            std::string known;
            for (size_t i = 0; i < kFaultSiteCount; ++i) {
                if (i) known += ", ";
                known += kSiteNames[i];
            }
            return "unknown fault site '" + name + "' (known: " + known + ")";
        }
        uint64_t n = 0;
        if (count.empty()) return "fault spec entry '" + entry + "' has an empty hit count";
        for (char c : count) {
            if (c < '0' || c > '9')
                return "fault spec entry '" + entry + "' has a non-numeric hit count";
            n = n * 10 + static_cast<uint64_t>(c - '0');
        }
        if (n == 0) return "fault spec entry '" + entry + "' must fire at hit >= 1";
        out.arm(static_cast<FaultSite>(siteIndex), n);
    }
    return {};
}

void FaultPlan::activate(FaultPlan* plan) {
    gActivePlan.store(plan, std::memory_order_release);
}

FaultPlan* FaultPlan::active() {
    return gActivePlan.load(std::memory_order_acquire);
}

} // namespace autosva::robust
