// Wall-clock watchdog: one background thread that enforces the run-level
// `--time-budget` and per-obligation `--obligation-timeout` deadlines and
// relays external stop requests (SIGINT/SIGTERM) into the engine, by
// raising sticky cancellation tokens that solvers poll (SatSolver's
// bindWatchdog slot, PdrOptions::watchdog). The watchdog never kills
// threads and never touches solver state — expiry only flips an atomic,
// and every in-flight solve unwinds through its existing Interrupted
// path, so a deadline degrades obligations to Unknown instead of wedging
// the pool or tearing down the process.
//
// Deadline semantics:
//  - The run budget clock starts at Watchdog construction. On expiry (or
//    an external stop) the run token fires, every active job token fires,
//    and every job guard acquired afterwards starts pre-fired — remaining
//    work drains as immediate Interrupted results, so the report still
//    covers every obligation.
//  - The per-obligation clock is *cumulative across stages*: a job that
//    spent 3s in its PDR ladder leg resumes its budget-refill guard with
//    3s already on the clock. Batched-BMC sweeps are excluded (one solver
//    serves many jobs in lockstep, so per-job wall attribution would
//    overcharge); they are bounded by the run budget via runToken().
//
// Cause attribution: each fired token records why it fired (job timeout
// vs. run budget vs. external stop); the scheduler maps that to the
// per-property UnknownReason. Token addresses are stable for the
// watchdog's lifetime (slots live in a deque and are never destroyed), so
// solvers may hold a token pointer briefly past its guard — but guards
// must not outlive the Watchdog itself.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace autosva::robust {

class Watchdog {
public:
    enum class Cause : uint8_t {
        None = 0,     ///< Token never fired.
        JobTimeout,   ///< Per-obligation deadline (--obligation-timeout).
        RunBudget,    ///< Whole-run deadline (--time-budget).
        ExternalStop, ///< External stop flag (SIGINT/SIGTERM).
    };

    struct Config {
        double runBudgetSeconds = 0.0;         ///< 0 = unlimited.
        double obligationTimeoutSeconds = 0.0; ///< 0 = unlimited.
        const std::atomic<bool>* externalStop = nullptr; ///< Optional signal flag.
    };

private:
    using Clock = std::chrono::steady_clock;

    /// One registered job's scanner slot. Slots are pooled and reused but
    /// never destroyed, so token addresses stay valid for the watchdog's
    /// whole lifetime.
    struct Slot {
        std::atomic<bool> token{false};
        std::atomic<uint8_t> cause{0};
        Clock::time_point start{};
        size_t jobIndex = 0;
        bool active = false;
    };

public:
    /// Starts the scanner thread; the run-budget clock starts now.
    explicit Watchdog(const Config& cfg);
    /// Stops and joins the scanner. Every JobGuard must be gone by now.
    ~Watchdog();
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// RAII registration of one job with the scanner. Default-constructed
    /// guards (no watchdog configured) are inert: null token, None cause.
    class JobGuard {
    public:
        JobGuard() = default;
        JobGuard(JobGuard&& other) noexcept { swapWith(other); }
        JobGuard& operator=(JobGuard&& other) noexcept {
            if (this != &other) {
                release();
                swapWith(other);
            }
            return *this;
        }
        JobGuard(const JobGuard&) = delete;
        JobGuard& operator=(const JobGuard&) = delete;
        ~JobGuard() { release(); }

        /// Sticky cancellation token to bind into this job's solvers;
        /// nullptr for an inert guard.
        [[nodiscard]] const std::atomic<bool>* token() const {
            return slot_ ? &slot_->token : nullptr;
        }
        /// Why the token fired (None if it has not).
        [[nodiscard]] Cause cause() const {
            if (slot_ == nullptr || !slot_->token.load()) return Cause::None;
            return static_cast<Cause>(slot_->cause.load());
        }

    private:
        friend class Watchdog;
        JobGuard(Watchdog* wd, Slot* slot) : wd_(wd), slot_(slot) {}
        void release();
        void swapWith(JobGuard& other) noexcept {
            std::swap(wd_, other.wd_);
            std::swap(slot_, other.slot_);
        }
        Watchdog* wd_ = nullptr;
        Slot* slot_ = nullptr;
    };

    /// Registers one obligation-sized unit of work under the per-job
    /// deadline. `jobIndex` keys the cumulative clock: guards for the
    /// same index share one time budget across pipeline stages.
    [[nodiscard]] JobGuard guardJob(size_t jobIndex);

    /// The run-level token: fires on run-budget expiry or external stop
    /// (never on per-job timeouts). Bind into solvers that serve many
    /// jobs at once (batched BMC).
    [[nodiscard]] const std::atomic<bool>* runToken() const { return &runToken_; }
    [[nodiscard]] bool runExpired() const { return runToken_.load(); }
    [[nodiscard]] Cause runCause() const { return static_cast<Cause>(runCause_.load()); }

    /// Number of per-job deadline firings so far (JobTimeout only).
    [[nodiscard]] uint64_t jobTimeouts() const { return jobTimeouts_.load(); }

private:
    void scanLoop();
    void fireRunLocked(Cause cause); ///< Requires mu_ held.
    void releaseSlot(Slot* slot);

    Config cfg_;
    Clock::time_point epoch_;
    std::atomic<bool> runToken_{false};
    std::atomic<uint8_t> runCause_{0};
    std::atomic<uint64_t> jobTimeouts_{0};

    std::mutex mu_;
    std::condition_variable cv_;
    bool shutdown_ = false;
    std::deque<Slot> slots_; ///< Stable addresses; never destroyed.
    std::vector<Slot*> freeSlots_;
    std::unordered_map<size_t, int64_t> accumulatedNs_; ///< Per-job spent time.
    std::thread thread_;
};

} // namespace autosva::robust
