// Deterministic fault injection: site-addressed failure points compiled
// into the engine's I/O and solver edges, armed from one spec string
// (`--fault-inject` / AUTOSVA_FAULT_INJECT) and replayable run-to-run.
//
// Contract — mirrors obs::Recorder: a *disarmed* plan costs one relaxed
// atomic pointer load per site (the `active()` null test); no allocation,
// no lock, no branch beyond the null check. An armed plan additionally
// pays one fetch_add per hit on the armed site.
//
// Each site counts its "hits" (times execution reached the site) and
// fires exactly once, at the N-th hit (1-based), making every fault
// deterministic for a fixed workload and worker interleaving-independent
// at sites driven by a single thread (cache I/O) and
// schedule-dependent-but-bounded at multi-threaded sites (solver solves).
// The *recovery behaviour* under an injected fault must be identical for
// every interleaving: degrade, never crash, never flip a verdict.
//
// What a fired fault means at each site:
//   CacheRead      ProofCache::load() behaves as if the log were
//                  unreadable (degrades to memory-only).
//   CacheWrite     ProofCache::store() behaves as if the append failed
//                  (disk full): persistence drops, run continues.
//   SolverInterrupt SatSolver::solve() returns Interrupted without
//                  touching solver state — the cancellation-token result
//                  minus the token, exercising every Interrupted branch.
//   BitblastAlloc  bitblast() throws std::bad_alloc at entry.
//   PropgenAlloc   generateProperties() throws std::bad_alloc at entry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace autosva::robust {

enum class FaultSite : uint8_t {
    CacheRead = 0,
    CacheWrite,
    SolverInterrupt,
    BitblastAlloc,
    PropgenAlloc,
};
constexpr size_t kFaultSiteCount = 5;

/// Spec/reporting name of a site ("cache-read", "solver-interrupt", ...).
[[nodiscard]] const char* faultSiteName(FaultSite site);

/// One armed run's worth of fault sites. Arm sites, activate the plan,
/// run, read back hit/fired counts. The plan must outlive its activation
/// window (deactivate before destroying).
class FaultPlan {
public:
    /// Arms `site` to fire at its `fireAtHit`-th hit (1-based). 0 disarms.
    void arm(FaultSite site, uint64_t fireAtHit);

    /// Counts a hit at `site`; true exactly when this hit is the armed
    /// one. Called via the free function faultFire() below.
    [[nodiscard]] bool shouldFire(FaultSite site);

    [[nodiscard]] uint64_t hits(FaultSite site) const;
    [[nodiscard]] bool fired(FaultSite site) const;
    /// True when any armed site has fired.
    [[nodiscard]] bool anyFired() const;

    /// Human-readable per-site summary ("cache-write: armed@1 hits=3
    /// fired" ...), one line per armed site; empty when nothing is armed.
    [[nodiscard]] std::string summary() const;

    /// Parses "site:N[,site:N...]" (e.g. "cache-write:1,solver-interrupt:40")
    /// into `out`. Returns "" on success, else a diagnostic.
    [[nodiscard]] static std::string parseSpec(const std::string& spec, FaultPlan& out);

    /// Installs `plan` as the process-wide active plan (nullptr disarms).
    /// Not reference-counted: the caller keeps ownership and must
    /// deactivate before the plan dies.
    static void activate(FaultPlan* plan);
    [[nodiscard]] static FaultPlan* active();

private:
    struct Site {
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> fireAt{0}; ///< 0 = disarmed.
    };
    std::array<Site, kFaultSiteCount> sites_{};
};

/// The hot-path hook: one atomic pointer load when no plan is active.
[[nodiscard]] inline bool faultFire(FaultSite site) {
    FaultPlan* plan = FaultPlan::active();
    return plan != nullptr && plan->shouldFire(site);
}

/// RAII activation for tests: activates at construction, deactivates at
/// destruction (exception-safe around engine runs that may throw).
class FaultScope {
public:
    explicit FaultScope(FaultPlan& plan) { FaultPlan::activate(&plan); }
    ~FaultScope() { FaultPlan::activate(nullptr); }
    FaultScope(const FaultScope&) = delete;
    FaultScope& operator=(const FaultScope&) = delete;
};

} // namespace autosva::robust
