#include "robust/watchdog.hpp"

namespace autosva::robust {

namespace {

/// Scanner cadence. Deadlines are enforced to within one period; 20ms is
/// negligible against second-scale budgets and keeps the thread idle.
constexpr std::chrono::milliseconds kScanPeriod{20};

void fireSlot(std::atomic<bool>& token, std::atomic<uint8_t>& cause, Watchdog::Cause why) {
    // Cause before token: a reader that observes the token fired is
    // guaranteed (seq_cst) to observe a non-None cause.
    uint8_t expected = 0;
    cause.compare_exchange_strong(expected, static_cast<uint8_t>(why));
    token.store(true);
}

} // namespace

Watchdog::Watchdog(const Config& cfg) : cfg_(cfg), epoch_(Clock::now()) {
    thread_ = std::thread([this] { scanLoop(); });
}

Watchdog::~Watchdog() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

Watchdog::JobGuard Watchdog::guardJob(size_t jobIndex) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot* slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = &slots_.emplace_back();
    }
    slot->jobIndex = jobIndex;
    slot->cause.store(0);
    slot->token.store(false);
    // Cumulative per-job clock: resume with the time this job already
    // spent in earlier pipeline stages.
    const auto it = accumulatedNs_.find(jobIndex);
    const int64_t spentNs = it == accumulatedNs_.end() ? 0 : it->second;
    slot->start = Clock::now() - std::chrono::nanoseconds(spentNs);
    slot->active = true;
    // Work registered after the run already expired starts pre-fired, so
    // the remaining jobs drain as immediate Interrupted results.
    if (runToken_.load()) fireSlot(slot->token, slot->cause, runCause());
    return JobGuard(this, slot);
}

void Watchdog::JobGuard::release() {
    if (wd_ != nullptr && slot_ != nullptr) wd_->releaseSlot(slot_);
    wd_ = nullptr;
    slot_ = nullptr;
}

void Watchdog::releaseSlot(Slot* slot) {
    std::lock_guard<std::mutex> lock(mu_);
    slot->active = false;
    // slot->start already carries earlier stages' time subtracted out, so
    // now-start is the job's total spent time.
    accumulatedNs_[slot->jobIndex] =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - slot->start)
            .count();
    freeSlots_.push_back(slot);
}

void Watchdog::fireRunLocked(Cause cause) {
    uint8_t expected = 0;
    runCause_.compare_exchange_strong(expected, static_cast<uint8_t>(cause));
    runToken_.store(true);
    for (Slot& slot : slots_)
        if (slot.active) fireSlot(slot.token, slot.cause, cause);
}

void Watchdog::scanLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!shutdown_) {
        cv_.wait_for(lock, kScanPeriod);
        if (shutdown_) break;
        const auto now = Clock::now();
        if (!runToken_.load()) {
            if (cfg_.externalStop != nullptr && cfg_.externalStop->load())
                fireRunLocked(Cause::ExternalStop);
            else if (cfg_.runBudgetSeconds > 0.0 &&
                     std::chrono::duration<double>(now - epoch_).count() >=
                         cfg_.runBudgetSeconds)
                fireRunLocked(Cause::RunBudget);
        }
        if (cfg_.obligationTimeoutSeconds > 0.0) {
            for (Slot& slot : slots_) {
                if (!slot.active || slot.token.load()) continue;
                if (std::chrono::duration<double>(now - slot.start).count() >=
                    cfg_.obligationTimeoutSeconds) {
                    fireSlot(slot.token, slot.cause, Cause::JobTimeout);
                    jobTimeouts_.fetch_add(1);
                }
            }
        }
    }
}

} // namespace autosva::robust
