// Aggregation and rendering of per-property model-checking results into
// the verification reports the paper's evaluation tables are built from.
#pragma once

#include <string>
#include <vector>

#include "formal/engine.hpp"

namespace autosva::sva {

/// Summary of one formal-testbench run on a DUT.
struct VerificationReport {
    std::string dutName;
    std::vector<formal::PropertyResult> results;
    double totalSeconds = 0.0;

    // -- Aggregates --------------------------------------------------------
    [[nodiscard]] size_t count(formal::Status status) const;
    [[nodiscard]] size_t totalChecked() const; ///< Excludes Skipped.
    [[nodiscard]] size_t numProven() const { return count(formal::Status::Proven); }
    [[nodiscard]] size_t numFailed() const { return count(formal::Status::Failed); }
    /// Proof rate over assert-type obligations (proven / (proven+failed+unknown)).
    [[nodiscard]] double proofRate() const;
    [[nodiscard]] bool allProven() const;
    [[nodiscard]] bool anyFailed() const { return numFailed() > 0; }

    /// First failing result, if any.
    [[nodiscard]] const formal::PropertyResult* firstFailure() const;
    [[nodiscard]] const formal::PropertyResult* find(const std::string& name) const;

    /// One-line outcome in the style of the paper's Table III
    /// ("100% liveness/safety properties proof", "Bug found", ...).
    [[nodiscard]] std::string outcomeSummary() const;

    /// Full per-property table.
    [[nodiscard]] std::string str() const;
};

} // namespace autosva::sva
