// Aggregation and rendering of per-property model-checking results into
// the verification reports the paper's evaluation tables are built from.
// Also hosts the thread-safe ResultSink the parallel obligation scheduler
// publishes into.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "formal/result.hpp"

namespace autosva::sva {

/// Thread-safe collection point for per-property results, keyed by
/// obligation declaration index. Worker threads publish in completion
/// order; drain() returns declaration order, so the final report is
/// deterministic regardless of worker count or scheduling.
class ResultSink {
public:
    explicit ResultSink(size_t slots);

    /// Publishes the result for declaration index `index`. Thread-safe;
    /// each index must be published exactly once.
    void publish(size_t index, formal::PropertyResult result);

    [[nodiscard]] size_t slots() const;
    [[nodiscard]] size_t published() const;

    /// Declaration-ordered results. Call once, after every slot has been
    /// published; throws std::logic_error on unpublished slots. The sink is
    /// spent afterwards (zero slots).
    [[nodiscard]] std::vector<formal::PropertyResult> drain();

private:
    mutable std::mutex mutex_;
    std::vector<formal::PropertyResult> results_;
    std::vector<char> filled_;
    size_t published_ = 0;
};

/// Frontend-side counters of a verification run. The typed-AST property
/// pipeline hands the generated property module to the elaborator as AST,
/// so `generatedTextReparses` is 0 on every `autosva run`/`run-design`
/// path (the CLI --stats line and bench_generation_speed gate it); the
/// fallback of re-parsing printed text only exists for hand-built
/// testbenches without an AST.
struct FrontendStats {
    uint64_t sourcesParsed = 0;         ///< RTL buffers lexed + parsed this run.
    uint64_t generatedTextReparses = 0; ///< Generated property text re-parsed (0 on AST path).
    uint64_t generatedAstReused = 0;    ///< Property-module ASTs elaborated directly.
};

/// Summary of one formal-testbench run on a DUT.
struct VerificationReport {
    std::string dutName;
    std::vector<formal::PropertyResult> results;
    /// Full engine counters of the run: SAT calls, conflicts, encoder
    /// vars/clauses, cones, solver reuses, and the proof-cache
    /// lookup/hit/seed counters (0 when the cache is disabled) — the CLI's
    /// --stats and --cache-stats source. Never part of canonical():
    /// counters legitimately vary with jobs, cache state, and solver reuse.
    formal::EngineStats engineStats;
    /// Frontend parse counters of the run (also excluded from canonical()).
    FrontendStats frontend;

    // -- Aggregates --------------------------------------------------------
    [[nodiscard]] size_t count(formal::Status status) const;
    [[nodiscard]] size_t totalChecked() const; ///< Excludes Skipped.
    /// Results served from the proof cache without SAT work.
    [[nodiscard]] size_t numCached() const;
    [[nodiscard]] size_t numProven() const { return count(formal::Status::Proven); }
    [[nodiscard]] size_t numFailed() const { return count(formal::Status::Failed); }
    /// Proof rate over assert-type obligations (proven / (proven+failed+unknown)).
    [[nodiscard]] double proofRate() const;
    [[nodiscard]] bool allProven() const;
    [[nodiscard]] bool anyFailed() const { return numFailed() > 0; }
    /// True when any result is a deadline/interruption-degraded Unknown
    /// (PropertyResult::unknownReason set): the run terminated early, every
    /// verdict present is sound, but the report is NOT covered by the
    /// canonical-identity contract — a rerun with more time may decide
    /// what this run left Unknown.
    [[nodiscard]] bool degraded() const;

    /// First failing result, if any.
    [[nodiscard]] const formal::PropertyResult* firstFailure() const;
    [[nodiscard]] const formal::PropertyResult* find(const std::string& name) const;

    /// One-line outcome in the style of the paper's Table III
    /// ("100% liveness/safety properties proof", "Bug found", ...).
    [[nodiscard]] std::string outcomeSummary() const;

    /// Full per-property table.
    [[nodiscard]] std::string str() const;

    /// Canonical verdict serialization: everything a verification run must
    /// reproduce byte-for-byte (name, kind, status, trace-bearing depths,
    /// trace shape, in declaration order) and nothing it legitimately may
    /// vary (wall-clock times, engine-vs-cache provenance, proof depths —
    /// which are induction-k / PDR-convergence-frame engine artifacts that
    /// move with the graph representation). A warm-cache rerun, a
    /// different worker count, the AIG rewrite toggled either way, and any
    /// perturbation seed all yield the identical string for the same
    /// design.
    [[nodiscard]] std::string canonical() const;
};

} // namespace autosva::sva
