#include "sva/catalog.hpp"

namespace autosva::sva {

const char* attrName(Attr attr) {
    switch (attr) {
    case Attr::Val: return "val";
    case Attr::Ack: return "ack";
    case Attr::Transid: return "transid";
    case Attr::TransidUnique: return "transid_unique";
    case Attr::Active: return "active";
    case Attr::Stable: return "stable";
    case Attr::Data: return "data";
    }
    return "?";
}

std::optional<Attr> attrFromSuffix(std::string_view suffix) {
    if (suffix == "val") return Attr::Val;
    if (suffix == "ack" || suffix == "rdy") return Attr::Ack;
    if (suffix == "transid_unique") return Attr::TransidUnique;
    if (suffix == "transid") return Attr::Transid;
    if (suffix == "active") return Attr::Active;
    if (suffix == "stable") return Attr::Stable;
    if (suffix == "data") return Attr::Data;
    return std::nullopt;
}

const std::vector<PropertyRule>& propertyRules() {
    static const std::vector<PropertyRule> rules = {
        {Attr::Val, "eventual_response",
         "If P is valid, then eventually Q will be valid", Orientation::Starred, true},
        {Attr::Val, "had_a_request",
         "for each Q valid, there is a P valid", Orientation::Starred, false},
        {Attr::Ack, "hsk_or_drop",
         "If P is valid, eventually P is ack'ed or P is dropped (if its stable "
         "signal is not defined)",
         Orientation::Starred, true},
        {Attr::Stable, "stability",
         "If P is valid and not ack'ed, then it is stable next cycle", Orientation::Opposite,
         false},
        {Attr::Active, "active",
         "This signal is asserted while transaction is ongoing", Orientation::AlwaysAssert,
         false},
        {Attr::Transid, "transid_integrity",
         "Each Q will have the same transaction ID as P", Orientation::Starred, false},
        {Attr::TransidUnique, "transid_unique",
         "There can only be 1 ongoing transaction per ID", Orientation::Opposite, false},
        {Attr::Data, "data_integrity",
         "Each Q will have the same data as P", Orientation::Starred, false},
    };
    return rules;
}

bool isAsserted(Orientation orientation, bool incoming) {
    switch (orientation) {
    case Orientation::Starred: return incoming;
    case Orientation::Opposite: return !incoming;
    case Orientation::AlwaysAssert: return true;
    }
    return true;
}

} // namespace autosva::sva
