// The AutoSVA property catalog: a data rendering of the paper's Table II
// ("Properties generated for each transaction attribute") plus the
// assert/assume orientation rules of §III-B. The generator consumes these
// rules; tests validate the generated testbenches against them.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autosva::sva {

/// Transaction attribute suffixes of the AutoSVA language (Table I).
enum class Attr {
    Val,
    Ack,
    Transid,
    TransidUnique,
    Active,
    Stable,
    Data,
};

[[nodiscard]] const char* attrName(Attr attr);

/// Parses a suffix (with `rdy` accepted as a synonym for `ack`, matching
/// the paper's Fig. 3 usage). Longest-match: `transid_unique` wins over
/// `transid`.
[[nodiscard]] std::optional<Attr> attrFromSuffix(std::string_view suffix);

/// How a generated property's directive is chosen from transaction
/// direction (Table II footnote and §III-B):
///  - Starred attributes (val, ack, transid, data) are *asserted* on
///    incoming transactions and *assumed* on outgoing ones.
///  - stable and transid_unique are the opposite.
///  - active is always asserted.
enum class Orientation { Starred, Opposite, AlwaysAssert };

struct PropertyRule {
    Attr attr;
    const char* propertyName;   ///< Suffix used in generated labels.
    const char* description;    ///< Table II wording.
    Orientation orientation;
    bool liveness;              ///< Uses s_eventually.
};

/// All Table II rules in order.
[[nodiscard]] const std::vector<PropertyRule>& propertyRules();

/// Resolves the directive for a rule instance: returns true if the property
/// must be an assertion (else an assumption).
[[nodiscard]] bool isAsserted(Orientation orientation, bool incoming);

} // namespace autosva::sva
