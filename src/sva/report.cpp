#include "sva/report.hpp"

#include <cmath>
#include <stdexcept>

#include "util/table.hpp"

namespace autosva::sva {

using formal::PropertyResult;
using formal::Status;

// ---------------------------------------------------------------------------
// ResultSink
// ---------------------------------------------------------------------------

ResultSink::ResultSink(size_t slots) : results_(slots), filled_(slots, 0) {}

void ResultSink::publish(size_t index, PropertyResult result) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index >= results_.size()) throw std::logic_error("ResultSink: index out of range");
    if (filled_[index]) throw std::logic_error("ResultSink: slot published twice");
    results_[index] = std::move(result);
    filled_[index] = 1;
    ++published_;
}

size_t ResultSink::slots() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

size_t ResultSink::published() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return published_;
}

std::vector<PropertyResult> ResultSink::drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (published_ != results_.size())
        throw std::logic_error("ResultSink: drain() before every slot was published");
    // The sink is spent after drain(): zero slots, further publishes throw.
    published_ = 0;
    filled_.clear();
    return std::move(results_);
}

size_t VerificationReport::count(Status status) const {
    size_t n = 0;
    for (const auto& r : results)
        if (r.status == status) ++n;
    return n;
}

size_t VerificationReport::totalChecked() const {
    return results.size() - count(Status::Skipped);
}

size_t VerificationReport::numCached() const {
    size_t n = 0;
    for (const auto& r : results)
        if (r.cached) ++n;
    return n;
}

double VerificationReport::proofRate() const {
    size_t proven = 0, judged = 0;
    for (const auto& r : results) {
        if (r.kind != ir::Obligation::Kind::SafetyBad &&
            r.kind != ir::Obligation::Kind::Justice)
            continue;
        if (r.status == Status::Skipped) continue;
        ++judged;
        if (r.status == Status::Proven) ++proven;
    }
    if (judged == 0) return 1.0;
    return static_cast<double>(proven) / static_cast<double>(judged);
}

bool VerificationReport::allProven() const {
    for (const auto& r : results) {
        if (r.kind != ir::Obligation::Kind::SafetyBad &&
            r.kind != ir::Obligation::Kind::Justice)
            continue;
        if (r.status == Status::Skipped) continue;
        if (r.status != Status::Proven) return false;
    }
    return true;
}

bool VerificationReport::degraded() const {
    for (const auto& r : results)
        if (r.unknownReason != formal::UnknownReason::None) return true;
    return false;
}

const PropertyResult* VerificationReport::firstFailure() const {
    for (const auto& r : results)
        if (r.status == Status::Failed) return &r;
    return nullptr;
}

const PropertyResult* VerificationReport::find(const std::string& name) const {
    for (const auto& r : results)
        if (r.name == name) return &r;
    // Accept hierarchy-suffix matches (bound property modules carry an
    // instance prefix such as "dut_prop_i.").
    for (const auto& r : results) {
        if (r.name.size() > name.size() &&
            r.name.compare(r.name.size() - name.size(), name.size(), name) == 0 &&
            r.name[r.name.size() - name.size() - 1] == '.')
            return &r;
    }
    return nullptr;
}

std::string VerificationReport::outcomeSummary() const {
    if (anyFailed()) {
        const PropertyResult* f = firstFailure();
        return "Bug found: " + f->name + " (CEX at " + std::to_string(f->depth) + " cycles)";
    }
    if (allProven()) return "100% liveness/safety properties proof";
    size_t unknown = count(Status::Unknown);
    return std::to_string(static_cast<int>(std::round(proofRate() * 100))) +
           "% proof, " + std::to_string(unknown) + " unresolved";
}

namespace {

const char* kindName(ir::Obligation::Kind kind) {
    switch (kind) {
    case ir::Obligation::Kind::SafetyBad: return "safety";
    case ir::Obligation::Kind::Justice: return "liveness";
    case ir::Obligation::Kind::Cover: return "cover";
    case ir::Obligation::Kind::Constraint: return "assume";
    case ir::Obligation::Kind::Fairness: return "fairness";
    }
    return "?";
}

} // namespace

std::string VerificationReport::str() const {
    util::TextTable table({"property", "kind", "status", "depth", "time(s)", "src"});
    for (const auto& r : results) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", r.seconds);
        const char* src = r.status == Status::Skipped ? "-" : (r.cached ? "cache" : "engine");
        std::string status = formal::statusName(r.status);
        if (r.unknownReason != formal::UnknownReason::None)
            status += std::string("(") + formal::unknownReasonName(r.unknownReason) + ")";
        table.addRow({r.name, kindName(r.kind), std::move(status),
                      r.depth >= 0 ? std::to_string(r.depth) : "-", buf, src});
    }
    std::string out = "DUT: " + dutName + "\n" + table.str();
    if (degraded())
        out += "Degraded run: deadline or interruption left obligations Unknown; "
               "rerun without a budget to decide them.\n";
    if (engineStats.cacheLookups > 0)
        out += "Proof cache: " + std::to_string(engineStats.cacheHits) + "/" +
               std::to_string(engineStats.cacheLookups) + " hits, " +
               std::to_string(engineStats.cacheSeededLemmas) + " lemmas seeded\n";
    // Provenance: point every failing property back at the designer
    // annotation it was generated from (the democratization promise — a
    // CEX names the line the designer wrote, not just a generated label).
    for (const auto& r : results) {
        if (r.status != Status::Failed || !r.loc.valid()) continue;
        out += "Failed " + r.name + " <- annotation at " + r.loc.file + ":" +
               std::to_string(r.loc.line) + "\n";
    }
    return out + "Outcome: " + outcomeSummary() + "\n";
}

std::string VerificationReport::canonical() const {
    std::string out;
    for (const auto& r : results) {
        out += r.name;
        out += '|';
        out += kindName(r.kind);
        out += '|';
        out += formal::statusName(r.status);
        out += '|';
        // Depth is semantic only for trace-bearing verdicts (shortest CEX /
        // cover witness length). For proofs and Unknowns it is engine
        // provenance — the k-induction depth or PDR convergence frame moves
        // with the graph representation (the AIG rewrite legitimately
        // converges at a different frame) and the bound that ran out — so
        // it stays out of the canonical string, which must be
        // byte-identical across {rewrite on/off} x {jobs} x perturbations.
        const bool semanticDepth =
            r.status == formal::Status::Failed || r.status == formal::Status::Covered;
        out += semanticDepth ? std::to_string(r.depth) : std::string("-");
        out += '|';
        out += std::to_string(r.trace.length());
        out += '|';
        out += std::to_string(r.trace.loopStart);
        out += '\n';
    }
    return out;
}

} // namespace autosva::sva
