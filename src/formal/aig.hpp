// And-Inverter Graph with latches — the bit-level representation used by
// the model checking engines. Structural hashing and constant folding are
// applied on construction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace autosva::formal {

/// AIG literal: 2*var + sign. Var 0 is the constant-false var, so:
inline constexpr uint32_t kAigFalse = 0;
inline constexpr uint32_t kAigTrue = 1;

using AigLit = uint32_t;

[[nodiscard]] constexpr AigLit aigMkLit(uint32_t var, bool negated = false) {
    return var * 2 + (negated ? 1u : 0u);
}
[[nodiscard]] constexpr uint32_t aigVar(AigLit lit) { return lit >> 1; }
[[nodiscard]] constexpr bool aigSign(AigLit lit) { return (lit & 1u) != 0; }
[[nodiscard]] constexpr AigLit aigNot(AigLit lit) { return lit ^ 1u; }

class Aig {
public:
    enum class VarKind : uint8_t { Const, Input, Latch, And };

    Aig();

    [[nodiscard]] AigLit mkInput(std::string name = {});
    /// @param init 0/1 for a fixed initial value, -1 for symbolic.
    [[nodiscard]] AigLit mkLatch(int init, std::string name = {});
    void setLatchNext(AigLit latchLit, AigLit next);

    [[nodiscard]] AigLit mkAnd(AigLit a, AigLit b);
    [[nodiscard]] AigLit mkOr(AigLit a, AigLit b) { return aigNot(mkAnd(aigNot(a), aigNot(b))); }
    [[nodiscard]] AigLit mkXor(AigLit a, AigLit b);
    [[nodiscard]] AigLit mkMux(AigLit sel, AigLit t, AigLit e);
    [[nodiscard]] AigLit mkAndN(const std::vector<AigLit>& lits);
    [[nodiscard]] AigLit mkOrN(const std::vector<AigLit>& lits);

    [[nodiscard]] size_t numVars() const { return kinds_.size(); }
    [[nodiscard]] VarKind kind(uint32_t var) const { return kinds_[var]; }
    [[nodiscard]] AigLit fanin0(uint32_t var) const { return fanin0_[var]; }
    [[nodiscard]] AigLit fanin1(uint32_t var) const { return fanin1_[var]; }
    [[nodiscard]] AigLit latchNext(uint32_t var) const { return next_[var]; }
    [[nodiscard]] int latchInit(uint32_t var) const { return init_[var]; }
    [[nodiscard]] const std::string& varName(uint32_t var) const { return names_[var]; }

    [[nodiscard]] const std::vector<uint32_t>& inputs() const { return inputs_; }
    [[nodiscard]] const std::vector<uint32_t>& latches() const { return latches_; }
    [[nodiscard]] size_t numAnds() const { return numAnds_; }

private:
    uint32_t newVar(VarKind kind);

    std::vector<VarKind> kinds_;
    std::vector<AigLit> fanin0_, fanin1_;
    std::vector<AigLit> next_;
    std::vector<int> init_;
    std::vector<std::string> names_;
    std::vector<uint32_t> inputs_;
    std::vector<uint32_t> latches_;
    std::unordered_map<uint64_t, uint32_t> strash_;
    size_t numAnds_ = 0;
};

} // namespace autosva::formal
