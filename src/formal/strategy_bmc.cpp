// Bounded model checking strategy: unrolls from the reset state and asks
// for the bad net frame by frame, so the first Sat answer is a shortest
// counterexample (or cover witness). Also hosts the word-level trace
// extraction shared with the PDR strategy's deep-counterexample re-run.
//
// Two execution paths share the same semantics:
//  - legacy: a throwaway SatSolver/Unroller per obligation (the strategy's
//    run() entry, used when EngineOptions::solverReuse is off, and as the
//    deterministic trace replay below);
//  - batched (runBmcBatch): one long-lived solver per worker discharges the
//    worker's whole job batch in frame lockstep — for k = 0,1,2,... every
//    still-open job is queried at frame k before any job advances to k+1.
//    The lockstep order is what lets everything stay level-0 *units*: a
//    frame's environment constraints are added once when the sweep reaches
//    it (no job ever queries below the constrained frontier), and an Unsat
//    answer for job j at frame k adds the unit "no trace of length k
//    reaches bad_j" — a fact implied by the active constraints, so it can
//    only prune, never flip, any other job's query. Unit facts propagate
//    once and simplify all later encoding, which activation-literal
//    guarding cannot do (guarded constraints re-propagate per solve and
//    leak guard literals into every learnt clause).
// Sat/Unsat answers are semantic, so both paths conclude each job at the
// same depth for any worker count or batch mix. Model values are not: the
// canonical report sees the model only through a liveness lasso's loop
// start, so witnesses found on the live (l2s) AIG re-derive their trace on
// a fresh legacy replay; safety and cover witnesses read the batch model
// directly — any model is a true witness.
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {

CexTrace extractCexTrace(const ProofContext& ctx, Unroller& un, SatSolver& solver,
                         int frames) {
    CexTrace trace;
    // Initial register values.
    for (const auto& [node, vars] : ctx.bb.latchVars) {
        uint64_t value = 0;
        for (size_t i = 0; i < vars.size(); ++i) {
            SatLit l = un.peek(0, aigMkLit(vars[i]));
            if (l != Unroller::kUnset && modelBit(solver, l)) value |= uint64_t{1} << i;
        }
        trace.initialRegs[ctx.design.node(node).name] = value;
    }
    // Inputs per frame.
    for (int f = 0; f <= frames; ++f) {
        std::unordered_map<std::string, uint64_t> frame;
        for (const auto& [node, vars] : ctx.bb.inputVars) {
            uint64_t value = 0;
            for (size_t i = 0; i < vars.size(); ++i) {
                SatLit l = un.peek(f, aigMkLit(vars[i]));
                if (l != Unroller::kUnset && modelBit(solver, l)) value |= uint64_t{1} << i;
            }
            frame[ctx.design.node(node).name] = value;
        }
        trace.inputs.push_back(std::move(frame));
    }
    // Liveness lasso: locate the save point.
    if (ctx.saveOracle != kAigFalse) {
        for (int f = 0; f <= frames; ++f) {
            SatLit l = un.peek(f, ctx.saveOracle);
            if (l == Unroller::kUnset) continue;
            if (modelBit(solver, l)) {
                trace.loopStart = f;
                break;
            }
        }
    }
    return trace;
}

namespace {

/// The legacy BMC loop on a throwaway solver, bounded by `maxDepth`. Also
/// serves as the deterministic trace replay for the batched path: the first
/// Sat depth is a semantic fact, so replaying up to it reproduces the
/// legacy search (and therefore the legacy trace) byte for byte.
void runBmcFresh(const ProofContext& ctx, ObligationJob& job, int maxDepth) {
    obs::Span span(ctx.opts.trace, "strategy", "bmc", static_cast<int64_t>(job.index));
    uint64_t queries = 0;
    SatSolver solver;
    solver.setConflictBudget(ctx.opts.conflictBudget);
    if (job.watchdogStop) solver.bindWatchdog(job.watchdogStop);
    // A liveness lasso's loop start is read from the model and is part of
    // canonical identity, and this loop IS the deterministic replay that
    // pins it — so preprocessing (which may move model values) stays off on
    // the live AIG. Safety/cover traces expose values only as witnesses.
    solver.setPreprocessing(ctx.opts.satPre && ctx.saveOracle == kAigFalse);
    solver.bindTrace(ctx.opts.trace, static_cast<int64_t>(job.index));
    Unroller un(ctx.aig, solver, Unroller::Init::Reset);
    int lastConstrained = -1;
    for (int k = 0; k <= maxDepth; ++k) {
        constrainFramesTo(un, solver, ctx.constraints, k, lastConstrained);
        util::Stopwatch sw;
        SatLit bad = un.lit(k, job.bad);
        if (solver.preprocessing()) {
            solver.freeze(satVar(bad));
            un.freezeFrontier(k);
            solver.preprocess();
        }
        SatResult r = solver.solve({bad});
        ++queries;
        if (ctx.stats) ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
        job.result.seconds += sw.seconds();
        if (r == SatResult::Sat) {
            job.result.status = job.coverMode ? Status::Covered : Status::Failed;
            job.result.depth = k;
            job.result.trace = extractCexTrace(ctx, un, solver, k);
            break;
        }
        if (r == SatResult::Unsat) {
            solver.addUnit(satNeg(bad)); // Strengthen deeper frames.
        } else {
            // Budget exhausted: leave Unknown, stop refining.
            job.result.depth = k;
            break;
        }
    }
    if (ctx.stats) {
        ctx.stats->conflicts.fetch_add(solver.conflicts(), std::memory_order_relaxed);
        ctx.stats->propagations.fetch_add(solver.propagations(), std::memory_order_relaxed);
        ctx.stats->addEncoder(solver, un);
    }
    span.arg("queries", queries);
}

class BmcStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "bmc"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        runBmcFresh(ctx, job, ctx.opts.bmcDepth);
    }
};

} // namespace

void runBmcBatch(const ProofContext& ctx, const std::vector<ObligationJob*>& jobs) {
    if (jobs.empty()) return;
    obs::Recorder* rec = ctx.opts.trace;
    obs::Span span(rec, "strategy", "bmc-batch");
    span.arg("jobs", jobs.size());
    // Per-job attribution shares of this sweep (queries and solve time),
    // emitted as Counter events at the end — the batch runs on one shared
    // solver, so there is no per-job span to hang them on.
    std::unordered_map<const ObligationJob*, std::pair<uint64_t, uint64_t>> attribution;
    SatSolver solver;
    // The sweep solver serves every job in the batch, so it answers to the
    // run-level deadline only (per-job wall attribution inside a lockstep
    // sweep would overcharge idle batch-mates — see robust/watchdog.hpp).
    if (ctx.runStop) solver.bindWatchdog(ctx.runStop);
    // Batch answers are Sat/Unsat semantics only (lasso witnesses replay on
    // a fresh legacy solver), so preprocessing is safe even on the live AIG.
    solver.setPreprocessing(ctx.opts.satPre);
    solver.bindTrace(rec, -1);
    Unroller un(ctx.aig, solver, Unroller::Init::Reset);
    int lastConstrained = -1;
    std::vector<ObligationJob*> open(jobs.begin(), jobs.end());
    for (int k = 0; k <= ctx.opts.bmcDepth && !open.empty(); ++k) {
        constrainFramesTo(un, solver, ctx.constraints, k, lastConstrained);
        if (solver.preprocessing()) {
            // Freeze this frame's query set and frontier, then take the
            // (growth-thresholded) preprocessing checkpoint before the
            // frame's sweep.
            for (ObligationJob* job : open) solver.freeze(satVar(un.lit(k, job->bad)));
            un.freezeFrontier(k);
            solver.preprocess();
        }
        // Fresh search heuristics at each frame boundary: within a frame
        // the batch hops between unrelated bad cones, and activity/phase
        // state tuned to one job's cone measurably degrades the next's
        // search (the learnt clauses and the shared encoding stay — they
        // are what the batch exists to reuse).
        solver.resetSearchState();
        for (size_t i = 0; i < open.size();) {
            ObligationJob& job = *open[i];
            util::Stopwatch sw;
            SatLit bad = un.lit(k, job.bad);
            SatResult r = solver.solve({bad});
            if (ctx.stats) ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
            const double solveSeconds = sw.seconds();
            job.result.seconds += solveSeconds;
            if (rec) {
                auto& share = attribution[&job];
                ++share.first;
                share.second += static_cast<uint64_t>(solveSeconds * 1e9);
            }
            if (r == SatResult::Sat) {
                if (ctx.saveOracle != kAigFalse) {
                    // Lasso witness: the loop start is model-dependent and
                    // canonical; replay on a fresh solver for determinism.
                    // The replay re-times frames 0..k, so restart the
                    // job's clock instead of double-counting them.
                    job.result.seconds = 0.0;
                    runBmcFresh(ctx, job, k);
                } else {
                    job.result.status = job.coverMode ? Status::Covered : Status::Failed;
                    job.result.depth = k;
                    job.result.trace = extractCexTrace(ctx, un, solver, k);
                }
                open.erase(open.begin() + static_cast<long>(i));
            } else if (r == SatResult::Unsat) {
                // Implied by the active constraints, so a plain unit: every
                // later query — this job's or a batch-mate's with an
                // overlapping cone — may reuse it, none can be flipped by it.
                solver.addUnit(satNeg(bad));
                ++i;
            } else {
                job.result.depth = k; // Budget exhausted; not used in batch mode.
                open.erase(open.begin() + static_cast<long>(i));
            }
        }
    }
    if (ctx.stats) {
        ctx.stats->conflicts.fetch_add(solver.conflicts(), std::memory_order_relaxed);
        ctx.stats->propagations.fetch_add(solver.propagations(), std::memory_order_relaxed);
        ctx.stats->addEncoder(solver, un);
        if (jobs.size() > 1)
            ctx.stats->solverReuses.fetch_add(jobs.size() - 1, std::memory_order_relaxed);
    }
    if (rec) {
        // Declaration iteration order over `jobs` (not the map) keeps the
        // emission order deterministic.
        for (const ObligationJob* job : jobs) {
            auto it = attribution.find(job);
            if (it == attribution.end()) continue;
            rec->counter("strategy", "bmc", static_cast<int64_t>(job->index),
                         {{"queries", it->second.first}, {"nanos", it->second.second}});
        }
    }
}

std::unique_ptr<ProofStrategy> makeBmcStrategy() { return std::make_unique<BmcStrategy>(); }

} // namespace autosva::formal
