// Bounded model checking strategy: unrolls from the reset state and asks
// for the bad net frame by frame, so the first Sat answer is a shortest
// counterexample (or cover witness). Also hosts the word-level trace
// extraction shared with the PDR strategy's deep-counterexample re-run.
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {

CexTrace extractCexTrace(const ProofContext& ctx, Unroller& un, SatSolver& solver,
                         int frames) {
    CexTrace trace;
    // Initial register values.
    for (const auto& [node, vars] : ctx.bb.latchVars) {
        uint64_t value = 0;
        for (size_t i = 0; i < vars.size(); ++i) {
            SatLit l = un.peek(0, aigMkLit(vars[i]));
            if (l != Unroller::kUnset && modelBit(solver, l)) value |= uint64_t{1} << i;
        }
        trace.initialRegs[ctx.design.node(node).name] = value;
    }
    // Inputs per frame.
    for (int f = 0; f <= frames; ++f) {
        std::unordered_map<std::string, uint64_t> frame;
        for (const auto& [node, vars] : ctx.bb.inputVars) {
            uint64_t value = 0;
            for (size_t i = 0; i < vars.size(); ++i) {
                SatLit l = un.peek(f, aigMkLit(vars[i]));
                if (l != Unroller::kUnset && modelBit(solver, l)) value |= uint64_t{1} << i;
            }
            frame[ctx.design.node(node).name] = value;
        }
        trace.inputs.push_back(std::move(frame));
    }
    // Liveness lasso: locate the save point.
    if (ctx.saveOracle != kAigFalse) {
        for (int f = 0; f <= frames; ++f) {
            SatLit l = un.peek(f, ctx.saveOracle);
            if (l == Unroller::kUnset) continue;
            if (modelBit(solver, l)) {
                trace.loopStart = f;
                break;
            }
        }
    }
    return trace;
}

namespace {

class BmcStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "bmc"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        SatSolver solver;
        solver.setConflictBudget(ctx.opts.conflictBudget);
        Unroller un(ctx.aig, solver, Unroller::Init::Reset);
        for (int k = 0; k <= ctx.opts.bmcDepth; ++k) {
            for (AigLit c : ctx.constraints) solver.addUnit(un.lit(k, c));
            util::Stopwatch sw;
            SatLit bad = un.lit(k, job.bad);
            SatResult r = solver.solve({bad});
            if (ctx.stats) ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
            job.result.seconds += sw.seconds();
            if (r == SatResult::Sat) {
                job.result.status = job.coverMode ? Status::Covered : Status::Failed;
                job.result.depth = k;
                job.result.trace = extractCexTrace(ctx, un, solver, k);
                break;
            }
            if (r == SatResult::Unsat) {
                solver.addUnit(satNeg(bad)); // Strengthen deeper frames.
            } else {
                // Budget exhausted: leave Unknown, stop refining.
                job.result.depth = k;
                break;
            }
        }
        if (ctx.stats) {
            ctx.stats->conflicts.fetch_add(solver.conflicts(), std::memory_order_relaxed);
            ctx.stats->propagations.fetch_add(solver.propagations(), std::memory_order_relaxed);
        }
    }
};

} // namespace

std::unique_ptr<ProofStrategy> makeBmcStrategy() { return std::make_unique<BmcStrategy>(); }

} // namespace autosva::formal
