// Pluggable proof strategies for the obligation scheduler, plus the
// per-worker incremental solver infrastructure (SolverPool, batched BMC).
//
// A ProofStrategy is one algorithm for discharging a single proof
// obligation (BMC counterexample search, k-induction, PDR). The scheduler
// runs a pipeline of strategies over every obligation; each strategy only
// acts on jobs whose status is still Unknown. Strategies are stateless (or
// internally synchronized): one instance is shared by every worker thread,
// and each invocation either builds its own SatSolver / Unroller or reuses
// its worker's SolverPool context (ProofContext::pool, worker-private so
// no locking), reading only the immutable structures referenced by the
// ProofContext. That makes each strategy independently testable and the
// pipeline safe to parallelize.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "formal/pdr.hpp"
#include "formal/result.hpp"
#include "formal/sat.hpp"
#include "formal/unroll.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

/// Engine counters with thread-safe accumulation across workers.
struct SharedStats {
    std::atomic<uint64_t> satCalls{0};
    std::atomic<uint64_t> conflicts{0};
    std::atomic<uint64_t> propagations{0};
    std::atomic<uint64_t> encoderVars{0};
    std::atomic<uint64_t> encoderClauses{0};
    std::atomic<uint64_t> conesMaterialized{0};
    std::atomic<uint64_t> solverReuses{0};
    std::atomic<uint64_t> pdrFramesOpened{0};
    std::atomic<uint64_t> pdrCubesBlocked{0};
    std::atomic<uint64_t> pdrGenDropAttempts{0};
    std::atomic<uint64_t> pdrRetryFallbacks{0};
    std::atomic<uint64_t> pdrSeedCubesAdmitted{0};
    std::atomic<uint64_t> portfolioLegsLaunched{0};
    std::atomic<uint64_t> portfolioLegsCancelled{0};
    std::atomic<uint64_t> satPreVarsEliminated{0};
    std::atomic<uint64_t> satPreClausesSubsumed{0};
    std::atomic<uint64_t> satPreClausesStrengthened{0};
    std::atomic<uint64_t> satPreClausesVivified{0};
    std::atomic<uint64_t> satPreInprocessPasses{0};
    std::atomic<uint64_t> hygieneClausesDropped{0};
    std::atomic<uint64_t> solverLiveClauses{0};
    std::atomic<uint64_t> solverLearntClauses{0};

    /// Folds one pdrCheck's observability counters into the run totals.
    void addPdr(const PdrStats& pdr) {
        pdrFramesOpened.fetch_add(pdr.framesOpened, std::memory_order_relaxed);
        pdrCubesBlocked.fetch_add(pdr.cubesBlocked, std::memory_order_relaxed);
        pdrGenDropAttempts.fetch_add(pdr.genDropAttempts, std::memory_order_relaxed);
        pdrRetryFallbacks.fetch_add(pdr.retryActivations, std::memory_order_relaxed);
        pdrSeedCubesAdmitted.fetch_add(pdr.seedCubesAdmitted, std::memory_order_relaxed);
        satPreClausesSubsumed.fetch_add(pdr.preClausesSubsumed, std::memory_order_relaxed);
        satPreClausesStrengthened.fetch_add(pdr.preClausesStrengthened,
                                            std::memory_order_relaxed);
        satPreClausesVivified.fetch_add(pdr.preClausesVivified, std::memory_order_relaxed);
        satPreInprocessPasses.fetch_add(pdr.preInprocessPasses, std::memory_order_relaxed);
    }

    /// Folds one strategy-layer solver's encoder cost, simplification
    /// counters, and live clause footprint into the run totals.
    void addEncoder(const SatSolver& solver, const Unroller& un) {
        encoderVars.fetch_add(static_cast<uint64_t>(solver.numVars()),
                              std::memory_order_relaxed);
        encoderClauses.fetch_add(solver.clausesAdded(), std::memory_order_relaxed);
        conesMaterialized.fetch_add(un.conesMaterialized(), std::memory_order_relaxed);
        satPreVarsEliminated.fetch_add(solver.varsEliminated(), std::memory_order_relaxed);
        satPreClausesSubsumed.fetch_add(solver.clausesSubsumed(), std::memory_order_relaxed);
        satPreClausesStrengthened.fetch_add(solver.clausesStrengthened(),
                                            std::memory_order_relaxed);
        satPreClausesVivified.fetch_add(solver.clausesVivified(), std::memory_order_relaxed);
        satPreInprocessPasses.fetch_add(solver.inprocessPasses(), std::memory_order_relaxed);
        hygieneClausesDropped.fetch_add(solver.hygieneDrops(), std::memory_order_relaxed);
        solverLiveClauses.fetch_add(solver.liveClauses(), std::memory_order_relaxed);
        solverLearntClauses.fetch_add(solver.liveLearnts(), std::memory_order_relaxed);
    }

    [[nodiscard]] EngineStats snapshot(double totalSeconds) const {
        EngineStats s;
        s.satCalls = satCalls.load(std::memory_order_relaxed);
        s.conflicts = conflicts.load(std::memory_order_relaxed);
        s.propagations = propagations.load(std::memory_order_relaxed);
        s.encoderVars = encoderVars.load(std::memory_order_relaxed);
        s.encoderClauses = encoderClauses.load(std::memory_order_relaxed);
        s.conesMaterialized = conesMaterialized.load(std::memory_order_relaxed);
        s.solverReuses = solverReuses.load(std::memory_order_relaxed);
        s.pdrFramesOpened = pdrFramesOpened.load(std::memory_order_relaxed);
        s.pdrCubesBlocked = pdrCubesBlocked.load(std::memory_order_relaxed);
        s.pdrGenDropAttempts = pdrGenDropAttempts.load(std::memory_order_relaxed);
        s.pdrRetryFallbacks = pdrRetryFallbacks.load(std::memory_order_relaxed);
        s.pdrSeedCubesAdmitted = pdrSeedCubesAdmitted.load(std::memory_order_relaxed);
        s.portfolioLegsLaunched = portfolioLegsLaunched.load(std::memory_order_relaxed);
        s.portfolioLegsCancelled = portfolioLegsCancelled.load(std::memory_order_relaxed);
        s.satPreVarsEliminated = satPreVarsEliminated.load(std::memory_order_relaxed);
        s.satPreClausesSubsumed = satPreClausesSubsumed.load(std::memory_order_relaxed);
        s.satPreClausesStrengthened =
            satPreClausesStrengthened.load(std::memory_order_relaxed);
        s.satPreClausesVivified = satPreClausesVivified.load(std::memory_order_relaxed);
        s.satPreInprocessPasses = satPreInprocessPasses.load(std::memory_order_relaxed);
        s.hygieneClausesDropped = hygieneClausesDropped.load(std::memory_order_relaxed);
        s.solverLiveClauses = solverLiveClauses.load(std::memory_order_relaxed);
        s.solverLearntClauses = solverLearntClauses.load(std::memory_order_relaxed);
        s.totalSeconds = totalSeconds;
        return s;
    }
};

/// Adds each frame's environment constraints to a throwaway solver exactly
/// once, tracking the last-constrained frame — shared by the legacy BMC
/// loop, the PDR deep-counterexample re-run, and the trace replay, so none
/// of them re-walks already-constrained frames.
inline void constrainFramesTo(Unroller& un, SatSolver& solver,
                              const std::vector<AigLit>& constraints, int frame,
                              int& lastConstrained) {
    for (int f = lastConstrained + 1; f <= frame; ++f)
        for (AigLit c : constraints) solver.addUnit(un.lit(f, c));
    if (frame > lastConstrained) lastConstrained = frame;
}

/// Encodes the depth-k induction formula: constraints in frames 0..k and
/// the simple-path lattice (states of frames 0..k pairwise distinct, which
/// makes induction complete). The ONE encoding shared by the legacy
/// throwaway path and the pooled fixed-k contexts — the byte-identical A/B
/// contract depends on both paths building exactly this clause sequence.
inline void encodeInductionFormula(Unroller& un, SatSolver& solver,
                                   const std::vector<AigLit>& constraints, int k) {
    for (int f = 0; f <= k; ++f)
        for (AigLit c : constraints) solver.addUnit(un.lit(f, c));
    const auto& latches = un.aig().latches();
    for (int i = 0; i <= k; ++i) {
        for (int j = i + 1; j <= k; ++j) {
            std::vector<SatLit> diff;
            diff.reserve(latches.size());
            for (uint32_t lv : latches) {
                SatLit a = un.lit(i, aigMkLit(lv));
                SatLit b = un.lit(j, aigMkLit(lv));
                SatLit d = mkSatLit(solver.newVar());
                // d <-> a xor b
                solver.addTernary(satNeg(d), a, b);
                solver.addTernary(satNeg(d), satNeg(a), satNeg(b));
                solver.addTernary(d, satNeg(a), b);
                solver.addTernary(d, a, satNeg(b));
                diff.push_back(d);
            }
            solver.addClause(std::move(diff));
        }
    }
}

/// One worker's long-lived incremental solver contexts — one half of the
/// solver-reuse architecture (the other half is the frame-lockstep batched
/// BMC, runBmcBatch). The pool keys contexts by (AIG, init mode, tag);
/// the k-induction strategy uses one fixed-k context per tag so every
/// obligation this worker proves at induction depth k shares a single
/// encoding of the transition relation, the simple-path lattice, and the
/// learnt clauses about them — the per-obligation part is assumptions
/// only, so nothing ever needs retracting between jobs.
///
/// The pool is strictly worker-private (no locks) and scoped to one
/// scheduler phase: phase boundaries may change the constraint set or
/// mutate the live AIG, both of which invalidate the cached encoding.
class SolverPool {
public:
    struct Context {
        SatSolver solver;
        Unroller un;
        bool prepared = false; ///< Fixed-shape (per-k induction) setup done.
        uint64_t jobsServed = 0;

        Context(const Aig& aig, Unroller::Init init) : un(aig, solver, init) {}

        /// One-time setup of a per-k induction context: the exact formula
        /// the legacy path builds per obligation per k
        /// (encodeInductionFormula), but built once and shared by every
        /// obligation this worker proves at this k. Queries then carry
        /// only per-obligation assumptions, so each solve works on a
        /// legacy-sized formula with warm learnt clauses.
        void prepareInduction(int k, const std::vector<AigLit>& cons) {
            if (prepared) return;
            prepared = true;
            encodeInductionFormula(un, solver, cons, k);
        }
    };

    /// The worker's context for (aig, init, tag), created on first use.
    /// `tag` separates fixed-shape contexts sharing an (AIG, init) pair —
    /// the per-k induction solvers use tag = k; BMC uses the default.
    Context& acquire(const Aig& aig, Unroller::Init init, int tag = -1) {
        for (auto& e : entries_)
            if (e.aig == &aig && e.init == init && e.tag == tag) return *e.ctx;
        entries_.push_back({&aig, init, tag, std::make_unique<Context>(aig, init)});
        return *entries_.back().ctx;
    }

    /// Folds every context's encoder cost and reuse count into the shared
    /// counters — called once by the scheduler when the phase ends (a
    /// pooled solver's totals must not be re-counted per job).
    void accumulate(SharedStats& stats) const {
        for (const auto& e : entries_) {
            stats.addEncoder(e.ctx->solver, e.ctx->un);
            stats.conflicts.fetch_add(e.ctx->solver.conflicts(), std::memory_order_relaxed);
            stats.propagations.fetch_add(e.ctx->solver.propagations(),
                                         std::memory_order_relaxed);
            if (e.ctx->jobsServed > 1)
                stats.solverReuses.fetch_add(e.ctx->jobsServed - 1,
                                             std::memory_order_relaxed);
        }
    }

private:
    struct Entry {
        const Aig* aig;
        Unroller::Init init;
        int tag;
        std::unique_ptr<Context> ctx;
    };
    std::vector<Entry> entries_;
};

/// One proof obligation flowing through the scheduler, with its job-local
/// result slot. Exactly one worker owns a job at any time, so strategies
/// mutate `result` without synchronization.
struct ObligationJob {
    const ir::Obligation* ob = nullptr;
    size_t index = 0;       ///< Obligation declaration index — the determinism key.
    AigLit bad = kAigFalse; ///< In the AIG named by `onLiveAig`.
    /// Bad literal PDR proves; usually == bad, but liveness lemma chaining
    /// strengthens it with already-proven justice trackers. Counterexample
    /// search always targets the original `bad`.
    AigLit pdrBad = kAigFalse;
    bool onLiveAig = false;
    bool coverMode = false; ///< Sat = Covered / proven-unreachable semantics.
    /// Candidate invariant cubes for PDR (from the proof cache after a
    /// near-miss). Candidates only — PDR re-validates before use.
    std::vector<PdrCube> pdrSeeds;
    /// PDR's inductive invariant when it proved this job (cache fodder).
    std::vector<PdrCube> invariant;
    /// Retained warm PDR context of the canonical leg when the global
    /// budget pool is active: a budget-edge Unknown is resumed on it —
    /// learned frames and frame solvers intact — each time the pool grants
    /// a refill at a phase barrier. Null otherwise. (Makes the job
    /// move-only; the scheduler's job vectors are reserved up front and
    /// never copy.)
    std::unique_ptr<PdrContext> pdrCtx;
    /// Wall-clock deadline token of the watchdog guard currently covering
    /// this job (null = no deadline). The scheduler sets it for exactly the
    /// span of the owning guard; strategies bind it into every solver they
    /// build for the job so a fired deadline interrupts in-flight solves.
    const std::atomic<bool>* watchdogStop = nullptr;
    PropertyResult result;
};

/// Everything a strategy may read while discharging a job. All referenced
/// structures are immutable for the duration of a parallel phase.
struct ProofContext {
    const ir::Design& design;
    const BitBlast& bb;
    const Aig& aig;                         ///< Base or l2s AIG for this job.
    const std::vector<AigLit>& constraints; ///< Hold in every frame.
    const EngineOptions& opts;
    AigLit saveOracle = kAigFalse;          ///< l2s save input (live AIG only).
    SharedStats* stats = nullptr;
    /// This worker's solver pool; null selects the legacy throwaway-solver
    /// path (the scheduler sets it per worker when opts.solverReuse holds).
    SolverPool* pool = nullptr;
    /// Run-level deadline token (watchdog runToken): fires on --time-budget
    /// expiry or an external stop, never on per-job timeouts. Solvers that
    /// serve many jobs at once (the batched-BMC sweep solver) bind this
    /// instead of a per-job token. Null = no run deadline.
    const std::atomic<bool>* runStop = nullptr;
};

// -- Freeze contract for ProofStrategy authors --------------------------------
// When EngineOptions::satPre is on, strategies enable the solver's
// simplification layer (SatSolver::setPreprocessing) and must freeze() every
// variable the strategy touches from *outside* the clause database before
// calling preprocess():
//   - assumption literals (the bad literal per frame, induction's ¬bad@i /
//     bad@k selectors, anything passed to solve());
//   - model-extraction variables — whatever extractCexTrace will read via
//     modelBit (eliminated vars still answer through the reconstruction
//     stack, but witness values may differ from the raw-CNF run, which is
//     fine: only trace *values* are outside the canonical contract);
//   - the unroller's frame frontier (Unroller::freezeFrontier) so the next
//     frame's transition encoding doesn't immediately reactivate the vars
//     the last pass eliminated.
// Clause-group activation literals freeze themselves (openClauseGroup).
// Forgetting a freeze is a performance bug, never a soundness bug: solve()
// and addClause() transparently reactivate eliminated variables they
// encounter, restoring the stored definition clauses. Strategies whose
// canonical report replays model-dependent values (the liveness lasso
// re-run in runBmcFresh) must keep preprocessing OFF for that replay —
// loopStart is part of canonical identity and witness values may move.
// The same applies when the *search itself* consumes models: PDR builds
// predecessor/state cubes from consecution models, so its frame solvers
// keep the layer off (strategy_pdr.cpp) — perturbed models reroute the
// obligation trajectory and flip budget-edge verdicts at pdrMaxQueries.
class ProofStrategy {
public:
    virtual ~ProofStrategy() = default;
    [[nodiscard]] virtual const char* name() const = 0;
    /// Attempts to resolve `job` (expected status: Unknown). May leave the
    /// status Unknown; must set depth/trace when it concludes.
    virtual void run(const ProofContext& ctx, ObligationJob& job) const = 0;
};

/// Bounded model checking from the initial state: finds shortest
/// counterexamples / cover witnesses up to opts.bmcDepth.
[[nodiscard]] std::unique_ptr<ProofStrategy> makeBmcStrategy();

/// k-induction with simple-path constraints: proves shallow invariants up
/// to opts.maxInductionK.
[[nodiscard]] std::unique_ptr<ProofStrategy> makeInductionStrategy();

/// Frame-lockstep batched BMC over one worker's job batch: a single
/// incremental solver queries every still-open job at frame k before any
/// job advances to k+1, so environment constraints and per-job Unsat
/// strengthening stay level-0 units shared by the whole batch (see
/// strategy_bmc.cpp for the soundness argument). Concluding jobs get their
/// status/depth/trace set exactly as the per-job BMC strategy would.
void runBmcBatch(const ProofContext& ctx, const std::vector<ObligationJob*>& jobs);

/// IC3/PDR unbounded reachability, with a targeted BMC re-run to extract
/// deep counterexample traces.
[[nodiscard]] std::unique_ptr<ProofStrategy> makePdrStrategy();

/// One PDR attempt of the leg ladder (see EngineOptions::portfolioLegs):
/// the raw engine verdict plus — when the caller asked for it — the warm
/// context the attempt ran on, for budget-pool refills.
struct PdrAttempt {
    PdrResult result;
    std::unique_ptr<PdrContext> ctx;
};

/// Runs one leg of a job's PDR leg ladder: a fresh PdrContext at the given
/// generalization rotation with `maxQueries` budget, plus up to `retries`
/// warm-context budget-edge retries (the canonical leg runs pdrCheck's
/// exact retry policy; hunter legs pass retries = 0). `stop` is the race
/// cancellation token (null = not cancellable); an interrupted result has
/// PdrResult::interrupted set and is never a verdict. PDR observability
/// stats and query counts are folded into ctx.stats; job.result is NOT
/// touched — callers adopt a leg's outcome via applyPdrOutcome.
/// `watchdogStop` is the wall-clock deadline token covering the leg (null =
/// no deadline) — independent of `stop`, because a race leg is stoppable by
/// either a losing race or a deadline.
[[nodiscard]] PdrAttempt runPdrLeg(const ProofContext& ctx, const ObligationJob& job,
                                   uint64_t maxQueries, uint64_t genRotation, int retries,
                                   const std::atomic<bool>* stop,
                                   const std::atomic<bool>* watchdogStop, bool retainContext);

/// Maps an adopted PDR verdict onto the job: Proven/Unreachable status and
/// invariant capture, or the targeted-BMC counterexample re-run (fresh
/// solver, original `job.bad`, shortest trace — leg-invariant by
/// construction), or the Unknown depth. Exactly the mapping the in-place
/// PDR strategy applies.
void applyPdrOutcome(const ProofContext& ctx, ObligationJob& job, PdrResult&& pr);

/// Word-level counterexample extraction from a satisfied unrolling:
/// initial registers, per-frame inputs, and (for lassos) the save point.
[[nodiscard]] CexTrace extractCexTrace(const ProofContext& ctx, Unroller& un,
                                       SatSolver& solver, int frames);

/// Liveness-to-safety transformation (Biere/Artho/Schuppan): extends a copy
/// of the base AIG with a save oracle, shadow state, loop-closure detection,
/// fairness trackers and per-justice-obligation "seen" trackers. Justice
/// obligations become safety bad nets checkable by the strategies above.
/// The transformed AIG shares variable numbering with the base AIG, so base
/// literals (e.g. proven safety invariants) remain valid on it.
class LivenessTransform {
public:
    LivenessTransform(const ir::Design& design, const BitBlast& bb,
                      const std::vector<AigLit>& fairness);

    [[nodiscard]] const Aig& aig() const { return aig_; }
    /// Mutable access for sequential lemma chaining only — never call while
    /// workers read the AIG.
    [[nodiscard]] Aig& mutableAig() { return aig_; }
    [[nodiscard]] AigLit saveOracle() const { return saveOracle_; }
    /// Bad net of a justice obligation: loop closed, fairness seen, justice
    /// never seen inside the loop.
    [[nodiscard]] AigLit bad(const ir::Obligation* ob) const { return bads_.at(ob); }
    /// In-loop "justice seen" tracker (lemma source once proven).
    [[nodiscard]] AigLit seen(const ir::Obligation* ob) const { return seens_.at(ob); }

private:
    Aig aig_;
    AigLit saveOracle_ = kAigFalse;
    std::unordered_map<const ir::Obligation*, AigLit> bads_;
    std::unordered_map<const ir::Obligation*, AigLit> seens_;
};

} // namespace autosva::formal
