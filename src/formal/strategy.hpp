// Pluggable proof strategies for the obligation scheduler.
//
// A ProofStrategy is one algorithm for discharging a single proof
// obligation (BMC counterexample search, k-induction, PDR). The scheduler
// runs a pipeline of strategies over every obligation; each strategy only
// acts on jobs whose status is still Unknown. Strategies are stateless (or
// internally synchronized): one instance is shared by every worker thread,
// and each invocation builds its own SatSolver / Unroller, reading only the
// immutable structures referenced by the ProofContext. That makes each
// strategy independently testable and the pipeline safe to parallelize.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "formal/pdr.hpp"
#include "formal/result.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

class SatSolver;
class Unroller;

/// Engine counters with thread-safe accumulation across workers.
struct SharedStats {
    std::atomic<uint64_t> satCalls{0};
    std::atomic<uint64_t> conflicts{0};
    std::atomic<uint64_t> propagations{0};

    [[nodiscard]] EngineStats snapshot(double totalSeconds) const {
        EngineStats s;
        s.satCalls = satCalls.load(std::memory_order_relaxed);
        s.conflicts = conflicts.load(std::memory_order_relaxed);
        s.propagations = propagations.load(std::memory_order_relaxed);
        s.totalSeconds = totalSeconds;
        return s;
    }
};

/// One proof obligation flowing through the scheduler, with its job-local
/// result slot. Exactly one worker owns a job at any time, so strategies
/// mutate `result` without synchronization.
struct ObligationJob {
    const ir::Obligation* ob = nullptr;
    size_t index = 0;       ///< Obligation declaration index — the determinism key.
    AigLit bad = kAigFalse; ///< In the AIG named by `onLiveAig`.
    /// Bad literal PDR proves; usually == bad, but liveness lemma chaining
    /// strengthens it with already-proven justice trackers. Counterexample
    /// search always targets the original `bad`.
    AigLit pdrBad = kAigFalse;
    bool onLiveAig = false;
    bool coverMode = false; ///< Sat = Covered / proven-unreachable semantics.
    /// Candidate invariant cubes for PDR (from the proof cache after a
    /// near-miss). Candidates only — PDR re-validates before use.
    std::vector<PdrCube> pdrSeeds;
    /// PDR's inductive invariant when it proved this job (cache fodder).
    std::vector<PdrCube> invariant;
    PropertyResult result;
};

/// Everything a strategy may read while discharging a job. All referenced
/// structures are immutable for the duration of a parallel phase.
struct ProofContext {
    const ir::Design& design;
    const BitBlast& bb;
    const Aig& aig;                         ///< Base or l2s AIG for this job.
    const std::vector<AigLit>& constraints; ///< Hold in every frame.
    const EngineOptions& opts;
    AigLit saveOracle = kAigFalse;          ///< l2s save input (live AIG only).
    SharedStats* stats = nullptr;
};

class ProofStrategy {
public:
    virtual ~ProofStrategy() = default;
    [[nodiscard]] virtual const char* name() const = 0;
    /// Attempts to resolve `job` (expected status: Unknown). May leave the
    /// status Unknown; must set depth/trace when it concludes.
    virtual void run(const ProofContext& ctx, ObligationJob& job) const = 0;
};

/// Bounded model checking from the initial state: finds shortest
/// counterexamples / cover witnesses up to opts.bmcDepth.
[[nodiscard]] std::unique_ptr<ProofStrategy> makeBmcStrategy();

/// k-induction with simple-path constraints: proves shallow invariants up
/// to opts.maxInductionK.
[[nodiscard]] std::unique_ptr<ProofStrategy> makeInductionStrategy();

/// IC3/PDR unbounded reachability, with a targeted BMC re-run to extract
/// deep counterexample traces.
[[nodiscard]] std::unique_ptr<ProofStrategy> makePdrStrategy();

/// Word-level counterexample extraction from a satisfied unrolling:
/// initial registers, per-frame inputs, and (for lassos) the save point.
[[nodiscard]] CexTrace extractCexTrace(const ProofContext& ctx, Unroller& un,
                                       SatSolver& solver, int frames);

/// Liveness-to-safety transformation (Biere/Artho/Schuppan): extends a copy
/// of the base AIG with a save oracle, shadow state, loop-closure detection,
/// fairness trackers and per-justice-obligation "seen" trackers. Justice
/// obligations become safety bad nets checkable by the strategies above.
/// The transformed AIG shares variable numbering with the base AIG, so base
/// literals (e.g. proven safety invariants) remain valid on it.
class LivenessTransform {
public:
    LivenessTransform(const ir::Design& design, const BitBlast& bb,
                      const std::vector<AigLit>& fairness);

    [[nodiscard]] const Aig& aig() const { return aig_; }
    /// Mutable access for sequential lemma chaining only — never call while
    /// workers read the AIG.
    [[nodiscard]] Aig& mutableAig() { return aig_; }
    [[nodiscard]] AigLit saveOracle() const { return saveOracle_; }
    /// Bad net of a justice obligation: loop closed, fairness seen, justice
    /// never seen inside the loop.
    [[nodiscard]] AigLit bad(const ir::Obligation* ob) const { return bads_.at(ob); }
    /// In-loop "justice seen" tracker (lemma source once proven).
    [[nodiscard]] AigLit seen(const ir::Obligation* ob) const { return seens_.at(ob); }

private:
    Aig aig_;
    AigLit saveOracle_ = kAigFalse;
    std::unordered_map<const ir::Obligation*, AigLit> bads_;
    std::unordered_map<const ir::Obligation*, AigLit> seens_;
};

} // namespace autosva::formal
