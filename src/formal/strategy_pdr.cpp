// PDR/IC3 strategy: unbounded reachability for everything BMC and
// k-induction leave open. Proves `job.pdrBad` (which liveness lemma
// chaining may have strengthened relative to `job.bad`); when PDR reports
// a reachable bad state instead, re-runs a targeted BMC at the reported
// depth bound to extract a word-level trace of the original `bad`.
//
// The engine invocation is split into two reusable halves so the portfolio
// scheduler can race and resume attempts without duplicating this logic:
// runPdrLeg (one ladder leg: fresh context, rotation, retry policy, raw
// verdict) and applyPdrOutcome (verdict-to-job mapping including the
// counterexample trace re-run). The classic strategy below is exactly
// leg 0 of the ladder applied in place.
#include "formal/pdr.hpp"
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {

PdrAttempt runPdrLeg(const ProofContext& ctx, const ObligationJob& job,
                     uint64_t maxQueries, uint64_t genRotation, int retries,
                     const std::atomic<bool>* stop, const std::atomic<bool>* watchdogStop,
                     bool retainContext) {
    PdrOptions pdrOpts;
    pdrOpts.maxFrames = ctx.opts.pdrMaxFrames;
    pdrOpts.maxQueries = maxQueries;
    pdrOpts.retryReorders = retries;
    pdrOpts.perturbSeed = ctx.opts.perturbSeed;
    pdrOpts.genRotation = genRotation;
    pdrOpts.stop = stop;
    pdrOpts.watchdog = watchdogStop;
    // Deliberately NOT ctx.opts.satPre: frame-solver inprocessing changes
    // which model a Sat consecution query returns, and PDR builds its
    // predecessor/state cubes from those models — a different cube order
    // moves the whole obligation trajectory and flips budget-edge verdicts
    // (Unknown vs Proven at maxQueries), breaking the canonical-identity
    // contract. BMC/induction keep the layer: they consume only Sat/Unsat
    // plus canonicalized witness values.
    pdrOpts.satPre = false;
    if (!job.pdrSeeds.empty()) pdrOpts.seedCubes = &job.pdrSeeds;
    AigLit effectiveBad = job.pdrBad != kAigFalse ? job.pdrBad : job.bad;

    obs::Recorder* rec = ctx.opts.trace;
    obs::Span span(rec, "strategy", "pdr", static_cast<int64_t>(job.index));
    span.arg("rotation", genRotation);

    PdrAttempt attempt;
    auto pdrCtx = std::make_unique<PdrContext>(ctx.aig, effectiveBad, ctx.constraints, pdrOpts);
    PdrResult result = pdrCtx->search();
    // pdrCheck's budget-edge retry policy, replicated here so the warm
    // context can outlive the call (pdrCheck owns its context internally).
    uint64_t taken = 0;
    for (int retry = 0; retry < retries && result.kind == PdrResult::Kind::Unknown &&
                        !result.interrupted && pdrCtx->budgetExhausted();
         ++retry) {
        pdrCtx->grantBudget();
        pdrCtx->rotateGeneralization();
        ++taken;
        result = pdrCtx->search();
    }
    result.stats = pdrCtx->stats();
    result.stats.retryActivations = taken;
    result.queries = pdrCtx->queries();
    if (ctx.stats) {
        ctx.stats->satCalls.fetch_add(result.queries, std::memory_order_relaxed);
        ctx.stats->addPdr(result.stats);
    }
    // The per-obligation attribution of the aggregate PDR counters: every
    // number SharedStats::addPdr folds into EngineStats rides on this
    // span's End event, so `autosva profile` can say which property the
    // frames/cubes/retries belonged to.
    span.arg("queries", result.queries);
    span.arg("frames", result.stats.framesOpened);
    span.arg("cubes", result.stats.cubesBlocked);
    span.arg("drops", result.stats.genDropAttempts);
    span.arg("retries", result.stats.retryActivations);
    span.arg("seeds", result.stats.seedCubesAdmitted);
    if (rec && result.interrupted)
        rec->instant("race", "leg-interrupted", static_cast<int64_t>(job.index),
                     {{"rotation", genRotation}});
    attempt.result = std::move(result);
    if (retainContext) attempt.ctx = std::move(pdrCtx);
    return attempt;
}

void applyPdrOutcome(const ProofContext& ctx, ObligationJob& job, PdrResult&& pr) {
    switch (pr.kind) {
    case PdrResult::Kind::Proven:
        job.result.status = job.coverMode ? Status::Unreachable : Status::Proven;
        job.result.depth = pr.depth;
        job.invariant = std::move(pr.invariant);
        break;
    case PdrResult::Kind::Cex: {
        // Deep counterexample (beyond the BMC bound): re-run a targeted
        // BMC at the depth bound PDR reported to extract the trace. A
        // fresh solver on purpose — the trace must not depend on any
        // pooled solver's job history; and because it searches upward
        // from k = 0, the trace (and its canonical depth) is the shortest
        // one, identical whichever ladder leg reported the Cex.
        // (The replay's solves do not count into SharedStats::satCalls, so
        // the span carries no "queries" attribution — reconciliation with
        // EngineStats depends on that.)
        obs::Span span(ctx.opts.trace, "strategy", "cex-replay",
                       static_cast<int64_t>(job.index));
        SatSolver solver;
        if (job.watchdogStop) solver.bindWatchdog(job.watchdogStop);
        Unroller un(ctx.aig, solver, Unroller::Init::Reset);
        int lastConstrained = -1;
        bool found = false;
        for (int k = 0; k <= pr.depth + 2 && !found; ++k) {
            constrainFramesTo(un, solver, ctx.constraints, k, lastConstrained);
            SatLit bad = un.lit(k, job.bad);
            SatResult sr = solver.solve({bad});
            // A deadline mid-replay leaves the job Unknown — the "bad
            // unreachable at k" strengthening below is only established by
            // a real Unsat, so an Interrupted answer must not assert it.
            if (sr == SatResult::Interrupted) break;
            if (sr == SatResult::Sat) {
                job.result.status = job.coverMode ? Status::Covered : Status::Failed;
                job.result.depth = k;
                job.result.trace = extractCexTrace(ctx, un, solver, k);
                found = true;
            } else {
                solver.addUnit(satNeg(bad));
            }
        }
        if (!found) job.result.depth = pr.depth; // Stays Unknown.
        if (ctx.stats) ctx.stats->addEncoder(solver, un);
        break;
    }
    case PdrResult::Kind::Unknown:
        job.result.depth = pr.depth;
        break;
    }
}

namespace {

class PdrStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "pdr"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        if (!ctx.opts.usePdr) return;
        util::Stopwatch sw;
        PdrAttempt attempt = runPdrLeg(ctx, job, ctx.opts.pdrMaxQueries, 0,
                                       ctx.opts.pdrRetryReorders, nullptr, job.watchdogStop,
                                       false);
        job.result.seconds += sw.seconds();
        applyPdrOutcome(ctx, job, std::move(attempt.result));
    }
};

} // namespace

std::unique_ptr<ProofStrategy> makePdrStrategy() { return std::make_unique<PdrStrategy>(); }

} // namespace autosva::formal
