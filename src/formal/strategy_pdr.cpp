// PDR/IC3 strategy: unbounded reachability for everything BMC and
// k-induction leave open. Proves `job.pdrBad` (which liveness lemma
// chaining may have strengthened relative to `job.bad`); when PDR reports
// a reachable bad state instead, re-runs a targeted BMC at the reported
// depth bound to extract a word-level trace of the original `bad`.
#include "formal/pdr.hpp"
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {
namespace {

class PdrStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "pdr"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        if (!ctx.opts.usePdr) return;
        util::Stopwatch sw;
        PdrOptions pdrOpts;
        pdrOpts.maxFrames = ctx.opts.pdrMaxFrames;
        pdrOpts.maxQueries = ctx.opts.pdrMaxQueries;
        pdrOpts.retryReorders = ctx.opts.pdrRetryReorders;
        pdrOpts.perturbSeed = ctx.opts.perturbSeed;
        if (!job.pdrSeeds.empty()) pdrOpts.seedCubes = &job.pdrSeeds;
        AigLit effectiveBad = job.pdrBad != kAigFalse ? job.pdrBad : job.bad;
        PdrResult pr = pdrCheck(ctx.aig, effectiveBad, ctx.constraints, pdrOpts);
        job.result.seconds += sw.seconds();
        if (ctx.stats) {
            ctx.stats->satCalls.fetch_add(pr.queries, std::memory_order_relaxed);
            ctx.stats->addPdr(pr.stats);
        }
        switch (pr.kind) {
        case PdrResult::Kind::Proven:
            job.result.status = job.coverMode ? Status::Unreachable : Status::Proven;
            job.result.depth = pr.depth;
            job.invariant = std::move(pr.invariant);
            break;
        case PdrResult::Kind::Cex: {
            // Deep counterexample (beyond the BMC bound): re-run a targeted
            // BMC at the depth bound PDR reported to extract the trace. A
            // fresh solver on purpose — the trace must not depend on any
            // pooled solver's job history.
            SatSolver solver;
            Unroller un(ctx.aig, solver, Unroller::Init::Reset);
            int lastConstrained = -1;
            bool found = false;
            for (int k = 0; k <= pr.depth + 2 && !found; ++k) {
                constrainFramesTo(un, solver, ctx.constraints, k, lastConstrained);
                SatLit bad = un.lit(k, job.bad);
                if (solver.solve({bad}) == SatResult::Sat) {
                    job.result.status = job.coverMode ? Status::Covered : Status::Failed;
                    job.result.depth = k;
                    job.result.trace = extractCexTrace(ctx, un, solver, k);
                    found = true;
                } else {
                    solver.addUnit(satNeg(bad));
                }
            }
            if (!found) job.result.depth = pr.depth; // Stays Unknown.
            if (ctx.stats) ctx.stats->addEncoder(solver, un);
            break;
        }
        case PdrResult::Kind::Unknown:
            job.result.depth = pr.depth;
            break;
        }
    }
};

} // namespace

std::unique_ptr<ProofStrategy> makePdrStrategy() { return std::make_unique<PdrStrategy>(); }

} // namespace autosva::formal
