#include "formal/replay.hpp"

#include "util/table.hpp"

namespace autosva::formal {

std::vector<sim::TraceCycle> replayTrace(const ir::Design& design, const CexTrace& trace) {
    sim::Simulator simulator(design, sim::Simulator::XMode::TwoState);
    simulator.reset();
    simulator.enableTrace(true);

    // Apply initial register state.
    for (ir::NodeId reg : design.regs()) {
        auto it = trace.initialRegs.find(design.node(reg).name);
        if (it != trace.initialRegs.end()) simulator.setRegState(reg, it->second);
    }
    // Drive inputs frame by frame.
    for (const auto& frame : trace.inputs) {
        for (ir::NodeId input : design.inputs()) {
            auto it = frame.find(design.node(input).name);
            simulator.setInput(input, it != frame.end() ? it->second : 0);
        }
        simulator.step();
    }
    return simulator.trace();
}

std::string formatTrace(const ir::Design& design, const CexTrace& trace,
                        const std::vector<std::string>& signalNames) {
    auto cycles = replayTrace(design, trace);
    std::vector<std::string> header{"cycle"};
    for (const auto& name : signalNames) header.push_back(name);
    util::TextTable table(std::move(header));
    for (size_t t = 0; t < cycles.size(); ++t) {
        std::vector<std::string> row;
        std::string cyc = std::to_string(t);
        if (trace.loopStart >= 0 && static_cast<size_t>(trace.loopStart) == t) cyc += " (loop)";
        row.push_back(cyc);
        for (const auto& name : signalNames) {
            auto it = cycles[t].signals.find(name);
            if (it == cycles[t].signals.end()) {
                row.emplace_back("?");
            } else if (it->second.x) {
                row.emplace_back("x");
            } else {
                row.push_back(std::to_string(it->second.val));
            }
        }
        table.addRow(std::move(row));
    }
    return table.str();
}

} // namespace autosva::formal
