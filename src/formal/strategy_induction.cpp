// k-induction strategy with simple-path constraints: assume the property
// holds in frames 0..k-1 of a free-running (unconstrained-initial-state)
// unrolling whose states are pairwise distinct, and ask whether it can fail
// at frame k. Unsat at any k proves the property for all depths.
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {
namespace {

class InductionStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "k-induction"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        for (int k = 1; k <= ctx.opts.maxInductionK; ++k) {
            SatSolver solver;
            solver.setConflictBudget(ctx.opts.conflictBudget);
            Unroller un(ctx.aig, solver, Unroller::Init::Free);
            // Constraints hold in all frames 0..k.
            for (int f = 0; f <= k; ++f)
                for (AigLit c : ctx.constraints) solver.addUnit(un.lit(f, c));
            // Simple-path: all states pairwise distinct (makes induction complete).
            const auto& latches = ctx.aig.latches();
            for (int i = 0; i <= k; ++i) {
                for (int j = i + 1; j <= k; ++j) {
                    std::vector<SatLit> diff;
                    diff.reserve(latches.size());
                    for (uint32_t lv : latches) {
                        SatLit a = un.lit(i, aigMkLit(lv));
                        SatLit b = un.lit(j, aigMkLit(lv));
                        SatLit d = mkSatLit(solver.newVar());
                        // d <-> a xor b
                        solver.addTernary(satNeg(d), a, b);
                        solver.addTernary(satNeg(d), satNeg(a), satNeg(b));
                        solver.addTernary(d, satNeg(a), b);
                        solver.addTernary(d, a, satNeg(b));
                        diff.push_back(d);
                    }
                    solver.addClause(std::move(diff));
                }
            }
            util::Stopwatch sw;
            std::vector<SatLit> assumptions;
            for (int f = 0; f < k; ++f) assumptions.push_back(satNeg(un.lit(f, job.bad)));
            assumptions.push_back(un.lit(k, job.bad));
            SatResult r = solver.solve(assumptions);
            if (ctx.stats) {
                ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
                ctx.stats->conflicts.fetch_add(solver.conflicts(), std::memory_order_relaxed);
                ctx.stats->propagations.fetch_add(solver.propagations(),
                                                  std::memory_order_relaxed);
            }
            job.result.seconds += sw.seconds();
            if (r == SatResult::Unsat) {
                job.result.status = job.coverMode ? Status::Unreachable : Status::Proven;
                job.result.depth = k;
                return;
            }
        }
    }
};

} // namespace

std::unique_ptr<ProofStrategy> makeInductionStrategy() {
    return std::make_unique<InductionStrategy>();
}

} // namespace autosva::formal
