// k-induction strategy with simple-path constraints: assume the property
// holds in frames 0..k-1 of a free-running (unconstrained-initial-state)
// unrolling whose states are pairwise distinct, and ask whether it can fail
// at frame k. Unsat at any k proves the property for all depths.
//
// The legacy path builds a throwaway solver per k per obligation — the
// single most redundant encoding in the engine (the transition relation,
// the constraints, and the simple-path lattice are obligation-independent
// for a fixed k). The pooled path keeps one long-lived fixed-k context per
// worker (SolverPool::prepareInduction): the exact legacy formula, encoded
// once and shared by every obligation proved at that k, with warm learnt
// clauses. The per-obligation part is pure assumptions — no clause ever
// needs releasing between jobs, which is why induction needs no activation
// literals at all.
#include "formal/sat.hpp"
#include "formal/strategy.hpp"
#include "formal/unroll.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {
namespace {

void runInductionFresh(const ProofContext& ctx, ObligationJob& job) {
    obs::Span span(ctx.opts.trace, "strategy", "induction", static_cast<int64_t>(job.index));
    uint64_t queries = 0;
    for (int k = 1; k <= ctx.opts.maxInductionK; ++k) {
        SatSolver solver;
        solver.setConflictBudget(ctx.opts.conflictBudget);
        if (job.watchdogStop) solver.bindWatchdog(job.watchdogStop);
        // Induction answers are pure Sat/Unsat — no model is ever read — so
        // preprocessing is unconditionally safe here.
        solver.setPreprocessing(ctx.opts.satPre);
        solver.bindTrace(ctx.opts.trace, static_cast<int64_t>(job.index));
        Unroller un(ctx.aig, solver, Unroller::Init::Free);
        encodeInductionFormula(un, solver, ctx.constraints, k);
        util::Stopwatch sw;
        std::vector<SatLit> assumptions;
        for (int f = 0; f < k; ++f) assumptions.push_back(satNeg(un.lit(f, job.bad)));
        assumptions.push_back(un.lit(k, job.bad));
        if (solver.preprocessing()) {
            for (SatLit a : assumptions) solver.freeze(satVar(a));
            for (int f = 0; f <= k; ++f) un.freezeFrontier(f);
            solver.preprocess();
        }
        SatResult r = solver.solve(assumptions);
        ++queries;
        if (ctx.stats) {
            ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
            ctx.stats->conflicts.fetch_add(solver.conflicts(), std::memory_order_relaxed);
            ctx.stats->propagations.fetch_add(solver.propagations(),
                                              std::memory_order_relaxed);
            ctx.stats->addEncoder(solver, un);
        }
        job.result.seconds += sw.seconds();
        if (r == SatResult::Unsat) {
            job.result.status = job.coverMode ? Status::Unreachable : Status::Proven;
            job.result.depth = k;
            break;
        }
        // Deadline hit: deeper k would re-encode the whole lattice only to
        // interrupt again at solve entry. Leave the job Unknown.
        if (r == SatResult::Interrupted) break;
    }
    span.arg("queries", queries);
}

void runInductionPooled(const ProofContext& ctx, ObligationJob& job) {
    obs::Span span(ctx.opts.trace, "strategy", "induction", static_cast<int64_t>(job.index));
    uint64_t queries = 0;
    std::vector<SatLit> assumptions;
    // An interrupted solve leaves the job Unknown; deeper k would only
    // interrupt again, so unwind instead of burning the remaining ladder.
    bool interrupted = false;
    for (int k = 1; k <= ctx.opts.maxInductionK && !interrupted; ++k) {
        // One shared fixed-k context per worker: the legacy per-obligation
        // formula, encoded once. The per-obligation part is assumptions
        // only, so nothing needs releasing between jobs.
        SolverPool::Context& pc = ctx.pool->acquire(ctx.aig, Unroller::Init::Free, k);
        pc.solver.setPreprocessing(ctx.opts.satPre);
        pc.solver.bindTrace(ctx.opts.trace, static_cast<int64_t>(job.index));
        pc.prepareInduction(k, ctx.constraints);
        // Fresh heuristics per obligation — consecutive jobs probe
        // unrelated cones; the shared encoding and learnt clauses stay.
        if (pc.jobsServed > 0) pc.solver.resetSearchState();
        ++pc.jobsServed;
        util::Stopwatch sw;
        assumptions.clear();
        for (int f = 0; f < k; ++f) assumptions.push_back(satNeg(pc.un.lit(f, job.bad)));
        assumptions.push_back(pc.un.lit(k, job.bad));
        if (pc.solver.preprocessing()) {
            // Each job adds its own bad cone to the shared context; the
            // growth threshold makes this checkpoint a cheap no-op for the
            // many jobs whose cone was already materialized.
            for (SatLit a : assumptions) pc.solver.freeze(satVar(a));
            for (int f = 0; f <= k; ++f) pc.un.freezeFrontier(f);
            pc.solver.preprocess();
        }
        // The pooled solver outlives this job: keep the job's deadline
        // token bound only for the duration of its own solve.
        if (job.watchdogStop) pc.solver.bindWatchdog(job.watchdogStop);
        SatResult r = pc.solver.solve(assumptions);
        pc.solver.bindWatchdog(nullptr);
        if (r == SatResult::Interrupted) interrupted = true;
        ++queries;
        if (ctx.stats) ctx.stats->satCalls.fetch_add(1, std::memory_order_relaxed);
        job.result.seconds += sw.seconds();
        if (r == SatResult::Unsat) {
            job.result.status = job.coverMode ? Status::Unreachable : Status::Proven;
            job.result.depth = k;
            break;
        }
    }
    span.arg("queries", queries);
}

class InductionStrategy final : public ProofStrategy {
public:
    [[nodiscard]] const char* name() const override { return "k-induction"; }

    void run(const ProofContext& ctx, ObligationJob& job) const override {
        if (ctx.pool)
            runInductionPooled(ctx, job);
        else
            runInductionFresh(ctx, job);
    }
};

} // namespace

std::unique_ptr<ProofStrategy> makeInductionStrategy() {
    return std::make_unique<InductionStrategy>();
}

} // namespace autosva::formal
