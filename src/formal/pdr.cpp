#include "formal/pdr.hpp"

#include <algorithm>
#include <random>

#include "formal/sat.hpp"
#include "formal/unroll.hpp"

namespace autosva::formal {

namespace detail {

namespace {

using Cube = PdrCube;

/// Canonical cube form: literals sorted by (stable var rank, value) and
/// deduplicated. Var ids are creation-ordered on a given AIG, so this is a
/// deterministic function of the literal *set* — every cube entering the
/// search passes through here, which is what makes the whole query
/// sequence invariant to the order literals were submitted in.
Cube canonicalize(Cube cube) {
    std::sort(cube.begin(), cube.end());
    cube.erase(std::unique(cube.begin(), cube.end()), cube.end());
    return cube;
}

/// How many retired consecution clause groups accumulate before the frame
/// solver purges them from its watch lists. Every retired group is dead
/// weight on propagation; amortizing the purge keeps simplify() off the
/// per-query hot path. Safe to run at all now that generalization is
/// ordering-insensitive (the watch-order reshuffle simplify causes used to
/// flip budget-edge proofs — see the ROADMAP history).
constexpr uint32_t kSimplifyEvery = 64;

} // namespace

/// One SAT context per frame: the transition relation (frame 0 = current
/// state, frame 1 resolves to next-state functions) plus the frame's
/// learned clauses over current-state latch literals. Lives as long as the
/// PdrContext — consecution queries retire their clause groups and the
/// solver is periodically simplified, so the encoding never rebuilds.
struct FrameSolver {
    std::unique_ptr<SatSolver> solver;
    std::unique_ptr<Unroller> un;
    uint32_t retiredGroups = 0;

    FrameSolver(const Aig& aig, const std::atomic<bool>* stop,
                const std::atomic<bool>* watchdog, bool satPre) {
        solver = std::make_unique<SatSolver>();
        if (stop) solver->bindStop(stop);
        if (watchdog) solver->bindWatchdog(watchdog);
        // Off in production (strategy_pdr.cpp passes false): even the
        // elimination-free subsumption/inprocessing subset perturbs the
        // models generalization consumes — see PdrOptions::satPre.
        solver->setPreprocessing(satPre);
        un = std::make_unique<Unroller>(aig, *solver, Unroller::Init::Free);
    }

    /// Every literal handed out of the frame solver is externally visible —
    /// consecution assumptions, blocked-clause literals, model reads during
    /// generalization — so its variable is frozen on first materialization.
    SatLit now(AigLit l) {
        SatLit s = un->lit(0, l);
        solver->freeze(satVar(s));
        return s;
    }
    SatLit next(uint32_t latchVar) {
        SatLit s = un->lit(1, aigMkLit(latchVar));
        solver->freeze(satVar(s));
        return s;
    }

    /// Retires a consecution query's clause group and periodically purges
    /// the dead groups from the watch lists (SatSolver::simplify), so a
    /// long-lived frame solver doesn't drag thousands of permanently
    /// satisfied clauses through every later propagation.
    void retireGroup(SatLit act) {
        solver->closeClauseGroup(act);
        if (++retiredGroups % kSimplifyEvery == 0) solver->simplify();
    }
};

struct PdrSearch {
    const Aig& aig;
    AigLit bad;
    /// Copied, not referenced: PdrContext is a long-lived public class and
    /// a caller passing a temporary vector must not dangle across later
    /// search() calls. The list is a handful of literals.
    std::vector<AigLit> constraints;
    PdrOptions opts;
    uint64_t queries = 0;
    uint64_t budget = 0;           ///< Cumulative query allowance.
    uint64_t dropRotation = 0;     ///< Generalization sweep start offset.
    bool stoppedOnBudget = false;  ///< Last search() outcome detail.
    /// A SAT query of the *current* search() answered Interrupted. Sticky
    /// until the next run() entry: whatever raised it (a cancellation
    /// token, or an injected spurious Interrupted with no token at all —
    /// see robust/faultinject.hpp), the search must unwind through
    /// interruptedResult() rather than keep reasoning over answers that
    /// may reflect stale models.
    bool interruptedSeen = false;
    bool level0Checked = false;
    bool seedsAdmitted = false;
    /// Outer-loop frame a resumed search() continues from. Frames below it
    /// were already cleared of bad states, and blocked clauses only ever
    /// strengthen, so a retry never has to re-block or re-propagate them —
    /// its fresh budget goes entirely into new search.
    size_t resumeFrame = 1;
    PdrStats stats;
    std::mt19937_64 perturbRng; ///< Only used when opts.perturbSeed != 0.

    std::vector<std::unique_ptr<FrameSolver>> solvers; // Index = frame.
    std::vector<std::vector<Cube>> frames;             // Learned cubes per frame.
    std::vector<Cube> invariantCubes; // Validated seeds: hold at every frame.

    PdrSearch(const Aig& a, AigLit b, const std::vector<AigLit>& cons, const PdrOptions& o)
        : aig(a), bad(b), constraints(cons), opts(o), budget(o.maxQueries),
          dropRotation(o.genRotation), perturbRng(o.perturbSeed) {}

    /// Has the cancellation token been raised? Checked at every decision
    /// point that could otherwise turn an Interrupted SAT answer into a
    /// fabricated verdict (solvers return Interrupted for any solve() once
    /// the token is set, which reads as "no bad state" / "not inductive"
    /// to the callers below — safe individually, but the outer loop must
    /// never conclude from such answers). Also raised by interruptedSeen,
    /// which covers Interrupted answers that arrive without any token
    /// (injected faults) — one unexplained Interrupted and the search
    /// unwinds instead of trusting later models.
    [[nodiscard]] bool stopRaised() const {
        return interruptedSeen || (opts.stop && opts.stop->load(std::memory_order_relaxed)) ||
               (opts.watchdog && opts.watchdog->load(std::memory_order_relaxed));
    }

    /// Perturbation-fuzz hook: shuffles a sequence that is canonicalized
    /// immediately afterwards. With perturbSeed == 0 this is a no-op; with
    /// any other seed the downstream canonicalization must absorb the
    /// shuffle — the fuzz test asserts exactly that.
    template <typename Seq> void perturb(Seq& seq) {
        if (opts.perturbSeed == 0 || seq.size() < 2) return;
        std::shuffle(seq.begin(), seq.end(), perturbRng);
    }

    FrameSolver& frameSolver(size_t i) {
        while (solvers.size() <= i) {
            auto fs = std::make_unique<FrameSolver>(aig, opts.stop, opts.watchdog,
                                                    opts.satPre);
            ++stats.framesOpened;
            // Constraints hold in the current state of every frame.
            for (AigLit c : constraints) fs->solver->addUnit(fs->now(c));
            if (solvers.empty()) {
                // Frame 0 additionally encodes the initial states.
                for (uint32_t lv : aig.latches()) {
                    int init = aig.latchInit(lv);
                    if (init < 0) continue;
                    SatLit l = fs->now(aigMkLit(lv));
                    fs->solver->addUnit(init ? l : satNeg(l));
                }
            }
            // Replay learned clauses: a clause stored at frame j holds at all
            // frames <= j, so the solver for frame `idx` carries every cube
            // from frames idx and above.
            size_t idx = solvers.size();
            solvers.push_back(std::move(fs));
            for (const Cube& c : invariantCubes) addBlockedClauseToSolver(idx, c);
            for (size_t j = idx; j < frames.size(); ++j)
                for (const Cube& c : frames[j]) addBlockedClauseToSolver(idx, c);
        }
        return *solvers[i];
    }

    void ensureFrameStorage(size_t i) {
        while (frames.size() <= i) frames.emplace_back();
    }

    void addBlockedClauseToSolver(size_t frameIdx, const Cube& cube) {
        FrameSolver& fs = *solvers[frameIdx];
        std::vector<SatLit> clause;
        clause.reserve(cube.size());
        for (auto [var, val] : cube) {
            SatLit l = fs.now(aigMkLit(var));
            clause.push_back(val ? satNeg(l) : l);
        }
        fs.solver->addClause(std::move(clause));
    }

    /// Blocks `cube` at all frames 0..frameIdx.
    void addBlockedCube(size_t frameIdx, const Cube& cube) {
        ensureFrameStorage(frameIdx);
        frames[frameIdx].push_back(cube);
        ++stats.cubesBlocked;
        for (size_t i = 0; i <= frameIdx && i < solvers.size(); ++i)
            addBlockedClauseToSolver(i, cube);
    }

    /// Does the cube contain the initial states? (A cube intersects Init iff
    /// none of its literals contradicts a defined init value.)
    [[nodiscard]] bool intersectsInit(const Cube& cube) const {
        for (auto [var, val] : cube) {
            int init = aig.latchInit(var);
            if (init >= 0 && (init != 0) != val) return false;
        }
        return true;
    }

    /// SAT query: F_frame /\ not(cube) /\ T /\ cube'. Returns true if UNSAT
    /// (cube is inductive relative to the frame); on SAT fills
    /// `predecessor` with the full current-state cube of the model; on
    /// UNSAT fills `coreCube` (if given) with the subset of cube literals
    /// whose primed assumptions appear in the unsat core. `cube` must be
    /// canonical — assumptions follow its literal order, so canonical input
    /// keeps the query byte-identical however the cube was first assembled.
    bool consecution(size_t frameIdx, const Cube& cube, Cube* predecessor,
                     Cube* coreCube = nullptr) {
        ++queries;
        FrameSolver& fs = frameSolver(frameIdx);
        std::vector<SatLit> assumptions;
        // not(cube) in a single-query clause group (released below).
        SatLit act = fs.solver->openClauseGroup();
        std::vector<SatLit> notCube;
        for (auto [var, val] : cube) {
            SatLit l = fs.now(aigMkLit(var));
            notCube.push_back(val ? satNeg(l) : l);
        }
        fs.solver->addClauseIn(act, std::move(notCube));
        assumptions.push_back(act);
        // cube' on the next-state functions.
        std::vector<SatLit> primedLits;
        for (auto [var, val] : cube) {
            SatLit l = fs.next(var);
            primedLits.push_back(val ? l : satNeg(l));
            assumptions.push_back(primedLits.back());
        }
        SatResult r = fs.solver->solve(assumptions);
        if (r == SatResult::Interrupted) interruptedSeen = true;
        bool unsat = r == SatResult::Unsat;
        if (!unsat && predecessor) {
            predecessor->clear();
            for (uint32_t lv : aig.latches()) {
                SatLit l = fs.now(aigMkLit(lv));
                predecessor->emplace_back(lv, fs.solver->modelValue(satVar(l)) != satSign(l));
            }
        }
        if (unsat && coreCube) {
            coreCube->clear();
            const auto& core = fs.solver->conflictCore();
            auto inCore = [&](SatLit l) {
                for (SatLit c : core)
                    if (c == l) return true;
                return false;
            };
            for (size_t i = 0; i < cube.size(); ++i)
                if (inCore(primedLits[i])) coreCube->push_back(cube[i]);
            // The shrunk cube must still exclude the initial states: if it
            // now intersects Init, restore one distinguishing literal.
            if (intersectsInit(*coreCube)) {
                for (size_t i = 0; i < cube.size(); ++i) {
                    auto [var, val] = cube[i];
                    int init = aig.latchInit(var);
                    if (init >= 0 && (init != 0) != val) {
                        coreCube->push_back(cube[i]);
                        break;
                    }
                }
            }
            if (coreCube->empty()) *coreCube = cube;
            *coreCube = canonicalize(std::move(*coreCube));
        }
        fs.retireGroup(act); // Retire the temporary clause.
        return unsat;
    }

    /// Is `bad` reachable within F_frame?
    bool badState(size_t frameIdx, Cube* state) {
        ++queries;
        FrameSolver& fs = frameSolver(frameIdx);
        SatLit b = fs.now(bad);
        SatResult r = fs.solver->solve({b});
        if (r == SatResult::Interrupted) interruptedSeen = true;
        if (r != SatResult::Sat) return false;
        state->clear();
        for (uint32_t lv : aig.latches()) {
            SatLit l = fs.now(aigMkLit(lv));
            state->emplace_back(lv, fs.solver->modelValue(satVar(l)) != satSign(l));
        }
        return true;
    }

    /// Admits the mutually-inductive subset of the seed cubes as
    /// frame-independent invariants. Seeds come from an untrusted source
    /// (the proof cache, possibly for an edited design), so each candidate
    /// only survives a greatest-fixpoint filter under consecution: start
    /// from every well-formed, Init-disjoint candidate and repeatedly drop
    /// cubes whose clause is not inductive relative to the survivors. The
    /// surviving conjunction S satisfies Init => S and S /\ C /\ T /\ C' =>
    /// S', so it over-approximates nothing reachable — blocking it at every
    /// frame is sound no matter what the cache contained.
    ///
    /// The candidate list is canonicalized (per-cube literal sort plus a
    /// lexicographic sort of the cubes themselves) before any query, so
    /// the admitted subset cannot depend on the order the cache returned
    /// the seeds in — the greatest fixpoint is order-independent, but the
    /// bounded validation budget would otherwise make the cutoff point
    /// submission-order-sensitive.
    ///
    /// Validation runs on its own bounded query budget, deliberately NOT
    /// charged to the main `queries` counter: a stale or oversized seed set
    /// must never eat the proof budget and demote an otherwise-provable
    /// property to Unknown. If the validation budget runs out before the
    /// fixpoint closes, every seed is discarded.
    void admitSeedCubes() {
        if (!opts.seedCubes || opts.seedCubes->empty()) return;
        std::vector<Cube> cand;
        cand.reserve(opts.seedCubes->size());
        for (const Cube& seed : *opts.seedCubes) {
            if (seed.empty()) continue;
            bool wellFormed = true;
            for (auto [var, val] : seed) {
                (void)val;
                if (var >= aig.numVars() || aig.kind(var) != Aig::VarKind::Latch)
                    wellFormed = false;
            }
            if (!wellFormed) continue;
            Cube cube = canonicalize(seed);
            if (intersectsInit(cube)) continue;
            cand.push_back(std::move(cube));
        }
        perturb(cand); // Fuzz hook; the sort below must absorb it.
        std::sort(cand.begin(), cand.end());
        cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
        if (cand.empty()) return;

        // One incremental solver: T with constraints in both states, each
        // candidate clause behind an activation literal so dropped cubes
        // leave the premise.
        SatSolver solver;
        if (opts.stop) solver.bindStop(opts.stop);
        if (opts.watchdog) solver.bindWatchdog(opts.watchdog);
        Unroller un(aig, solver, Unroller::Init::Free);
        for (AigLit c : constraints) {
            solver.addUnit(un.lit(0, c));
            solver.addUnit(un.lit(1, c));
        }
        std::vector<SatLit> act(cand.size());
        for (size_t i = 0; i < cand.size(); ++i) {
            act[i] = solver.openClauseGroup();
            std::vector<SatLit> clause;
            for (auto [var, val] : cand[i]) {
                SatLit l = un.lit(0, aigMkLit(var));
                clause.push_back(val ? satNeg(l) : l);
            }
            solver.addClauseIn(act[i], std::move(clause));
        }
        const uint64_t seedBudget = 20000;
        uint64_t seedQueries = 0;
        std::vector<char> alive(cand.size(), 1);
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t i = 0; i < cand.size(); ++i) {
                if (!alive[i]) continue;
                if (seedQueries >= seedBudget) return; // Unvalidated: use none.
                ++seedQueries;
                std::vector<SatLit> assumptions;
                for (size_t j = 0; j < cand.size(); ++j)
                    if (alive[j]) assumptions.push_back(act[j]);
                for (auto [var, val] : cand[i]) {
                    SatLit l = un.lit(1, aigMkLit(var));
                    assumptions.push_back(val ? l : satNeg(l));
                }
                SatResult sr = solver.solve(assumptions);
                if (sr == SatResult::Interrupted) return; // Cancelled: use none.
                if (sr != SatResult::Unsat) {
                    alive[i] = 0;
                    changed = true;
                }
            }
        }
        for (size_t i = 0; i < cand.size(); ++i) {
            if (!alive[i]) continue;
            ++stats.seedCubesAdmitted;
            // Frame solvers created later inherit the admitted clause via
            // frameSolver(); any already-open solver gets it here (the
            // seeds are frame-independent invariants, so every frame may
            // block them).
            for (size_t idx = 0; idx < solvers.size(); ++idx)
                addBlockedClauseToSolver(idx, cand[i]);
            invariantCubes.push_back(std::move(cand[i]));
        }
    }

    /// The inductive invariant once frame `closedFrame` equals its
    /// successor: every clause at or above the convergence point plus the
    /// admitted seed invariants.
    [[nodiscard]] std::vector<Cube> collectInvariant(size_t closedFrame) const {
        std::vector<Cube> inv = invariantCubes;
        for (size_t j = closedFrame; j < frames.size(); ++j)
            inv.insert(inv.end(), frames[j].begin(), frames[j].end());
        std::sort(inv.begin(), inv.end());
        inv.erase(std::unique(inv.begin(), inv.end()), inv.end());
        return inv;
    }

    /// Shrinks a blocked cube: first via unsat cores (cheap, large steps),
    /// then a fixed-point literal-drop sweep on the remainder, always
    /// keeping the cube inductive relative to F_{frameIdx} and disjoint
    /// from Init.
    ///
    /// Ordering-insensitive by construction: the cube is canonicalized at
    /// entry and each sweep attempts drops in canonical literal order
    /// (rotated by the deterministic retry offset), repeating until a full
    /// sweep removes nothing. The result is a function of the literal
    /// *set*, the frame state, and the rotation — never of the order the
    /// caller assembled the cube in. That is the hardening that lets
    /// simplify() run and the AIG rewrite default ON without budget-edge
    /// proofs flipping (see ROADMAP "Engine architecture").
    Cube generalize(size_t frameIdx, Cube cube) {
        cube = canonicalize(std::move(cube));
        // Core-based shrinking: the caller guarantees `cube` is inductive.
        // A core-shrunk cube is a candidate only — weakening not(cube) can
        // break inductiveness — so validate before adopting (fixpoint in
        // practice after 1-2 rounds).
        for (int round = 0; round < 4; ++round) {
            Cube shrunk;
            if (!consecution(frameIdx, cube, nullptr, &shrunk)) break;
            if (shrunk.size() >= cube.size()) break;
            if (intersectsInit(shrunk)) break;
            if (!consecution(frameIdx, shrunk, nullptr)) break; // Not inductive: keep cube.
            cube = std::move(shrunk);
        }
        // Literal dropping on the (now small) cube: sweep the literals in
        // rotated canonical order; on narrow cubes, repeat until a sweep
        // drops nothing (the fixed point — a later drop can free up an
        // earlier literal). Wide cubes get a single sweep: an unbounded
        // fixpoint is O(n^2) consecution queries there and measurably
        // starves the per-property budget. Both regimes are deterministic
        // functions of the literal set, the frame state, and the rotation
        // — never of the input order, which is the hardening contract.
        constexpr size_t kFixpointWidth = 12;
        bool changed = true;
        for (int sweepNo = 0;
             changed && cube.size() > 1 && (sweepNo == 0 || cube.size() <= kFixpointWidth);
             ++sweepNo) {
            changed = false;
            Cube sweep = cube;
            if (uint64_t rot = dropRotation % sweep.size(); rot != 0)
                std::rotate(sweep.begin(), sweep.begin() + static_cast<long>(rot), sweep.end());
            for (const auto& lit : sweep) {
                if (cube.size() <= 1) break;
                auto it = std::find(cube.begin(), cube.end(), lit);
                if (it == cube.end()) continue; // Already dropped this sweep.
                Cube candidate = cube;
                candidate.erase(candidate.begin() + (it - cube.begin()));
                ++stats.genDropAttempts;
                if (!intersectsInit(candidate) && consecution(frameIdx, candidate, nullptr)) {
                    cube = std::move(candidate);
                    changed = true;
                }
            }
        }
        return cube;
    }

    /// The unwind path for a raised cancellation token. Soundness note:
    /// once the token is set, every SAT call reports Interrupted, which
    /// consecution()/badState() surface as "not inductive"/"no bad state"
    /// — each individually safe (they only suppress progress), but the
    /// loops below must never *conclude* from such answers. Hence the
    /// explicit checks at every point that could otherwise mint a verdict:
    /// run() entry, the frame-loop head, the obligation-loop head (before
    /// a possibly-stale predecessor is consumed), and the gap between
    /// blocking and propagation (badState lying "no bad state" must not
    /// flow into the frames-equal Proven check).
    [[nodiscard]] PdrResult interruptedResult() const {
        PdrResult result;
        result.kind = PdrResult::Kind::Unknown;
        result.interrupted = true;
        result.queries = queries;
        return result;
    }

    PdrResult run() {
        PdrResult result;
        stoppedOnBudget = false;
        // Query-level interruption is per-search(): a resumed search starts
        // clean (its owner cleared or re-armed the tokens).
        interruptedSeen = false;
        if (stopRaised()) return interruptedResult();

        // Level 0: is bad reachable in the initial state itself? (Once per
        // context — the answer cannot change across resumed searches; the
        // checked flag is only recorded once the solve really finished, so
        // an interrupted level-0 check reruns on resume.)
        if (!level0Checked) {
            SatSolver s0;
            if (opts.stop) s0.bindStop(opts.stop);
            if (opts.watchdog) s0.bindWatchdog(opts.watchdog);
            Unroller u0(aig, s0, Unroller::Init::Reset);
            std::vector<SatLit> assumptions{u0.lit(0, bad)};
            for (AigLit c : constraints) s0.addUnit(u0.lit(0, c));
            SatResult r0 = s0.solve(assumptions);
            if (r0 == SatResult::Interrupted) return interruptedResult();
            level0Checked = true;
            if (r0 == SatResult::Sat) {
                result.kind = PdrResult::Kind::Cex;
                result.depth = 0;
                result.queries = queries;
                return result;
            }
        }

        // Re-validate and admit any seed invariants before the main loop.
        if (!seedsAdmitted) {
            seedsAdmitted = true;
            admitSeedCubes();
        }

        // Proof obligations: (frame, cube, depth-from-bad) — recursive blocking.
        struct Obligation {
            size_t frame;
            Cube cube;
            int depth;
        };

        for (size_t k = resumeFrame; static_cast<int>(k) <= opts.maxFrames; ++k) {
            resumeFrame = k;
            if (stopRaised()) return interruptedResult();
            ensureFrameStorage(k);
            // Block all bad states reachable within F_k.
            Cube badCube;
            while (badState(k, &badCube)) {
                if (queries > budget) {
                    stoppedOnBudget = true;
                    result.kind = PdrResult::Kind::Unknown;
                    result.queries = queries;
                    return result;
                }
                std::vector<Obligation> obligations;
                perturb(badCube); // Fuzz hook; canonicalize absorbs it.
                obligations.push_back({k, canonicalize(std::move(badCube)), 0});
                while (!obligations.empty()) {
                    // Stop before budget: an interrupted search must not be
                    // misread as resumable-on-refill, and the top obligation
                    // may hold a stale-model predecessor consecution filled
                    // under interruption — it must never be consumed.
                    if (stopRaised()) return interruptedResult();
                    if (queries > budget) {
                        stoppedOnBudget = true;
                        result.kind = PdrResult::Kind::Unknown;
                        result.queries = queries;
                        return result;
                    }
                    Obligation ob = obligations.back();
                    if (ob.frame == 0) {
                        // Reached the initial frame: counterexample.
                        result.kind = PdrResult::Kind::Cex;
                        result.depth = ob.depth + static_cast<int>(k); // Upper bound on length.
                        result.queries = queries;
                        return result;
                    }
                    if (intersectsInit(ob.cube)) {
                        result.kind = PdrResult::Kind::Cex;
                        result.depth = ob.depth + static_cast<int>(ob.frame);
                        result.queries = queries;
                        return result;
                    }
                    Cube predecessor;
                    if (consecution(ob.frame - 1, ob.cube, &predecessor)) {
                        Cube generalized = generalize(ob.frame - 1, ob.cube);
                        addBlockedCube(ob.frame, generalized);
                        obligations.pop_back();
                    } else {
                        perturb(predecessor); // Fuzz hook; canonicalize absorbs it.
                        obligations.push_back(
                            {ob.frame - 1, canonicalize(std::move(predecessor)), ob.depth + 1});
                    }
                }
            }

            // An interrupted badState() reports "no bad state" — it must not
            // fall through into the frames-equal Proven check below.
            if (stopRaised()) return interruptedResult();

            // Propagation: push clauses forward; a frame whose clauses all moved
            // up equals its successor, closing the inductive invariant.
            for (size_t i = 1; i < k; ++i) {
                auto& cubes = frames[i];
                for (size_t ci = 0; ci < cubes.size();) {
                    if (consecution(i, cubes[ci], nullptr)) {
                        Cube moved = std::move(cubes[ci]);
                        cubes.erase(cubes.begin() + static_cast<long>(ci));
                        frames[i + 1].push_back(moved);
                        if (i + 1 < solvers.size()) addBlockedClauseToSolver(i + 1, moved);
                        continue;
                    }
                    ++ci;
                }
                if (cubes.empty()) {
                    result.kind = PdrResult::Kind::Proven;
                    result.depth = static_cast<int>(i);
                    result.queries = queries;
                    result.invariant = collectInvariant(i);
                    return result;
                }
            }
        }

        result.kind = PdrResult::Kind::Unknown;
        result.depth = opts.maxFrames;
        result.queries = queries;
        return result;
    }
};

} // namespace detail

PdrContext::PdrContext(const Aig& aig, AigLit bad, const std::vector<AigLit>& constraints,
                       const PdrOptions& opts)
    : impl_(std::make_unique<detail::PdrSearch>(aig, bad, constraints, opts)) {}

PdrContext::~PdrContext() = default;

PdrResult PdrContext::search() { return impl_->run(); }

bool PdrContext::budgetExhausted() const { return impl_->stoppedOnBudget; }

void PdrContext::grantBudget() { impl_->budget += impl_->opts.maxQueries; }

void PdrContext::grantBudget(uint64_t extra) { impl_->budget += extra; }

void PdrContext::rotateGeneralization() { ++impl_->dropRotation; }

void PdrContext::clearStop() {
    impl_->opts.stop = nullptr;
    impl_->opts.watchdog = nullptr;
    for (auto& fs : impl_->solvers) {
        fs->solver->bindStop(nullptr);
        fs->solver->bindWatchdog(nullptr);
    }
}

void PdrContext::bindWatchdog(const std::atomic<bool>* token) {
    impl_->opts.watchdog = token;
    for (auto& fs : impl_->solvers) fs->solver->bindWatchdog(token);
}

const PdrStats& PdrContext::stats() const {
    // The simplification counters live inside the long-lived frame
    // solvers; re-gather the totals on every read.
    uint64_t sub = 0, str = 0, viv = 0, inp = 0;
    for (const auto& fs : impl_->solvers) {
        sub += fs->solver->clausesSubsumed();
        str += fs->solver->clausesStrengthened();
        viv += fs->solver->clausesVivified();
        inp += fs->solver->inprocessPasses();
    }
    impl_->stats.preClausesSubsumed = sub;
    impl_->stats.preClausesStrengthened = str;
    impl_->stats.preClausesVivified = viv;
    impl_->stats.preInprocessPasses = inp;
    return impl_->stats;
}

uint64_t PdrContext::queries() const { return impl_->queries; }

PdrResult pdrCheck(const Aig& aig, AigLit bad, const std::vector<AigLit>& constraints,
                   const PdrOptions& opts) {
    PdrContext ctx(aig, bad, constraints, opts);
    PdrResult result = ctx.search();
    // Budget-edge fallback: the frames learned so far are sound invariant
    // lemmas whatever order produced them, so a retry resumes on the warm
    // context — fresh budget, rotated generalization sweep — instead of
    // starting over. The rotation schedule is fixed, so retries keep the
    // verdict a deterministic function of (graph, options).
    uint64_t retries = 0;
    for (int retry = 0; retry < opts.retryReorders && result.kind == PdrResult::Kind::Unknown &&
                        ctx.budgetExhausted();
         ++retry) {
        ctx.grantBudget();
        ctx.rotateGeneralization();
        ++retries;
        result = ctx.search();
    }
    result.stats = ctx.stats();
    result.stats.retryActivations = retries;
    result.queries = ctx.queries();
    return result;
}

} // namespace autosva::formal
