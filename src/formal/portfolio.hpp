// Portfolio racing and global budget scheduling for the PDR stage.
//
// Two cooperating mechanisms, both strictly verdict-preserving:
//
// **The leg ladder** (pdrLegLadder). With portfolioLegs > 0 every
// PDR-eligible obligation owns a deterministic ladder of attempts: leg 0
// is the canonical pdrCheck policy (fresh context at generalization
// rotation 0, warm-context budget-edge retries at rotations 1..R), and
// each hunter leg i >= 1 is a single fresh-context search at rotation
// R + i — a different but fixed drop order that can close budget-edge
// properties the canonical schedule leaves Unknown. The ladder is part of
// the verdict function and therefore of the cache options digest.
//
// **The race** (JobRace). The ladder's semantics never depend on
// evaluation order — every leg answers the same reachability question, so
// any two decisive legs agree (PDR is sound and complete within budget;
// legs differ only in which of Proven/Cex/Unknown they reach within
// theirs). `portfolio=false` walks the ladder sequentially with early
// exit at the first decisive leg; `portfolio=true` races all legs
// concurrently as cancellable jobs. Adoption is ALWAYS the first decisive
// leg in LEG order — never finish order — and a decisive leg cancels only
// the rungs above it (a lower leg still running might be decisive too and
// takes precedence). Hence the adopted outcome, and with it the canonical
// report, is byte-identical across {sequential, raced} x any worker
// count; racing only changes wall clock and which losers get cancelled.
//
// **The budget pool** (BudgetPool). With budgetPoolQueries > 0 the fixed
// per-property pdrMaxQueries cap is replaced by one global pool: every
// PDR-eligible obligation reserves an equal up-front grant, cheap closers
// return what they never spent (commutative atomic settles — order
// cannot matter), and budget-edge Unknowns draw refills at single-threaded
// phase barriers in declaration order, resuming their warm PdrContext.
// Deterministic by construction: grant sizes depend only on (total,
// eligible-count), settles commute, and draws happen in a fixed order at
// fixed points.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "formal/pdr.hpp"
#include "formal/result.hpp"

namespace autosva::formal {

/// One leg of the deterministic PDR attempt ladder.
struct PdrLegSpec {
    uint64_t genRotation = 0; ///< Initial generalization drop-order rotation.
    int retries = 0;          ///< Warm-context budget-edge retries (leg 0 only).
};

/// The ladder both portfolio modes evaluate: leg 0 = canonical policy,
/// hunter legs at rotations past the canonical retry schedule. Size is
/// 1 + max(0, opts.portfolioLegs).
[[nodiscard]] std::vector<PdrLegSpec> pdrLegLadder(const EngineOptions& opts);

/// Global PDR query-budget pool shared by one engine run's eligible
/// obligations. Thread-safety contract: settle() may be called from any
/// worker at any time; draw() only from the single-threaded phase
/// barriers; counters are read after the workers joined.
class BudgetPool {
public:
    /// Divides `total` queries into equal up-front grants for
    /// `eligibleJobs` obligations; the division remainder seeds the pool.
    BudgetPool(uint64_t total, size_t eligibleJobs);

    /// The per-obligation (and per-leg) up-front grant.
    [[nodiscard]] uint64_t initialGrant() const { return grant_; }

    /// Returns an obligation's grant minus what it actually spent
    /// (negative net when PDR overshot the cap by its final query — the
    /// pool is signed for exactly that). Commutative, so the pool's value
    /// at any barrier is independent of worker scheduling.
    void settle(uint64_t granted, uint64_t used);

    /// Barrier-side refill draw: up to `want` queries, bounded by what the
    /// pool holds. Never call concurrently with other draws.
    [[nodiscard]] uint64_t draw(uint64_t want);

    [[nodiscard]] int64_t available() const {
        return pool_.load(std::memory_order_relaxed);
    }

    // Observability (EngineStats::budget* counters).
    [[nodiscard]] uint64_t queriesReturned() const {
        return returned_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] uint64_t refillsGranted() const { return refills_; }

private:
    std::atomic<int64_t> pool_;
    uint64_t grant_;
    std::atomic<uint64_t> returned_{0};
    uint64_t refills_ = 0; ///< Barrier-side only, like draw().
};

/// Per-obligation race state: one cancellable slot per ladder leg.
/// Workers run legs in any order and deposit their raw results here; the
/// deposit completing the race adopts — first decisive leg in leg order.
class JobRace {
public:
    explicit JobRace(size_t numLegs);

    [[nodiscard]] size_t numLegs() const { return slots_.size(); }

    /// The leg's cancellation token, bound into every solver its search
    /// creates. Raised by a lower decisive leg's deposit.
    [[nodiscard]] const std::atomic<bool>* stopToken(size_t leg) const {
        return &slots_[leg]->stop;
    }

    /// False once the leg has been cancelled — a worker picking the leg up
    /// then skips the search and deposits a cancelled placeholder.
    [[nodiscard]] bool shouldRun(size_t leg) const {
        return !slots_[leg]->stop.load(std::memory_order_relaxed);
    }

    /// Records leg `leg`'s outcome (`ran` false for a leg skipped at
    /// pickup). A decisive, uninterrupted outcome lowers the
    /// first-decisive watermark and cancels every rung above it. Returns
    /// true for exactly one caller — the one completing the last leg —
    /// who must then call adopt() and finalize the job.
    [[nodiscard]] bool deposit(size_t leg, PdrResult&& result, bool ran);

    /// After the final deposit: the adopted rung and its result — the
    /// first decisive leg in leg order. The all-Unknown case adopts leg
    /// 0's Unknown, the canonical resumable outcome (hunters have no
    /// retry ladder and no warm context to resume).
    [[nodiscard]] size_t adoptedLeg() const;
    [[nodiscard]] PdrResult takeAdopted();

    /// Legs that never produced a genuine outcome because a lower rung
    /// decided first (skipped at pickup or interrupted mid-search).
    [[nodiscard]] uint64_t cancelledLegs() const;
    /// Legs that actually began solving.
    [[nodiscard]] uint64_t launchedLegs() const;

    /// Deterministic pool charge of the race: the queries of legs 0..adopted
    /// rung — exactly the legs the sequential ladder walk would have run.
    /// Cancelled or raced-past legs charge nothing, matching the
    /// sequential path that never runs them.
    [[nodiscard]] uint64_t chargedQueries() const;

private:
    struct Slot {
        std::atomic<bool> stop{false};
        PdrResult result;
        bool ran = false;
    };
    // unique_ptr slots: atomics are neither movable nor copyable, and the
    // slot count is a per-job runtime value.
    std::vector<std::unique_ptr<Slot>> slots_;
    std::atomic<size_t> lowestDecisive_;
    std::atomic<size_t> remaining_;
};

} // namespace autosva::formal
