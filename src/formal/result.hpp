// Shared result types of the formal layer: per-property verdicts,
// counterexample traces, engine options and counters. Split out of
// engine.hpp so the scheduler / strategy units and the report sink can
// depend on them without pulling in the engine facade.
#pragma once

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hpp"

namespace autosva::obs {
class Recorder;
}

namespace autosva::formal {

/// Counterexample in terms of the word-level design: initial register
/// state plus input values per frame. Replayable on the simulator.
struct CexTrace {
    std::unordered_map<std::string, uint64_t> initialRegs;
    std::vector<std::unordered_map<std::string, uint64_t>> inputs;
    int loopStart = -1; ///< >= 0 for liveness lassos: frame where the loop begins.

    [[nodiscard]] int length() const { return static_cast<int>(inputs.size()); }
};

enum class Status {
    Proven,      ///< Assertion holds (k-induction converged).
    Failed,      ///< Counterexample found.
    Covered,     ///< Cover target reached.
    Unreachable, ///< Cover target proven unreachable.
    Unknown,     ///< Bounds exhausted without a verdict.
    Skipped,     ///< Not applicable to formal (e.g. X-propagation checks).
};

[[nodiscard]] const char* statusName(Status s);

/// Why an Unknown verdict is Unknown. None is the classic bounds-exhausted
/// Unknown — a *deterministic* function of the workload and options, safe
/// to cache and covered by the canonical-identity contract. Every other
/// reason is wall-clock- or operator-dependent (the run was *degraded*):
/// the verdict is still sound (never a wrong answer, only a withheld one)
/// but is excluded from the identity contract and never stored in the
/// proof cache — a timeout must not poison a later warm rerun.
enum class UnknownReason : uint8_t {
    None = 0,    ///< Bounds/budget exhausted deterministically.
    Timeout,     ///< Per-obligation deadline hit (--obligation-timeout).
    RunBudget,   ///< Whole-run deadline hit (--time-budget).
    Interrupted, ///< Orderly external stop (SIGINT/SIGTERM).
};

[[nodiscard]] const char* unknownReasonName(UnknownReason r);

struct PropertyResult {
    std::string name;
    ir::Obligation::Kind kind = ir::Obligation::Kind::SafetyBad;
    Status status = Status::Unknown;
    int depth = -1;      ///< CEX length / induction k / cover depth / bound.
    double seconds = 0.0;
    bool cached = false; ///< Served from the proof cache (no SAT work).
    /// Set (non-None) only when status is Unknown because a deadline or
    /// stop degraded this obligation; see UnknownReason.
    UnknownReason unknownReason = UnknownReason::None;
    CexTrace trace;      ///< Valid when Failed or Covered.
    /// Provenance: the designer annotation (file:line) the property was
    /// generated from, threaded from GeneratedProperty::sourceLoc through
    /// the elaborated obligation. Never part of canonical() — cache
    /// artifacts predating this field would otherwise mismatch.
    util::SourceLoc loc;

    [[nodiscard]] bool isFailure() const { return status == Status::Failed; }
};

/// Default of EngineOptions::aigRewrite: true — every consumer (Unroller
/// encodings, PDR frames, cache fingerprint cones) gets the structurally
/// rewritten, smaller graph — unless the environment variable
/// AUTOSVA_NO_AIG_REWRITE is set to a non-empty value. The env hook is the
/// opt-out path CI's A/B matrix uses to run the whole tier-1 suite on the
/// legacy (unrewritten) graph without patching every test.
[[nodiscard]] bool defaultAigRewrite();

/// Default of EngineOptions::satPre: true — the strategy solvers run the
/// frozen-aware CNF simplification layer (variable elimination, subsumption,
/// restart-boundary inprocessing; see sat.hpp) — unless the environment
/// variable AUTOSVA_NO_SAT_PRE is set to a non-empty value. Same shape as
/// defaultAigRewrite: the env hook lets CI's A/B matrix run the whole tier-1
/// suite with the layer off without patching every test.
[[nodiscard]] bool defaultSatPre();

struct EngineOptions {
    int bmcDepth = 25;          ///< Max BMC unrolling depth.
    int maxInductionK = 4;      ///< Max k for quick induction proofs (<= bmcDepth).
    int pdrMaxFrames = 60;      ///< PDR frame bound for unbounded proofs.
    uint64_t pdrMaxQueries = 1000000; ///< PDR SAT-query budget per property.
    /// Bounded PDR retry-with-reordered-cubes fallback: a query-budget
    /// Unknown is resumed on the same learned frames with a fresh budget
    /// and a rotated generalization sweep, up to this many times. The
    /// rotation schedule is fixed, so verdicts stay deterministic; affects
    /// verdicts (Unknown may become Proven), so it is part of the cache
    /// options digest. 0 disables. Two retries prove the full Ariane MMU
    /// property set — including the deep fetch-liveness interplay the
    /// pre-hardening engine never closed at any budget.
    int pdrRetryReorders = 2;
    /// Non-zero: deterministically perturbs every ordering the engine
    /// canonicalizes anyway — job submission order into the batched phases
    /// and the wave-parallel lemma DAG, plus cube/seed submission order
    /// inside PDR. Canonical reports must be byte-identical for every
    /// seed; this is the perturbation-fuzz hook (tests/test_pdr.cpp), not
    /// a tuning knob, and is therefore excluded from cache keys.
    uint64_t perturbSeed = 0;
    uint64_t conflictBudget = 0; ///< Per-solve conflict cap (0 = unlimited).
    int jobs = 1;               ///< Worker threads for property discharge (<= 1: sequential).
    bool checkCovers = true;
    bool useLivenessToSafety = true; ///< false: liveness reported Unknown.
    bool usePdr = true;              ///< false: induction only (ablation).
    /// Persistent proof-cache directory; empty disables the cache (exact
    /// pre-cache behavior). Cache hits skip SAT work and reproduce the
    /// recording run's results byte-for-byte; near-miss lemma seeding is
    /// re-validated before use, so it can never flip a verdict between
    /// Proven and Failed (it may move PDR depths / budget-bound Unknowns
    /// relative to an uncached run — disable cacheLemmaSeeding for strict
    /// identity after edits).
    std::string cacheDir;
    /// Allow seeding PDR with re-validated invariants from a prior run of
    /// the same property when its exact fingerprint missed (RTL changed).
    bool cacheLemmaSeeding = true;
    /// Per-worker incremental solver reuse: each worker keeps one long-lived
    /// SatSolver + Unroller per (AIG, init mode) and discharges successive
    /// obligations as assumption queries with activation-guarded per-job
    /// clauses, instead of re-Tseitin-encoding the shared cone per
    /// obligation. Verdicts, depths, trace lengths, lasso loop starts — the
    /// whole canonical report — are byte-identical to the legacy
    /// throwaway-solver path for any worker count (liveness traces are
    /// replayed on a fresh solver for exactly this reason); safety/cover
    /// witness *values* may be a different, equally valid model. false
    /// keeps the legacy path for A/B comparison (see bench_solver_reuse).
    /// Ignored — legacy path used — when conflictBudget != 0, because
    /// budget-bound Unknowns depend on learnt-clause carry-over and would
    /// break the identity contract.
    bool solverReuse = true;
    /// Structural AIG rewrite (strashing, absorption, latch merging) after
    /// bit-blast; shrinks every downstream encoding and fingerprint cone.
    /// Semantics-preserving and deterministic, and ON by default now that
    /// PDR generalization is ordering-insensitive (the budget-edge
    /// perturbation sensitivity that kept it opt-in is gone — see ROADMAP
    /// "Engine architecture"). `--no-aig-rewrite` (or the
    /// AUTOSVA_NO_AIG_REWRITE environment variable, which moves the
    /// default) keeps the legacy graph for A/B comparison.
    bool aigRewrite = defaultAigRewrite();
    /// Frozen-aware CNF preprocessing & inprocessing in the strategy-layer
    /// SAT solvers (bounded variable elimination at encode checkpoints,
    /// subsumption/self-subsuming resolution at simplify(), vivification +
    /// failed-literal probing at restart boundaries — see sat.hpp). Sat and
    /// Unsat answers stay semantic under every transformation, so verdicts,
    /// depths, and trace shapes are byte-identical with it on or off (only
    /// witness *values* may move, the tolerated contract since solver
    /// reuse); being verdict-invariant it is deliberately excluded from the
    /// cache options digest, like `jobs` and `trace`. `--no-sat-pre` (or
    /// the AUTOSVA_NO_SAT_PRE environment variable, which moves the
    /// default) keeps the raw-CNF path for A/B comparison (bench_satpre
    /// hard-gates the identity).
    bool satPre = defaultSatPre();
    /// Extra PDR race legs per obligation beyond the canonical attempt.
    /// Each extra leg is a single fresh-context search at a generalization
    /// rotation past the canonical retry schedule — a different (but fixed)
    /// drop order that can decide budget-edge properties the canonical
    /// ladder leaves Unknown. The ladder is part of the verdict function
    /// (legs can flip Unknown to Proven/Failed), so this knob is in the
    /// cache options digest; whether the ladder is evaluated sequentially
    /// or raced in parallel (`portfolio`) is not. 0 = canonical pipeline
    /// only (seed behavior).
    int portfolioLegs = 0;
    /// Race the PDR leg ladder across the worker pool instead of walking it
    /// sequentially: every leg of an obligation runs concurrently as a
    /// cancellable job, the first *semantic* verdict in leg order is
    /// adopted, and legs above the adopted rung are cancelled via
    /// SatSolver::requestStop(). Adoption order is leg order — never
    /// finish order — so the canonical report is byte-identical to the
    /// sequential ladder for any worker count; like `jobs` and
    /// `perturbSeed`, this knob is excluded from cache keys.
    bool portfolio = false;
    /// Non-zero: a global query-budget pool of this many PDR SAT queries
    /// shared across the whole property set, replacing the fixed
    /// per-property pdrMaxQueries cap. Every PDR-eligible obligation
    /// reserves an equal initial grant; properties that close cheaply
    /// (BMC, induction, cache hits) return their unspent grant, and
    /// budget-edge Unknowns draw deterministic refills — resumed on their
    /// warm PdrContext — at phase barriers, in declaration order, until
    /// the pool drains. Changes where the Unknown frontier falls, so it is
    /// part of the cache options digest.
    uint64_t budgetPoolQueries = 0;
    /// Structured-tracing recorder (src/obs/); null disables tracing at
    /// the cost of one pointer test per instrumentation site. Tracing is
    /// verdict-inert — canonical reports are byte-identical with it on or
    /// off for any jobs count — and this field is deliberately absent from
    /// the cache options digest (cache/fingerprint.cpp hashes an explicit
    /// field list), so attaching a recorder can never move a cache key.
    /// The recorder must outlive the run.
    obs::Recorder* trace = nullptr;
    // -- Robustness (src/robust/) -------------------------------------------
    // Wall-clock deadlines are *degradation* knobs, not verdict knobs: a
    // run that finishes without hitting one reports exactly what it would
    // have reported with no deadline set, so — like jobs/perturbSeed — all
    // three fields below are deliberately absent from the cache options
    // digest, and obligations that DO hit a deadline are reported
    // Unknown(reason) and never cached.
    /// Whole-run wall-clock budget in seconds (0 = unlimited). On expiry
    /// every in-flight solve is cancelled and remaining obligations drain
    /// as Unknown(run-budget); the run still reports every obligation.
    double timeBudgetSeconds = 0.0;
    /// Per-obligation wall-clock deadline in seconds (0 = unlimited),
    /// cumulative across the obligation's pipeline stages.
    double obligationTimeoutSeconds = 0.0;
    /// External orderly-stop flag (the CLI's SIGINT/SIGTERM handler sets
    /// it); polled by the watchdog. The pointee must outlive the run.
    const std::atomic<bool>* stopFlag = nullptr;
};

struct EngineStats {
    uint64_t satCalls = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    uint64_t cacheLookups = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheStores = 0;
    uint64_t cacheSeededLemmas = 0;
    /// Encoder counters over the strategy-layer solvers (BMC, k-induction,
    /// trace replay, pooled contexts; PDR's internal frame solvers keep
    /// their own query counter). These are what solver reuse and the AIG
    /// rewrite shrink — see bench_solver_reuse.
    uint64_t encoderVars = 0;       ///< Tseitin variables created.
    uint64_t encoderClauses = 0;    ///< Problem clauses added.
    uint64_t conesMaterialized = 0; ///< Unroller root cones encoded on demand.
    uint64_t solverReuses = 0;      ///< Jobs served by an already-warm pooled solver.
    /// PDR observability (aggregated over every pdrCheck of the run; the
    /// --stats "pdr:" line and the bench --json rows carry them).
    uint64_t pdrFramesOpened = 0;      ///< Frame solvers constructed.
    uint64_t pdrCubesBlocked = 0;      ///< Generalized cubes added to frames.
    uint64_t pdrGenDropAttempts = 0;   ///< Literal-drop consecution probes.
    uint64_t pdrRetryFallbacks = 0;    ///< Budget-edge reordered retries taken.
    uint64_t pdrSeedCubesAdmitted = 0; ///< Cache seed cubes surviving re-validation.
    /// Portfolio racing / budget-pool observability (the --stats "race:"
    /// and "budget:" lines and the bench --json rows carry them).
    uint64_t portfolioLegsLaunched = 0;  ///< Race legs that began solving.
    uint64_t portfolioLegsCancelled = 0; ///< Legs stopped by a lower rung's verdict.
    uint64_t budgetQueriesReturned = 0;  ///< Unspent grant queries returned to the pool.
    uint64_t budgetRefillsGranted = 0;   ///< Refill draws served to budget-edge Unknowns.
    /// CNF simplification observability (the --stats "sat-pre:" line and
    /// the bench --json rows; aggregated over every strategy solver).
    uint64_t satPreVarsEliminated = 0;     ///< Variables eliminated (net of reactivations).
    uint64_t satPreClausesSubsumed = 0;    ///< Clauses deleted by backward subsumption.
    uint64_t satPreClausesStrengthened = 0;///< Literals removed by self-subsuming resolution.
    uint64_t satPreClausesVivified = 0;    ///< Clauses shortened by vivification.
    uint64_t satPreInprocessPasses = 0;    ///< Restart-boundary inprocessing passes.
    uint64_t hygieneClausesDropped = 0;    ///< Clauses dropped whole at addClause entry.
    /// Memory observability (the --stats "mem:" line and bench rows).
    uint64_t solverLiveClauses = 0;  ///< Live problem+learnt clauses, summed at fold time.
    uint64_t solverLearntClauses = 0;///< Live learnt clauses, summed at fold time.
    uint64_t peakRssKb = 0;          ///< getrusage peak RSS of the run (KiB; 0 if unavailable).
    /// Wall clock of phase A (safety assertions + covers, full pipeline).
    double phaseASeconds = 0.0;
    /// Wall clock of the liveness phase (frontier + lemma-DAG PDR waves);
    /// what bench_parallel_speedup's phase-B no-regression gate measures.
    double phaseBSeconds = 0.0;
    /// Lemma-DAG shape: number of waves the justice obligations formed and
    /// the widest wave (obligations discharged in parallel). A fully
    /// overlapping design degenerates to waves == obligations, widest == 1
    /// — the sequential chain, with its full strengthening power.
    uint64_t liveWaves = 0;
    uint64_t liveWaveWidest = 0;
    /// Robustness observability (the --stats "robust:" line): obligations
    /// degraded to Unknown by a deadline or stop, and why the run token
    /// fired (0 = it didn't; else a formal::UnknownReason value).
    uint64_t deadlineDegraded = 0;
    uint64_t runStopCause = 0;
    /// Proof-cache degradation: non-empty when the cache dropped to
    /// memory-only (unwritable dir, failed append, injected fault) — the
    /// `cache: disabled (reason)` --stats line and the one-shot stderr
    /// warning carry it.
    std::string cacheDegradedReason;
    double totalSeconds = 0.0;
};

} // namespace autosva::formal
