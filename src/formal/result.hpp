// Shared result types of the formal layer: per-property verdicts,
// counterexample traces, engine options and counters. Split out of
// engine.hpp so the scheduler / strategy units and the report sink can
// depend on them without pulling in the engine facade.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hpp"

namespace autosva::formal {

/// Counterexample in terms of the word-level design: initial register
/// state plus input values per frame. Replayable on the simulator.
struct CexTrace {
    std::unordered_map<std::string, uint64_t> initialRegs;
    std::vector<std::unordered_map<std::string, uint64_t>> inputs;
    int loopStart = -1; ///< >= 0 for liveness lassos: frame where the loop begins.

    [[nodiscard]] int length() const { return static_cast<int>(inputs.size()); }
};

enum class Status {
    Proven,      ///< Assertion holds (k-induction converged).
    Failed,      ///< Counterexample found.
    Covered,     ///< Cover target reached.
    Unreachable, ///< Cover target proven unreachable.
    Unknown,     ///< Bounds exhausted without a verdict.
    Skipped,     ///< Not applicable to formal (e.g. X-propagation checks).
};

[[nodiscard]] const char* statusName(Status s);

struct PropertyResult {
    std::string name;
    ir::Obligation::Kind kind = ir::Obligation::Kind::SafetyBad;
    Status status = Status::Unknown;
    int depth = -1;      ///< CEX length / induction k / cover depth / bound.
    double seconds = 0.0;
    bool cached = false; ///< Served from the proof cache (no SAT work).
    CexTrace trace;      ///< Valid when Failed or Covered.

    [[nodiscard]] bool isFailure() const { return status == Status::Failed; }
};

struct EngineOptions {
    int bmcDepth = 25;          ///< Max BMC unrolling depth.
    int maxInductionK = 4;      ///< Max k for quick induction proofs (<= bmcDepth).
    int pdrMaxFrames = 60;      ///< PDR frame bound for unbounded proofs.
    uint64_t pdrMaxQueries = 1000000; ///< PDR SAT-query budget per property.
    uint64_t conflictBudget = 0; ///< Per-solve conflict cap (0 = unlimited).
    int jobs = 1;               ///< Worker threads for property discharge (<= 1: sequential).
    bool checkCovers = true;
    bool useLivenessToSafety = true; ///< false: liveness reported Unknown.
    bool usePdr = true;              ///< false: induction only (ablation).
    /// Persistent proof-cache directory; empty disables the cache (exact
    /// pre-cache behavior). Cache hits skip SAT work and reproduce the
    /// recording run's results byte-for-byte; near-miss lemma seeding is
    /// re-validated before use, so it can never flip a verdict between
    /// Proven and Failed (it may move PDR depths / budget-bound Unknowns
    /// relative to an uncached run — disable cacheLemmaSeeding for strict
    /// identity after edits).
    std::string cacheDir;
    /// Allow seeding PDR with re-validated invariants from a prior run of
    /// the same property when its exact fingerprint missed (RTL changed).
    bool cacheLemmaSeeding = true;
};

struct EngineStats {
    uint64_t satCalls = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    uint64_t cacheLookups = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheStores = 0;
    uint64_t cacheSeededLemmas = 0;
    double totalSeconds = 0.0;
};

} // namespace autosva::formal
