// Model-checking engine facade.
//
// Per design: bit-blast once, then discharge every obligation through the
// parallel obligation scheduler (see scheduler.hpp):
//  - safety asserts:  BMC (counterexamples), then k-induction with
//                     simple-path constraints, then PDR (proofs)
//  - liveness asserts: liveness-to-safety transformation (shadow state,
//                     Biere/Artho/Schuppan) honouring fairness assumptions,
//                     then the same pipeline -> lasso counterexamples or
//                     proofs
//  - covers:          BMC reachability; induction/PDR conclude Unreachable
//  - assumes:         safety assumes become frame constraints; liveness
//                     assumes become fairness constraints
//
// EngineOptions::jobs picks the worker-thread count; results are
// deterministic (obligation declaration order, identical verdicts and
// depths) for any value.
#pragma once

#include <vector>

#include "formal/bitblast.hpp"
#include "formal/result.hpp"
#include "formal/scheduler.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

class Engine {
public:
    explicit Engine(const ir::Design& design, EngineOptions opts = {})
        : scheduler_(design, opts) {}

    /// Checks every obligation of the design and returns per-property
    /// results in obligation declaration order.
    [[nodiscard]] std::vector<PropertyResult> checkAll() { return scheduler_.run(); }

    [[nodiscard]] const EngineStats& stats() const { return scheduler_.stats(); }
    [[nodiscard]] const BitBlast& blasted() const { return scheduler_.blasted(); }

private:
    ObligationScheduler scheduler_;
};

} // namespace autosva::formal
