// Model-checking engine driver.
//
// Per design: bit-blast once, then discharge every obligation:
//  - safety asserts:  shared-context BMC (counterexamples) then k-induction
//                     with simple-path constraints (proofs)
//  - liveness asserts: liveness-to-safety transformation (shadow state,
//                     Biere/Artho/Schuppan) honouring fairness assumptions,
//                     then the same BMC / k-induction pipeline -> lasso
//                     counterexamples or proofs
//  - covers:          BMC reachability; k-induction can conclude Unreachable
//  - assumes:         safety assumes become frame constraints; liveness
//                     assumes become fairness constraints
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

/// Counterexample in terms of the word-level design: initial register
/// state plus input values per frame. Replayable on the simulator.
struct CexTrace {
    std::unordered_map<std::string, uint64_t> initialRegs;
    std::vector<std::unordered_map<std::string, uint64_t>> inputs;
    int loopStart = -1; ///< >= 0 for liveness lassos: frame where the loop begins.

    [[nodiscard]] int length() const { return static_cast<int>(inputs.size()); }
};

enum class Status {
    Proven,      ///< Assertion holds (k-induction converged).
    Failed,      ///< Counterexample found.
    Covered,     ///< Cover target reached.
    Unreachable, ///< Cover target proven unreachable.
    Unknown,     ///< Bounds exhausted without a verdict.
    Skipped,     ///< Not applicable to formal (e.g. X-propagation checks).
};

[[nodiscard]] const char* statusName(Status s);

struct PropertyResult {
    std::string name;
    ir::Obligation::Kind kind = ir::Obligation::Kind::SafetyBad;
    Status status = Status::Unknown;
    int depth = -1;      ///< CEX length / induction k / cover depth / bound.
    double seconds = 0.0;
    CexTrace trace;      ///< Valid when Failed or Covered.

    [[nodiscard]] bool isFailure() const { return status == Status::Failed; }
};

struct EngineOptions {
    int bmcDepth = 25;          ///< Max BMC unrolling depth.
    int maxInductionK = 4;      ///< Max k for quick induction proofs (<= bmcDepth).
    int pdrMaxFrames = 60;      ///< PDR frame bound for unbounded proofs.
    uint64_t pdrMaxQueries = 1000000; ///< PDR SAT-query budget per property.
    uint64_t conflictBudget = 0; ///< Per-solve conflict cap (0 = unlimited).
    bool checkCovers = true;
    bool useLivenessToSafety = true; ///< false: liveness reported Unknown.
    bool usePdr = true;              ///< false: induction only (ablation).
};

struct EngineStats {
    uint64_t satCalls = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    double totalSeconds = 0.0;
};

class Engine {
public:
    explicit Engine(const ir::Design& design, EngineOptions opts = {});

    /// Checks every obligation of the design and returns per-property results.
    [[nodiscard]] std::vector<PropertyResult> checkAll();

    [[nodiscard]] const EngineStats& stats() const { return stats_; }
    [[nodiscard]] const BitBlast& blasted() const { return bb_; }

private:
    struct Job {
        const ir::Obligation* ob;
        AigLit bad;    ///< In the AIG named by `onLiveAig`.
        bool onLiveAig = false;
        PropertyResult result;
    };

    void buildLivenessAig();
    void runGroup(const Aig& aig, const std::vector<AigLit>& constraints,
                  std::vector<Job*>& jobs, bool coverMode);
    CexTrace extractTrace(const Aig& aig, class Unroller& un, class SatSolver& solver,
                          int frames, AigLit saveOracle);

    const ir::Design& design_;
    EngineOptions opts_;
    BitBlast bb_;
    std::vector<AigLit> constraints_;
    std::vector<AigLit> fairness_;
    Aig liveAig_;               ///< l2s-transformed copy (shares var ids with bb_.aig).
    AigLit saveOracle_ = kAigFalse;
    std::unordered_map<const ir::Obligation*, AigLit> liveBads_;
    std::unordered_map<const ir::Obligation*, AigLit> liveSeen_;
    bool liveBuilt_ = false;
    EngineStats stats_;
};

} // namespace autosva::formal
