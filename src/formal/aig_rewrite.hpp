// AIG structural rewriting — a deterministic post-bit-blast shrink pass.
//
// The bit-blaster builds the AIG through Aig::mkAnd, which already applies
// two-input structural hashing and local constant folding *at construction
// time*. What construction-time hashing cannot see is (a) one-level
// absorption/containment between an AND and its fanins' fanins, and (b)
// sequential sharing: two latches with the same next-state function and the
// same defined initial value hold the same value in every reachable state
// and can be merged. Merging latches rewrites their fanouts, which cascades
// new hashing and folding opportunities, so the pass iterates rebuilds to a
// fixpoint.
//
// Everything downstream benefits at once: the Unroller Tseitin-encodes
// fewer nodes per frame, PDR's frame solvers and cube generalization see a
// smaller latch set, and proof-cache fingerprint cones shrink. The rewrite
// is strictly deterministic — the same input AIG always yields the same
// output node numbering — which the proof cache depends on: fingerprints
// are computed on the rewritten AIG, so a nondeterministic rewrite would
// silently turn every warm rerun into a miss.
#pragma once

#include <cstddef>
#include <vector>

#include "formal/aig.hpp"
#include "formal/bitblast.hpp"

namespace autosva::formal {

struct AigRewriteResult {
    Aig aig;
    /// Old var -> new literal (possibly complemented or constant when the
    /// old node folded away). Inputs map to inputs and surviving latches to
    /// latches, both unsigned, so var-indexed maps stay representable.
    std::vector<AigLit> map;
    size_t mergedLatches = 0;
    size_t passes = 0;

    [[nodiscard]] AigLit operator()(AigLit oldLit) const {
        return map[aigVar(oldLit)] ^ (aigSign(oldLit) ? 1u : 0u);
    }
};

/// Rebuilds `input` with strashing, one-level AND rewriting, and latch
/// merging, iterated to a fixpoint. Pure function of the input graph.
[[nodiscard]] AigRewriteResult rewriteAig(const Aig& input);

/// Applies rewriteAig to a bit-blast result in place, remapping the
/// word-level node maps (bits / inputVars / latchVars) onto the new graph.
/// Returns the rewrite summary (for stats).
AigRewriteResult applyAigRewrite(BitBlast& bb);

} // namespace autosva::formal
