#include "formal/bitblast.hpp"

#include <cassert>
#include <new>

#include "formal/aig_rewrite.hpp"
#include "robust/faultinject.hpp"
#include "util/diagnostics.hpp"

namespace autosva::formal {

using ir::Design;
using ir::Node;
using ir::NodeId;
using ir::Op;

namespace {

struct Blaster {
    const Design& design;
    BitBlast out;

    explicit Blaster(const Design& d) : design(d) {}

    Aig& aig() { return out.aig; }

    std::vector<AigLit>& bitsOf(NodeId id) { return out.bits[id]; }

    static std::vector<AigLit> constBits(uint64_t value, int width) {
        std::vector<AigLit> bits(static_cast<size_t>(width));
        for (int i = 0; i < width; ++i)
            bits[static_cast<size_t>(i)] = ((value >> i) & 1) ? kAigTrue : kAigFalse;
        return bits;
    }

    // Ripple-carry addition; returns sum bits (carry-out dropped).
    std::vector<AigLit> adder(const std::vector<AigLit>& a, const std::vector<AigLit>& b,
                              AigLit carryIn) {
        std::vector<AigLit> sum(a.size());
        AigLit c = carryIn;
        for (size_t i = 0; i < a.size(); ++i) {
            AigLit axb = aig().mkXor(a[i], b[i]);
            sum[i] = aig().mkXor(axb, c);
            c = aig().mkOr(aig().mkAnd(a[i], b[i]), aig().mkAnd(c, axb));
        }
        return sum;
    }

    AigLit ult(const std::vector<AigLit>& a, const std::vector<AigLit>& b) {
        AigLit lt = kAigFalse;
        for (size_t i = 0; i < a.size(); ++i) {
            AigLit eq = aigNot(aig().mkXor(a[i], b[i]));
            lt = aig().mkOr(aig().mkAnd(aigNot(a[i]), b[i]), aig().mkAnd(eq, lt));
        }
        return lt;
    }

    AigLit equal(const std::vector<AigLit>& a, const std::vector<AigLit>& b) {
        AigLit eq = kAigTrue;
        for (size_t i = 0; i < a.size(); ++i)
            eq = aig().mkAnd(eq, aigNot(aig().mkXor(a[i], b[i])));
        return eq;
    }

    std::vector<AigLit> shifter(const std::vector<AigLit>& a, const std::vector<AigLit>& amount,
                                bool left) {
        std::vector<AigLit> cur = a;
        int w = static_cast<int>(a.size());
        // Amount bits whose weight reaches/exceeds the width zero the result.
        AigLit oversize = kAigFalse;
        for (size_t k = 0; k < amount.size(); ++k) {
            uint64_t sh = k < 63 ? (uint64_t{1} << k) : ~uint64_t{0};
            if (sh >= static_cast<uint64_t>(w)) {
                oversize = aig().mkOr(oversize, amount[k]);
                continue;
            }
            std::vector<AigLit> shifted(cur.size(), kAigFalse);
            for (int i = 0; i < w; ++i) {
                int64_t src = left ? i - static_cast<int64_t>(sh) : i + static_cast<int64_t>(sh);
                if (src >= 0 && src < w)
                    shifted[static_cast<size_t>(i)] = cur[static_cast<size_t>(src)];
            }
            std::vector<AigLit> nextBits(cur.size());
            for (int i = 0; i < w; ++i)
                nextBits[static_cast<size_t>(i)] =
                    aig().mkMux(amount[k], shifted[static_cast<size_t>(i)], cur[static_cast<size_t>(i)]);
            cur = std::move(nextBits);
        }
        if (oversize != kAigFalse) {
            for (auto& b : cur) b = aig().mkAnd(b, aigNot(oversize));
        }
        return cur;
    }

    void blastNode(NodeId id) {
        const Node& n = design.node(id);
        int w = n.width;
        auto in = [&](size_t i) -> const std::vector<AigLit>& { return out.bits.at(n.ops[i]); };
        std::vector<AigLit> bits;

        switch (n.op) {
        case Op::Const:
            bits = constBits(n.cval, w);
            break;
        case Op::Input: {
            std::vector<uint32_t> vars;
            bits.reserve(static_cast<size_t>(w));
            for (int i = 0; i < w; ++i) {
                AigLit l = aig().mkInput(n.name + "[" + std::to_string(i) + "]");
                vars.push_back(aigVar(l));
                bits.push_back(l);
            }
            out.inputVars[id] = std::move(vars);
            break;
        }
        case Op::Reg:
            bits = out.bits.at(id); // Latches pre-created.
            break;
        case Op::Buf:
            bits = in(0);
            break;
        case Op::Not: {
            bits = in(0);
            for (auto& b : bits) b = aigNot(b);
            break;
        }
        case Op::And:
        case Op::Or:
        case Op::Xor: {
            const auto& a = in(0);
            const auto& b = in(1);
            bits.resize(static_cast<size_t>(w));
            for (int i = 0; i < w; ++i) {
                size_t si = static_cast<size_t>(i);
                if (n.op == Op::And)
                    bits[si] = aig().mkAnd(a[si], b[si]);
                else if (n.op == Op::Or)
                    bits[si] = aig().mkOr(a[si], b[si]);
                else
                    bits[si] = aig().mkXor(a[si], b[si]);
            }
            break;
        }
        case Op::Add:
            bits = adder(in(0), in(1), kAigFalse);
            break;
        case Op::Sub: {
            std::vector<AigLit> nb = in(1);
            for (auto& b : nb) b = aigNot(b);
            bits = adder(in(0), nb, kAigTrue);
            break;
        }
        case Op::Mul: {
            const auto& a = in(0);
            const auto& b = in(1);
            bits = constBits(0, w);
            for (int i = 0; i < w; ++i) {
                // Partial product: (a << i) masked by b[i].
                std::vector<AigLit> pp(static_cast<size_t>(w), kAigFalse);
                for (int j = 0; j + i < w; ++j)
                    pp[static_cast<size_t>(j + i)] =
                        aig().mkAnd(a[static_cast<size_t>(j)], b[static_cast<size_t>(i)]);
                bits = adder(bits, pp, kAigFalse);
            }
            break;
        }
        case Op::Div:
        case Op::Mod:
            throw util::FrontendError({}, "bit-blasting non-constant division is not supported");
        case Op::Eq:
            bits = {equal(in(0), in(1))};
            break;
        case Op::Ne:
            bits = {aigNot(equal(in(0), in(1)))};
            break;
        case Op::Ult:
            bits = {ult(in(0), in(1))};
            break;
        case Op::Ule:
            bits = {aigNot(ult(in(1), in(0)))};
            break;
        case Op::Shl:
        case Op::Shr: {
            const auto& amount = in(1);
            // Amounts >= width force zero; cover by using enough stages.
            bits = shifter(in(0), amount, n.op == Op::Shl);
            // If any amount bit at position >= log2(64*2) is set, result is 0.
            break;
        }
        case Op::Mux: {
            AigLit sel = in(0)[0];
            const auto& t = in(1);
            const auto& e = in(2);
            bits.resize(static_cast<size_t>(w));
            for (int i = 0; i < w; ++i)
                bits[static_cast<size_t>(i)] =
                    aig().mkMux(sel, t[static_cast<size_t>(i)], e[static_cast<size_t>(i)]);
            break;
        }
        case Op::Concat: {
            // Operands are MSB-first; bits are LSB-first.
            for (auto it = n.ops.rbegin(); it != n.ops.rend(); ++it) {
                const auto& part = out.bits.at(*it);
                bits.insert(bits.end(), part.begin(), part.end());
            }
            break;
        }
        case Op::Slice: {
            const auto& a = in(0);
            for (int i = 0; i < w; ++i) bits.push_back(a[static_cast<size_t>(n.lo + i)]);
            break;
        }
        case Op::ZExt: {
            bits = in(0);
            bits.resize(static_cast<size_t>(w), kAigFalse);
            break;
        }
        case Op::RedAnd: {
            AigLit acc = kAigTrue;
            for (AigLit b : in(0)) acc = aig().mkAnd(acc, b);
            bits = {acc};
            break;
        }
        case Op::RedOr: {
            AigLit acc = kAigFalse;
            for (AigLit b : in(0)) acc = aig().mkOr(acc, b);
            bits = {acc};
            break;
        }
        case Op::RedXor: {
            AigLit acc = kAigFalse;
            for (AigLit b : in(0)) acc = aig().mkXor(acc, b);
            bits = {acc};
            break;
        }
        case Op::IsUnknown:
            bits = {kAigFalse}; // Formal is 2-state.
            break;
        }

        assert(static_cast<int>(bits.size()) == w);
        out.bits[id] = std::move(bits);
    }
};

} // namespace

BitBlast bitblast(const Design& design) {
    // Fault site: the netlist build is the engine's biggest up-front
    // allocation; model it running out of memory before any state exists.
    if (robust::faultFire(robust::FaultSite::BitblastAlloc)) throw std::bad_alloc();
    Blaster blaster(design);

    // Pre-create latches for all registers (they may appear in feedback).
    for (NodeId r : design.regs()) {
        const Node& n = design.node(r);
        std::vector<AigLit> bits;
        std::vector<uint32_t> vars;
        for (int i = 0; i < n.width; ++i) {
            int init = n.hasInit ? static_cast<int>((n.initValue >> i) & 1) : -1;
            AigLit l = blaster.aig().mkLatch(init, n.name + "[" + std::to_string(i) + "]");
            vars.push_back(aigVar(l));
            bits.push_back(l);
        }
        blaster.out.bits[r] = std::move(bits);
        blaster.out.latchVars[r] = std::move(vars);
    }

    for (NodeId id : design.topoOrder()) {
        if (design.node(id).op == Op::Reg) continue; // Already created.
        blaster.blastNode(id);
    }

    // Wire latch next-state functions.
    for (NodeId r : design.regs()) {
        const Node& n = design.node(r);
        const auto& stateBits = blaster.out.bits.at(r);
        const auto& nextBits = blaster.out.bits.at(n.next);
        for (int i = 0; i < n.width; ++i)
            blaster.aig().setLatchNext(stateBits[static_cast<size_t>(i)],
                                       nextBits[static_cast<size_t>(i)]);
    }

    return std::move(blaster.out);
}

BitBlast bitblast(const ir::Design& design, bool rewrite) {
    BitBlast bb = bitblast(design);
    if (rewrite) applyAigRewrite(bb);
    return bb;
}

} // namespace autosva::formal
