#include "formal/aig.hpp"

#include <algorithm>
#include <cassert>

namespace autosva::formal {

Aig::Aig() {
    // Var 0: constant false.
    newVar(VarKind::Const);
}

uint32_t Aig::newVar(VarKind kind) {
    kinds_.push_back(kind);
    fanin0_.push_back(kAigFalse);
    fanin1_.push_back(kAigFalse);
    next_.push_back(kAigFalse);
    init_.push_back(0);
    names_.emplace_back();
    return static_cast<uint32_t>(kinds_.size() - 1);
}

AigLit Aig::mkInput(std::string name) {
    uint32_t var = newVar(VarKind::Input);
    names_[var] = std::move(name);
    inputs_.push_back(var);
    return aigMkLit(var);
}

AigLit Aig::mkLatch(int init, std::string name) {
    uint32_t var = newVar(VarKind::Latch);
    init_[var] = init;
    names_[var] = std::move(name);
    latches_.push_back(var);
    return aigMkLit(var);
}

void Aig::setLatchNext(AigLit latchLit, AigLit next) {
    assert(!aigSign(latchLit) && kinds_[aigVar(latchLit)] == VarKind::Latch);
    next_[aigVar(latchLit)] = next;
}

AigLit Aig::mkAnd(AigLit a, AigLit b) {
    if (a > b) std::swap(a, b);
    if (a == kAigFalse) return kAigFalse;
    if (a == kAigTrue) return b;
    if (a == b) return a;
    if (a == aigNot(b)) return kAigFalse;
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto it = strash_.find(key);
    if (it != strash_.end()) return aigMkLit(it->second);
    uint32_t var = newVar(VarKind::And);
    fanin0_[var] = a;
    fanin1_[var] = b;
    strash_.emplace(key, var);
    ++numAnds_;
    return aigMkLit(var);
}

AigLit Aig::mkXor(AigLit a, AigLit b) {
    // a^b = (a|b) & !(a&b)
    return mkAnd(mkOr(a, b), aigNot(mkAnd(a, b)));
}

AigLit Aig::mkMux(AigLit sel, AigLit t, AigLit e) {
    if (t == e) return t;
    return mkOr(mkAnd(sel, t), mkAnd(aigNot(sel), e));
}

AigLit Aig::mkAndN(const std::vector<AigLit>& lits) {
    AigLit acc = kAigTrue;
    for (AigLit l : lits) acc = mkAnd(acc, l);
    return acc;
}

AigLit Aig::mkOrN(const std::vector<AigLit>& lits) {
    AigLit acc = kAigFalse;
    for (AigLit l : lits) acc = mkOr(acc, l);
    return acc;
}

} // namespace autosva::formal
