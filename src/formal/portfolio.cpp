#include "formal/portfolio.hpp"

#include <algorithm>

namespace autosva::formal {

std::vector<PdrLegSpec> pdrLegLadder(const EngineOptions& opts) {
    std::vector<PdrLegSpec> ladder;
    int hunters = std::max(0, opts.portfolioLegs);
    ladder.reserve(static_cast<size_t>(1 + hunters));
    // Leg 0 is the canonical pdrCheck policy verbatim: rotation 0 plus the
    // configured warm-context retry schedule at rotations 1..retryReorders.
    // Under the global budget pool the retry ladder is off for leg 0:
    // barrier-driven refills extend the same warm search trajectory (pure
    // budget extension, no rotation — a monolithic search sliced across
    // refills), and rotation diversity is the hunter legs' job instead.
    ladder.push_back({0, opts.budgetPoolQueries != 0 ? 0 : opts.pdrRetryReorders});
    // Hunter legs start where the canonical schedule ends, so no two legs
    // ever search the same drop order.
    for (int i = 1; i <= hunters; ++i)
        ladder.push_back({static_cast<uint64_t>(opts.pdrRetryReorders) + static_cast<uint64_t>(i),
                          0});
    return ladder;
}

BudgetPool::BudgetPool(uint64_t total, size_t eligibleJobs)
    : grant_(eligibleJobs ? total / eligibleJobs : total) {
    // Every eligible obligation's grant is reserved up front; the division
    // remainder is immediately drawable.
    pool_.store(static_cast<int64_t>(total) -
                    static_cast<int64_t>(grant_) * static_cast<int64_t>(eligibleJobs),
                std::memory_order_relaxed);
}

void BudgetPool::settle(uint64_t granted, uint64_t used) {
    pool_.fetch_add(static_cast<int64_t>(granted) - static_cast<int64_t>(used),
                    std::memory_order_relaxed);
    if (granted > used) returned_.fetch_add(granted - used, std::memory_order_relaxed);
}

uint64_t BudgetPool::draw(uint64_t want) {
    int64_t avail = pool_.load(std::memory_order_relaxed);
    if (avail <= 0 || want == 0) return 0;
    uint64_t take = std::min(want, static_cast<uint64_t>(avail));
    pool_.fetch_sub(static_cast<int64_t>(take), std::memory_order_relaxed);
    ++refills_;
    return take;
}

JobRace::JobRace(size_t numLegs) : lowestDecisive_(numLegs), remaining_(numLegs) {
    slots_.reserve(numLegs);
    for (size_t i = 0; i < numLegs; ++i) slots_.push_back(std::make_unique<Slot>());
}

bool JobRace::deposit(size_t leg, PdrResult&& result, bool ran) {
    Slot& s = *slots_[leg];
    s.ran = ran;
    bool decisive = ran && !result.interrupted && result.kind != PdrResult::Kind::Unknown;
    s.result = std::move(result);
    if (decisive) {
        // Lower the first-decisive watermark, then cancel every rung above
        // it. Only rungs ABOVE: a lower leg still searching might turn out
        // decisive too, and leg order — not finish order — decides
        // adoption.
        size_t cur = lowestDecisive_.load(std::memory_order_relaxed);
        while (leg < cur &&
               !lowestDecisive_.compare_exchange_weak(cur, leg, std::memory_order_relaxed)) {
        }
        size_t low = lowestDecisive_.load(std::memory_order_relaxed);
        for (size_t i = low + 1; i < slots_.size(); ++i)
            slots_[i]->stop.store(true, std::memory_order_relaxed);
    }
    // acq_rel: the final depositor's adopt()/counters read every other
    // leg's slot writes.
    return remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

size_t JobRace::adoptedLeg() const {
    for (size_t i = 0; i < slots_.size(); ++i) {
        const Slot& s = *slots_[i];
        if (s.ran && !s.result.interrupted && s.result.kind != PdrResult::Kind::Unknown)
            return i;
    }
    return 0; // All exhausted: leg 0's Unknown is the canonical outcome.
}

PdrResult JobRace::takeAdopted() { return std::move(slots_[adoptedLeg()]->result); }

uint64_t JobRace::cancelledLegs() const {
    uint64_t n = 0;
    for (const auto& s : slots_)
        if (!s->ran || s->result.interrupted) ++n;
    return n;
}

uint64_t JobRace::launchedLegs() const {
    uint64_t n = 0;
    for (const auto& s : slots_)
        if (s->ran) ++n;
    return n;
}

uint64_t JobRace::chargedQueries() const {
    // The sequential ladder walk runs legs 0..first-decisive; the race
    // charges exactly those, however the actual schedule interleaved.
    // Cancelled or raced-past rungs did real SAT work but charge nothing —
    // the pool tracks the deterministic contract, not wall-clock effort.
    // When NO leg is decisive the job heads for the refill pass, which
    // resumes leg 0 alone: the hunters were pure speculation, so only
    // leg 0 charges (in both walk orders — the charge is a function of
    // the leg results, never of scheduling).
    size_t limit = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
        const Slot& s = *slots_[i];
        if (s.ran && !s.result.interrupted && s.result.kind != PdrResult::Kind::Unknown) {
            limit = i;
            break;
        }
    }
    uint64_t sum = 0;
    for (size_t i = 0; i <= limit; ++i)
        if (slots_[i]->ran && !slots_[i]->result.interrupted) sum += slots_[i]->result.queries;
    return sum;
}

} // namespace autosva::formal
