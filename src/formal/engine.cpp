#include "formal/engine.hpp"

#include <cstdlib>

namespace autosva::formal {

bool defaultAigRewrite() {
    // Computed once: the default must not flip mid-run if the environment
    // changes (EngineOptions are compared and digested).
    static const bool enabled = [] {
        const char* env = std::getenv("AUTOSVA_NO_AIG_REWRITE");
        return env == nullptr || *env == '\0';
    }();
    return enabled;
}

bool defaultSatPre() {
    // Same once-only contract as defaultAigRewrite.
    static const bool enabled = [] {
        const char* env = std::getenv("AUTOSVA_NO_SAT_PRE");
        return env == nullptr || *env == '\0';
    }();
    return enabled;
}

const char* statusName(Status s) {
    switch (s) {
    case Status::Proven: return "proven";
    case Status::Failed: return "cex";
    case Status::Covered: return "covered";
    case Status::Unreachable: return "unreachable";
    case Status::Unknown: return "unknown";
    case Status::Skipped: return "skipped";
    }
    return "?";
}

const char* unknownReasonName(UnknownReason r) {
    switch (r) {
    case UnknownReason::None: return "none";
    case UnknownReason::Timeout: return "timeout";
    case UnknownReason::RunBudget: return "run-budget";
    case UnknownReason::Interrupted: return "interrupted";
    }
    return "?";
}

} // namespace autosva::formal
