#include "formal/engine.hpp"

namespace autosva::formal {

const char* statusName(Status s) {
    switch (s) {
    case Status::Proven: return "proven";
    case Status::Failed: return "cex";
    case Status::Covered: return "covered";
    case Status::Unreachable: return "unreachable";
    case Status::Unknown: return "unknown";
    case Status::Skipped: return "skipped";
    }
    return "?";
}

} // namespace autosva::formal
