#include "formal/engine.hpp"

#include <algorithm>
#include <cassert>

#include "formal/pdr.hpp"
#include "formal/sat.hpp"
#include "formal/unroll.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {

const char* statusName(Status s) {
    switch (s) {
    case Status::Proven: return "proven";
    case Status::Failed: return "cex";
    case Status::Covered: return "covered";
    case Status::Unreachable: return "unreachable";
    case Status::Unknown: return "unknown";
    case Status::Skipped: return "skipped";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const ir::Design& design, EngineOptions opts)
    : design_(design), opts_(opts), bb_(bitblast(design)) {
    opts_.maxInductionK = std::min(opts_.maxInductionK, opts_.bmcDepth);
    for (const auto& ob : design.obligations()) {
        if (ob.xprop) continue;
        if (ob.kind == ir::Obligation::Kind::Constraint)
            constraints_.push_back(bb_.lit(ob.net));
        else if (ob.kind == ir::Obligation::Kind::Fairness)
            fairness_.push_back(bb_.lit(ob.net));
    }
}

void Engine::buildLivenessAig() {
    if (liveBuilt_) return;
    liveBuilt_ = true;
    liveAig_ = bb_.aig; // Copy preserves var numbering; original lits stay valid.
    Aig& a = liveAig_;

    saveOracle_ = a.mkInput("__l2s_save");
    AigLit saved = a.mkLatch(0, "__l2s_saved");
    AigLit saveNow = a.mkAnd(saveOracle_, aigNot(saved));
    AigLit savedNext = a.mkOr(saved, saveNow);
    a.setLatchNext(saved, savedNext);

    // Shadow copy of every original latch, captured at the save point.
    std::vector<uint32_t> originalLatches = bb_.aig.latches();
    AigLit stateEq = kAigTrue;
    for (uint32_t lv : originalLatches) {
        AigLit latch = aigMkLit(lv);
        AigLit shadow = a.mkLatch(-1, "__l2s_shadow_" + std::to_string(lv));
        a.setLatchNext(shadow, a.mkMux(saveNow, latch, shadow));
        stateEq = a.mkAnd(stateEq, aigNot(a.mkXor(latch, shadow)));
    }
    AigLit loopClosed = a.mkAnd(saved, stateEq);

    // Fairness trackers: each assumed-fair signal must occur inside the loop.
    AigLit fairAll = kAigTrue;
    for (AigLit f : fairness_) {
        AigLit seen = a.mkLatch(0, "__l2s_fair");
        a.setLatchNext(seen, a.mkAnd(savedNext, a.mkOr(seen, f)));
        fairAll = a.mkAnd(fairAll, seen);
    }

    // Per-justice-obligation "seen" trackers and bad nets.
    for (const auto& ob : design_.obligations()) {
        if (ob.xprop || ob.kind != ir::Obligation::Kind::Justice) continue;
        AigLit j = bb_.lit(ob.net);
        AigLit seen = a.mkLatch(0, "__l2s_just_" + ob.name);
        a.setLatchNext(seen, a.mkAnd(savedNext, a.mkOr(seen, j)));
        // Violation: loop closed, all fairness seen, justice never seen.
        liveBads_[&ob] = a.mkAnd(a.mkAnd(loopClosed, fairAll), aigNot(seen));
        liveSeen_[&ob] = seen;
    }
}

CexTrace Engine::extractTrace(const Aig& aig, Unroller& un, SatSolver& solver, int frames,
                              AigLit saveOracle) {
    CexTrace trace;
    // Initial register values.
    for (const auto& [node, vars] : bb_.latchVars) {
        uint64_t value = 0;
        for (size_t i = 0; i < vars.size(); ++i) {
            SatLit l = un.peek(0, aigMkLit(vars[i]));
            bool bit = false;
            if (l != Unroller::kUnset) bit = satSign(l) ? !solver.modelValue(satVar(l))
                                                        : solver.modelValue(satVar(l));
            if (bit) value |= uint64_t{1} << i;
        }
        trace.initialRegs[design_.node(node).name] = value;
    }
    // Inputs per frame.
    for (int f = 0; f <= frames; ++f) {
        std::unordered_map<std::string, uint64_t> frame;
        for (const auto& [node, vars] : bb_.inputVars) {
            uint64_t value = 0;
            for (size_t i = 0; i < vars.size(); ++i) {
                SatLit l = un.peek(f, aigMkLit(vars[i]));
                bool bit = false;
                if (l != Unroller::kUnset)
                    bit = satSign(l) ? !solver.modelValue(satVar(l))
                                     : solver.modelValue(satVar(l));
                if (bit) value |= uint64_t{1} << i;
            }
            frame[design_.node(node).name] = value;
        }
        trace.inputs.push_back(std::move(frame));
    }
    // Liveness lasso: locate the save point.
    if (saveOracle != kAigFalse) {
        for (int f = 0; f <= frames; ++f) {
            SatLit l = un.peek(f, saveOracle);
            if (l == Unroller::kUnset) continue;
            bool bit = satSign(l) ? !solver.modelValue(satVar(l)) : solver.modelValue(satVar(l));
            if (bit) {
                trace.loopStart = f;
                break;
            }
        }
    }
    (void)aig;
    return trace;
}

void Engine::runGroup(const Aig& aig, const std::vector<AigLit>& constraints,
                      std::vector<Job*>& jobs, bool coverMode) {
    if (jobs.empty()) return;

    // ---- Phase 1: shared BMC from the initial state. ----
    {
        SatSolver solver;
        solver.setConflictBudget(opts_.conflictBudget);
        Unroller un(aig, solver, Unroller::Init::Reset);
        size_t unresolved = jobs.size();
        for (int k = 0; k <= opts_.bmcDepth && unresolved > 0; ++k) {
            for (AigLit c : constraints) solver.addUnit(un.lit(k, c));
            for (Job* job : jobs) {
                if (job->result.status != Status::Unknown) continue;
                util::Stopwatch sw;
                SatLit bad = un.lit(k, job->bad);
                SatResult r = solver.solve({bad});
                ++stats_.satCalls;
                job->result.seconds += sw.seconds();
                if (r == SatResult::Sat) {
                    job->result.status = coverMode ? Status::Covered : Status::Failed;
                    job->result.depth = k;
                    job->result.trace = extractTrace(aig, un, solver, k,
                                                     job->onLiveAig ? saveOracle_ : kAigFalse);
                    --unresolved;
                } else if (r == SatResult::Unsat) {
                    solver.addUnit(satNeg(bad)); // Strengthen deeper frames.
                } else {
                    // Budget exhausted: leave Unknown, stop refining this job.
                    job->result.depth = k;
                    --unresolved;
                }
            }
        }
        stats_.conflicts += solver.conflicts();
        stats_.propagations += solver.propagations();
    }

    // ---- Phase 2: k-induction for still-unknown jobs. ----
    bool anyOpen = std::any_of(jobs.begin(), jobs.end(), [](Job* j) {
        return j->result.status == Status::Unknown;
    });
    if (!anyOpen) return;

    for (int k = 1; k <= opts_.maxInductionK; ++k) {
        SatSolver solver;
        solver.setConflictBudget(opts_.conflictBudget);
        Unroller un(aig, solver, Unroller::Init::Free);
        // Constraints hold in all frames 0..k.
        for (int f = 0; f <= k; ++f)
            for (AigLit c : constraints) solver.addUnit(un.lit(f, c));
        // Simple-path: all states pairwise distinct (makes induction complete).
        const auto& latches = aig.latches();
        for (int i = 0; i <= k; ++i) {
            for (int j = i + 1; j <= k; ++j) {
                std::vector<SatLit> diff;
                diff.reserve(latches.size());
                for (uint32_t lv : latches) {
                    SatLit a = un.lit(i, aigMkLit(lv));
                    SatLit b = un.lit(j, aigMkLit(lv));
                    SatLit d = mkSatLit(solver.newVar());
                    // d <-> a xor b
                    solver.addTernary(satNeg(d), a, b);
                    solver.addTernary(satNeg(d), satNeg(a), satNeg(b));
                    solver.addTernary(d, satNeg(a), b);
                    solver.addTernary(d, a, satNeg(b));
                    diff.push_back(d);
                }
                solver.addClause(std::move(diff));
            }
        }
        bool progress = false;
        for (Job* job : jobs) {
            if (job->result.status != Status::Unknown) continue;
            util::Stopwatch sw;
            std::vector<SatLit> assumptions;
            for (int f = 0; f < k; ++f) assumptions.push_back(satNeg(un.lit(f, job->bad)));
            assumptions.push_back(un.lit(k, job->bad));
            SatResult r = solver.solve(assumptions);
            ++stats_.satCalls;
            job->result.seconds += sw.seconds();
            if (r == SatResult::Unsat) {
                job->result.status = coverMode ? Status::Unreachable : Status::Proven;
                job->result.depth = k;
                progress = true;
            }
        }
        stats_.conflicts += solver.conflicts();
        stats_.propagations += solver.propagations();
        bool open = std::any_of(jobs.begin(), jobs.end(), [](Job* j) {
            return j->result.status == Status::Unknown;
        });
        if (!open) break;
        (void)progress;
    }
    // ---- Phase 3: PDR for anything k-induction could not prove. ----
    // Liveness jobs chain lemmas: once a justice obligation is proven, every
    // legal lasso must contain it, so its loop-scope "seen" tracker becomes a
    // fairness fact for the remaining (later) obligations. The order is
    // fixed, so the reasoning stays acyclic and sound.
    AigLit provenSeen = kAigTrue;
    Aig* mutableAig = jobs.front()->onLiveAig ? &liveAig_ : nullptr;
    for (Job* job : jobs) {
        if (!opts_.usePdr) break;
        if (job->result.status != Status::Unknown) continue;
        util::Stopwatch sw;
        PdrOptions pdrOpts;
        pdrOpts.maxFrames = opts_.pdrMaxFrames;
        pdrOpts.maxQueries = opts_.pdrMaxQueries;
        AigLit effectiveBad = job->bad;
        if (mutableAig && provenSeen != kAigTrue)
            effectiveBad = mutableAig->mkAnd(effectiveBad, provenSeen);
        PdrResult pr = pdrCheck(aig, effectiveBad, constraints, pdrOpts);
        job->result.seconds += sw.seconds();
        stats_.satCalls += pr.queries;
        switch (pr.kind) {
        case PdrResult::Kind::Proven:
            job->result.status = coverMode ? Status::Unreachable : Status::Proven;
            job->result.depth = pr.depth;
            if (mutableAig) {
                auto it = liveSeen_.find(job->ob);
                if (it != liveSeen_.end())
                    provenSeen = mutableAig->mkAnd(provenSeen, it->second);
            }
            break;
        case PdrResult::Kind::Cex: {
            // Deep counterexample (beyond the BMC bound): re-run a targeted
            // BMC at the depth bound PDR reported to extract the trace.
            SatSolver solver;
            Unroller un(aig, solver, Unroller::Init::Reset);
            bool found = false;
            for (int k = 0; k <= pr.depth + 2 && !found; ++k) {
                for (AigLit c : constraints) solver.addUnit(un.lit(k, c));
                SatLit bad = un.lit(k, job->bad);
                if (solver.solve({bad}) == SatResult::Sat) {
                    job->result.status = coverMode ? Status::Covered : Status::Failed;
                    job->result.depth = k;
                    job->result.trace = extractTrace(aig, un, solver, k,
                                                     job->onLiveAig ? saveOracle_ : kAigFalse);
                    found = true;
                } else {
                    solver.addUnit(satNeg(bad));
                }
            }
            if (!found) job->result.depth = pr.depth; // Stays Unknown.
            break;
        }
        case PdrResult::Kind::Unknown:
            job->result.depth = pr.depth;
            break;
        }
    }

    // Anything left records the bound we reached.
    for (Job* job : jobs) {
        if (job->result.status == Status::Unknown && job->result.depth < 0)
            job->result.depth = opts_.bmcDepth;
    }
}

std::vector<PropertyResult> Engine::checkAll() {
    util::Stopwatch total;
    std::vector<Job> jobs;
    jobs.reserve(design_.obligations().size());

    bool needLive = false;
    for (const auto& ob : design_.obligations()) {
        Job job;
        job.ob = &ob;
        job.result.name = ob.name;
        job.result.kind = ob.kind;
        switch (ob.kind) {
        case ir::Obligation::Kind::SafetyBad:
            if (ob.xprop) {
                job.result.status = Status::Skipped;
            } else {
                job.bad = bb_.lit(ob.net);
            }
            break;
        case ir::Obligation::Kind::Justice:
            if (opts_.useLivenessToSafety) {
                needLive = true;
                job.onLiveAig = true;
            } else {
                job.result.status = Status::Skipped;
            }
            break;
        case ir::Obligation::Kind::Cover:
            if (opts_.checkCovers) {
                job.bad = bb_.lit(ob.net);
            } else {
                job.result.status = Status::Skipped;
            }
            break;
        case ir::Obligation::Kind::Constraint:
        case ir::Obligation::Kind::Fairness:
            job.result.status = Status::Skipped; // Used as environment, not checked.
            break;
        }
        jobs.push_back(std::move(job));
    }

    if (needLive) {
        buildLivenessAig();
        for (auto& job : jobs) {
            if (job.onLiveAig && job.result.status == Status::Unknown)
                job.bad = liveBads_.at(job.ob);
        }
    }

    std::vector<Job*> safetyJobs, liveJobs, coverJobs;
    for (auto& job : jobs) {
        if (job.result.status != Status::Unknown) continue;
        switch (job.ob->kind) {
        case ir::Obligation::Kind::SafetyBad: safetyJobs.push_back(&job); break;
        case ir::Obligation::Kind::Justice: liveJobs.push_back(&job); break;
        case ir::Obligation::Kind::Cover: coverJobs.push_back(&job); break;
        default: break;
        }
    }

    runGroup(bb_.aig, constraints_, safetyJobs, /*coverMode=*/false);

    // Proven safety assertions are invariants of the reachable states; feed
    // them to the liveness group as constraints. This prunes the unreachable
    // lasso states that otherwise dominate the liveness proofs (the same
    // lemma-reuse commercial engines apply).
    std::vector<AigLit> liveConstraints = constraints_;
    for (const Job* job : safetyJobs) {
        if (job->result.status == Status::Proven && !job->onLiveAig)
            liveConstraints.push_back(aigNot(job->bad));
    }
    if (!liveJobs.empty()) runGroup(liveAig_, liveConstraints, liveJobs, /*coverMode=*/false);
    runGroup(bb_.aig, constraints_, coverJobs, /*coverMode=*/true);

    stats_.totalSeconds = total.seconds();
    std::vector<PropertyResult> results;
    results.reserve(jobs.size());
    for (auto& job : jobs) results.push_back(std::move(job.result));
    return results;
}

} // namespace autosva::formal
