// Time-frame expansion of an AIG into a SAT solver (Tseitin encoding with
// latch aliasing between frames). Shared by BMC, k-induction, and PDR.
#pragma once

#include <utility>
#include <vector>

#include "formal/aig.hpp"
#include "formal/sat.hpp"

namespace autosva::formal {

class Unroller {
public:
    enum class Init {
        Reset, ///< Frame-0 latches take their defined initial values.
        Free,  ///< Frame-0 latches unconstrained (induction / PDR states).
    };

    Unroller(const Aig& aig, SatSolver& solver, Init init)
        : aig_(aig), solver_(solver), init_(init) {
        falseLit_ = mkSatLit(solver_.newVar());
        solver_.addUnit(satNeg(falseLit_));
    }

    static constexpr SatLit kUnset = -1;

    /// SAT literal of AIG literal `l` at time frame `frame` (materializes
    /// the Tseitin cone on demand).
    SatLit lit(int frame, AigLit l) {
        SatLit base = varLit(frame, aigVar(l));
        return aigSign(l) ? satNeg(base) : base;
    }

    /// Returns the mapped literal if already materialized, else kUnset.
    [[nodiscard]] SatLit peek(int frame, AigLit l) const {
        if (frame < 0 || frame >= static_cast<int>(map_.size())) return kUnset;
        SatLit base = map_[static_cast<size_t>(frame)][aigVar(l)];
        if (base == kUnset) return kUnset;
        return aigSign(l) ? satNeg(base) : base;
    }

    /// Freezes the frame-frontier variables of `frame` against variable
    /// elimination: every materialized latch slot plus the latch-next root
    /// cones feeding frame+1. These are exactly the variables a later
    /// ensureFrame / strengthening step will reference again, so melting
    /// them into resolvents would only force reactivation churn. Strategies
    /// call this for their deepest frame before SatSolver::preprocess().
    void freezeFrontier(int frame) {
        if (frame < 0 || frame >= static_cast<int>(map_.size())) return;
        const auto& slots = map_[static_cast<size_t>(frame)];
        for (uint32_t v = 0; v < aig_.numVars(); ++v) {
            if (slots[v] == kUnset) continue;
            if (aig_.kind(v) == Aig::VarKind::Latch) {
                solver_.freeze(satVar(slots[v]));
                SatLit nxt = map_[static_cast<size_t>(frame)][aigVar(aig_.latchNext(v))];
                if (nxt != kUnset) solver_.freeze(satVar(nxt));
            }
        }
    }

    [[nodiscard]] const Aig& aig() const { return aig_; }
    [[nodiscard]] int numFrames() const { return static_cast<int>(map_.size()); }
    /// Root cones that actually had to be encoded (lit() cache misses) —
    /// on a shared Unroller this stops growing once the cone is warm, which
    /// is the reuse win the --stats counters expose.
    [[nodiscard]] uint64_t conesMaterialized() const { return conesMaterialized_; }

private:
    SatLit varLit(int frame, uint32_t rootVar) {
        ensureFrame(frame);
        if (map_[static_cast<size_t>(frame)][rootVar] != kUnset)
            return map_[static_cast<size_t>(frame)][rootVar];
        ++conesMaterialized_;

        std::vector<std::pair<int, uint32_t>> stack{{frame, rootVar}};
        while (!stack.empty()) {
            auto [f, v] = stack.back();
            ensureFrame(f);
            auto& slot = map_[static_cast<size_t>(f)][v];
            if (slot != kUnset) {
                stack.pop_back();
                continue;
            }
            switch (aig_.kind(v)) {
            case Aig::VarKind::Const:
                slot = falseLit_;
                stack.pop_back();
                break;
            case Aig::VarKind::Input:
                slot = mkSatLit(solver_.newVar());
                stack.pop_back();
                break;
            case Aig::VarKind::Latch: {
                if (f == 0) {
                    slot = mkSatLit(solver_.newVar());
                    if (init_ == Init::Reset && aig_.latchInit(v) >= 0)
                        solver_.addUnit(aig_.latchInit(v) ? slot : satNeg(slot));
                    stack.pop_back();
                    break;
                }
                AigLit nxt = aig_.latchNext(v);
                SatLit sub = map_[static_cast<size_t>(f - 1)][aigVar(nxt)];
                if (sub == kUnset) {
                    stack.emplace_back(f - 1, aigVar(nxt));
                    break;
                }
                slot = aigSign(nxt) ? satNeg(sub) : sub;
                stack.pop_back();
                break;
            }
            case Aig::VarKind::And: {
                AigLit f0 = aig_.fanin0(v);
                AigLit f1 = aig_.fanin1(v);
                SatLit a = map_[static_cast<size_t>(f)][aigVar(f0)];
                SatLit b = map_[static_cast<size_t>(f)][aigVar(f1)];
                if (a == kUnset) {
                    stack.emplace_back(f, aigVar(f0));
                    break;
                }
                if (b == kUnset) {
                    stack.emplace_back(f, aigVar(f1));
                    break;
                }
                SatLit la = aigSign(f0) ? satNeg(a) : a;
                SatLit lb = aigSign(f1) ? satNeg(b) : b;
                SatLit c = mkSatLit(solver_.newVar());
                solver_.addBinary(satNeg(c), la);
                solver_.addBinary(satNeg(c), lb);
                solver_.addTernary(c, satNeg(la), satNeg(lb));
                slot = c;
                stack.pop_back();
                break;
            }
            }
        }
        return map_[static_cast<size_t>(frame)][rootVar];
    }

    void ensureFrame(int frame) {
        while (static_cast<int>(map_.size()) <= frame)
            map_.emplace_back(aig_.numVars(), kUnset);
    }

    const Aig& aig_;
    SatSolver& solver_;
    Init init_;
    SatLit falseLit_;
    uint64_t conesMaterialized_ = 0;
    std::vector<std::vector<SatLit>> map_;
};

} // namespace autosva::formal
