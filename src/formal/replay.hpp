// Replays a formal counterexample trace on the cycle simulator to obtain
// full waveforms (every named signal per cycle), e.g. for VCD dumping.
#pragma once

#include <vector>

#include "formal/result.hpp"
#include "sim/simulator.hpp"

namespace autosva::formal {

/// Replays `trace` on `design` with two-state semantics matching the formal
/// engine. Returns one TraceCycle per frame.
[[nodiscard]] std::vector<sim::TraceCycle> replayTrace(const ir::Design& design,
                                                       const CexTrace& trace);

/// Renders a compact human-readable table of selected signals over the
/// trace (used by example programs and failure reports).
[[nodiscard]] std::string formatTrace(const ir::Design& design, const CexTrace& trace,
                                      const std::vector<std::string>& signalNames);

} // namespace autosva::formal
