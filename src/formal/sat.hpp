// From-scratch CDCL SAT solver: two-watched literals, 1UIP conflict
// learning, VSIDS decision heuristic with phase saving, Luby restarts and
// LBD-based learnt-clause reduction. Supports incremental solving under
// assumptions, which the BMC / k-induction engines rely on.
//
// On top of the search core sits a frozen-aware simplification layer
// (SatELite-style) for circuit-derived CNF:
//  - preprocess(): bounded variable elimination plus subsumption and
//    self-subsuming resolution at encode checkpoints, with a
//    model-reconstruction stack so modelValue() still answers on
//    eliminated variables;
//  - inprocessing: clause vivification and failed-literal probing at
//    restart boundaries of long solves, polling the cancellation tokens.
// Callers freeze() externally visible variables (assumption literals,
// frame-frontier variables); clause-group activation literals are frozen
// automatically. Freezing is a performance contract, not a soundness one:
// a clause or assumption arriving on an eliminated variable transparently
// reactivates it (its original clauses are re-added), so lazy encoders
// like the Unroller can reference any variable at any time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace autosva::obs {
class Recorder;
}

namespace autosva::formal {

/// Literals are encoded MiniSAT-style: lit = 2*var + sign (sign 1 = negated).
using SatLit = int;

[[nodiscard]] constexpr SatLit mkSatLit(int var, bool negated = false) {
    return var * 2 + (negated ? 1 : 0);
}
[[nodiscard]] constexpr int satVar(SatLit lit) { return lit >> 1; }
[[nodiscard]] constexpr bool satSign(SatLit lit) { return (lit & 1) != 0; }
[[nodiscard]] constexpr SatLit satNeg(SatLit lit) { return lit ^ 1; }

enum class SatResult { Sat, Unsat, Unknown, Interrupted };

class SatSolver;

/// Sign-decoded model value of a literal after a Sat result: true iff the
/// literal (not just its variable) is satisfied by the model.
[[nodiscard]] bool modelBit(const SatSolver& solver, SatLit lit);

class SatSolver {
public:
    SatSolver();

    /// Creates a new variable and returns its index.
    int newVar();
    [[nodiscard]] int numVars() const { return static_cast<int>(assigns_.size()); }

    /// Adds a clause (empty clause makes the instance trivially UNSAT).
    void addClause(std::vector<SatLit> lits);
    void addUnit(SatLit l) { addClause({l}); }
    void addBinary(SatLit a, SatLit b) { addClause({a, b}); }
    void addTernary(SatLit a, SatLit b, SatLit c) { addClause({a, b, c}); }

    // -- Assumption-released clause groups ----------------------------------
    // A group is an activation literal guarding a set of clauses: each
    // clause added to the group carries the literal's negation, so the
    // clauses only bite while the activation literal is assumed. Closing
    // the group asserts the negation as a unit, permanently satisfying (and
    // thereby retiring) every clause in it. This is what lets one long-lived
    // solver discharge many obligations: per-obligation facts (BMC bad-frame
    // strengthening, frame constraints) live in groups and are released when
    // the job finishes, while learnt clauses about the shared transition
    // relation survive.

    /// Opens a clause group; returns its activation literal. Pass it as an
    /// assumption to solve() while the group should be active. The
    /// activation variable is frozen (never eliminated or probed) and
    /// marked as a group guard: since its positive literal occurs in no
    /// clause, every resolvent or strengthening derived from a guarded
    /// clause keeps the guard negation — group-guarded facts are never
    /// promoted into permanent ones by the simplification layer.
    [[nodiscard]] SatLit openClauseGroup() {
        int v = newVar();
        frozen_[static_cast<size_t>(v)] = 1;
        groupVar_[static_cast<size_t>(v)] = 1;
        return mkSatLit(v);
    }
    /// Adds a clause that only holds while `group` is assumed.
    void addClauseIn(SatLit group, std::vector<SatLit> lits) {
        lits.push_back(satNeg(group));
        addClause(std::move(lits));
    }
    /// Permanently deactivates the group and every clause in it.
    void closeClauseGroup(SatLit group) { addUnit(satNeg(group)); }

    /// Removes clauses satisfied at decision level 0 (e.g. a closed group's
    /// clauses) from the watch lists, so a long-lived solver doesn't drag
    /// dead watchers through every later propagation. Semantically neutral;
    /// it reshuffles watch traversal order, which is safe for every caller
    /// now that PDR's generalization is ordering-insensitive — the PDR
    /// frame solvers run it periodically (pdr.cpp FrameSolver::retireGroup).
    /// With preprocessing enabled it additionally runs one bounded
    /// subsumption / self-subsuming-resolution pass over the clause DB.
    void simplify();

    // -- Frozen-aware preprocessing & inprocessing --------------------------
    // Off by default (EngineOptions::satPre gates it per strategy solver).
    // Sat/Unsat answers stay semantic under every transformation here —
    // only model *values* may move — so canonical engine reports are
    // byte-identical with the layer on or off.

    /// Master gate. When off, preprocess() and the restart-boundary
    /// inprocessing are no-ops and the solver behaves exactly as before.
    void setPreprocessing(bool on) { preOn_ = on; }
    [[nodiscard]] bool preprocessing() const { return preOn_; }

    /// Marks a variable as externally visible: never eliminated, never
    /// probed. Callers freeze assumption literals and frame-frontier
    /// variables (see strategy.hpp for the per-strategy contract). Freezing
    /// is a churn optimization, not a soundness requirement — an eliminated
    /// variable referenced by a later clause or assumption is reactivated
    /// automatically.
    void freeze(int var) { frozen_[static_cast<size_t>(var)] = 1; }
    void melt(int var) { frozen_[static_cast<size_t>(var)] = 0; }
    [[nodiscard]] bool isFrozen(int var) const {
        return frozen_[static_cast<size_t>(var)] != 0;
    }

    /// Encode-checkpoint simplification at decision level 0: subsumption +
    /// self-subsuming resolution over the clause DB, then bounded variable
    /// elimination of unfrozen variables (eliminated definitions go onto
    /// the model-reconstruction stack), then a final purge. Cheap to call
    /// repeatedly: unless `force`, the pass only runs when the clause DB
    /// grew meaningfully since the last one. No-op unless preprocessing is
    /// enabled.
    void preprocess(bool force = false);

    /// Binds the structured-tracing recorder for inprocessing spans
    /// (category "solver", name "inprocess"). The spans carry no "queries"
    /// arg — inprocessing performs no SAT calls — which preserves the
    /// query-attribution reconciliation invariant (obs/profile.hpp).
    void bindTrace(obs::Recorder* rec, int64_t jobIndex) {
        traceRec_ = rec;
        traceOb_ = jobIndex;
    }

    /// Resets the search heuristics (VSIDS activities, saved phases) to
    /// their initial state while keeping the clause database. A pooled
    /// solver calls this between obligations: the next job then searches
    /// like a fresh solver — stale activity tuned to the previous job's
    /// cone otherwise degrades it — but still profits from the shared
    /// encoding and the learnt clauses.
    void resetSearchState();

    /// Solves under the given assumptions.
    [[nodiscard]] SatResult solve(const std::vector<SatLit>& assumptions = {});

    /// Model access after Sat: true iff variable is assigned true.
    [[nodiscard]] bool modelValue(int var) const { return model_[var] == 1; }

    /// After an Unsat result under assumptions: the subset of assumption
    /// literals involved in the refutation (an unsat core over assumptions).
    [[nodiscard]] const std::vector<SatLit>& conflictCore() const { return conflictCore_; }

    // Statistics.
    [[nodiscard]] uint64_t conflicts() const { return conflicts_; }
    [[nodiscard]] uint64_t decisions() const { return decisions_; }
    [[nodiscard]] uint64_t propagations() const { return propagations_; }
    /// Problem clauses accepted by addClause (simplified-away and learnt
    /// clauses excluded) — the encoder-cost counter behind --stats.
    [[nodiscard]] uint64_t clausesAdded() const { return clausesAdded_; }
    /// Clauses currently attached to the watch lists (problem + learnt,
    /// deleted ones excluded). simplify() shrinks this when it purges a
    /// closed clause group — the PDR frame-solver test asserts exactly
    /// that.
    [[nodiscard]] size_t liveClauses() const {
        size_t n = 0;
        for (const Clause& c : clauses_)
            if (!c.deleted) ++n;
        return n;
    }
    /// Live learnt clauses currently attached (memory observability).
    [[nodiscard]] size_t liveLearnts() const {
        size_t n = 0;
        for (CRef cr : learnts_)
            if (!clauses_[static_cast<size_t>(cr)].deleted) ++n;
        return n;
    }
    [[nodiscard]] uint64_t solves() const { return solves_; }

    // Preprocessing / inprocessing counters (the --stats "sat-pre:" line).
    /// Variables currently eliminated (gross eliminations minus
    /// reactivations) — what the bench_satpre reduction gate measures.
    [[nodiscard]] uint64_t varsEliminated() const {
        return varsEliminated_ - varsReactivated_;
    }
    [[nodiscard]] uint64_t varsReactivated() const { return varsReactivated_; }
    [[nodiscard]] uint64_t clausesSubsumed() const { return clausesSubsumed_; }
    [[nodiscard]] uint64_t clausesStrengthened() const { return clausesStrengthened_; }
    [[nodiscard]] uint64_t clausesVivified() const { return clausesVivified_; }
    [[nodiscard]] uint64_t failedLiterals() const { return failedLiterals_; }
    [[nodiscard]] uint64_t inprocessPasses() const { return inprocessPasses_; }
    /// Clauses dropped whole at addClause() entry (tautologies and
    /// level-0-satisfied clauses) — the clause-hygiene counter.
    [[nodiscard]] uint64_t hygieneDrops() const { return hygieneDrops_; }
    /// Duplicate / level-0-false literals stripped at addClause() entry.
    [[nodiscard]] uint64_t hygieneLitsDropped() const { return hygieneLitsDropped_; }

    /// Optional conflict budget per solve() call (0 = unlimited).
    void setConflictBudget(uint64_t budget) { conflictBudget_ = budget; }

    // -- Asynchronous cancellation ------------------------------------------
    // The only member another thread may touch while solve() runs. The flag
    // is sticky: once set, every solve() call returns Interrupted at its
    // next conflict/restart boundary (or immediately on entry) until
    // clearStop() is called, so a cancelled race leg cannot sneak in another
    // full search between the cancel and its teardown. The solver itself is
    // left at decision level 0 and fully reusable after clearStop().

    /// Requests that the current (and any subsequent) solve() stop early
    /// with SatResult::Interrupted. Safe to call from another thread.
    void requestStop() { stopRequested_.store(true, std::memory_order_relaxed); }
    /// Re-arms the solver after an interruption (the bound external token,
    /// if any, is the owner's to clear).
    void clearStop() { stopRequested_.store(false, std::memory_order_relaxed); }
    /// Binds an external stop token checked alongside the internal flag —
    /// how one cancellation flag fans out to every solver a PDR search
    /// creates without the canceller having to track them. The pointee must
    /// outlive the solver (or be unbound with nullptr first).
    void bindStop(const std::atomic<bool>* token) { externalStop_ = token; }
    /// Second, independent external token slot reserved for the wall-clock
    /// watchdog (robust/watchdog.hpp), so deadline cancellation composes
    /// with the race-cancellation token already occupying bindStop (a PDR
    /// race leg is stoppable by *either* a losing race or a deadline).
    /// Same lifetime contract as bindStop.
    void bindWatchdog(const std::atomic<bool>* token) { watchdogStop_ = token; }
    [[nodiscard]] bool stopRequested() const {
        return stopRequested_.load(std::memory_order_relaxed) ||
               (externalStop_ && externalStop_->load(std::memory_order_relaxed)) ||
               (watchdogStop_ && watchdogStop_->load(std::memory_order_relaxed));
    }

private:
    friend struct SatSolverTestPeer; ///< White-box access for tests/test_sat.cpp.

    using CRef = int32_t;
    static constexpr CRef kCRefUndef = -1;

    struct Clause {
        std::vector<SatLit> lits;
        double activity = 0.0;
        int lbd = 0;
        bool learnt = false;
        bool deleted = false;
    };

    struct Watcher {
        CRef cref;
        SatLit blocker;
    };

    enum : uint8_t { kTrue = 1, kFalse = 0, kUndef = 2 };

    [[nodiscard]] uint8_t litValue(SatLit l) const {
        uint8_t v = assigns_[satVar(l)];
        if (v == kUndef) return kUndef;
        return satSign(l) ? (v ^ 1) : v;
    }

    /// One eliminated variable's original clauses, for model
    /// reconstruction (reverse replay after Sat) and reactivation. `var`
    /// is -1 after reactivation: the entry is dead and replay skips it.
    struct ElimEntry {
        int var = -1;
        std::vector<std::vector<SatLit>> clauses;
    };

    /// Occurrence index built per preprocessing pass: live clause refs per
    /// literal plus a 64-bit literal signature per clause for fast
    /// subsumption pruning. Transient — never kept across calls.
    struct OccIndex {
        std::vector<std::vector<CRef>> occ; ///< Indexed by literal.
        std::vector<uint64_t> sig;          ///< Indexed by CRef.
    };

    void attachClause(CRef cref);
    bool enqueue(SatLit l, CRef reason);
    CRef propagate();
    void analyzeFinal(CRef conflict, SatLit failedAssumption);
    void analyze(CRef conflict, std::vector<SatLit>& learnt, int& backtrackLevel, int& lbd);
    void cancelUntil(int level);
    SatLit pickBranchLit();
    void bumpVarActivity(int var);
    void bumpClauseActivity(Clause& c);
    void decayActivities();
    void reduceDB();
    [[nodiscard]] int decisionLevel() const { return static_cast<int>(trailLims_.size()); }
    [[nodiscard]] static uint64_t luby(uint64_t i);

    // Preprocessing / inprocessing internals (sat.cpp, see the file
    // comment for the soundness contracts).
    CRef addClauseCore(std::vector<SatLit> lits, bool countHygiene);
    void detachClause(CRef cref);
    void deleteClause(CRef cref);
    [[nodiscard]] bool isReasonLocked(CRef cref) const;
    void reactivate(int var);
    void extendModel();
    void purgeSatisfied();
    [[nodiscard]] static uint64_t clauseSig(const std::vector<SatLit>& lits);
    void buildOccIndex(OccIndex& idx);
    void subsumptionPass(OccIndex& idx);
    void strengthenClause(CRef cref, SatLit removeLit, OccIndex& idx);
    [[nodiscard]] bool tryEliminate(int var, OccIndex& idx);
    void eliminatePass(OccIndex& idx);
    void compactLearnts();
    void inprocessStep();
    void vivifyRound(size_t budget);
    void probeRound(size_t budget);

    bool ok_ = true;
    std::vector<Clause> clauses_;
    std::vector<CRef> learnts_;
    std::vector<std::vector<Watcher>> watches_; // Indexed by literal.
    std::vector<uint8_t> assigns_;
    std::vector<uint8_t> model_;
    std::vector<uint8_t> phase_;
    std::vector<int> levels_;
    std::vector<CRef> reasons_;
    std::vector<SatLit> trail_;
    std::vector<int> trailLims_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    double clauseInc_ = 1.0;
    // Indexed max-heap over variable activity (MiniSAT's order_heap).
    std::vector<int> heap_;
    std::vector<int> heapPos_; // var -> heap index, -1 if absent.
    void heapInsert(int var);
    void heapUpdate(int var);
    int heapPopMax();
    void heapSiftUp(size_t i);
    void heapSiftDown(size_t i);
    std::vector<uint8_t> seen_;

    std::vector<SatLit> conflictCore_;
    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t clausesAdded_ = 0;
    uint64_t solves_ = 0;
    uint64_t conflictBudget_ = 0;
    size_t maxLearnts_ = 4000;
    std::atomic<bool> stopRequested_{false};
    const std::atomic<bool>* externalStop_ = nullptr;
    const std::atomic<bool>* watchdogStop_ = nullptr;

    // Preprocessing / inprocessing state.
    bool preOn_ = false;
    std::vector<uint8_t> frozen_;   // Per var: never eliminate / probe.
    std::vector<uint8_t> elim_;     // Per var: currently eliminated.
    std::vector<uint8_t> groupVar_; // Per var: clause-group guard.
    std::vector<ElimEntry> elimStack_;
    std::vector<int32_t> elimSlot_; // var -> elimStack_ index, -1 if none.
    uint64_t varsEliminated_ = 0;
    uint64_t varsReactivated_ = 0;
    uint64_t clausesSubsumed_ = 0;
    uint64_t clausesStrengthened_ = 0;
    uint64_t clausesVivified_ = 0;
    uint64_t failedLiterals_ = 0;
    uint64_t inprocessPasses_ = 0;
    uint64_t hygieneDrops_ = 0;
    uint64_t hygieneLitsDropped_ = 0;
    uint64_t preprocessedAtClauses_ = 0; ///< clausesAdded_ at the last full pass.
    uint64_t inprocessAt_ = 0;           ///< Conflict count that arms the next pass.
    size_t vivifyHead_ = 0;              ///< Round-robin cursors so successive
    int probeHead_ = 0;                  ///< bounded passes cover the whole DB.
    obs::Recorder* traceRec_ = nullptr;
    int64_t traceOb_ = -1;
};

inline bool modelBit(const SatSolver& solver, SatLit lit) {
    bool value = solver.modelValue(satVar(lit));
    return satSign(lit) ? !value : value;
}

} // namespace autosva::formal
