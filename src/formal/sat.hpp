// From-scratch CDCL SAT solver: two-watched literals, 1UIP conflict
// learning, VSIDS decision heuristic with phase saving, Luby restarts and
// LBD-based learnt-clause reduction. Supports incremental solving under
// assumptions, which the BMC / k-induction engines rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autosva::formal {

/// Literals are encoded MiniSAT-style: lit = 2*var + sign (sign 1 = negated).
using SatLit = int;

[[nodiscard]] constexpr SatLit mkSatLit(int var, bool negated = false) {
    return var * 2 + (negated ? 1 : 0);
}
[[nodiscard]] constexpr int satVar(SatLit lit) { return lit >> 1; }
[[nodiscard]] constexpr bool satSign(SatLit lit) { return (lit & 1) != 0; }
[[nodiscard]] constexpr SatLit satNeg(SatLit lit) { return lit ^ 1; }

enum class SatResult { Sat, Unsat, Unknown };

class SatSolver;

/// Sign-decoded model value of a literal after a Sat result: true iff the
/// literal (not just its variable) is satisfied by the model.
[[nodiscard]] bool modelBit(const SatSolver& solver, SatLit lit);

class SatSolver {
public:
    SatSolver();

    /// Creates a new variable and returns its index.
    int newVar();
    [[nodiscard]] int numVars() const { return static_cast<int>(assigns_.size()); }

    /// Adds a clause (empty clause makes the instance trivially UNSAT).
    void addClause(std::vector<SatLit> lits);
    void addUnit(SatLit l) { addClause({l}); }
    void addBinary(SatLit a, SatLit b) { addClause({a, b}); }
    void addTernary(SatLit a, SatLit b, SatLit c) { addClause({a, b, c}); }

    /// Solves under the given assumptions.
    [[nodiscard]] SatResult solve(const std::vector<SatLit>& assumptions = {});

    /// Model access after Sat: true iff variable is assigned true.
    [[nodiscard]] bool modelValue(int var) const { return model_[var] == 1; }

    /// After an Unsat result under assumptions: the subset of assumption
    /// literals involved in the refutation (an unsat core over assumptions).
    [[nodiscard]] const std::vector<SatLit>& conflictCore() const { return conflictCore_; }

    // Statistics.
    [[nodiscard]] uint64_t conflicts() const { return conflicts_; }
    [[nodiscard]] uint64_t decisions() const { return decisions_; }
    [[nodiscard]] uint64_t propagations() const { return propagations_; }

    /// Optional conflict budget per solve() call (0 = unlimited).
    void setConflictBudget(uint64_t budget) { conflictBudget_ = budget; }

private:
    using CRef = int32_t;
    static constexpr CRef kCRefUndef = -1;

    struct Clause {
        std::vector<SatLit> lits;
        double activity = 0.0;
        int lbd = 0;
        bool learnt = false;
        bool deleted = false;
    };

    struct Watcher {
        CRef cref;
        SatLit blocker;
    };

    enum : uint8_t { kTrue = 1, kFalse = 0, kUndef = 2 };

    [[nodiscard]] uint8_t litValue(SatLit l) const {
        uint8_t v = assigns_[satVar(l)];
        if (v == kUndef) return kUndef;
        return satSign(l) ? (v ^ 1) : v;
    }

    void attachClause(CRef cref);
    bool enqueue(SatLit l, CRef reason);
    CRef propagate();
    void analyzeFinal(CRef conflict, SatLit failedAssumption);
    void analyze(CRef conflict, std::vector<SatLit>& learnt, int& backtrackLevel, int& lbd);
    void cancelUntil(int level);
    SatLit pickBranchLit();
    void bumpVarActivity(int var);
    void bumpClauseActivity(Clause& c);
    void decayActivities();
    void reduceDB();
    [[nodiscard]] int decisionLevel() const { return static_cast<int>(trailLims_.size()); }
    [[nodiscard]] static uint64_t luby(uint64_t i);

    bool ok_ = true;
    std::vector<Clause> clauses_;
    std::vector<CRef> learnts_;
    std::vector<std::vector<Watcher>> watches_; // Indexed by literal.
    std::vector<uint8_t> assigns_;
    std::vector<uint8_t> model_;
    std::vector<uint8_t> phase_;
    std::vector<int> levels_;
    std::vector<CRef> reasons_;
    std::vector<SatLit> trail_;
    std::vector<int> trailLims_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    double clauseInc_ = 1.0;
    // Indexed max-heap over variable activity (MiniSAT's order_heap).
    std::vector<int> heap_;
    std::vector<int> heapPos_; // var -> heap index, -1 if absent.
    void heapInsert(int var);
    void heapUpdate(int var);
    int heapPopMax();
    void heapSiftUp(size_t i);
    void heapSiftDown(size_t i);
    std::vector<uint8_t> seen_;

    std::vector<SatLit> conflictCore_;
    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t conflictBudget_ = 0;
    size_t maxLearnts_ = 4000;
};

inline bool modelBit(const SatSolver& solver, SatLit lit) {
    bool value = solver.modelValue(satVar(lit));
    return satSign(lit) ? !value : value;
}

} // namespace autosva::formal
