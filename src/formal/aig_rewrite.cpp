#include "formal/aig_rewrite.hpp"

#include <cassert>
#include <numeric>
#include <unordered_map>
#include <utility>

namespace autosva::formal {

namespace {

/// AND construction with one-level rewriting on top of Aig::mkAnd's
/// construction-time hashing: absorption (a & (a&b) = a&b), complement
/// containment (a & (!a&b) = 0), and substitution through a negated AND
/// (a & !(a&b) = a & !b, a & !(!a&b) = a). Every rule is a Boolean
/// identity, so the rewritten graph is equivalent node for node.
AigLit rwAnd(Aig& g, AigLit a, AigLit b) {
    for (int side = 0; side < 2; ++side) {
        AigLit x = side == 0 ? a : b;
        AigLit y = side == 0 ? b : a;
        uint32_t yv = aigVar(y);
        if (g.kind(yv) != Aig::VarKind::And) continue;
        AigLit f0 = g.fanin0(yv);
        AigLit f1 = g.fanin1(yv);
        if (!aigSign(y)) {
            if (f0 == x || f1 == x) return y;                      // x & (x&c) = x&c
            if (f0 == aigNot(x) || f1 == aigNot(x)) return kAigFalse; // x & (!x&c) = 0
        } else {
            if (f0 == aigNot(x) || f1 == aigNot(x)) return x;      // x & !(!x&c) = x
            // x & !(x&c) = x & !c; recurse on the strictly smaller !c.
            if (f0 == x) return rwAnd(g, x, aigNot(f1));
            if (f1 == x) return rwAnd(g, x, aigNot(f0));
        }
    }
    return g.mkAnd(a, b);
}

/// One rebuild of `src` into a fresh graph. `latchRep[v]` names the
/// representative of latch var v (v itself when unmerged); merged latches
/// map to their representative's new literal and are not re-created.
///
/// Nodes are recreated in their ORIGINAL creation order (one interleaved
/// pass over ascending vars — sound because an AND's fanins and a merged
/// latch's representative always have smaller indices). This keeps the
/// rebuild a minimal perturbation: when no rule fires, the output is the
/// input, numbering included. That matters beyond aesthetics — downstream
/// SAT variable allocation and PDR cube orders follow AIG numbering, so a
/// gratuitous global renumbering would reshuffle search heuristics
/// everywhere. It also makes the pass deterministic: the output is a pure
/// function of the input graph.
void rebuildOnce(const Aig& src, const std::vector<uint32_t>& latchRep, Aig& out,
                 std::vector<AigLit>& map) {
    map.assign(src.numVars(), kAigFalse);
    auto mapLit = [&](AigLit l) { return map[aigVar(l)] ^ (aigSign(l) ? 1u : 0u); };
    for (uint32_t v = 1; v < src.numVars(); ++v) {
        switch (src.kind(v)) {
        case Aig::VarKind::Const:
            break;
        case Aig::VarKind::Input:
            map[v] = out.mkInput(src.varName(v));
            break;
        case Aig::VarKind::Latch:
            if (latchRep[v] == v)
                map[v] = out.mkLatch(src.latchInit(v), src.varName(v));
            else
                map[v] = map[latchRep[v]]; // Representative has a smaller var.
            break;
        case Aig::VarKind::And:
            map[v] = rwAnd(out, mapLit(src.fanin0(v)), mapLit(src.fanin1(v)));
            break;
        }
    }
    for (uint32_t v : src.latches())
        if (latchRep[v] == v) out.setLatchNext(map[v], mapLit(src.latchNext(v)));
}

} // namespace

AigRewriteResult rewriteAig(const Aig& input) {
    AigRewriteResult res;
    std::vector<uint32_t> identity(input.numVars());
    std::iota(identity.begin(), identity.end(), 0);
    rebuildOnce(input, identity, res.aig, res.map);
    res.passes = 1;

    // Latch merging to a fixpoint: two latches with the same defined initial
    // value and the same next-state literal are equal in every frame (by
    // induction over time), so the later one is replaced by the earlier.
    // Latches with symbolic initial values (-1) never merge — their frame-0
    // values are independent. Substitution rewrites the merged latch's
    // fanout cone, which can make further next-state functions coincide,
    // hence the loop. Each pass strictly removes a latch, so it terminates.
    constexpr size_t kMaxPasses = 16;
    while (res.passes < kMaxPasses) {
        const Aig& cur = res.aig;
        std::vector<uint32_t> rep(cur.numVars());
        std::iota(rep.begin(), rep.end(), 0);
        std::unordered_map<uint64_t, uint32_t> byDef; // (next, init) -> first latch.
        size_t merged = 0;
        for (uint32_t lv : cur.latches()) {
            int init = cur.latchInit(lv);
            if (init < 0) continue;
            uint64_t key = (static_cast<uint64_t>(cur.latchNext(lv)) << 1) |
                           static_cast<uint64_t>(init);
            auto [it, fresh] = byDef.emplace(key, lv);
            if (!fresh) {
                rep[lv] = it->second;
                ++merged;
            }
        }
        if (merged == 0) break;
        res.mergedLatches += merged;
        Aig next;
        std::vector<AigLit> m;
        rebuildOnce(cur, rep, next, m);
        for (AigLit& l : res.map) l = m[aigVar(l)] ^ (aigSign(l) ? 1u : 0u);
        res.aig = std::move(next);
        ++res.passes;
    }
    return res;
}

AigRewriteResult applyAigRewrite(BitBlast& bb) {
    AigRewriteResult rw = rewriteAig(bb.aig);
    for (auto& [node, lits] : bb.bits)
        for (AigLit& l : lits) l = rw(l);
    auto remapVar = [&](uint32_t var) {
        AigLit l = rw.map[var];
        assert(!aigSign(l));
        return aigVar(l);
    };
    for (auto& [node, vars] : bb.inputVars)
        for (uint32_t& v : vars) v = remapVar(v);
    for (auto& [node, vars] : bb.latchVars)
        for (uint32_t& v : vars) v = remapVar(v);
    bb.aig = std::move(rw.aig);
    return rw;
}

} // namespace autosva::formal
