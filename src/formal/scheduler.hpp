// Parallel obligation scheduler: the orchestration layer of the model
// checker.
//
// Every proof obligation of a design becomes an ObligationJob that flows
// through a strategy pipeline (BMC -> k-induction -> PDR). Jobs are
// discharged by a pool of worker threads fed from work-stealing queues;
// each worker owns a phase-scoped SolverPool of long-lived incremental
// SatSolver / Unroller contexts (per AIG and init mode) reused across the
// jobs it discharges — per-job facts live in assumption-released clause
// groups so learnt clauses about the shared transition relation survive
// between obligations (EngineOptions::solverReuse; legacy throwaway
// solvers otherwise). The bit-blast result — structurally rewritten by
// aig_rewrite when EngineOptions::aigRewrite holds — and the AIGs are
// shared immutably. Results are published to a thread-safe sink keyed by
// obligation declaration index, so the final report is deterministic —
// byte-identical statuses, depths, and ordering — regardless of worker
// count or solver reuse.
//
// Cross-property couplings are preserved by phase barriers instead of
// timing: safety invariants proven in phase A are fed to the liveness
// phase as constraints, and the liveness PDR lemma chain runs over a
// topological lemma DAG — justice obligations with pairwise-disjoint
// justice-net cones form waves discharged in parallel, and the barrier
// between waves folds proven "seen" trackers into the strengthening
// conjunction in declaration order (which keeps the reasoning acyclic and
// the reports byte-identical for any worker count).
//
// When EngineOptions::cacheDir is set, a persistent proof cache
// (src/cache/) sits in front of the strategy pipeline: each obligation is
// keyed by a content fingerprint of its cone of influence, exact hits skip
// all SAT work, and near-misses (same property, edited RTL) seed PDR with
// the prior run's re-validated invariant lemmas. Cache lookups read an
// open-time snapshot, so verdicts stay byte-identical for any worker count
// and any cache state.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.hpp"
#include "formal/bitblast.hpp"
#include "formal/portfolio.hpp"
#include "formal/result.hpp"
#include "formal/strategy.hpp"
#include "robust/watchdog.hpp"
#include "rtlir/design.hpp"

namespace autosva::cache {
class ProofCache;
}

namespace autosva::sva {
class ResultSink;
}

namespace autosva::formal {

class ObligationScheduler {
public:
    explicit ObligationScheduler(const ir::Design& design, EngineOptions opts = {});
    ~ObligationScheduler();

    /// Discharges every obligation of the design. Results are in obligation
    /// declaration order for any opts.jobs value.
    [[nodiscard]] std::vector<PropertyResult> run();

    [[nodiscard]] const EngineStats& stats() const { return stats_; }
    [[nodiscard]] const BitBlast& blasted() const { return bb_; }
    [[nodiscard]] const EngineOptions& options() const { return opts_; }

private:
    /// Runs the BMC -> k-induction (-> PDR) pipeline on one job, consulting
    /// and feeding the proof cache when one is configured. The legacy
    /// (throwaway-solver) discharge path.
    void discharge(const ProofContext& ctx, ObligationJob& job, bool withPdr) const;
    /// The solver-reuse discharge of one phase: cache pass, frame-lockstep
    /// batched BMC (one incremental solver per worker for its whole job
    /// batch), then work-stealing k-induction (+ PDR) on per-worker solver
    /// pools. Verdict-identical to per-job discharge for any worker count.
    /// `sink` non-null finalizes and publishes each job as it completes.
    void runPhaseBatched(const ProofContext& baseCtx,
                         const std::vector<ObligationJob*>& phaseJobs, bool withPdr,
                         sva::ResultSink* sink);
    /// One liveness lemma-DAG PDR job (run in parallel within a wave),
    /// with its own cache stage.
    void runChainPdr(const ProofContext& ctx, ObligationJob& job) const;
    /// Maps a near-miss artifact's named lemmas onto the job's AIG as PDR
    /// seed candidates (bounded, re-validated downstream).
    void seedFromNearMiss(ObligationJob& job, uint64_t structKey) const;
    /// Shared pre-pipeline cache protocol for both discharge paths:
    /// computes the job's key for `stage` (returned via fp/structKey so the
    /// caller records under the same key), applies an exact hit, and seeds
    /// PDR from a near-miss when `allowSeeding`. True = served from cache.
    bool tryServeFromCache(const ProofContext& ctx, ObligationJob& job, cache::Stage stage,
                           bool allowSeeding, cache::Fingerprint& fp,
                           uint64_t& structKey) const;

    /// True when the PDR stage runs detached from the per-job pipeline —
    /// any of the portfolio/budget-pool knobs is set (and PDR is on). The
    /// default pipeline then stays verbatim on its existing code paths.
    [[nodiscard]] bool fancyPdr() const {
        return opts_.usePdr && (opts_.budgetPoolQueries > 0 || opts_.portfolioLegs > 0 ||
                                opts_.portfolio);
    }
    /// The detached PDR stage: evaluates each open job's deterministic leg
    /// ladder (see portfolio.hpp) — sequentially with early exit, or raced
    /// across the worker pool with leg-order adoption when
    /// opts_.portfolio. Settles the budget pool per job; retains leg 0's
    /// warm context on budget-edge Unknowns for refillPass.
    void runPdrLadderStage(const ProofContext& baseCtx,
                           const std::vector<ObligationJob*>& open);
    /// Single-threaded phase-barrier refill pass: budget-edge Unknowns
    /// draw pool refills and resume their warm context, in declaration
    /// order, until decided or the pool runs dry.
    void refillPass(const ProofContext& baseCtx, const std::vector<ObligationJob*>& open);
    /// Deferred cache store (the fancy PDR paths store after refills so a
    /// refill-improved verdict is what gets recorded).
    void storeJob(const ProofContext& ctx, ObligationJob& job, cache::Stage stage) const;

    /// Registers one obligation-sized unit of work with the run's watchdog
    /// (inert guard when no deadline is configured). The guard's token goes
    /// into ObligationJob::watchdogStop for strategies to bind.
    [[nodiscard]] robust::Watchdog::JobGuard guardJob(const ObligationJob& job) const {
        return watchdog_ ? watchdog_->guardJob(job.index) : robust::Watchdog::JobGuard{};
    }
    /// End-of-guard bookkeeping: clears the job's token binding and, when
    /// the guard fired and the job stayed Unknown, records the degradation
    /// reason (timeout / run-budget / interrupt) on the result.
    void settleDeadline(ObligationJob& job, const robust::Watchdog::JobGuard& guard) const;
    /// True when the job's verdict may enter the proof cache. Deadline- or
    /// fault-degraded Unknowns must not: a cached "Unknown" would poison
    /// warm reruns that have the time to decide the obligation.
    [[nodiscard]] static bool cacheStorable(const ObligationJob& job);

    const ir::Design& design_;
    EngineOptions opts_;
    BitBlast bb_;
    std::vector<AigLit> constraints_;
    std::vector<AigLit> fairness_;
    std::unique_ptr<LivenessTransform> live_;
    std::unique_ptr<ProofStrategy> bmc_;
    std::unique_ptr<ProofStrategy> induction_;
    std::unique_ptr<ProofStrategy> pdr_;
    std::unique_ptr<cache::ProofCache> cache_;
    uint64_t structSalt_ = 0; ///< Design-identity salt for near-miss keys.
    std::unordered_map<std::string, uint32_t> baseLatchNames_;
    std::unordered_map<std::string, uint32_t> liveLatchNames_;
    std::unique_ptr<BudgetPool> budgetPool_; ///< Per-run; null unless opts ask for it.
    /// Deadline/cancellation scanner; null unless a time budget, an
    /// obligation timeout, or an external stop flag is configured.
    std::unique_ptr<robust::Watchdog> watchdog_;
    SharedStats shared_;
    EngineStats stats_;
    uint64_t liveWaves_ = 0;       ///< Lemma-DAG shape of the last run().
    uint64_t liveWaveWidest_ = 0;
};

} // namespace autosva::formal
