// Parallel obligation scheduler: the orchestration layer of the model
// checker.
//
// Every proof obligation of a design becomes an ObligationJob that flows
// through a strategy pipeline (BMC -> k-induction -> PDR). Jobs are
// discharged by a pool of worker threads fed from work-stealing queues;
// each worker builds its own SatSolver / Unroller contexts, while the
// bit-blast result and AIGs are shared immutably. Results are published to
// a thread-safe sink keyed by obligation declaration index, so the final
// report is deterministic — byte-identical statuses, depths, and ordering —
// regardless of worker count.
//
// Cross-property couplings are preserved by phase barriers instead of
// timing: safety invariants proven in phase A are fed to the liveness
// phase as constraints, and the liveness PDR lemma chain runs sequentially
// in declaration order (it strengthens later obligations with the "seen"
// trackers of earlier proven ones, which keeps the reasoning acyclic).
#pragma once

#include <memory>
#include <vector>

#include "formal/bitblast.hpp"
#include "formal/result.hpp"
#include "formal/strategy.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

class ObligationScheduler {
public:
    explicit ObligationScheduler(const ir::Design& design, EngineOptions opts = {});
    ~ObligationScheduler();

    /// Discharges every obligation of the design. Results are in obligation
    /// declaration order for any opts.jobs value.
    [[nodiscard]] std::vector<PropertyResult> run();

    [[nodiscard]] const EngineStats& stats() const { return stats_; }
    [[nodiscard]] const BitBlast& blasted() const { return bb_; }
    [[nodiscard]] const EngineOptions& options() const { return opts_; }

private:
    /// Runs the BMC -> k-induction (-> PDR) pipeline on one job.
    void discharge(const ProofContext& ctx, ObligationJob& job, bool withPdr) const;

    const ir::Design& design_;
    EngineOptions opts_;
    BitBlast bb_;
    std::vector<AigLit> constraints_;
    std::vector<AigLit> fairness_;
    std::unique_ptr<LivenessTransform> live_;
    std::unique_ptr<ProofStrategy> bmc_;
    std::unique_ptr<ProofStrategy> induction_;
    std::unique_ptr<ProofStrategy> pdr_;
    SharedStats shared_;
    EngineStats stats_;
};

} // namespace autosva::formal
