// Interoperability exports:
//  - AIGER 1.9 (ASCII "aag") of a design's transition system + obligations,
//    consumable by external model checkers (ABC, nuXmv, aigbmc, ...)
//  - DIMACS CNF of a BMC instance, consumable by any SAT solver.
#pragma once

#include <string>

#include "formal/aig.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

/// Renders the AIG in ASCII AIGER (aag) format. Latch initial values use
/// the AIGER 1.9 reset syntax (0 / 1 / self for uninitialized). `bads`
/// lists obligation literals exported as bad-state properties; `constraints`
/// as invariant constraints; `justice` properties are emitted as a single
/// justice set per literal; `fairness` as fairness constraints.
struct AigerObligations {
    std::vector<AigLit> bads;
    std::vector<AigLit> constraints;
    std::vector<AigLit> justice;
    std::vector<AigLit> fairness;
};

[[nodiscard]] std::string toAiger(const Aig& aig, const AigerObligations& obligations,
                                  const std::string& comment = {});

/// Convenience: bit-blasts `design` and exports it with all of its
/// (non-xprop) obligations mapped to AIGER sections.
[[nodiscard]] std::string designToAiger(const ir::Design& design);

/// DIMACS CNF of the BMC instance "`bad` reachable within `depth` steps
/// from the initial states" (satisfiable iff a counterexample of length
/// <= depth exists).
[[nodiscard]] std::string bmcToDimacs(const Aig& aig, AigLit bad,
                                      const std::vector<AigLit>& constraints, int depth);

} // namespace autosva::formal
