// Property Directed Reachability (IC3/PDR) — the unbounded safety prover.
//
// BMC finds counterexamples and k-induction proves shallow properties, but
// the liveness-to-safety obligations AutoSVA generates need reachability
// reasoning (a lasso through an unreachable state defeats plain induction).
// PDR incrementally learns inductive lemmas (blocked cubes) per frame until
// an inductive invariant excluding `bad` emerges — the same class of engine
// (IC3) that JasperGold uses for unbounded proofs in the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "formal/aig.hpp"

namespace autosva::formal {

struct PdrOptions {
    int maxFrames = 60;
    uint64_t maxQueries = 200000; ///< Safety valve on total SAT queries.
};

struct PdrResult {
    enum class Kind { Proven, Cex, Unknown };
    Kind kind = Kind::Unknown;
    /// Proven: frame where the invariant closed. Cex: trace length bound
    /// (number of steps from the initial state to `bad`).
    int depth = -1;
    uint64_t queries = 0;
};

/// Decides reachability of `bad` (a combinational AIG literal) from the
/// initial states, under per-cycle `constraints`.
[[nodiscard]] PdrResult pdrCheck(const Aig& aig, AigLit bad,
                                 const std::vector<AigLit>& constraints,
                                 const PdrOptions& opts = {});

} // namespace autosva::formal
