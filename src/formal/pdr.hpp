// Property Directed Reachability (IC3/PDR) — the unbounded safety prover.
//
// BMC finds counterexamples and k-induction proves shallow properties, but
// the liveness-to-safety obligations AutoSVA generates need reachability
// reasoning (a lasso through an unreachable state defeats plain induction).
// PDR incrementally learns inductive lemmas (blocked cubes) per frame until
// an inductive invariant excluding `bad` emerges — the same class of engine
// (IC3) that JasperGold uses for unbounded proofs in the paper's evaluation.
//
// The search lives in a persistent PdrContext: one long-lived incremental
// frame solver per frame (clause groups for per-query facts, periodic
// SatSolver::simplify() to retire them), canonical ordering-insensitive
// cube generalization, and a resumable search() so a budget-edge Unknown
// can be retried on the same learned frames with a reordered
// generalization sweep (PdrOptions::retryReorders).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "formal/aig.hpp"

namespace autosva::formal {

/// A cube over latch state: canonically sorted (latchVar, value) pairs.
/// Blocking a cube asserts the clause "not all of these values
/// simultaneously".
using PdrCube = std::vector<std::pair<uint32_t, bool>>;

struct PdrOptions {
    int maxFrames = 60;
    uint64_t maxQueries = 200000; ///< Safety valve on total SAT queries.
    /// Candidate invariant cubes from a previous proof (e.g. the proof
    /// cache). They are *candidates only*: the context keeps the subset
    /// that is mutually inductive (greatest fixpoint under consecution)
    /// and discards the rest, so unsound seeds cannot influence the
    /// verdict.
    const std::vector<PdrCube>* seedCubes = nullptr;
    /// Bounded retry-with-reordered-cubes fallback for budget-edge proofs:
    /// when search() exhausts maxQueries without a verdict, pdrCheck keeps
    /// the learned frames, grants another maxQueries, rotates the
    /// generalization drop order, and searches again — up to this many
    /// times. Deterministic (the rotation schedule is fixed), so the
    /// verdict for a given (graph, options) pair never depends on anything
    /// but those. 0 disables the fallback.
    int retryReorders = 2;
    /// Non-zero: deterministically shuffles every ordering the engine
    /// canonicalizes anyway (cube literals before sorting, seed-cube
    /// submission order) before that canonicalization. Because
    /// generalization is ordering-insensitive, any seed must produce the
    /// identical result — this is the perturbation-fuzz hook proving it,
    /// not a tuning knob.
    uint64_t perturbSeed = 0;
    /// Initial generalization drop-order rotation. The canonical search
    /// starts at 0 and advances only through rotateGeneralization(); a
    /// portfolio race leg starts at an offset past the canonical retry
    /// schedule so its sweep order diverges deterministically.
    uint64_t genRotation = 0;
    /// Asynchronous cancellation token shared by every solver this search
    /// creates (frame solvers, seed validation, the level-0 check). When
    /// another thread sets it, in-flight SAT calls return Interrupted at
    /// their next conflict boundary and search() unwinds with
    /// PdrResult::interrupted — never a fabricated verdict. Null = not
    /// cancellable.
    const std::atomic<bool>* stop = nullptr;
    /// Second cancellation token, reserved for the wall-clock watchdog
    /// (robust/watchdog.hpp): deadlines must compose with `stop`, which the
    /// portfolio race owns. Either token raised interrupts the search; the
    /// two have independent owners and are cleared independently.
    const std::atomic<bool>* watchdog = nullptr;
    /// Enable the frame solvers' CNF simplification layer: subsumption at
    /// the periodic retireGroup simplify() checkpoint and vivification /
    /// failed-literal probing at restart boundaries. Frame solvers get no
    /// variable-elimination passes either way — their encoding is lazy and
    /// every latch variable is frozen at first touch (now()/next()), so BVE
    /// would have nothing legal to chew on. Default OFF, and the engine
    /// never turns it on (strategy_pdr.cpp): inprocessing changes which
    /// model a Sat consecution query returns, PDR extracts predecessor /
    /// state cubes from those models, and the perturbed cube trajectory
    /// flips budget-edge verdicts — violating canonical identity across
    /// the sat-pre A/B. Kept as an option for experiments only.
    bool satPre = false;
};

/// Observability counters of one PDR search (aggregated into EngineStats
/// and the CLI --stats output).
struct PdrStats {
    uint64_t framesOpened = 0;       ///< Frame solvers constructed.
    uint64_t cubesBlocked = 0;       ///< Generalized cubes added to frames.
    uint64_t genDropAttempts = 0;    ///< Literal-drop consecution probes.
    uint64_t retryActivations = 0;   ///< Budget-edge reordered retries taken.
    uint64_t seedCubesAdmitted = 0;  ///< Seed cubes surviving re-validation.
    /// CNF simplification totals over the frame solvers (PdrOptions::satPre;
    /// gathered from the live solvers each time stats() is read).
    uint64_t preClausesSubsumed = 0;
    uint64_t preClausesStrengthened = 0;
    uint64_t preClausesVivified = 0;
    uint64_t preInprocessPasses = 0;
};

struct PdrResult {
    enum class Kind { Proven, Cex, Unknown };
    Kind kind = Kind::Unknown;
    /// Proven: frame where the invariant closed. Cex: trace length bound
    /// (number of steps from the initial state to `bad`). Either value is
    /// an engine artifact of the search, not a semantic depth — reports
    /// treat it as provenance, never as part of the canonical verdict.
    int depth = -1;
    /// Kind::Unknown only: the search was cancelled via PdrOptions::stop
    /// (a race leg that lost), not exhausted. Never adopted as a verdict.
    bool interrupted = false;
    uint64_t queries = 0;
    PdrStats stats;
    /// Proven only: the inductive invariant as blocked cubes (clauses
    /// negated), i.e. every reachable state avoids each of these cubes.
    std::vector<PdrCube> invariant;
};

namespace detail {
struct PdrSearch;
}

/// Persistent IC3 context: owns the per-frame incremental solvers and the
/// learned clause frames across search() calls. A single call decides most
/// properties; budget-edge proofs are resumed — same frames, fresh query
/// budget, rotated generalization order — instead of thrown away and
/// restarted (see pdrCheck for the retry policy).
class PdrContext {
public:
    PdrContext(const Aig& aig, AigLit bad, const std::vector<AigLit>& constraints,
               const PdrOptions& opts);
    ~PdrContext();
    PdrContext(const PdrContext&) = delete;
    PdrContext& operator=(const PdrContext&) = delete;

    /// Runs (or resumes) the search until a verdict or the current query
    /// budget is exhausted. Kind::Unknown with budgetExhausted() true is
    /// resumable: grantBudget()/rotateGeneralization() then call again —
    /// every learned frame clause and solver stays warm.
    [[nodiscard]] PdrResult search();

    /// True when the last search() stopped on the query budget (rather
    /// than the frame bound) — the only Unknown a retry can improve.
    [[nodiscard]] bool budgetExhausted() const;

    /// Extends the cumulative query budget by another PdrOptions::maxQueries.
    void grantBudget();
    /// Extends the cumulative query budget by exactly `extra` queries — the
    /// global BudgetPool refill entry point (pool draws are sized by what
    /// remains in the pool, not by the per-search cap).
    void grantBudget(uint64_t extra);
    /// Advances the deterministic rotation applied to the generalization
    /// drop sweep, so a resumed search explores a different (but fixed)
    /// order.
    void rotateGeneralization();
    /// Detaches the external stop token (PdrOptions::stop) from this
    /// context and every frame solver bound so far. A context retained
    /// past the portfolio race must not keep reading a token whose owner
    /// (the per-job race bookkeeping) is gone. Also detaches the watchdog
    /// token (see bindWatchdog).
    void clearStop();
    /// Attaches (or, with nullptr, detaches) a watchdog deadline token to
    /// this context and every frame solver bound so far — how a budget
    /// refill resumes a retained context under a fresh per-job deadline
    /// guard. The pointee must outlive the next search() (clear before the
    /// guard dies).
    void bindWatchdog(const std::atomic<bool>* token);

    [[nodiscard]] const PdrStats& stats() const;
    [[nodiscard]] uint64_t queries() const;

private:
    std::unique_ptr<detail::PdrSearch> impl_;
};

/// Decides reachability of `bad` (a combinational AIG literal) from the
/// initial states, under per-cycle `constraints`. Runs a PdrContext search
/// plus the bounded retry-with-reordered-cubes fallback on budget-edge
/// Unknowns.
[[nodiscard]] PdrResult pdrCheck(const Aig& aig, AigLit bad,
                                 const std::vector<AigLit>& constraints,
                                 const PdrOptions& opts = {});

} // namespace autosva::formal
