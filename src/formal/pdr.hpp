// Property Directed Reachability (IC3/PDR) — the unbounded safety prover.
//
// BMC finds counterexamples and k-induction proves shallow properties, but
// the liveness-to-safety obligations AutoSVA generates need reachability
// reasoning (a lasso through an unreachable state defeats plain induction).
// PDR incrementally learns inductive lemmas (blocked cubes) per frame until
// an inductive invariant excluding `bad` emerges — the same class of engine
// (IC3) that JasperGold uses for unbounded proofs in the paper's evaluation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "formal/aig.hpp"

namespace autosva::formal {

/// A cube over latch state: sorted (latchVar, value) pairs. Blocking a
/// cube asserts the clause "not all of these values simultaneously".
using PdrCube = std::vector<std::pair<uint32_t, bool>>;

struct PdrOptions {
    int maxFrames = 60;
    uint64_t maxQueries = 200000; ///< Safety valve on total SAT queries.
    /// Candidate invariant cubes from a previous proof (e.g. the proof
    /// cache). They are *candidates only*: pdrCheck keeps the subset that
    /// is mutually inductive (greatest fixpoint under consecution) and
    /// discards the rest, so unsound seeds cannot influence the verdict.
    const std::vector<PdrCube>* seedCubes = nullptr;
};

struct PdrResult {
    enum class Kind { Proven, Cex, Unknown };
    Kind kind = Kind::Unknown;
    /// Proven: frame where the invariant closed. Cex: trace length bound
    /// (number of steps from the initial state to `bad`).
    int depth = -1;
    uint64_t queries = 0;
    /// Proven only: the inductive invariant as blocked cubes (clauses
    /// negated), i.e. every reachable state avoids each of these cubes.
    std::vector<PdrCube> invariant;
};

/// Decides reachability of `bad` (a combinational AIG literal) from the
/// initial states, under per-cycle `constraints`.
[[nodiscard]] PdrResult pdrCheck(const Aig& aig, AigLit bad,
                                 const std::vector<AigLit>& constraints,
                                 const PdrOptions& opts = {});

} // namespace autosva::formal
