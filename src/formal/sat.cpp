#include "formal/sat.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "robust/faultinject.hpp"

namespace autosva::formal {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
} // namespace

SatSolver::SatSolver() = default;

int SatSolver::newVar() {
    int v = static_cast<int>(assigns_.size());
    assigns_.push_back(kUndef);
    model_.push_back(kUndef);
    phase_.push_back(kFalse);
    levels_.push_back(0);
    reasons_.push_back(kCRefUndef);
    activity_.push_back(0.0);
    seen_.push_back(0);
    heapPos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

void SatSolver::attachClause(CRef cref) {
    const Clause& c = clauses_[cref];
    assert(c.lits.size() >= 2);
    watches_[satNeg(c.lits[0])].push_back({cref, c.lits[1]});
    watches_[satNeg(c.lits[1])].push_back({cref, c.lits[0]});
}

void SatSolver::addClause(std::vector<SatLit> lits) {
    if (!ok_) return;
    assert(decisionLevel() == 0);
    ++clausesAdded_;
    // Simplify under the level-0 assignment; remove duplicates & tautologies.
    std::sort(lits.begin(), lits.end());
    std::vector<SatLit> out;
    SatLit prev = -1;
    for (SatLit l : lits) {
        if (l == prev) continue;
        if (prev >= 0 && satVar(l) == satVar(prev)) return; // Tautology (l, ~l).
        uint8_t v = litValue(l);
        if (v == kTrue) return;      // Satisfied already.
        if (v == kFalse) continue;   // Falsified literal dropped.
        out.push_back(l);
        prev = l;
    }
    if (out.empty()) {
        ok_ = false;
        return;
    }
    if (out.size() == 1) {
        if (!enqueue(out[0], kCRefUndef)) {
            ok_ = false;
            return;
        }
        if (propagate() != kCRefUndef) ok_ = false;
        return;
    }
    Clause c;
    c.lits = std::move(out);
    clauses_.push_back(std::move(c));
    attachClause(static_cast<CRef>(clauses_.size() - 1));
}

bool SatSolver::enqueue(SatLit l, CRef reason) {
    uint8_t v = litValue(l);
    if (v != kUndef) return v == kTrue;
    int var = satVar(l);
    assigns_[var] = satSign(l) ? kFalse : kTrue;
    levels_[var] = decisionLevel();
    reasons_[var] = reason;
    trail_.push_back(l);
    return true;
}

SatSolver::CRef SatSolver::propagate() {
    while (qhead_ < trail_.size()) {
        SatLit p = trail_[qhead_++];
        ++propagations_;
        auto& ws = watches_[p];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (litValue(w.blocker) == kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause& c = clauses_[w.cref];
            // Ensure the false literal is lits[1].
            SatLit falseLit = satNeg(p);
            if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == falseLit);
            ++i;
            if (litValue(c.lits[0]) == kTrue) {
                ws[j++] = {w.cref, c.lits[0]};
                continue;
            }
            // Find a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); ++k) {
                if (litValue(c.lits[k]) != kFalse) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[satNeg(c.lits[1])].push_back({w.cref, c.lits[0]});
                    found = true;
                    break;
                }
            }
            if (found) continue;
            // Unit or conflicting.
            ws[j++] = {w.cref, c.lits[0]};
            if (litValue(c.lits[0]) == kFalse) {
                // Conflict: copy remaining watchers and return.
                while (i < ws.size()) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.cref;
            }
            enqueue(c.lits[0], w.cref);
        }
        ws.resize(j);
    }
    return kCRefUndef;
}

void SatSolver::bumpVarActivity(int var) {
    activity_[var] += varInc_;
    if (activity_[var] > kRescaleLimit) {
        for (double& a : activity_) a *= 1e-100;
        varInc_ *= 1e-100;
    }
    heapUpdate(var);
}

void SatSolver::heapSiftUp(size_t i) {
    int var = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[var]) break;
        heap_[i] = heap_[parent];
        heapPos_[heap_[i]] = static_cast<int>(i);
        i = parent;
    }
    heap_[i] = var;
    heapPos_[var] = static_cast<int>(i);
}

void SatSolver::heapSiftDown(size_t i) {
    int var = heap_[i];
    for (;;) {
        size_t left = 2 * i + 1;
        if (left >= heap_.size()) break;
        size_t best = left;
        size_t right = left + 1;
        if (right < heap_.size() && activity_[heap_[right]] > activity_[heap_[left]]) best = right;
        if (activity_[heap_[best]] <= activity_[var]) break;
        heap_[i] = heap_[best];
        heapPos_[heap_[i]] = static_cast<int>(i);
        i = best;
    }
    heap_[i] = var;
    heapPos_[var] = static_cast<int>(i);
}

void SatSolver::heapInsert(int var) {
    if (heapPos_[var] >= 0) return;
    heap_.push_back(var);
    heapPos_[var] = static_cast<int>(heap_.size() - 1);
    heapSiftUp(heap_.size() - 1);
}

void SatSolver::heapUpdate(int var) {
    if (heapPos_[var] >= 0) heapSiftUp(static_cast<size_t>(heapPos_[var]));
}

int SatSolver::heapPopMax() {
    int var = heap_[0];
    heapPos_[var] = -1;
    int last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heapPos_[last] = 0;
        heapSiftDown(0);
    }
    return var;
}

void SatSolver::bumpClauseActivity(Clause& c) {
    c.activity += clauseInc_;
    if (c.activity > kRescaleLimit) {
        for (CRef cr : learnts_) clauses_[cr].activity *= 1e-100;
        clauseInc_ *= 1e-100;
    }
}

void SatSolver::decayActivities() {
    varInc_ /= kVarDecay;
    clauseInc_ /= kClauseDecay;
}

void SatSolver::analyze(CRef conflict, std::vector<SatLit>& learnt, int& backtrackLevel,
                        int& lbd) {
    learnt.clear();
    learnt.push_back(0); // Placeholder for the asserting literal.
    int counter = 0;
    SatLit p = -1;
    size_t index = trail_.size();

    CRef reason = conflict;
    do {
        assert(reason != kCRefUndef);
        Clause& c = clauses_[reason];
        if (c.learnt) bumpClauseActivity(c);
        for (size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
            SatLit q = c.lits[k];
            int var = satVar(q);
            if (!seen_[var] && levels_[var] > 0) {
                seen_[var] = 1;
                bumpVarActivity(var);
                if (levels_[var] >= decisionLevel())
                    ++counter;
                else
                    learnt.push_back(q);
            }
        }
        // Pick the next literal to resolve on.
        while (!seen_[satVar(trail_[--index])]) {
        }
        p = trail_[index];
        seen_[satVar(p)] = 0;
        reason = reasons_[satVar(p)];
        --counter;
    } while (counter > 0);
    learnt[0] = satNeg(p);

    // Conflict-clause minimization (self-subsumption, local).
    std::vector<SatLit> minimized;
    minimized.push_back(learnt[0]);
    for (size_t i = 1; i < learnt.size(); ++i) {
        SatLit q = learnt[i];
        CRef r = reasons_[satVar(q)];
        bool redundant = false;
        if (r != kCRefUndef) {
            redundant = true;
            for (SatLit rl : clauses_[r].lits) {
                if (satVar(rl) == satVar(q)) continue;
                if (!seen_[satVar(rl)] && levels_[satVar(rl)] > 0) {
                    redundant = false;
                    break;
                }
            }
        }
        if (!redundant) minimized.push_back(q);
    }
    for (size_t i = 1; i < learnt.size(); ++i) seen_[satVar(learnt[i])] = 0;
    learnt = std::move(minimized);

    // Compute backtrack level & LBD.
    backtrackLevel = 0;
    if (learnt.size() > 1) {
        size_t maxIdx = 1;
        for (size_t i = 2; i < learnt.size(); ++i)
            if (levels_[satVar(learnt[i])] > levels_[satVar(learnt[maxIdx])]) maxIdx = i;
        std::swap(learnt[1], learnt[maxIdx]);
        backtrackLevel = levels_[satVar(learnt[1])];
    }
    std::vector<int> lbdLevels;
    for (SatLit l : learnt) lbdLevels.push_back(levels_[satVar(l)]);
    std::sort(lbdLevels.begin(), lbdLevels.end());
    lbd = static_cast<int>(std::unique(lbdLevels.begin(), lbdLevels.end()) - lbdLevels.begin());
}

void SatSolver::cancelUntil(int level) {
    if (decisionLevel() <= level) return;
    for (size_t i = trail_.size(); i > static_cast<size_t>(trailLims_[level]);) {
        --i;
        int var = satVar(trail_[i]);
        phase_[var] = assigns_[var];
        assigns_[var] = kUndef;
        reasons_[var] = kCRefUndef;
        heapInsert(var);
    }
    trail_.resize(static_cast<size_t>(trailLims_[level]));
    trailLims_.resize(static_cast<size_t>(level));
    qhead_ = trail_.size();
}

void SatSolver::analyzeFinal(CRef conflict, SatLit failedAssumption) {
    conflictCore_.clear();
    if (decisionLevel() == 0) return;
    std::vector<uint8_t>& seen = seen_;
    auto markClause = [&](CRef cr) {
        for (SatLit l : clauses_[cr].lits) {
            int var = satVar(l);
            if (levels_[var] > 0) seen[var] = 1;
        }
    };
    if (conflict != kCRefUndef) {
        markClause(conflict);
    } else {
        // A propagated literal contradicts `failedAssumption`: start from
        // the chain that forced its negation.
        int var = satVar(failedAssumption);
        seen[var] = 1;
        conflictCore_.push_back(failedAssumption);
    }
    for (size_t i = trail_.size(); i-- > static_cast<size_t>(trailLims_.empty() ? 0 : trailLims_[0]);) {
        int var = satVar(trail_[i]);
        if (!seen[var]) continue;
        seen[var] = 0;
        CRef reason = reasons_[var];
        if (reason == kCRefUndef) {
            // A decision at assumption time: part of the core.
            conflictCore_.push_back(trail_[i]);
        } else {
            markClause(reason);
            seen[var] = 0;
        }
    }
    // Clear any leftover marks below the first decision level.
    for (SatLit l : conflictCore_) seen[satVar(l)] = 0;
}

SatLit SatSolver::pickBranchLit() {
    while (!heap_.empty()) {
        int var = heapPopMax();
        if (assigns_[var] == kUndef) return mkSatLit(var, phase_[var] == kFalse);
    }
    return -1;
}

uint64_t SatSolver::luby(uint64_t i) {
    // Luby sequence: 1,1,2,1,1,2,4,...
    uint64_t k = 1;
    while ((uint64_t{1} << k) - 1 < i + 1) ++k;
    while ((uint64_t{1} << (k - 1)) - 1 != i) {
        i = i - ((uint64_t{1} << (k - 1)) - 1);
        k = 1;
        while ((uint64_t{1} << k) - 1 < i + 1) ++k;
    }
    return uint64_t{1} << (k - 1);
}

void SatSolver::resetSearchState() {
    if (decisionLevel() != 0) return;
    varInc_ = 1.0;
    std::fill(activity_.begin(), activity_.end(), 0.0);
    for (size_t v = 0; v < phase_.size(); ++v) phase_[v] = kFalse;
    // Rebuild the order heap: with all activities equal it degenerates to
    // (deterministic) variable order, like a fresh solver's.
    heap_.clear();
    std::fill(heapPos_.begin(), heapPos_.end(), -1);
    for (int v = 0; v < static_cast<int>(assigns_.size()); ++v)
        if (assigns_[v] == kUndef) heapInsert(v);
}

void SatSolver::simplify() {
    if (!ok_ || decisionLevel() != 0) return;
    auto isLockedReason = [&](CRef cr, const Clause& c) {
        for (SatLit l : c.lits)
            if (reasons_[satVar(l)] == cr) return true;
        return false;
    };
    bool removedLearnt = false;
    for (CRef cr = 0; cr < static_cast<CRef>(clauses_.size()); ++cr) {
        Clause& c = clauses_[cr];
        if (c.deleted || c.lits.size() < 2) continue;
        bool satisfied = false;
        for (SatLit l : c.lits) {
            if (litValue(l) == kTrue && levels_[satVar(l)] == 0) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied || isLockedReason(cr, c)) continue;
        for (int w = 0; w < 2; ++w) {
            auto& ws = watches_[satNeg(c.lits[static_cast<size_t>(w)])];
            for (size_t k = 0; k < ws.size(); ++k) {
                if (ws[k].cref == cr) {
                    ws[k] = ws.back();
                    ws.pop_back();
                    break;
                }
            }
        }
        removedLearnt = removedLearnt || c.learnt;
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
    }
    if (removedLearnt) {
        size_t out = 0;
        for (CRef cr : learnts_)
            if (!clauses_[cr].deleted) learnts_[out++] = cr;
        learnts_.resize(out);
    }
}

void SatSolver::reduceDB() {
    std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
        const Clause& ca = clauses_[a];
        const Clause& cb = clauses_[b];
        if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
        return ca.activity < cb.activity;
    });
    size_t target = learnts_.size() / 2;
    std::vector<CRef> kept;
    for (size_t i = 0; i < learnts_.size(); ++i) {
        CRef cr = learnts_[i];
        Clause& c = clauses_[cr];
        bool locked = false;
        // Keep clauses that are reasons for current assignments.
        for (SatLit l : c.lits) {
            if (reasons_[satVar(l)] == cr && litValue(l) == kTrue) {
                locked = true;
                break;
            }
        }
        if (i < target && !locked && c.lbd > 2) {
            // Detach.
            for (int w = 0; w < 2; ++w) {
                auto& ws = watches_[satNeg(c.lits[static_cast<size_t>(w)])];
                for (size_t k = 0; k < ws.size(); ++k) {
                    if (ws[k].cref == cr) {
                        ws[k] = ws.back();
                        ws.pop_back();
                        break;
                    }
                }
            }
            c.deleted = true;
            c.lits.clear();
            c.lits.shrink_to_fit();
        } else {
            kept.push_back(cr);
        }
    }
    learnts_ = std::move(kept);
}

SatResult SatSolver::solve(const std::vector<SatLit>& assumptions) {
    ++solves_;
    if (!ok_) return SatResult::Unsat;
    cancelUntil(0);
    if (stopRequested()) return SatResult::Interrupted;
    // Fault injection: a spurious Interrupted with no token set, modelling
    // a cancelled-from-outside solve at an arbitrary point in the run.
    // Every caller must treat it exactly like token cancellation: degrade
    // to Unknown or retry, never adopt a verdict from it.
    if (robust::faultFire(robust::FaultSite::SolverInterrupt))
        return SatResult::Interrupted;

    if (propagate() != kCRefUndef) {
        ok_ = false;
        return SatResult::Unsat;
    }

    uint64_t conflictsAtStart = conflicts_;
    uint64_t restartCount = 0;
    uint64_t restartLimit = 64 * luby(restartCount);
    uint64_t conflictsSinceRestart = 0;

    std::vector<SatLit> learnt;

    for (;;) {
        CRef conflict = propagate();
        if (conflict != kCRefUndef) {
            ++conflicts_;
            ++conflictsSinceRestart;
            if (decisionLevel() == 0) {
                ok_ = false;
                return SatResult::Unsat;
            }
            // Conflict below the assumption level means UNSAT under
            // assumptions.
            if (decisionLevel() <= static_cast<int>(assumptions.size())) {
                // Check whether all decisions so far were assumptions.
                bool allAssumptions = true;
                for (int lvl = 1; lvl <= decisionLevel(); ++lvl) {
                    size_t start = static_cast<size_t>(trailLims_[static_cast<size_t>(lvl - 1)]);
                    size_t end = lvl < decisionLevel()
                                     ? static_cast<size_t>(trailLims_[static_cast<size_t>(lvl)])
                                     : trail_.size();
                    if (start >= end) continue; // Empty level (satisfied assumption).
                    SatLit dec = trail_[start];
                    bool isAssumption = false;
                    for (SatLit a : assumptions)
                        if (a == dec) isAssumption = true;
                    if (!isAssumption) {
                        allAssumptions = false;
                        break;
                    }
                }
                if (allAssumptions) {
                    analyzeFinal(conflict, -1);
                    cancelUntil(0);
                    return SatResult::Unsat;
                }
            }
            int backtrackLevel = 0;
            int lbd = 0;
            analyze(conflict, learnt, backtrackLevel, lbd);
            // Never backtrack past the assumptions.
            cancelUntil(backtrackLevel);
            if (learnt.size() == 1) {
                if (decisionLevel() != 0) cancelUntil(0);
                if (!enqueue(learnt[0], kCRefUndef)) {
                    ok_ = false;
                    return SatResult::Unsat;
                }
            } else {
                Clause c;
                c.lits = learnt;
                c.learnt = true;
                c.lbd = lbd;
                clauses_.push_back(std::move(c));
                CRef cr = static_cast<CRef>(clauses_.size() - 1);
                learnts_.push_back(cr);
                attachClause(cr);
                bumpClauseActivity(clauses_[cr]);
                enqueue(learnt[0], cr);
            }
            decayActivities();
            if (stopRequested()) {
                cancelUntil(0);
                return SatResult::Interrupted;
            }
            if (conflictBudget_ && conflicts_ - conflictsAtStart > conflictBudget_) {
                cancelUntil(0);
                return SatResult::Unknown;
            }
            if (learnts_.size() > maxLearnts_) {
                reduceDB();
                maxLearnts_ = maxLearnts_ + maxLearnts_ / 3;
            }
            if (conflictsSinceRestart >= restartLimit) {
                if (stopRequested()) {
                    cancelUntil(0);
                    return SatResult::Interrupted;
                }
                conflictsSinceRestart = 0;
                restartLimit = 64 * luby(++restartCount);
                // Restart to the assumption boundary, not level 0: the
                // first assumptions.size() levels hold the (possibly empty)
                // assumption decisions, and re-deciding them after every
                // restart would re-propagate the whole assumption prefix —
                // ruinous for pooled solvers whose frame constraints are
                // assumption-activated rather than level-0 units.
                cancelUntil(std::min(decisionLevel(),
                                     static_cast<int>(assumptions.size())));
            }
            continue;
        }

        // Decide: assumptions first.
        SatLit next = -1;
        while (decisionLevel() < static_cast<int>(assumptions.size())) {
            SatLit a = assumptions[static_cast<size_t>(decisionLevel())];
            uint8_t v = litValue(a);
            if (v == kTrue) {
                trailLims_.push_back(static_cast<int>(trail_.size())); // Empty level.
                continue;
            }
            if (v == kFalse) {
                analyzeFinal(kCRefUndef, a);
                cancelUntil(0);
                return SatResult::Unsat;
            }
            next = a;
            break;
        }
        if (next == -1) {
            next = pickBranchLit();
            if (next == -1) {
                // Full model found.
                model_.assign(assigns_.begin(), assigns_.end());
                cancelUntil(0);
                return SatResult::Sat;
            }
            ++decisions_;
        }
        trailLims_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, kCRefUndef);
    }
}

} // namespace autosva::formal
