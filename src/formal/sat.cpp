#include "formal/sat.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.hpp"
#include "robust/faultinject.hpp"

namespace autosva::formal {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;

// Preprocessing bounds. Elimination is NiVER-style: a variable goes only
// when its non-tautological resolvents don't outnumber the clauses they
// replace, with occurrence / resolvent-size caps bounding the quadratic
// resolution work. Inprocessing rounds are budgeted per pass so a pass is
// a bounded pause between restarts, never a second solver run.
constexpr size_t kElimMaxOcc = 10;          ///< Per-polarity occurrence cap.
constexpr size_t kElimMaxResolventLen = 32; ///< Resolvent literal cap.
constexpr size_t kElimRounds = 4;           ///< Elimination sweeps per pass.
constexpr uint64_t kInprocessInterval = 10000; ///< Conflicts between passes.
constexpr size_t kVivifyClauses = 64;       ///< Vivification attempts per pass.
constexpr size_t kProbeVars = 192;          ///< Probed variables per pass.
} // namespace

SatSolver::SatSolver() = default;

int SatSolver::newVar() {
    int v = static_cast<int>(assigns_.size());
    assigns_.push_back(kUndef);
    model_.push_back(kUndef);
    phase_.push_back(kFalse);
    levels_.push_back(0);
    reasons_.push_back(kCRefUndef);
    activity_.push_back(0.0);
    seen_.push_back(0);
    heapPos_.push_back(-1);
    frozen_.push_back(0);
    elim_.push_back(0);
    groupVar_.push_back(0);
    elimSlot_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

void SatSolver::attachClause(CRef cref) {
    const Clause& c = clauses_[cref];
    assert(c.lits.size() >= 2);
    watches_[satNeg(c.lits[0])].push_back({cref, c.lits[1]});
    watches_[satNeg(c.lits[1])].push_back({cref, c.lits[0]});
}

void SatSolver::addClause(std::vector<SatLit> lits) {
    if (!ok_) return;
    assert(decisionLevel() == 0);
    ++clausesAdded_;
    // Eliminated variables are a perf hint, not a contract: lazily encoded
    // cones (the unroller materializes on demand) may reference a variable
    // that elimination already resolved away. Reactivating restores the
    // stored definition clauses, so the new clause lands in a consistent DB.
    for (SatLit l : lits)
        if (elim_[static_cast<size_t>(satVar(l))]) reactivate(satVar(l));
    if (!ok_) return;
    addClauseCore(std::move(lits), /*countHygiene=*/true);
}

SatSolver::CRef SatSolver::addClauseCore(std::vector<SatLit> lits, bool countHygiene) {
    assert(decisionLevel() == 0);
    // Simplify under the level-0 assignment; remove duplicates & tautologies.
    std::sort(lits.begin(), lits.end());
    std::vector<SatLit> out;
    SatLit prev = -1;
    for (SatLit l : lits) {
        if (l == prev) {
            if (countHygiene) ++hygieneLitsDropped_;
            continue;
        }
        if (prev >= 0 && satVar(l) == satVar(prev)) { // Tautology (l, ~l).
            if (countHygiene) ++hygieneDrops_;
            return kCRefUndef;
        }
        uint8_t v = litValue(l);
        if (v == kTrue) { // Satisfied already.
            if (countHygiene) ++hygieneDrops_;
            return kCRefUndef;
        }
        if (v == kFalse) { // Falsified literal dropped.
            if (countHygiene) ++hygieneLitsDropped_;
            continue;
        }
        out.push_back(l);
        prev = l;
    }
    if (out.empty()) {
        ok_ = false;
        return kCRefUndef;
    }
    if (out.size() == 1) {
        if (!enqueue(out[0], kCRefUndef)) {
            ok_ = false;
            return kCRefUndef;
        }
        if (propagate() != kCRefUndef) ok_ = false;
        return kCRefUndef;
    }
    Clause c;
    c.lits = std::move(out);
    clauses_.push_back(std::move(c));
    CRef cr = static_cast<CRef>(clauses_.size() - 1);
    attachClause(cr);
    return cr;
}

bool SatSolver::enqueue(SatLit l, CRef reason) {
    uint8_t v = litValue(l);
    if (v != kUndef) return v == kTrue;
    int var = satVar(l);
    assigns_[var] = satSign(l) ? kFalse : kTrue;
    levels_[var] = decisionLevel();
    reasons_[var] = reason;
    trail_.push_back(l);
    return true;
}

SatSolver::CRef SatSolver::propagate() {
    while (qhead_ < trail_.size()) {
        SatLit p = trail_[qhead_++];
        ++propagations_;
        auto& ws = watches_[p];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (litValue(w.blocker) == kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause& c = clauses_[w.cref];
            // Ensure the false literal is lits[1].
            SatLit falseLit = satNeg(p);
            if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == falseLit);
            ++i;
            if (litValue(c.lits[0]) == kTrue) {
                ws[j++] = {w.cref, c.lits[0]};
                continue;
            }
            // Find a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); ++k) {
                if (litValue(c.lits[k]) != kFalse) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[satNeg(c.lits[1])].push_back({w.cref, c.lits[0]});
                    found = true;
                    break;
                }
            }
            if (found) continue;
            // Unit or conflicting.
            ws[j++] = {w.cref, c.lits[0]};
            if (litValue(c.lits[0]) == kFalse) {
                // Conflict: copy remaining watchers and return.
                while (i < ws.size()) ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.cref;
            }
            enqueue(c.lits[0], w.cref);
        }
        ws.resize(j);
    }
    return kCRefUndef;
}

void SatSolver::bumpVarActivity(int var) {
    activity_[var] += varInc_;
    if (activity_[var] > kRescaleLimit) {
        for (double& a : activity_) a *= 1e-100;
        varInc_ *= 1e-100;
    }
    heapUpdate(var);
}

void SatSolver::heapSiftUp(size_t i) {
    int var = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[var]) break;
        heap_[i] = heap_[parent];
        heapPos_[heap_[i]] = static_cast<int>(i);
        i = parent;
    }
    heap_[i] = var;
    heapPos_[var] = static_cast<int>(i);
}

void SatSolver::heapSiftDown(size_t i) {
    int var = heap_[i];
    for (;;) {
        size_t left = 2 * i + 1;
        if (left >= heap_.size()) break;
        size_t best = left;
        size_t right = left + 1;
        if (right < heap_.size() && activity_[heap_[right]] > activity_[heap_[left]]) best = right;
        if (activity_[heap_[best]] <= activity_[var]) break;
        heap_[i] = heap_[best];
        heapPos_[heap_[i]] = static_cast<int>(i);
        i = best;
    }
    heap_[i] = var;
    heapPos_[var] = static_cast<int>(i);
}

void SatSolver::heapInsert(int var) {
    if (heapPos_[var] >= 0) return;
    heap_.push_back(var);
    heapPos_[var] = static_cast<int>(heap_.size() - 1);
    heapSiftUp(heap_.size() - 1);
}

void SatSolver::heapUpdate(int var) {
    if (heapPos_[var] >= 0) heapSiftUp(static_cast<size_t>(heapPos_[var]));
}

int SatSolver::heapPopMax() {
    int var = heap_[0];
    heapPos_[var] = -1;
    int last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heapPos_[last] = 0;
        heapSiftDown(0);
    }
    return var;
}

void SatSolver::bumpClauseActivity(Clause& c) {
    c.activity += clauseInc_;
    if (c.activity > kRescaleLimit) {
        for (CRef cr : learnts_) clauses_[cr].activity *= 1e-100;
        clauseInc_ *= 1e-100;
    }
}

void SatSolver::decayActivities() {
    varInc_ /= kVarDecay;
    clauseInc_ /= kClauseDecay;
}

void SatSolver::analyze(CRef conflict, std::vector<SatLit>& learnt, int& backtrackLevel,
                        int& lbd) {
    learnt.clear();
    learnt.push_back(0); // Placeholder for the asserting literal.
    int counter = 0;
    SatLit p = -1;
    size_t index = trail_.size();

    CRef reason = conflict;
    do {
        assert(reason != kCRefUndef);
        Clause& c = clauses_[reason];
        if (c.learnt) bumpClauseActivity(c);
        for (size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
            SatLit q = c.lits[k];
            int var = satVar(q);
            if (!seen_[var] && levels_[var] > 0) {
                seen_[var] = 1;
                bumpVarActivity(var);
                if (levels_[var] >= decisionLevel())
                    ++counter;
                else
                    learnt.push_back(q);
            }
        }
        // Pick the next literal to resolve on.
        while (!seen_[satVar(trail_[--index])]) {
        }
        p = trail_[index];
        seen_[satVar(p)] = 0;
        reason = reasons_[satVar(p)];
        --counter;
    } while (counter > 0);
    learnt[0] = satNeg(p);

    // Conflict-clause minimization (self-subsumption, local).
    std::vector<SatLit> minimized;
    minimized.push_back(learnt[0]);
    for (size_t i = 1; i < learnt.size(); ++i) {
        SatLit q = learnt[i];
        CRef r = reasons_[satVar(q)];
        bool redundant = false;
        if (r != kCRefUndef) {
            redundant = true;
            for (SatLit rl : clauses_[r].lits) {
                if (satVar(rl) == satVar(q)) continue;
                if (!seen_[satVar(rl)] && levels_[satVar(rl)] > 0) {
                    redundant = false;
                    break;
                }
            }
        }
        if (!redundant) minimized.push_back(q);
    }
    for (size_t i = 1; i < learnt.size(); ++i) seen_[satVar(learnt[i])] = 0;
    learnt = std::move(minimized);

    // Compute backtrack level & LBD.
    backtrackLevel = 0;
    if (learnt.size() > 1) {
        size_t maxIdx = 1;
        for (size_t i = 2; i < learnt.size(); ++i)
            if (levels_[satVar(learnt[i])] > levels_[satVar(learnt[maxIdx])]) maxIdx = i;
        std::swap(learnt[1], learnt[maxIdx]);
        backtrackLevel = levels_[satVar(learnt[1])];
    }
    std::vector<int> lbdLevels;
    for (SatLit l : learnt) lbdLevels.push_back(levels_[satVar(l)]);
    std::sort(lbdLevels.begin(), lbdLevels.end());
    lbd = static_cast<int>(std::unique(lbdLevels.begin(), lbdLevels.end()) - lbdLevels.begin());
}

void SatSolver::cancelUntil(int level) {
    if (decisionLevel() <= level) return;
    for (size_t i = trail_.size(); i > static_cast<size_t>(trailLims_[level]);) {
        --i;
        int var = satVar(trail_[i]);
        phase_[var] = assigns_[var];
        assigns_[var] = kUndef;
        reasons_[var] = kCRefUndef;
        heapInsert(var);
    }
    trail_.resize(static_cast<size_t>(trailLims_[level]));
    trailLims_.resize(static_cast<size_t>(level));
    qhead_ = trail_.size();
}

void SatSolver::analyzeFinal(CRef conflict, SatLit failedAssumption) {
    conflictCore_.clear();
    if (decisionLevel() == 0) return;
    std::vector<uint8_t>& seen = seen_;
    auto markClause = [&](CRef cr) {
        for (SatLit l : clauses_[cr].lits) {
            int var = satVar(l);
            if (levels_[var] > 0) seen[var] = 1;
        }
    };
    if (conflict != kCRefUndef) {
        markClause(conflict);
    } else {
        // A propagated literal contradicts `failedAssumption`: start from
        // the chain that forced its negation.
        int var = satVar(failedAssumption);
        seen[var] = 1;
        conflictCore_.push_back(failedAssumption);
    }
    for (size_t i = trail_.size(); i-- > static_cast<size_t>(trailLims_.empty() ? 0 : trailLims_[0]);) {
        int var = satVar(trail_[i]);
        if (!seen[var]) continue;
        seen[var] = 0;
        CRef reason = reasons_[var];
        if (reason == kCRefUndef) {
            // A decision at assumption time: part of the core.
            conflictCore_.push_back(trail_[i]);
        } else {
            markClause(reason);
            seen[var] = 0;
        }
    }
    // Clear any leftover marks below the first decision level.
    for (SatLit l : conflictCore_) seen[satVar(l)] = 0;
}

SatLit SatSolver::pickBranchLit() {
    while (!heap_.empty()) {
        int var = heapPopMax();
        if (assigns_[var] == kUndef && !elim_[static_cast<size_t>(var)])
            return mkSatLit(var, phase_[var] == kFalse);
    }
    return -1;
}

uint64_t SatSolver::luby(uint64_t i) {
    // Luby sequence: 1,1,2,1,1,2,4,...
    uint64_t k = 1;
    while ((uint64_t{1} << k) - 1 < i + 1) ++k;
    while ((uint64_t{1} << (k - 1)) - 1 != i) {
        i = i - ((uint64_t{1} << (k - 1)) - 1);
        k = 1;
        while ((uint64_t{1} << k) - 1 < i + 1) ++k;
    }
    return uint64_t{1} << (k - 1);
}

void SatSolver::resetSearchState() {
    if (decisionLevel() != 0) return;
    varInc_ = 1.0;
    std::fill(activity_.begin(), activity_.end(), 0.0);
    for (size_t v = 0; v < phase_.size(); ++v) phase_[v] = kFalse;
    // Rebuild the order heap: with all activities equal it degenerates to
    // (deterministic) variable order, like a fresh solver's.
    heap_.clear();
    std::fill(heapPos_.begin(), heapPos_.end(), -1);
    for (int v = 0; v < static_cast<int>(assigns_.size()); ++v)
        if (assigns_[v] == kUndef && !elim_[static_cast<size_t>(v)]) heapInsert(v);
}

void SatSolver::simplify() {
    if (!ok_ || decisionLevel() != 0) return;
    purgeSatisfied();
    if (!preOn_ || !ok_) return;
    // A bounded subsumption/SSR pass rides along on every simplify(): this
    // is the "encode checkpoint" hook for callers that never run full
    // preprocessing (PDR retires groups through here every few dozen cubes).
    OccIndex idx;
    buildOccIndex(idx);
    subsumptionPass(idx);
    compactLearnts();
}

void SatSolver::purgeSatisfied() {
    if (!ok_ || decisionLevel() != 0) return;
    auto isLockedReason = [&](CRef cr, const Clause& c) {
        for (SatLit l : c.lits)
            if (reasons_[satVar(l)] == cr) return true;
        return false;
    };
    bool removedLearnt = false;
    for (CRef cr = 0; cr < static_cast<CRef>(clauses_.size()); ++cr) {
        Clause& c = clauses_[cr];
        if (c.deleted || c.lits.size() < 2) continue;
        bool satisfied = false;
        for (SatLit l : c.lits) {
            if (litValue(l) == kTrue && levels_[satVar(l)] == 0) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied || isLockedReason(cr, c)) continue;
        for (int w = 0; w < 2; ++w) {
            auto& ws = watches_[satNeg(c.lits[static_cast<size_t>(w)])];
            for (size_t k = 0; k < ws.size(); ++k) {
                if (ws[k].cref == cr) {
                    ws[k] = ws.back();
                    ws.pop_back();
                    break;
                }
            }
        }
        removedLearnt = removedLearnt || c.learnt;
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
    }
    if (removedLearnt) {
        size_t out = 0;
        for (CRef cr : learnts_)
            if (!clauses_[cr].deleted) learnts_[out++] = cr;
        learnts_.resize(out);
    }
}

void SatSolver::reduceDB() {
    std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
        const Clause& ca = clauses_[a];
        const Clause& cb = clauses_[b];
        if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
        return ca.activity < cb.activity;
    });
    size_t target = learnts_.size() / 2;
    std::vector<CRef> kept;
    for (size_t i = 0; i < learnts_.size(); ++i) {
        CRef cr = learnts_[i];
        Clause& c = clauses_[cr];
        bool locked = false;
        // Keep clauses that are reasons for current assignments.
        for (SatLit l : c.lits) {
            if (reasons_[satVar(l)] == cr && litValue(l) == kTrue) {
                locked = true;
                break;
            }
        }
        if (i < target && !locked && c.lbd > 2) {
            // Detach.
            for (int w = 0; w < 2; ++w) {
                auto& ws = watches_[satNeg(c.lits[static_cast<size_t>(w)])];
                for (size_t k = 0; k < ws.size(); ++k) {
                    if (ws[k].cref == cr) {
                        ws[k] = ws.back();
                        ws.pop_back();
                        break;
                    }
                }
            }
            c.deleted = true;
            c.lits.clear();
            c.lits.shrink_to_fit();
        } else {
            kept.push_back(cr);
        }
    }
    learnts_ = std::move(kept);
}

SatResult SatSolver::solve(const std::vector<SatLit>& assumptions) {
    ++solves_;
    if (!ok_) return SatResult::Unsat;
    cancelUntil(0);
    // Assumptions over eliminated variables (a caller forgot to freeze, or
    // froze after a preprocessing pass) transparently reactivate them.
    for (SatLit a : assumptions)
        if (elim_[static_cast<size_t>(satVar(a))]) reactivate(satVar(a));
    if (!ok_) return SatResult::Unsat;
    if (stopRequested()) return SatResult::Interrupted;
    // Fault injection: a spurious Interrupted with no token set, modelling
    // a cancelled-from-outside solve at an arbitrary point in the run.
    // Every caller must treat it exactly like token cancellation: degrade
    // to Unknown or retry, never adopt a verdict from it.
    if (robust::faultFire(robust::FaultSite::SolverInterrupt))
        return SatResult::Interrupted;

    if (propagate() != kCRefUndef) {
        ok_ = false;
        return SatResult::Unsat;
    }

    uint64_t conflictsAtStart = conflicts_;
    uint64_t restartCount = 0;
    uint64_t restartLimit = 64 * luby(restartCount);
    uint64_t conflictsSinceRestart = 0;

    std::vector<SatLit> learnt;

    for (;;) {
        CRef conflict = propagate();
        if (conflict != kCRefUndef) {
            ++conflicts_;
            ++conflictsSinceRestart;
            if (decisionLevel() == 0) {
                ok_ = false;
                return SatResult::Unsat;
            }
            // Conflict below the assumption level means UNSAT under
            // assumptions.
            if (decisionLevel() <= static_cast<int>(assumptions.size())) {
                // Check whether all decisions so far were assumptions.
                bool allAssumptions = true;
                for (int lvl = 1; lvl <= decisionLevel(); ++lvl) {
                    size_t start = static_cast<size_t>(trailLims_[static_cast<size_t>(lvl - 1)]);
                    size_t end = lvl < decisionLevel()
                                     ? static_cast<size_t>(trailLims_[static_cast<size_t>(lvl)])
                                     : trail_.size();
                    if (start >= end) continue; // Empty level (satisfied assumption).
                    SatLit dec = trail_[start];
                    bool isAssumption = false;
                    for (SatLit a : assumptions)
                        if (a == dec) isAssumption = true;
                    if (!isAssumption) {
                        allAssumptions = false;
                        break;
                    }
                }
                if (allAssumptions) {
                    analyzeFinal(conflict, -1);
                    cancelUntil(0);
                    return SatResult::Unsat;
                }
            }
            int backtrackLevel = 0;
            int lbd = 0;
            analyze(conflict, learnt, backtrackLevel, lbd);
            // Never backtrack past the assumptions.
            cancelUntil(backtrackLevel);
            if (learnt.size() == 1) {
                if (decisionLevel() != 0) cancelUntil(0);
                if (!enqueue(learnt[0], kCRefUndef)) {
                    ok_ = false;
                    return SatResult::Unsat;
                }
            } else {
                Clause c;
                c.lits = learnt;
                c.learnt = true;
                c.lbd = lbd;
                clauses_.push_back(std::move(c));
                CRef cr = static_cast<CRef>(clauses_.size() - 1);
                learnts_.push_back(cr);
                attachClause(cr);
                bumpClauseActivity(clauses_[cr]);
                enqueue(learnt[0], cr);
            }
            decayActivities();
            if (stopRequested()) {
                cancelUntil(0);
                return SatResult::Interrupted;
            }
            if (conflictBudget_ && conflicts_ - conflictsAtStart > conflictBudget_) {
                cancelUntil(0);
                return SatResult::Unknown;
            }
            if (learnts_.size() > maxLearnts_) {
                reduceDB();
                maxLearnts_ = maxLearnts_ + maxLearnts_ / 3;
            }
            if (conflictsSinceRestart >= restartLimit) {
                if (stopRequested()) {
                    cancelUntil(0);
                    return SatResult::Interrupted;
                }
                conflictsSinceRestart = 0;
                restartLimit = 64 * luby(++restartCount);
                // Restart to the assumption boundary, not level 0: the
                // first assumptions.size() levels hold the (possibly empty)
                // assumption decisions, and re-deciding them after every
                // restart would re-propagate the whole assumption prefix —
                // ruinous for pooled solvers whose frame constraints are
                // assumption-activated rather than level-0 units.
                cancelUntil(std::min(decisionLevel(),
                                     static_cast<int>(assumptions.size())));
                // Periodic inprocessing for long-lived solvers. Runs at
                // level 0 — the main loop re-decides the assumption prefix
                // afterwards — and is conflict-count scheduled, so it is
                // deterministic across runs and thread interleavings.
                if (preOn_ && conflicts_ - inprocessAt_ >= kInprocessInterval) {
                    cancelUntil(0);
                    inprocessStep();
                    inprocessAt_ = conflicts_;
                    if (!ok_) return SatResult::Unsat;
                    if (stopRequested()) {
                        cancelUntil(0);
                        return SatResult::Interrupted;
                    }
                    if (propagate() != kCRefUndef) {
                        ok_ = false;
                        return SatResult::Unsat;
                    }
                }
            }
            continue;
        }

        // Decide: assumptions first.
        SatLit next = -1;
        while (decisionLevel() < static_cast<int>(assumptions.size())) {
            SatLit a = assumptions[static_cast<size_t>(decisionLevel())];
            uint8_t v = litValue(a);
            if (v == kTrue) {
                trailLims_.push_back(static_cast<int>(trail_.size())); // Empty level.
                continue;
            }
            if (v == kFalse) {
                analyzeFinal(kCRefUndef, a);
                cancelUntil(0);
                return SatResult::Unsat;
            }
            next = a;
            break;
        }
        if (next == -1) {
            next = pickBranchLit();
            if (next == -1) {
                // Full model found.
                model_.assign(assigns_.begin(), assigns_.end());
                if (!elimStack_.empty()) extendModel();
                cancelUntil(0);
                return SatResult::Sat;
            }
            ++decisions_;
        }
        trailLims_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, kCRefUndef);
    }
}

// ---------------------------------------------------------------------------
// Simplification layer: bounded variable elimination, subsumption /
// self-subsuming resolution, and restart-boundary inprocessing.
// ---------------------------------------------------------------------------

void SatSolver::detachClause(CRef cref) {
    const Clause& c = clauses_[static_cast<size_t>(cref)];
    for (int w = 0; w < 2; ++w) {
        auto& ws = watches_[satNeg(c.lits[static_cast<size_t>(w)])];
        for (size_t k = 0; k < ws.size(); ++k) {
            if (ws[k].cref == cref) {
                ws[k] = ws.back();
                ws.pop_back();
                break;
            }
        }
    }
}

void SatSolver::deleteClause(CRef cref) {
    Clause& c = clauses_[static_cast<size_t>(cref)];
    detachClause(cref);
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
}

bool SatSolver::isReasonLocked(CRef cref) const {
    // Level-0 propagations keep real reason crefs on the trail, so even at
    // decision level 0 a clause can be load-bearing for analyzeFinal.
    const Clause& c = clauses_[static_cast<size_t>(cref)];
    for (SatLit l : c.lits)
        if (reasons_[static_cast<size_t>(satVar(l))] == cref && litValue(l) == kTrue) return true;
    return false;
}

uint64_t SatSolver::clauseSig(const std::vector<SatLit>& lits) {
    // Variable-based (not literal-based) on purpose: self-subsuming
    // resolution matches a clause containing one *flipped* literal, which a
    // literal signature would always prune away.
    uint64_t s = 0;
    for (SatLit l : lits) s |= uint64_t{1} << (static_cast<uint32_t>(satVar(l)) & 63U);
    return s;
}

void SatSolver::buildOccIndex(OccIndex& idx) {
    idx.occ.assign(watches_.size(), {});
    idx.sig.assign(clauses_.size(), 0);
    for (CRef cr = 0; cr < static_cast<CRef>(clauses_.size()); ++cr) {
        const Clause& c = clauses_[static_cast<size_t>(cr)];
        if (c.deleted) continue;
        idx.sig[static_cast<size_t>(cr)] = clauseSig(c.lits);
        for (SatLit l : c.lits) idx.occ[static_cast<size_t>(l)].push_back(cr);
    }
}

void SatSolver::strengthenClause(CRef cref, SatLit removeLit, OccIndex& idx) {
    Clause& d = clauses_[static_cast<size_t>(cref)];
    if (isReasonLocked(cref)) return;
    detachClause(cref);
    ++clausesStrengthened_;
    // Drop removeLit, then re-apply level-0 hygiene: strengthening earlier
    // clauses in the same pass may have propagated new units.
    std::vector<SatLit> lits;
    bool satisfied = false;
    for (SatLit l : d.lits) {
        if (l == removeLit) continue;
        uint8_t v = litValue(l);
        if (v == kTrue) {
            satisfied = true;
            break;
        }
        if (v == kFalse) continue;
        lits.push_back(l);
    }
    if (satisfied) {
        d.deleted = true;
        d.lits.clear();
        d.lits.shrink_to_fit();
        return;
    }
    if (lits.empty()) {
        ok_ = false;
        d.deleted = true;
        d.lits.clear();
        return;
    }
    if (lits.size() == 1) {
        d.deleted = true;
        d.lits.clear();
        d.lits.shrink_to_fit();
        if (!enqueue(lits[0], kCRefUndef)) {
            ok_ = false;
            return;
        }
        if (propagate() != kCRefUndef) ok_ = false;
        return;
    }
    d.lits = std::move(lits);
    idx.sig[static_cast<size_t>(cref)] = clauseSig(d.lits);
    attachClause(cref);
}

void SatSolver::subsumptionPass(OccIndex& idx) {
    // Backward subsumption + self-subsuming resolution with 64-bit literal
    // signatures. Subsumers are original clauses; subsumees may be learnt.
    // Occurrence lists go stale as clauses shrink, but every conclusion is
    // recomputed from the subsumee's actual literals, so staleness costs
    // only wasted scans, never soundness.
    std::vector<uint8_t> mark(watches_.size(), 0);
    for (CRef cr = 0; cr < static_cast<CRef>(clauses_.size()) && ok_; ++cr) {
        Clause& c = clauses_[static_cast<size_t>(cr)];
        if (c.deleted || c.learnt || c.lits.size() < 2) continue;
        bool satisfied = false;
        for (SatLit l : c.lits)
            if (litValue(l) == kTrue) {
                satisfied = true;
                break;
            }
        if (satisfied) continue;
        for (SatLit l : c.lits) mark[static_cast<size_t>(l)] = 1;
        SatLit best = c.lits[0];
        for (SatLit l : c.lits)
            if (idx.occ[static_cast<size_t>(l)].size() < idx.occ[static_cast<size_t>(best)].size())
                best = l;
        const size_t csize = c.lits.size();
        const uint64_t csig = idx.sig[static_cast<size_t>(cr)];
        // Candidates containing `best` can be subsumed or strengthened;
        // candidates containing `~best` can only be strengthened (on best
        // itself), but must be scanned too or SSR misses them entirely.
        auto scan = [&](const std::vector<CRef>& cands) {
            for (CRef dr : cands) {
                if (dr == cr || !ok_) continue;
                Clause& d = clauses_[static_cast<size_t>(dr)];
                if (d.deleted || d.lits.size() < csize) continue;
                if ((csig & ~idx.sig[static_cast<size_t>(dr)]) != 0) continue;
                int found = 0;
                SatLit flip = -1;
                for (SatLit dl : d.lits) {
                    if (mark[static_cast<size_t>(dl)])
                        ++found;
                    else if (mark[static_cast<size_t>(satNeg(dl))])
                        flip = dl;
                }
                if (found == static_cast<int>(csize)) {
                    // C ⊆ D: D is redundant.
                    if (!isReasonLocked(dr)) {
                        deleteClause(dr);
                        ++clausesSubsumed_;
                    }
                } else if (found == static_cast<int>(csize) - 1 && flip != -1) {
                    // C \ {~flip} ⊆ D and ~flip's negation ∈ C: resolving C
                    // with D on var(flip) yields D \ {flip} — strengthen in
                    // place.
                    strengthenClause(dr, flip, idx);
                }
            }
        };
        scan(idx.occ[static_cast<size_t>(best)]);
        scan(idx.occ[static_cast<size_t>(satNeg(best))]);
        for (SatLit l : c.lits) mark[static_cast<size_t>(l)] = 0;
    }
}

bool SatSolver::tryEliminate(int var, OccIndex& idx) {
    const SatLit pl = mkSatLit(var);
    const SatLit nl = mkSatLit(var, true);
    std::vector<CRef> pos, neg, learntRefs;
    bool blocked = false;
    auto gather = [&](SatLit lit, std::vector<CRef>& out) {
        for (CRef cr : idx.occ[static_cast<size_t>(lit)]) {
            const Clause& c = clauses_[static_cast<size_t>(cr)];
            if (c.deleted) continue;
            bool has = false;
            for (SatLit l : c.lits)
                if (l == lit) {
                    has = true;
                    break;
                }
            if (!has) continue; // Stale occurrence entry.
            if (c.learnt) {
                learntRefs.push_back(cr);
                continue;
            }
            if (isReasonLocked(cr)) {
                blocked = true;
                return;
            }
            out.push_back(cr);
            if (out.size() > kElimMaxOcc) {
                blocked = true;
                return;
            }
        }
    };
    gather(pl, pos);
    if (!blocked) gather(nl, neg);
    if (blocked) return false;

    // NiVER bound: eliminate only when the non-tautological resolvents do
    // not outnumber the clauses they replace. Pure literals (one side
    // empty) always pass — common for one-sided Tseitin cones.
    std::vector<std::vector<SatLit>> resolvents;
    const size_t budget = pos.size() + neg.size();
    for (CRef pr : pos) {
        for (CRef nr : neg) {
            std::vector<SatLit> r;
            for (SatLit l : clauses_[static_cast<size_t>(pr)].lits)
                if (l != pl) r.push_back(l);
            for (SatLit l : clauses_[static_cast<size_t>(nr)].lits)
                if (l != nl) r.push_back(l);
            std::sort(r.begin(), r.end());
            r.erase(std::unique(r.begin(), r.end()), r.end());
            bool taut = false;
            for (size_t i = 0; i + 1 < r.size(); ++i)
                if (satVar(r[i]) == satVar(r[i + 1])) {
                    taut = true;
                    break;
                }
            if (taut) continue;
            if (r.size() > kElimMaxResolventLen) return false;
            resolvents.push_back(std::move(r));
            if (resolvents.size() > budget) return false;
        }
    }

    // Commit. Original clauses go on the reconstruction stack (extendModel
    // replays them newest-first); learnt clauses on the variable are merely
    // implied, so they are deleted rather than stored or resolved.
    ElimEntry entry;
    entry.var = var;
    for (CRef cr : pos) entry.clauses.push_back(clauses_[static_cast<size_t>(cr)].lits);
    for (CRef cr : neg) entry.clauses.push_back(clauses_[static_cast<size_t>(cr)].lits);
    for (CRef cr : pos) deleteClause(cr);
    for (CRef cr : neg) deleteClause(cr);
    for (CRef cr : learntRefs)
        if (!isReasonLocked(cr)) deleteClause(cr);
    elim_[static_cast<size_t>(var)] = 1;
    elimSlot_[static_cast<size_t>(var)] = static_cast<int32_t>(elimStack_.size());
    elimStack_.push_back(std::move(entry));
    ++varsEliminated_;
    for (auto& r : resolvents) {
        CRef cr = addClauseCore(std::move(r), /*countHygiene=*/false);
        if (!ok_) return true;
        if (cr != kCRefUndef) {
            idx.sig.resize(clauses_.size(), 0);
            idx.sig[static_cast<size_t>(cr)] = clauseSig(clauses_[static_cast<size_t>(cr)].lits);
            for (SatLit l : clauses_[static_cast<size_t>(cr)].lits)
                idx.occ[static_cast<size_t>(l)].push_back(cr);
        }
    }
    return true;
}

void SatSolver::eliminatePass(OccIndex& idx) {
    // Cheapest-first sweep (occurrence product, ties by index) so easy
    // eliminations expose further ones; repeated a bounded number of rounds.
    struct Cand {
        uint64_t cost;
        int var;
    };
    std::vector<Cand> cands;
    for (int v = 0; v < numVars(); ++v) {
        if (frozen_[static_cast<size_t>(v)] || elim_[static_cast<size_t>(v)]) continue;
        if (assigns_[static_cast<size_t>(v)] != kUndef) continue;
        size_t p = idx.occ[static_cast<size_t>(mkSatLit(v))].size();
        size_t n = idx.occ[static_cast<size_t>(mkSatLit(v, true))].size();
        cands.push_back({static_cast<uint64_t>(p) * static_cast<uint64_t>(n), v});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        if (a.cost != b.cost) return a.cost < b.cost;
        return a.var < b.var;
    });
    bool changed = true;
    for (size_t round = 0; changed && ok_ && round < kElimRounds; ++round) {
        changed = false;
        for (const Cand& c : cands) {
            if (!ok_) break;
            int v = c.var;
            if (frozen_[static_cast<size_t>(v)] || elim_[static_cast<size_t>(v)]) continue;
            if (assigns_[static_cast<size_t>(v)] != kUndef) continue;
            if (tryEliminate(v, idx)) changed = true;
        }
    }
}

void SatSolver::compactLearnts() {
    size_t out = 0;
    for (CRef cr : learnts_)
        if (!clauses_[static_cast<size_t>(cr)].deleted) learnts_[out++] = cr;
    learnts_.resize(out);
}

void SatSolver::reactivate(int var) {
    // Worklist, not recursion: a stored definition clause may itself
    // reference further eliminated variables (cascades from repeated
    // preprocessing passes).
    std::vector<std::vector<SatLit>> queue;
    auto wake = [&](int v) {
        int32_t slot = elimSlot_[static_cast<size_t>(v)];
        if (slot < 0) return;
        elimSlot_[static_cast<size_t>(v)] = -1;
        elim_[static_cast<size_t>(v)] = 0;
        ++varsReactivated_;
        if (assigns_[static_cast<size_t>(v)] == kUndef) heapInsert(v);
        ElimEntry& e = elimStack_[static_cast<size_t>(slot)];
        for (auto& cl : e.clauses) queue.push_back(std::move(cl));
        e.var = -1;
        e.clauses.clear();
        e.clauses.shrink_to_fit();
    };
    wake(var);
    while (!queue.empty() && ok_) {
        std::vector<SatLit> cl = std::move(queue.back());
        queue.pop_back();
        for (SatLit l : cl)
            if (elim_[static_cast<size_t>(satVar(l))]) wake(satVar(l));
        addClauseCore(std::move(cl), /*countHygiene=*/false);
    }
}

void SatSolver::extendModel() {
    // Replay eliminated definitions newest-first. Entry i's stored clauses
    // only mention variables eliminated later (already replayed) or live
    // ones, so each variable's value is determined by the time we reach it.
    // The classic argument applies: with every resolvent satisfied, at most
    // one polarity of the eliminated variable is forced by its clauses.
    for (size_t i = elimStack_.size(); i-- > 0;) {
        const ElimEntry& e = elimStack_[i];
        if (e.var < 0) continue; // Reactivated; value came from the trail.
        uint8_t val = kFalse;
        for (const auto& cl : e.clauses) {
            bool sat = false;
            SatLit mine = -1;
            for (SatLit l : cl) {
                if (satVar(l) == e.var) {
                    mine = l;
                    continue;
                }
                uint8_t mv = model_[static_cast<size_t>(satVar(l))];
                if (mv != kUndef && (mv == kTrue) != satSign(l)) {
                    sat = true;
                    break;
                }
            }
            if (!sat && mine != -1) val = satSign(mine) ? kFalse : kTrue;
        }
        model_[static_cast<size_t>(e.var)] = val;
    }
}

void SatSolver::preprocess(bool force) {
    if (!preOn_ || !ok_ || decisionLevel() != 0) return;
    // Growth threshold: per-frame / per-job checkpoint calls are cheap
    // no-ops unless the clause DB grew enough to make a pass worthwhile.
    uint64_t grown = clausesAdded_ - preprocessedAtClauses_;
    if (!force && grown < 32 + liveClauses() / 8) return;
    preprocessedAtClauses_ = clausesAdded_;
    if (propagate() != kCRefUndef) {
        ok_ = false;
        return;
    }
    purgeSatisfied();
    OccIndex idx;
    buildOccIndex(idx);
    subsumptionPass(idx);
    if (ok_) eliminatePass(idx);
    if (ok_) subsumptionPass(idx);
    compactLearnts();
    purgeSatisfied();
}

void SatSolver::inprocessStep() {
    ++inprocessPasses_;
    // Inprocessing spans deliberately carry no "queries" arg: they are not
    // solver queries, so the per-obligation reconciliation stays intact.
    obs::Span span(traceRec_, "solver", "inprocess", traceOb_);
    uint64_t viv0 = clausesVivified_;
    uint64_t fl0 = failedLiterals_;
    vivifyRound(kVivifyClauses);
    if (ok_ && !stopRequested()) probeRound(kProbeVars);
    span.arg("vivified", clausesVivified_ - viv0);
    span.arg("failed_lits", failedLiterals_ - fl0);
}

void SatSolver::vivifyRound(size_t budget) {
    if (clauses_.empty()) return;
    const size_t n = clauses_.size();
    size_t attempts = 0;
    for (size_t scanned = 0; scanned < n && attempts < budget && ok_; ++scanned) {
        if ((scanned & 15U) == 0 && stopRequested()) return;
        CRef cr = static_cast<CRef>(vivifyHead_ % n);
        vivifyHead_ = (vivifyHead_ + 1) % n;
        Clause& c = clauses_[static_cast<size_t>(cr)];
        if (c.deleted || c.learnt || c.lits.size() < 3) continue;
        bool skip = false;
        for (SatLit l : c.lits) {
            // Group-guarded clauses are left alone: vivifying one would bake
            // the current activation state into a permanent strengthening.
            if (groupVar_[static_cast<size_t>(satVar(l))] || litValue(l) == kTrue) {
                skip = true;
                break;
            }
        }
        if (skip || isReasonLocked(cr)) continue;
        ++attempts;
        // Detach so the clause cannot propagate against itself, then walk
        // its literals under the growing trial assignment.
        detachClause(cr);
        std::vector<SatLit> kept;
        bool changed = false;
        for (SatLit l : c.lits) {
            uint8_t v = litValue(l);
            if (v == kTrue) { // Prefix implies l: the tail is redundant.
                kept.push_back(l);
                changed = true;
                break;
            }
            if (v == kFalse) { // Prefix falsifies l: l is redundant.
                changed = true;
                continue;
            }
            kept.push_back(l);
            trailLims_.push_back(static_cast<int>(trail_.size()));
            enqueue(satNeg(l), kCRefUndef);
            if (propagate() != kCRefUndef) { // Prefix alone is a clause.
                changed = true;
                break;
            }
        }
        cancelUntil(0);
        if (changed && kept.size() < c.lits.size()) {
            ++clausesVivified_;
            c.deleted = true;
            c.lits.clear();
            c.lits.shrink_to_fit();
            addClauseCore(std::move(kept), /*countHygiene=*/false);
        } else {
            attachClause(cr);
        }
    }
}

void SatSolver::probeRound(size_t budget) {
    const int n = numVars();
    if (n == 0) return;
    size_t attempts = 0;
    for (int scanned = 0; scanned < n && attempts < budget && ok_; ++scanned) {
        if ((scanned & 15) == 0 && stopRequested()) return;
        int v = probeHead_ % n;
        probeHead_ = (probeHead_ + 1) % n;
        if (assigns_[static_cast<size_t>(v)] != kUndef) continue;
        if (frozen_[static_cast<size_t>(v)] || elim_[static_cast<size_t>(v)]) continue;
        ++attempts;
        for (int sign = 0; sign < 2 && ok_; ++sign) {
            if (assigns_[static_cast<size_t>(v)] != kUndef) break; // First probe decided it.
            SatLit l = mkSatLit(v, sign == 1);
            trailLims_.push_back(static_cast<int>(trail_.size()));
            enqueue(l, kCRefUndef);
            CRef confl = propagate();
            cancelUntil(0);
            if (confl != kCRefUndef) {
                ++failedLiterals_;
                if (!enqueue(satNeg(l), kCRefUndef) || propagate() != kCRefUndef) {
                    ok_ = false;
                    return;
                }
            }
        }
    }
}

} // namespace autosva::formal
