// Word-level Design -> bit-level AIG translation.
#pragma once

#include <unordered_map>
#include <vector>

#include "formal/aig.hpp"
#include "rtlir/design.hpp"

namespace autosva::formal {

/// Result of bit-blasting: the AIG plus maps back to the word-level design
/// (needed for counterexample trace extraction).
struct BitBlast {
    Aig aig;
    /// Per design node: AIG literals, LSB first.
    std::unordered_map<ir::NodeId, std::vector<AigLit>> bits;
    /// Design input node -> AIG input vars (LSB first).
    std::unordered_map<ir::NodeId, std::vector<uint32_t>> inputVars;
    /// Design register node -> AIG latch vars (LSB first).
    std::unordered_map<ir::NodeId, std::vector<uint32_t>> latchVars;

    [[nodiscard]] AigLit bit(ir::NodeId node, int i) const { return bits.at(node)[static_cast<size_t>(i)]; }
    /// 1-bit node convenience accessor.
    [[nodiscard]] AigLit lit(ir::NodeId node) const { return bits.at(node)[0]; }
};

/// Throws util::FrontendError on unsupported constructs (non-constant
/// division).
[[nodiscard]] BitBlast bitblast(const ir::Design& design);

/// bitblast() followed by the structural rewrite pass (strashing,
/// absorption, latch merging — see aig_rewrite.hpp) when `rewrite` is set,
/// with the word-level maps remapped onto the rewritten graph. This is the
/// entry point the verification engine uses; the plain overload preserves
/// the raw construction graph for tools that export it.
[[nodiscard]] BitBlast bitblast(const ir::Design& design, bool rewrite);

} // namespace autosva::formal
