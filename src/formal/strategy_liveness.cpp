// Liveness-to-safety transformation (Biere/Artho/Schuppan): a justice
// obligation "j happens infinitely often" fails iff the design has a lasso
// (a reachable loop) with every fairness assumption satisfied inside the
// loop but j never occurring. The transform adds a nondeterministic save
// oracle, shadow copies of all latches (captured at the save point), and
// loop-closure / seen trackers, turning the lasso search into plain safety
// reachability that the BMC / k-induction / PDR strategies discharge.
#include "formal/strategy.hpp"

namespace autosva::formal {

LivenessTransform::LivenessTransform(const ir::Design& design, const BitBlast& bb,
                                     const std::vector<AigLit>& fairness)
    : aig_(bb.aig) { // Copy preserves var numbering; original lits stay valid.
    Aig& a = aig_;

    saveOracle_ = a.mkInput("__l2s_save");
    AigLit saved = a.mkLatch(0, "__l2s_saved");
    AigLit saveNow = a.mkAnd(saveOracle_, aigNot(saved));
    AigLit savedNext = a.mkOr(saved, saveNow);
    a.setLatchNext(saved, savedNext);

    // Shadow copy of every original latch, captured at the save point.
    std::vector<uint32_t> originalLatches = bb.aig.latches();
    AigLit stateEq = kAigTrue;
    for (uint32_t lv : originalLatches) {
        AigLit latch = aigMkLit(lv);
        AigLit shadow = a.mkLatch(-1, "__l2s_shadow_" + std::to_string(lv));
        a.setLatchNext(shadow, a.mkMux(saveNow, latch, shadow));
        stateEq = a.mkAnd(stateEq, aigNot(a.mkXor(latch, shadow)));
    }
    AigLit loopClosed = a.mkAnd(saved, stateEq);

    // Fairness trackers: each assumed-fair signal must occur inside the loop.
    AigLit fairAll = kAigTrue;
    for (AigLit f : fairness) {
        AigLit seen = a.mkLatch(0, "__l2s_fair");
        a.setLatchNext(seen, a.mkAnd(savedNext, a.mkOr(seen, f)));
        fairAll = a.mkAnd(fairAll, seen);
    }

    // Per-justice-obligation "seen" trackers and bad nets.
    for (const auto& ob : design.obligations()) {
        if (ob.xprop || ob.kind != ir::Obligation::Kind::Justice) continue;
        AigLit j = bb.lit(ob.net);
        AigLit seen = a.mkLatch(0, "__l2s_just_" + ob.name);
        a.setLatchNext(seen, a.mkAnd(savedNext, a.mkOr(seen, j)));
        // Violation: loop closed, all fairness seen, justice never seen.
        bads_[&ob] = a.mkAnd(a.mkAnd(loopClosed, fairAll), aigNot(seen));
        seens_[&ob] = seen;
    }
}

} // namespace autosva::formal
