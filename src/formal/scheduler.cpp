#include "formal/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <random>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "cache/fingerprint.hpp"
#include "cache/store.hpp"
#include "obs/trace.hpp"
#include "robust/faultinject.hpp"
#include "sva/report.hpp"
#include "util/stopwatch.hpp"

namespace autosva::formal {

namespace {

/// Peak RSS of the process in KiB (0 when the platform has no getrusage).
/// macOS reports ru_maxrss in bytes; Linux in kilobytes.
uint64_t peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<uint64_t>(ru.ru_maxrss) / 1024;
#else
    return static_cast<uint64_t>(ru.ru_maxrss);
#endif
#else
    return 0;
#endif
}

// ---------------------------------------------------------------------------
// Work-stealing task queues
// ---------------------------------------------------------------------------
// Task indices are dealt round-robin across per-worker deques. A worker pops
// from the back of its own deque (LIFO keeps its cache warm) and steals from
// the front of its neighbours' (FIFO minimizes contention on the owner's
// end). SAT solving dominates per-task cost by orders of magnitude, so a
// mutex per deque is plenty.
class WorkStealingQueues {
public:
    WorkStealingQueues(int workers, size_t numTasks) : deques_(static_cast<size_t>(workers)) {
        for (size_t t = 0; t < numTasks; ++t)
            deques_[t % deques_.size()].items.push_back(t);
    }

    bool pop(int worker, size_t& out) {
        Deque& d = deques_[static_cast<size_t>(worker)];
        std::lock_guard<std::mutex> lock(d.mutex);
        if (d.items.empty()) return false;
        out = d.items.back();
        d.items.pop_back();
        return true;
    }

    bool steal(int worker, size_t& out) {
        const int n = static_cast<int>(deques_.size());
        for (int i = 1; i < n; ++i) {
            Deque& d = deques_[static_cast<size_t>((worker + i) % n)];
            std::lock_guard<std::mutex> lock(d.mutex);
            if (d.items.empty()) continue;
            out = d.items.front();
            d.items.pop_front();
            return true;
        }
        return false;
    }

private:
    struct Deque {
        std::mutex mutex;
        std::deque<size_t> items;
    };
    std::vector<Deque> deques_;
};

/// Clamp an EngineOptions::jobs value to the usable worker count for
/// `numTasks` tasks. parallelFor applies the same clamp, so callers that
/// size per-worker state (solver pools) agree with it on the count.
[[nodiscard]] int workerCount(int jobs, size_t numTasks) {
    return std::min(std::max(jobs, 1), static_cast<int>(numTasks));
}

/// Runs body(worker, 0..numTasks-1) on `workers` threads (inline when <= 1,
/// which reproduces strict sequential declaration order). Blocks until
/// every task finished; the first exception thrown by a task is rethrown
/// here. The worker index passed to `body` identifies the executing thread
/// (0..workers-1), so per-worker state needs no locking.
void parallelFor(int workers, size_t numTasks,
                 const std::function<void(int, size_t)>& body) {
    if (numTasks == 0) return;
    workers = workerCount(workers, numTasks);
    if (workers <= 1) {
        for (size_t t = 0; t < numTasks; ++t) body(0, t);
        return;
    }
    WorkStealingQueues queues(workers, numTasks);
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            size_t t = 0;
            while (queues.pop(w, t) || queues.steal(w, t)) {
                try {
                    body(w, t);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (!firstError) firstError = std::current_exception();
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    if (firstError) std::rethrow_exception(firstError);
}

void finalizeDepth(ObligationJob& job, const EngineOptions& opts) {
    if (job.result.status == Status::Unknown && job.result.depth < 0)
        job.result.depth = opts.bmcDepth;
    // A stage may have tagged a degradation reason before a later stage
    // (chain PDR, a cache hit, a budget refill) decided the job after all.
    if (job.result.status != Status::Unknown)
        job.result.unknownReason = UnknownReason::None;
}

/// Perturbation-fuzz hook: the processing order for `n` jobs — identity,
/// or a deterministically seeded shuffle when EngineOptions::perturbSeed
/// is set. Everything downstream is submission-order-insensitive (batched
/// BMC answers are semantic, PDR canonicalizes its cubes, the sink
/// restores declaration order), so any seed must produce the
/// byte-identical canonical report — the fuzz test asserts it. `salt`
/// decouples the permutations of different phases.
[[nodiscard]] std::vector<size_t> perturbedOrder(size_t n, uint64_t seed, uint64_t salt) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    if (seed != 0 && n >= 2) {
        std::mt19937_64 rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL));
        std::shuffle(order.begin(), order.end(), rng);
    }
    return order;
}

// ---------------------------------------------------------------------------
// Liveness lemma DAG
// ---------------------------------------------------------------------------

/// Transitive latch support of `root`: every latch var whose state can
/// influence the literal through combinational logic and next-state
/// functions (the same cone-of-influence notion the cache fingerprints
/// use). Sorted, so disjointness checks are a merge walk.
std::vector<uint32_t> latchSupport(const Aig& aig, AigLit root) {
    std::vector<uint32_t> support;
    std::vector<char> visited(aig.numVars(), 0);
    std::vector<uint32_t> stack{aigVar(root)};
    while (!stack.empty()) {
        uint32_t v = stack.back();
        stack.pop_back();
        if (visited[v]) continue;
        visited[v] = 1;
        switch (aig.kind(v)) {
        case Aig::VarKind::And:
            stack.push_back(aigVar(aig.fanin0(v)));
            stack.push_back(aigVar(aig.fanin1(v)));
            break;
        case Aig::VarKind::Latch:
            support.push_back(v);
            stack.push_back(aigVar(aig.latchNext(v)));
            break;
        case Aig::VarKind::Const:
        case Aig::VarKind::Input:
            break;
        }
    }
    std::sort(support.begin(), support.end());
    return support;
}

[[nodiscard]] bool supportsIntersect(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
}

/// Topological lemma-DAG waves over the justice obligations: obligation i
/// depends on every earlier obligation j whose justice-net latch support
/// (over the *base* AIG — the shared l2s bookkeeping state would make
/// everything overlap) intersects its own; its wave is one past the
/// deepest dependency. Obligations in one wave have pairwise-disjoint
/// support, so discharging them in parallel forfeits only lemmas about
/// state they never read — every overlapping (potentially strengthening)
/// lemma still arrives via the inter-wave barrier. Wave membership is a
/// function of declaration order and graph structure alone, so reports
/// stay byte-identical for any worker count.
std::vector<std::vector<ObligationJob*>> lemmaWaves(const Aig& baseAig, const BitBlast& bb,
                                                    const std::vector<ObligationJob*>& jobs) {
    const size_t n = jobs.size();
    std::vector<std::vector<uint32_t>> support(n);
    for (size_t i = 0; i < n; ++i)
        support[i] = latchSupport(baseAig, bb.lit(jobs[i]->ob->net));
    std::vector<size_t> wave(n, 0);
    size_t maxWave = 0;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < i; ++j)
            if (supportsIntersect(support[i], support[j]))
                wave[i] = std::max(wave[i], wave[j] + 1);
        maxWave = std::max(maxWave, wave[i]);
    }
    std::vector<std::vector<ObligationJob*>> waves(maxWave + 1);
    for (size_t i = 0; i < n; ++i) waves[wave[i]].push_back(jobs[i]);
    return waves;
}

// ---------------------------------------------------------------------------
// Proof-cache glue
// ---------------------------------------------------------------------------

/// Bounds on what one artifact may carry into / out of the store; silent
/// truncation of lemmas is fine because they are only reuse candidates.
constexpr size_t kMaxStoredLemmas = 4096;
constexpr size_t kMaxSeedCubes = 2048;

/// Content key of one obligation at one pipeline stage: the union cone of
/// bad, pdrBad, the l2s save oracle, and every frame constraint (an
/// unsatisfiable constraint set elsewhere in the design can flip any
/// verdict, so constraints are always part of the key).
cache::Fingerprint jobFingerprint(const ProofContext& ctx, const ObligationJob& job,
                                  cache::Stage stage) {
    std::vector<AigLit> roots{job.bad, job.pdrBad, ctx.saveOracle};
    roots.insert(roots.end(), ctx.constraints.begin(), ctx.constraints.end());
    uint64_t digest = cache::optionsDigest(ctx.opts, stage, job.coverMode, job.ob->kind);
    return cache::fingerprintCone(ctx.aig, roots, digest);
}

/// Adopts a cached verdict if it is shape-plausible for this job; a reject
/// degrades to a miss (full proof), never to a wrong report.
bool applyArtifact(const cache::ProofArtifact& art, ObligationJob& job) {
    switch (art.status) {
    case Status::Failed:
        if (job.coverMode || art.trace.inputs.empty()) return false;
        break;
    case Status::Covered:
        if (!job.coverMode || art.trace.inputs.empty()) return false;
        break;
    case Status::Proven:
        if (job.coverMode) return false;
        break;
    case Status::Unreachable:
        if (!job.coverMode) return false;
        break;
    case Status::Unknown:
        break;
    case Status::Skipped:
        return false;
    }
    job.result.status = art.status;
    job.result.depth = art.depth;
    job.result.trace = art.trace;
    job.result.cached = true;
    return true;
}

cache::ProofArtifact makeArtifact(uint64_t structKey, const ObligationJob& job,
                                  const Aig& aig) {
    cache::ProofArtifact art;
    art.structKey = structKey;
    art.status = job.result.status;
    art.depth = job.result.depth;
    if (job.result.status == Status::Failed || job.result.status == Status::Covered)
        art.trace = job.result.trace;
    for (const PdrCube& cube : job.invariant) {
        if (art.lemmas.size() >= kMaxStoredLemmas) break;
        cache::NamedCube named;
        named.lits.reserve(cube.size());
        bool portable = true;
        for (auto [var, val] : cube) {
            const std::string& name = aig.varName(var);
            if (name.empty()) {
                portable = false;
                break;
            }
            named.lits.emplace_back(name, val);
        }
        if (portable) art.lemmas.push_back(std::move(named));
    }
    return art;
}

/// Re-targets named lemma cubes onto the current AIG. Cubes naming latches
/// that no longer exist are dropped; if more than half are lost, the design
/// drifted beyond the bounded delta where reuse pays and nothing is seeded.
std::vector<PdrCube> mapLemmas(const std::vector<cache::NamedCube>& lemmas,
                               const std::unordered_map<std::string, uint32_t>& latchByName) {
    std::vector<PdrCube> cubes;
    cubes.reserve(std::min(lemmas.size(), kMaxSeedCubes));
    for (const cache::NamedCube& named : lemmas) {
        if (cubes.size() >= kMaxSeedCubes) break;
        if (named.lits.empty()) continue;
        PdrCube cube;
        cube.reserve(named.lits.size());
        bool mapped = true;
        for (const auto& [name, val] : named.lits) {
            auto it = latchByName.find(name);
            if (it == latchByName.end()) {
                mapped = false;
                break;
            }
            cube.emplace_back(it->second, val);
        }
        if (mapped) cubes.push_back(std::move(cube));
    }
    if (cubes.size() * 2 < lemmas.size()) cubes.clear();
    return cubes;
}

} // namespace

// ---------------------------------------------------------------------------
// ObligationScheduler
// ---------------------------------------------------------------------------

ObligationScheduler::ObligationScheduler(const ir::Design& design, EngineOptions opts)
    : design_(design), opts_(opts), bb_(bitblast(design, opts_.aigRewrite)),
      bmc_(makeBmcStrategy()), induction_(makeInductionStrategy()), pdr_(makePdrStrategy()) {
    opts_.maxInductionK = std::min(opts_.maxInductionK, opts_.bmcDepth);
    for (const auto& ob : design.obligations()) {
        if (ob.xprop) continue;
        if (ob.kind == ir::Obligation::Kind::Constraint)
            constraints_.push_back(bb_.lit(ob.net));
        else if (ob.kind == ir::Obligation::Kind::Fairness)
            fairness_.push_back(bb_.lit(ob.net));
    }
    if (!opts_.cacheDir.empty()) {
        cache_ = std::make_unique<cache::ProofCache>(opts_.cacheDir);
        structSalt_ = cache::designSalt(design);
        baseLatchNames_ = cache::latchNameMap(bb_.aig);
        if (opts_.trace) cache_->attachRecorder(opts_.trace);
    }
}

ObligationScheduler::~ObligationScheduler() = default;

void ObligationScheduler::settleDeadline(ObligationJob& job,
                                         const robust::Watchdog::JobGuard& guard) const {
    job.watchdogStop = nullptr;
    if (job.result.status != Status::Unknown) {
        job.result.unknownReason = UnknownReason::None;
        return;
    }
    const robust::Watchdog::Cause cause = guard.cause();
    if (cause == robust::Watchdog::Cause::None) return;
    switch (cause) {
    case robust::Watchdog::Cause::JobTimeout:
        job.result.unknownReason = UnknownReason::Timeout;
        break;
    case robust::Watchdog::Cause::RunBudget:
        job.result.unknownReason = UnknownReason::RunBudget;
        break;
    case robust::Watchdog::Cause::ExternalStop:
    case robust::Watchdog::Cause::None:
        job.result.unknownReason = UnknownReason::Interrupted;
        break;
    }
    if (opts_.trace)
        opts_.trace->instant("robust", "deadline", static_cast<int64_t>(job.index),
                             {{"cause", static_cast<uint64_t>(cause)}});
}

bool ObligationScheduler::cacheStorable(const ObligationJob& job) {
    if (job.result.unknownReason != UnknownReason::None) return false;
    if (job.result.status == Status::Unknown) {
        // An injected solver interrupt degrades a job to Unknown without a
        // watchdog cause; keep those out of the cache too.
        robust::FaultPlan* plan = robust::FaultPlan::active();
        if (plan != nullptr && plan->fired(robust::FaultSite::SolverInterrupt)) return false;
    }
    return true;
}

void ObligationScheduler::seedFromNearMiss(ObligationJob& job, uint64_t structKey) const {
    if (!opts_.cacheLemmaSeeding || !opts_.usePdr) return;
    auto near = cache_->lookupNear(structKey);
    if (!near || near->lemmas.empty()) return;
    job.pdrSeeds = mapLemmas(near->lemmas, job.onLiveAig ? liveLatchNames_ : baseLatchNames_);
    if (!job.pdrSeeds.empty()) {
        cache_->noteSeeded(job.pdrSeeds.size());
        if (opts_.trace)
            opts_.trace->instant("cache", "near-miss-seed", static_cast<int64_t>(job.index),
                                 {{"seeds", job.pdrSeeds.size()}});
    }
}

bool ObligationScheduler::tryServeFromCache(const ProofContext& ctx, ObligationJob& job,
                                            cache::Stage stage, bool allowSeeding,
                                            cache::Fingerprint& fp,
                                            uint64_t& structKey) const {
    fp = jobFingerprint(ctx, job, stage);
    structKey = cache::structKey(job.ob->name, job.ob->kind, stage, structSalt_);
    if (auto art = cache_->lookup(fp); art && applyArtifact(*art, job)) {
        if (opts_.trace)
            opts_.trace->instant("cache", "hit", static_cast<int64_t>(job.index),
                                 {{"status", static_cast<uint64_t>(job.result.status)}});
        return true;
    }
    if (opts_.trace) opts_.trace->instant("cache", "miss", static_cast<int64_t>(job.index));
    if (allowSeeding) seedFromNearMiss(job, structKey);
    return false;
}

void ObligationScheduler::discharge(const ProofContext& ctx, ObligationJob& job,
                                    bool withPdr) const {
    const cache::Stage stage = withPdr ? cache::Stage::FullPipeline : cache::Stage::Frontier;
    cache::Fingerprint fp;
    uint64_t structKey = 0;
    if (cache_ && tryServeFromCache(ctx, job, stage, /*allowSeeding=*/withPdr, fp, structKey))
        return;
    robust::Watchdog::JobGuard guard = guardJob(job);
    job.watchdogStop = guard.token();
    if (job.result.status == Status::Unknown) bmc_->run(ctx, job);
    if (job.result.status == Status::Unknown) induction_->run(ctx, job);
    // Under the portfolio/budget-pool knobs the PDR stage (and with it the
    // cache store, which must record the post-refill verdict) runs
    // detached at the phase barrier — see runPdrLadderStage/refillPass.
    if (withPdr && fancyPdr()) {
        settleDeadline(job, guard);
        return;
    }
    if (withPdr && job.result.status == Status::Unknown) pdr_->run(ctx, job);
    settleDeadline(job, guard);
    if (cache_ && cacheStorable(job)) cache_->store(fp, makeArtifact(structKey, job, ctx.aig));
}

void ObligationScheduler::runPhaseBatched(const ProofContext& baseCtx,
                                          const std::vector<ObligationJob*>& phaseJobs,
                                          bool withPdr, sva::ResultSink* sink) {
    const cache::Stage stage = withPdr ? cache::Stage::FullPipeline : cache::Stage::Frontier;

    // Cache pass, in declaration order (lookups hit the open-time snapshot,
    // so order cannot leak into results — this is just the cheap part).
    std::vector<ObligationJob*> toProve;
    std::vector<cache::Fingerprint> fps;
    std::vector<uint64_t> structKeys;
    toProve.reserve(phaseJobs.size());
    for (ObligationJob* job : phaseJobs) {
        cache::Fingerprint fp;
        uint64_t structKey = 0;
        if (cache_ &&
            tryServeFromCache(baseCtx, *job, stage, /*allowSeeding=*/withPdr, fp, structKey)) {
            if (sink) {
                finalizeDepth(*job, opts_);
                sink->publish(job->index, job->result);
            }
            continue;
        }
        toProve.push_back(job);
        fps.push_back(fp);
        structKeys.push_back(structKey);
    }
    if (toProve.empty()) return;

    // Fuzz hook: permute the submission order (which changes batch
    // composition and pool warm-up order — both of which the determinism
    // contract says cannot move a verdict). One permutation reorders the
    // three parallel arrays together.
    if (opts_.perturbSeed != 0) {
        const auto order = perturbedOrder(toProve.size(), opts_.perturbSeed, withPdr ? 1 : 2);
        std::vector<ObligationJob*> pJobs(toProve.size());
        std::vector<cache::Fingerprint> pFps(toProve.size());
        std::vector<uint64_t> pKeys(toProve.size());
        for (size_t i = 0; i < order.size(); ++i) {
            pJobs[i] = toProve[order[i]];
            pFps[i] = fps[order[i]];
            pKeys[i] = structKeys[order[i]];
        }
        toProve.swap(pJobs);
        fps.swap(pFps);
        structKeys.swap(pKeys);
    }

    // Frame-lockstep batched BMC: a static round-robin partition (not work
    // stealing) keeps each batch's composition deterministic for a given
    // worker count; everything the batch mix could influence — witness
    // models — never reaches the canonical report (see strategy_bmc.cpp).
    const int workers = workerCount(opts_.jobs, toProve.size());
    std::vector<std::vector<ObligationJob*>> batches(static_cast<size_t>(workers));
    for (size_t i = 0; i < toProve.size(); ++i)
        batches[i % static_cast<size_t>(workers)].push_back(toProve[i]);
    parallelFor(workers, batches.size(), [&](int w, size_t b) {
        obs::LaneScope lane(w);
        runBmcBatch(baseCtx, batches[b]);
    });

    // k-induction (+ PDR) on the survivors, work-stealing with per-worker
    // solver pools (shared per-k induction contexts), then cache store.
    std::vector<SolverPool> pools(static_cast<size_t>(workers));
    const bool detachedPdr = withPdr && fancyPdr();
    parallelFor(opts_.jobs, toProve.size(), [&](int w, size_t t) {
        obs::LaneScope lane(w);
        ObligationJob& job = *toProve[t];
        ProofContext ctx = baseCtx;
        ctx.pool = &pools[static_cast<size_t>(w)];
        robust::Watchdog::JobGuard guard = guardJob(job);
        job.watchdogStop = guard.token();
        if (job.result.status == Status::Unknown) induction_->run(ctx, job);
        if (withPdr && job.result.status == Status::Unknown && !detachedPdr) pdr_->run(ctx, job);
        settleDeadline(job, guard);
        // Detached-PDR phases store and publish at the barrier, after the
        // ladder stage and refill pass (run() epilogue).
        if (cache_ && !detachedPdr && cacheStorable(job))
            cache_->store(fps[t], makeArtifact(structKeys[t], job, ctx.aig));
        if (sink) {
            finalizeDepth(job, opts_);
            sink->publish(job.index, job.result);
        }
    });
    for (const SolverPool& pool : pools) pool.accumulate(shared_);
}

void ObligationScheduler::runChainPdr(const ProofContext& ctx, ObligationJob& job) const {
    cache::Fingerprint fp;
    uint64_t structKey = 0;
    if (cache_ && tryServeFromCache(ctx, job, cache::Stage::ChainPdr, /*allowSeeding=*/true,
                                    fp, structKey))
        return;
    robust::Watchdog::JobGuard guard = guardJob(job);
    job.watchdogStop = guard.token();
    pdr_->run(ctx, job);
    settleDeadline(job, guard);
    if (cache_ && cacheStorable(job)) cache_->store(fp, makeArtifact(structKey, job, ctx.aig));
}

void ObligationScheduler::storeJob(const ProofContext& ctx, ObligationJob& job,
                                   cache::Stage stage) const {
    if (!cacheStorable(job)) return;
    cache::Fingerprint fp = jobFingerprint(ctx, job, stage);
    uint64_t structKey = cache::structKey(job.ob->name, job.ob->kind, stage, structSalt_);
    cache_->store(fp, makeArtifact(structKey, job, ctx.aig));
}

void ObligationScheduler::runPdrLadderStage(const ProofContext& baseCtx,
                                            const std::vector<ObligationJob*>& open) {
    if (open.empty()) return;
    obs::Recorder* rec = opts_.trace;
    obs::Span stageSpan(rec, "phase", "pdr-ladder");
    stageSpan.arg("open", open.size());
    const std::vector<PdrLegSpec> ladder = pdrLegLadder(opts_);
    const size_t numLegs = ladder.size();
    stageSpan.arg("legs", numLegs);
    // With the pool, every leg runs on the job's up-front grant; refills
    // arrive later at the barrier. Without it, the classic per-property cap.
    const uint64_t legBudget = budgetPool_ ? budgetPool_->initialGrant() : opts_.pdrMaxQueries;
    const bool retainLeg0 = budgetPool_ != nullptr;

    if (!opts_.portfolio) {
        // Sequential ladder walk per job (jobs still run in parallel):
        // evaluate legs in order, stop at the first decisive one. This is
        // the reference semantics the race below must reproduce exactly.
        parallelFor(opts_.jobs, open.size(), [&](int w, size_t t) {
            obs::LaneScope lane(w);
            ObligationJob& job = *open[t];
            robust::Watchdog::JobGuard guard = guardJob(job);
            job.watchdogStop = guard.token();
            util::Stopwatch sw;
            PdrResult adopted;
            uint64_t used = 0, leg0Queries = 0, launched = 0;
            bool anyDecisive = false;
            for (size_t leg = 0; leg < numLegs; ++leg) {
                PdrAttempt attempt =
                    runPdrLeg(baseCtx, job, legBudget, ladder[leg].genRotation,
                              ladder[leg].retries, nullptr, guard.token(),
                              retainLeg0 && leg == 0);
                ++launched;
                used += attempt.result.queries;
                if (leg == 0) leg0Queries = attempt.result.queries;
                if (leg == 0) job.pdrCtx = std::move(attempt.ctx);
                const bool decisive = attempt.result.kind != PdrResult::Kind::Unknown;
                if (leg == 0 || decisive) adopted = std::move(attempt.result);
                if (decisive) {
                    anyDecisive = true;
                    break;
                }
            }
            job.result.seconds += sw.seconds();
            shared_.portfolioLegsLaunched.fetch_add(launched, std::memory_order_relaxed);
            // All-Unknown ladders charge leg 0 alone — the hunters were
            // speculation the refill pass never resumes (JobRace applies
            // the same rule, so both walk orders drain the pool equally).
            const uint64_t charged = anyDecisive ? used : leg0Queries;
            if (budgetPool_) budgetPool_->settle(legBudget, charged);
            if (rec) {
                rec->instant("race", "ladder-done", static_cast<int64_t>(job.index),
                             {{"legs-run", launched}});
                if (budgetPool_)
                    rec->instant("budget", "settle", static_cast<int64_t>(job.index),
                                 {{"granted", legBudget}, {"charged", charged}});
            }
            applyPdrOutcome(baseCtx, job, std::move(adopted));
            settleDeadline(job, guard);
        });
        // A retained warm context still holds this stage's guard token;
        // its slot may be recycled for another job before the refill pass
        // rebinds, so drop the binding at the stage boundary.
        for (ObligationJob* jobPtr : open)
            if (jobPtr->pdrCtx) jobPtr->pdrCtx->clearStop();
        return;
    }

    // Race: all legs of all jobs as one leg-major task list (every job's
    // canonical leg 0 is in flight before any hunter starts). Adoption is
    // the first decisive leg in LEG order — JobRace guarantees the adopted
    // outcome equals the sequential walk's for any worker count or finish
    // order; racing only changes wall clock and which losers die early.
    std::vector<std::unique_ptr<JobRace>> races;
    races.reserve(open.size());
    for (size_t i = 0; i < open.size(); ++i) races.push_back(std::make_unique<JobRace>(numLegs));
    parallelFor(opts_.jobs, open.size() * numLegs, [&](int w, size_t task) {
        obs::LaneScope lane(w);
        const size_t leg = task / open.size();
        const size_t ji = task % open.size();
        ObligationJob& job = *open[ji];
        JobRace& race = *races[ji];
        util::Stopwatch sw;
        PdrResult legResult;
        bool ran = false;
        // Race mode applies the obligation timeout per leg: concurrent legs
        // of one job would multiply-count overlapped wall time on a shared
        // clock, so each leg gets its own guard instead.
        robust::Watchdog::JobGuard guard = guardJob(job);
        if (race.shouldRun(leg)) {
            ran = true;
            if (rec)
                rec->instant("race", "leg-launched", static_cast<int64_t>(job.index),
                             {{"leg", leg}});
            PdrAttempt attempt =
                runPdrLeg(baseCtx, job, legBudget, ladder[leg].genRotation,
                          ladder[leg].retries, race.stopToken(leg), guard.token(),
                          retainLeg0 && leg == 0);
            // Publish the warm context before the deposit: the final
            // depositor (maybe another worker) reads it via acq_rel.
            if (leg == 0) job.pdrCtx = std::move(attempt.ctx);
            legResult = std::move(attempt.result);
        } else {
            legResult.interrupted = true; // Skipped at pickup: cancelled.
            if (rec)
                rec->instant("race", "leg-cancelled", static_cast<int64_t>(job.index),
                             {{"leg", leg}});
        }
        if (race.deposit(leg, std::move(legResult), ran)) {
            // Final leg in: this worker adopts and finalizes the job.
            job.result.seconds += sw.seconds();
            shared_.portfolioLegsLaunched.fetch_add(race.launchedLegs(),
                                                    std::memory_order_relaxed);
            shared_.portfolioLegsCancelled.fetch_add(race.cancelledLegs(),
                                                     std::memory_order_relaxed);
            const uint64_t charged = race.chargedQueries();
            if (budgetPool_) budgetPool_->settle(legBudget, charged);
            if (rec) {
                rec->instant("race", "adopt", static_cast<int64_t>(job.index),
                             {{"launched", race.launchedLegs()},
                              {"cancelled", race.cancelledLegs()}});
                if (budgetPool_)
                    rec->instant("budget", "settle", static_cast<int64_t>(job.index),
                                 {{"granted", legBudget}, {"charged", charged}});
            }
            // The adopting worker's guard covers the counterexample-replay
            // solves inside applyPdrOutcome.
            job.watchdogStop = guard.token();
            applyPdrOutcome(baseCtx, job, race.takeAdopted());
            settleDeadline(job, guard);
        }
    });
    // The races (and the stop tokens their slots own) die with this scope;
    // a retained warm context must not keep reading them during refills.
    for (ObligationJob* jobPtr : open)
        if (jobPtr->pdrCtx) jobPtr->pdrCtx->clearStop();
}

void ObligationScheduler::refillPass(const ProofContext& baseCtx,
                                     const std::vector<ObligationJob*>& open) {
    if (!budgetPool_) return;
    obs::Recorder* rec = opts_.trace;
    obs::Span passSpan(rec, "phase", "refill-pass");
    uint64_t refills = 0;
    const uint64_t grain = std::max<uint64_t>(budgetPool_->initialGrant(), 1);
    // Declaration order, single-threaded: every settle of the phase
    // happened before this barrier and settles commute, so the pool value
    // — hence every draw below — is deterministic for any worker count.
    for (ObligationJob* jobPtr : open) {
        ObligationJob& job = *jobPtr;
        // The refill resumes on the job's cumulative deadline clock; the
        // retained context's frame solvers rebind to the fresh guard.
        robust::Watchdog::JobGuard guard;
        if (watchdog_ && job.result.status == Status::Unknown && job.pdrCtx) {
            guard = guardJob(job);
            job.watchdogStop = guard.token();
            job.pdrCtx->bindWatchdog(guard.token());
        }
        while (job.result.status == Status::Unknown && job.pdrCtx &&
               job.pdrCtx->budgetExhausted() && budgetPool_->available() > 0) {
            const uint64_t drawn = budgetPool_->draw(grain);
            if (drawn == 0) break;
            obs::Span refillSpan(rec, "strategy", "pdr-refill",
                                 static_cast<int64_t>(job.index));
            refillSpan.arg("drawn", drawn);
            ++refills;
            util::Stopwatch sw;
            // Pure budget extension: the resumed search continues the exact
            // trajectory a single monolithic search would have taken, so
            // pool-mode proofs cost what per-property-budget proofs cost.
            // Rotation diversity is the hunter legs' job, not the refill's —
            // rotating here was measured to stall convergence (cubes
            // generalized under mixed orders stop the frames-equal check
            // from closing).
            job.pdrCtx->grantBudget(drawn);
            const uint64_t queriesBefore = job.pdrCtx->queries();
            const PdrStats before = job.pdrCtx->stats();
            PdrResult resumed = job.pdrCtx->search();
            const uint64_t spent = job.pdrCtx->queries() - queriesBefore;
            // Return the unspent slice (or charge the off-by-one overshoot).
            if (drawn > spent)
                budgetPool_->settle(drawn - spent, 0);
            else if (spent > drawn)
                budgetPool_->settle(0, spent - drawn);
            const PdrStats& after = job.pdrCtx->stats();
            PdrStats delta;
            delta.framesOpened = after.framesOpened - before.framesOpened;
            delta.cubesBlocked = after.cubesBlocked - before.cubesBlocked;
            delta.genDropAttempts = after.genDropAttempts - before.genDropAttempts;
            delta.seedCubesAdmitted = after.seedCubesAdmitted - before.seedCubesAdmitted;
            delta.preClausesSubsumed = after.preClausesSubsumed - before.preClausesSubsumed;
            delta.preClausesStrengthened =
                after.preClausesStrengthened - before.preClausesStrengthened;
            delta.preClausesVivified = after.preClausesVivified - before.preClausesVivified;
            delta.preInprocessPasses = after.preInprocessPasses - before.preInprocessPasses;
            shared_.satCalls.fetch_add(spent, std::memory_order_relaxed);
            shared_.addPdr(delta);
            // Attribution mirror of the two fetch_adds above, so the
            // refill's queries and PDR counter deltas land on the right
            // obligation in `autosva profile`.
            refillSpan.arg("queries", spent);
            refillSpan.arg("frames", delta.framesOpened);
            refillSpan.arg("cubes", delta.cubesBlocked);
            refillSpan.arg("drops", delta.genDropAttempts);
            refillSpan.arg("seeds", delta.seedCubesAdmitted);
            job.result.seconds += sw.seconds();
            applyPdrOutcome(baseCtx, job, std::move(resumed));
        }
        if (job.pdrCtx) job.pdrCtx->clearStop();
        settleDeadline(job, guard);
    }
    passSpan.arg("refills", refills);
    // The warm contexts (frame solvers, learned frames) are only needed
    // across refills of this one barrier.
    for (ObligationJob* jobPtr : open) jobPtr->pdrCtx.reset();
}

std::vector<PropertyResult> ObligationScheduler::run() {
    util::Stopwatch total;
    // Deadline enforcement: one scanner thread for the whole run. Created
    // even for a pure external-stop configuration so SIGINT/SIGTERM drain
    // through the same orderly cancellation path as a budget expiry.
    watchdog_.reset();
    if (opts_.timeBudgetSeconds > 0.0 || opts_.obligationTimeoutSeconds > 0.0 ||
        opts_.stopFlag != nullptr) {
        robust::Watchdog::Config wcfg;
        wcfg.runBudgetSeconds = opts_.timeBudgetSeconds;
        wcfg.obligationTimeoutSeconds = opts_.obligationTimeoutSeconds;
        wcfg.externalStop = opts_.stopFlag;
        watchdog_ = std::make_unique<robust::Watchdog>(wcfg);
    }
    const auto& obligations = design_.obligations();
    obs::Recorder* rec = opts_.trace;
    if (rec) {
        std::vector<std::string> names;
        names.reserve(obligations.size());
        for (const auto& ob : obligations) names.push_back(ob.name);
        rec->setObligationNames(std::move(names));
    }
    std::vector<ObligationJob> jobs(obligations.size());
    sva::ResultSink sink(obligations.size());

    bool needLive = false;
    for (size_t i = 0; i < obligations.size(); ++i) {
        const auto& ob = obligations[i];
        ObligationJob& job = jobs[i];
        job.ob = &ob;
        job.index = i;
        job.result.name = ob.name;
        job.result.kind = ob.kind;
        job.result.loc = ob.loc;
        switch (ob.kind) {
        case ir::Obligation::Kind::SafetyBad:
            if (ob.xprop) {
                job.result.status = Status::Skipped;
            } else {
                job.bad = bb_.lit(ob.net);
                job.pdrBad = job.bad;
            }
            break;
        case ir::Obligation::Kind::Justice:
            if (opts_.useLivenessToSafety) {
                needLive = true;
                job.onLiveAig = true;
            } else {
                job.result.status = Status::Skipped;
            }
            break;
        case ir::Obligation::Kind::Cover:
            if (opts_.checkCovers) {
                job.bad = bb_.lit(ob.net);
                job.pdrBad = job.bad;
                job.coverMode = true;
            } else {
                job.result.status = Status::Skipped;
            }
            break;
        case ir::Obligation::Kind::Constraint:
        case ir::Obligation::Kind::Fairness:
            job.result.status = Status::Skipped; // Used as environment, not checked.
            break;
        }
        if (job.result.status == Status::Skipped) sink.publish(i, job.result);
    }

    if (needLive) {
        live_ = std::make_unique<LivenessTransform>(design_, bb_, fairness_);
        if (cache_) liveLatchNames_ = cache::latchNameMap(live_->aig());
        for (auto& job : jobs) {
            if (job.onLiveAig && job.result.status == Status::Unknown) {
                job.bad = live_->bad(job.ob);
                job.pdrBad = job.bad;
            }
        }
    }

    std::vector<ObligationJob*> safetyJobs, liveJobs, phaseA;
    for (auto& job : jobs) {
        if (job.result.status != Status::Unknown) continue;
        switch (job.ob->kind) {
        case ir::Obligation::Kind::SafetyBad: safetyJobs.push_back(&job); phaseA.push_back(&job); break;
        case ir::Obligation::Kind::Justice: liveJobs.push_back(&job); break;
        case ir::Obligation::Kind::Cover: phaseA.push_back(&job); break;
        default: break;
        }
    }

    // Solver reuse is disabled under a conflict budget: a budget-bound
    // Unknown depends on the learnt clauses carried over from batch mates,
    // which would break the any-worker-count identity contract. (With no
    // budget, Sat/Unsat answers are semantic and liveness traces are
    // replayed on fresh solvers, so sharing cannot move them.)
    const bool useReuse = opts_.solverReuse && opts_.conflictBudget == 0;
    const bool fancy = fancyPdr();

    // Global query-budget pool: one equal up-front grant per PDR-eligible
    // obligation (phase A's safety/cover jobs plus the liveness jobs —
    // a count fixed by the design and options alone, so grant sizes are
    // deterministic). Liveness grants stay reserved until phase B settles
    // them: phase A's refills can only spend what phase A returned.
    budgetPool_.reset();
    if (opts_.budgetPoolQueries > 0 && opts_.usePdr)
        budgetPool_ = std::make_unique<BudgetPool>(opts_.budgetPoolQueries,
                                                   phaseA.size() + liveJobs.size());

    // ---- Phase A: safety assertions and covers, full pipeline per job, in
    // parallel. Jobs are mutually independent on the immutable base AIG.
    // With the portfolio/budget-pool knobs, the PDR stage detaches from the
    // per-job pipeline: BMC and induction run as usual, then the survivors'
    // leg ladders (raced or walked), then the barrier refill pass, then the
    // deferred stores and publishes — so the cache and the report see the
    // post-refill verdicts.
    util::Stopwatch phaseATimer;
    obs::Span phaseASpan(rec, "phase", "phase-a");
    phaseASpan.arg("jobs", phaseA.size());
    ProofContext baseCtx{design_, bb_, bb_.aig, constraints_, opts_, kAigFalse, &shared_};
    if (watchdog_) baseCtx.runStop = watchdog_->runToken();
    if (useReuse) {
        runPhaseBatched(baseCtx, phaseA, /*withPdr=*/true, fancy ? nullptr : &sink);
    } else {
        parallelFor(opts_.jobs, phaseA.size(), [&](int w, size_t t) {
            obs::LaneScope lane(w);
            ObligationJob& job = *phaseA[t];
            discharge(baseCtx, job, /*withPdr=*/true);
            if (!fancy) {
                finalizeDepth(job, opts_);
                sink.publish(job.index, job.result);
            }
        });
    }
    if (fancy) {
        std::vector<ObligationJob*> openA;
        for (ObligationJob* job : phaseA) {
            if (job->result.status == Status::Unknown && !job->result.cached)
                openA.push_back(job);
            else if (budgetPool_) {
                budgetPool_->settle(budgetPool_->initialGrant(), 0); // Cheap closer.
                if (rec)
                    rec->instant("budget", "settle", static_cast<int64_t>(job->index),
                                 {{"granted", budgetPool_->initialGrant()}, {"charged", 0}});
            }
        }
        runPdrLadderStage(baseCtx, openA);
        refillPass(baseCtx, openA);
        for (ObligationJob* job : phaseA) {
            if (cache_ && !job->result.cached)
                storeJob(baseCtx, *job, cache::Stage::FullPipeline);
            finalizeDepth(*job, opts_);
            sink.publish(job->index, job->result);
        }
    }
    phaseASpan.end();
    const double phaseASeconds = phaseA.empty() ? 0.0 : phaseATimer.seconds();

    // ---- Phase B: liveness. Proven safety assertions are invariants of the
    // reachable states; feed them to the liveness jobs as constraints. This
    // prunes the unreachable lasso states that otherwise dominate the
    // liveness proofs (the same lemma reuse commercial engines apply). The
    // barrier after phase A makes the constraint set — hence the results —
    // independent of worker timing.
    util::Stopwatch phaseB;
    obs::Span phaseBSpan(rec, "phase", "phase-b");
    phaseBSpan.arg("jobs", liveJobs.size());
    if (!liveJobs.empty()) {
        std::vector<AigLit> liveConstraints = constraints_;
        for (const ObligationJob* job : safetyJobs) {
            if (job->result.status == Status::Proven && !job->onLiveAig)
                liveConstraints.push_back(aigNot(job->bad));
        }
        ProofContext liveCtx{design_,  bb_,   live_->aig(), liveConstraints,
                             opts_,    live_->saveOracle(), &shared_};
        if (watchdog_) liveCtx.runStop = watchdog_->runToken();
        // Phase B gets fresh batches/pools: the live AIG and the
        // strengthened constraint set invalidate phase A's encodings, and
        // the sequential lemma chain below mutates the live AIG — shared
        // unrollers must not outlive the frontier pass.
        {
            obs::Span frontierSpan(rec, "phase", "frontier");
            frontierSpan.arg("jobs", liveJobs.size());
            if (useReuse) {
                runPhaseBatched(liveCtx, liveJobs, /*withPdr=*/false, /*sink=*/nullptr);
            } else {
                parallelFor(opts_.jobs, liveJobs.size(), [&](int w, size_t t) {
                    obs::LaneScope lane(w);
                    discharge(liveCtx, *liveJobs[t], /*withPdr=*/false);
                });
            }
        }

        // PDR with lemma chaining over the topological lemma DAG: once a
        // justice obligation is proven, every legal lasso must contain it,
        // so its in-loop "seen" tracker becomes a fairness fact for later
        // obligations. Obligations whose justice-net cones are disjoint
        // cannot read each other's lemmas' state, so they form waves that
        // are discharged in parallel; the barrier between waves collects
        // the proven trackers in declaration order, which keeps the
        // reasoning acyclic, sound, and byte-identical for any worker
        // count. The live AIG is only mutated in the single-threaded gaps
        // between waves — never while wave workers read it.
        if (opts_.usePdr) {
            // Liveness jobs the frontier already decided never reach their
            // wave's PDR: their pool grants come back here, at a barrier.
            if (fancy && budgetPool_) {
                for (const ObligationJob* job : liveJobs)
                    if (job->result.status != Status::Unknown) {
                        budgetPool_->settle(budgetPool_->initialGrant(), 0);
                        if (rec)
                            rec->instant("budget", "settle",
                                         static_cast<int64_t>(job->index),
                                         {{"granted", budgetPool_->initialGrant()},
                                          {"charged", 0}});
                    }
            }
            AigLit provenSeen = kAigTrue;
            // Pool mode only: each proven chain obligation's inductive
            // invariant seeds every later chain job (same live AIG, same
            // constraint set, so the cubes are model facts independent of
            // the per-job bad literal). Admission re-validates them with a
            // greatest-fixpoint consecution filter on an uncharged budget,
            // so a seed can prune the search but never skew the verdict or
            // eat the pool. Collected single-threaded at the wave barrier
            // in declaration order — deterministic for any worker count.
            // Primed with phase A's safety PDR invariants: the live AIG
            // shares variable numbering with the base, so reachability
            // facts about the shared state (e.g. request tracking)
            // transfer verbatim.
            std::vector<PdrCube> chainSeeds;
            if (budgetPool_)
                for (const ObligationJob* job : safetyJobs)
                    if (job->result.status == Status::Proven)
                        chainSeeds.insert(chainSeeds.end(), job->invariant.begin(),
                                          job->invariant.end());
            const auto waves = lemmaWaves(bb_.aig, bb_, liveJobs);
            liveWaves_ = waves.size();
            for (const auto& wave : waves)
                liveWaveWidest_ = std::max<uint64_t>(liveWaveWidest_, wave.size());
            for (size_t waveIdx = 0; waveIdx < waves.size(); ++waveIdx) {
                const auto& wave = waves[waveIdx];
                obs::Span waveSpan(rec, "phase", "wave");
                waveSpan.arg("index", waveIdx);
                waveSpan.arg("width", wave.size());
                std::vector<ObligationJob*> todo;
                for (ObligationJob* job : wave) {
                    if (job->result.status != Status::Unknown) continue;
                    job->pdrBad = provenSeen != kAigTrue
                                      ? live_->mutableAig().mkAnd(job->bad, provenSeen)
                                      : job->bad;
                    todo.push_back(job);
                }
                if (fancy) {
                    // Detached PDR per wave: declaration-order cache pass,
                    // the leg-ladder stage, then the refill pass — all
                    // before the tracker folding below, so a refill-proven
                    // obligation strengthens the next wave exactly like a
                    // first-try proof.
                    std::vector<ObligationJob*> openWave;
                    if (budgetPool_ && !chainSeeds.empty()) {
                        // Cone projection: a seed transfers restricted to
                        // the latches in the target's own bad-cone (its
                        // trackers plus the shared base state, e.g. the
                        // page-table walker). Cubes about a *different*
                        // obligation's bookkeeping are not just useless —
                        // blocking them measurably derails the target's
                        // generalization trajectory — but their in-cone
                        // projection often carries a shared-state fact.
                        // Projection strengthens the claim (fewer literals
                        // block more states), which is exactly what the
                        // admission fixpoint exists to arbitrate.
                        for (ObligationJob* job : todo) {
                            const std::vector<uint32_t> cone =
                                latchSupport(liveCtx.aig, job->bad);
                            for (const PdrCube& cube : chainSeeds) {
                                PdrCube proj;
                                proj.reserve(cube.size());
                                for (const auto& lit : cube)
                                    if (std::binary_search(cone.begin(), cone.end(),
                                                           lit.first))
                                        proj.push_back(lit);
                                if (!proj.empty()) job->pdrSeeds.push_back(std::move(proj));
                            }
                        }
                    }
                    for (ObligationJob* job : todo) {
                        cache::Fingerprint fp;
                        uint64_t structKey = 0;
                        if (cache_ && tryServeFromCache(liveCtx, *job, cache::Stage::ChainPdr,
                                                        /*allowSeeding=*/true, fp, structKey)) {
                            if (budgetPool_) {
                                budgetPool_->settle(budgetPool_->initialGrant(), 0);
                                if (rec)
                                    rec->instant("budget", "settle",
                                                 static_cast<int64_t>(job->index),
                                                 {{"granted", budgetPool_->initialGrant()},
                                                  {"charged", 0}});
                            }
                            continue;
                        }
                        openWave.push_back(job);
                    }
                    runPdrLadderStage(liveCtx, openWave);
                    refillPass(liveCtx, openWave);
                    if (cache_)
                        for (ObligationJob* job : openWave)
                            storeJob(liveCtx, *job, cache::Stage::ChainPdr);
                } else {
                    if (opts_.perturbSeed != 0) {
                        const auto order = perturbedOrder(todo.size(), opts_.perturbSeed, 3);
                        std::vector<ObligationJob*> shuffled(todo.size());
                        for (size_t i = 0; i < order.size(); ++i) shuffled[i] = todo[order[i]];
                        todo.swap(shuffled);
                    }
                    parallelFor(opts_.jobs, todo.size(), [&](int w, size_t t) {
                        obs::LaneScope lane(w);
                        runChainPdr(liveCtx, *todo[t]);
                    });
                }
                // Barrier passed: fold this wave's freshly proven trackers
                // into the strengthening conjunction, in declaration order.
                for (ObligationJob* job : wave) {
                    if (job->result.status == Status::Proven &&
                        std::find(todo.begin(), todo.end(), job) != todo.end()) {
                        provenSeen = live_->mutableAig().mkAnd(provenSeen, live_->seen(job->ob));
                        if (budgetPool_)
                            chainSeeds.insert(chainSeeds.end(), job->invariant.begin(),
                                              job->invariant.end());
                    }
                }
            }
        }
        for (ObligationJob* job : liveJobs) {
            finalizeDepth(*job, opts_);
            sink.publish(job->index, job->result);
        }
    }
    phaseBSpan.end();
    const double phaseBSeconds = liveJobs.empty() ? 0.0 : phaseB.seconds();

    stats_ = shared_.snapshot(total.seconds());
    stats_.phaseASeconds = phaseASeconds;
    stats_.phaseBSeconds = phaseBSeconds;
    stats_.peakRssKb = peakRssKb();
    stats_.liveWaves = liveWaves_;
    stats_.liveWaveWidest = liveWaveWidest_;
    if (budgetPool_) {
        stats_.budgetQueriesReturned = budgetPool_->queriesReturned();
        stats_.budgetRefillsGranted = budgetPool_->refillsGranted();
    }
    if (cache_) {
        cache::CacheStats cs = cache_->stats();
        stats_.cacheLookups = cs.lookups;
        stats_.cacheHits = cs.hits;
        stats_.cacheStores = cs.stores;
        stats_.cacheSeededLemmas = cs.seededLemmas;
        stats_.cacheDegradedReason = cache_->degradedReason();
    }
    if (watchdog_) stats_.runStopCause = static_cast<uint64_t>(watchdog_->runCause());
    std::vector<PropertyResult> results = sink.drain();
    for (const PropertyResult& r : results)
        if (r.unknownReason != UnknownReason::None) ++stats_.deadlineDegraded;
    return results;
}

} // namespace autosva::formal
