// O2 — L1.5 private-cache NoC slice (OpenPiton-style, simplified).
//
// The miss path of an L1.5 slice: a core request allocates an MSHR, goes
// out to the NoC1 through the (fixed) noc_buffer instance, and completes
// when a NoC2 response with the right message type returns. Paper result:
// "NoC Buffer proof, other CEXs" — the bound noc_buffer FT proves, while
// the cache-level liveness shows counterexamples because the NoC2 message
// types are under-constrained (the environment may forever send message
// types the fill logic ignores). The paper leaves those CEXs as the
// starting point for designer-added assumptions.
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kL15NocWrapperRtl = R"(
module l15_noc_wrapper #(
  parameter MSHR_W = 2,
  parameter ADDR_W = 4
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  l15_core: l15_req -in> l15_res
  l15_req_val = l15_req_val_i
  l15_req_ack = l15_req_rdy_o
  [MSHR_W-1:0] l15_req_transid = l15_req_mshrid_i
  l15_res_val = l15_res_val_o
  [MSHR_W-1:0] l15_res_transid = l15_res_mshrid_o

  l15_noc1: noc1 -out> noc2
  noc1_val = noc1_val_o
  noc1_ack = noc1_rdy_i
  noc2_val = noc2_val_i
  */

  // Core-side miss requests (MSHR-tagged).
  input  wire              l15_req_val_i,
  output wire              l15_req_rdy_o,
  input  wire [MSHR_W-1:0] l15_req_mshrid_i,
  input  wire [ADDR_W-1:0] l15_req_addr_i,
  output wire              l15_res_val_o,
  output wire [MSHR_W-1:0] l15_res_mshrid_o,
  // NoC1 output channel (through the encoder buffer).
  output wire              noc1_val_o,
  input  wire              noc1_rdy_i,
  output wire [MSHR_W-1:0] noc1_mshrid_o,
  // NoC2 response channel. msgtype is under-constrained: only DATA_ACK
  // (2'b01) fills; the environment is free to send anything.
  input  wire              noc2_val_i,
  input  wire [MSHR_W-1:0] noc2_mshrid_i,
  input  wire [1:0]        noc2_msgtype_i
);

  localparam MSG_DATA_ACK = 2'b01;

  // One-deep MSHR file per ID (4 IDs with MSHR_W = 2).
  reg [3:0] mshr_valid_q;

  wire [MSHR_W-1:0] req_id = l15_req_mshrid_i;
  // Accept a request when its MSHR is free and the buffer can take it.
  wire buf_rdy;
  assign l15_req_rdy_o = !mshr_valid_q[req_id] && buf_rdy;
  wire req_hsk = l15_req_val_i && l15_req_rdy_o;

  // NoC1 encoder buffer instance (paper fix applied: BUG = 0).
  noc_buffer #(.MSHR_W(MSHR_W), .DEPTH(2), .BUG(0)) noc1buffer_i (
    .clk_i                   (clk_i),
    .rst_ni                  (rst_ni),
    .noc1buffer_req_val_i    (l15_req_val_i && !mshr_valid_q[req_id]),
    .noc1buffer_req_rdy_o    (buf_rdy),
    .noc1buffer_req_mshrid_i (l15_req_mshrid_i),
    .noc1buffer_enc_val_o    (noc1_val_o),
    .noc1buffer_enc_rdy_i    (noc1_rdy_i),
    .noc1buffer_enc_mshrid_o (noc1_mshrid_o)
  );

  // Fill: only DATA_ACK responses complete an MSHR; other message types are
  // dropped by this simplified slice (the under-constraint the paper
  // describes — nothing forces the environment to eventually send one).
  wire fill = noc2_val_i && noc2_msgtype_i == MSG_DATA_ACK && mshr_valid_q[noc2_mshrid_i];
  assign l15_res_val_o    = fill;
  assign l15_res_mshrid_o = noc2_mshrid_i;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      mshr_valid_q <= 4'b0;
    end else begin
      if (req_hsk) begin
        mshr_valid_q[req_id] <= 1'b1;
      end
      if (fill) begin
        mshr_valid_q[noc2_mshrid_i] <= 1'b0;
      end
    end
  end

endmodule
)";

} // namespace autosva::designs
