// Registry of the RTL modules evaluated in the paper (Table III), recreated
// as compact, behaviourally faithful SystemVerilog models with AutoSVA
// annotations in their interface sections. Where the paper found a bug, the
// model seeds the same bug behind a `BUG` parameter so both the failing and
// the fixed configuration can be checked.
#pragma once

#include <string>
#include <vector>

namespace autosva::designs {

struct DesignInfo {
    std::string id;          ///< Paper row id: A1..A5, O1, O2, ME.
    std::string name;        ///< Module name (also the registry key).
    std::string description;
    std::string paperResult; ///< The outcome column of Table III.
    std::string rtl;         ///< Annotated SystemVerilog source.
    std::vector<std::string> deps; ///< Other designs whose RTL must be compiled too.
    bool hasBugParam = false; ///< `BUG` parameter seeds the paper's bug when 1.
    /// Extra handwritten SVA source (FT extension) needed for the final
    /// proof, e.g. the MMU arbitration-fairness assumption of §IV.
    std::string extensionSva;
};

[[nodiscard]] const std::vector<DesignInfo>& allDesigns();
[[nodiscard]] const DesignInfo& design(const std::string& name);

/// Collects the RTL sources for a design: its own module first, then all
/// (transitive) dependencies.
[[nodiscard]] std::vector<std::string> rtlSources(const DesignInfo& info);

/// Logical file names parallel to rtlSources() ("<module>.sv"), used as
/// diagnostic buffer names so errors cite the design instead of "source<i>".
[[nodiscard]] std::vector<std::string> rtlSourceNames(const DesignInfo& info);

// Individual sources (defined in the per-module .cpp files).
extern const char* const kArianePtwRtl;
extern const char* const kArianeTlbRtl;
extern const char* const kArianeMmuRtl;
extern const char* const kArianeMmuFairnessSva;
extern const char* const kArianeLsuRtl;
extern const char* const kArianeIcacheRtl;
extern const char* const kNocBufferRtl;
extern const char* const kL15NocWrapperRtl;
extern const char* const kMemEngineRtl;

} // namespace autosva::designs
