#include "designs/designs.hpp"

#include <stdexcept>
#include <unordered_set>

namespace autosva::designs {

const std::vector<DesignInfo>& allDesigns() {
    static const std::vector<DesignInfo> registry = [] {
        std::vector<DesignInfo> d;
        d.push_back({"A1", "ariane_ptw", "Page Table Walker (two-level walk FSM)",
                     "100% liveness/safety properties proof", kArianePtwRtl, {}, false, ""});
        d.push_back({"A2", "ariane_tlb", "Translation Lookaside Buffer (2-entry, 1-cycle lookup)",
                     "100% liveness/safety properties proof", kArianeTlbRtl, {}, false, ""});
        d.push_back({"A3", "ariane_mmu",
                     "Memory Management Unit (DTLB+ITLB+PTW, misaligned fast path)",
                     "Bug found and fixed -> 100% proof", kArianeMmuRtl,
                     {"ariane_ptw"}, true, kArianeMmuFairnessSva});
        d.push_back({"A4", "ariane_lsu", "Load Store Unit load channel (trans-ID queue)",
                     "Hit known bug (issue #538)", kArianeLsuRtl, {}, true, ""});
        d.push_back({"A5", "ariane_icache", "L1 instruction cache (write-back, kill input)",
                     "Hit known bug (issue #474)", kArianeIcacheRtl, {}, true, ""});
        d.push_back({"O1", "noc_buffer", "NoC1 encoder buffer (MSHR-tagged FIFO)",
                     "Bug found and fixed -> 100% proof", kNocBufferRtl, {}, true, ""});
        d.push_back({"O2", "l15_noc_wrapper", "L1.5 private cache NoC slice (miss path)",
                     "NoC Buffer proof, other CEXs", kL15NocWrapperRtl, {"noc_buffer"}, false,
                     ""});
        d.push_back({"ME", "mem_engine", "Mem Engine (burst producer reusing the NoC buffer)",
                     "Deadlock found and fixed -> proof (TDD flow)", kMemEngineRtl,
                     {"noc_buffer"}, true, ""});
        return d;
    }();
    return registry;
}

const DesignInfo& design(const std::string& name) {
    for (const auto& d : allDesigns())
        if (d.name == name) return d;
    throw std::out_of_range("unknown design '" + name + "'");
}

namespace {

/// The design plus its transitive dependencies, depth-first — the single
/// traversal both rtlSources() and rtlSourceNames() project from, so the
/// source/name pairing that feeds diagnostics can never drift.
std::vector<const DesignInfo*> collectWithDeps(const DesignInfo& info) {
    std::vector<const DesignInfo*> out{&info};
    std::unordered_set<std::string> seen{info.name};
    std::vector<std::string> worklist(info.deps.begin(), info.deps.end());
    while (!worklist.empty()) {
        std::string name = worklist.back();
        worklist.pop_back();
        if (!seen.insert(name).second) continue;
        const DesignInfo& dep = design(name);
        out.push_back(&dep);
        for (const auto& sub : dep.deps) worklist.push_back(sub);
    }
    return out;
}

} // namespace

std::vector<std::string> rtlSources(const DesignInfo& info) {
    std::vector<std::string> sources;
    for (const DesignInfo* d : collectWithDeps(info)) sources.push_back(d->rtl);
    return sources;
}

std::vector<std::string> rtlSourceNames(const DesignInfo& info) {
    std::vector<std::string> names;
    for (const DesignInfo* d : collectWithDeps(info)) names.push_back(d->name + ".sv");
    return names;
}

} // namespace autosva::designs
